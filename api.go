// Package lineartime is a reproduction of Chlebus, Kowalski and
// Olkowski, "Deterministic Fault-Tolerant Distributed Computing in
// Linear Time and Communication" (PODC 2023, arXiv:2305.11644): the
// paper's consensus, gossiping and checkpointing algorithms for
// synchronous complete networks with crash or authenticated-Byzantine
// faults, on expander overlay networks, in both the multi-port and the
// single-port communication model, together with the baselines the
// paper compares against and a deterministic simulator to run them.
//
// The package exposes one entry point per problem; everything is
// deterministic given the seed option. Each entry point is a thin
// adapter over internal/scenario: options become a scenario.Spec, the
// generic scenario runner materializes and executes it, and the
// unified scenario report is repackaged into the problem-specific
// report types below.
package lineartime

import (
	"fmt"
	"strings"

	"lineartime/internal/scenario"
)

// Algorithm selects the consensus implementation.
type Algorithm int

// Available consensus algorithms.
const (
	// FewCrashes is Few-Crashes-Consensus (§4.3): t < n/5,
	// O(t + log n) rounds, O(n + t log t) message bits.
	FewCrashes Algorithm = iota + 1
	// ManyCrashes is Many-Crashes-Consensus (§4.4): any t < n,
	// ≤ n + 3(1+lg n) rounds.
	ManyCrashes
	// FloodingBaseline is the Θ(n²)-message textbook comparator.
	FloodingBaseline
	// SinglePortLinear is Linear-Consensus (§8) in the single-port
	// model: O(t + log n) rounds, O(n + t log n) message bits.
	SinglePortLinear
	// EarlyStoppingBaseline is the related-work early-stopping
	// comparator: min(f+3, t+3) rounds for f actual crashes, Θ(n²)
	// messages per round.
	EarlyStoppingBaseline
	// CoordinatorBaseline is the rotating-coordinator comparator:
	// t+1 rounds, Θ(t·n) messages.
	CoordinatorBaseline
)

// scenarioName maps the algorithm to its registry scenario name; the
// String values double as the registry's algorithm segment.
func (a Algorithm) scenarioName() (string, bool) {
	switch a {
	case FewCrashes, ManyCrashes, FloodingBaseline, SinglePortLinear,
		EarlyStoppingBaseline, CoordinatorBaseline:
		return "consensus/" + a.String(), true
	default:
		return "", false
	}
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case FewCrashes:
		return "few-crashes"
	case ManyCrashes:
		return "many-crashes"
	case FloodingBaseline:
		return "flooding"
	case SinglePortLinear:
		return "single-port"
	case EarlyStoppingBaseline:
		return "early-stopping"
	case CoordinatorBaseline:
		return "rotating-coordinator"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// CrashEvent schedules one crash: node Node fails at round Round with
// only its first Keep messages of that round delivered (Keep < 0
// delivers all).
type CrashEvent struct {
	Node  int
	Round int
	Keep  int
}

// ByzantineStrategy selects the behaviour of corrupted nodes in
// Byzantine runs.
type ByzantineStrategy int

// Available Byzantine behaviours.
const (
	// Silence: corrupted nodes send nothing.
	Silence ByzantineStrategy = iota + 1
	// Equivocate: corrupted sources send conflicting signed values.
	Equivocate
	// Spam: corrupted nodes flood fabricated sets and inquiries.
	Spam
)

func (s ByzantineStrategy) scenarioStrategy() scenario.ByzantineStrategy {
	switch s {
	case Equivocate:
		return scenario.Equivocate
	case Spam:
		return scenario.Spam
	default:
		return scenario.Silence
	}
}

type options struct {
	seed          uint64
	algorithm     Algorithm
	crashes       []CrashEvent
	randomCrashes int
	crashHorizon  int
	concurrent    bool
	parallelism   int
	singlePort    bool
	byzStrategy   ByzantineStrategy
	byzNodes      []int
	degree        int
}

// Option configures a run.
type Option func(*options)

// WithSeed fixes the seed deriving overlays, adversaries and keys.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithAlgorithm selects the consensus algorithm (default FewCrashes).
func WithAlgorithm(a Algorithm) Option { return func(o *options) { o.algorithm = a } }

// WithCrashSchedule installs an exact crash schedule.
func WithCrashSchedule(events ...CrashEvent) Option {
	return func(o *options) { o.crashes = append(o.crashes, events...) }
}

// WithRandomCrashes crashes up to f pseudo-random nodes at
// pseudo-random rounds below horizon.
func WithRandomCrashes(f, horizon int) Option {
	return func(o *options) { o.randomCrashes, o.crashHorizon = f, horizon }
}

// WithConcurrentRuntime runs on the sharded parallel engine with the
// default worker count instead of the sequential one (multi-port only;
// results are identical). Equivalent to WithParallelism(0) plus opting
// in to the parallel engine.
func WithConcurrentRuntime() Option { return func(o *options) { o.concurrent = true } }

// WithParallelism runs on the sharded parallel engine with the given
// number of workers (multi-port only; results are identical to the
// sequential engine). workers <= 0 selects GOMAXPROCS.
func WithParallelism(workers int) Option {
	return func(o *options) { o.concurrent, o.parallelism = true, workers }
}

// WithSinglePortModel runs gossip or checkpointing in the single-port
// model (§8 adaptations). For consensus use
// WithAlgorithm(SinglePortLinear) instead.
func WithSinglePortModel() Option { return func(o *options) { o.singlePort = true } }

// WithByzantine corrupts the listed nodes with the given strategy
// (Byzantine runs only).
func WithByzantine(strategy ByzantineStrategy, nodes ...int) Option {
	return func(o *options) { o.byzStrategy, o.byzNodes = strategy, nodes }
}

// WithOverlayDegree overrides the little-overlay degree (advanced).
func WithOverlayDegree(d int) Option { return func(o *options) { o.degree = d } }

func buildOptions(opts []Option) options {
	o := options{algorithm: FewCrashes, crashHorizon: 64}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// faultModel converts the crash options into the scenario fault model
// (the single adversary factory lives in internal/scenario).
func (o *options) faultModel() scenario.FaultModel {
	if len(o.crashes) > 0 {
		events := make([]scenario.CrashEvent, len(o.crashes))
		for i, e := range o.crashes {
			events[i] = scenario.CrashEvent{Node: e.Node, Round: e.Round, Keep: e.Keep}
		}
		return scenario.FaultModel{Kind: scenario.CrashSchedule, Schedule: events}
	}
	if o.randomCrashes > 0 {
		return scenario.FaultModel{
			Kind:    scenario.RandomCrashes,
			Count:   o.randomCrashes,
			Horizon: o.crashHorizon,
		}
	}
	return scenario.FaultModel{}
}

// spec materializes the registry scenario named name at size (n, t)
// with the run options applied.
func (o *options) spec(name string, n, t int) scenario.Spec {
	sp := scenario.MustLookup(name).Spec(n, t, o.seed)
	sp.Degree = o.degree
	sp.Fault = o.faultModel()
	sp.Exec = scenario.Parallelism{Enabled: o.concurrent, Workers: o.parallelism}
	return sp
}

// Metrics reports the paper's two performance measures for a run.
type Metrics struct {
	Rounds      int
	Messages    int64
	Bits        int64
	ByzMessages int64
	// PerPart breaks the non-faulty message count down by algorithm
	// part (e.g. "aea/flood", "scv/inquiry") when the protocol
	// exposes its round schedule via a PartAt(round int) string
	// method (the scenario runner installs it on the engine); nil
	// otherwise.
	PerPart map[string]int64
}

// apiErr rebrands scenario-layer errors with the public package
// prefix so the internal layering does not leak through the API
// surface; errors from deeper packages pass through unchanged, as
// they always have.
func apiErr(err error) error {
	if err == nil {
		return nil
	}
	if rest, ok := strings.CutPrefix(err.Error(), "scenario: "); ok {
		return fmt.Errorf("lineartime: %s", rest)
	}
	return err
}

func toMetrics(m scenario.Metrics) Metrics {
	return Metrics{
		Rounds:      m.Rounds,
		Messages:    m.Messages,
		Bits:        m.Bits,
		ByzMessages: m.ByzMessages,
		PerPart:     m.PerPart,
	}
}

// ConsensusReport is the outcome of RunConsensus.
type ConsensusReport struct {
	Algorithm Algorithm
	N, T      int
	Metrics   Metrics
	// Decisions[i] is 0 or 1, or -1 for nodes that crashed or (in
	// pathological configurations) did not decide.
	Decisions []int
	Crashed   []int
	// Agreement and Validity summarize the §2 correctness conditions
	// over the surviving nodes.
	Agreement bool
	Validity  bool
}

// RunConsensus solves binary consensus among n nodes with fault bound
// t and the given inputs.
func RunConsensus(n, t int, inputs []bool, opts ...Option) (*ConsensusReport, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("lineartime: %d inputs for n=%d", len(inputs), n)
	}
	o := buildOptions(opts)
	name, ok := o.algorithm.scenarioName()
	if !ok {
		return nil, fmt.Errorf("lineartime: unknown algorithm %v", o.algorithm)
	}
	sp := o.spec(name, n, t)
	sp.BoolInputs = inputs
	rep, err := scenario.Run(sp)
	if err != nil {
		return nil, apiErr(err)
	}
	return &ConsensusReport{
		Algorithm: o.algorithm,
		N:         n,
		T:         t,
		Metrics:   toMetrics(rep.Metrics),
		Decisions: rep.Consensus.Decisions,
		Crashed:   rep.Crashed,
		Agreement: rep.Consensus.Agreement,
		Validity:  rep.Consensus.Validity,
	}, nil
}

// GossipReport is the outcome of RunGossip.
type GossipReport struct {
	N, T    int
	Metrics Metrics
	Crashed []int
	// Extant[i] maps node names to rumors as decided by node i (nil
	// for crashed nodes).
	Extant []map[int]uint64
	// Complete reports whether every surviving node's extant set
	// contains every surviving node's rumor.
	Complete bool
}

// RunGossip solves gossiping among n nodes with fault bound t < n/5.
// rumors[i] is node i's input. If baseline is true the all-to-all
// comparator runs instead of the §5 algorithm.
func RunGossip(n, t int, rumors []uint64, baseline bool, opts ...Option) (*GossipReport, error) {
	if len(rumors) != n {
		return nil, fmt.Errorf("lineartime: %d rumors for n=%d", len(rumors), n)
	}
	o := buildOptions(opts)
	name := "gossip/expander"
	switch {
	case baseline:
		name = "gossip/all-to-all"
	case o.singlePort:
		name = "gossip/expander/single-port"
	}
	sp := o.spec(name, n, t)
	sp.Rumors = rumors
	rep, err := scenario.Run(sp)
	if err != nil {
		return nil, apiErr(err)
	}
	return &GossipReport{
		N:        n,
		T:        t,
		Metrics:  toMetrics(rep.Metrics),
		Crashed:  rep.Crashed,
		Extant:   rep.Gossip.Extant,
		Complete: rep.Gossip.Complete,
	}, nil
}

// CheckpointReport is the outcome of RunCheckpointing.
type CheckpointReport struct {
	N, T    int
	Metrics Metrics
	Crashed []int
	// ExtantSet is the agreed set of node names (nil when agreement
	// failed, which the Agreement flag records).
	ExtantSet []int
	Agreement bool
	// Baseline reports whether the O(tn) comparator was used.
	Baseline bool
}

// RunCheckpointing solves checkpointing among n nodes with fault bound
// t < n/5. If baseline is true the direct O(tn)-message comparator
// runs instead of the §6 algorithm.
func RunCheckpointing(n, t int, baseline bool, opts ...Option) (*CheckpointReport, error) {
	o := buildOptions(opts)
	name := "checkpoint/expander"
	switch {
	case baseline:
		name = "checkpoint/direct"
	case o.singlePort:
		name = "checkpoint/expander/single-port"
	}
	sp := o.spec(name, n, t)
	rep, err := scenario.Run(sp)
	if err != nil {
		return nil, apiErr(err)
	}
	return &CheckpointReport{
		N:         n,
		T:         t,
		Metrics:   toMetrics(rep.Metrics),
		Crashed:   rep.Crashed,
		ExtantSet: rep.Checkpoint.ExtantSet,
		Agreement: rep.Checkpoint.Agreement,
		Baseline:  baseline,
	}, nil
}

// ByzantineReport is the outcome of RunByzantineConsensus.
type ByzantineReport struct {
	N, T    int
	L       int
	Metrics Metrics
	// Decisions[i] holds honest node i's decision; corrupted nodes
	// have ok=false entries.
	Decisions []uint64
	Decided   []bool
	Corrupted []int
	Agreement bool
	// Baseline reports whether all-nodes Dolev–Strong was used.
	Baseline bool
}

// RunByzantineConsensus solves authenticated-Byzantine consensus among
// n nodes with fault bound t < n/2. Corrupted nodes and their strategy
// come from WithByzantine. If baseline is true the all-nodes
// Dolev–Strong comparator runs instead of AB-Consensus.
func RunByzantineConsensus(n, t int, inputs []uint64, baseline bool, opts ...Option) (*ByzantineReport, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("lineartime: %d inputs for n=%d", len(inputs), n)
	}
	o := buildOptions(opts)
	name := "byzantine/ab-consensus"
	if baseline {
		name = "byzantine/dolev-strong-all"
	}
	sp := o.spec(name, n, t)
	sp.Values = inputs
	sp.Fault = scenario.FaultModel{
		Kind:      scenario.ByzantineFaults,
		Strategy:  o.byzStrategy.scenarioStrategy(),
		Corrupted: o.byzNodes,
	}
	rep, err := scenario.Run(sp)
	if err != nil {
		return nil, apiErr(err)
	}
	return &ByzantineReport{
		N:         n,
		T:         t,
		L:         rep.Byzantine.L,
		Metrics:   toMetrics(rep.Metrics),
		Decisions: rep.Byzantine.Decisions,
		Decided:   rep.Byzantine.Decided,
		Corrupted: append([]int(nil), o.byzNodes...),
		Agreement: rep.Byzantine.Agreement,
		Baseline:  baseline,
	}, nil
}
