// Package lineartime is a reproduction of Chlebus, Kowalski and
// Olkowski, "Deterministic Fault-Tolerant Distributed Computing in
// Linear Time and Communication" (PODC 2023, arXiv:2305.11644): the
// paper's consensus, gossiping and checkpointing algorithms for
// synchronous complete networks with crash or authenticated-Byzantine
// faults, on expander overlay networks, in both the multi-port and the
// single-port communication model, together with the baselines the
// paper compares against and a deterministic simulator to run them.
//
// The package exposes one entry point per problem; everything is
// deterministic given the seed option.
package lineartime

import (
	"errors"
	"fmt"

	"lineartime/internal/bitset"
	"lineartime/internal/byzantine"
	"lineartime/internal/checkpoint"
	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/gossip"
	"lineartime/internal/sim"
	"lineartime/internal/singleport"
)

// Algorithm selects the consensus implementation.
type Algorithm int

// Available consensus algorithms.
const (
	// FewCrashes is Few-Crashes-Consensus (§4.3): t < n/5,
	// O(t + log n) rounds, O(n + t log t) message bits.
	FewCrashes Algorithm = iota + 1
	// ManyCrashes is Many-Crashes-Consensus (§4.4): any t < n,
	// ≤ n + 3(1+lg n) rounds.
	ManyCrashes
	// FloodingBaseline is the Θ(n²)-message textbook comparator.
	FloodingBaseline
	// SinglePortLinear is Linear-Consensus (§8) in the single-port
	// model: O(t + log n) rounds, O(n + t log n) message bits.
	SinglePortLinear
	// EarlyStoppingBaseline is the related-work early-stopping
	// comparator: min(f+3, t+3) rounds for f actual crashes, Θ(n²)
	// messages per round.
	EarlyStoppingBaseline
	// CoordinatorBaseline is the rotating-coordinator comparator:
	// t+1 rounds, Θ(t·n) messages.
	CoordinatorBaseline
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case FewCrashes:
		return "few-crashes"
	case ManyCrashes:
		return "many-crashes"
	case FloodingBaseline:
		return "flooding"
	case SinglePortLinear:
		return "single-port"
	case EarlyStoppingBaseline:
		return "early-stopping"
	case CoordinatorBaseline:
		return "rotating-coordinator"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// CrashEvent schedules one crash: node Node fails at round Round with
// only its first Keep messages of that round delivered (Keep < 0
// delivers all).
type CrashEvent struct {
	Node  int
	Round int
	Keep  int
}

// ByzantineStrategy selects the behaviour of corrupted nodes in
// Byzantine runs.
type ByzantineStrategy int

// Available Byzantine behaviours.
const (
	// Silence: corrupted nodes send nothing.
	Silence ByzantineStrategy = iota + 1
	// Equivocate: corrupted sources send conflicting signed values.
	Equivocate
	// Spam: corrupted nodes flood fabricated sets and inquiries.
	Spam
)

type options struct {
	seed          uint64
	algorithm     Algorithm
	crashes       []CrashEvent
	randomCrashes int
	crashHorizon  int
	concurrent    bool
	parallelism   int
	singlePort    bool
	byzStrategy   ByzantineStrategy
	byzNodes      []int
	degree        int
}

// Option configures a run.
type Option func(*options)

// WithSeed fixes the seed deriving overlays, adversaries and keys.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithAlgorithm selects the consensus algorithm (default FewCrashes).
func WithAlgorithm(a Algorithm) Option { return func(o *options) { o.algorithm = a } }

// WithCrashSchedule installs an exact crash schedule.
func WithCrashSchedule(events ...CrashEvent) Option {
	return func(o *options) { o.crashes = append(o.crashes, events...) }
}

// WithRandomCrashes crashes up to f pseudo-random nodes at
// pseudo-random rounds below horizon.
func WithRandomCrashes(f, horizon int) Option {
	return func(o *options) { o.randomCrashes, o.crashHorizon = f, horizon }
}

// WithConcurrentRuntime runs on the sharded parallel engine with the
// default worker count instead of the sequential one (multi-port only;
// results are identical). Equivalent to WithParallelism(0) plus opting
// in to the parallel engine.
func WithConcurrentRuntime() Option { return func(o *options) { o.concurrent = true } }

// WithParallelism runs on the sharded parallel engine with the given
// number of workers (multi-port only; results are identical to the
// sequential engine). workers <= 0 selects GOMAXPROCS.
func WithParallelism(workers int) Option {
	return func(o *options) { o.concurrent, o.parallelism = true, workers }
}

// WithSinglePortModel runs gossip or checkpointing in the single-port
// model (§8 adaptations). For consensus use
// WithAlgorithm(SinglePortLinear) instead.
func WithSinglePortModel() Option { return func(o *options) { o.singlePort = true } }

// WithByzantine corrupts the listed nodes with the given strategy
// (Byzantine runs only).
func WithByzantine(strategy ByzantineStrategy, nodes ...int) Option {
	return func(o *options) { o.byzStrategy, o.byzNodes = strategy, nodes }
}

// WithOverlayDegree overrides the little-overlay degree (advanced).
func WithOverlayDegree(d int) Option { return func(o *options) { o.degree = d } }

func buildOptions(opts []Option) options {
	o := options{algorithm: FewCrashes, crashHorizon: 64}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func (o *options) adversary(n, t int) sim.Adversary {
	if len(o.crashes) > 0 {
		events := make([]crash.Event, len(o.crashes))
		for i, e := range o.crashes {
			events[i] = crash.Event{Node: e.Node, Round: e.Round, Keep: e.Keep}
		}
		return crash.NewSchedule(events)
	}
	if o.randomCrashes > 0 {
		f := o.randomCrashes
		if f > t {
			f = t
		}
		return crash.NewRandom(n, f, o.crashHorizon, o.seed+101)
	}
	return nil
}

// Metrics reports the paper's two performance measures for a run.
type Metrics struct {
	Rounds      int
	Messages    int64
	Bits        int64
	ByzMessages int64
	// PerPart breaks the non-faulty message count down by algorithm
	// part (e.g. "aea/flood", "scv/inquiry") when the protocol
	// exposes its schedule; nil otherwise.
	PerPart map[string]int64
}

// PartLabeler is implemented by protocols that can attribute rounds to
// the paper's algorithm parts; runs install it on the engine so
// reports can break messages down per part.
type PartLabeler interface {
	PartAt(round int) string
}

// partLabelerOf returns the schedule labeler shared by a run's
// protocols, if they provide one (schedules are identical across
// nodes, so the first protocol's labeler covers the system).
func partLabelerOf(ps []sim.Protocol) func(int) string {
	if len(ps) == 0 {
		return nil
	}
	if pl, ok := ps[0].(PartLabeler); ok {
		return pl.PartAt
	}
	return nil
}

// ConsensusReport is the outcome of RunConsensus.
type ConsensusReport struct {
	Algorithm Algorithm
	N, T      int
	Metrics   Metrics
	// Decisions[i] is 0 or 1, or -1 for nodes that crashed or (in
	// pathological configurations) did not decide.
	Decisions []int
	Crashed   []int
	// Agreement and Validity summarize the §2 correctness conditions
	// over the surviving nodes.
	Agreement bool
	Validity  bool
}

// RunConsensus solves binary consensus among n nodes with fault bound
// t and the given inputs.
func RunConsensus(n, t int, inputs []bool, opts ...Option) (*ConsensusReport, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("lineartime: %d inputs for n=%d", len(inputs), n)
	}
	o := buildOptions(opts)

	type decider interface {
		Decision() (bool, bool)
	}
	ps := make([]sim.Protocol, n)
	ds := make([]decider, n)
	var schedule int
	singlePort := false

	switch o.algorithm {
	case FewCrashes:
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := consensus.NewFewCrashes(i, top, inputs[i])
			ps[i], ds[i] = m, m
			schedule = m.ScheduleLength()
		}
	case ManyCrashes:
		top, err := consensus.NewManyTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := consensus.NewManyCrashes(i, top, inputs[i])
			ps[i], ds[i] = m, m
			schedule = m.ScheduleLength()
		}
	case FloodingBaseline:
		for i := 0; i < n; i++ {
			m := consensus.NewFlooding(i, n, t, inputs[i])
			ps[i], ds[i] = m, m
			schedule = m.ScheduleLength()
		}
	case SinglePortLinear:
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := singleport.New(i, top, inputs[i])
			ps[i], ds[i] = m, m
			schedule = m.ScheduleLength()
		}
		singlePort = true
	case EarlyStoppingBaseline:
		for i := 0; i < n; i++ {
			m := consensus.NewEarlyStopping(i, n, t, inputs[i])
			ps[i], ds[i] = m, m
			schedule = m.MaxRounds()
		}
	case CoordinatorBaseline:
		for i := 0; i < n; i++ {
			m := consensus.NewRotatingCoordinator(i, n, t, inputs[i])
			ps[i], ds[i] = m, m
			schedule = m.ScheduleLength()
		}
	default:
		return nil, fmt.Errorf("lineartime: unknown algorithm %v", o.algorithm)
	}

	res, err := runEngine(o, sim.Config{
		Protocols:   ps,
		PartLabeler: partLabelerOf(ps),
		Adversary:   o.adversary(n, t),
		MaxRounds:   schedule + 8,
		SinglePort:  singlePort,
	})
	if err != nil {
		return nil, err
	}

	report := &ConsensusReport{
		Algorithm: o.algorithm,
		N:         n,
		T:         t,
		Metrics:   toMetrics(res),
		Decisions: make([]int, n),
		Crashed:   res.Crashed.Elements(),
		Agreement: true,
		Validity:  true,
	}
	any0, any1 := false, false
	for _, in := range inputs {
		if in {
			any1 = true
		} else {
			any0 = true
		}
	}
	first := -1
	for i := 0; i < n; i++ {
		report.Decisions[i] = -1
		if res.Crashed.Contains(i) {
			continue
		}
		v, ok := ds[i].Decision()
		if !ok {
			report.Agreement = false
			continue
		}
		d := 0
		if v {
			d = 1
		}
		report.Decisions[i] = d
		if first < 0 {
			first = d
		} else if first != d {
			report.Agreement = false
		}
		if (d == 1 && !any1) || (d == 0 && !any0) {
			report.Validity = false
		}
	}
	return report, nil
}

func runEngine(o options, cfg sim.Config) (*sim.Result, error) {
	if o.concurrent {
		if cfg.SinglePort {
			return nil, errors.New("lineartime: concurrent runtime is multi-port only")
		}
		return sim.RunParallel(cfg, o.parallelism)
	}
	return sim.Run(cfg)
}

func toMetrics(res *sim.Result) Metrics {
	m := Metrics{
		Rounds:      res.Metrics.Rounds,
		Messages:    res.Metrics.Messages,
		Bits:        res.Metrics.Bits,
		ByzMessages: res.Metrics.ByzMessages,
	}
	if len(res.Metrics.PerPart) > 0 {
		m.PerPart = make(map[string]int64, len(res.Metrics.PerPart))
		for k, v := range res.Metrics.PerPart {
			m.PerPart[k] = v
		}
	}
	return m
}

// GossipReport is the outcome of RunGossip.
type GossipReport struct {
	N, T    int
	Metrics Metrics
	Crashed []int
	// Extant[i] maps node names to rumors as decided by node i (nil
	// for crashed nodes).
	Extant []map[int]uint64
	// Complete reports whether every surviving node's extant set
	// contains every surviving node's rumor.
	Complete bool
	// Baseline selects all-to-all gossip instead of the §5 algorithm.
}

// RunGossip solves gossiping among n nodes with fault bound t < n/5.
// rumors[i] is node i's input. If baseline is true the all-to-all
// comparator runs instead of the §5 algorithm.
func RunGossip(n, t int, rumors []uint64, baseline bool, opts ...Option) (*GossipReport, error) {
	if len(rumors) != n {
		return nil, fmt.Errorf("lineartime: %d rumors for n=%d", len(rumors), n)
	}
	o := buildOptions(opts)
	ps := make([]sim.Protocol, n)
	extants := make([]func() *gossip.ExtantSet, n)
	var schedule int
	switch {
	case baseline:
		for i := 0; i < n; i++ {
			m := gossip.NewAllToAll(i, n, gossip.Rumor(rumors[i]))
			ps[i] = m
			extants[i] = m.Extant
			schedule = m.ScheduleLength()
		}
	case o.singlePort:
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
		if err != nil {
			return nil, err
		}
		sched, err := singleport.NewGossipSchedule(top, o.seed)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := singleport.NewSPGossip(i, sched, gossip.Rumor(rumors[i]))
			ps[i] = m
			extants[i] = m.Extant
			schedule = m.ScheduleLength()
		}
	default:
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := gossip.New(i, top, gossip.Rumor(rumors[i]))
			ps[i] = m
			extants[i] = m.Extant
			schedule = m.ScheduleLength()
		}
	}
	res, err := runEngine(o, sim.Config{
		Protocols:   ps,
		PartLabeler: partLabelerOf(ps),
		Adversary:   o.adversary(n, t),
		MaxRounds:   schedule + 8,
		SinglePort:  o.singlePort && !baseline,
	})
	if err != nil {
		return nil, err
	}
	report := &GossipReport{
		N:        n,
		T:        t,
		Metrics:  toMetrics(res),
		Crashed:  res.Crashed.Elements(),
		Extant:   make([]map[int]uint64, n),
		Complete: true,
	}
	for i := 0; i < n; i++ {
		if res.Crashed.Contains(i) {
			continue
		}
		e := extants[i]()
		view := make(map[int]uint64, e.Count())
		e.Known().ForEach(func(j int) { view[j] = uint64(e.Rumor(j)) })
		report.Extant[i] = view
		for j := 0; j < n; j++ {
			if !res.Crashed.Contains(j) {
				if _, ok := view[j]; !ok {
					report.Complete = false
				}
			}
		}
	}
	return report, nil
}

// CheckpointReport is the outcome of RunCheckpointing.
type CheckpointReport struct {
	N, T    int
	Metrics Metrics
	Crashed []int
	// ExtantSet is the agreed set of node names (nil when agreement
	// failed, which the Agreement flag records).
	ExtantSet []int
	Agreement bool
	// Baseline reports whether the O(tn) comparator was used.
	Baseline bool
}

// RunCheckpointing solves checkpointing among n nodes with fault bound
// t < n/5. If baseline is true the direct O(tn)-message comparator
// runs instead of the §6 algorithm.
func RunCheckpointing(n, t int, baseline bool, opts ...Option) (*CheckpointReport, error) {
	o := buildOptions(opts)
	ps := make([]sim.Protocol, n)
	outs := make([]func() (*bitset.Set, bool), n)
	var schedule int
	switch {
	case baseline:
		for i := 0; i < n; i++ {
			m := checkpoint.NewDirect(i, n, t)
			ps[i] = m
			outs[i] = m.Decision
			schedule = m.ScheduleLength()
		}
	case o.singlePort:
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
		if err != nil {
			return nil, err
		}
		sched, err := singleport.NewGossipSchedule(top, o.seed)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := singleport.NewSPCheckpointing(i, sched)
			ps[i] = m
			outs[i] = m.Decision
			schedule = m.ScheduleLength()
		}
	default:
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := checkpoint.New(i, top)
			ps[i] = m
			outs[i] = m.Decision
			schedule = m.ScheduleLength()
		}
	}
	res, err := runEngine(o, sim.Config{
		Protocols:   ps,
		PartLabeler: partLabelerOf(ps),
		Adversary:   o.adversary(n, t),
		MaxRounds:   schedule + 8,
		SinglePort:  o.singlePort && !baseline,
	})
	if err != nil {
		return nil, err
	}
	report := &CheckpointReport{
		N:         n,
		T:         t,
		Metrics:   toMetrics(res),
		Crashed:   res.Crashed.Elements(),
		Agreement: true,
		Baseline:  baseline,
	}
	var agreed *bitset.Set
	for i := 0; i < n; i++ {
		if res.Crashed.Contains(i) {
			continue
		}
		set, ok := outs[i]()
		if !ok {
			report.Agreement = false
			continue
		}
		if agreed == nil {
			agreed = set
		} else if !agreed.Equal(set) {
			report.Agreement = false
		}
	}
	if agreed != nil && report.Agreement {
		report.ExtantSet = agreed.Elements()
	}
	return report, nil
}

// ByzantineReport is the outcome of RunByzantineConsensus.
type ByzantineReport struct {
	N, T    int
	L       int
	Metrics Metrics
	// Decisions[i] holds honest node i's decision; corrupted nodes
	// have ok=false entries.
	Decisions []uint64
	Decided   []bool
	Corrupted []int
	Agreement bool
	// Baseline reports whether all-nodes Dolev–Strong was used.
	Baseline bool
}

// RunByzantineConsensus solves authenticated-Byzantine consensus among
// n nodes with fault bound t < n/2. Corrupted nodes and their strategy
// come from WithByzantine. If baseline is true the all-nodes
// Dolev–Strong comparator runs instead of AB-Consensus.
func RunByzantineConsensus(n, t int, inputs []uint64, baseline bool, opts ...Option) (*ByzantineReport, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("lineartime: %d inputs for n=%d", len(inputs), n)
	}
	o := buildOptions(opts)
	cfg, err := byzantine.NewConfig(n, t, o.seed)
	if err != nil {
		return nil, err
	}
	if len(o.byzNodes) > t {
		return nil, fmt.Errorf("lineartime: %d corrupted nodes exceed t=%d", len(o.byzNodes), t)
	}

	corrupted := make(map[int]bool, len(o.byzNodes))
	for _, id := range o.byzNodes {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("lineartime: corrupted node %d out of range", id)
		}
		corrupted[id] = true
	}

	ps := make([]sim.Protocol, n)
	type decider interface {
		Decision() (uint64, bool)
	}
	ds := make([]decider, n)
	byz := bitset.New(n)
	for i := 0; i < n; i++ {
		if corrupted[i] {
			byz.Add(i)
			switch o.byzStrategy {
			case Equivocate:
				ps[i] = byzantine.NewEquivocator(i, cfg, cfg.Authority.Signer(i), inputs[i], inputs[i]+1)
			case Spam:
				ps[i] = byzantine.NewSpammer(i, cfg, cfg.Authority.Signer(i))
			default:
				ps[i] = byzantine.NewSilent(cfg)
			}
			continue
		}
		if baseline {
			m := byzantine.NewDSAll(i, cfg, cfg.Authority.Signer(i), inputs[i])
			ps[i], ds[i] = m, m
		} else {
			m := byzantine.NewABConsensus(i, cfg, cfg.Authority.Signer(i), inputs[i])
			ps[i], ds[i] = m, m
		}
	}
	maxRounds := cfg.ScheduleLength() + 8
	res, err := sim.Run(sim.Config{
		Protocols:   ps,
		PartLabeler: partLabelerOf(ps),
		Byzantine:   byz,
		MaxRounds:   maxRounds,
	})
	if err != nil {
		return nil, err
	}
	report := &ByzantineReport{
		N:         n,
		T:         t,
		L:         cfg.L,
		Metrics:   toMetrics(res),
		Decisions: make([]uint64, n),
		Decided:   make([]bool, n),
		Corrupted: append([]int(nil), o.byzNodes...),
		Agreement: true,
		Baseline:  baseline,
	}
	var agreed *uint64
	for i := 0; i < n; i++ {
		if ds[i] == nil {
			continue
		}
		v, ok := ds[i].Decision()
		if !ok {
			report.Agreement = false
			continue
		}
		report.Decisions[i] = v
		report.Decided[i] = true
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			report.Agreement = false
		}
	}
	return report, nil
}
