package lineartime

import (
	"fmt"
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/expander"
	"lineartime/internal/sim"
)

// Ablations for the design choices called out in DESIGN.md: the
// overlay degree d trades message volume (every little node sends d
// messages per flood/probing round) against fault tolerance (the
// survival threshold δ = d/4 shrinks with d, making local probing
// easier to pause). The benchmarks print the rounds/messages series;
// the tests pin correctness across the whole parameter range.

// BenchmarkAblationOverlayDegree sweeps the little-overlay degree for
// Few-Crashes-Consensus at fixed (n, t).
func BenchmarkAblationOverlayDegree(b *testing.B) {
	const n, t = 256, 42
	for _, d := range []int{8, 16, 24, 32} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := RunConsensus(n, t, benchInputs(n),
					WithSeed(1), WithOverlayDegree(d), WithRandomCrashes(t, 5*t))
				if err != nil {
					b.Fatal(err)
				}
				reportConsensus(b, r)
			}
		})
	}
}

// BenchmarkAblationProbingDelta sweeps the survival threshold δ on the
// AEA stage directly: larger δ demands denser surviving neighborhoods,
// shrinking the decider set under targeted crashes.
func BenchmarkAblationProbingDelta(b *testing.B) {
	const n, t = 250, 41
	for _, delta := range []int{2, 4, 8, 12} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			// Rebuild the little overlay with the ablated δ.
			little, err := expander.New(top.L, expander.Options{
				Degree: top.Little.P.Degree, Delta: delta, Seed: top.Little.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			top.Little = little
			for i := 0; i < b.N; i++ {
				ms := make([]*consensus.AEA, n)
				ps := make([]sim.Protocol, n)
				for j := 0; j < n; j++ {
					ms[j] = consensus.NewAEA(j, top, j%3 == 0, 0, true)
					ps[j] = ms[j]
				}
				res, err := sim.Run(sim.Config{
					Protocols: ps,
					Fault:     crash.NewTargetLittle(top.L, t, 3),
					MaxRounds: ms[0].ScheduleLength() + 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				deciders := 0
				for j, m := range ms {
					if !res.Crashed.Contains(j) {
						if _, ok := m.Decided(); ok {
							deciders++
						}
					}
				}
				b.ReportMetric(float64(deciders), "deciders")
				b.ReportMetric(float64(res.Metrics.Messages), "msgs")
			}
		})
	}
}

// TestDegreeAblationCorrectness pins that consensus stays correct over
// the whole overlay-degree range the ablation sweeps.
func TestDegreeAblationCorrectness(t *testing.T) {
	const n, tt = 100, 20
	inputs := boolInputs(n, func(i int) bool { return i%3 == 0 })
	for _, d := range []int{8, 16, 24, 32} {
		r, err := RunConsensus(n, tt, inputs,
			WithSeed(2), WithOverlayDegree(d), WithRandomCrashes(tt, 60))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !r.Agreement || !r.Validity {
			t.Fatalf("d=%d: agreement=%v validity=%v", d, r.Agreement, r.Validity)
		}
	}
}

// TestDegreeTradeoffShape pins the ablation's headline: messages grow
// with the degree (the d-factor in every flood/probing round).
func TestDegreeTradeoffShape(t *testing.T) {
	const n, tt = 200, 40
	inputs := boolInputs(n, func(i int) bool { return i%3 == 0 })
	low, err := RunConsensus(n, tt, inputs, WithSeed(3), WithOverlayDegree(8))
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunConsensus(n, tt, inputs, WithSeed(3), WithOverlayDegree(32))
	if err != nil {
		t.Fatal(err)
	}
	if high.Metrics.Messages <= low.Metrics.Messages {
		t.Fatalf("degree 32 sent %d ≤ degree 8's %d messages; the d-factor vanished",
			high.Metrics.Messages, low.Metrics.Messages)
	}
}
