// Benchmarks regenerating the paper's evaluation artifacts (Table 1
// and the per-theorem performance claims; the paper has no figures).
// Each benchmark reports the paper's two metrics — rounds and
// communication — as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the series recorded in EXPERIMENTS.md. Correctness is
// asserted inside every iteration: a benchmark that agrees on nothing
// measures nothing.
package lineartime

import (
	"fmt"
	"math"
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/lowerbound"
	"lineartime/internal/sim"
)

func benchInputs(n int) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = i%3 == 0
	}
	return in
}

func benchRumors(n int) []uint64 {
	r := make([]uint64, n)
	for i := range r {
		r[i] = uint64(i)
	}
	return r
}

func reportConsensus(b *testing.B, r *ConsensusReport) {
	b.Helper()
	if !r.Agreement || !r.Validity {
		b.Fatalf("correctness violated: agreement=%v validity=%v", r.Agreement, r.Validity)
	}
	b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
	b.ReportMetric(float64(r.Metrics.Messages), "msgs")
	b.ReportMetric(float64(r.Metrics.Bits), "wire-bits")
}

// BenchmarkTable1 regenerates the Table 1 rows: each sub-benchmark
// runs one (fault type, problem) entry at its claimed boundary t.
func BenchmarkTable1(b *testing.B) {
	const n = 512
	lg := math.Log2(float64(n))
	b.Run("crash-consensus-boundary", func(b *testing.B) {
		t := int(float64(n) / lg)
		if 5*t > n {
			t = n / 5
		}
		for i := 0; i < b.N; i++ {
			r, err := RunConsensus(n, t, benchInputs(n),
				WithSeed(1), WithRandomCrashes(t, 5*t))
			if err != nil {
				b.Fatal(err)
			}
			reportConsensus(b, r)
		}
	})
	b.Run("crash-consensus-single-port", func(b *testing.B) {
		t := int(float64(n) / lg)
		if 5*t > n {
			t = n / 5
		}
		for i := 0; i < b.N; i++ {
			r, err := RunConsensus(n, t, benchInputs(n),
				WithSeed(1), WithAlgorithm(SinglePortLinear))
			if err != nil {
				b.Fatal(err)
			}
			reportConsensus(b, r)
		}
	})
	b.Run("crash-gossip-boundary", func(b *testing.B) {
		t := int(float64(n) / (lg * lg))
		for i := 0; i < b.N; i++ {
			r, err := RunGossip(n, t, benchRumors(n), false,
				WithSeed(1), WithRandomCrashes(t, 40))
			if err != nil {
				b.Fatal(err)
			}
			if !r.Complete {
				b.Fatal("gossip incomplete")
			}
			b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
			b.ReportMetric(float64(r.Metrics.Messages), "msgs")
		}
	})
	b.Run("crash-checkpointing-boundary", func(b *testing.B) {
		t := int(float64(n) / (lg * lg))
		for i := 0; i < b.N; i++ {
			r, err := RunCheckpointing(n, t, false,
				WithSeed(1), WithRandomCrashes(t, 40))
			if err != nil {
				b.Fatal(err)
			}
			if !r.Agreement {
				b.Fatal("checkpointing disagreement")
			}
			b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
			b.ReportMetric(float64(r.Metrics.Messages), "msgs")
		}
	})
	b.Run("byzantine-consensus-boundary", func(b *testing.B) {
		t := int(math.Sqrt(float64(n)) / 2)
		corrupted := make([]int, t)
		for i := range corrupted {
			corrupted[i] = i
		}
		for i := 0; i < b.N; i++ {
			r, err := RunByzantineConsensus(n, t, benchRumors(n), false,
				WithSeed(1), WithByzantine(Equivocate, corrupted...))
			if err != nil {
				b.Fatal(err)
			}
			if !r.Agreement {
				b.Fatal("byzantine disagreement")
			}
			b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
			b.ReportMetric(float64(r.Metrics.Messages), "msgs")
		}
	})
}

// BenchmarkAEA is experiment E2 (Theorem 5): almost-everywhere
// agreement under little-node-targeted crashes.
func BenchmarkAEA(b *testing.B) {
	for _, n := range []int{250, 500, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := n / 6
			top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ms := make([]*consensus.AEA, n)
				ps := make([]sim.Protocol, n)
				for j := 0; j < n; j++ {
					ms[j] = consensus.NewAEA(j, top, j%3 == 0, 0, true)
					ps[j] = ms[j]
				}
				res, err := sim.Run(sim.Config{
					Protocols: ps,
					Fault:     crash.NewTargetLittle(top.L, t, 3),
					MaxRounds: ms[0].ScheduleLength() + 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				deciders := 0
				for j, m := range ms {
					if !res.Crashed.Contains(j) {
						if _, ok := m.Decided(); ok {
							deciders++
						}
					}
				}
				if deciders*5 < 3*n {
					b.Fatalf("only %d deciders, want ≥ 3n/5", deciders)
				}
				b.ReportMetric(float64(res.Metrics.Rounds), "rounds")
				b.ReportMetric(float64(res.Metrics.Messages), "msgs")
			}
		})
	}
}

// BenchmarkSCV is experiment E3 (Theorem 6), covering both branches of
// Part 2.
func BenchmarkSCV(b *testing.B) {
	for _, c := range []struct{ n, t int }{{400, 10}, {400, 80}, {1600, 30}} {
		name := fmt.Sprintf("n=%d/t=%d", c.n, c.t)
		b.Run(name, func(b *testing.B) {
			top, err := consensus.NewTopology(c.n, c.t, consensus.TopologyOptions{Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ms := make([]*consensus.SCV, c.n)
				ps := make([]sim.Protocol, c.n)
				for j := 0; j < c.n; j++ {
					ms[j] = consensus.NewSCV(j, top, j < 3*c.n/5, true, 0, true)
					ps[j] = ms[j]
				}
				res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 4})
				if err != nil {
					b.Fatal(err)
				}
				for j, m := range ms {
					if _, ok := m.Decided(); !ok {
						b.Fatalf("node %d undecided", j)
					}
				}
				b.ReportMetric(float64(res.Metrics.Rounds), "rounds")
				b.ReportMetric(float64(res.Metrics.Messages), "msgs")
			}
		})
	}
}

// BenchmarkFewCrashesConsensus is experiment E4 (Theorem 7).
func BenchmarkFewCrashesConsensus(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := n / 6
			for i := 0; i < b.N; i++ {
				r, err := RunConsensus(n, t, benchInputs(n),
					WithSeed(1), WithRandomCrashes(t, 5*t))
				if err != nil {
					b.Fatal(err)
				}
				reportConsensus(b, r)
			}
		})
	}
}

// BenchmarkManyCrashesConsensus is experiment E5 (Theorem 8 and
// Corollary 1: α up to 1 − 1/n).
func BenchmarkManyCrashesConsensus(b *testing.B) {
	const n = 256
	for _, alpha := range []float64{0.2, 0.5, 0.9} {
		t := int(alpha * float64(n))
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			benchMany(b, n, t)
		})
	}
	b.Run("alpha=max(t=n-1)", func(b *testing.B) { benchMany(b, n, n-1) })
}

func benchMany(b *testing.B, n, t int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := RunConsensus(n, t, benchInputs(n),
			WithSeed(3), WithAlgorithm(ManyCrashes), WithRandomCrashes(t, n))
		if err != nil {
			b.Fatal(err)
		}
		reportConsensus(b, r)
		if lim := n + 8*(1+int(math.Ceil(math.Log2(float64(n))))); r.Metrics.Rounds > lim {
			b.Fatalf("rounds %d above Theorem 8 budget %d", r.Metrics.Rounds, lim)
		}
	}
}

// BenchmarkGossip is experiment E6 (Theorem 9).
func BenchmarkGossip(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := n / 6
			for i := 0; i < b.N; i++ {
				r, err := RunGossip(n, t, benchRumors(n), false,
					WithSeed(1), WithRandomCrashes(t, 60))
				if err != nil {
					b.Fatal(err)
				}
				if !r.Complete {
					b.Fatal("gossip incomplete")
				}
				b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
				b.ReportMetric(float64(r.Metrics.Messages), "msgs")
			}
		})
	}
}

// BenchmarkCheckpointing is experiment E7 (Theorem 10), including the
// O(tn) baseline for the crossover.
func BenchmarkCheckpointing(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		t := n / 6
		b.Run(fmt.Sprintf("algo/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := RunCheckpointing(n, t, false,
					WithSeed(1), WithRandomCrashes(t, 60))
				if err != nil {
					b.Fatal(err)
				}
				if !r.Agreement {
					b.Fatal("disagreement")
				}
				b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
				b.ReportMetric(float64(r.Metrics.Messages), "msgs")
			}
		})
		b.Run(fmt.Sprintf("baseline/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := RunCheckpointing(n, t, true,
					WithSeed(1), WithRandomCrashes(t, 60))
				if err != nil {
					b.Fatal(err)
				}
				if !r.Agreement {
					b.Fatal("baseline disagreement")
				}
				b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
				b.ReportMetric(float64(r.Metrics.Messages), "msgs")
			}
		})
	}
}

// BenchmarkABConsensus is experiment E8 (Theorem 11) across Byzantine
// strategies at t = √n/2.
func BenchmarkABConsensus(b *testing.B) {
	for _, n := range []int{100, 400, 900} {
		t := int(math.Sqrt(float64(n)) / 2)
		if t < 1 {
			t = 1
		}
		corrupted := make([]int, t)
		for i := range corrupted {
			corrupted[i] = i
		}
		for _, strat := range []struct {
			name string
			s    ByzantineStrategy
		}{{"silence", Silence}, {"equivocate", Equivocate}, {"spam", Spam}} {
			b.Run(fmt.Sprintf("%s/n=%d", strat.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := RunByzantineConsensus(n, t, benchRumors(n), false,
						WithSeed(1), WithByzantine(strat.s, corrupted...))
					if err != nil {
						b.Fatal(err)
					}
					if !r.Agreement {
						b.Fatal("byzantine disagreement")
					}
					b.ReportMetric(float64(r.Metrics.Rounds), "rounds")
					b.ReportMetric(float64(r.Metrics.Messages), "msgs")
				}
			})
		}
	}
}

// BenchmarkSinglePortConsensus is experiment E9 (Theorem 12).
func BenchmarkSinglePortConsensus(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := n / 6
			for i := 0; i < b.N; i++ {
				r, err := RunConsensus(n, t, benchInputs(n),
					WithSeed(1), WithAlgorithm(SinglePortLinear), WithRandomCrashes(t, 3*t))
				if err != nil {
					b.Fatal(err)
				}
				reportConsensus(b, r)
			}
		})
	}
}

// BenchmarkLowerBoundDivergence is experiment E10 (Theorem 13).
func BenchmarkLowerBoundDivergence(b *testing.B) {
	for _, n := range []int{81, 243, 729} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				series, err := lowerbound.DivergenceSeries(n, 24)
				if err != nil {
					b.Fatal(err)
				}
				if lowerbound.CheckDivergenceInvariant(series) >= 0 {
					b.Fatal("3^i invariant violated")
				}
				full := lowerbound.RoundsToFullDivergence(series, n)
				if full < 0 {
					b.Fatal("no full divergence")
				}
				b.ReportMetric(float64(full), "rounds-to-diverge")
			}
		})
	}
}

// BenchmarkBaselineCrossover is experiment E11: bits of Few-Crashes vs
// flooding as n grows at fixed t/n.
func BenchmarkBaselineCrossover(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		t := n / 6
		b.Run(fmt.Sprintf("few-crashes/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := RunConsensus(n, t, benchInputs(n), WithSeed(1))
				if err != nil {
					b.Fatal(err)
				}
				reportConsensus(b, r)
			}
		})
		b.Run(fmt.Sprintf("flooding/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := RunConsensus(n, t, benchInputs(n),
					WithSeed(1), WithAlgorithm(FloodingBaseline))
				if err != nil {
					b.Fatal(err)
				}
				reportConsensus(b, r)
			}
		})
	}
}
