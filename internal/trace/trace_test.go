package trace

import (
	"strings"
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func runTraced(t *testing.T, n, tt int, adv sim.LinkFault) (*Recorder, *sim.Result) {
	t.Helper()
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(n)
	ps := make([]sim.Protocol, n)
	var schedule int
	for i := 0; i < n; i++ {
		m := consensus.NewFewCrashes(i, top, i%2 == 0)
		ps[i] = m
		schedule = m.ScheduleLength()
	}
	res, err := sim.Run(sim.Config{
		Protocols: ps,
		Fault:     adv,
		Observer:  rec,
		MaxRounds: schedule + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderMatchesMetrics(t *testing.T) {
	rec, res := runTraced(t, 60, 12, nil)
	if rec.Messages() != res.Metrics.Messages {
		t.Fatalf("recorder saw %d messages, metrics %d", rec.Messages(), res.Metrics.Messages)
	}
	var sentSum int64
	for i := 0; i < 60; i++ {
		sentSum += rec.Sent(i)
	}
	if sentSum != rec.Messages() {
		t.Fatalf("per-node sends %d != total %d", sentSum, rec.Messages())
	}
}

func TestRecorderCrashTimeline(t *testing.T) {
	adv := crash.NewSchedule([]crash.Event{
		{Node: 5, Round: 2, Keep: 0},
		{Node: 9, Round: 4, Keep: 1},
	})
	rec, res := runTraced(t, 60, 12, adv)
	events := rec.Crashes()
	if len(events) != 2 {
		t.Fatalf("recorded %d crashes, want 2", len(events))
	}
	for _, e := range events {
		if !res.Crashed.Contains(e.Node) {
			t.Fatalf("recorded crash of %d not in result", e.Node)
		}
	}
	if events[0].Round != 2 || events[0].Node != 5 {
		t.Fatalf("first crash event %+v", events[0])
	}
}

func TestRecorderAnalytics(t *testing.T) {
	rec, _ := runTraced(t, 60, 12, nil)
	if _, msgs := rec.BusiestRound(); msgs == 0 {
		t.Fatal("no busiest round")
	}
	if _, msgs := rec.BusiestNode(); msgs == 0 {
		t.Fatal("no busiest node")
	}
	profile := rec.TrafficProfile(8)
	if len(profile) != 8 {
		t.Fatalf("profile buckets = %d", len(profile))
	}
	var sum int64
	for _, c := range profile {
		sum += c
	}
	if sum != rec.Messages() {
		t.Fatalf("profile sum %d != total %d", sum, rec.Messages())
	}
	if rec.TrafficProfile(0) != nil {
		t.Fatal("zero buckets should yield nil")
	}
	if !strings.Contains(rec.Summary(), "messages:") {
		t.Fatal("summary malformed")
	}
}

func TestRecorderQuietNodes(t *testing.T) {
	// A node crashed at round 0 with nothing delivered never sends.
	adv := crash.NewSchedule([]crash.Event{{Node: 3, Round: 0, Keep: 0}})
	rec, _ := runTraced(t, 60, 12, adv)
	quiet := rec.QuietNodes()
	found := false
	for _, q := range quiet {
		if q == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("silent-crashed node 3 not in quiet list %v", quiet)
	}
}

func TestRecorderHalts(t *testing.T) {
	rec, res := runTraced(t, 60, 12, nil)
	if len(rec.halts) != 60 {
		t.Fatalf("recorded %d halts, want 60", len(rec.halts))
	}
	for _, e := range rec.halts {
		if res.HaltedAt[e.Node] != e.Round {
			t.Fatalf("halt event %+v disagrees with result %d", e, res.HaltedAt[e.Node])
		}
	}
}
