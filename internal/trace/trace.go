// Package trace records and summarizes simulation transcripts via the
// engine's Observer hook: per-node send/receive histograms, per-round
// traffic profiles, crash and halt timelines. It exists for debugging
// protocol schedules and for the traffic analyses in EXPERIMENTS.md
// (e.g. confirming that the flood parts front-load the traffic and the
// inquiry parts trail off).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"lineartime/internal/sim"
)

// Recorder accumulates a run's events. Install with sim.Config.Observer.
// Not safe for concurrent engines (the sequential engine delivers
// events in deterministic order from one goroutine).
type Recorder struct {
	n int

	sent     []int64
	received []int64
	bits     []int64
	perRound []int64
	crashes  []Event
	halts    []Event
	messages int64
}

// Event is a timestamped node event.
type Event struct {
	Round int
	Node  sim.NodeID
}

// NewRecorder creates a recorder for n nodes.
func NewRecorder(n int) *Recorder {
	return &Recorder{
		n:        n,
		sent:     make([]int64, n),
		received: make([]int64, n),
		bits:     make([]int64, n),
	}
}

var _ sim.Observer = (*Recorder)(nil)

// OnMessage implements sim.Observer.
func (r *Recorder) OnMessage(round int, env sim.Envelope) {
	for len(r.perRound) <= round {
		r.perRound = append(r.perRound, 0)
	}
	r.perRound[round]++
	r.messages++
	if env.From >= 0 && env.From < r.n {
		r.sent[env.From]++
		r.bits[env.From] += int64(env.Payload.SizeBits())
	}
	if env.To >= 0 && env.To < r.n {
		r.received[env.To]++
	}
}

// OnCrash implements sim.Observer.
func (r *Recorder) OnCrash(round int, node sim.NodeID) {
	r.crashes = append(r.crashes, Event{Round: round, Node: node})
}

// OnHalt implements sim.Observer.
func (r *Recorder) OnHalt(round int, node sim.NodeID) {
	r.halts = append(r.halts, Event{Round: round, Node: node})
}

// Messages returns the total recorded message count.
func (r *Recorder) Messages() int64 { return r.messages }

// Sent returns node id's send count.
func (r *Recorder) Sent(id sim.NodeID) int64 { return r.sent[id] }

// Received returns node id's receive count.
func (r *Recorder) Received(id sim.NodeID) int64 { return r.received[id] }

// Crashes returns the crash timeline in event order.
func (r *Recorder) Crashes() []Event { return append([]Event(nil), r.crashes...) }

// BusiestRound returns the round with the most traffic and its count.
func (r *Recorder) BusiestRound() (round int, msgs int64) {
	for i, c := range r.perRound {
		if c > msgs {
			round, msgs = i, c
		}
	}
	return round, msgs
}

// BusiestNode returns the node with the most sends and its count.
func (r *Recorder) BusiestNode() (node sim.NodeID, msgs int64) {
	for i, c := range r.sent {
		if c > msgs {
			node, msgs = i, c
		}
	}
	return node, msgs
}

// QuietNodes returns the nodes that sent nothing (crashed-at-birth
// victims and pure listeners).
func (r *Recorder) QuietNodes() []sim.NodeID {
	var out []sim.NodeID
	for i, c := range r.sent {
		if c == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TrafficProfile buckets the per-round counts into `buckets` equal
// spans (for sparkline-style summaries).
func (r *Recorder) TrafficProfile(buckets int) []int64 {
	if buckets < 1 || len(r.perRound) == 0 {
		return nil
	}
	out := make([]int64, buckets)
	span := (len(r.perRound) + buckets - 1) / buckets
	for i, c := range r.perRound {
		out[i/span] += c
	}
	return out
}

// Summary renders a compact multi-line report.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "messages: %d over %d rounds\n", r.messages, len(r.perRound))
	br, bm := r.BusiestRound()
	fmt.Fprintf(&b, "busiest round: %d (%d msgs)\n", br, bm)
	bn, bc := r.BusiestNode()
	fmt.Fprintf(&b, "busiest node:  %d (%d msgs)\n", bn, bc)
	fmt.Fprintf(&b, "crashes: %d", len(r.crashes))
	if len(r.crashes) > 0 {
		rounds := make([]string, 0, len(r.crashes))
		for _, e := range r.crashes {
			rounds = append(rounds, fmt.Sprintf("%d@r%d", e.Node, e.Round))
		}
		sort.Strings(rounds)
		fmt.Fprintf(&b, " (%s)", strings.Join(rounds, ", "))
	}
	b.WriteByte('\n')
	return b.String()
}
