package campaign

import (
	"math"

	"lineartime/internal/scenario"
)

// The fault space: initial coarse grids per axis, and greedy neighbor
// generation around the worst offenders. Everything here is integer
// arithmetic over the campaign shape (n, t) and the refinement level,
// so candidate generation is exactly reproducible. Omission rates are
// quantized to basis points (1/10000) to keep the float dimension on a
// deterministic lattice.

// shape is the scenario size the space is built against.
type shape struct{ n, t int }

// grid returns the initial (level-0) candidates of one axis.
func grid(kind string, sh shape) []scenario.FaultModel {
	var out []scenario.FaultModel
	switch kind {
	case KindOmission:
		for _, bp := range []int{200, 500, 1000, 2000, 3500, 5000} {
			out = append(out, scenario.FaultModel{Kind: scenario.OmissionFaults, Rate: rateOf(bp)})
		}
	case KindPartition:
		windows := [][2]int{{1, 4}, {1, 8}, {2, 6}}
		for _, w := range windows {
			for _, cut := range []int{sh.n / 4, sh.n / 2} {
				if cut < 1 || cut >= sh.n {
					continue
				}
				out = append(out, scenario.FaultModel{
					Kind: scenario.PartitionWindow, WindowStart: w[0], WindowEnd: w[1], Cut: cut,
				})
			}
		}
	case KindDelay:
		for _, d := range []int{1, 2, 3, 4} {
			out = append(out, scenario.FaultModel{Kind: scenario.DelayedLinks, Delay: d})
		}
	case KindCrash:
		if sh.t < 1 {
			return nil
		}
		counts := []int{sh.t}
		if half := sh.t / 2; half >= 1 && half != sh.t {
			counts = append([]int{half}, counts...)
		}
		for _, c := range counts {
			for _, h := range []int{2, 8} {
				out = append(out, scenario.FaultModel{Kind: scenario.RandomCrashes, Count: c, Horizon: h})
			}
		}
		out = append(out,
			scenario.FaultModel{Kind: scenario.CascadeCrashes, Count: sh.t},
			scenario.FaultModel{Kind: scenario.TargetLittleCrashes, Count: sh.t},
		)
	}
	return out
}

// rateOf maps basis points onto the omission-rate lattice.
func rateOf(bp int) float64 { return float64(bp) / 10000 }

// bpOf quantizes a rate back onto the lattice.
func bpOf(rate float64) int { return int(math.Round(rate * 10000)) }

// step halves a base step per refinement level, never below floor.
func step(base, level, floor int) int {
	s := base >> (level - 1)
	if s < floor {
		s = floor
	}
	return s
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// neighbors returns the greedy refinements of a worst offender at the
// given level: the adjacent lattice points on each of the model's
// parameters, with the step size halving per level. Generated models
// are valid by construction (clamped into the ranges the scenario
// validation accepts), so a refinement never wastes budget on a
// rejected candidate. Duplicates of already-visited points are culled
// by the controller's visited set, not here.
func neighbors(f scenario.FaultModel, level int, sh shape) []scenario.FaultModel {
	var out []scenario.FaultModel
	add := func(g scenario.FaultModel) { out = append(out, g) }
	switch f.Kind {
	case scenario.OmissionFaults:
		bp := bpOf(f.Rate)
		d := step(400, level, 25)
		for _, nb := range []int{bp - d, bp + d} {
			nb = clamp(nb, 25, 9900)
			if nb != bp {
				g := f
				g.Rate = rateOf(nb)
				add(g)
			}
		}
	case scenario.PartitionWindow:
		d := step(4, level, 1)
		for _, end := range []int{f.WindowEnd - d, f.WindowEnd + d} {
			if end > f.WindowStart && end != f.WindowEnd {
				g := f
				g.WindowEnd = end
				add(g)
			}
		}
		cd := step(sh.n/8, level, 1)
		for _, cut := range []int{f.Cut - cd, f.Cut + cd} {
			cut = clamp(cut, 1, sh.n-1)
			if cut != f.Cut {
				g := f
				g.Cut = cut
				add(g)
			}
		}
	case scenario.DelayedLinks:
		for _, d := range []int{f.Delay - 1, f.Delay + 1} {
			d = clamp(d, 1, 12)
			if d != f.Delay {
				g := f
				g.Delay = d
				add(g)
			}
		}
	case scenario.RandomCrashes:
		if sh.t >= 1 {
			cd := step(max(1, sh.t/4), level, 1)
			for _, c := range []int{f.Count - cd, f.Count + cd} {
				c = clamp(c, 1, sh.t)
				if c != f.Count {
					g := f
					g.Count = c
					add(g)
				}
			}
		}
		hd := step(4, level, 1)
		for _, h := range []int{f.Horizon - hd, f.Horizon + hd} {
			h = clamp(h, 1, 4*sh.n)
			if h != f.Horizon {
				g := f
				g.Horizon = h
				add(g)
			}
		}
	case scenario.CascadeCrashes, scenario.TargetLittleCrashes:
		cd := step(max(1, sh.t/4), level, 1)
		for _, c := range []int{f.Count - cd, f.Count + cd} {
			c = clamp(c, 1, sh.n)
			if c != f.Count {
				g := f
				g.Count = c
				add(g)
			}
		}
	}
	return out
}
