// Package campaign is the chaos-campaign controller: a budgeted,
// deterministic search over the fault-parameter space of a registry
// scenario for the adversary schedules that hurt the most — maximize
// rounds and bits, or break the scenario's correctness guarantee
// outright (agreement, completeness, termination).
//
// The search runs in the reconcile/requeue idiom: a work queue of
// candidate fault models is seeded with a coarse grid over every fault
// kind under search (omission rate, partition window/cut, delay bound,
// crash schedules), each candidate is reconciled into a scored Result
// by one engine run, and when the queue drains the controller re-queues
// greedily-refined neighbors of the current worst offenders — up to a
// wave cap, a total-sim budget, and an optional wall-clock budget.
// Every candidate is seeded and deterministic, keyed by its
// scenario.Spec.Key() content address (so a serving-layer cache
// deduplicates revisits across campaigns), and the whole exploration is
// a pure function of the campaign Spec: re-running a campaign produces
// a byte-identical frontier artifact, and a checkpoint taken at any
// batch boundary resumes to the same final artifact.
//
// The output is a "robustness frontier" artifact (Frontier): the top-K
// worst adversary schedules found, with their outcomes — a committed,
// versioned record of where the protocol breaks. internal/serve hosts
// campaigns as resumable async jobs; cmd/campaign drives them locally
// or remotely.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"
	"sort"

	"lineartime/internal/scenario"
)

// The artifact and checkpoint schema identifiers, versioned so the
// formats can evolve without old files being misread.
const (
	FrontierSchema   = "lineartime/frontier/v1"
	CheckpointSchema = "lineartime/campaign-checkpoint/v1"
)

// The fault-space axes a campaign can search, in canonical order.
const (
	KindOmission  = "omission"
	KindPartition = "partition"
	KindDelay     = "delay"
	KindCrash     = "crash"
)

// allKinds is the canonical axis order; Spec.Kinds is normalized
// against it so two spellings of the same axis set produce the same
// campaign (and the same ID).
var allKinds = []string{KindOmission, KindPartition, KindDelay, KindCrash}

// Budget bounds a campaign. MaxSims is the hard evaluation budget;
// MaxWaves caps the greedy refinement generations after the initial
// grid; TopK sizes both the frontier and the per-wave refinement fan.
// MaxWallClockMS, when positive, is a safety valve checked at batch
// boundaries — a campaign cut by wall clock is marked Truncated in its
// artifact, because unlike the sim budget the cut point is not
// deterministic.
type Budget struct {
	MaxSims        int `json:"max_sims"`
	MaxWaves       int `json:"max_waves,omitempty"`
	TopK           int `json:"top_k,omitempty"`
	MaxWallClockMS int `json:"max_wall_clock_ms,omitempty"`
}

// Spec identifies one campaign: the scenario cell to attack, the run
// seed every evaluation shares, the axes to search, and the budget.
// A campaign is a pure function of its (normalized) Spec.
type Spec struct {
	Scenario string   `json:"scenario"`
	N        int      `json:"n"`
	T        int      `json:"t"`
	Seed     uint64   `json:"seed"`
	Kinds    []string `json:"kinds,omitempty"`
	Budget   Budget   `json:"budget"`
}

// Normalize fills defaults and canonicalizes the axis list. It returns
// the normalized copy; the receiver is unchanged.
func (s Spec) Normalize() (Spec, error) {
	if s.Scenario == "" {
		return s, fmt.Errorf("lineartime: campaign needs a scenario")
	}
	if _, ok := scenario.Lookup(s.Scenario); !ok {
		return s, fmt.Errorf("lineartime: unknown scenario %q (see /v1/scenarios)", s.Scenario)
	}
	if s.N <= 0 {
		return s, fmt.Errorf("lineartime: campaign n=%d must be positive", s.N)
	}
	if s.T < 0 {
		return s, fmt.Errorf("lineartime: campaign t=%d must be non-negative", s.T)
	}
	if s.Budget.MaxSims <= 0 {
		return s, fmt.Errorf("lineartime: campaign budget max_sims=%d must be positive", s.Budget.MaxSims)
	}
	if s.Budget.MaxWaves <= 0 {
		s.Budget.MaxWaves = 4
	}
	if s.Budget.TopK <= 0 {
		s.Budget.TopK = 4
	}
	if len(s.Kinds) == 0 {
		s.Kinds = slices.Clone(allKinds)
	} else {
		want := make(map[string]bool, len(s.Kinds))
		for _, k := range s.Kinds {
			if !slices.Contains(allKinds, k) {
				return s, fmt.Errorf("lineartime: unknown campaign fault axis %q (have %v)", k, allKinds)
			}
			want[k] = true
		}
		kinds := make([]string, 0, len(want))
		for _, k := range allKinds {
			if want[k] {
				kinds = append(kinds, k)
			}
		}
		s.Kinds = kinds
	}
	return s, nil
}

// ID is the campaign's content address: a stable fingerprint of the
// normalized Spec. Two POSTs of the same campaign share one job, the
// way two runs of the same scenario Spec share one cache entry.
func (s Spec) ID() string {
	norm, err := s.Normalize()
	if err != nil {
		norm = s
	}
	blob, _ := json.Marshal(norm)
	sum := sha256.Sum256(blob)
	return "cmp-" + hex.EncodeToString(sum[:])[:16]
}

// Candidate is one queued point of the fault space: a fault model in
// its canonical CLI spelling, the refinement level that produced it
// (0 = the initial grid), and the content address of the scenario Spec
// it materializes into.
type Candidate struct {
	Fault string `json:"fault"`
	Level int    `json:"level"`
	Key   string `json:"key"`

	// fm is the parsed model; rebuilt from Fault on checkpoint resume.
	fm scenario.FaultModel
}

// The Result outcomes, from worst to best. A "violated" run broke the
// scenario's safety guarantee (agreement, completeness, tally); a
// "no-termination" run broke liveness (some correct node never halted
// within the round budget); an "ok" run survived with the recorded
// cost; an "error" candidate could not be evaluated (it still consumed
// budget, so the search stays deterministic).
const (
	OutcomeViolated      = "violated"
	OutcomeNoTermination = "no-termination"
	OutcomeOK            = "ok"
	OutcomeError         = "error"
)

// severity ranks outcomes for the frontier ordering.
func severity(outcome string) int {
	switch outcome {
	case OutcomeViolated:
		return 3
	case OutcomeNoTermination:
		return 2
	case OutcomeOK:
		return 1
	default:
		return 0
	}
}

// Result is one reconciled candidate: the fault model, its content
// address, and what it did to the protocol.
type Result struct {
	Fault    string `json:"fault"`
	Key      string `json:"key"`
	Level    int    `json:"level"`
	Outcome  string `json:"outcome"`
	Verdict  string `json:"verdict"`
	Rounds   int    `json:"rounds"`
	Messages int64  `json:"messages"`
	Bits     int64  `json:"bits"`
}

// worse is the frontier order: strongest offender first. Severity
// dominates (a violation beats any slowdown), then rounds, bits and
// messages descending, with the content address as the deterministic
// tie-break.
func worse(a, b Result) bool {
	if sa, sb := severity(a.Outcome), severity(b.Outcome); sa != sb {
		return sa > sb
	}
	if a.Rounds != b.Rounds {
		return a.Rounds > b.Rounds
	}
	if a.Bits != b.Bits {
		return a.Bits > b.Bits
	}
	if a.Messages != b.Messages {
		return a.Messages > b.Messages
	}
	return a.Key < b.Key
}

// Frontier is the campaign's artifact: the robustness frontier of the
// scenario under the searched fault space. It is deterministic for a
// fixed Spec — no timestamps, no machine state — so committed
// artifacts are byte-stable and a resumed campaign converges to the
// same bytes.
type Frontier struct {
	Schema     string `json:"schema"`
	Campaign   Spec   `json:"campaign"`
	Sims       int    `json:"sims"`
	Waves      int    `json:"waves"`
	Evaluated  int    `json:"evaluated"`
	Violations int    `json:"violations"`
	// Truncated names the non-deterministic budget that cut the search
	// ("wall-clock"), empty for a deterministic completion.
	Truncated string   `json:"truncated,omitempty"`
	Frontier  []Result `json:"frontier"`
}

// Encode renders the artifact in its committed form: two-space
// indented JSON with a trailing newline.
func (f *Frontier) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ValidateFrontier checks an encoded artifact against the frontier
// schema: version, campaign shape, internal consistency (sims within
// budget, frontier within top-K and correctly ordered, every fault in
// parseable canonical spelling, every key a spec content address).
// The CI campaign-smoke job and cmd/campaign -validate call this.
func ValidateFrontier(data []byte) error {
	var f Frontier
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("frontier artifact is not valid JSON: %w", err)
	}
	if f.Schema != FrontierSchema {
		return fmt.Errorf("frontier schema %q, want %q", f.Schema, FrontierSchema)
	}
	norm, err := f.Campaign.Normalize()
	if err != nil {
		return fmt.Errorf("frontier campaign spec invalid: %w", err)
	}
	if f.Sims > norm.Budget.MaxSims {
		return fmt.Errorf("frontier used %d sims, over its budget of %d", f.Sims, norm.Budget.MaxSims)
	}
	if len(f.Frontier) > norm.Budget.TopK {
		return fmt.Errorf("frontier holds %d entries, over top_k=%d", len(f.Frontier), norm.Budget.TopK)
	}
	if f.Evaluated > f.Sims {
		return fmt.Errorf("frontier evaluated %d candidates with only %d sims", f.Evaluated, f.Sims)
	}
	for i, r := range f.Frontier {
		if severity(r.Outcome) == 0 && r.Outcome != OutcomeError {
			return fmt.Errorf("frontier[%d] has unknown outcome %q", i, r.Outcome)
		}
		fm, err := scenario.ParseFault(r.Fault)
		if err != nil {
			return fmt.Errorf("frontier[%d] fault %q does not parse: %w", i, r.Fault, err)
		}
		if cli := fm.CLI(); cli != r.Fault {
			return fmt.Errorf("frontier[%d] fault %q is not canonical (want %q)", i, r.Fault, cli)
		}
		if len(r.Key) < 4 || r.Key[:3] != "k1:" {
			return fmt.Errorf("frontier[%d] key %q is not a spec content address", i, r.Key)
		}
		if i > 0 && worse(r, f.Frontier[i-1]) {
			return fmt.Errorf("frontier out of order at entry %d", i)
		}
	}
	return nil
}

// ranked returns the results sorted strongest-offender-first.
func ranked(results []Result) []Result {
	out := slices.Clone(results)
	sort.Slice(out, func(i, j int) bool { return worse(out[i], out[j]) })
	return out
}

// verdictOf summarizes a report's problem-specific correctness and
// whether the scenario's guarantee was violated. For the subroutines
// the guarantee is the paper's ≥ 3n/5 decider threshold.
func verdictOf(rep *scenario.Report) (string, bool) {
	switch {
	case rep.Consensus != nil:
		v := fmt.Sprintf("agreement=%v validity=%v", rep.Consensus.Agreement, rep.Consensus.Validity)
		return v, !rep.Consensus.Agreement || !rep.Consensus.Validity
	case rep.Gossip != nil:
		return fmt.Sprintf("complete=%v", rep.Gossip.Complete), !rep.Gossip.Complete
	case rep.Checkpoint != nil:
		return fmt.Sprintf("agreement=%v", rep.Checkpoint.Agreement), !rep.Checkpoint.Agreement
	case rep.Byzantine != nil:
		return fmt.Sprintf("agreement=%v", rep.Byzantine.Agreement), !rep.Byzantine.Agreement
	case rep.Majority != nil:
		return fmt.Sprintf("agreement=%v", rep.Majority.Agreement), !rep.Majority.Agreement
	case rep.Subroutine != nil:
		v := fmt.Sprintf("deciders=%d all_decided=%v", rep.Subroutine.Deciders, rep.Subroutine.AllDecided)
		return v, 5*rep.Subroutine.Deciders < 3*rep.N
	default:
		return "-", false
	}
}
