package campaign

import "lineartime/internal/obs"

// Meter is the controller's progress instrumentation: counters and
// gauges a host registers once and shares across every campaign it
// runs, so a scrape shows fleet-wide campaign progress (waves refined,
// sims charged, candidates evaluated, violations found, worst severity
// seen). The controller reports at batch and wave boundaries only —
// the same points the checkpoint hook observes — so metering never
// perturbs the search.
type Meter struct {
	Waves      *obs.Counter
	Sims       *obs.Counter
	Evaluated  *obs.Counter
	Violations *obs.Counter
	// WorstSeverity is the highest severity any result of any metered
	// campaign has reached (0 ok, 1 error, 2 no-termination, 3
	// violated — see severity).
	WorstSeverity *obs.Gauge
}

// NewMeter registers the campaign metric families on reg.
func NewMeter(reg *obs.Registry) *Meter {
	return &Meter{
		Waves: reg.Counter("lineartime_campaign_waves_total",
			"Refinement waves completed across campaigns."),
		Sims: reg.Counter("lineartime_campaign_sims_total",
			"Simulation budget charged across campaigns."),
		Evaluated: reg.Counter("lineartime_campaign_evaluated_total",
			"Candidates evaluated across campaigns."),
		Violations: reg.Counter("lineartime_campaign_violations_total",
			"Violations (liveness or safety) found across campaigns."),
		WorstSeverity: reg.Gauge("lineartime_campaign_worst_severity",
			"Highest result severity seen across campaigns (0 ok, 3 violated)."),
	}
}

// SetMeter installs the progress meter. Install before Run; a nil
// meter (the default) disables metering.
func (c *Controller) SetMeter(m *Meter) { c.meter = m }

// meterBatch reports one completed batch to the meter.
func (m *Meter) meterBatch(results []Result) {
	if m == nil {
		return
	}
	m.Sims.Add(int64(len(results)))
	m.Evaluated.Add(int64(len(results)))
	violations := 0
	worst := 0.0
	for _, r := range results {
		s := severity(r.Outcome)
		if s == 2 || s == 3 {
			violations++
		}
		if f := float64(s); f > worst {
			worst = f
		}
	}
	m.Violations.Add(int64(violations))
	if worst > m.WorstSeverity.Value() {
		m.WorstSeverity.Set(worst)
	}
}
