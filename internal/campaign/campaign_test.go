package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"lineartime/internal/scenario"
	"lineartime/internal/sim"
)

// localRun evaluates candidates in-process, the way cmd/campaign does
// without a daemon.
func localRun(_ context.Context, sp scenario.Spec) (*scenario.Report, error) {
	return scenario.Run(sp)
}

func testSpec() Spec {
	return Spec{
		Scenario: "consensus/few-crashes",
		N:        16,
		T:        3,
		Seed:     1,
		Budget:   Budget{MaxSims: 24, MaxWaves: 2, TopK: 3},
	}
}

func runToBytes(t *testing.T, spec Spec, conc int) []byte {
	t.Helper()
	c, err := New(spec, localRun, conc)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fr, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := fr.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data
}

// TestCampaignDeterministic pins the core guarantee: a campaign is a
// pure function of its Spec. Re-running produces byte-identical
// artifacts, and the worker concurrency never leaks into the result.
func TestCampaignDeterministic(t *testing.T) {
	a := runToBytes(t, testSpec(), 4)
	b := runToBytes(t, testSpec(), 4)
	if string(a) != string(b) {
		t.Fatalf("same campaign, different artifacts:\n%s\nvs\n%s", a, b)
	}
	serial := runToBytes(t, testSpec(), 1)
	if string(a) != string(serial) {
		t.Fatalf("concurrency changed the artifact:\n%s\nvs\n%s", a, serial)
	}
	if err := ValidateFrontier(a); err != nil {
		t.Fatalf("artifact does not validate: %v", err)
	}
}

// TestCampaignResume interrupts a campaign mid-flight, round-trips the
// checkpoint through JSON (as the daemon's state file and the CLI's
// -state file do), resumes, and requires the exact artifact an
// uninterrupted run produces.
func TestCampaignResume(t *testing.T) {
	want := runToBytes(t, testSpec(), 3)

	c, err := New(testSpec(), localRun, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	batches := 0
	c.SetBatchHook(func(*Checkpoint) {
		batches++
		if batches == 2 {
			cancel()
		}
	})
	if _, err := c.Run(ctx); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run after cancel: got %v, want ErrInterrupted", err)
	}
	blob, err := json.Marshal(c.Checkpoint())
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	if cp.Sims >= testSpec().Budget.MaxSims {
		t.Fatalf("checkpoint already used the whole budget (%d sims); interrupt earlier", cp.Sims)
	}

	r, err := Resume(&cp, localRun, 3)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	fr, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	got, err := fr.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed artifact diverged:\n%s\nvs uninterrupted\n%s", got, want)
	}
}

// TestCampaignBatchEvaluatorMatchesPerCandidate pins that routing whole
// batches through scenario.ExecuteBatch — the bit-sliced path the CLI
// installs — produces the byte-identical artifact of per-candidate
// evaluation, for both a scalar-only scenario and the natively
// sliceable flooding comparator.
func TestCampaignBatchEvaluatorMatchesPerCandidate(t *testing.T) {
	batchRun := func(_ context.Context, sps []scenario.Spec) ([]*scenario.Report, []error) {
		return scenario.ExecuteBatch(sps)
	}
	for _, name := range []string{"consensus/few-crashes", "consensus/flooding"} {
		spec := testSpec()
		spec.Scenario = name
		want := runToBytes(t, spec, 4)

		c, err := New(spec, localRun, 4)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		c.SetBatchRun(batchRun)
		fr, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		got, err := fr.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s: batch evaluation changed the artifact:\n%s\nvs\n%s", name, got, want)
		}
	}
}

// TestCampaignGossipCrashAxisRidesSlicedBatch pins the widened batch
// path: with a batch evaluator installed, a gossip campaign over the
// crash-schedule axis must dequeue declarative candidates in batches
// wider than the worker concurrency — the whole axis rides one
// scenario.ExecuteBatch call as word lanes (every candidate shares the
// campaign's topology seed, so they form one sliced group) — while the
// frontier artifact stays byte-identical to per-candidate evaluation.
func TestCampaignGossipCrashAxisRidesSlicedBatch(t *testing.T) {
	spec := Spec{
		Scenario: "gossip/expander",
		N:        48,
		T:        8,
		Seed:     1,
		Kinds:    []string{KindCrash},
		Budget:   Budget{MaxSims: 18, MaxWaves: 2, TopK: 3},
	}
	want := runToBytes(t, spec, 2)

	c, err := New(spec, localRun, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	widest := 0
	c.SetBatchRun(func(_ context.Context, sps []scenario.Spec) ([]*scenario.Report, []error) {
		if len(sps) > widest {
			widest = len(sps)
		}
		for i, sp := range sps {
			if !sp.Fault.Declarative() {
				t.Errorf("batch[%d] fault %v is not declarative", i, sp.Fault.Kind)
			}
			if sp.Seed != spec.Seed {
				t.Errorf("batch[%d] seed %d breaks the shared sliced group", i, sp.Seed)
			}
		}
		return scenario.ExecuteBatch(sps)
	})
	fr, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if widest <= 2 {
		t.Fatalf("widest batch was %d candidates; want wider than conc=2", widest)
	}
	got, err := fr.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("widened batch evaluation changed the artifact:\n%s\nvs\n%s", got, want)
	}
}

// TestCampaignBudget pins that the sim budget is a hard cap and every
// charged sim lands as a result.
func TestCampaignBudget(t *testing.T) {
	spec := testSpec()
	spec.Budget.MaxSims = 7
	c, err := New(spec, localRun, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fr, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fr.Sims != 7 {
		t.Fatalf("Sims = %d, want the full budget of 7 (queue was larger)", fr.Sims)
	}
	if fr.Evaluated != fr.Sims {
		t.Fatalf("Evaluated = %d, Sims = %d; every charged sim must land", fr.Evaluated, fr.Sims)
	}
	if len(fr.Frontier) > spec.Budget.TopK {
		t.Fatalf("frontier holds %d entries, want <= %d", len(fr.Frontier), spec.Budget.TopK)
	}
}

// TestCampaignProgress exercises concurrent Snapshot against Run (the
// serving layer polls while the campaign executes).
func TestCampaignProgress(t *testing.T) {
	c, err := New(testSpec(), localRun, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = c.Snapshot()
			}
		}
	}()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	close(done)
	wg.Wait()
	p := c.Snapshot()
	if p.Sims != testSpec().Budget.MaxSims || p.Evaluated != p.Sims {
		t.Fatalf("final snapshot %+v inconsistent with budget %d", p, testSpec().Budget.MaxSims)
	}
	if p.Worst == nil {
		t.Fatal("final snapshot has no worst offender")
	}
}

func TestSpecNormalizeAndID(t *testing.T) {
	spec := testSpec()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if got, want := norm.Kinds, allKinds; len(got) != len(want) {
		t.Fatalf("default kinds = %v, want all of %v", got, want)
	}
	if norm.Budget.TopK == spec.Budget.TopK && spec.Budget.TopK == 0 {
		t.Fatal("Normalize did not default TopK")
	}
	// Axis order must not matter for identity.
	a, b := testSpec(), testSpec()
	a.Kinds = []string{KindDelay, KindOmission}
	b.Kinds = []string{KindOmission, KindDelay}
	if a.ID() != b.ID() {
		t.Fatalf("axis order changed the campaign ID: %s vs %s", a.ID(), b.ID())
	}
	if !strings.HasPrefix(a.ID(), "cmp-") {
		t.Fatalf("ID %q lacks the cmp- prefix", a.ID())
	}

	for _, bad := range []Spec{
		{Scenario: "", N: 8, Budget: Budget{MaxSims: 1}},
		{Scenario: "no/such/scenario", N: 8, Budget: Budget{MaxSims: 1}},
		{Scenario: "consensus/few-crashes", N: 0, Budget: Budget{MaxSims: 1}},
		{Scenario: "consensus/few-crashes", N: 8, T: -1, Budget: Budget{MaxSims: 1}},
		{Scenario: "consensus/few-crashes", N: 8, Budget: Budget{MaxSims: 0}},
		{Scenario: "consensus/few-crashes", N: 8, Kinds: []string{"cosmic-rays"}, Budget: Budget{MaxSims: 1}},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted an invalid spec", bad)
		}
	}
}

func TestValidateFrontierRejects(t *testing.T) {
	good := runToBytes(t, testSpec(), 2)
	var f Frontier
	if err := json.Unmarshal(good, &f); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	encode := func(f Frontier) []byte {
		data, err := f.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return data
	}

	bad := f
	bad.Schema = "lineartime/frontier/v0"
	if err := ValidateFrontier(encode(bad)); err == nil {
		t.Error("wrong schema accepted")
	}

	bad = f
	bad.Sims = bad.Campaign.Budget.MaxSims + 1
	if err := ValidateFrontier(encode(bad)); err == nil {
		t.Error("over-budget sims accepted")
	}

	if len(f.Frontier) >= 2 {
		bad = f
		bad.Frontier = append([]Result(nil), f.Frontier...)
		bad.Frontier[0], bad.Frontier[1] = bad.Frontier[1], bad.Frontier[0]
		if err := ValidateFrontier(encode(bad)); err == nil {
			t.Error("out-of-order frontier accepted")
		}
	}

	if len(f.Frontier) >= 1 {
		bad = f
		bad.Frontier = append([]Result(nil), f.Frontier...)
		bad.Frontier[0].Fault = "not a fault"
		if err := ValidateFrontier(encode(bad)); err == nil {
			t.Error("unparseable fault accepted")
		}

		bad.Frontier[0] = f.Frontier[0]
		bad.Frontier[0].Key = "bogus"
		if err := ValidateFrontier(encode(bad)); err == nil {
			t.Error("non-content-address key accepted")
		}
	}

	if err := ValidateFrontier([]byte("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}

// TestGridAndNeighbors pins the space generator's invariants: every
// generated candidate is runnable against its shape (a campaign never
// wastes budget on models the runner rejects), neighbors move on the
// lattice, and a t=0 shape yields no crash candidates.
func TestGridAndNeighbors(t *testing.T) {
	sh := shape{n: 16, t: 3}
	d, _ := scenario.Lookup("consensus/few-crashes")
	runnable := func(fm scenario.FaultModel) error {
		sp := d.Spec(sh.n, sh.t, 1)
		sp.Fault = fm
		_, err := scenario.Run(sp)
		if errors.Is(err, sim.ErrNoTermination) {
			// The adversary won; that is a scored outcome, not a
			// rejected candidate.
			return nil
		}
		return err
	}
	for _, kind := range allKinds {
		models := grid(kind, sh)
		if len(models) == 0 {
			t.Fatalf("grid(%s) empty for %+v", kind, sh)
		}
		for _, fm := range models {
			if err := runnable(fm); err != nil {
				t.Errorf("grid(%s) produced rejected model %s: %v", kind, fm.CLI(), err)
			}
			for _, nb := range neighbors(fm, 1, sh) {
				if err := runnable(nb); err != nil {
					t.Errorf("neighbor %s of %s rejected: %v", nb.CLI(), fm.CLI(), err)
				}
				if nb.CLI() == fm.CLI() {
					t.Errorf("neighbor of %s did not move", fm.CLI())
				}
			}
		}
	}
	if got := grid(KindCrash, shape{n: 8, t: 0}); got != nil {
		t.Errorf("crash grid at t=0 = %v, want none", got)
	}
}
