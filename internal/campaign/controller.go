package campaign

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"lineartime/internal/scenario"
	"lineartime/internal/sim"
)

// ErrInterrupted reports a campaign stopped by context cancellation
// (drain, shutdown, user cancel) rather than by its budget. The
// controller's state is checkpointable at that point, and resuming
// from the checkpoint converges to the same final artifact as an
// uninterrupted run.
var ErrInterrupted = errors.New("campaign: interrupted")

// RunFunc evaluates one materialized scenario Spec. The serving layer
// routes it through the daemon's cached worker pool (retrying
// transient backpressure); the CLI uses scenario.Run directly. Either
// way the evaluation lands on scenario.Execute's pooled arenas.
type RunFunc func(ctx context.Context, sp scenario.Spec) (*scenario.Report, error)

// BatchRunFunc evaluates a whole batch of materialized Specs in one
// call: reports[i]/errs[i] belong to sps[i], exactly as if each had
// gone through a RunFunc. The CLI wires scenario.ExecuteBatch here, so
// a batch whose candidates share a sliceable scenario shape rides the
// bit-sliced engine up to 64 candidates per machine word.
type BatchRunFunc func(ctx context.Context, sps []scenario.Spec) ([]*scenario.Report, []error)

// Progress is a point-in-time snapshot of a running campaign, the
// body of the serving layer's polling endpoint.
type Progress struct {
	Wave       int     `json:"wave"`
	Sims       int     `json:"sims"`
	MaxSims    int     `json:"max_sims"`
	Queue      int     `json:"queue"`
	Evaluated  int     `json:"evaluated"`
	Violations int     `json:"violations"`
	Worst      *Result `json:"worst,omitempty"`
}

// Checkpoint is the resumable state of an interrupted campaign: the
// pending queue, the visited set, and every result so far. Because
// refinement decisions depend only on the (deterministically ordered)
// result set — never on completion timing — resuming from any batch
// boundary replays the exact search the uninterrupted campaign would
// have run.
type Checkpoint struct {
	Schema   string      `json:"schema"`
	Campaign Spec        `json:"campaign"`
	Wave     int         `json:"wave"`
	Sims     int         `json:"sims"`
	Queue    []Candidate `json:"queue"`
	Visited  []string    `json:"visited"`
	Results  []Result    `json:"results"`
}

// Controller runs one campaign: a work queue of candidates reconciled
// into results, refined wave by wave. Snapshot and Checkpoint are safe
// to call concurrently with Run.
type Controller struct {
	run RunFunc
	// batchRun, when set, evaluates whole batches in one call instead
	// of fanning candidates across goroutines (SetBatchRun).
	batchRun BatchRunFunc
	conc     int

	mu        sync.Mutex
	spec      Spec
	wave      int
	sims      int
	queue     []Candidate
	visited   map[string]bool
	results   []Result
	truncated string
	// batchHook, when set, observes the checkpoint after every batch
	// (the CLI persists it so a killed process can resume).
	batchHook func(*Checkpoint)
	// meter, when set, receives progress counters at batch and wave
	// boundaries (SetMeter).
	meter *Meter
}

// New builds a controller for the spec, seeding the queue with the
// initial grid over every searched axis. conc caps the in-flight
// evaluations per batch (<= 1 means serial); it affects wall-clock
// time only, never the result.
func New(spec Spec, run RunFunc, conc int) (*Controller, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	c := newController(norm, run, conc)
	sh := shape{n: norm.N, t: norm.T}
	for _, kind := range norm.Kinds {
		c.enqueueLocked(grid(kind, sh), 0)
	}
	if len(c.queue) == 0 {
		return nil, fmt.Errorf("lineartime: campaign fault axes %v yield no candidates at n=%d t=%d", norm.Kinds, norm.N, norm.T)
	}
	return c, nil
}

// Resume rebuilds a controller from a checkpoint.
func Resume(cp *Checkpoint, run RunFunc, conc int) (*Controller, error) {
	if cp.Schema != CheckpointSchema {
		return nil, fmt.Errorf("lineartime: campaign checkpoint schema %q, want %q", cp.Schema, CheckpointSchema)
	}
	norm, err := cp.Campaign.Normalize()
	if err != nil {
		return nil, err
	}
	c := newController(norm, run, conc)
	c.wave = cp.Wave
	c.sims = cp.Sims
	c.results = slices.Clone(cp.Results)
	for _, key := range cp.Visited {
		c.visited[key] = true
	}
	c.queue = make([]Candidate, len(cp.Queue))
	for i, cand := range cp.Queue {
		fm, err := scenario.ParseFault(cand.Fault)
		if err != nil {
			return nil, fmt.Errorf("lineartime: campaign checkpoint queue[%d] fault %q does not parse: %w", i, cand.Fault, err)
		}
		cand.fm = fm
		c.queue[i] = cand
	}
	return c, nil
}

func newController(norm Spec, run RunFunc, conc int) *Controller {
	if conc < 1 {
		conc = 1
	}
	return &Controller{
		run:     run,
		conc:    conc,
		spec:    norm,
		visited: make(map[string]bool),
	}
}

// SetBatchHook installs an observer called with a fresh checkpoint
// after every completed batch. Install before Run.
func (c *Controller) SetBatchHook(fn func(*Checkpoint)) { c.batchHook = fn }

// SetBatchRun installs a batch evaluator used in place of per-candidate
// RunFunc calls. Install before Run. Results are scored identically
// either way, so the search is unaffected — only throughput changes.
func (c *Controller) SetBatchRun(fn BatchRunFunc) { c.batchRun = fn }

// Spec returns the normalized campaign spec.
func (c *Controller) Spec() Spec { return c.spec }

// specFor materializes a candidate against the campaign's scenario.
func (c *Controller) specFor(fm scenario.FaultModel) scenario.Spec {
	d, _ := scenario.Lookup(c.spec.Scenario)
	sp := d.Spec(c.spec.N, c.spec.T, c.spec.Seed)
	sp.Fault = fm
	return sp
}

// enqueueLocked adds the models at the given refinement level,
// deduplicating against everything ever enqueued by content address.
func (c *Controller) enqueueLocked(fms []scenario.FaultModel, level int) int {
	added := 0
	for _, fm := range fms {
		key := c.specFor(fm).Key()
		if c.visited[key] {
			continue
		}
		c.visited[key] = true
		c.queue = append(c.queue, Candidate{Fault: fm.CLI(), Level: level, Key: key, fm: fm})
		added++
	}
	return added
}

// refineLocked re-queues the neighbors of the current top-K offenders
// at the next refinement level, returning how many new candidates the
// wave contributed.
func (c *Controller) refineLocked() int {
	top := ranked(c.results)
	if len(top) > c.spec.Budget.TopK {
		top = top[:c.spec.Budget.TopK]
	}
	level := c.wave + 1
	sh := shape{n: c.spec.N, t: c.spec.T}
	added := 0
	for _, r := range top {
		fm, err := scenario.ParseFault(r.Fault)
		if err != nil {
			continue
		}
		added += c.enqueueLocked(neighbors(fm, level, sh), level)
	}
	return added
}

// Run drives the campaign to completion (budget exhausted, space
// exhausted, or wave cap) and returns the frontier artifact. On
// context cancellation it finishes the in-flight batch — so the state
// stays on a deterministic boundary — records it, and returns
// ErrInterrupted; Checkpoint then captures a resumable state.
func (c *Controller) Run(ctx context.Context) (*Frontier, error) {
	start := time.Now()
	for {
		if ctx.Err() != nil {
			return nil, ErrInterrupted
		}
		c.mu.Lock()
		budgetLeft := c.spec.Budget.MaxSims - c.sims
		if budgetLeft <= 0 {
			c.mu.Unlock()
			break
		}
		if ms := c.spec.Budget.MaxWallClockMS; ms > 0 && time.Since(start) > time.Duration(ms)*time.Millisecond {
			c.truncated = "wall-clock"
			c.mu.Unlock()
			break
		}
		if len(c.queue) == 0 {
			if c.wave >= c.spec.Budget.MaxWaves {
				c.mu.Unlock()
				break
			}
			added := c.refineLocked()
			c.wave++
			if c.meter != nil {
				c.meter.Waves.Inc()
			}
			if added == 0 {
				c.mu.Unlock()
				break
			}
		}
		k := min(len(c.queue), budgetLeft, c.conc)
		if c.batchRun != nil {
			// A batch evaluator turns a run of declarative candidates
			// at the head of the queue into word lanes of one
			// bit-sliced engine call, so the batch widens past conc up
			// to the lane capacity. Candidates are still evaluated and
			// scored in queue order and the budget is charged per
			// candidate, so the search — and the frontier artifact —
			// is unchanged; only throughput moves.
			wide := min(len(c.queue), budgetLeft, sim.MaxLanes)
			decl := 0
			for decl < wide && c.queue[decl].fm.Declarative() {
				decl++
			}
			if decl > k {
				k = decl
			}
		}
		batch := slices.Clone(c.queue[:k])
		c.queue = slices.Delete(c.queue, 0, k)
		// Budget is charged at dequeue: the batch always runs to
		// completion, so sims and results stay in lockstep whether or
		// not the campaign is interrupted afterwards.
		c.sims += k
		c.mu.Unlock()

		results := c.evaluate(ctx, batch)
		c.mu.Lock()
		c.results = append(c.results, results...)
		c.mu.Unlock()
		c.meter.meterBatch(results)
		if c.batchHook != nil {
			c.batchHook(c.Checkpoint())
		}
	}
	return c.Frontier(), nil
}

// evaluate reconciles one batch. With a batch evaluator installed the
// whole batch goes out in one call (the sliced path); otherwise all
// candidates are in flight at once (the batch is already capped at
// conc). Results land in batch order either way, so completion timing
// never reaches the search state.
func (c *Controller) evaluate(ctx context.Context, batch []Candidate) []Result {
	out := make([]Result, len(batch))
	if c.batchRun != nil {
		sps := make([]scenario.Spec, len(batch))
		for i := range batch {
			sps[i] = c.specFor(batch[i].fm)
		}
		reps, errs := c.batchRun(ctx, sps)
		for i := range batch {
			out[i] = score(batch[i], reps[i], errs[i])
		}
		return out
	}
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = c.evalOne(ctx, batch[i])
		}(i)
	}
	wg.Wait()
	return out
}

// evalOne runs one candidate and scores the outcome.
func (c *Controller) evalOne(ctx context.Context, cand Candidate) Result {
	rep, err := c.run(ctx, c.specFor(cand.fm))
	return score(cand, rep, err)
}

// score turns one candidate's run outcome into a Result. A run that
// exceeds its round budget is the liveness violation the campaign is
// hunting, not an error.
func score(cand Candidate, rep *scenario.Report, err error) Result {
	res := Result{Fault: cand.Fault, Key: cand.Key, Level: cand.Level}
	switch {
	case err == nil:
		res.Rounds = rep.Metrics.Rounds
		res.Messages = rep.Metrics.Messages
		res.Bits = rep.Metrics.Bits
		verdict, violated := verdictOf(rep)
		res.Verdict = verdict
		if violated {
			res.Outcome = OutcomeViolated
		} else {
			res.Outcome = OutcomeOK
		}
	case errors.Is(err, sim.ErrNoTermination):
		res.Outcome = OutcomeNoTermination
		res.Verdict = "did not terminate within the round budget"
	default:
		res.Outcome = OutcomeError
		res.Verdict = err.Error()
	}
	return res
}

// Frontier assembles the artifact from the current state.
func (c *Controller) Frontier() *Frontier {
	c.mu.Lock()
	defer c.mu.Unlock()
	top := ranked(c.results)
	if len(top) > c.spec.Budget.TopK {
		top = top[:c.spec.Budget.TopK]
	}
	violations := 0
	for _, r := range c.results {
		if s := severity(r.Outcome); s == 2 || s == 3 {
			violations++
		}
	}
	return &Frontier{
		Schema:     FrontierSchema,
		Campaign:   c.spec,
		Sims:       c.sims,
		Waves:      c.wave,
		Evaluated:  len(c.results),
		Violations: violations,
		Truncated:  c.truncated,
		Frontier:   top,
	}
}

// Checkpoint captures the resumable state. Call after Run returned
// ErrInterrupted (or from the batch hook); the visited set is
// serialized sorted so checkpoints of equal state are byte-equal.
func (c *Controller) Checkpoint() *Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	visited := make([]string, 0, len(c.visited))
	for key := range c.visited {
		visited = append(visited, key)
	}
	sort.Strings(visited)
	return &Checkpoint{
		Schema:   CheckpointSchema,
		Campaign: c.spec,
		Wave:     c.wave,
		Sims:     c.sims,
		Queue:    slices.Clone(c.queue),
		Visited:  visited,
		Results:  slices.Clone(c.results),
	}
}

// Snapshot reports progress for polling clients.
func (c *Controller) Snapshot() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{
		Wave:      c.wave,
		Sims:      c.sims,
		MaxSims:   c.spec.Budget.MaxSims,
		Queue:     len(c.queue),
		Evaluated: len(c.results),
	}
	var worst *Result
	for i := range c.results {
		r := c.results[i]
		if s := severity(r.Outcome); s == 2 || s == 3 {
			p.Violations++
		}
		if worst == nil || worse(r, *worst) {
			worst = &r
		}
	}
	if worst != nil {
		w := *worst
		p.Worst = &w
	}
	return p
}
