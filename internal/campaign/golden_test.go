package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lineartime/internal/scenario"
)

// TestFrontierGolden re-runs the committed chaos campaigns from
// scratch and requires the frontier artifacts to match the checked-in
// bytes exactly. A diff here means the search, the simulator, or the
// artifact encoding changed behavior — regenerate with cmd/campaign
// (same flags as below) only if the change is intentional, and update
// the registry's chaos rows if the worst schedules moved.
func TestFrontierGolden(t *testing.T) {
	cases := []struct {
		scenario string
		file     string
	}{
		{"consensus/few-crashes", "frontier_consensus_few-crashes.json"},
		{"gossip/expander", "frontier_gossip_expander.json"},
	}
	run := func(_ context.Context, sp scenario.Spec) (*scenario.Report, error) {
		return scenario.Run(sp)
	}
	for _, tc := range cases {
		t.Run(tc.scenario, func(t *testing.T) {
			path := filepath.Join("..", "..", "testdata", tc.file)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateFrontier(want); err != nil {
				t.Fatalf("committed artifact invalid: %v", err)
			}
			spec := Spec{
				Scenario: tc.scenario,
				N:        96,
				T:        16,
				Seed:     1,
				Budget:   Budget{MaxSims: 48, MaxWaves: 3, TopK: 4},
			}
			ctrl, err := New(spec, run, 4)
			if err != nil {
				t.Fatal(err)
			}
			fr, err := ctrl.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got, err := fr.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frontier diverged from %s;\nregenerate with: go run ./cmd/campaign %s\ngot:\n%s",
					path, regenFlags(tc.scenario, tc.file), got)
			}
		})
	}
}

func regenFlags(scen, file string) string {
	return fmt.Sprintf("-scenario %s -n 96 -t 16 -seed 1 -sims 48 -waves 3 -topk 4 -o testdata/%s", scen, file)
}
