package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lineartime/internal/campaign"
	"lineartime/internal/scenario"
)

// localCampaignRun is the in-process evaluation path, the reference
// the served campaigns must agree with byte for byte.
func localCampaignRun(_ context.Context, sp scenario.Spec) (*scenario.Report, error) {
	return scenario.Run(sp)
}

func testCampaignSpec(maxSims int) campaign.Spec {
	return campaign.Spec{
		Scenario: "consensus/few-crashes",
		N:        12,
		T:        2,
		Seed:     1,
		Kinds:    []string{campaign.KindOmission, campaign.KindDelay},
		Budget:   campaign.Budget{MaxSims: maxSims, MaxWaves: 2, TopK: 3},
	}
}

func postCampaign(t *testing.T, url string, spec campaign.Spec) (*http.Response, CampaignStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	var st CampaignStatus
	if resp.StatusCode < http.StatusMultipleChoices {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("campaign response %q: %v", raw, err)
		}
	}
	return resp, st
}

func getCampaign(t *testing.T, url, id string) (*http.Response, CampaignStatus) {
	t.Helper()
	resp, err := http.Get(url + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	var st CampaignStatus
	if resp.StatusCode < http.StatusMultipleChoices {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("campaign response %q: %v", raw, err)
		}
	}
	return resp, st
}

// indented re-renders a served frontier (compacted by the JSON
// envelope) in the committed artifact encoding for byte comparisons.
func indented(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// waitDone polls the campaign until it leaves the running state.
func waitDone(t *testing.T, url, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, st := getCampaign(t, url, id)
		if st.Status != JobRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("campaign did not finish in time")
	return CampaignStatus{}
}

// TestCampaignJobLifecycle drives a campaign end to end through the
// HTTP surface: accepted async, polled to completion, frontier
// attached and valid, POST idempotent by content address.
func TestCampaignJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := testCampaignSpec(12)

	resp, st := postCampaign(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST campaign = %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Status != JobRunning && st.Status != JobDone {
		t.Fatalf("POST campaign status = %+v", st)
	}
	if st.ID != spec.ID() {
		t.Fatalf("job id %s, want content address %s", st.ID, spec.ID())
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.Status != JobDone {
		t.Fatalf("campaign ended %s (%s), want done", final.Status, final.Error)
	}
	if err := campaign.ValidateFrontier(final.Frontier); err != nil {
		t.Fatalf("served frontier invalid: %v", err)
	}
	if final.Progress.Sims != 12 {
		t.Fatalf("campaign used %d sims, want its whole budget of 12", final.Progress.Sims)
	}

	// Re-POST of the same campaign dedups onto the finished job.
	resp2, st2 := postCampaign(t, ts.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-POST = %d, want 200", resp2.StatusCode)
	}
	if st2.ID != st.ID || st2.Status != JobDone {
		t.Fatalf("re-POST landed on %+v, want the finished job", st2)
	}

	// The job shows up in the listing.
	resp3, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list CampaignList
	if err := json.Unmarshal(readAll(t, resp3), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != st.ID {
		t.Fatalf("campaign list = %+v", list)
	}
}

// TestCampaignJobMatchesLocalRun pins that the served path — cached
// pool runs, retries, coalescing — produces the byte-identical
// artifact of a direct in-process campaign.
func TestCampaignJobMatchesLocalRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := testCampaignSpec(12)

	_, st := postCampaign(t, ts.URL, spec)
	final := waitDone(t, ts.URL, st.ID)
	if final.Status != JobDone {
		t.Fatalf("campaign ended %s (%s)", final.Status, final.Error)
	}

	ctrl, err := campaign.New(spec, localCampaignRun, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := ctrl.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := indented(t, final.Frontier); !bytes.Equal(got, want) {
		t.Fatalf("served artifact diverged from local run:\n%s\nvs\n%s", got, want)
	}
}

// TestCampaignValidation pins the error surface of the campaign
// endpoints.
func TestCampaignValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}

	bad := testCampaignSpec(4)
	bad.Scenario = "no/such/scenario"
	resp, st := postCampaign(t, ts.URL, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario = %d (%+v), want 400", resp.StatusCode, st)
	}

	resp, _ = getCampaign(t, ts.URL, "cmp-doesnotexist0000")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign = %d, want 404", resp.StatusCode)
	}
}

// TestCampaignDrainCheckpointAndResume is the graceful-shutdown path:
// drain interrupts a running campaign, SaveJobs persists its
// checkpoint, a fresh server restores the file, resumes, and finishes
// with the artifact an uninterrupted campaign produces.
func TestCampaignDrainCheckpointAndResume(t *testing.T) {
	state := filepath.Join(t.TempDir(), "jobs.json")
	spec := testCampaignSpec(16)

	s1 := New(Config{Workers: 1})
	ts1 := httptest.NewServer(s1.Handler())
	_, st := postCampaign(t, ts1.URL, spec)
	if st.Status != JobRunning && st.Status != JobDone {
		t.Fatalf("POST status = %+v", st)
	}
	// Drain immediately: with one worker the campaign is still mid-run,
	// so it checkpoints as interrupted (if it already finished, the
	// test still exercises save/restore of a terminal job).
	s1.DrainJobs()
	if err := s1.SaveJobs(state); err != nil {
		t.Fatalf("SaveJobs: %v", err)
	}
	ts1.Close()
	s1.Close()

	blob, err := os.ReadFile(state)
	if err != nil {
		t.Fatalf("state file: %v", err)
	}
	var file jobsStateFile
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatalf("state file JSON: %v", err)
	}
	if file.Schema != JobsStateSchema || len(file.Jobs) != 1 {
		t.Fatalf("state file = %+v", file)
	}

	s2 := New(Config{Workers: 2})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	if err := s2.RestoreJobs(state); err != nil {
		t.Fatalf("RestoreJobs: %v", err)
	}
	final := waitDone(t, ts2.URL, spec.ID())
	if final.Status != JobDone {
		t.Fatalf("restored campaign ended %s (%s), want done", final.Status, final.Error)
	}

	ctrl, err := campaign.New(spec, localCampaignRun, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := ctrl.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := indented(t, final.Frontier); !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestCampaignCancel pins DELETE: a running campaign stops, keeps its
// checkpoint, and reports cancelled.
func TestCampaignCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := testCampaignSpec(64)

	_, st := postCampaign(t, ts.URL, spec)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	final := waitDone(t, ts.URL, st.ID)
	if final.Status != JobCancelled && final.Status != JobDone {
		t.Fatalf("cancelled campaign ended %s, want cancelled (or done if it beat the cancel)", final.Status)
	}
	if final.Status == JobCancelled && !final.Resumable {
		t.Fatal("cancelled campaign lost its checkpoint")
	}
}

// TestReadyz pins the readiness gate.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady = %d, want 503", resp.StatusCode)
	}
	s.SetReady(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != `{"status":"ready"}` {
		t.Fatalf("readyz after SetReady = %d %q", resp.StatusCode, body)
	}
	s.SetReady(false)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	// Liveness stays up throughout.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", resp.StatusCode)
	}
}

// TestCampaignStoreBounded pins the job-store cap: running jobs are
// never evicted, and a full store of running jobs sheds new POSTs
// with 429.
func TestCampaignStoreBounded(t *testing.T) {
	block := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers: 1,
		MaxJobs: 2,
		run: func(sp scenario.Spec) (*scenario.Report, error) {
			<-block
			return scenario.Run(sp)
		},
	})
	defer close(block)

	a := testCampaignSpec(4)
	b := testCampaignSpec(4)
	b.Seed = 2
	c := testCampaignSpec(4)
	c.Seed = 3

	if resp, _ := postCampaign(t, ts.URL, a); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d", resp.StatusCode)
	}
	if resp, _ := postCampaign(t, ts.URL, b); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST = %d", resp.StatusCode)
	}
	resp, _ := postCampaign(t, ts.URL, c)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST over capacity = %d, want 429", resp.StatusCode)
	}
}
