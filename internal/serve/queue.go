package serve

import (
	"errors"
	"sync"
	"sync/atomic"

	"lineartime/internal/scenario"
)

// ErrBusy reports that the job queue is full: the server sheds the
// request (HTTP 429) instead of queueing without bound. Callers retry;
// the closed-loop harness treats it as backpressure.
var ErrBusy = errors.New("serve: job queue full")

// workPool executes scenario runs on a fixed set of workers fed by a
// bounded queue. Each worker runs scenarios sequentially, so engine
// concurrency equals the worker count no matter how many requests are
// in flight, and every run lands on a warm sim.Runtime arena from
// scenario.Execute's sync.Pool (the per-P pool caching means a worker
// goroutine keeps reusing the arena it warmed up).
type workPool struct {
	jobs chan poolJob
	wg   sync.WaitGroup
	// run is scenario.Run in production; tests substitute it to gate
	// and count engine runs deterministically.
	run func(scenario.Spec) (*scenario.Report, error)

	workers   int
	rejected  atomic.Int64
	completed atomic.Int64
	errored   atomic.Int64
}

// QueueStats is a point-in-time snapshot of the pool counters.
type QueueStats struct {
	Workers   int   `json:"workers"`
	Depth     int   `json:"depth"`
	Capacity  int   `json:"capacity"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Errored   int64 `json:"errored"`
}

type poolJob struct {
	sp   scenario.Spec
	done chan poolResult
}

type poolResult struct {
	rep *scenario.Report
	err error
}

// newWorkPool starts workers goroutines over a queue of depth slots.
// workers <= 0 defaults to 2, depth <= 0 to 4× the worker count.
func newWorkPool(workers, depth int, run func(scenario.Spec) (*scenario.Report, error)) *workPool {
	if workers <= 0 {
		workers = 2
	}
	if depth <= 0 {
		depth = 4 * workers
	}
	if run == nil {
		run = scenario.Run
	}
	p := &workPool{jobs: make(chan poolJob, depth), run: run, workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workPool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		rep, err := p.run(j.sp)
		if err != nil {
			p.errored.Add(1)
		} else {
			p.completed.Add(1)
		}
		j.done <- poolResult{rep: rep, err: err}
	}
}

// Submit enqueues the spec and blocks until a worker has run it. A
// full queue fails fast with ErrBusy.
func (p *workPool) Submit(sp scenario.Spec) (*scenario.Report, error) {
	j := poolJob{sp: sp, done: make(chan poolResult, 1)}
	select {
	case p.jobs <- j:
	default:
		p.rejected.Add(1)
		return nil, ErrBusy
	}
	r := <-j.done
	return r.rep, r.err
}

// Stats snapshots the pool counters.
func (p *workPool) Stats() QueueStats {
	return QueueStats{
		Workers:   p.workers,
		Depth:     len(p.jobs),
		Capacity:  cap(p.jobs),
		Rejected:  p.rejected.Load(),
		Completed: p.completed.Load(),
		Errored:   p.errored.Load(),
	}
}

// Close drains the queue and stops the workers. Submit must not be
// called after Close.
func (p *workPool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
