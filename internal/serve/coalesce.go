package serve

import (
	"sync"
	"sync/atomic"
)

// flightGroup is singleflight over response bytes: while a key's
// leader is computing, followers arriving with the same key park on
// the leader's WaitGroup and share its result instead of starting
// their own engine run. Combined with determinism this is loss-free
// deduplication — every follower receives exactly the bytes it would
// have computed.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	coalesced atomic.Int64
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do invokes fn once per key across concurrent callers. The bool
// reports whether this caller was a follower (shared a leader's
// result). The leader's entry is removed before its result is
// published, so a caller arriving after completion starts a fresh
// flight — the cache in front of the group, not the group itself, is
// what makes repeats cheap.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) ([]byte, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	// Clean up under defer: if fn panics (net/http recovers the
	// goroutine), the flight must still be removed and its followers
	// released, or the key is unservable forever.
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}

// Coalesced returns the number of requests that shared another
// request's run.
func (g *flightGroup) Coalesced() int64 { return g.coalesced.Load() }
