package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lineartime/internal/scenario"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postRun(t *testing.T, url string, req RunRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHealthAndScenarios(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != `{"status":"ok"}` {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}
	if err := json.Unmarshal(readAll(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Scenarios) != len(scenario.All()) {
		t.Fatalf("scenarios listed = %d, want %d", len(list.Scenarios), len(scenario.All()))
	}
	found := false
	for _, info := range list.Scenarios {
		if info.Name == "consensus/few-crashes/omission" {
			found = true
			if info.Fault != "omission" || info.Problem != "consensus" {
				t.Fatalf("scenario info = %+v", info)
			}
		}
	}
	if !found {
		t.Fatal("fault-bound row missing from /v1/scenarios")
	}
}

// TestRunCacheHitByteIdentical is the serving layer's core promise:
// the repeat of a request is served from cache, marked as such, and
// its body is byte-for-byte the first response — determinism makes the
// cached bytes provably correct.
func TestRunCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: 1}

	first := postRun(t, ts.URL, req)
	firstBody := readAll(t, first)
	if first.StatusCode != http.StatusOK || first.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request: status=%d X-Cache=%q", first.StatusCode, first.Header.Get("X-Cache"))
	}

	second := postRun(t, ts.URL, req)
	secondBody := readAll(t, second)
	if second.StatusCode != http.StatusOK || second.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request: status=%d X-Cache=%q", second.StatusCode, second.Header.Get("X-Cache"))
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("cache hit not byte-identical:\n first  %s\n second %s", firstBody, secondBody)
	}

	var env RunResponse
	if err := json.Unmarshal(secondBody, &env); err != nil {
		t.Fatal(err)
	}
	wantKey := scenario.MustLookup(req.Scenario).Spec(req.N, req.T, req.Seed).Key()
	if env.Key != wantKey {
		t.Fatalf("envelope key = %s, want %s", env.Key, wantKey)
	}
	if env.Report == nil || env.Report.Consensus == nil || !env.Report.Consensus.Agreement {
		t.Fatalf("report did not round-trip: %+v", env.Report)
	}

	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Queue.Completed != 1 {
		t.Fatalf("counters after miss+hit: %+v", st)
	}
}

// TestConcurrentIdenticalRequestsRunOnce pins request coalescing end
// to end over real HTTP under -race: N concurrent identical requests
// cost exactly one engine run. The injected runner is gated so no
// request can finish before every follower has parked on the leader's
// flight (the coalesced counter observes exactly that).
func TestConcurrentIdenticalRequestsRunOnce(t *testing.T) {
	const clients = 16
	gate := make(chan struct{})
	var engineRuns atomic.Int64
	cfg := Config{Workers: 2, run: func(sp scenario.Spec) (*scenario.Report, error) {
		engineRuns.Add(1)
		<-gate
		return scenario.Run(sp)
	}}
	s, ts := newTestServer(t, cfg)

	req := RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: 1}
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postRun(t, ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = readAll(t, resp)
		}(i)
	}
	// While the runner is gated the cache cannot fill, so every client
	// lands in the flight group: 1 leader + 15 followers.
	for s.flight.Coalesced() < clients-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := engineRuns.Load(); n != 1 {
		t.Fatalf("%d engine runs for %d concurrent identical requests, want 1", n, clients)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d body diverged", i)
		}
	}
	st := s.Stats()
	if st.Coalesced != clients-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, clients-1)
	}
}

// TestQueueBackpressure429 fills the one-worker, one-slot queue and
// checks the overload response: HTTP 429 with the structured busy
// error, while the in-flight requests complete normally.
func TestQueueBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	var started atomic.Int64
	cfg := Config{Workers: 1, QueueDepth: 1, run: func(sp scenario.Spec) (*scenario.Report, error) {
		started.Add(1)
		<-gate
		return scenario.Run(sp)
	}}
	s, ts := newTestServer(t, cfg)

	respc := make(chan *http.Response, 2)
	post := func(seed uint64) {
		respc <- postRun(t, ts.URL, RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: seed})
	}
	go post(1) // occupies the worker
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	go post(2) // occupies the queue slot
	for s.pool.Stats().Depth == 0 {
		time.Sleep(time.Millisecond)
	}

	over := postRun(t, ts.URL, RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: 3})
	body := readAll(t, over)
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", over.StatusCode)
	}
	if want := `{"error":{"code":"busy","message":"serve: job queue full"}}`; string(body) != want {
		t.Fatalf("overload body = %s, want %s", body, want)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		resp := <-respc
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight request finished with %d", resp.StatusCode)
		}
		readAll(t, resp)
	}
	if st := s.Stats(); st.Queue.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Queue.Rejected)
	}
}

// TestValidationErrorGoldens pins one negative-path response per fault
// kind: a structured JSON body with a stable code and the public
// "lineartime:"-prefixed message, never plain text.
func TestValidationErrorGoldens(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		kind  string
		fault string
		want  string
	}{
		{"omission", "omission:rate=1.5",
			`{"error":{"code":"invalid_argument","message":"lineartime: omission rate 1.5 outside [0, 1]"}}`},
		{"partition", "partition:from=4,to=4",
			`{"error":{"code":"invalid_argument","message":"lineartime: empty partition window [4, 4)"}}`},
		{"delay", "delay:d=0",
			`{"error":{"code":"invalid_argument","message":"lineartime: delay bound 0 must be positive"}}`},
		{"random-crashes", "random-crashes:count=100,horizon=10",
			`{"error":{"code":"invalid_argument","message":"lineartime: crash budget 100 exceeds n=60"}}`},
		{"cascade", "cascade:count=5,pool=70",
			`{"error":{"code":"invalid_argument","message":"lineartime: victim pool 70 outside [0, 60]"}}`},
		{"target-little", "target-little:count=-1",
			`{"error":{"code":"invalid_argument","message":"lineartime: negative crash budget -1"}}`},
		{"crash-schedule", "crash-schedule:events=99@0",
			`{"error":{"code":"invalid_argument","message":"lineartime: scheduled crash of node 99 outside [0, 60)"}}`},
		{"byzantine", "byzantine",
			`{"error":{"code":"invalid_argument","message":"lineartime: byzantine faults are configured per scenario (-byz/-byzcount), not as a link fault"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			resp := postRun(t, ts.URL, RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: 1, Fault: tc.fault})
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			if string(body) != tc.want {
				t.Fatalf("body drifted:\n got  %s\n want %s", body, tc.want)
			}
		})
	}
}

func TestRequestShapeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postRun(t, ts.URL, RunRequest{Scenario: "consensus/nonsense", N: 60, T: 10})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scenario status = %d, want 404", resp.StatusCode)
	}
	if want := `{"error":{"code":"unknown_scenario","message":"lineartime: unknown scenario \"consensus/nonsense\" (see /v1/scenarios)"}}`; string(body) != want {
		t.Fatalf("unknown-scenario body = %s", body)
	}

	resp = postRun(t, ts.URL, RunRequest{Scenario: "consensus/few-crashes", N: 0, T: 10})
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("n=0 status = %d, want 400", resp.StatusCode)
	}

	// Shape errors from deeper layers (topology constraints) are still
	// the client's fault.
	resp = postRun(t, ts.URL, RunRequest{Scenario: "consensus/few-crashes", N: 10, T: 9})
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), `"code":"invalid_argument"`) {
		t.Fatalf("topology error = %d %s", resp.StatusCode, body)
	}

	raw, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, raw)
	if raw.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), `"code":"bad_json"`) {
		t.Fatalf("bad json = %d %s", raw.StatusCode, body)
	}

	if resp, err := http.Get(ts.URL + "/v1/run"); err != nil {
		t.Fatal(err)
	} else if readAll(t, resp); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
}

// TestSweepSharesTheRunCache checks sweep points flow through the same
// cached path as /v1/run: the sweep's per-point envelopes are
// byte-identical to the individual run responses, and a repeated sweep
// is all hits.
func TestSweepSharesTheRunCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sweep := SweepRequest{
		Scenario: "consensus/few-crashes",
		Seed:     1,
		Points:   []SweepPoint{{N: 60, T: 10}, {N: 80, T: 16}},
	}
	body, err := json.Marshal(sweep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr SweepResponse
	if err := json.Unmarshal(readAll(t, resp), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != 2 || len(sr.Results) != 2 {
		t.Fatalf("sweep response = %+v", sr)
	}

	for i, pt := range sweep.Points {
		run := postRun(t, ts.URL, RunRequest{Scenario: sweep.Scenario, N: pt.N, T: pt.T, Seed: sweep.Seed})
		runBody := readAll(t, run)
		if run.Header.Get("X-Cache") != "hit" {
			t.Fatalf("point %d not served from the sweep-filled cache", i)
		}
		if !bytes.Equal(runBody, sr.Results[i]) {
			t.Fatalf("point %d: run body != sweep result\n run   %s\n sweep %s", i, runBody, sr.Results[i])
		}
	}

	before := s.Stats().Queue.Completed
	resp, err = http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if after := s.Stats().Queue.Completed; after != before {
		t.Fatalf("repeated sweep ran %d engines, want 0", after-before)
	}

	// A sweep with no points is a validation error.
	resp, err = http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{"scenario":"consensus/few-crashes","points":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sweep status = %d, want 400", resp.StatusCode)
	}
}

// TestStatszShape decodes /statsz and sanity-checks the gauges.
func TestStatszShape(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: 1 << 20, Workers: 1})
	readAll(t, postRun(t, ts.URL, RunRequest{Scenario: "gossip/expander", N: 50, T: 10, Seed: 1}))
	readAll(t, postRun(t, ts.URL, RunRequest{Scenario: "gossip/expander", N: 50, T: 10, Seed: 1}))

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Queue.Workers != 1 || st.Queue.Completed != 1 {
		t.Fatalf("queue stats = %+v", st.Queue)
	}
	if st.Cache.Bytes <= 0 || st.Cache.Capacity != 1<<20 {
		t.Fatalf("cache budget accounting = %+v", st.Cache)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
}

// TestRunErrorsAreNotCached checks a failed run leaves no cache entry
// behind: the next identical request runs the engine again.
func TestRunErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{run: func(sp scenario.Spec) (*scenario.Report, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("lineartime: transient failure")
		}
		return scenario.Run(sp)
	}}
	_, ts := newTestServer(t, cfg)
	req := RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: 1}

	resp := postRun(t, ts.URL, req)
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("first status = %d", resp.StatusCode)
	}
	resp = postRun(t, ts.URL, req)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d, want 200", resp.StatusCode)
	}
	if calls.Load() != 2 {
		t.Fatalf("runner calls = %d, want 2", calls.Load())
	}
}
