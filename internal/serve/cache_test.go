package serve

import (
	"fmt"
	"sync"
	"testing"
)

// oneShard builds a single-shard cache so eviction order is fully
// deterministic in tests.
func oneShard(budget int64) *Cache { return NewCache(budget, 1) }

// fits returns a budget that holds exactly count entries of the given
// key/value sizes.
func fits(count, keyLen, valLen int) int64 {
	return int64(count) * int64(keyLen+valLen+entryOverhead)
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := oneShard(fits(2, 1, 8))
	val := make([]byte, 8)
	c.Put("a", val)
	c.Put("b", val)
	c.Put("c", val) // evicts a, the least recently used
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived past the budget")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}

	// A Get refreshes recency: after touching b, inserting d must evict
	// c instead.
	c.Get("b")
	c.Put("d", val)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c survived though b was more recently used")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("recently-used b was evicted")
	}

	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 2 || st.Bytes > st.Capacity {
		t.Fatalf("stats out of budget: %+v", st)
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := oneShard(1 << 20)
	c.Get("x")              // miss
	c.Put("x", []byte("v")) //
	c.Get("x")              // hit
	c.Get("x")              // hit
	c.Get("y")              // miss
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("counters = %+v, want hits=2 misses=2 evictions=0", st)
	}
}

func TestCachePutOverwriteAdjustsBytes(t *testing.T) {
	c := oneShard(1 << 20)
	c.Put("k", make([]byte, 100))
	before := c.Stats().Bytes
	c.Put("k", make([]byte, 10))
	after := c.Stats()
	if after.Entries != 1 {
		t.Fatalf("entries = %d after overwrite, want 1", after.Entries)
	}
	if after.Bytes != before-90 {
		t.Fatalf("bytes = %d after shrinking overwrite, want %d", after.Bytes, before-90)
	}
	got, ok := c.Get("k")
	if !ok || len(got) != 10 {
		t.Fatalf("overwrite not visible: ok=%v len=%d", ok, len(got))
	}
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := oneShard(fits(1, 1, 8))
	c.Put("a", make([]byte, 8))
	c.Put("z", make([]byte, 1024)) // larger than the whole shard budget
	if _, ok := c.Get("z"); ok {
		t.Fatal("oversized value was admitted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("oversized Put flushed the resident entry")
	}
}

// TestCacheShardedBudget checks the byte budget holds under concurrent
// mixed traffic across shards.
func TestCacheShardedBudget(t *testing.T) {
	c := NewCache(1<<14, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				c.Put(k, make([]byte, 64))
				c.Get(k)
				c.Get(fmt.Sprintf("w%d-k%d", w, i/2))
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.Capacity {
		t.Fatalf("bytes %d exceed capacity %d", st.Bytes, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("workload was sized to force evictions, saw none")
	}
}
