// Package serve is the serving layer of the repository: it turns the
// scenario runner into a long-running daemon. Because every run is a
// pure, deterministic function of its Spec (and the Spec's canonical
// identity is scenario.Spec.Key), the layer can cache, coalesce and
// queue runs without ever risking a stale answer:
//
//   - Cache (cache.go) is a sharded, byte-budgeted LRU keyed by
//     Spec.Key; a hit is provably the correct response.
//   - flightGroup (coalesce.go) collapses N concurrent identical
//     requests into one engine run.
//   - workPool (queue.go) bounds engine concurrency with a fixed
//     worker pool over a bounded queue, rejecting overload instead of
//     spawning unbounded goroutines.
//   - Server (server.go) is the HTTP/JSON front wiring the three
//     together: /v1/run, /v1/sweep, /v1/scenarios, /healthz, /statsz.
//
// cmd/linearsimd hosts a Server; cmd/loadgen drives one closed-loop
// and records the results into BENCH_serve.json.
package serve

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// entryOverhead approximates the per-entry bookkeeping bytes (list
// element, map bucket share, entry header) charged against the byte
// budget in addition to the key and value payloads.
const entryOverhead = 128

// Cache is a sharded LRU over response bytes with a global byte
// budget. Sharding keeps lock hold times short under concurrent
// traffic; the budget is split evenly across shards, so a single shard
// evicts independently of the others. The zero value is not usable;
// call NewCache.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity_bytes"`
}

type cacheShard struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	byKey  map[string]*list.Element
	// lru orders entries front = most recently used.
	lru list.List
}

type cacheEntry struct {
	key  string
	val  []byte
	size int64
}

// NewCache returns a cache of the given total byte budget split over
// shards. shards <= 0 defaults to 16; budget <= 0 defaults to 64 MiB.
func NewCache(budget int64, shards int) *Cache {
	if shards <= 0 {
		shards = 16
	}
	if budget <= 0 {
		budget = 64 << 20
	}
	c := &Cache{shards: make([]cacheShard, shards), seed: maphash.MakeSeed()}
	per := budget / int64(shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].budget = per
		c.shards[i].byKey = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the cached bytes for key, marking the entry most
// recently used. The returned slice is shared with the cache and must
// not be mutated.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	val := el.Value.(*cacheEntry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, evicting least-recently-used entries until
// the shard is back under budget. A value larger than a whole shard's
// budget is not stored at all — admitting it would immediately flush
// the shard for a value that can never be retained.
func (c *Cache) Put(key string, val []byte) {
	size := int64(len(key)+len(val)) + entryOverhead
	s := c.shard(key)
	if size > s.budget {
		return
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += size - e.size
		e.val, e.size = val, size
		s.lru.MoveToFront(el)
	} else {
		s.byKey[key] = s.lru.PushFront(&cacheEntry{key: key, val: val, size: size})
		s.bytes += size
	}
	var evicted int64
	for s.bytes > s.budget {
		back := s.lru.Back()
		e := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.byKey, e.key)
		s.bytes -= e.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Entries counts resident entries across shards.
func (c *Cache) Entries() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int64(len(s.byKey))
		s.mu.Unlock()
	}
	return n
}

// Bytes sums resident bytes across shards.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Capacity sums the per-shard byte budgets (fixed at construction).
func (c *Cache) Capacity() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].budget
	}
	return n
}

// Stats snapshots the counters. Entries and Bytes sum over shards
// under their locks; the atomic counters are read without
// synchronization, so a concurrent snapshot is approximate (each
// counter individually exact).
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.byKey))
		st.Bytes += s.bytes
		st.Capacity += s.budget
		s.mu.Unlock()
	}
	return st
}
