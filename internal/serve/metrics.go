package serve

import (
	"net/http"
	"strings"
	"time"

	"lineartime/internal/campaign"
	"lineartime/internal/obs"
)

// statusClasses are the code label values of the request counters.
var statusClasses = [...]string{"2xx", "3xx", "4xx", "5xx"}

// classIndex maps an HTTP status to its class label index.
func classIndex(status int) int {
	switch {
	case status < 300:
		return 0
	case status < 400:
		return 1
	case status < 500:
		return 2
	default:
		return 3
	}
}

// routeMetrics holds one route's pre-registered handles: a counter per
// status class and one latency histogram.
type routeMetrics struct {
	requests [len(statusClasses)]*obs.Counter
	latency  *obs.Histogram
}

// serveMetrics is the serving tier's observability surface: the
// registry every family lives in, the engine tracer installed on each
// run Spec, the shared campaign meter, and the per-route request
// handles. Component counters (cache, coalescer, queue, jobs) are
// exported through CounterFunc/GaugeFunc closures over the atomics the
// components already keep, so /statsz and /metrics read one source of
// truth.
type serveMetrics struct {
	reg      *obs.Registry
	tracer   *obs.EngineTracer
	campaign *campaign.Meter
	routes   map[string]*routeMetrics
}

// newServeMetrics builds the registry and every static family for s.
// Called once from New, after the components exist.
func newServeMetrics(s *Server) *serveMetrics {
	reg := obs.NewRegistry()
	m := &serveMetrics{
		reg:      reg,
		tracer:   obs.NewEngineTracer(reg),
		campaign: campaign.NewMeter(reg),
		routes:   make(map[string]*routeMetrics),
	}

	reg.GaugeFunc("lineartime_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("lineartime_serve_ready",
		"1 when /readyz reports ready, else 0.",
		func() float64 { return b2f(s.ready.Load()) })
	reg.GaugeFunc("lineartime_serve_draining",
		"1 once a graceful shutdown began draining, else 0.",
		func() float64 { return b2f(s.draining.Load()) })

	c := s.cache
	reg.CounterFunc("lineartime_cache_hits_total",
		"Result-cache hits.", func() int64 { return c.hits.Load() })
	reg.CounterFunc("lineartime_cache_misses_total",
		"Result-cache misses.", func() int64 { return c.misses.Load() })
	reg.CounterFunc("lineartime_cache_evictions_total",
		"Result-cache LRU evictions.", func() int64 { return c.evictions.Load() })
	reg.GaugeFunc("lineartime_cache_entries",
		"Result-cache resident entries.", func() float64 { return float64(c.Entries()) })
	reg.GaugeFunc("lineartime_cache_bytes",
		"Result-cache resident bytes.", func() float64 { return float64(c.Bytes()) })
	reg.GaugeFunc("lineartime_cache_capacity_bytes",
		"Result-cache byte budget.", func() float64 { return float64(c.Capacity()) })

	reg.CounterFunc("lineartime_coalesced_total",
		"Requests served by joining an identical in-flight run.",
		func() int64 { return s.flight.Coalesced() })

	p := s.pool
	reg.GaugeFunc("lineartime_queue_workers",
		"Engine worker count.", func() float64 { return float64(p.workers) })
	reg.GaugeFunc("lineartime_queue_depth",
		"Jobs waiting in the bounded queue.", func() float64 { return float64(len(p.jobs)) })
	reg.GaugeFunc("lineartime_queue_capacity",
		"Bounded queue capacity.", func() float64 { return float64(cap(p.jobs)) })
	reg.CounterFunc("lineartime_queue_rejected_total",
		"Jobs shed with 429 backpressure.", func() int64 { return p.rejected.Load() })
	reg.CounterFunc("lineartime_queue_completed_total",
		"Jobs completed without error.", func() int64 { return p.completed.Load() })
	reg.CounterFunc("lineartime_queue_errored_total",
		"Jobs that returned an error.", func() int64 { return p.errored.Load() })

	return m
}

// registerJobsMetrics wires the campaign store gauges; split from
// newServeMetrics because the store is built after the pool.
func (m *serveMetrics) registerJobsMetrics(s *Server) {
	m.reg.GaugeFunc("lineartime_campaign_jobs",
		"Campaign jobs hosted (any state).",
		func() float64 { return float64(s.jobsStats().Jobs) })
	m.reg.GaugeFunc("lineartime_campaign_jobs_running",
		"Campaign jobs currently running.",
		func() float64 { return float64(s.jobsStats().Running) })
	m.reg.GaugeFunc("lineartime_campaign_jobs_capacity",
		"Campaign job store capacity.",
		func() float64 { return float64(s.jobsStats().Capacity) })
	m.reg.CounterFunc("lineartime_campaign_jobs_launched_total",
		"Campaign jobs launched by POST.",
		func() int64 { st := s.jobs; st.mu.Lock(); defer st.mu.Unlock(); return st.launched })
	m.reg.CounterFunc("lineartime_campaign_jobs_resumed_total",
		"Campaign jobs resumed from the state file.",
		func() int64 { st := s.jobs; st.mu.Lock(); defer st.mu.Unlock(); return st.resumed })
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// route registers per-path request handles once; routes sharing a path
// (GET and POST /v1/campaigns) share one child set, with the status
// class separating their outcomes.
func (m *serveMetrics) route(path string) *routeMetrics {
	if rm, ok := m.routes[path]; ok {
		return rm
	}
	rm := &routeMetrics{}
	for i, class := range statusClasses {
		rm.requests[i] = m.reg.Counter("lineartime_requests_total",
			"HTTP requests by path and status class.",
			obs.L{Key: "path", Value: path}, obs.L{Key: "code", Value: class})
	}
	rm.latency = m.reg.Histogram("lineartime_request_duration_seconds",
		"HTTP request latency by path.", obs.LatencyBuckets(),
		obs.L{Key: "path", Value: path})
	m.routes[path] = rm
	return rm
}

// AccessRecord is one request's structured log entry, handed to
// Config.AccessLog after the response is written.
type AccessRecord struct {
	Method string
	Path   string
	// Key is the run's content address, when the handler resolved one.
	Key string
	// Cache is the X-Cache verdict (hit / miss / coalesced), when the
	// request went through the cached run path.
	Cache    string
	Status   int
	Duration time.Duration
}

// statusRecorder captures the response status plus the run-path fields
// (key, cache verdict) the instrumented handlers annotate.
type statusRecorder struct {
	http.ResponseWriter
	status int
	key    string
}

func (r *statusRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// setRunKey annotates the instrumented response with the run's content
// address so request logs carry it. A no-op for bare ResponseWriters
// (tests calling handlers directly).
func setRunKey(w http.ResponseWriter, key string) {
	if rec, ok := w.(*statusRecorder); ok {
		rec.key = key
	}
}

// route registers pattern on the mux wrapped in the instrumentation
// middleware: per-path request counters and latency histograms, plus
// the structured access log when the host installed one.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	path := pattern
	if i := strings.LastIndexByte(pattern, ' '); i >= 0 {
		path = pattern[i+1:]
	}
	rm := s.metrics.route(path)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h(rec, r)
		d := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		rm.requests[classIndex(rec.status)].Inc()
		rm.latency.Observe(d.Seconds())
		if s.accessLog != nil {
			s.accessLog(AccessRecord{
				Method:   r.Method,
				Path:     path,
				Key:      rec.key,
				Cache:    rec.Header().Get("X-Cache"),
				Status:   rec.status,
				Duration: d,
			})
		}
	})
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WriteText(w)
}
