package serve

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightCoalescesConcurrentCallers is the singleflight contract
// under the race detector: N concurrent callers with one key cost
// exactly one invocation, and every caller sees the same bytes.
func TestFlightCoalescesConcurrentCallers(t *testing.T) {
	const callers = 64
	g := newFlightGroup()
	var (
		invocations atomic.Int64
		release     = make(chan struct{})
		ready       sync.WaitGroup
		done        sync.WaitGroup
	)
	results := make([][]byte, callers)
	shared := make([]bool, callers)
	ready.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			ready.Done()
			val, wasShared, err := g.Do("key", func() ([]byte, error) {
				invocations.Add(1)
				<-release // park the leader until every caller has arrived
				return []byte("result"), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], shared[i] = val, wasShared
		}(i)
	}
	ready.Wait()
	close(release)
	done.Wait()

	if n := invocations.Load(); n != 1 {
		t.Fatalf("%d invocations for %d concurrent identical requests, want 1", n, callers)
	}
	leaders := 0
	for i := range results {
		if !bytes.Equal(results[i], []byte("result")) {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if got := g.Coalesced(); got != callers-1 {
		t.Fatalf("coalesced = %d, want %d", got, callers-1)
	}
}

// TestFlightErrorsShared checks followers share the leader's error and
// that a later call retries instead of caching the failure.
func TestFlightErrorsShared(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	if _, _, err := g.Do("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v", err)
	}
	// The flight is gone; a fresh call runs again.
	val, shared, err := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || shared || string(val) != "ok" {
		t.Fatalf("retry after error: val=%q shared=%v err=%v", val, shared, err)
	}
}

// TestFlightDistinctKeysDoNotCoalesce checks keys are independent.
func TestFlightDistinctKeysDoNotCoalesce(t *testing.T) {
	g := newFlightGroup()
	var invocations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			g.Do(key, func() ([]byte, error) {
				invocations.Add(1)
				return []byte(key), nil
			})
		}(i)
	}
	wg.Wait()
	if n := invocations.Load(); n != 8 {
		t.Fatalf("%d invocations for 8 distinct keys, want 8", n)
	}
	if g.Coalesced() != 0 {
		t.Fatalf("coalesced = %d for distinct keys", g.Coalesced())
	}
}
