package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lineartime/internal/campaign"
	"lineartime/internal/scenario"
)

// JobsStateSchema versions the daemon's campaign state file, written on
// graceful shutdown and read back on the next start so interrupted
// campaigns resume instead of restarting.
const JobsStateSchema = "lineartime/campaign-jobs/v1"

// The campaign job states. A job is terminal in every state but
// "running"; "interrupted" is terminal for this process yet resumable
// by the next one (its checkpoint rides in the state file).
const (
	JobRunning     = "running"
	JobDone        = "done"
	JobFailed      = "failed"
	JobCancelled   = "cancelled"
	JobInterrupted = "interrupted"
)

// The campaign-run retry policy: transient worker-pool backpressure
// (ErrBusy / HTTP 429 on the wire) retries with capped exponential
// backoff and jitter instead of failing the candidate.
const (
	campaignRetryBase = 10 * time.Millisecond
	campaignRetryCap  = 500 * time.Millisecond
)

// CampaignStatus is the body of the campaign endpoints: one job's
// identity, state and progress, with the frontier artifact attached
// once the campaign is done.
type CampaignStatus struct {
	ID       string            `json:"id"`
	Status   string            `json:"status"`
	Campaign campaign.Spec     `json:"campaign"`
	Progress campaign.Progress `json:"progress"`
	Error    string            `json:"error,omitempty"`
	// Resumable marks an interrupted job whose checkpoint will ride the
	// daemon's state file into the next process.
	Resumable bool            `json:"resumable,omitempty"`
	Frontier  json.RawMessage `json:"frontier,omitempty"`
}

// CampaignList is the body of GET /v1/campaigns.
type CampaignList struct {
	Campaigns []CampaignStatus `json:"campaigns"`
}

// campaignJob is one hosted campaign: the controller, its cancellation
// handle, and the terminal record once the run finishes.
type campaignJob struct {
	id   string
	spec campaign.Spec

	ctx    context.Context
	cancel context.CancelFunc
	ctrl   *campaign.Controller

	mu         sync.Mutex
	status     string
	errMsg     string
	artifact   []byte
	checkpoint *campaign.Checkpoint
	// cancelRequested distinguishes a user DELETE from a server drain;
	// both cancel the context, only the former ends in "cancelled".
	cancelRequested bool
	// progress is the last snapshot, frozen at the terminal transition
	// (and carried for jobs restored without a live controller).
	progress campaign.Progress
}

// snapshot assembles the job's API view.
func (j *campaignJob) snapshot() CampaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := CampaignStatus{
		ID:        j.id,
		Status:    j.status,
		Campaign:  j.spec,
		Progress:  j.progress,
		Error:     j.errMsg,
		Resumable: j.checkpoint != nil && j.status != JobDone,
	}
	if j.status == JobRunning && j.ctrl != nil {
		st.Progress = j.ctrl.Snapshot()
	}
	if j.status == JobDone {
		st.Frontier = json.RawMessage(j.artifact)
	}
	return st
}

// jobStore hosts the daemon's campaign jobs: a bounded map keyed by
// the campaign's content address, a WaitGroup over the running job
// goroutines, and the root context a drain cancels.
type jobStore struct {
	mu    sync.Mutex
	jobs  map[string]*campaignJob
	order []string
	max   int

	root     context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	conc     int
	run      campaign.RunFunc
	launched int64
	resumed  int64
}

// JobsStats is the campaign section of GET /statsz.
type JobsStats struct {
	Capacity int   `json:"capacity"`
	Jobs     int   `json:"jobs"`
	Running  int   `json:"running"`
	Launched int64 `json:"launched"`
	Resumed  int64 `json:"resumed"`
}

func newJobStore(maxJobs, conc int, run campaign.RunFunc) *jobStore {
	if maxJobs <= 0 {
		maxJobs = 8
	}
	if conc <= 0 {
		conc = 1
	}
	root, cancel := context.WithCancel(context.Background())
	return &jobStore{
		jobs:   make(map[string]*campaignJob),
		max:    maxJobs,
		root:   root,
		cancel: cancel,
		conc:   conc,
		run:    run,
	}
}

// get returns the job by id.
func (st *jobStore) get(id string) (*campaignJob, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list snapshots every job in admission order.
func (st *jobStore) list() []CampaignStatus {
	st.mu.Lock()
	ids := append([]string(nil), st.order...)
	jobs := make([]*campaignJob, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, st.jobs[id])
	}
	st.mu.Unlock()
	out := make([]CampaignStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// insert admits the job, evicting the oldest terminal job when the
// store is full. It returns errJobExists if the id is already hosted
// (the caller serves the existing job) and ErrBusy when every slot
// holds a running job.
func (st *jobStore) insert(j *campaignJob, resumed bool) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.jobs[j.id]; ok {
		return errJobExists
	}
	if len(st.jobs) >= st.max {
		evicted := false
		for i, old := range st.order {
			prev := st.jobs[old]
			prev.mu.Lock()
			terminal := prev.status != JobRunning
			prev.mu.Unlock()
			if terminal {
				delete(st.jobs, old)
				st.order = append(st.order[:i], st.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return fmt.Errorf("%w: all %d campaign slots are running", ErrBusy, st.max)
		}
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	if j.status == JobRunning {
		if resumed {
			st.resumed++
		} else {
			st.launched++
		}
	}
	return nil
}

// errJobExists signals admit found the id already hosted (POST dedup).
var errJobExists = errors.New("serve: campaign already exists")

// launch starts the controller's run goroutine for the job.
func (st *jobStore) launch(j *campaignJob) {
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		_, err := j.ctrl.Run(j.ctx)
		j.finish(err)
	}()
}

// finish records the run outcome on the job.
func (j *campaignJob) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = j.ctrl.Snapshot()
	switch {
	case err == nil:
		fr := j.ctrl.Frontier()
		body, encErr := fr.Encode()
		if encErr != nil {
			j.status = JobFailed
			j.errMsg = encErr.Error()
			return
		}
		j.status = JobDone
		j.artifact = body
		j.checkpoint = nil
	case errors.Is(err, campaign.ErrInterrupted):
		j.checkpoint = j.ctrl.Checkpoint()
		if j.cancelRequested {
			j.status = JobCancelled
		} else {
			j.status = JobInterrupted
		}
	default:
		j.status = JobFailed
		j.errMsg = err.Error()
	}
}

// drain cancels every running job and waits for their goroutines to
// reach a terminal state (running campaigns finish their in-flight
// batch and checkpoint as "interrupted"). It must complete before the
// worker pool closes: an interrupted controller stops submitting only
// once its batch lands.
func (st *jobStore) drain() {
	st.cancel()
	st.wg.Wait()
}

// jobState is one job in the daemon's state file.
type jobState struct {
	ID         string          `json:"id"`
	Status     string          `json:"status"`
	Campaign   campaign.Spec   `json:"campaign"`
	Error      string          `json:"error,omitempty"`
	Artifact   json.RawMessage `json:"artifact,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// jobsStateFile is the daemon's campaign state file.
type jobsStateFile struct {
	Schema string     `json:"schema"`
	Jobs   []jobState `json:"jobs"`
}

// DrainJobs cancels all running campaigns and waits for them to
// checkpoint. Call on SIGTERM before SaveJobs and Close.
func (s *Server) DrainJobs() { s.jobs.drain() }

// SaveJobs writes the campaign job state to path (atomically, via a
// temp file rename) so RestoreJobs in the next process resumes
// interrupted campaigns and replays terminal results.
func (s *Server) SaveJobs(path string) error {
	s.jobs.mu.Lock()
	ids := append([]string(nil), s.jobs.order...)
	jobs := make([]*campaignJob, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs.jobs[id])
	}
	s.jobs.mu.Unlock()

	file := jobsStateFile{Schema: JobsStateSchema}
	for _, j := range jobs {
		j.mu.Lock()
		stj := jobState{ID: j.id, Status: j.status, Campaign: j.spec, Error: j.errMsg}
		if j.status == JobRunning {
			// Defensive: a job still running at save time (drain was
			// skipped) is persisted as restartable-from-scratch.
			stj.Status = JobInterrupted
		}
		if j.artifact != nil {
			stj.Artifact = json.RawMessage(j.artifact)
		}
		if j.checkpoint != nil {
			blob, err := json.Marshal(j.checkpoint)
			if err != nil {
				j.mu.Unlock()
				return fmt.Errorf("serve: marshal checkpoint of %s: %w", j.id, err)
			}
			stj.Checkpoint = blob
		}
		j.mu.Unlock()
		file.Jobs = append(file.Jobs, stj)
	}
	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreJobs loads a state file written by SaveJobs: terminal jobs
// come back as served records, interrupted jobs resume from their
// checkpoints (or restart from scratch if the checkpoint is missing).
// A missing file is not an error — it is the first boot.
func (s *Server) RestoreJobs(path string) error {
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var file jobsStateFile
	if err := json.Unmarshal(blob, &file); err != nil {
		return fmt.Errorf("serve: campaign state file %s: %w", path, err)
	}
	if file.Schema != JobsStateSchema {
		return fmt.Errorf("serve: campaign state file schema %q, want %q", file.Schema, JobsStateSchema)
	}
	for _, stj := range file.Jobs {
		j := &campaignJob{id: stj.ID, spec: stj.Campaign, status: stj.Status, errMsg: stj.Error}
		if stj.Artifact != nil {
			j.artifact = append([]byte(nil), stj.Artifact...)
		}
		if stj.Checkpoint != nil {
			var cp campaign.Checkpoint
			if err := json.Unmarshal(stj.Checkpoint, &cp); err != nil {
				return fmt.Errorf("serve: checkpoint of restored campaign %s: %w", stj.ID, err)
			}
			j.checkpoint = &cp
		}
		if stj.Status == JobInterrupted || stj.Status == JobRunning {
			var ctrl *campaign.Controller
			var cErr error
			if j.checkpoint != nil {
				ctrl, cErr = campaign.Resume(j.checkpoint, s.jobs.run, s.jobs.conc)
			} else {
				ctrl, cErr = campaign.New(j.spec, s.jobs.run, s.jobs.conc)
			}
			if cErr != nil {
				j.status = JobFailed
				j.errMsg = cErr.Error()
			} else {
				ctrl.SetMeter(s.metrics.campaign)
				j.ctx, j.cancel = context.WithCancel(s.jobs.root)
				j.ctrl = ctrl
				j.status = JobRunning
			}
		}
		if err := s.jobs.insert(j, true); err != nil {
			if errors.Is(err, errJobExists) {
				continue
			}
			return err
		}
		if j.status == JobRunning {
			s.jobs.launch(j)
		}
	}
	return nil
}

// JobsStats snapshots the campaign store counters.
func (s *Server) jobsStats() JobsStats {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	st := JobsStats{
		Capacity: s.jobs.max,
		Jobs:     len(s.jobs.jobs),
		Launched: s.jobs.launched,
		Resumed:  s.jobs.resumed,
	}
	for _, j := range s.jobs.jobs {
		j.mu.Lock()
		if j.status == JobRunning {
			st.Running++
		}
		j.mu.Unlock()
	}
	return st
}

// campaignRun is the serving layer's RunFunc: every campaign
// evaluation takes the same cached path as POST /v1/run — cache
// lookup, coalescing, bounded worker pool — so revisited fault points
// dedup across campaigns and interactive traffic. Transient pool
// backpressure retries with capped exponential backoff plus jitter;
// context cancellation (drain, user cancel) cuts the retry loop.
func (s *Server) campaignRun(ctx context.Context, sp scenario.Spec) (*scenario.Report, error) {
	backoff := campaignRetryBase
	for {
		body, _, _, err := s.runCached(sp)
		if err == nil {
			var rr RunResponse
			if derr := json.Unmarshal(body, &rr); derr != nil {
				return nil, derr
			}
			return rr.Report, nil
		}
		if !errors.Is(err, ErrBusy) {
			return nil, err
		}
		delay := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if backoff < campaignRetryCap {
			backoff *= 2
		}
	}
}

func (s *Server) handleCampaignPost(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&spec); err != nil {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			code:    "bad_json",
			message: "lineartime: request body is not valid JSON: " + err.Error(),
		})
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, err)
		return
	}
	id := norm.ID()
	if j, ok := s.jobs.get(id); ok {
		// Same campaign, same job: POST is idempotent by content address.
		writeJSON(w, j.snapshot())
		return
	}
	ctrl, err := campaign.New(norm, s.jobs.run, s.jobs.conc)
	if err != nil {
		writeError(w, err)
		return
	}
	ctrl.SetMeter(s.metrics.campaign)
	j := &campaignJob{id: id, spec: norm, status: JobRunning, ctrl: ctrl}
	j.ctx, j.cancel = context.WithCancel(s.jobs.root)
	if err := s.jobs.insert(j, false); err != nil {
		if errors.Is(err, errJobExists) {
			if existing, ok := s.jobs.get(id); ok {
				writeJSON(w, existing.snapshot())
				return
			}
		}
		writeError(w, err)
		return
	}
	s.jobs.launch(j)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	body, _ := json.Marshal(j.snapshot())
	w.Write(body)
}

func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &apiError{
			status:  http.StatusNotFound,
			code:    "unknown_campaign",
			message: fmt.Sprintf("lineartime: no campaign %q (see GET /v1/campaigns)", r.PathValue("id")),
		})
		return
	}
	writeJSON(w, j.snapshot())
}

func (s *Server) handleCampaignList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, CampaignList{Campaigns: s.jobs.list()})
}

func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &apiError{
			status:  http.StatusNotFound,
			code:    "unknown_campaign",
			message: fmt.Sprintf("lineartime: no campaign %q (see GET /v1/campaigns)", r.PathValue("id")),
		})
		return
	}
	j.mu.Lock()
	if j.status == JobRunning {
		j.cancelRequested = true
		j.cancel()
	}
	j.mu.Unlock()
	writeJSON(w, j.snapshot())
}
