package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"lineartime/internal/obs"
	"lineartime/internal/scenario"
)

// maxSweepPoints bounds one /v1/sweep request so a single call cannot
// monopolize the queue.
const maxSweepPoints = 1024

// maxBodyBytes caps request bodies before they are decoded: the
// largest legitimate request (a full-size sweep) is a few tens of KB,
// so decoding is never allowed to balloon memory ahead of the
// queue's backpressure.
const maxBodyBytes = 1 << 20

// Config sizes a Server. Zero values select the defaults documented on
// each field.
type Config struct {
	// CacheBytes is the total result-cache budget (default 64 MiB).
	CacheBytes int64
	// CacheShards is the cache shard count (default 16).
	CacheShards int
	// Workers is the engine worker count (default 2).
	Workers int
	// QueueDepth is the bounded job-queue capacity (default 4×Workers);
	// a full queue rejects with HTTP 429.
	QueueDepth int
	// MaxJobs bounds the campaign job store (default 8). When every
	// slot holds a running campaign, POST /v1/campaigns rejects with
	// HTTP 429; terminal jobs are evicted oldest-first to admit new
	// ones.
	MaxJobs int

	// AccessLog, when set, receives one AccessRecord per request after
	// the response is written (the daemon's -log-format json sink).
	AccessLog func(AccessRecord)

	// run substitutes the engine entry point in tests; nil means
	// scenario.Run.
	run func(scenario.Spec) (*scenario.Report, error)
}

// Server wires the result cache, the request coalescer and the worker
// pool behind an HTTP/JSON API. Construct with New, expose via
// Handler, release the workers with Close.
type Server struct {
	cache   *Cache
	flight  *flightGroup
	pool    *workPool
	jobs    *jobStore
	mux     *http.ServeMux
	started time.Time
	// metrics is the obs registry plus every pre-registered handle;
	// /metrics and /statsz both render from it.
	metrics   *serveMetrics
	accessLog func(AccessRecord)
	// ready gates /readyz: false during startup (until the owner calls
	// SetReady) and again during shutdown drain, so orchestrators stop
	// routing new traffic while in-flight work finishes.
	ready atomic.Bool
	// draining marks a graceful shutdown in progress (BeginDrain):
	// /healthz and /readyz report it in their bodies and the
	// lineartime_serve_draining gauge exports it.
	draining atomic.Bool
}

// RunRequest is the body of POST /v1/run: a registry scenario
// materialized at size (n, t) with the canonical inputs of the
// registry row. Fault, when non-empty, overrides the row's bound fault
// model using the CLI spelling of scenario.ParseFault.
type RunRequest struct {
	Scenario   string `json:"scenario"`
	N          int    `json:"n"`
	T          int    `json:"t"`
	Seed       uint64 `json:"seed"`
	Fault      string `json:"fault,omitempty"`
	Degree     int    `json:"degree,omitempty"`
	RoundSlack int    `json:"round_slack,omitempty"`
}

// RunResponse is the body of POST /v1/run: the content address of the
// run and its unified report. The daemon serves exactly these bytes
// from cache on a hit, and linearsim -json emits the same encoding.
// Trace carries the stage-timing transcript of linearsim -trace -json;
// the daemon never sets it, and omitempty keeps the daemon encoding
// byte-identical to the traceless CLI one.
type RunResponse struct {
	Key    string           `json:"key"`
	Report *scenario.Report `json:"report"`
	Trace  *obs.Trace       `json:"trace,omitempty"`
}

// EncodeRunResponse is the one encoder of the run envelope, shared by
// the daemon and linearsim -json so scripted consumers see a single
// format.
func EncodeRunResponse(key string, rep *scenario.Report) ([]byte, error) {
	return json.Marshal(RunResponse{Key: key, Report: rep})
}

// EncodeRunResponseTrace is EncodeRunResponse with the optional trace
// transcript attached; a nil trace encodes identically to
// EncodeRunResponse.
func EncodeRunResponseTrace(key string, rep *scenario.Report, tr *obs.Trace) ([]byte, error) {
	return json.Marshal(RunResponse{Key: key, Report: rep, Trace: tr})
}

// SweepPoint is one size of a sweep request.
type SweepPoint struct {
	N int `json:"n"`
	T int `json:"t"`
}

// SweepRequest is the body of POST /v1/sweep: one scenario across many
// sizes. Every point goes through the same cached run path as /v1/run.
type SweepRequest struct {
	Scenario string       `json:"scenario"`
	Seed     uint64       `json:"seed"`
	Fault    string       `json:"fault,omitempty"`
	Points   []SweepPoint `json:"points"`
}

// SweepResponse is the body of POST /v1/sweep.
type SweepResponse struct {
	Scenario string            `json:"scenario"`
	Count    int               `json:"count"`
	Results  []json.RawMessage `json:"results"`
}

// ScenarioInfo is one row of GET /v1/scenarios.
type ScenarioInfo struct {
	Name        string   `json:"name"`
	Problem     string   `json:"problem"`
	Algorithm   string   `json:"algorithm"`
	Port        string   `json:"port"`
	Fault       string   `json:"fault"`
	Experiments []string `json:"experiments,omitempty"`
	About       string   `json:"about"`
}

// Stats is the body of GET /statsz.
type Stats struct {
	UptimeSeconds float64    `json:"uptime_seconds"`
	Cache         CacheStats `json:"cache"`
	Coalesced     int64      `json:"coalesced"`
	Queue         QueueStats `json:"queue"`
	Campaigns     JobsStats  `json:"campaigns"`
}

// ErrorBody is the structured error envelope of every non-2xx
// response: a stable machine-readable code plus the human message.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the code and message of an ErrorBody.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	s := &Server{
		cache:     NewCache(cfg.CacheBytes, cfg.CacheShards),
		flight:    newFlightGroup(),
		pool:      newWorkPool(cfg.Workers, cfg.QueueDepth, cfg.run),
		mux:       http.NewServeMux(),
		started:   time.Now(),
		accessLog: cfg.AccessLog,
	}
	s.metrics = newServeMetrics(s)
	s.jobs = newJobStore(cfg.MaxJobs, s.pool.workers, s.campaignRun)
	s.metrics.registerJobsMetrics(s)
	s.route("POST /v1/run", s.handleRun)
	s.route("POST /v1/sweep", s.handleSweep)
	s.route("GET /v1/scenarios", s.handleScenarios)
	s.route("POST /v1/campaigns", s.handleCampaignPost)
	s.route("GET /v1/campaigns", s.handleCampaignList)
	s.route("GET /v1/campaigns/{id}", s.handleCampaignGet)
	s.route("DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	s.route("GET /healthz", s.handleHealth)
	s.route("GET /readyz", s.handleReady)
	s.route("GET /statsz", s.handleStats)
	s.route("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP surface of the server.
func (s *Server) Handler() http.Handler { return s.mux }

// SetReady flips the /readyz gate. The daemon sets it true once the
// listener is up (and restored campaigns are launched), and false at
// the start of a graceful shutdown.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// BeginDrain marks the start of a graceful shutdown: the readiness
// gate closes and /healthz, /readyz and the lineartime_serve_draining
// gauge report the drain so the SIGTERM sequence is observable.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.ready.Store(false)
}

// Close stops the server's workers. Campaign jobs drain first —
// running campaigns checkpoint as interrupted — because their
// controllers submit to the worker pool until their in-flight batch
// lands; only then is the pool closed. In-flight requests finish.
func (s *Server) Close() {
	s.jobs.drain()
	s.pool.Close()
}

// Stats snapshots the server counters. The snapshot is generated from
// the same obs registry that renders /metrics — every field is a
// Value() lookup of the corresponding family — so the JSON gauge dump
// and the Prometheus exposition cannot drift apart.
func (s *Server) Stats() Stats {
	iv := func(name string) int64 {
		v, _ := s.metrics.reg.Value(name)
		return int64(v)
	}
	fv := func(name string) float64 {
		v, _ := s.metrics.reg.Value(name)
		return v
	}
	return Stats{
		UptimeSeconds: fv("lineartime_uptime_seconds"),
		Cache: CacheStats{
			Hits:      iv("lineartime_cache_hits_total"),
			Misses:    iv("lineartime_cache_misses_total"),
			Evictions: iv("lineartime_cache_evictions_total"),
			Entries:   iv("lineartime_cache_entries"),
			Bytes:     iv("lineartime_cache_bytes"),
			Capacity:  iv("lineartime_cache_capacity_bytes"),
		},
		Coalesced: iv("lineartime_coalesced_total"),
		Queue: QueueStats{
			Workers:   int(iv("lineartime_queue_workers")),
			Depth:     int(iv("lineartime_queue_depth")),
			Capacity:  int(iv("lineartime_queue_capacity")),
			Rejected:  iv("lineartime_queue_rejected_total"),
			Completed: iv("lineartime_queue_completed_total"),
			Errored:   iv("lineartime_queue_errored_total"),
		},
		Campaigns: JobsStats{
			Capacity: int(iv("lineartime_campaign_jobs_capacity")),
			Jobs:     int(iv("lineartime_campaign_jobs")),
			Running:  int(iv("lineartime_campaign_jobs_running")),
			Launched: iv("lineartime_campaign_jobs_launched_total"),
			Resumed:  iv("lineartime_campaign_jobs_resumed_total"),
		},
	}
}

// apiError is an HTTP-mappable error: a status, a stable code, and the
// user-facing message.
type apiError struct {
	status  int
	code    string
	message string
}

func (e *apiError) Error() string { return e.message }

// classify maps an error onto its HTTP shape. Validation errors — the
// public "lineartime:" prefix, plus the scenario layer's own prefix
// (rebranded, matching the root API) and the topology constructors'
// "consensus:" prefix — are the client's fault (400). A full queue is
// backpressure (429). Anything else is the server's fault (500).
func classify(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, ErrBusy) {
		return &apiError{status: http.StatusTooManyRequests, code: "busy", message: err.Error()}
	}
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, "scenario: "); ok {
		msg = "lineartime: " + rest
	}
	if strings.HasPrefix(msg, "lineartime:") || strings.HasPrefix(msg, "consensus:") {
		return &apiError{status: http.StatusBadRequest, code: "invalid_argument", message: msg}
	}
	return &apiError{status: http.StatusInternalServerError, code: "internal", message: msg}
}

// writeError writes the structured JSON error body for err.
func writeError(w http.ResponseWriter, err error) {
	ae := classify(err)
	body, mErr := json.Marshal(ErrorBody{Error: ErrorDetail{Code: ae.code, Message: ae.message}})
	if mErr != nil {
		http.Error(w, ae.message, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// specFor materializes a run request against the registry.
func specFor(req RunRequest) (scenario.Spec, error) {
	d, ok := scenario.Lookup(req.Scenario)
	if !ok {
		return scenario.Spec{}, &apiError{
			status:  http.StatusNotFound,
			code:    "unknown_scenario",
			message: fmt.Sprintf("lineartime: unknown scenario %q (see /v1/scenarios)", req.Scenario),
		}
	}
	if req.N <= 0 {
		return scenario.Spec{}, &apiError{
			status:  http.StatusBadRequest,
			code:    "invalid_argument",
			message: fmt.Sprintf("lineartime: n=%d must be positive", req.N),
		}
	}
	sp := d.Spec(req.N, req.T, req.Seed)
	if req.Fault != "" {
		f, err := scenario.ParseFault(req.Fault)
		if err != nil {
			return scenario.Spec{}, err
		}
		sp.Fault = f
	}
	sp.Degree = req.Degree
	sp.RoundSlack = req.RoundSlack
	return sp, nil
}

// cacheState labels the X-Cache response header.
type cacheState string

// The X-Cache header values.
const (
	cacheHit       cacheState = "hit"
	cacheMiss      cacheState = "miss"
	cacheCoalesced cacheState = "coalesced"
)

// runCached is the cached run path shared by /v1/run and /v1/sweep:
// cache lookup, then a coalesced engine run through the bounded pool,
// then cache fill. The returned bytes are the exact response body — a
// hit replays byte-identical output.
func (s *Server) runCached(sp scenario.Spec) ([]byte, string, cacheState, error) {
	key := sp.Key()
	if body, ok := s.cache.Get(key); ok {
		return body, key, cacheHit, nil
	}
	body, shared, err := s.flight.Do(key, func() ([]byte, error) {
		// Every served run reports stage timings and outcome through
		// the shared engine tracer. Installed after Key(): the tracer
		// is runtime-only state, never part of the cache identity.
		sp.Tracer = s.metrics.tracer
		rep, err := s.pool.Submit(sp)
		if err != nil {
			return nil, err
		}
		body, err := EncodeRunResponse(key, rep)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, body)
		return body, nil
	})
	if err != nil {
		return nil, key, cacheMiss, err
	}
	if shared {
		return body, key, cacheCoalesced, nil
	}
	return body, key, cacheMiss, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			code:    "bad_json",
			message: "lineartime: request body is not valid JSON: " + err.Error(),
		})
		return
	}
	sp, err := specFor(req)
	if err != nil {
		writeError(w, err)
		return
	}
	body, key, state, err := s.runCached(sp)
	if err != nil {
		writeError(w, err)
		return
	}
	setRunKey(w, key)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", string(state))
	w.Write(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			code:    "bad_json",
			message: "lineartime: request body is not valid JSON: " + err.Error(),
		})
		return
	}
	if len(req.Points) == 0 {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			code:    "invalid_argument",
			message: "lineartime: sweep request has no points",
		})
		return
	}
	if len(req.Points) > maxSweepPoints {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			code:    "invalid_argument",
			message: fmt.Sprintf("lineartime: %d sweep points exceed the limit of %d", len(req.Points), maxSweepPoints),
		})
		return
	}
	resp := SweepResponse{Scenario: req.Scenario, Count: len(req.Points), Results: make([]json.RawMessage, 0, len(req.Points))}
	for _, pt := range req.Points {
		sp, err := specFor(RunRequest{Scenario: req.Scenario, N: pt.N, T: pt.T, Seed: req.Seed, Fault: req.Fault})
		if err != nil {
			writeError(w, err)
			return
		}
		body, _, _, err := s.runCached(sp)
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Results = append(resp.Results, json.RawMessage(body))
	}
	writeJSON(w, resp)
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	defs := scenario.All()
	infos := make([]ScenarioInfo, 0, len(defs))
	for _, d := range defs {
		infos = append(infos, ScenarioInfo{
			Name:        d.Name,
			Problem:     d.Problem.String(),
			Algorithm:   string(d.Algorithm),
			Port:        d.Port.String(),
			Fault:       d.Fault.Kind.String(),
			Experiments: d.Experiments,
			About:       d.About,
		})
	}
	writeJSON(w, struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}{infos})
}

// handleHealth is liveness: the process is up and serving HTTP. It
// stays 200 through startup and drain; orchestrators restart on
// liveness failure, so flapping it during a graceful shutdown would
// turn every deploy into a kill. During a drain the body additionally
// reports "draining":true (omitted otherwise, so the steady-state body
// stays exactly {"status":"ok"}).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining,omitempty"`
	}{Status: "ok", Draining: s.draining.Load()})
}

// handleReady is readiness: whether new traffic should be routed
// here. Not-ready (503) during startup until the daemon flips
// SetReady, and again once a graceful shutdown begins draining; the
// body says which, so the SIGTERM sequence is observable.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		msg := "lineartime: daemon is starting up or draining"
		if s.draining.Load() {
			msg = "lineartime: daemon is draining for shutdown"
		}
		writeError(w, &apiError{
			status:  http.StatusServiceUnavailable,
			code:    "not_ready",
			message: msg,
		})
		return
	}
	writeJSON(w, struct {
		Status string `json:"status"`
	}{"ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}
