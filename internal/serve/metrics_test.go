package serve

import (
	"net/http"
	"strings"
	"testing"
)

// TestMetricsExposition drives one miss and one hit through /v1/run and
// asserts the Prometheus exposition reflects them: the serve families
// (requests, latency), the component families (cache, queue), and the
// engine families fed by the tracer installed on every served Spec.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: 1}
	readAll(t, postRun(t, ts.URL, req))
	readAll(t, postRun(t, ts.URL, req))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(readAll(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}

	for _, want := range []string{
		"# TYPE lineartime_requests_total counter",
		"# TYPE lineartime_request_duration_seconds histogram",
		`lineartime_requests_total{code="2xx",path="/v1/run"} 2`,
		`lineartime_cache_hits_total 1`,
		`lineartime_cache_misses_total 1`,
		`lineartime_queue_completed_total 1`,
		`lineartime_runs_total{engine="sequential",outcome="ok"} 1`,
		`lineartime_run_stage_duration_seconds_bucket{stage="rounds",le="+Inf"} 1`,
		`lineartime_run_rounds_count 1`,
		`lineartime_serve_draining 0`,
		"lineartime_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Exposition shape: every non-comment line is "name{labels} value"
	// or "name value", and every family has HELP before TYPE.
	var lastHelp, lastType string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.Fields(line)[2]
		case strings.HasPrefix(line, "# TYPE "):
			lastType = strings.Fields(line)[2]
			if lastHelp != lastType {
				t.Fatalf("TYPE %s not preceded by its HELP (last HELP %s)", lastType, lastHelp)
			}
		case line == "":
			t.Fatal("blank line in exposition")
		default:
			if !strings.Contains(line, " ") {
				t.Fatalf("sample line without value: %q", line)
			}
		}
	}
}

// TestMetricsNamingConvention pins the namespace: every family the
// server registers carries the lineartime_ prefix, so dashboards can
// select the whole surface with one matcher.
func TestMetricsNamingConvention(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	names := s.metrics.reg.Names()
	if len(names) == 0 {
		t.Fatal("registry has no families")
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "lineartime_") {
			t.Errorf("family %q lacks the lineartime_ prefix", name)
		}
	}
}

// TestDrainStateObservable walks the SIGTERM sequence: after BeginDrain
// the liveness body reports the drain (still 200), readiness turns 503
// with a drain-specific message, and the gauges flip.
func TestDrainStateObservable(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.SetReady(true)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != `{"status":"ready"}` {
		t.Fatalf("readyz before drain = %d %q", resp.StatusCode, body)
	}

	s.BeginDrain()

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != `{"status":"ok","draining":true}` {
		t.Fatalf("healthz during drain = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "draining for shutdown") {
		t.Fatalf("readyz drain body does not name the drain: %q", body)
	}

	if v, ok := s.metrics.reg.Value("lineartime_serve_draining"); !ok || v != 1 {
		t.Fatalf("lineartime_serve_draining = %v, %v", v, ok)
	}
	if v, ok := s.metrics.reg.Value("lineartime_serve_ready"); !ok || v != 0 {
		t.Fatalf("lineartime_serve_ready = %v, %v", v, ok)
	}
}

// TestStatszMatchesMetrics pins the single-source-of-truth property:
// the /statsz JSON gauges are Value() lookups of the same registry that
// renders /metrics, so the two surfaces agree after traffic.
func TestStatszMatchesMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := RunRequest{Scenario: "consensus/few-crashes", N: 60, T: 10, Seed: 7}
	readAll(t, postRun(t, ts.URL, req))
	readAll(t, postRun(t, ts.URL, req))

	st := s.Stats()
	for _, check := range []struct {
		name string
		got  float64
	}{
		{"lineartime_cache_hits_total", float64(st.Cache.Hits)},
		{"lineartime_cache_misses_total", float64(st.Cache.Misses)},
		{"lineartime_cache_entries", float64(st.Cache.Entries)},
		{"lineartime_coalesced_total", float64(st.Coalesced)},
		{"lineartime_queue_completed_total", float64(st.Queue.Completed)},
		{"lineartime_campaign_jobs_capacity", float64(st.Campaigns.Capacity)},
	} {
		if v, ok := s.metrics.reg.Value(check.name); !ok || v != check.got {
			t.Errorf("%s: registry %v (present %v) != statsz %v", check.name, v, ok, check.got)
		}
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters after miss+hit: %+v", st.Cache)
	}
}
