package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseFault parses the CLI spelling of a fault model,
// "kind[:key=value,...]", into a FaultModel. The kind names match
// FaultKind.String(); parameters are comma-separated key=value pairs.
// Crash schedules spell their events as node@round[/keep] separated by
// semicolons. ByzantineFaults is not parseable here: corruption is a
// protocol-level configuration (cmd/linearsim's -byz/-byzcount flags),
// not a link fault. Parameter range checking is left to the runner's
// up-front validation, which sees the scenario shape.
func ParseFault(s string) (FaultModel, error) {
	kindName, params, hasParams := strings.Cut(s, ":")
	var f FaultModel
	switch kindName {
	case "none", "":
		f.Kind = NoFailures
	case "crash-schedule":
		f.Kind = CrashSchedule
	case "random-crashes":
		f.Kind = RandomCrashes
	case "cascade":
		f.Kind = CascadeCrashes
	case "target-little":
		f.Kind = TargetLittleCrashes
	case "omission":
		f.Kind = OmissionFaults
	case "partition":
		f.Kind = PartitionWindow
	case "delay":
		f.Kind = DelayedLinks
	case "byzantine":
		return f, fmt.Errorf("lineartime: byzantine faults are configured per scenario (-byz/-byzcount), not as a link fault")
	default:
		return f, fmt.Errorf("lineartime: unknown fault kind %q (see the fault-model list)", kindName)
	}
	if !hasParams || params == "" {
		return f, nil
	}
	for _, pair := range strings.Split(params, ",") {
		key, value, ok := strings.Cut(pair, "=")
		if !ok {
			return f, fmt.Errorf("lineartime: fault parameter %q is not key=value", pair)
		}
		if err := f.setParam(key, value); err != nil {
			return f, err
		}
	}
	return f, nil
}

// setParam assigns one parsed key=value parameter, rejecting keys the
// kind does not accept so a typo fails loudly instead of silently
// running fault-free.
func (f *FaultModel) setParam(key, value string) error {
	atoi := func() (int, error) {
		v, err := strconv.Atoi(value)
		if err != nil {
			return 0, fmt.Errorf("lineartime: fault parameter %s=%q is not an integer", key, value)
		}
		return v, nil
	}
	var err error
	switch {
	case key == "seed" && f.Kind != CrashSchedule && f.Kind != PartitionWindow:
		u, perr := strconv.ParseUint(value, 10, 64)
		if perr != nil {
			return fmt.Errorf("lineartime: fault parameter seed=%q is not an unsigned integer", value)
		}
		f.Seed = u
	case key == "count" && (f.Kind == RandomCrashes || f.Kind == CascadeCrashes || f.Kind == TargetLittleCrashes):
		f.Count, err = atoi()
	case key == "horizon" && f.Kind == RandomCrashes:
		f.Horizon, err = atoi()
	case key == "keep" && f.Kind == CascadeCrashes:
		f.Keep, err = atoi()
	case key == "pool" && (f.Kind == CascadeCrashes || f.Kind == TargetLittleCrashes):
		f.Pool, err = atoi()
	case key == "events" && f.Kind == CrashSchedule:
		f.Schedule, err = parseCrashEvents(value)
	case key == "rate" && f.Kind == OmissionFaults:
		r, perr := strconv.ParseFloat(value, 64)
		if perr != nil || math.IsNaN(r) {
			return fmt.Errorf("lineartime: fault parameter rate=%q is not a number", value)
		}
		f.Rate = r
	case key == "from" && f.Kind == PartitionWindow:
		f.WindowStart, err = atoi()
	case key == "to" && f.Kind == PartitionWindow:
		f.WindowEnd, err = atoi()
	case key == "cut" && f.Kind == PartitionWindow:
		f.Cut, err = atoi()
	case key == "d" && f.Kind == DelayedLinks:
		f.Delay, err = atoi()
	default:
		return fmt.Errorf("lineartime: fault kind %v does not take parameter %q", f.Kind, key)
	}
	return err
}

// parseCrashEvents parses "node@round[/keep];..." into crash events.
// keep defaults to -1 (deliver the whole final outbox).
func parseCrashEvents(s string) ([]CrashEvent, error) {
	var events []CrashEvent
	for _, item := range strings.Split(s, ";") {
		nodePart, rest, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("lineartime: crash event %q is not node@round[/keep]", item)
		}
		roundPart, keepPart, hasKeep := strings.Cut(rest, "/")
		e := CrashEvent{Keep: -1}
		var err error
		if e.Node, err = strconv.Atoi(nodePart); err != nil {
			return nil, fmt.Errorf("lineartime: crash event %q has non-integer node", item)
		}
		if e.Round, err = strconv.Atoi(roundPart); err != nil {
			return nil, fmt.Errorf("lineartime: crash event %q has non-integer round", item)
		}
		if hasKeep {
			if e.Keep, err = strconv.Atoi(keepPart); err != nil {
				return nil, fmt.Errorf("lineartime: crash event %q has non-integer keep", item)
			}
		}
		events = append(events, e)
	}
	return events, nil
}

// CLI renders the fault model in the canonical CLI spelling of
// ParseFault: ParseFault(f.CLI()) reconstructs f exactly for every
// model ParseFault can produce (pinned by FuzzParseFault). Zero-valued
// parameters are omitted, so the spelling is canonical — equal models
// render equal strings, which is what lets campaign checkpoints and
// frontier artifacts carry fault models as their CLI form.
// ByzantineFaults has no link-fault spelling and renders as its kind
// name only.
func (f FaultModel) CLI() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	params := make([]string, 0, 4)
	addInt := func(key string, v int) {
		if v != 0 {
			params = append(params, key+"="+strconv.Itoa(v))
		}
	}
	addSeed := func() {
		if f.Seed != 0 {
			params = append(params, "seed="+strconv.FormatUint(f.Seed, 10))
		}
	}
	switch f.Kind {
	case CrashSchedule:
		if len(f.Schedule) > 0 {
			items := make([]string, len(f.Schedule))
			for i, e := range f.Schedule {
				item := strconv.Itoa(e.Node) + "@" + strconv.Itoa(e.Round)
				if e.Keep != -1 {
					item += "/" + strconv.Itoa(e.Keep)
				}
				items[i] = item
			}
			params = append(params, "events="+strings.Join(items, ";"))
		}
	case RandomCrashes:
		addInt("count", f.Count)
		addInt("horizon", f.Horizon)
		addSeed()
	case CascadeCrashes:
		addInt("count", f.Count)
		addInt("keep", f.Keep)
		addInt("pool", f.Pool)
		addSeed()
	case TargetLittleCrashes:
		addInt("count", f.Count)
		addInt("pool", f.Pool)
		addSeed()
	case OmissionFaults:
		if f.Rate != 0 {
			params = append(params, "rate="+strconv.FormatFloat(f.Rate, 'g', -1, 64))
		}
		addSeed()
	case PartitionWindow:
		addInt("from", f.WindowStart)
		addInt("to", f.WindowEnd)
		addInt("cut", f.Cut)
	case DelayedLinks:
		addInt("d", f.Delay)
		addSeed()
	}
	if len(params) > 0 {
		b.WriteByte(':')
		b.WriteString(strings.Join(params, ","))
	}
	return b.String()
}

// FaultUsage is one row of the CLI fault-model listing.
type FaultUsage struct {
	Kind  FaultKind
	Spec  string
	About string
}

// FaultUsages enumerates every fault kind with its CLI spelling, for
// cmd/linearsim's -list output.
func FaultUsages() []FaultUsage {
	return []FaultUsage{
		{NoFailures, "none", "fault-free run (the default)"},
		{CrashSchedule, "crash-schedule:events=N@R[/K];...", "crash node N at round R keeping K final messages (K<0 = all)"},
		{RandomCrashes, "random-crashes:count=C,horizon=H[,seed=S]", "≤C pseudo-random crashes at rounds below H"},
		{CascadeCrashes, "cascade:count=C[,keep=K][,pool=P][,seed=S]", "one crash per round from the first P names (early-stopping worst case)"},
		{TargetLittleCrashes, "target-little:count=C[,pool=P][,seed=S]", "spend the budget on little nodes at round 0 (Theorem 2 attack)"},
		{ByzantineFaults, "byzantine (via -byz / -byzcount)", "corrupted protocols; byzantine problem only"},
		{OmissionFaults, "omission:rate=R[,seed=S]", "lose each message independently with probability R"},
		{PartitionWindow, "partition:from=A,to=B[,cut=C]", "split first C nodes (default n/2) from the rest for rounds [A, B)"},
		{DelayedLinks, "delay:d=D[,seed=S]", "deliver each message up to D rounds late"},
	}
}
