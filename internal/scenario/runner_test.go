package scenario

import (
	"errors"
	"reflect"
	"testing"
)

// TestRunnerCoversEveryRegisteredScenario materializes and executes
// every registry definition at a small size, asserting the unified
// report carries the matching problem-specific outcome. This is the
// wiring test behind "adding a scenario is one registry entry".
func TestRunnerCoversEveryRegisteredScenario(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			n, tt := 50, 8
			if d.Problem == ByzantineConsensus {
				tt = 4
			}
			rep, err := Run(d.Spec(n, tt, 1))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Scenario != d.Name || rep.Problem != d.Problem || rep.Algorithm != d.Algorithm {
				t.Fatalf("report header %q/%v/%v does not match definition %q/%v/%v",
					rep.Scenario, rep.Problem, rep.Algorithm, d.Name, d.Problem, d.Algorithm)
			}
			if rep.Metrics.Rounds <= 0 {
				t.Fatalf("no rounds executed")
			}
			// Fault-bound rows (the E12 link-fault matrix) may
			// legitimately degrade — e.g. gossip under 2-round delays
			// loses completeness — so correctness is asserted only for
			// the fault-free protocol stacks; every row must still
			// terminate and report its problem outcome.
			faultFree := d.Fault.Kind == NoFailures
			var outcome interface{}
			switch d.Problem {
			case Consensus:
				outcome = rep.Consensus
				if faultFree && (rep.Consensus == nil || !rep.Consensus.Agreement || !rep.Consensus.Validity) {
					t.Fatalf("fault-free consensus violated correctness: %+v", rep.Consensus)
				}
			case Gossip:
				outcome = rep.Gossip
				if faultFree && (rep.Gossip == nil || !rep.Gossip.Complete) {
					t.Fatalf("fault-free gossip incomplete")
				}
			case Checkpointing:
				outcome = rep.Checkpoint
				if faultFree && (rep.Checkpoint == nil || !rep.Checkpoint.Agreement) {
					t.Fatalf("fault-free checkpointing disagreement")
				}
			case ByzantineConsensus:
				outcome = rep.Byzantine
				if faultFree && (rep.Byzantine == nil || !rep.Byzantine.Agreement) {
					t.Fatalf("fault-free byzantine disagreement")
				}
			case AlmostEverywhere, SpreadCommonValue:
				outcome = rep.Subroutine
				if faultFree && (rep.Subroutine == nil || rep.Subroutine.Deciders == 0) {
					t.Fatalf("no deciders: %+v", rep.Subroutine)
				}
			case MajorityVote:
				outcome = rep.Majority
				if faultFree && (rep.Majority == nil || !rep.Majority.Agreement) {
					t.Fatalf("fault-free majority disagreement")
				}
			}
			if outcome == nil || reflect.ValueOf(outcome).IsNil() {
				t.Fatalf("problem outcome missing for %v", d.Problem)
			}
		})
	}
}

// TestExecuteIsTheEngineChokePoint covers the dispatch rules: serial
// vs pooled engines produce identical results, and single-port configs
// reject the pool.
func TestExecuteIsTheEngineChokePoint(t *testing.T) {
	d := MustLookup("consensus/few-crashes")
	mk := func() Spec {
		sp := d.Spec(60, 10, 3)
		sp.Fault = FaultModel{Kind: RandomCrashes, Count: 10, Horizon: 30}
		return sp
	}
	serialSpec := mk()
	serial, err := Run(serialSpec)
	if err != nil {
		t.Fatal(err)
	}
	parallelSpec := mk()
	parallelSpec.Exec = Parallel(3)
	parallel, err := Run(parallelSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel report diverged from serial:\n%+v\nvs\n%+v", parallel, serial)
	}

	sp := MustLookup("consensus/single-port").Spec(40, 6, 1)
	sp.Exec = Parallel(2)
	if _, err := Run(sp); !errors.Is(err, ErrSinglePortParallel) {
		t.Fatalf("single-port parallel run: err = %v, want ErrSinglePortParallel", err)
	}
}

// TestLinkFaultParallelismMatchesSerial pins sequential/parallel
// equivalence for every fault-bound registry row — the omission,
// partition and delay scenarios must produce identical reports on the
// sequential engine and the sharded pool at several worker counts,
// like the crash scenarios always have.
func TestLinkFaultParallelismMatchesSerial(t *testing.T) {
	for _, d := range All() {
		if d.Fault.Kind == NoFailures {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			serial, err := Run(d.Spec(72, 12, 5))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 0} {
				sp := d.Spec(72, 12, 5)
				sp.Exec = Parallel(workers)
				parallel, err := Run(sp)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("workers=%d: parallel report diverged from serial:\n%+v\nvs\n%+v",
						workers, parallel, serial)
				}
			}
		})
	}
}

// TestByzantineParallelismMatchesSerial is the regression test for the
// pre-refactor gap where RunByzantineConsensus ignored WithParallelism
// (api.go called sim.Run directly): Byzantine scenarios must dispatch
// through the same choke point and produce identical reports on both
// engines.
func TestByzantineParallelismMatchesSerial(t *testing.T) {
	mk := func() Spec {
		sp := MustLookup("byzantine/ab-consensus").Spec(60, 3, 1)
		sp.Fault = FaultModel{Kind: ByzantineFaults, Strategy: Equivocate, Corrupted: []int{0, 1, 2}}
		return sp
	}
	serial, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Metrics.ByzMessages == 0 {
		t.Fatal("equivocators sent nothing; test is vacuous")
	}
	for _, workers := range []int{1, 3, 0} {
		sp := mk()
		sp.Exec = Parallel(workers)
		parallel, err := Run(sp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel byzantine report diverged from serial:\n%+v\nvs\n%+v",
				workers, parallel, serial)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	sp := MustLookup("consensus/few-crashes").Spec(40, 6, 1)
	sp.BoolInputs = sp.BoolInputs[:10]
	if _, err := Run(sp); err == nil {
		t.Fatal("short inputs accepted")
	}
	sp = MustLookup("consensus/few-crashes").Spec(40, 6, 1)
	sp.Algorithm = "nonsense"
	if _, err := Run(sp); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(Spec{Problem: Problem(99), N: 10}); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

// TestRoundSlackFeedsMaxRounds pins that RoundSlack reaches the
// engine: a slack too small for the few-crashes overrun makes the run
// fail with ErrNoTermination instead of silently changing semantics.
func TestRoundSlackFeedsMaxRounds(t *testing.T) {
	sp := MustLookup("consensus/few-crashes").Spec(40, 6, 1)
	sp.RoundSlack = -1000
	if _, err := Run(sp); err == nil {
		// Negative slack falls back to the default; the run must
		// succeed.
		return
	}
	t.Fatal("negative slack must fall back to the default slack")
}

// TestPartLabelerFlowsIntoReport asserts the per-part breakdown
// survives the scenario layer for protocols that expose schedules.
func TestPartLabelerFlowsIntoReport(t *testing.T) {
	rep, err := Run(MustLookup("consensus/few-crashes").Spec(60, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics.PerPart) == 0 {
		t.Fatal("few-crashes run lost its per-part breakdown")
	}
}
