package scenario

import (
	"encoding/json"
	"fmt"
)

// The Report tree is the wire format of the serving layer
// (internal/serve) and of linearsim -json, so the enum dimensions
// marshal as their canonical CLI spellings rather than opaque integers.
// Both directions are implemented: clients (cmd/loadgen, the service
// example) decode the same bodies the daemon encodes.

// MarshalJSON encodes the problem as its String form.
func (p Problem) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON decodes the String form produced by MarshalJSON.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("scenario: problem %s is not a JSON string", data)
	}
	for _, cand := range []Problem{Consensus, Gossip, Checkpointing, ByzantineConsensus, AlmostEverywhere, SpreadCommonValue, MajorityVote} {
		if cand.String() == s {
			*p = cand
			return nil
		}
	}
	return fmt.Errorf("scenario: unknown problem %q", s)
}

// MarshalJSON encodes the port model as its String form.
func (p PortModel) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON decodes the String form produced by MarshalJSON.
func (p *PortModel) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("scenario: port model %s is not a JSON string", data)
	}
	switch s {
	case SinglePort.String():
		*p = SinglePort
	case MultiPort.String():
		*p = MultiPort
	default:
		return fmt.Errorf("scenario: unknown port model %q", s)
	}
	return nil
}
