package scenario

import (
	"fmt"
	"sort"
)

// Definition is a registered scenario family: one cell of the
// evaluation matrix (problem × algorithm × port model, optionally
// bound to a fault model), named so commands and experiments can
// enumerate and materialize it at any size. The size dimension is
// bound at materialization time via Spec; fault-bound rows carry
// their FaultModel, while the plain protocol stacks leave the fault
// dimension to the caller.
type Definition struct {
	// Name is the registry key,
	// "<problem>/<algorithm>[/single-port][/<fault>]".
	Name      string
	Problem   Problem
	Algorithm Algorithm
	Port      PortModel
	// Fault is the row's bound fault model; the zero value leaves the
	// spec fault-free for the caller to fill in. Size-relative
	// parameters (e.g. a partition Cut of 0) resolve against n at
	// materialization.
	Fault FaultModel
	// Experiments lists the EXPERIMENTS.md experiment ids that
	// exercise this cell (golden-matrix bookkeeping).
	Experiments []string
	// About is a one-line description (paper section and claim).
	About string
}

// SupportsImplicit reports whether the definition's protocol stack
// runs on expander overlays and can therefore opt into the implicit
// (shift-family, unmaterialized) topology mode. The comparator
// algorithms that talk to all n peers directly — flooding, rotating
// coordinator, early stopping, all-to-all gossip, direct
// checkpointing — build no overlay, so implicit mode has nothing to
// make implicit there.
func (d Definition) SupportsImplicit() bool {
	switch d.Algorithm {
	case FewCrashes, ManyCrashes, SinglePortLinear,
		GossipExpander, CheckpointExpander,
		ABConsensus, DolevStrongAll,
		AEA, SCV, Majority:
		return true
	default:
		return false
	}
}

// implicitDefault, when set, makes Definition.Spec emit
// implicit-topology specs for every row that supports them. It exists
// for cmd/sweep, whose experiment tables enumerate specs inside
// opaque Point closures: one process-wide switch set before the sweep
// starts beats threading a flag through every closure. Set it before
// launching workers; it is not synchronized.
var implicitDefault bool

// SetImplicitDefault toggles the process-wide implicit-topology
// default consulted by Definition.Spec. Call before concurrent use.
func SetImplicitDefault(on bool) { implicitDefault = on }

// Spec materializes the definition at size (n, t) with the given seed:
// canonical per-problem inputs, the definition's fault model (none for
// the plain protocol stacks), sequential engine. Callers adjust the
// returned value (fault model, inputs, engine) before passing it to
// Run.
func (d Definition) Spec(n, t int, seed uint64) Spec {
	sp := Spec{
		Name:      d.Name,
		Problem:   d.Problem,
		Algorithm: d.Algorithm,
		Port:      d.Port,
		N:         n,
		T:         t,
		Seed:      seed,
		Fault:     d.Fault,
	}
	if implicitDefault && d.SupportsImplicit() {
		sp.Topology = TopologyShift
		sp.Implicit = true
	}
	switch d.Problem {
	case Consensus, AlmostEverywhere, MajorityVote:
		// Every third node inputs 1, the mixed-input workload of every
		// committed experiment.
		in := make([]bool, n)
		for i := range in {
			in[i] = i%3 == 0
		}
		sp.BoolInputs = in
	case SpreadCommonValue:
		// 3n/5 holders, the Theorem 6 threshold workload.
		in := make([]bool, n)
		for i := range in {
			in[i] = i < 3*n/5
		}
		sp.BoolInputs = in
	case Gossip:
		rumors := make([]uint64, n)
		for i := range rumors {
			rumors[i] = uint64(i)
		}
		sp.Rumors = rumors
	case ByzantineConsensus:
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(i)
		}
		sp.Values = values
	}
	return sp
}

// registry holds the definitions in registration order plus a name
// index. Registration happens in package init (and tests); lookups are
// read-only afterwards, so no locking.
var (
	registryOrder []string
	registryByKey = make(map[string]Definition)
)

// Register adds a definition. It panics on an empty or duplicate name:
// registrations are package-init wiring, and a collision is a
// programming error.
func Register(d Definition) {
	if d.Name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registryByKey[d.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", d.Name))
	}
	registryByKey[d.Name] = d
	registryOrder = append(registryOrder, d.Name)
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) {
	d, ok := registryByKey[name]
	return d, ok
}

// MustLookup returns the definition registered under name, panicking
// if it is absent — for the built-in names, which the golden matrix
// test pins.
func MustLookup(name string) Definition {
	d, ok := registryByKey[name]
	if !ok {
		panic(fmt.Sprintf("scenario: unknown scenario %q", name))
	}
	return d
}

// Names returns all registered names, sorted.
func Names() []string {
	names := append([]string(nil), registryOrder...)
	sort.Strings(names)
	return names
}

// All returns the definitions in registration order.
func All() []Definition {
	ds := make([]Definition, 0, len(registryOrder))
	for _, name := range registryOrder {
		ds = append(ds, registryByKey[name])
	}
	return ds
}

// ByProblem returns the definitions solving p, in registration order.
func ByProblem(p Problem) []Definition {
	var ds []Definition
	for _, name := range registryOrder {
		if d := registryByKey[name]; d.Problem == p {
			ds = append(ds, d)
		}
	}
	return ds
}

// The built-in matrix: every protocol stack the paper evaluates. The
// golden matrix test (registry_test.go) pins this list, so dropping a
// row of the paper's tables fails CI.
func init() {
	for _, d := range []Definition{
		{
			Name: "consensus/few-crashes", Problem: Consensus, Algorithm: FewCrashes, Port: MultiPort,
			Experiments: []string{"E4", "E11", "T1"},
			About:       "§4.3 Few-Crashes-Consensus: t < n/5, O(t+log n) rounds, O(n+t log t) bits",
		},
		{
			Name: "consensus/many-crashes", Problem: Consensus, Algorithm: ManyCrashes, Port: MultiPort,
			Experiments: []string{"E5"},
			About:       "§4.4 Many-Crashes-Consensus: any t < n, ≤ n+3(1+lg n) rounds",
		},
		{
			Name: "consensus/flooding", Problem: Consensus, Algorithm: Flooding, Port: MultiPort,
			Experiments: []string{"E11"},
			About:       "Θ(n²)-message textbook comparator",
		},
		{
			Name: "consensus/single-port", Problem: Consensus, Algorithm: SinglePortLinear, Port: SinglePort,
			Experiments: []string{"E9", "T1"},
			About:       "§8 Linear-Consensus in the single-port model",
		},
		{
			Name: "consensus/early-stopping", Problem: Consensus, Algorithm: EarlyStopping, Port: MultiPort,
			Experiments: nil,
			About:       "related-work early-stopping comparator: min(f+3, t+3) rounds",
		},
		{
			Name: "consensus/rotating-coordinator", Problem: Consensus, Algorithm: RotatingCoordinator, Port: MultiPort,
			Experiments: []string{"E11"},
			About:       "rotating-coordinator comparator: t+1 rounds, Θ(t·n) messages",
		},
		{
			Name: "gossip/expander", Problem: Gossip, Algorithm: GossipExpander, Port: MultiPort,
			Experiments: []string{"E6", "T1"},
			About:       "§5 gossip: O(log n·log t) rounds, O(n+t log n log t) messages",
		},
		{
			Name: "gossip/expander/single-port", Problem: Gossip, Algorithm: GossipExpander, Port: SinglePort,
			Experiments: []string{"T1"},
			About:       "§8 single-port adaptation of §5 gossip",
		},
		{
			Name: "gossip/all-to-all", Problem: Gossip, Algorithm: GossipAllToAll, Port: MultiPort,
			Experiments: nil,
			About:       "all-to-all gossip comparator",
		},
		{
			Name: "checkpoint/expander", Problem: Checkpointing, Algorithm: CheckpointExpander, Port: MultiPort,
			Experiments: []string{"E7", "T1"},
			About:       "§6 checkpointing",
		},
		{
			Name: "checkpoint/expander/single-port", Problem: Checkpointing, Algorithm: CheckpointExpander, Port: SinglePort,
			Experiments: []string{"T1"},
			About:       "§8 single-port adaptation of §6 checkpointing",
		},
		{
			Name: "checkpoint/direct", Problem: Checkpointing, Algorithm: CheckpointDirect, Port: MultiPort,
			Experiments: []string{"E7"},
			About:       "direct O(tn)-message comparator",
		},
		{
			Name: "byzantine/ab-consensus", Problem: ByzantineConsensus, Algorithm: ABConsensus, Port: MultiPort,
			Experiments: []string{"E8", "T1"},
			About:       "§7 AB-Consensus: O(t) rounds, O(t²+n) non-faulty messages",
		},
		{
			Name: "byzantine/dolev-strong-all", Problem: ByzantineConsensus, Algorithm: DolevStrongAll, Port: MultiPort,
			Experiments: nil,
			About:       "all-nodes Dolev–Strong comparator",
		},
		{
			Name: "aea/expander", Problem: AlmostEverywhere, Algorithm: AEA, Port: MultiPort,
			Experiments: []string{"E2"},
			About:       "§3 Almost-Everywhere Agreement: ≥ 3n/5 deciders, O(t) rounds, O(n) messages",
		},
		{
			Name: "scv/expander", Problem: SpreadCommonValue, Algorithm: SCV, Port: MultiPort,
			Experiments: []string{"E3"},
			About:       "§4 Spread-Common-Value: O(log t) rounds, O(t log t) messages",
		},
		{
			Name: "majority/expander", Problem: MajorityVote, Algorithm: Majority, Port: MultiPort,
			Experiments: nil,
			About:       "§9 extension: exact majority tally over an agreed ballot set",
		},
		// The link-fault rows: the paper's stacks under the omission,
		// partition and delay models of internal/link, widening the
		// matrix beyond the crash-only adversary (the §2 model admits
		// them all). E12 sweeps these.
		{
			Name: "consensus/few-crashes/omission", Problem: Consensus, Algorithm: FewCrashes, Port: MultiPort,
			Fault:       FaultModel{Kind: OmissionFaults, Rate: 0.05},
			Experiments: []string{"E12"},
			About:       "§4.3 consensus over lossy links: 5% per-message omission",
		},
		{
			Name: "consensus/few-crashes/delay", Problem: Consensus, Algorithm: FewCrashes, Port: MultiPort,
			Fault:       FaultModel{Kind: DelayedLinks, Delay: 2},
			Experiments: []string{"E12"},
			About:       "§4.3 consensus under adversarial delivery up to 2 rounds late",
		},
		{
			Name: "consensus/flooding/partition", Problem: Consensus, Algorithm: Flooding, Port: MultiPort,
			Fault:       FaultModel{Kind: PartitionWindow, WindowStart: 1, WindowEnd: 4},
			Experiments: []string{"E12"},
			About:       "flooding comparator through an n/2 split for rounds [1,4), then healed",
		},
		{
			Name: "gossip/expander/omission", Problem: Gossip, Algorithm: GossipExpander, Port: MultiPort,
			Fault:       FaultModel{Kind: OmissionFaults, Rate: 0.05},
			Experiments: []string{"E12"},
			About:       "§5 gossip over lossy links: 5% per-message omission",
		},
		{
			Name: "gossip/expander/delay", Problem: Gossip, Algorithm: GossipExpander, Port: MultiPort,
			Fault:       FaultModel{Kind: DelayedLinks, Delay: 2},
			Experiments: []string{"E12"},
			About:       "§5 gossip under adversarial delivery up to 2 rounds late",
		},
		{
			Name: "checkpoint/expander/partition", Problem: Checkpointing, Algorithm: CheckpointExpander, Port: MultiPort,
			Fault:       FaultModel{Kind: PartitionWindow, WindowStart: 1, WindowEnd: 4},
			Experiments: []string{"E12"},
			About:       "§6 checkpointing through an n/2 split for rounds [1,4), then healed",
		},
		{
			Name: "majority/expander/omission", Problem: MajorityVote, Algorithm: Majority, Port: MultiPort,
			Fault:       FaultModel{Kind: OmissionFaults, Rate: 0.03},
			Experiments: []string{"E12"},
			About:       "§9 majority tally over lossy links: 3% per-message omission",
		},
		// The chaos rows: the worst adversary schedules found by the
		// frontier campaigns of internal/campaign, committed as
		// testdata/frontier_*.json and pinned by a golden test. E13
		// sweeps these; unlike the hand-picked E12 rows above, these
		// schedules are expected to break their safety property.
		{
			Name: "consensus/few-crashes/chaos", Problem: Consensus, Algorithm: FewCrashes, Port: MultiPort,
			Fault:       FaultModel{Kind: DelayedLinks, Delay: 4},
			Experiments: []string{"E13"},
			About:       "campaign-found worst schedule: delivery up to 4 rounds late breaks agreement (frontier_consensus_few-crashes.json)",
		},
		{
			Name: "gossip/expander/chaos", Problem: Gossip, Algorithm: GossipExpander, Port: MultiPort,
			Fault:       FaultModel{Kind: DelayedLinks, Delay: 3},
			Experiments: []string{"E13"},
			About:       "campaign-found worst unswept schedule: delivery up to 3 rounds late leaves gossip incomplete (frontier_gossip_expander.json)",
		},
	} {
		Register(d)
	}
}
