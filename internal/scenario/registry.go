package scenario

import (
	"fmt"
	"sort"
)

// Definition is a registered scenario family: one protocol stack of
// the evaluation matrix (problem × algorithm × port model), named so
// commands and experiments can enumerate and materialize it at any
// size. The fault-model and size dimensions are bound at
// materialization time via Spec.
type Definition struct {
	// Name is the registry key, "<problem>/<algorithm>[/single-port]".
	Name      string
	Problem   Problem
	Algorithm Algorithm
	Port      PortModel
	// Experiments lists the EXPERIMENTS.md experiment ids that
	// exercise this cell (golden-matrix bookkeeping).
	Experiments []string
	// About is a one-line description (paper section and claim).
	About string
}

// Spec materializes the definition at size (n, t) with the given seed:
// canonical per-problem inputs, no failures, sequential engine. Callers
// adjust the returned value (fault model, inputs, engine) before
// passing it to Run.
func (d Definition) Spec(n, t int, seed uint64) Spec {
	sp := Spec{
		Name:      d.Name,
		Problem:   d.Problem,
		Algorithm: d.Algorithm,
		Port:      d.Port,
		N:         n,
		T:         t,
		Seed:      seed,
	}
	switch d.Problem {
	case Consensus, AlmostEverywhere, MajorityVote:
		// Every third node inputs 1, the mixed-input workload of every
		// committed experiment.
		in := make([]bool, n)
		for i := range in {
			in[i] = i%3 == 0
		}
		sp.BoolInputs = in
	case SpreadCommonValue:
		// 3n/5 holders, the Theorem 6 threshold workload.
		in := make([]bool, n)
		for i := range in {
			in[i] = i < 3*n/5
		}
		sp.BoolInputs = in
	case Gossip:
		rumors := make([]uint64, n)
		for i := range rumors {
			rumors[i] = uint64(i)
		}
		sp.Rumors = rumors
	case ByzantineConsensus:
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(i)
		}
		sp.Values = values
	}
	return sp
}

// registry holds the definitions in registration order plus a name
// index. Registration happens in package init (and tests); lookups are
// read-only afterwards, so no locking.
var (
	registryOrder []string
	registryByKey = make(map[string]Definition)
)

// Register adds a definition. It panics on an empty or duplicate name:
// registrations are package-init wiring, and a collision is a
// programming error.
func Register(d Definition) {
	if d.Name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registryByKey[d.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", d.Name))
	}
	registryByKey[d.Name] = d
	registryOrder = append(registryOrder, d.Name)
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) {
	d, ok := registryByKey[name]
	return d, ok
}

// MustLookup returns the definition registered under name, panicking
// if it is absent — for the built-in names, which the golden matrix
// test pins.
func MustLookup(name string) Definition {
	d, ok := registryByKey[name]
	if !ok {
		panic(fmt.Sprintf("scenario: unknown scenario %q", name))
	}
	return d
}

// Names returns all registered names, sorted.
func Names() []string {
	names := append([]string(nil), registryOrder...)
	sort.Strings(names)
	return names
}

// All returns the definitions in registration order.
func All() []Definition {
	ds := make([]Definition, 0, len(registryOrder))
	for _, name := range registryOrder {
		ds = append(ds, registryByKey[name])
	}
	return ds
}

// ByProblem returns the definitions solving p, in registration order.
func ByProblem(p Problem) []Definition {
	var ds []Definition
	for _, name := range registryOrder {
		if d := registryByKey[name]; d.Problem == p {
			ds = append(ds, d)
		}
	}
	return ds
}

// The built-in matrix: every protocol stack the paper evaluates. The
// golden matrix test (registry_test.go) pins this list, so dropping a
// row of the paper's tables fails CI.
func init() {
	for _, d := range []Definition{
		{
			Name: "consensus/few-crashes", Problem: Consensus, Algorithm: FewCrashes, Port: MultiPort,
			Experiments: []string{"E4", "E11", "T1"},
			About:       "§4.3 Few-Crashes-Consensus: t < n/5, O(t+log n) rounds, O(n+t log t) bits",
		},
		{
			Name: "consensus/many-crashes", Problem: Consensus, Algorithm: ManyCrashes, Port: MultiPort,
			Experiments: []string{"E5"},
			About:       "§4.4 Many-Crashes-Consensus: any t < n, ≤ n+3(1+lg n) rounds",
		},
		{
			Name: "consensus/flooding", Problem: Consensus, Algorithm: Flooding, Port: MultiPort,
			Experiments: []string{"E11"},
			About:       "Θ(n²)-message textbook comparator",
		},
		{
			Name: "consensus/single-port", Problem: Consensus, Algorithm: SinglePortLinear, Port: SinglePort,
			Experiments: []string{"E9", "T1"},
			About:       "§8 Linear-Consensus in the single-port model",
		},
		{
			Name: "consensus/early-stopping", Problem: Consensus, Algorithm: EarlyStopping, Port: MultiPort,
			Experiments: nil,
			About:       "related-work early-stopping comparator: min(f+3, t+3) rounds",
		},
		{
			Name: "consensus/rotating-coordinator", Problem: Consensus, Algorithm: RotatingCoordinator, Port: MultiPort,
			Experiments: []string{"E11"},
			About:       "rotating-coordinator comparator: t+1 rounds, Θ(t·n) messages",
		},
		{
			Name: "gossip/expander", Problem: Gossip, Algorithm: GossipExpander, Port: MultiPort,
			Experiments: []string{"E6", "T1"},
			About:       "§5 gossip: O(log n·log t) rounds, O(n+t log n log t) messages",
		},
		{
			Name: "gossip/expander/single-port", Problem: Gossip, Algorithm: GossipExpander, Port: SinglePort,
			Experiments: []string{"T1"},
			About:       "§8 single-port adaptation of §5 gossip",
		},
		{
			Name: "gossip/all-to-all", Problem: Gossip, Algorithm: GossipAllToAll, Port: MultiPort,
			Experiments: nil,
			About:       "all-to-all gossip comparator",
		},
		{
			Name: "checkpoint/expander", Problem: Checkpointing, Algorithm: CheckpointExpander, Port: MultiPort,
			Experiments: []string{"E7", "T1"},
			About:       "§6 checkpointing",
		},
		{
			Name: "checkpoint/expander/single-port", Problem: Checkpointing, Algorithm: CheckpointExpander, Port: SinglePort,
			Experiments: []string{"T1"},
			About:       "§8 single-port adaptation of §6 checkpointing",
		},
		{
			Name: "checkpoint/direct", Problem: Checkpointing, Algorithm: CheckpointDirect, Port: MultiPort,
			Experiments: []string{"E7"},
			About:       "direct O(tn)-message comparator",
		},
		{
			Name: "byzantine/ab-consensus", Problem: ByzantineConsensus, Algorithm: ABConsensus, Port: MultiPort,
			Experiments: []string{"E8", "T1"},
			About:       "§7 AB-Consensus: O(t) rounds, O(t²+n) non-faulty messages",
		},
		{
			Name: "byzantine/dolev-strong-all", Problem: ByzantineConsensus, Algorithm: DolevStrongAll, Port: MultiPort,
			Experiments: nil,
			About:       "all-nodes Dolev–Strong comparator",
		},
		{
			Name: "aea/expander", Problem: AlmostEverywhere, Algorithm: AEA, Port: MultiPort,
			Experiments: []string{"E2"},
			About:       "§3 Almost-Everywhere Agreement: ≥ 3n/5 deciders, O(t) rounds, O(n) messages",
		},
		{
			Name: "scv/expander", Problem: SpreadCommonValue, Algorithm: SCV, Port: MultiPort,
			Experiments: []string{"E3"},
			About:       "§4 Spread-Common-Value: O(log t) rounds, O(t log t) messages",
		},
		{
			Name: "majority/expander", Problem: MajorityVote, Algorithm: Majority, Port: MultiPort,
			Experiments: nil,
			About:       "§9 extension: exact majority tally over an agreed ballot set",
		},
	} {
		Register(d)
	}
}
