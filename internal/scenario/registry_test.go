package scenario

import (
	"reflect"
	"sort"
	"testing"
)

// goldenMatrix pins the full scenario matrix together with each row's
// canonical Spec.Key fingerprint at (n=60, t=10, seed=1): every
// protocol stack of the paper's evaluation tables must stay
// registered, and its cache identity must stay stable. An accidental
// drop of a table row fails here before it silently disappears from
// the experiment sweeps; an accidental change to a row's canonical
// inputs, bound fault model, or the key encoding itself fails here
// before it silently invalidates (or worse, aliases) every cached
// result in a running fleet.
var goldenMatrix = map[string]string{
	"aea/expander":                    "k1:d5b983699c04979bece4eb89c8bb82a5df8126176c32645adf2d35070707428d",
	"byzantine/ab-consensus":          "k1:975bbbcd1ce612e5020a2697a7206cde31dbb6016ee482b24d3b1d401a45e188",
	"byzantine/dolev-strong-all":      "k1:8c593e0edce8710da2525d9569309062c307ec674bd9f3439fac49afb4bece94",
	"checkpoint/direct":               "k1:92aad8f95d0030ddd92bd2d1998224b8c8169a2e3b0be522f0231ea065677bc3",
	"checkpoint/expander":             "k1:61c7eb2ef9de7e6def9c74c0977df0e727e6a7bb3c98fc86bb918a7de65d6af4",
	"checkpoint/expander/partition":   "k1:51023e8513ae08783e5162e2f54031de34345759f8c5fe7e7155481339524508",
	"checkpoint/expander/single-port": "k1:4c6a9a81c0c053f4901d38503fab2306048f17bb9338f4ce9485007b273c1ad5",
	"consensus/early-stopping":        "k1:acc544e085890b98fdf38d89fbdf6fd67c029c9797962d6ac4e8ba9b5715b943",
	"consensus/few-crashes":           "k1:05e91cae69a0d70d3c8317c9d5006657d9bee130e85de434e0e6efc99549b16a",
	"consensus/few-crashes/chaos":     "k1:e39210d054f8a9f1e4bc650494255a8b8428b59da1e06b17812612a4e1e0de0c",
	"consensus/few-crashes/delay":     "k1:31caf46a1bad1947d710a9015fb77fb737c0c934810ca6b0bd8fee9a1a2c0cf0",
	"consensus/few-crashes/omission":  "k1:49bb262cdedb3526340c259bcac0b645686afc4155fc5710c0c87b0c75df48dd",
	"consensus/flooding":              "k1:25722ed425c2a758ca0e048458cf561994e3c79d1a5738dffa1d2359a4a50f92",
	"consensus/flooding/partition":    "k1:555f019f6e300b838b485a7672a4c463b2c585b094dc6c53af178c80250e4ea8",
	"consensus/many-crashes":          "k1:5c6c0e70f002ff38d3fec5f1c6eaf13d9dfb11962d5f0a51d28903042a1f4758",
	"consensus/rotating-coordinator":  "k1:c02e4c21ac2cd10fd16030f0b463a9890672749b926e36bfbad7b8040f32cdc8",
	"consensus/single-port":           "k1:242d9f97734ce70e4750e456a3b4ce22345f99fe8fbcbd73bf82f9881b3c1e0c",
	"gossip/all-to-all":               "k1:45d3f71cd4c49dd119ef6014213e8e716e8b58c5eaafe85e08acdb78606ebcdd",
	"gossip/expander":                 "k1:0032546cbf08d47db4e8a55316de4d1e9fd05201c17a04df7f213f6f62b70506",
	"gossip/expander/chaos":           "k1:eb715378b3f2d7616b566584fc2f1e8b53b7a8218445911548c5f417374c1633",
	"gossip/expander/delay":           "k1:c700db4571d3b393b7d494d349a749815c0e3d1a7871758d7b2505513743060b",
	"gossip/expander/omission":        "k1:8da048f735b238ed58de7020506dc57ca02c7b2504814c9d7a7189be0c4a1a95",
	"gossip/expander/single-port":     "k1:6a3dc37db9702694dd1ac3e9cef2b02143210acdd202b82e65d991874318c314",
	"majority/expander":               "k1:8b72c0979b2a72eba97e937c9c0a72d8ee049011587ad4f6f900f30a1ac8ba7a",
	"majority/expander/omission":      "k1:22243fb0f11d42fa72d3479f1c39926db39b457bf6bc5ccd28c1239581bf1d56",
	"scv/expander":                    "k1:fc8b3e77ca7b2e4f705665c2c49654f60b684e8b0bbd5c8bf7228e83d561ba96",
}

func TestRegistryMatrixGolden(t *testing.T) {
	want := make([]string, 0, len(goldenMatrix))
	for name := range goldenMatrix {
		want = append(want, name)
	}
	sort.Strings(want)
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry matrix drifted:\n got  %v\n want %v", got, want)
	}
	// Names() must be deduplicated (Register panics on duplicates, but
	// pin it anyway against a future registry rewrite).
	seen := make(map[string]bool, len(got))
	for _, name := range got {
		if seen[name] {
			t.Fatalf("duplicate registry name %q", name)
		}
		seen[name] = true
	}
	// The fingerprint of every row's canonical spec is the row's cache
	// identity — the serving layer addresses results by it.
	for name, wantKey := range goldenMatrix {
		if gotKey := MustLookup(name).Spec(60, 10, 1).Key(); gotKey != wantKey {
			t.Errorf("%s fingerprint drifted:\n got  %s\n want %s", name, gotKey, wantKey)
		}
	}
}

// TestRegistryCountsPerProblem pins the per-problem row counts of the
// matrix.
func TestRegistryCountsPerProblem(t *testing.T) {
	wantCounts := map[Problem]int{
		Consensus:          10,
		Gossip:             6,
		Checkpointing:      4,
		ByzantineConsensus: 2,
		AlmostEverywhere:   1,
		SpreadCommonValue:  1,
		MajorityVote:       2,
	}
	total := 0
	for problem, want := range wantCounts {
		got := len(ByProblem(problem))
		if got != want {
			t.Errorf("ByProblem(%v) has %d definitions, want %d", problem, got, want)
		}
		total += got
	}
	if got := len(All()); got != total {
		t.Errorf("All() has %d definitions, want %d", got, total)
	}
}

// TestEveryExperimentIdIsCovered asserts each paper experiment id that
// runs engine scenarios maps to at least one registry row (E10 is the
// lower-bound constructions, which run through the Stepper, not a
// registered protocol stack).
func TestEveryExperimentIdIsCovered(t *testing.T) {
	covered := make(map[string]bool)
	for _, d := range All() {
		for _, id := range d.Experiments {
			covered[id] = true
		}
	}
	for _, id := range []string{"E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E12", "E13", "T1"} {
		if !covered[id] {
			t.Errorf("experiment %s has no registry scenario", id)
		}
	}
}

func TestLookup(t *testing.T) {
	d, ok := Lookup("consensus/few-crashes")
	if !ok || d.Problem != Consensus || d.Algorithm != FewCrashes || d.Port != MultiPort {
		t.Fatalf("Lookup(consensus/few-crashes) = %+v, %v", d, ok)
	}
	if _, ok := Lookup("consensus/nonsense"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on unknown name did not panic")
		}
	}()
	MustLookup("consensus/nonsense")
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(name string, d Definition) {
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(d)
	}
	mustPanic("empty", Definition{})
	mustPanic("duplicate", Definition{Name: "consensus/few-crashes"})
}

func TestDefinitionSpecCanonicalInputs(t *testing.T) {
	n, tt := 30, 5
	sp := MustLookup("consensus/few-crashes").Spec(n, tt, 7)
	if sp.Name != "consensus/few-crashes" || sp.N != n || sp.T != tt || sp.Seed != 7 {
		t.Fatalf("spec header = %+v", sp)
	}
	if len(sp.BoolInputs) != n || !sp.BoolInputs[0] || sp.BoolInputs[1] || !sp.BoolInputs[3] {
		t.Fatalf("consensus canonical inputs wrong: %v", sp.BoolInputs)
	}
	if sp.Fault.Kind != NoFailures {
		t.Fatalf("canonical fault = %v, want NoFailures", sp.Fault.Kind)
	}

	gp := MustLookup("gossip/expander").Spec(n, tt, 1)
	if len(gp.Rumors) != n || gp.Rumors[17] != 17 {
		t.Fatalf("gossip canonical rumors wrong: %v", gp.Rumors)
	}

	bp := MustLookup("byzantine/ab-consensus").Spec(n, tt, 1)
	if len(bp.Values) != n || bp.Values[11] != 11 {
		t.Fatalf("byzantine canonical values wrong: %v", bp.Values)
	}

	scv := MustLookup("scv/expander").Spec(n, tt, 1)
	holders := 0
	for _, h := range scv.BoolInputs {
		if h {
			holders++
		}
	}
	if holders != 3*n/5 {
		t.Fatalf("scv canonical holders = %d, want %d", holders, 3*n/5)
	}

	// Single-port definitions carry their port model into the spec.
	if sp := MustLookup("gossip/expander/single-port").Spec(n, tt, 1); sp.Port != SinglePort {
		t.Fatalf("single-port definition produced port %v", sp.Port)
	}
}

// TestFaultBoundDefinitionsRun pins that every fault-bound registry
// row carries its fault model into the spec and materializes into a
// run that terminates within the round budget.
func TestFaultBoundDefinitionsRun(t *testing.T) {
	wantKinds := map[string]FaultKind{
		"consensus/few-crashes/omission": OmissionFaults,
		"consensus/few-crashes/delay":    DelayedLinks,
		"consensus/flooding/partition":   PartitionWindow,
		"gossip/expander/omission":       OmissionFaults,
		"gossip/expander/delay":          DelayedLinks,
		"checkpoint/expander/partition":  PartitionWindow,
		"majority/expander/omission":     OmissionFaults,
		"consensus/few-crashes/chaos":    DelayedLinks,
		"gossip/expander/chaos":          DelayedLinks,
	}
	faultBound := 0
	for _, d := range All() {
		if d.Fault.Kind == NoFailures {
			continue
		}
		faultBound++
		want, ok := wantKinds[d.Name]
		if !ok {
			t.Errorf("unexpected fault-bound row %q", d.Name)
			continue
		}
		if d.Fault.Kind != want {
			t.Errorf("%s fault kind = %v, want %v", d.Name, d.Fault.Kind, want)
		}
		sp := d.Spec(60, 10, 1)
		if sp.Fault.Kind != d.Fault.Kind {
			t.Errorf("%s spec dropped the fault model", d.Name)
			continue
		}
		if _, err := Run(sp); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	if faultBound < 8 {
		t.Errorf("%d fault-bound rows registered, want at least 8", faultBound)
	}
}
