package scenario

import (
	"reflect"
	"testing"
)

// TestRegistryMatrixGolden pins the full scenario matrix: every
// protocol stack of the paper's evaluation tables must stay
// registered. An accidental drop of a table row fails here before it
// silently disappears from the experiment sweeps.
func TestRegistryMatrixGolden(t *testing.T) {
	want := []string{
		"aea/expander",
		"byzantine/ab-consensus",
		"byzantine/dolev-strong-all",
		"checkpoint/direct",
		"checkpoint/expander",
		"checkpoint/expander/partition",
		"checkpoint/expander/single-port",
		"consensus/early-stopping",
		"consensus/few-crashes",
		"consensus/few-crashes/delay",
		"consensus/few-crashes/omission",
		"consensus/flooding",
		"consensus/flooding/partition",
		"consensus/many-crashes",
		"consensus/rotating-coordinator",
		"consensus/single-port",
		"gossip/all-to-all",
		"gossip/expander",
		"gossip/expander/delay",
		"gossip/expander/omission",
		"gossip/expander/single-port",
		"majority/expander",
		"majority/expander/omission",
		"scv/expander",
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry matrix drifted:\n got  %v\n want %v", got, want)
	}
	// Names() must be deduplicated (Register panics on duplicates, but
	// pin it anyway against a future registry rewrite).
	seen := make(map[string]bool, len(got))
	for _, name := range got {
		if seen[name] {
			t.Fatalf("duplicate registry name %q", name)
		}
		seen[name] = true
	}
}

// TestRegistryCountsPerProblem pins the per-problem row counts of the
// matrix.
func TestRegistryCountsPerProblem(t *testing.T) {
	wantCounts := map[Problem]int{
		Consensus:          9,
		Gossip:             5,
		Checkpointing:      4,
		ByzantineConsensus: 2,
		AlmostEverywhere:   1,
		SpreadCommonValue:  1,
		MajorityVote:       2,
	}
	total := 0
	for problem, want := range wantCounts {
		got := len(ByProblem(problem))
		if got != want {
			t.Errorf("ByProblem(%v) has %d definitions, want %d", problem, got, want)
		}
		total += got
	}
	if got := len(All()); got != total {
		t.Errorf("All() has %d definitions, want %d", got, total)
	}
}

// TestEveryExperimentIdIsCovered asserts each paper experiment id that
// runs engine scenarios maps to at least one registry row (E10 is the
// lower-bound constructions, which run through the Stepper, not a
// registered protocol stack).
func TestEveryExperimentIdIsCovered(t *testing.T) {
	covered := make(map[string]bool)
	for _, d := range All() {
		for _, id := range d.Experiments {
			covered[id] = true
		}
	}
	for _, id := range []string{"E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E12", "T1"} {
		if !covered[id] {
			t.Errorf("experiment %s has no registry scenario", id)
		}
	}
}

func TestLookup(t *testing.T) {
	d, ok := Lookup("consensus/few-crashes")
	if !ok || d.Problem != Consensus || d.Algorithm != FewCrashes || d.Port != MultiPort {
		t.Fatalf("Lookup(consensus/few-crashes) = %+v, %v", d, ok)
	}
	if _, ok := Lookup("consensus/nonsense"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on unknown name did not panic")
		}
	}()
	MustLookup("consensus/nonsense")
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(name string, d Definition) {
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(d)
	}
	mustPanic("empty", Definition{})
	mustPanic("duplicate", Definition{Name: "consensus/few-crashes"})
}

func TestDefinitionSpecCanonicalInputs(t *testing.T) {
	n, tt := 30, 5
	sp := MustLookup("consensus/few-crashes").Spec(n, tt, 7)
	if sp.Name != "consensus/few-crashes" || sp.N != n || sp.T != tt || sp.Seed != 7 {
		t.Fatalf("spec header = %+v", sp)
	}
	if len(sp.BoolInputs) != n || !sp.BoolInputs[0] || sp.BoolInputs[1] || !sp.BoolInputs[3] {
		t.Fatalf("consensus canonical inputs wrong: %v", sp.BoolInputs)
	}
	if sp.Fault.Kind != NoFailures {
		t.Fatalf("canonical fault = %v, want NoFailures", sp.Fault.Kind)
	}

	gp := MustLookup("gossip/expander").Spec(n, tt, 1)
	if len(gp.Rumors) != n || gp.Rumors[17] != 17 {
		t.Fatalf("gossip canonical rumors wrong: %v", gp.Rumors)
	}

	bp := MustLookup("byzantine/ab-consensus").Spec(n, tt, 1)
	if len(bp.Values) != n || bp.Values[11] != 11 {
		t.Fatalf("byzantine canonical values wrong: %v", bp.Values)
	}

	scv := MustLookup("scv/expander").Spec(n, tt, 1)
	holders := 0
	for _, h := range scv.BoolInputs {
		if h {
			holders++
		}
	}
	if holders != 3*n/5 {
		t.Fatalf("scv canonical holders = %d, want %d", holders, 3*n/5)
	}

	// Single-port definitions carry their port model into the spec.
	if sp := MustLookup("gossip/expander/single-port").Spec(n, tt, 1); sp.Port != SinglePort {
		t.Fatalf("single-port definition produced port %v", sp.Port)
	}
}

// TestFaultBoundDefinitionsRun pins that every fault-bound registry
// row carries its fault model into the spec and materializes into a
// run that terminates within the round budget.
func TestFaultBoundDefinitionsRun(t *testing.T) {
	wantKinds := map[string]FaultKind{
		"consensus/few-crashes/omission": OmissionFaults,
		"consensus/few-crashes/delay":    DelayedLinks,
		"consensus/flooding/partition":   PartitionWindow,
		"gossip/expander/omission":       OmissionFaults,
		"gossip/expander/delay":          DelayedLinks,
		"checkpoint/expander/partition":  PartitionWindow,
		"majority/expander/omission":     OmissionFaults,
	}
	faultBound := 0
	for _, d := range All() {
		if d.Fault.Kind == NoFailures {
			continue
		}
		faultBound++
		want, ok := wantKinds[d.Name]
		if !ok {
			t.Errorf("unexpected fault-bound row %q", d.Name)
			continue
		}
		if d.Fault.Kind != want {
			t.Errorf("%s fault kind = %v, want %v", d.Name, d.Fault.Kind, want)
		}
		sp := d.Spec(60, 10, 1)
		if sp.Fault.Kind != d.Fault.Kind {
			t.Errorf("%s spec dropped the fault model", d.Name)
			continue
		}
		if _, err := Run(sp); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	if faultBound < 6 {
		t.Errorf("%d fault-bound rows registered, want at least 6", faultBound)
	}
}
