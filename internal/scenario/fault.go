package scenario

import (
	"fmt"

	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

// FaultKind enumerates the fault models of the evaluation matrix.
type FaultKind int

// The fault models.
const (
	// NoFailures runs fault-free.
	NoFailures FaultKind = iota
	// CrashSchedule crashes exactly the scheduled nodes.
	CrashSchedule
	// RandomCrashes crashes up to Count pseudo-random nodes at
	// pseudo-random rounds below Horizon.
	RandomCrashes
	// CascadeCrashes crashes one node per round (the early-stopping
	// worst case), Count crashes drawn from the first Pool names.
	CascadeCrashes
	// TargetLittleCrashes spends the whole budget on little nodes at
	// round 0 (the Theorem 2 attack).
	TargetLittleCrashes
	// ByzantineFaults corrupts the listed nodes with a strategy;
	// corruption is expressed through adversarial protocols, not a
	// crash adversary.
	ByzantineFaults
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case NoFailures:
		return "none"
	case CrashSchedule:
		return "crash-schedule"
	case RandomCrashes:
		return "random-crashes"
	case CascadeCrashes:
		return "cascade"
	case TargetLittleCrashes:
		return "target-little"
	case ByzantineFaults:
		return "byzantine"
	default:
		return "unknown"
	}
}

// CrashEvent schedules one crash: node Node fails at round Round with
// only its first Keep messages of that round delivered (Keep < 0
// delivers all).
type CrashEvent struct {
	Node  int
	Round int
	Keep  int
}

// FaultModel is the fault dimension of a scenario. The zero value is
// NoFailures. It is the single source of adversary construction: every
// run path — public API, registry experiments, commands — converges on
// Adversary.
type FaultModel struct {
	Kind FaultKind

	// Schedule is the exact crash schedule (CrashSchedule).
	Schedule []CrashEvent
	// Count is the crash budget (RandomCrashes, CascadeCrashes,
	// TargetLittleCrashes). RandomCrashes clamps it to the scenario's
	// T; the targeted strategies take it verbatim (their constructors
	// clamp to the victim pool), matching the proofs' existential
	// adversaries that may spend any budget the experiment asks for.
	Count int
	// Horizon is the last round at which random crashes may happen
	// (RandomCrashes).
	Horizon int
	// Keep is the number of final-outbox messages a cascading crash
	// still delivers (CascadeCrashes).
	Keep int
	// Pool restricts cascade victims to the first Pool node names
	// (0 = all nodes). For TargetLittleCrashes, Pool overrides the
	// scenario topology's little-node count when positive.
	Pool int
	// Seed, when non-zero, seeds the adversary directly; zero derives
	// the adversary seed from the run seed (runSeed + 101, the
	// historical offset every committed experiment was generated
	// with).
	Seed uint64

	// Strategy and Corrupted configure ByzantineFaults.
	Strategy  ByzantineStrategy
	Corrupted []int
}

// adversarySeed resolves the adversary seed for a run seed.
func (f FaultModel) adversarySeed(runSeed uint64) uint64 {
	if f.Seed != 0 {
		return f.Seed
	}
	return runSeed + 101
}

// Adversary materializes the fault model into a sim.Adversary for a
// scenario of n nodes, fault bound t, and little-node count little
// (0 when the scenario has no expander topology). ByzantineFaults and
// NoFailures return nil: Byzantine behaviour lives in the corrupted
// nodes' protocols.
func (f FaultModel) Adversary(n, t, little int, runSeed uint64) (sim.Adversary, error) {
	switch f.Kind {
	case NoFailures, ByzantineFaults:
		return nil, nil
	case CrashSchedule:
		events := make([]crash.Event, len(f.Schedule))
		for i, e := range f.Schedule {
			events[i] = crash.Event{Node: e.Node, Round: e.Round, Keep: e.Keep}
		}
		return crash.NewSchedule(events), nil
	case RandomCrashes:
		count := f.Count
		if count > t {
			count = t
		}
		return crash.NewRandom(n, count, f.Horizon, f.adversarySeed(runSeed)), nil
	case CascadeCrashes:
		pool := f.Pool
		if pool <= 0 {
			pool = n
		}
		return crash.NewCascade(pool, f.Count, f.Keep, f.adversarySeed(runSeed)), nil
	case TargetLittleCrashes:
		pool := f.Pool
		if pool <= 0 {
			pool = little
		}
		if pool <= 0 {
			pool = n
		}
		return crash.NewTargetLittle(pool, f.Count, f.adversarySeed(runSeed)), nil
	default:
		return nil, fmt.Errorf("scenario: unknown fault kind %d", int(f.Kind))
	}
}

// validate checks the fault model against the scenario shape.
func (f FaultModel) validate(sp Spec) error {
	if f.Kind == ByzantineFaults {
		if sp.Problem != ByzantineConsensus {
			return fmt.Errorf("scenario: byzantine faults require the byzantine problem, got %v", sp.Problem)
		}
		if len(f.Corrupted) > sp.T {
			return fmt.Errorf("scenario: %d corrupted nodes exceed t=%d", len(f.Corrupted), sp.T)
		}
		for _, id := range f.Corrupted {
			if id < 0 || id >= sp.N {
				return fmt.Errorf("scenario: corrupted node %d out of range", id)
			}
		}
	}
	return nil
}
