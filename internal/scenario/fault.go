package scenario

import (
	"fmt"

	"lineartime/internal/crash"
	"lineartime/internal/link"
	"lineartime/internal/sim"
)

// FaultKind enumerates the fault models of the evaluation matrix.
type FaultKind int

// The fault models.
const (
	// NoFailures runs fault-free.
	NoFailures FaultKind = iota
	// CrashSchedule crashes exactly the scheduled nodes.
	CrashSchedule
	// RandomCrashes crashes up to Count pseudo-random nodes at
	// pseudo-random rounds below Horizon.
	RandomCrashes
	// CascadeCrashes crashes one node per round (the early-stopping
	// worst case), Count crashes drawn from the first Pool names.
	CascadeCrashes
	// TargetLittleCrashes spends the whole budget on little nodes at
	// round 0 (the Theorem 2 attack).
	TargetLittleCrashes
	// ByzantineFaults corrupts the listed nodes with a strategy;
	// corruption is expressed through adversarial protocols, not a
	// crash adversary.
	ByzantineFaults
	// OmissionFaults loses each message independently with the
	// per-link probability Rate, seeded; no node ever crashes.
	OmissionFaults
	// PartitionWindow splits the network into two sides for rounds
	// [WindowStart, WindowEnd): the first Cut node names (n/2 when
	// Cut is 0) against the rest. Cross-cut messages are lost inside
	// the window; the network heals at WindowEnd.
	PartitionWindow
	// DelayedLinks delivers each message up to Delay rounds late —
	// the adversarial bounded-delay scheduler.
	DelayedLinks
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case NoFailures:
		return "none"
	case CrashSchedule:
		return "crash-schedule"
	case RandomCrashes:
		return "random-crashes"
	case CascadeCrashes:
		return "cascade"
	case TargetLittleCrashes:
		return "target-little"
	case ByzantineFaults:
		return "byzantine"
	case OmissionFaults:
		return "omission"
	case PartitionWindow:
		return "partition"
	case DelayedLinks:
		return "delay"
	default:
		return "unknown"
	}
}

// CrashEvent schedules one crash: node Node fails at round Round with
// only its first Keep messages of that round delivered (Keep < 0
// delivers all).
type CrashEvent struct {
	Node  int
	Round int
	Keep  int
}

// FaultModel is the fault dimension of a scenario. The zero value is
// NoFailures. It is the single source of fault construction: every
// run path — public API, registry experiments, commands — converges on
// LinkFault.
type FaultModel struct {
	Kind FaultKind

	// Schedule is the exact crash schedule (CrashSchedule).
	Schedule []CrashEvent
	// Count is the crash budget (RandomCrashes, CascadeCrashes,
	// TargetLittleCrashes). RandomCrashes clamps it to the scenario's
	// T; the targeted strategies take it verbatim (their constructors
	// clamp to the victim pool), matching the proofs' existential
	// adversaries that may spend any budget the experiment asks for.
	Count int
	// Horizon is the last round at which random crashes may happen
	// (RandomCrashes).
	Horizon int
	// Keep is the number of final-outbox messages a cascading crash
	// still delivers (CascadeCrashes).
	Keep int
	// Pool restricts cascade victims to the first Pool node names
	// (0 = all nodes). For TargetLittleCrashes, Pool overrides the
	// scenario topology's little-node count when positive.
	Pool int
	// Seed, when non-zero, seeds the adversary directly; zero derives
	// the adversary seed from the run seed (runSeed + 101, the
	// historical offset every committed experiment was generated
	// with).
	Seed uint64

	// Strategy and Corrupted configure ByzantineFaults.
	Strategy  ByzantineStrategy
	Corrupted []int

	// Rate is the per-link message loss probability (OmissionFaults),
	// in [0, 1].
	Rate float64
	// WindowStart and WindowEnd bound the partition rounds
	// [WindowStart, WindowEnd), and Cut sizes the window's first side
	// (PartitionWindow; Cut 0 means n/2).
	WindowStart, WindowEnd int
	Cut                    int
	// Delay is the delivery-delay bound d in rounds (DelayedLinks).
	Delay int
}

// Declarative reports whether the fault model's behaviour is fully
// described by data known before the run — a fixed crash schedule plus
// payload-independent link verdicts — which is what the bit-sliced
// engine can replay as per-lane word masks. This is the single
// slice-eligibility predicate: scenario slicing and the campaign batch
// evaluator both consult it, so a new fault kind cannot be sliceable in
// one and scalar in the other. ByzantineFaults is the one adaptive
// model (corrupted protocols react to traffic), and unknown kinds are
// conservatively non-declarative.
func (f FaultModel) Declarative() bool {
	switch f.Kind {
	case NoFailures, CrashSchedule, RandomCrashes, CascadeCrashes,
		TargetLittleCrashes, OmissionFaults, PartitionWindow, DelayedLinks:
		return true
	default:
		return false
	}
}

// adversarySeed resolves the adversary seed for a run seed.
func (f FaultModel) adversarySeed(runSeed uint64) uint64 {
	if f.Seed != 0 {
		return f.Seed
	}
	return runSeed + 101
}

// LinkFault materializes the fault model into a sim.LinkFault for a
// scenario of n nodes, fault bound t, and little-node count little
// (0 when the scenario has no expander topology). ByzantineFaults and
// NoFailures return nil: Byzantine behaviour lives in the corrupted
// nodes' protocols.
func (f FaultModel) LinkFault(n, t, little int, runSeed uint64) (sim.LinkFault, error) {
	switch f.Kind {
	case NoFailures, ByzantineFaults:
		return nil, nil
	case CrashSchedule:
		events := make([]crash.Event, len(f.Schedule))
		for i, e := range f.Schedule {
			events[i] = crash.Event{Node: e.Node, Round: e.Round, Keep: e.Keep}
		}
		return crash.NewSchedule(events), nil
	case RandomCrashes:
		count := f.Count
		if count > t {
			count = t
		}
		return crash.NewRandom(n, count, f.Horizon, f.adversarySeed(runSeed)), nil
	case CascadeCrashes:
		pool := f.Pool
		if pool <= 0 {
			pool = n
		}
		return crash.NewCascade(pool, f.Count, f.Keep, f.adversarySeed(runSeed)), nil
	case TargetLittleCrashes:
		pool := f.Pool
		if pool <= 0 {
			pool = little
		}
		if pool <= 0 {
			pool = n
		}
		return crash.NewTargetLittle(pool, f.Count, f.adversarySeed(runSeed)), nil
	case OmissionFaults:
		return link.NewOmission(f.Rate, f.adversarySeed(runSeed)), nil
	case PartitionWindow:
		cut := f.Cut
		if cut == 0 {
			cut = n / 2
		}
		return link.NewPartition(f.WindowStart, f.WindowEnd, cut), nil
	case DelayedLinks:
		return link.NewDelay(f.Delay, f.adversarySeed(runSeed)), nil
	default:
		return nil, fmt.Errorf("lineartime: unknown fault kind %d", int(f.Kind))
	}
}

// validate checks the fault model's parameters against the scenario
// shape before anything runs. Errors carry the public "lineartime:"
// prefix: these are user-facing configuration mistakes, reported up
// front instead of being silently clamped away (or panicking inside
// an adversary constructor).
func (f FaultModel) validate(sp Spec) error {
	switch f.Kind {
	case NoFailures:
		return nil
	case ByzantineFaults:
		if sp.Problem != ByzantineConsensus {
			return fmt.Errorf("lineartime: byzantine faults require the byzantine problem, got %v", sp.Problem)
		}
		if len(f.Corrupted) > sp.T {
			return fmt.Errorf("lineartime: %d corrupted nodes exceed t=%d", len(f.Corrupted), sp.T)
		}
		for _, id := range f.Corrupted {
			if id < 0 || id >= sp.N {
				return fmt.Errorf("lineartime: corrupted node %d out of range", id)
			}
		}
	case CrashSchedule:
		for _, e := range f.Schedule {
			if e.Node < 0 || e.Node >= sp.N {
				return fmt.Errorf("lineartime: scheduled crash of node %d outside [0, %d)", e.Node, sp.N)
			}
			if e.Round < 0 {
				return fmt.Errorf("lineartime: scheduled crash of node %d at negative round %d", e.Node, e.Round)
			}
		}
	case RandomCrashes, CascadeCrashes, TargetLittleCrashes:
		if f.Count < 0 {
			return fmt.Errorf("lineartime: negative crash budget %d", f.Count)
		}
		if f.Count > sp.N {
			return fmt.Errorf("lineartime: crash budget %d exceeds n=%d", f.Count, sp.N)
		}
		if f.Horizon < 0 {
			return fmt.Errorf("lineartime: negative crash horizon %d", f.Horizon)
		}
		if f.Kind == RandomCrashes && f.Count > 0 && f.Horizon == 0 {
			return fmt.Errorf("lineartime: random crashes need a positive horizon")
		}
		if f.Pool < 0 || f.Pool > sp.N {
			return fmt.Errorf("lineartime: victim pool %d outside [0, %d]", f.Pool, sp.N)
		}
	case OmissionFaults:
		if f.Rate < 0 || f.Rate > 1 {
			return fmt.Errorf("lineartime: omission rate %v outside [0, 1]", f.Rate)
		}
	case PartitionWindow:
		if f.WindowStart < 0 {
			return fmt.Errorf("lineartime: partition window starts at negative round %d", f.WindowStart)
		}
		if f.WindowEnd <= f.WindowStart {
			return fmt.Errorf("lineartime: empty partition window [%d, %d)", f.WindowStart, f.WindowEnd)
		}
		if f.Cut < 0 || f.Cut > sp.N {
			return fmt.Errorf("lineartime: partition cut %d outside [0, %d]", f.Cut, sp.N)
		}
	case DelayedLinks:
		if f.Delay <= 0 {
			return fmt.Errorf("lineartime: delay bound %d must be positive", f.Delay)
		}
	default:
		return fmt.Errorf("lineartime: unknown fault kind %d", int(f.Kind))
	}
	return nil
}
