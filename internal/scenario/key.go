package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"
)

// keyVersion is hashed into every fingerprint so the key format can
// evolve without old and new keys ever colliding. Bump it whenever the
// encoding below changes.
const keyVersion = "lineartime/spec-key/v1"

// Key returns the canonical content-address of the spec: a stable
// fingerprint of every run-determining dimension — problem × algorithm
// × fault model × port model × topology (seed, degree) × size × round
// budget × inputs. Because a run is a pure function of these fields, two
// Specs with equal keys produce identical Reports, which is what makes
// a key-addressed result cache provably correct.
//
// Exec is deliberately excluded: the sequential and parallel engines
// are pinned result-identical by the cross-engine equivalence suite
// (internal/sim), so the engine choice is an execution detail, not part
// of the result's identity.
func (sp Spec) Key() string {
	h := sha256.New()
	io.WriteString(h, keyVersion)
	hashString(h, sp.Name)
	hashInts(h, int64(sp.Problem), int64(sp.Port), int64(sp.N), int64(sp.T), int64(sp.Degree), int64(sp.RoundSlack))
	hashString(h, string(sp.Algorithm))
	hashUint(h, sp.Seed)
	sp.Fault.hashInto(h)
	hashInts(h, int64(len(sp.BoolInputs)))
	for _, b := range sp.BoolInputs {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	hashInts(h, int64(len(sp.Rumors)))
	for _, r := range sp.Rumors {
		hashUint(h, r)
	}
	hashInts(h, int64(len(sp.Values)))
	for _, v := range sp.Values {
		hashUint(h, v)
	}
	// The topology-family fields entered the spec after v1 keys were
	// in the wild; hash them only when non-default, so every
	// pre-existing spec keeps its exact key (a strict stream
	// extension: the default encoding is byte-identical to before).
	// Implicit is hashed even though it cannot change the Report —
	// implicit runs are pinned byte-identical to materialized ones —
	// because keys must never assert more equality than the encoding
	// proves; collapsing the two costs one duplicate cache entry, not
	// correctness.
	if sp.Topology != TopologyRandomRegular || sp.Implicit {
		hashString(h, "topology")
		hashString(h, string(sp.Topology))
		if sp.Implicit {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return "k1:" + hex.EncodeToString(h.Sum(nil))
}

// hashInto feeds every fault-model field into the fingerprint in a
// fixed order.
func (f FaultModel) hashInto(h hash.Hash) {
	hashInts(h, int64(f.Kind), int64(len(f.Schedule)))
	for _, e := range f.Schedule {
		hashInts(h, int64(e.Node), int64(e.Round), int64(e.Keep))
	}
	hashInts(h, int64(f.Count), int64(f.Horizon), int64(f.Keep), int64(f.Pool))
	hashUint(h, f.Seed)
	hashInts(h, int64(f.Strategy), int64(len(f.Corrupted)))
	for _, id := range f.Corrupted {
		hashInts(h, int64(id))
	}
	hashUint(h, math.Float64bits(f.Rate))
	hashInts(h, int64(f.WindowStart), int64(f.WindowEnd), int64(f.Cut), int64(f.Delay))
}

// hashString writes a length-prefixed string, so adjacent fields can
// never alias under concatenation.
func hashString(h hash.Hash, s string) {
	hashInts(h, int64(len(s)))
	io.WriteString(h, s)
}

func hashInts(h hash.Hash, vs ...int64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
}

func hashUint(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}
