package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFault(t *testing.T) {
	cases := []struct {
		in   string
		want FaultModel
	}{
		{"none", FaultModel{}},
		{"", FaultModel{}},
		{"random-crashes:count=10,horizon=64", FaultModel{Kind: RandomCrashes, Count: 10, Horizon: 64}},
		{"random-crashes:count=3,horizon=8,seed=99", FaultModel{Kind: RandomCrashes, Count: 3, Horizon: 8, Seed: 99}},
		{"cascade:count=5,keep=1,pool=20", FaultModel{Kind: CascadeCrashes, Count: 5, Keep: 1, Pool: 20}},
		{"target-little:count=4", FaultModel{Kind: TargetLittleCrashes, Count: 4}},
		{"omission:rate=0.05", FaultModel{Kind: OmissionFaults, Rate: 0.05}},
		{"omission:rate=0.25,seed=7", FaultModel{Kind: OmissionFaults, Rate: 0.25, Seed: 7}},
		{"partition:from=2,to=6", FaultModel{Kind: PartitionWindow, WindowStart: 2, WindowEnd: 6}},
		{"partition:from=1,to=4,cut=30", FaultModel{Kind: PartitionWindow, WindowStart: 1, WindowEnd: 4, Cut: 30}},
		{"delay:d=3", FaultModel{Kind: DelayedLinks, Delay: 3}},
		{"crash-schedule:events=3@2;5@0/1", FaultModel{Kind: CrashSchedule, Schedule: []CrashEvent{
			{Node: 3, Round: 2, Keep: -1}, {Node: 5, Round: 0, Keep: 1},
		}}},
	}
	for _, tc := range cases {
		got, err := ParseFault(tc.in)
		if err != nil {
			t.Errorf("ParseFault(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseFault(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseFaultRejects(t *testing.T) {
	for _, in := range []string{
		"gremlins",
		"byzantine",
		"omission:rate=high",
		"omission:count=3",
		"delay:d=2,rate=0.5",
		"partition:from=1,to",
		"random-crashes:count=1,horizon=4,seed=-1",
		"crash-schedule:events=5",
		"crash-schedule:events=a@1",
	} {
		if _, err := ParseFault(in); err == nil {
			t.Errorf("ParseFault(%q) accepted", in)
		} else if !strings.HasPrefix(err.Error(), "lineartime: ") {
			t.Errorf("ParseFault(%q) error %q lacks the lineartime: prefix", in, err)
		}
	}
}

// TestParsedFaultsValidate runs every parseable kind end to end
// through a real scenario, pinning that the parser's output passes the
// runner's up-front validation.
func TestParsedFaultsValidate(t *testing.T) {
	for _, in := range []string{
		"none",
		"random-crashes:count=3,horizon=10",
		"cascade:count=3,keep=1",
		"target-little:count=3",
		"omission:rate=0.1",
		"partition:from=1,to=3",
		"delay:d=2",
		"crash-schedule:events=1@0;2@1/0",
	} {
		fault, err := ParseFault(in)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", in, err)
		}
		sp := MustLookup("consensus/few-crashes").Spec(60, 10, 1)
		sp.Fault = fault
		if _, err := Run(sp); err != nil {
			t.Errorf("run with %q: %v", in, err)
		}
	}
}

func TestFaultModelValidationErrors(t *testing.T) {
	sp := MustLookup("consensus/few-crashes").Spec(60, 10, 1)
	cases := []struct {
		name  string
		fault FaultModel
	}{
		{"count-exceeds-n", FaultModel{Kind: RandomCrashes, Count: 61, Horizon: 10}},
		{"negative-count", FaultModel{Kind: CascadeCrashes, Count: -1}},
		{"negative-horizon", FaultModel{Kind: RandomCrashes, Count: 3, Horizon: -4}},
		{"zero-horizon", FaultModel{Kind: RandomCrashes, Count: 3}},
		{"pool-exceeds-n", FaultModel{Kind: TargetLittleCrashes, Count: 1, Pool: 100}},
		{"schedule-node-range", FaultModel{Kind: CrashSchedule, Schedule: []CrashEvent{{Node: 60, Round: 0, Keep: -1}}}},
		{"schedule-negative-round", FaultModel{Kind: CrashSchedule, Schedule: []CrashEvent{{Node: 0, Round: -1, Keep: -1}}}},
		{"rate-too-high", FaultModel{Kind: OmissionFaults, Rate: 1.5}},
		{"rate-negative", FaultModel{Kind: OmissionFaults, Rate: -0.1}},
		{"empty-window", FaultModel{Kind: PartitionWindow, WindowStart: 4, WindowEnd: 4}},
		{"inverted-window", FaultModel{Kind: PartitionWindow, WindowStart: 5, WindowEnd: 2}},
		{"negative-window", FaultModel{Kind: PartitionWindow, WindowStart: -1, WindowEnd: 2}},
		{"cut-exceeds-n", FaultModel{Kind: PartitionWindow, WindowStart: 0, WindowEnd: 2, Cut: 61}},
		{"zero-delay", FaultModel{Kind: DelayedLinks}},
		{"negative-delay", FaultModel{Kind: DelayedLinks, Delay: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := sp
			spec.Fault = tc.fault
			_, err := Run(spec)
			if err == nil {
				t.Fatalf("invalid fault model %+v accepted", tc.fault)
			}
			if !strings.HasPrefix(err.Error(), "lineartime: ") {
				t.Fatalf("validation error %q lacks the lineartime: prefix", err)
			}
		})
	}
}
