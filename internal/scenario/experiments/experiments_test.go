package experiments

import (
	"strings"
	"testing"
)

// TestExperimentIndexGolden pins the experiment enumeration: the ids
// and titles of EXPERIMENTS.md, in order. cmd/sweep renders exactly
// this list, so a dropped experiment fails here.
func TestExperimentIndexGolden(t *testing.T) {
	want := []string{"E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d is %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
}

// TestExperimentSectionsWellFormed materializes every experiment's
// quick sections without running any point: headers, separators and
// points must be present, and quick mode must not enumerate more
// points than the full mode.
func TestExperimentSectionsWellFormed(t *testing.T) {
	for _, e := range All() {
		quick := e.Sections(true)
		full := e.Sections(false)
		if len(quick) == 0 || len(quick) != len(full) {
			t.Errorf("%s: %d quick sections vs %d full", e.ID, len(quick), len(full))
			continue
		}
		for i, sec := range quick {
			if sec.Header == "" || sec.Sep == "" {
				t.Errorf("%s section %d: missing header or separator", e.ID, i)
			}
			if !strings.HasPrefix(sec.Header, "|") || !strings.HasPrefix(sec.Sep, "|") {
				t.Errorf("%s section %d: header/sep are not markdown table rows", e.ID, i)
			}
			if len(sec.Points) == 0 {
				t.Errorf("%s section %d: no points", e.ID, i)
			}
			if len(sec.Points) > len(full[i].Points) {
				t.Errorf("%s section %d: quick has more points (%d) than full (%d)",
					e.ID, i, len(sec.Points), len(full[i].Points))
			}
		}
	}
}

func TestSizesHelper(t *testing.T) {
	full := sizes(false, 1, 2, 3, 4)
	if len(full) != 4 {
		t.Fatalf("full sizes = %v", full)
	}
	quick := sizes(true, 1, 2, 3, 4)
	if len(quick) != 2 {
		t.Fatalf("quick sizes = %v", quick)
	}
}

func TestBoundary(t *testing.T) {
	if got := boundary(1024, 1); got != 102 {
		t.Fatalf("boundary(1024,1) = %d, want 102", got)
	}
	if got := boundary(1024, 2); got != 10 {
		t.Fatalf("boundary(1024,2) = %d, want 10", got)
	}
}

// TestOnePointPerProblemRuns executes one small sweep point from each
// problem family (consensus E4 is exercised by the cmd/sweep
// equivalence test at full width; here the cheapest row of E3 and E5
// guards the registry wiring end to end, and E12's first point guards
// the link-fault rows).
func TestOnePointPerProblemRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment points skipped in -short mode")
	}
	for _, id := range []string{"E3", "E5", "E12", "E13"} {
		for _, e := range All() {
			if e.ID != id {
				continue
			}
			secs := e.Sections(true)
			row, err := secs[0].Points[0].Run()
			if err != nil {
				t.Fatalf("%s point 0: %v", id, err)
			}
			if !strings.HasPrefix(row, "|") {
				t.Fatalf("%s point 0 produced a non-table row: %q", id, row)
			}
		}
	}
}
