// Package experiments declares the paper's experiment tables — the
// E2–E11 sweep series and the empirical Table 1 — as data over the
// scenario registry: each experiment is a set of sections, each section
// a markdown table whose points materialize registry scenarios through
// the generic runner. cmd/sweep and cmd/table1 are thin loops over
// these definitions, so adding (or resizing) an experiment is an edit
// here, not in the commands.
package experiments

import (
	"errors"
	"fmt"
	"math"

	"lineartime/internal/lowerbound"
	"lineartime/internal/scenario"
	"lineartime/internal/sim"
)

// Point is one sweep point: an independent unit of work producing one
// formatted table row. Points of a section may run concurrently; every
// point dispatches through scenario.Execute, so consecutive points on
// one sweep worker reuse a pooled run arena (sim.Runtime) instead of
// rebuilding engine state per run.
type Point struct {
	Run func() (string, error)
	// RunN, when set, renders the point aggregated over the given
	// number of seeds (seeds 1..N) instead of the single committed
	// seed — the multi-seed sweep path (cmd/sweep -seeds). Points
	// whose multi-seed batch contains a sliceable scenario ride the
	// bit-sliced engine 64 seeds per machine word via
	// scenario.RunSeeds. Nil means the point is single-seed only and
	// -seeds falls back to Run.
	RunN func(seeds int) (string, error)
}

// seedRange returns the multi-seed sweep's seed series 1..n.
func seedRange(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}

// runSeedsMean runs the spec across the seed series and returns the
// reports, failing on the first per-seed error.
func runSeedsMean(sp scenario.Spec, seeds []uint64) ([]*scenario.Report, error) {
	reports, errs := scenario.RunSeeds(sp, seeds)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[i], err)
		}
	}
	return reports, nil
}

// meanMetric averages one metric over a seed batch.
func meanMetric(reports []*scenario.Report, metric func(*scenario.Report) float64) float64 {
	var sum float64
	for _, rep := range reports {
		sum += metric(rep)
	}
	return sum / float64(len(reports))
}

// Section is one markdown table of an experiment, with an optional
// preamble line above it and claim footer below it.
type Section struct {
	Preamble    string
	Header, Sep string
	Footer      string
	Points      []Point
}

// Experiment is one experiment id of EXPERIMENTS.md.
type Experiment struct {
	ID    string
	Title string
	// Sections materializes the experiment's tables; quick selects the
	// CI-friendly sizes.
	Sections func(quick bool) []Section
}

// All returns the experiments in EXPERIMENTS.md order.
func All() []Experiment {
	return []Experiment{e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10(), e11(), e12(), e13()}
}

// sizes returns all sizes, or the first two in quick mode.
func sizes(quick bool, all ...int) []int {
	if quick && len(all) > 2 {
		return all[:2]
	}
	return all
}

func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Theorem 5 — Almost-Everywhere Agreement",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 250, 500, 1000, 2000)
			pts := make([]Point, len(ns))
			for i, n := range ns {
				t := n / 6
				pts[i] = Point{Run: func() (string, error) {
					sp := scenario.MustLookup("aea/expander").Spec(n, t, 1)
					// The committed series targets the little overlay
					// with the historical adversary seed 3 and the
					// original 4-round slack.
					sp.Fault = scenario.FaultModel{Kind: scenario.TargetLittleCrashes, Count: t, Seed: 3}
					sp.RoundSlack = 4
					rep, err := scenario.Run(sp)
					if err != nil {
						return "", err
					}
					d := rep.Subroutine.Deciders
					return fmt.Sprintf("| %d | %d | %d | %.2f | %d | %d | %.1f |",
						n, t, d, float64(d)/float64(n),
						rep.Metrics.Rounds, rep.Metrics.Messages,
						float64(rep.Metrics.Messages)/float64(n)), nil
				}}
			}
			return []Section{{
				Header: "| n | t | deciders | deciders/n | rounds | messages | msgs/n |",
				Sep:    "|---|---|----------|-----------|--------|----------|--------|",
				Footer: "Claim: ≥ 3n/5 deciders, O(t) rounds, O(n) messages under little-node-targeted crashes.",
				Points: pts,
			}}
		},
	}
}

func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Theorem 6 — Spread-Common-Value",
		Sections: func(quick bool) []Section {
			type cfg struct{ n, t int }
			cases := []cfg{{400, 10}, {400, 80}, {1600, 30}, {1600, 320}}
			if quick {
				cases = cases[:2]
			}
			pts := make([]Point, len(cases))
			for i, c := range cases {
				pts[i] = Point{Run: func() (string, error) {
					branch := "t²≤n"
					if c.t*c.t > c.n {
						branch = "t²>n"
					}
					sp := scenario.MustLookup("scv/expander").Spec(c.n, c.t, 2)
					sp.RoundSlack = 4
					rep, err := scenario.Run(sp)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("| %d | %d | %s | %d | %d | %v |",
						c.n, c.t, branch, rep.Metrics.Rounds, rep.Metrics.Messages,
						rep.Subroutine.AllDecided), nil
				}}
			}
			return []Section{{
				Header: "| n | t | branch | rounds | messages | all decided |",
				Sep:    "|---|---|--------|--------|----------|-------------|",
				Footer: "Claim: O(log t) rounds, O(t log t) messages, every node decides.",
				Points: pts,
			}}
		},
	}
}

func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Theorem 7 — Few-Crashes-Consensus",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 128, 256, 512, 1024, 2048)
			pts := make([]Point, len(ns))
			for i, n := range ns {
				t := n / 6
				pts[i] = Point{Run: func() (string, error) {
					sp := scenario.MustLookup("consensus/few-crashes").Spec(n, t, 1)
					sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 5 * t}
					rep, err := scenario.Run(sp)
					if err != nil {
						return "", err
					}
					if !rep.Consensus.Agreement || !rep.Consensus.Validity {
						return "", fmt.Errorf("correctness violated at n=%d", n)
					}
					return fmt.Sprintf("| %d | %d | %d | %.2f | %d | %.1f |",
						n, t, rep.Metrics.Rounds, float64(rep.Metrics.Rounds)/float64(t),
						rep.Metrics.Bits, float64(rep.Metrics.Bits)/float64(n)), nil
				}}
				pts[i].RunN = func(seeds int) (string, error) {
					sp := scenario.MustLookup("consensus/few-crashes").Spec(n, t, 1)
					sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 5 * t}
					reports, err := runSeedsMean(sp, seedRange(seeds))
					if err != nil {
						return "", err
					}
					for s, rep := range reports {
						if !rep.Consensus.Agreement || !rep.Consensus.Validity {
							return "", fmt.Errorf("correctness violated at n=%d seed=%d", n, s+1)
						}
					}
					rounds := meanMetric(reports, func(r *scenario.Report) float64 { return float64(r.Metrics.Rounds) })
					bits := meanMetric(reports, func(r *scenario.Report) float64 { return float64(r.Metrics.Bits) })
					return fmt.Sprintf("| %d | %d | %.1f | %.2f | %.1f | %.1f |",
						n, t, rounds, rounds/float64(t), bits, bits/float64(n)), nil
				}
			}
			return []Section{{
				Header: "| n | t | rounds | rounds/t | bits | bits/n |",
				Sep:    "|---|---|--------|----------|------|--------|",
				Footer: "Claim: O(t + log n) rounds (rounds/t flat) and O(n + t log t) bits.",
				Points: pts,
			}}
		},
	}
}

func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Theorem 8 / Corollary 1 — Many-Crashes-Consensus",
		Sections: func(quick bool) []Section {
			n := 256
			if quick {
				n = 128
			}
			lg := int(math.Ceil(math.Log2(float64(n))))
			ts := []int{n / 5, n / 2, 9 * n / 10, n - 1} // α = .2, .5, .9, Corollary 1
			pts := make([]Point, len(ts))
			for i, t := range ts {
				pts[i] = Point{Run: func() (string, error) {
					sp := scenario.MustLookup("consensus/many-crashes").Spec(n, t, 3)
					sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: n}
					rep, err := scenario.Run(sp)
					if err != nil {
						return "", err
					}
					if !rep.Consensus.Agreement || !rep.Consensus.Validity {
						return "", fmt.Errorf("correctness violated at t=%d", t)
					}
					return fmt.Sprintf("| %d | %d | %.2f | %d | %d | %d |",
						n, t, float64(t)/float64(n), rep.Metrics.Rounds, n+3*(1+lg),
						rep.Metrics.Messages), nil
				}}
			}
			return []Section{{
				Header: "| n | t | α | rounds | n+3(1+lg n) | messages |",
				Sep:    "|---|---|---|--------|-------------|----------|",
				Footer: "Claim: ≤ n + 3(1+lg n) rounds for any t < n (Corollary 1 row: t = n−1).",
				Points: pts,
			}}
		},
	}
}

func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Theorem 9 — Gossip",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 128, 256, 512, 1024, 2048)
			pts := make([]Point, len(ns))
			for i, n := range ns {
				t := n / 6
				pts[i] = Point{Run: func() (string, error) {
					sp := scenario.MustLookup("gossip/expander").Spec(n, t, 1)
					sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 60}
					rep, err := scenario.Run(sp)
					if err != nil {
						return "", err
					}
					if !rep.Gossip.Complete {
						return "", fmt.Errorf("gossip incomplete at n=%d", n)
					}
					lglg := math.Log2(float64(n)) * math.Log2(float64(t))
					return fmt.Sprintf("| %d | %d | %d | %.0f | %d | %.1f |",
						n, t, rep.Metrics.Rounds, lglg, rep.Metrics.Messages,
						float64(rep.Metrics.Messages)/float64(n)), nil
				}}
			}
			return []Section{{
				Header: "| n | t | rounds | lg n · lg t | messages | msgs/n |",
				Sep:    "|---|---|--------|--------------|----------|--------|",
				Footer: "Claim: O(log n · log t) rounds and O(n + t log n log t) messages.",
				Points: pts,
			}}
		},
	}
}

func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Theorem 10 — Checkpointing vs O(tn) baseline",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 128, 256, 512, 1024)
			pts := make([]Point, len(ns))
			for i, n := range ns {
				t := n / 6
				pts[i] = Point{Run: func() (string, error) {
					fault := scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 60}
					algoSpec := scenario.MustLookup("checkpoint/expander").Spec(n, t, 1)
					algoSpec.Fault = fault
					algo, err := scenario.Run(algoSpec)
					if err != nil {
						return "", err
					}
					baseSpec := scenario.MustLookup("checkpoint/direct").Spec(n, t, 1)
					baseSpec.Fault = fault
					base, err := scenario.Run(baseSpec)
					if err != nil {
						return "", err
					}
					if !algo.Checkpoint.Agreement || !base.Checkpoint.Agreement {
						return "", fmt.Errorf("agreement violated at n=%d", n)
					}
					return fmt.Sprintf("| %d | %d | %d | %d | %d | %d | %.2f |",
						n, t, algo.Metrics.Rounds, algo.Metrics.Messages,
						base.Metrics.Rounds, base.Metrics.Messages,
						float64(base.Metrics.Messages)/float64(algo.Metrics.Messages)), nil
				}}
			}
			return []Section{{
				Header: "| n | t | algo rounds | algo msgs | baseline rounds | baseline msgs | ratio |",
				Sep:    "|---|---|-------------|-----------|-----------------|---------------|-------|",
				Footer: "Claim: the §6 algorithm's messages beat the direct Θ(t·n²) exchange by a factor growing with n.",
				Points: pts,
			}}
		},
	}
}

func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Theorem 11 — AB-Consensus (authenticated Byzantine)",
		Sections: func(quick bool) []Section {
			strategies := []scenario.ByzantineStrategy{scenario.Silence, scenario.Equivocate, scenario.Spam}
			type point struct {
				n int
				s scenario.ByzantineStrategy
			}
			var points []point
			for _, n := range sizes(quick, 100, 400, 900, 1600) {
				for _, s := range strategies {
					points = append(points, point{n: n, s: s})
				}
			}
			pts := make([]Point, len(points))
			for i, p := range points {
				pts[i] = Point{Run: func() (string, error) {
					t := int(math.Sqrt(float64(p.n)) / 2)
					if t < 1 {
						t = 1
					}
					corrupted := make([]int, 0, t)
					for j := 0; j < t; j++ {
						corrupted = append(corrupted, j)
					}
					sp := scenario.MustLookup("byzantine/ab-consensus").Spec(p.n, t, 1)
					sp.Fault = scenario.FaultModel{
						Kind:      scenario.ByzantineFaults,
						Strategy:  p.s,
						Corrupted: corrupted,
					}
					rep, err := scenario.Run(sp)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("| %d | %d | %s | %d | %d | %d | %v |",
						p.n, t, p.s, rep.Metrics.Rounds, rep.Metrics.Messages,
						t*t+p.n, rep.Byzantine.Agreement), nil
				}}
			}
			return []Section{{
				Header: "| n | t=√n/2 | strategy | rounds | messages | t²+n | agreement |",
				Sep:    "|---|--------|----------|--------|----------|------|-----------|",
				Footer: "Claim: O(t) rounds, O(t²+n) non-faulty messages, agreement under every strategy.",
				Points: pts,
			}}
		},
	}
}

func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Theorem 12 — single-port Linear-Consensus",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 128, 256, 512, 1024)
			pts := make([]Point, len(ns))
			for i, n := range ns {
				t := n / 6
				pts[i] = Point{Run: func() (string, error) {
					sp := scenario.MustLookup("consensus/single-port").Spec(n, t, 1)
					sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 3 * t}
					rep, err := scenario.Run(sp)
					if err != nil {
						return "", err
					}
					if !rep.Consensus.Agreement || !rep.Consensus.Validity {
						return "", fmt.Errorf("correctness violated at n=%d", n)
					}
					denom := float64(t) + math.Log2(float64(n))
					return fmt.Sprintf("| %d | %d | %d | %.1f | %d | %.1f |",
						n, t, rep.Metrics.Rounds, float64(rep.Metrics.Rounds)/denom,
						rep.Metrics.Bits, float64(rep.Metrics.Bits)/float64(n)), nil
				}}
			}
			return []Section{{
				Header: "| n | t | rounds | rounds/(t+lg n) | bits | bits/n |",
				Sep:    "|---|---|--------|------------------|------|--------|",
				Footer: "Claim: Θ(t + log n) rounds (the ratio column is the compilation constant) and O(n + t log n) bits.",
				Points: pts,
			}}
		},
	}
}

func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Theorem 13 — lower-bound constructions",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 81, 243, 729)
			divergence := make([]Point, len(ns))
			for i, n := range ns {
				divergence[i] = Point{Run: func() (string, error) {
					series, err := lowerbound.DivergenceSeries(n, 24)
					if err != nil {
						return "", err
					}
					head := series
					if len(head) > 12 {
						head = head[:12]
					}
					return fmt.Sprintf("| %d | %v | %v | %d | %.1f |",
						n, head, lowerbound.CheckDivergenceInvariant(series) >= 0,
						lowerbound.RoundsToFullDivergence(series, n),
						math.Log(float64(n))/math.Log(3)), nil
				}}
			}
			ts := sizes(quick, 8, 16, 32, 64)
			isolation := make([]Point, len(ts))
			for i, t := range ts {
				isolation[i] = Point{Run: func() (string, error) {
					first, err := lowerbound.FirstContactRound(128, t, 5, 400)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("| 128 | %d | %d | %d |", t, first, t/2), nil
				}}
			}
			return []Section{
				{
					Preamble: "Divergence (Ω(log n) argument): diverged-node counts per single-port round vs the 3^i bound",
					Header:   "| n | series (per round) | 3^i violated | full divergence at round | log₃(n) |",
					Sep:      "|---|--------------------|--------------|--------------------------|---------|",
					Points:   divergence,
				},
				{
					Preamble: "Isolation (Ω(t) argument): first round the victim hears anything, crash budget t",
					Header:   "| n | t | first contact round | t/2 bound |",
					Sep:      "|---|---|---------------------|-----------|",
					Footer:   "Claim: divergence ≤ 3^i per round (so Ω(log n) rounds) and isolation ≥ t/2 rounds (so Ω(t)).",
					Points:   isolation,
				},
			}
		},
	}
}

// faultLabel renders a fault-bound scenario's fault model for the E12
// table.
func faultLabel(f scenario.FaultModel) string {
	switch f.Kind {
	case scenario.OmissionFaults:
		return fmt.Sprintf("omission %g%%", f.Rate*100)
	case scenario.PartitionWindow:
		cut := "n/2"
		if f.Cut > 0 {
			cut = fmt.Sprintf("%d", f.Cut)
		}
		return fmt.Sprintf("partition [%d,%d) cut %s", f.WindowStart, f.WindowEnd, cut)
	case scenario.DelayedLinks:
		return fmt.Sprintf("delay ≤%d", f.Delay)
	default:
		return f.Kind.String()
	}
}

// faultVerdict summarizes the problem-specific correctness of a run
// under link faults. Degradation is a result here, not an error: the
// paper's algorithms are designed for crashes, and the table shows
// which guarantees survive which link faults.
func faultVerdict(rep *scenario.Report) string {
	switch {
	case rep.Consensus != nil:
		return fmt.Sprintf("agreement=%v validity=%v", rep.Consensus.Agreement, rep.Consensus.Validity)
	case rep.Gossip != nil:
		return fmt.Sprintf("complete=%v", rep.Gossip.Complete)
	case rep.Checkpoint != nil:
		return fmt.Sprintf("agreement=%v", rep.Checkpoint.Agreement)
	case rep.Majority != nil:
		return fmt.Sprintf("agreement=%v", rep.Majority.Agreement)
	default:
		return "-"
	}
}

func e12() Experiment {
	section := func(quick bool, preamble string, names ...string) Section {
		ns := sizes(quick, 128, 256, 512)
		var pts []Point
		for _, name := range names {
			for _, n := range ns {
				pts = append(pts, Point{Run: func() (string, error) {
					t := n / 6
					d := scenario.MustLookup(name)
					rep, err := scenario.Run(d.Spec(n, t, 1))
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("| %s | %d | %d | %s | %d | %d | %s |",
						name, n, t, faultLabel(d.Fault),
						rep.Metrics.Rounds, rep.Metrics.Messages, faultVerdict(rep)), nil
				}})
			}
		}
		return Section{
			Preamble: preamble,
			Header:   "| scenario | n | t | fault | rounds | messages | verdict |",
			Sep:      "|----------|---|---|-------|--------|----------|---------|",
			Points:   pts,
		}
	}
	return Experiment{
		ID:    "E12",
		Title: "Link-fault matrix — omission, partition and delay models",
		Sections: func(quick bool) []Section {
			omission := section(quick,
				"Omission (seeded per-link loss): senders pay for lost traffic; receivers see a lossy network",
				"consensus/few-crashes/omission", "gossip/expander/omission", "majority/expander/omission")
			partition := section(quick,
				"Partition (network split for rounds [a,b), then healed): cross-cut messages are lost inside the window",
				"consensus/flooding/partition", "checkpoint/expander/partition")
			delay := section(quick,
				"Delay (adversarial delivery up to d rounds late): the bounded-delay scheduler inside the synchronous round budget",
				"consensus/few-crashes/delay", "gossip/expander/delay")
			delay.Footer = "Observation: the crash-tolerant stacks are not delay- or partition-tolerant by design; the verdict column records which guarantees survive which link faults."
			return []Section{omission, partition, delay}
		},
	}
}

// e13 sweeps the chaos rows: the worst adversary schedules found by
// the internal/campaign frontier search (committed as
// testdata/frontier_*.json), promoted into the registry. Unlike the
// hand-picked E12 rows, these schedules are chosen because they break
// a guarantee, so a run that exhausts its round budget is itself a
// result — the hunted liveness failure — not an error.
func e13() Experiment {
	names := []string{"consensus/few-crashes/chaos", "gossip/expander/chaos"}
	return Experiment{
		ID:    "E13",
		Title: "Chaos campaigns — campaign-found worst schedules",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 96, 192, 384)
			var pts []Point
			for _, name := range names {
				for _, n := range ns {
					pts = append(pts, Point{Run: func() (string, error) {
						t := n / 6
						d := scenario.MustLookup(name)
						rep, err := scenario.Run(d.Spec(n, t, 1))
						if errors.Is(err, sim.ErrNoTermination) {
							return fmt.Sprintf("| %s | %d | %d | %s | - | - | no-termination (round budget exhausted) |",
								name, n, t, faultLabel(d.Fault)), nil
						}
						if err != nil {
							return "", err
						}
						return fmt.Sprintf("| %s | %d | %d | %s | %d | %d | %s |",
							name, n, t, faultLabel(d.Fault),
							rep.Metrics.Rounds, rep.Metrics.Messages, faultVerdict(rep)), nil
					}})
				}
			}
			return []Section{{
				Preamble: "Worst schedules from the committed frontier campaigns (n=96, t=16, seed 1; see testdata/frontier_*.json), re-run across sizes",
				Header:   "| scenario | n | t | fault | rounds | messages | verdict |",
				Sep:      "|----------|---|---|-------|--------|----------|---------|",
				Footer:   "Observation: the campaign search finds delay schedules that break agreement/completeness where the E12 grid's hand-picked points do not; the gossip completeness break persists at every size, while the consensus agreement break is size-sensitive (present at n=96 and n=384, absent at n=192) — exactly why the searched point is pinned by the frontier artifacts.",
				Points:   pts,
			}}
		},
	}
}

func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "§1 comparison — message crossover vs flooding",
		Sections: func(quick bool) []Section {
			ns := sizes(quick, 64, 128, 256, 512, 1024)
			pts := make([]Point, len(ns))
			for i, n := range ns {
				t := n / 6
				pts[i] = Point{Run: func() (string, error) {
					run := func(name string) (*scenario.Report, error) {
						return scenario.Run(scenario.MustLookup(name).Spec(n, t, 1))
					}
					algo, err := run("consensus/few-crashes")
					if err != nil {
						return "", err
					}
					flood, err := run("consensus/flooding")
					if err != nil {
						return "", err
					}
					coord, err := run("consensus/rotating-coordinator")
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("| %d | %d | %d | %d | %d | %.2f | %.2f |",
						n, t, algo.Metrics.Bits, flood.Metrics.Bits, coord.Metrics.Bits,
						float64(flood.Metrics.Bits)/float64(algo.Metrics.Bits),
						float64(coord.Metrics.Bits)/float64(algo.Metrics.Bits)), nil
				}}
				pts[i].RunN = func(seeds int) (string, error) {
					series := seedRange(seeds)
					runN := func(name string) (float64, error) {
						// The flooding comparator rides the bit-sliced
						// engine, 64 seeds per machine word; the other
						// stacks take RunSeeds' scalar fallback.
						reports, err := runSeedsMean(scenario.MustLookup(name).Spec(n, t, 1), series)
						if err != nil {
							return 0, err
						}
						return meanMetric(reports, func(r *scenario.Report) float64 { return float64(r.Metrics.Bits) }), nil
					}
					algo, err := runN("consensus/few-crashes")
					if err != nil {
						return "", err
					}
					flood, err := runN("consensus/flooding")
					if err != nil {
						return "", err
					}
					coord, err := runN("consensus/rotating-coordinator")
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("| %d | %d | %.1f | %.1f | %.1f | %.2f | %.2f |",
						n, t, algo, flood, coord, flood/algo, coord/algo), nil
				}
			}
			return []Section{{
				Header: "| n | t | few-crashes bits | flooding bits | coordinator bits | flood/algo | coord/algo |",
				Sep:    "|---|---|------------------|---------------|------------------|------------|------------|",
				Footer: "Claim: the baselines' Θ(n²) and Θ(t·n) bits diverge from the algorithm's O(n + t log t); both ratios grow with n.",
				Points: pts,
			}}
		},
	}
}
