package experiments

import (
	"fmt"
	"math"

	"lineartime/internal/scenario"
)

// Table1Row is one row of the paper's Table 1, reproduced empirically:
// the algorithm at its claimed optimality boundary t, measured at a
// given size.
type Table1Row struct {
	FaultType string
	Problem   string
	RangeOfT  string
	// Run measures the row at size n: rounds, the row's communication
	// metric (bits for consensus, messages otherwise), and the t the
	// boundary rule picked.
	Run func(n int, seed uint64) (rounds int, comm int64, t int, err error)
}

// boundary returns n / lg^k(n), the paper's optimality-range rules.
func boundary(n, k int) int {
	lg := math.Log2(float64(n))
	return int(float64(n) / math.Pow(lg, float64(k)))
}

// Table1Rows returns the rows of Table 1 in paper order, each bound to
// its registry scenario.
func Table1Rows() []Table1Row {
	return []Table1Row{
		{
			FaultType: "crash",
			Problem:   "consensus (Few-Crashes, §4)",
			RangeOfT:  "t = O(n/log n)",
			Run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 1) // n / lg n
				if 5*t > n {
					t = n / 5
				}
				sp := scenario.MustLookup("consensus/few-crashes").Spec(n, t, seed)
				sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 5 * t}
				rep, err := scenario.Run(sp)
				if err != nil {
					return 0, 0, 0, err
				}
				if !rep.Consensus.Agreement || !rep.Consensus.Validity {
					return 0, 0, 0, fmt.Errorf("correctness violated at n=%d", n)
				}
				return rep.Metrics.Rounds, rep.Metrics.Bits, t, nil
			},
		},
		{
			FaultType: "crash",
			Problem:   "consensus single-port (§8)",
			RangeOfT:  "t = O(n/log n)",
			Run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 1)
				if 5*t > n {
					t = n / 5
				}
				rep, err := scenario.Run(scenario.MustLookup("consensus/single-port").Spec(n, t, seed))
				if err != nil {
					return 0, 0, 0, err
				}
				if !rep.Consensus.Agreement || !rep.Consensus.Validity {
					return 0, 0, 0, fmt.Errorf("correctness violated at n=%d", n)
				}
				return rep.Metrics.Rounds, rep.Metrics.Bits, t, nil
			},
		},
		{
			FaultType: "crash",
			Problem:   "gossip (§5)",
			RangeOfT:  "t = O(n/log² n)",
			Run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2) // n / lg² n
				if t < 1 {
					t = 1
				}
				sp := scenario.MustLookup("gossip/expander").Spec(n, t, seed)
				sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 40}
				rep, err := scenario.Run(sp)
				if err != nil {
					return 0, 0, 0, err
				}
				if !rep.Gossip.Complete {
					return 0, 0, 0, fmt.Errorf("gossip incomplete at n=%d", n)
				}
				return rep.Metrics.Rounds, rep.Metrics.Messages, t, nil
			},
		},
		{
			FaultType: "crash",
			Problem:   "gossip single-port (§8)",
			RangeOfT:  "t = O(n/log² n)",
			Run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2)
				if t < 1 {
					t = 1
				}
				rep, err := scenario.Run(scenario.MustLookup("gossip/expander/single-port").Spec(n, t, seed))
				if err != nil {
					return 0, 0, 0, err
				}
				if !rep.Gossip.Complete {
					return 0, 0, 0, fmt.Errorf("single-port gossip incomplete at n=%d", n)
				}
				return rep.Metrics.Rounds, rep.Metrics.Messages, t, nil
			},
		},
		{
			FaultType: "crash",
			Problem:   "checkpointing (§6)",
			RangeOfT:  "t = O(n/log² n)",
			Run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2)
				if t < 1 {
					t = 1
				}
				sp := scenario.MustLookup("checkpoint/expander").Spec(n, t, seed)
				sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: 40}
				rep, err := scenario.Run(sp)
				if err != nil {
					return 0, 0, 0, err
				}
				if !rep.Checkpoint.Agreement {
					return 0, 0, 0, fmt.Errorf("checkpointing disagreement at n=%d", n)
				}
				return rep.Metrics.Rounds, rep.Metrics.Messages, t, nil
			},
		},
		{
			FaultType: "crash",
			Problem:   "checkpointing single-port (§8)",
			RangeOfT:  "t = O(n/log² n)",
			Run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2)
				if t < 1 {
					t = 1
				}
				rep, err := scenario.Run(scenario.MustLookup("checkpoint/expander/single-port").Spec(n, t, seed))
				if err != nil {
					return 0, 0, 0, err
				}
				if !rep.Checkpoint.Agreement {
					return 0, 0, 0, fmt.Errorf("single-port checkpointing disagreement at n=%d", n)
				}
				return rep.Metrics.Rounds, rep.Metrics.Messages, t, nil
			},
		},
		{
			FaultType: "auth. Byzantine",
			Problem:   "consensus (AB-Consensus, §7)",
			RangeOfT:  "t = O(√n)",
			Run: func(n int, seed uint64) (int, int64, int, error) {
				t := int(math.Sqrt(float64(n)) / 2)
				if t < 1 {
					t = 1
				}
				corrupted := make([]int, 0, t)
				for i := 0; i < t; i++ {
					corrupted = append(corrupted, i)
				}
				sp := scenario.MustLookup("byzantine/ab-consensus").Spec(n, t, seed)
				sp.Fault = scenario.FaultModel{
					Kind:      scenario.ByzantineFaults,
					Strategy:  scenario.Equivocate,
					Corrupted: corrupted,
				}
				rep, err := scenario.Run(sp)
				if err != nil {
					return 0, 0, 0, err
				}
				if !rep.Byzantine.Agreement {
					return 0, 0, 0, fmt.Errorf("byzantine disagreement at n=%d", n)
				}
				return rep.Metrics.Rounds, rep.Metrics.Messages, t, nil
			},
		},
	}
}
