package scenario

import (
	"fmt"
	"reflect"
	"testing"
)

// sameOutcome pins a batch result against its scalar counterpart:
// identical report (DeepEqual) and identical error text.
func sameOutcome(t *testing.T, tag string, wantRep *Report, wantErr error, gotRep *Report, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) ||
		(wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("%s: error diverged:\nscalar %v\nbatch  %v", tag, wantErr, gotErr)
	}
	if !reflect.DeepEqual(wantRep, gotRep) {
		t.Fatalf("%s: report diverged:\nscalar %+v\nbatch  %+v", tag, wantRep, gotRep)
	}
}

// TestExecuteBatchMatchesScalarAcrossRegistry runs every registry row —
// protocol stacks, the E12 fault rows, the E13 chaos rows — under
// several seeds through one mixed ExecuteBatch call and pins every
// report byte-identical to the scalar Runner. Sliceable rows get the
// full 64-seed lane width (the 64-for-1 oracle: one sliced run checks
// a word of seeds at once); the rest keep a 3-seed spot check and take
// the scalar fallback inside the same batch.
func TestExecuteBatchMatchesScalarAcrossRegistry(t *testing.T) {
	var specs []Spec
	var tags []string
	for _, d := range All() {
		n, tt := 50, 8
		if d.Problem == ByzantineConsensus {
			tt = 4
		}
		seeds := uint64(3)
		if sliceable(d.Spec(n, tt, 1)) {
			seeds = 64
		}
		for seed := uint64(1); seed <= seeds; seed++ {
			specs = append(specs, d.Spec(n, tt, seed))
			tags = append(tags, fmt.Sprintf("%s seed=%d", d.Name, seed))
		}
	}
	reports, errs := ExecuteBatch(specs)
	if len(reports) != len(specs) || len(errs) != len(specs) {
		t.Fatalf("batch returned %d reports / %d errors for %d specs", len(reports), len(errs), len(specs))
	}
	for i, sp := range specs {
		wantRep, wantErr := Run(sp)
		sameOutcome(t, tags[i], wantRep, wantErr, reports[i], errs[i])
	}
}

// TestRunSeedsMatchesScalarPerLane pins the genuinely sliced path at
// full width: the flooding comparator under every sliceable fault
// model, 64 seeds per model, each lane byte-identical to its scalar
// run. The per-seed adversaries genuinely differ (random crashes,
// omission patterns, delays), so the lanes diverge in crash sets,
// message counts and rounds while staying pinned.
func TestRunSeedsMatchesScalarPerLane(t *testing.T) {
	const n, tt = 48, 8
	faults := []FaultModel{
		{Kind: NoFailures},
		{Kind: CrashSchedule, Schedule: []CrashEvent{
			{Node: 0, Round: 0, Keep: 0},
			{Node: 5, Round: 1, Keep: 2},
			{Node: 9, Round: 3, Keep: -1},
		}},
		{Kind: RandomCrashes, Count: tt, Horizon: tt + 2},
		{Kind: CascadeCrashes, Count: tt, Keep: 1},
		{Kind: TargetLittleCrashes, Count: tt},
		{Kind: OmissionFaults, Rate: 0.15},
		{Kind: PartitionWindow, WindowStart: 1, WindowEnd: 3},
		{Kind: DelayedLinks, Delay: 2},
	}
	base := MustLookup("consensus/flooding").Spec(n, tt, 1)
	for _, f := range faults {
		f := f
		t.Run(f.Kind.String(), func(t *testing.T) {
			sp := base
			sp.Fault = f
			if !sliceable(sp) {
				t.Fatalf("flooding under %v must be sliceable", f.Kind)
			}
			seeds := make([]uint64, 64)
			for i := range seeds {
				seeds[i] = uint64(i + 1)
			}
			reports, errs := RunSeeds(sp, seeds)
			for i, seed := range seeds {
				lane := sp
				lane.Seed = seed
				wantRep, wantErr := Run(lane)
				sameOutcome(t, fmt.Sprintf("seed %d", seed), wantRep, wantErr, reports[i], errs[i])
			}
		})
	}
}

// TestGossipBatchMatchesScalarPerLane pins the sliced gossip path at
// full width: every sliceable gossip registry row (the chaos row
// included), 64 lanes sharing the row's topology seed with per-lane
// fault models cycling through the whole declarative template —
// mixed-kind groups, so crash schedules, omission patterns, partitions
// and delays ride one engine run together — each lane byte-identical
// to its scalar run. One lane per row is additionally pinned against
// the parallel scalar engine, covering all three call sites.
func TestGossipBatchMatchesScalarPerLane(t *testing.T) {
	const n, tt = 60, 10
	template := []FaultModel{
		{Kind: NoFailures},
		{Kind: CrashSchedule, Schedule: []CrashEvent{
			{Node: 0, Round: 0, Keep: 0},
			{Node: 5, Round: 1, Keep: 2},
			{Node: 9, Round: 3, Keep: -1},
		}},
		{Kind: RandomCrashes, Count: tt, Horizon: tt + 2},
		{Kind: CascadeCrashes, Count: tt, Keep: 1},
		{Kind: TargetLittleCrashes, Count: tt},
		{Kind: OmissionFaults, Rate: 0.15},
		{Kind: PartitionWindow, WindowStart: 1, WindowEnd: 3},
		{Kind: DelayedLinks, Delay: 2},
	}
	rows := []string{
		"gossip/expander",
		"gossip/expander/omission",
		"gossip/expander/delay",
		"gossip/expander/chaos",
	}
	for _, name := range rows {
		t.Run(name, func(t *testing.T) {
			base := MustLookup(name).Spec(n, tt, 1)
			if !sliceable(base) {
				t.Fatalf("%s must be sliceable", name)
			}
			specs := make([]Spec, 64)
			for i := range specs {
				specs[i] = base
				f := template[i%len(template)]
				// Distinct adversary seeds keep the lanes genuinely
				// divergent while the topology seed stays shared.
				f.Seed = uint64(900 + i)
				specs[i].Fault = f
				if !sliceable(specs[i]) || keyOf(specs[i]) != keyOf(base) {
					t.Fatalf("lane %d must share the row's sliced group", i)
				}
			}
			reports, errs := ExecuteBatch(specs)
			for i, sp := range specs {
				wantRep, wantErr := Run(sp)
				sameOutcome(t, fmt.Sprintf("lane %d (%v)", i, sp.Fault.Kind), wantRep, wantErr, reports[i], errs[i])
			}
			// Parallel scalar call site: same report again for one lane.
			par := specs[7]
			par.Exec = Parallel(2)
			parRep, parErr := Run(par)
			sameOutcome(t, "parallel scalar", parRep, parErr, reports[7], errs[7])
		})
	}
}

// TestRunSeedsSingleSeed pins the degenerate batch: one seed through
// RunSeeds is exactly Run.
func TestRunSeedsSingleSeed(t *testing.T) {
	sp := MustLookup("consensus/flooding").Spec(30, 5, 7)
	sp.Fault = FaultModel{Kind: RandomCrashes, Count: 5, Horizon: 7}
	reports, errs := RunSeeds(sp, []uint64{7})
	wantRep, wantErr := Run(sp)
	sameOutcome(t, "seeds=1", wantRep, wantErr, reports[0], errs[0])
}

// TestExecuteBatchInvalidSpec: a spec that fails Run's preconditions
// must surface Run's exact error from the batch, not a batch-specific
// one.
func TestExecuteBatchInvalidSpec(t *testing.T) {
	good := MustLookup("consensus/flooding").Spec(24, 4, 1)
	bad := good
	bad.Fault = FaultModel{Kind: DelayedLinks, Delay: -1}
	reports, errs := ExecuteBatch([]Spec{good, bad})
	if errs[0] != nil || reports[0] == nil {
		t.Fatalf("good spec failed: %v", errs[0])
	}
	_, wantErr := Run(bad)
	if wantErr == nil || errs[1] == nil || wantErr.Error() != errs[1].Error() {
		t.Fatalf("bad spec error diverged: scalar %v, batch %v", wantErr, errs[1])
	}
}
