package scenario

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lineartime/internal/bitset"
	"lineartime/internal/byzantine"
	"lineartime/internal/checkpoint"
	"lineartime/internal/consensus"
	"lineartime/internal/expander"
	"lineartime/internal/gossip"
	"lineartime/internal/majority"
	"lineartime/internal/obs"
	"lineartime/internal/sim"
	"lineartime/internal/singleport"
)

// defaultRoundSlack is added to a protocol's schedule length to form
// the engine round budget, absorbing the bounded overrun the paper's
// termination arguments allow.
const defaultRoundSlack = 8

// ErrSinglePortParallel reports a parallel dispatch of a single-port
// scenario; the sharded engine is multi-port only.
var ErrSinglePortParallel = errors.New("scenario: parallel execution is multi-port only")

// runtimes pools sim run arenas across Execute calls: a sweep worker
// or experiment loop that executes many scenarios back to back lands
// on a warm Runtime (grown scratch buffers, parked parallel workers)
// instead of rebuilding ~MBs of engine state per run. sync.Pool's
// per-P caching gives each concurrent sweep worker its own arena.
var runtimes = sync.Pool{New: func() any { return sim.NewRuntime() }}

// Execute is the single engine choke point: every simulator run in the
// repository outside internal/sim — the public API, the registry
// experiments, the commands, the lower-bound constructions — dispatches
// through here, so the sequential/parallel decision and its
// constraints live in one place. Runs execute on a pooled run arena;
// the returned Result is detached from it (Clone), so callers may
// retain it freely.
func Execute(cfg sim.Config, p Parallelism) (*sim.Result, error) {
	rt := runtimes.Get().(*sim.Runtime)
	defer runtimes.Put(rt)
	var res *sim.Result
	var err error
	if p.Enabled {
		if cfg.SinglePort {
			return nil, ErrSinglePortParallel
		}
		res, err = rt.RunParallel(cfg, p.Workers)
	} else {
		res, err = rt.Run(cfg)
	}
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// Runner materializes Specs into engine runs. It is stateless; the
// zero value is ready to use.
type Runner struct{}

// Run materializes the spec into a sim.Config, executes it through
// Execute, and returns the unified report.
func (Runner) Run(sp Spec) (*Report, error) {
	// The runner reports its own stages around the engine's: the spec
	// materialization (topology + protocol stack + fault layer) counts
	// as setup, the outcome evaluation as decode. The engine reports
	// its internal setup/rounds split through the same tracer.
	tr := sp.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if sp.N <= 0 {
		return nil, fmt.Errorf("scenario: n=%d must be positive", sp.N)
	}
	if _, err := sp.topologyMode(); err != nil {
		return nil, err
	}
	if err := sp.Fault.validate(sp); err != nil {
		return nil, err
	}
	sys, err := materialize(sp)
	if err != nil {
		return nil, err
	}
	fault, err := sp.Fault.LinkFault(sp.N, sp.T, sys.little, sp.Seed)
	if err != nil {
		return nil, err
	}
	slack := sp.RoundSlack
	if slack <= 0 {
		slack = defaultRoundSlack
	}
	if tr != nil {
		tr.StageDuration(obs.StageSetup, time.Since(t0))
	}
	res, err := Execute(sim.Config{
		Protocols:   sys.ps,
		PartLabeler: partLabelerOf(sys.ps),
		Fault:       fault,
		Byzantine:   sys.byz,
		MaxRounds:   sys.schedule + slack,
		SinglePort:  sys.singlePort,
		Observer:    sp.Observer,
		Tracer:      tr,
	}, sp.Exec)
	if err != nil {
		return nil, err
	}
	var t1 time.Time
	if tr != nil {
		t1 = time.Now()
	}
	rep := &Report{
		Scenario:  sp.Name,
		Problem:   sp.Problem,
		Algorithm: sp.Algorithm,
		Port:      sp.Port,
		N:         sp.N,
		T:         sp.T,
		Metrics:   toMetrics(res),
		Crashed:   res.Crashed.Elements(),
	}
	sys.finish(res, rep)
	if tr != nil {
		tr.StageDuration(obs.StageDecode, time.Since(t1))
	}
	return rep, nil
}

// Run executes the spec on the default Runner.
func Run(sp Spec) (*Report, error) { return Runner{}.Run(sp) }

func toMetrics(res *sim.Result) Metrics {
	m := Metrics{
		Rounds:      res.Metrics.Rounds,
		Messages:    res.Metrics.Messages,
		Bits:        res.Metrics.Bits,
		ByzMessages: res.Metrics.ByzMessages,
		ByzBits:     res.Metrics.ByzBits,
	}
	if len(res.Metrics.PerPart) > 0 {
		m.PerPart = make(map[string]int64, len(res.Metrics.PerPart))
		for k, v := range res.Metrics.PerPart {
			m.PerPart[k] = v
		}
	}
	return m
}

// partLabelerOf returns the schedule labeler shared by a run's
// protocols, if they provide one (schedules are identical across
// nodes, so the first protocol's labeler covers the system).
func partLabelerOf(ps []sim.Protocol) func(int) string {
	if len(ps) == 0 {
		return nil
	}
	if pl, ok := ps[0].(interface{ PartAt(round int) string }); ok {
		return pl.PartAt
	}
	return nil
}

// system is a materialized scenario: the protocol stack plus the hooks
// the runner needs to configure the engine and evaluate the outcome.
type system struct {
	ps         []sim.Protocol
	schedule   int
	singlePort bool
	byz        *bitset.Set
	// little is the expander topology's little-node count (0 when the
	// scenario has no expander overlay), feeding TargetLittleCrashes.
	little int
	// finish evaluates the problem-specific outcome into the report.
	finish func(res *sim.Result, rep *Report)
}

// materialize builds the protocol stack for the spec.
func materialize(sp Spec) (*system, error) {
	switch sp.Problem {
	case Consensus:
		return materializeConsensus(sp)
	case Gossip:
		return materializeGossip(sp)
	case Checkpointing:
		return materializeCheckpointing(sp)
	case ByzantineConsensus:
		return materializeByzantine(sp)
	case AlmostEverywhere:
		return materializeAEA(sp)
	case SpreadCommonValue:
		return materializeSCV(sp)
	case MajorityVote:
		return materializeMajority(sp)
	default:
		return nil, fmt.Errorf("scenario: unknown problem %v", sp.Problem)
	}
}

// topologyMode resolves the spec's Topology/Implicit fields into the
// expander construction mode threaded through every overlay of the
// run. Implicit implies the shift family — it is the only locally
// computable one.
func (sp Spec) topologyMode() (expander.Mode, error) {
	switch sp.Topology {
	case TopologyRandomRegular:
		if sp.Implicit {
			return expander.Mode{Family: expander.FamilyShift, Implicit: true}, nil
		}
		return expander.Mode{}, nil
	case TopologyShift:
		return expander.Mode{Family: expander.FamilyShift, Implicit: sp.Implicit}, nil
	default:
		return expander.Mode{}, fmt.Errorf("scenario: unknown topology family %q", sp.Topology)
	}
}

func (sp Spec) topologyOptions() (consensus.TopologyOptions, error) {
	mode, err := sp.topologyMode()
	if err != nil {
		return consensus.TopologyOptions{}, err
	}
	return consensus.TopologyOptions{Seed: sp.Seed, Degree: sp.Degree, Mode: mode}, nil
}

// newTopology builds the t < n/5 expander topology for the spec.
func (sp Spec) newTopology(n, t int) (*consensus.Topology, error) {
	opts, err := sp.topologyOptions()
	if err != nil {
		return nil, err
	}
	return consensus.NewTopology(n, t, opts)
}

// newManyTopology builds the any-t topology for the spec.
func (sp Spec) newManyTopology(n, t int) (*consensus.ManyTopology, error) {
	opts, err := sp.topologyOptions()
	if err != nil {
		return nil, err
	}
	return consensus.NewManyTopology(n, t, opts)
}

// boolDecider is the decision surface shared by the consensus
// protocols.
type boolDecider interface {
	Decision() (bool, bool)
}

func materializeConsensus(sp Spec) (*system, error) {
	n, t := sp.N, sp.T
	inputs := sp.BoolInputs
	if len(inputs) != n {
		return nil, fmt.Errorf("scenario: %d inputs for n=%d", len(inputs), n)
	}
	ps := make([]sim.Protocol, n)
	ds := make([]boolDecider, n)
	sys := &system{ps: ps}

	switch sp.Algorithm {
	case FewCrashes:
		top, err := sp.newTopology(n, t)
		if err != nil {
			return nil, err
		}
		sys.little = top.L
		for i := 0; i < n; i++ {
			m := consensus.NewFewCrashes(i, top, inputs[i])
			ps[i], ds[i] = m, m
			sys.schedule = m.ScheduleLength()
		}
	case ManyCrashes:
		top, err := sp.newManyTopology(n, t)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := consensus.NewManyCrashes(i, top, inputs[i])
			ps[i], ds[i] = m, m
			sys.schedule = m.ScheduleLength()
		}
	case Flooding:
		for i := 0; i < n; i++ {
			m := consensus.NewFlooding(i, n, t, inputs[i])
			ps[i], ds[i] = m, m
			sys.schedule = m.ScheduleLength()
		}
	case SinglePortLinear:
		top, err := sp.newTopology(n, t)
		if err != nil {
			return nil, err
		}
		sys.little = top.L
		for i := 0; i < n; i++ {
			m := singleport.New(i, top, inputs[i])
			ps[i], ds[i] = m, m
			sys.schedule = m.ScheduleLength()
		}
		sys.singlePort = true
	case EarlyStopping:
		for i := 0; i < n; i++ {
			m := consensus.NewEarlyStopping(i, n, t, inputs[i])
			ps[i], ds[i] = m, m
			sys.schedule = m.MaxRounds()
		}
	case RotatingCoordinator:
		for i := 0; i < n; i++ {
			m := consensus.NewRotatingCoordinator(i, n, t, inputs[i])
			ps[i], ds[i] = m, m
			sys.schedule = m.ScheduleLength()
		}
	default:
		return nil, fmt.Errorf("scenario: unknown consensus algorithm %q", sp.Algorithm)
	}

	sys.finish = func(res *sim.Result, rep *Report) {
		out := &ConsensusOutcome{
			Decisions: make([]int, n),
			Agreement: true,
			Validity:  true,
		}
		any0, any1 := false, false
		for _, in := range inputs {
			if in {
				any1 = true
			} else {
				any0 = true
			}
		}
		first := -1
		for i := 0; i < n; i++ {
			out.Decisions[i] = -1
			if res.Crashed.Contains(i) {
				continue
			}
			v, ok := ds[i].Decision()
			if !ok {
				out.Agreement = false
				continue
			}
			d := 0
			if v {
				d = 1
			}
			out.Decisions[i] = d
			if first < 0 {
				first = d
			} else if first != d {
				out.Agreement = false
			}
			if (d == 1 && !any1) || (d == 0 && !any0) {
				out.Validity = false
			}
		}
		rep.Consensus = out
	}
	return sys, nil
}

func materializeGossip(sp Spec) (*system, error) {
	n, t := sp.N, sp.T
	rumors := sp.Rumors
	if len(rumors) != n {
		return nil, fmt.Errorf("scenario: %d rumors for n=%d", len(rumors), n)
	}
	ps := make([]sim.Protocol, n)
	extants := make([]func() *gossip.ExtantSet, n)
	sys := &system{ps: ps}

	switch {
	case sp.Algorithm == GossipAllToAll:
		for i := 0; i < n; i++ {
			m := gossip.NewAllToAll(i, n, gossip.Rumor(rumors[i]))
			ps[i] = m
			extants[i] = m.Extant
			sys.schedule = m.ScheduleLength()
		}
	case sp.Algorithm == GossipExpander && sp.Port == SinglePort:
		top, err := sp.newTopology(n, t)
		if err != nil {
			return nil, err
		}
		sys.little = top.L
		sched, err := singleport.NewGossipSchedule(top, sp.Seed)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := singleport.NewSPGossip(i, sched, gossip.Rumor(rumors[i]))
			ps[i] = m
			extants[i] = m.Extant
			sys.schedule = m.ScheduleLength()
		}
		sys.singlePort = true
	case sp.Algorithm == GossipExpander:
		top, err := sp.newTopology(n, t)
		if err != nil {
			return nil, err
		}
		sys.little = top.L
		for i := 0; i < n; i++ {
			m := gossip.New(i, top, gossip.Rumor(rumors[i]))
			ps[i] = m
			extants[i] = m.Extant
			sys.schedule = m.ScheduleLength()
		}
	default:
		return nil, fmt.Errorf("scenario: unknown gossip algorithm %q", sp.Algorithm)
	}

	sys.finish = func(res *sim.Result, rep *Report) {
		out := &GossipOutcome{
			Extant:   make([]map[int]uint64, n),
			Complete: true,
		}
		for i := 0; i < n; i++ {
			if res.Crashed.Contains(i) {
				continue
			}
			e := extants[i]()
			view := make(map[int]uint64, e.Count())
			e.Known().ForEach(func(j int) { view[j] = uint64(e.Rumor(j)) })
			out.Extant[i] = view
			for j := 0; j < n; j++ {
				if !res.Crashed.Contains(j) {
					if _, ok := view[j]; !ok {
						out.Complete = false
					}
				}
			}
		}
		rep.Gossip = out
	}
	return sys, nil
}

func materializeCheckpointing(sp Spec) (*system, error) {
	n, t := sp.N, sp.T
	ps := make([]sim.Protocol, n)
	outs := make([]func() (*bitset.Set, bool), n)
	sys := &system{ps: ps}

	switch {
	case sp.Algorithm == CheckpointDirect:
		for i := 0; i < n; i++ {
			m := checkpoint.NewDirect(i, n, t)
			ps[i] = m
			outs[i] = m.Decision
			sys.schedule = m.ScheduleLength()
		}
	case sp.Algorithm == CheckpointExpander && sp.Port == SinglePort:
		top, err := sp.newTopology(n, t)
		if err != nil {
			return nil, err
		}
		sys.little = top.L
		sched, err := singleport.NewGossipSchedule(top, sp.Seed)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			m := singleport.NewSPCheckpointing(i, sched)
			ps[i] = m
			outs[i] = m.Decision
			sys.schedule = m.ScheduleLength()
		}
		sys.singlePort = true
	case sp.Algorithm == CheckpointExpander:
		top, err := sp.newTopology(n, t)
		if err != nil {
			return nil, err
		}
		sys.little = top.L
		for i := 0; i < n; i++ {
			m := checkpoint.New(i, top)
			ps[i] = m
			outs[i] = m.Decision
			sys.schedule = m.ScheduleLength()
		}
	default:
		return nil, fmt.Errorf("scenario: unknown checkpointing algorithm %q", sp.Algorithm)
	}

	sys.finish = func(res *sim.Result, rep *Report) {
		out := &CheckpointOutcome{Agreement: true}
		var agreed *bitset.Set
		for i := 0; i < n; i++ {
			if res.Crashed.Contains(i) {
				continue
			}
			set, ok := outs[i]()
			if !ok {
				out.Agreement = false
				continue
			}
			if agreed == nil {
				agreed = set
			} else if !agreed.Equal(set) {
				out.Agreement = false
			}
		}
		if agreed != nil && out.Agreement {
			out.ExtantSet = agreed.Elements()
		}
		rep.Checkpoint = out
	}
	return sys, nil
}

// uintDecider is the decision surface of the Byzantine protocols.
type uintDecider interface {
	Decision() (uint64, bool)
}

func materializeByzantine(sp Spec) (*system, error) {
	n, t := sp.N, sp.T
	inputs := sp.Values
	if len(inputs) != n {
		return nil, fmt.Errorf("scenario: %d inputs for n=%d", len(inputs), n)
	}
	mode, err := sp.topologyMode()
	if err != nil {
		return nil, err
	}
	cfg, err := byzantine.NewConfigMode(n, t, sp.Seed, mode)
	if err != nil {
		return nil, err
	}
	corrupted := make(map[int]bool, len(sp.Fault.Corrupted))
	for _, id := range sp.Fault.Corrupted {
		corrupted[id] = true
	}

	ps := make([]sim.Protocol, n)
	ds := make([]uintDecider, n)
	byz := bitset.New(n)
	baseline := sp.Algorithm == DolevStrongAll
	if !baseline && sp.Algorithm != ABConsensus {
		return nil, fmt.Errorf("scenario: unknown byzantine algorithm %q", sp.Algorithm)
	}
	for i := 0; i < n; i++ {
		if corrupted[i] {
			byz.Add(i)
			switch sp.Fault.Strategy {
			case Equivocate:
				ps[i] = byzantine.NewEquivocator(i, cfg, cfg.Authority.Signer(i), inputs[i], inputs[i]+1)
			case Spam:
				ps[i] = byzantine.NewSpammer(i, cfg, cfg.Authority.Signer(i))
			default:
				ps[i] = byzantine.NewSilent(cfg)
			}
			continue
		}
		if baseline {
			m := byzantine.NewDSAll(i, cfg, cfg.Authority.Signer(i), inputs[i])
			ps[i], ds[i] = m, m
		} else {
			m := byzantine.NewABConsensus(i, cfg, cfg.Authority.Signer(i), inputs[i])
			ps[i], ds[i] = m, m
		}
	}
	sys := &system{ps: ps, schedule: cfg.ScheduleLength(), byz: byz}
	sys.finish = func(res *sim.Result, rep *Report) {
		out := &ByzantineOutcome{
			L:         cfg.L,
			Decisions: make([]uint64, n),
			Decided:   make([]bool, n),
			Agreement: true,
		}
		var agreed *uint64
		for i := 0; i < n; i++ {
			if ds[i] == nil {
				continue
			}
			v, ok := ds[i].Decision()
			if !ok {
				out.Agreement = false
				continue
			}
			out.Decisions[i] = v
			out.Decided[i] = true
			if agreed == nil {
				agreed = &v
			} else if *agreed != v {
				out.Agreement = false
			}
		}
		rep.Byzantine = out
	}
	return sys, nil
}

func materializeAEA(sp Spec) (*system, error) {
	n, t := sp.N, sp.T
	inputs := sp.BoolInputs
	if len(inputs) != n {
		return nil, fmt.Errorf("scenario: %d inputs for n=%d", len(inputs), n)
	}
	top, err := sp.newTopology(n, t)
	if err != nil {
		return nil, err
	}
	ps := make([]sim.Protocol, n)
	ms := make([]*consensus.AEA, n)
	sys := &system{ps: ps, little: top.L}
	for i := 0; i < n; i++ {
		ms[i] = consensus.NewAEA(i, top, inputs[i], 0, true)
		ps[i] = ms[i]
		sys.schedule = ms[i].ScheduleLength()
	}
	sys.finish = func(res *sim.Result, rep *Report) {
		out := &SubroutineOutcome{AllDecided: true}
		for i, m := range ms {
			_, ok := m.Decided()
			if !ok {
				out.AllDecided = false
			}
			if ok && !res.Crashed.Contains(i) {
				out.Deciders++
			}
		}
		rep.Subroutine = out
	}
	return sys, nil
}

func materializeMajority(sp Spec) (*system, error) {
	n, t := sp.N, sp.T
	votes := sp.BoolInputs
	if len(votes) != n {
		return nil, fmt.Errorf("scenario: %d votes for n=%d", len(votes), n)
	}
	top, err := sp.newTopology(n, t)
	if err != nil {
		return nil, err
	}
	ps := make([]sim.Protocol, n)
	ms := make([]*majority.Vote, n)
	sys := &system{ps: ps, little: top.L}
	for i := 0; i < n; i++ {
		ms[i] = majority.New(i, top, votes[i])
		ps[i] = ms[i]
		sys.schedule = ms[i].ScheduleLength()
	}
	sys.finish = func(res *sim.Result, rep *Report) {
		out := &MajorityOutcome{Agreement: true}
		first := false
		for i := 0; i < n; i++ {
			if res.Crashed.Contains(i) {
				continue
			}
			verdict, yes, ballots, ok := ms[i].Verdict()
			if !ok {
				out.Agreement = false
				continue
			}
			if !first {
				out.YesWins = verdict == majority.Yes
				out.YesVotes = yes
				out.Ballots = ballots
				first = true
				continue
			}
			if (verdict == majority.Yes) != out.YesWins ||
				yes != out.YesVotes || ballots != out.Ballots {
				out.Agreement = false
			}
		}
		rep.Majority = out
	}
	return sys, nil
}

func materializeSCV(sp Spec) (*system, error) {
	n, t := sp.N, sp.T
	inputs := sp.BoolInputs
	if len(inputs) != n {
		return nil, fmt.Errorf("scenario: %d inputs for n=%d", len(inputs), n)
	}
	top, err := sp.newTopology(n, t)
	if err != nil {
		return nil, err
	}
	ps := make([]sim.Protocol, n)
	ms := make([]*consensus.SCV, n)
	sys := &system{ps: ps, little: top.L}
	for i := 0; i < n; i++ {
		ms[i] = consensus.NewSCV(i, top, inputs[i], true, 0, true)
		ps[i] = ms[i]
		sys.schedule = ms[i].ScheduleLength()
	}
	sys.finish = func(res *sim.Result, rep *Report) {
		out := &SubroutineOutcome{AllDecided: true}
		for i, m := range ms {
			_, ok := m.Decided()
			if !ok {
				out.AllDecided = false
			}
			if ok && !res.Crashed.Contains(i) {
				out.Deciders++
			}
		}
		rep.Subroutine = out
	}
	return sys, nil
}
