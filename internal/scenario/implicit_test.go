package scenario

import (
	"reflect"
	"testing"
)

// implicitParitySize is the matrix size the parity suite pins: large
// enough that every protocol schedule has non-trivial structure
// (little committees, inquiry phases, partition windows), small
// enough that 27 rows × 3 engines × 2 representations stays fast.
const (
	implicitParityN = 60
	implicitParityT = 10
)

// TestImplicitParityRegistry pins the tentpole guarantee: for every
// registry row that supports implicit topologies — including the
// fault-bound rows and the campaign-found */chaos rows — a run whose
// overlays are regenerated on the fly from the seeded shift
// construction produces a Report byte-identical
// (reflect.DeepEqual) to the same run with those overlays
// materialized, on the sequential engine, the 4-phase parallel
// engine, and the bit-sliced batch path.
func TestImplicitParityRegistry(t *testing.T) {
	for _, d := range All() {
		if !d.SupportsImplicit() {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			mat := d.Spec(implicitParityN, implicitParityT, 7)
			mat.Topology = TopologyShift
			imp := mat
			imp.Implicit = true

			want, err := Run(mat)
			if err != nil {
				t.Fatalf("materialized run: %v", err)
			}
			got, err := Run(imp)
			if err != nil {
				t.Fatalf("implicit run: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sequential: implicit report differs from materialized\nimplicit:     %+v\nmaterialized: %+v", got, want)
			}

			if d.Port != SinglePort {
				matP, impP := mat, imp
				matP.Exec = Parallel(4)
				impP.Exec = Parallel(4)
				wantP, err := Run(matP)
				if err != nil {
					t.Fatalf("materialized parallel run: %v", err)
				}
				gotP, err := Run(impP)
				if err != nil {
					t.Fatalf("implicit parallel run: %v", err)
				}
				if !reflect.DeepEqual(gotP, wantP) {
					t.Fatalf("parallel: implicit report differs from materialized")
				}
				if !reflect.DeepEqual(gotP, want) {
					t.Fatalf("parallel implicit report differs from sequential materialized")
				}
			}

			// Batch path: ExecuteBatch slices what it can and falls
			// back to the scalar runner for the rest — either way the
			// implicit/materialized pair must stay identical.
			reps, errs := ExecuteBatch([]Spec{mat, imp})
			for i, err := range errs {
				if err != nil {
					t.Fatalf("batch run %d: %v", i, err)
				}
			}
			if !reflect.DeepEqual(reps[1], reps[0]) {
				t.Fatalf("batch: implicit report differs from materialized")
			}
			if !reflect.DeepEqual(reps[0], want) {
				t.Fatalf("batch materialized report differs from sequential run")
			}
		})
	}
}

// TestImplicitImpliesShift pins the Implicit ⇒ shift-family
// resolution: an implicit spec with the default topology kind runs
// the identical construction as an explicit shift spec.
func TestImplicitImpliesShift(t *testing.T) {
	d := MustLookup("consensus/few-crashes")
	a := d.Spec(60, 10, 3)
	a.Implicit = true // Topology left at the default
	b := d.Spec(60, 10, 3)
	b.Topology = TopologyShift
	b.Implicit = true
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("implicit-with-default-topology differs from explicit shift")
	}
}

func TestUnknownTopologyRejected(t *testing.T) {
	sp := MustLookup("consensus/few-crashes").Spec(60, 10, 3)
	sp.Topology = "torus"
	if _, err := Run(sp); err == nil {
		t.Fatal("unknown topology family accepted")
	}
}

// Shift-family specs must hash to different keys than default specs,
// implicit to different keys than materialized, and default specs to
// the exact keys they had before the fields existed (guarded by the
// golden key test elsewhere; here we pin the non-default splits).
func TestTopologyKeySeparation(t *testing.T) {
	base := MustLookup("consensus/few-crashes").Spec(60, 10, 3)
	shift := base
	shift.Topology = TopologyShift
	imp := shift
	imp.Implicit = true
	keys := map[string]string{
		"default": base.Key(),
		"shift":   shift.Key(),
		"imp":     imp.Key(),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("specs %q and %q share key %s", prev, name, k)
		}
		seen[k] = name
	}
}

func TestSupportsImplicitMatrix(t *testing.T) {
	want := map[string]bool{
		"consensus/few-crashes":          true,
		"consensus/many-crashes":         true,
		"consensus/single-port":          true,
		"consensus/flooding":             false,
		"consensus/early-stopping":       false,
		"consensus/rotating-coordinator": false,
		"gossip/expander":                true,
		"gossip/all-to-all":              false,
		"checkpoint/expander":            true,
		"checkpoint/direct":              false,
		"byzantine/ab-consensus":         true,
		"byzantine/dolev-strong-all":     true,
		"aea/expander":                   true,
		"scv/expander":                   true,
		"majority/expander":              true,
	}
	for name, w := range want {
		if got := MustLookup(name).SupportsImplicit(); got != w {
			t.Errorf("%s: SupportsImplicit = %v, want %v", name, got, w)
		}
	}
}

func TestSetImplicitDefault(t *testing.T) {
	SetImplicitDefault(true)
	defer SetImplicitDefault(false)
	sp := MustLookup("gossip/expander").Spec(60, 10, 3)
	if !sp.Implicit || sp.Topology != TopologyShift {
		t.Fatalf("implicit default ignored: %+v", sp)
	}
	flood := MustLookup("consensus/flooding").Spec(60, 10, 3)
	if flood.Implicit || flood.Topology != TopologyRandomRegular {
		t.Fatalf("implicit default applied to a non-overlay row: %+v", flood)
	}
}
