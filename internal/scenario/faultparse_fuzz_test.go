package scenario

import (
	"reflect"
	"testing"
)

// FuzzParseFault pins the fault grammar's safety and canonicalization
// properties: ParseFault must never panic, every accepted model must
// survive FaultModel validation without panicking (errors are fine —
// validation exists to reject shapes), and every accepted model must
// round-trip through its canonical CLI spelling back to an equal
// model. The round-trip is what lets campaign checkpoints and frontier
// artifacts carry fault models as CLI strings.
func FuzzParseFault(f *testing.F) {
	for _, u := range FaultUsages() {
		f.Add(u.Spec)
	}
	seeds := []string{
		"",
		"none",
		"omission:rate=0.05",
		"omission:rate=0.05,seed=7",
		"omission:rate=1e-3",
		"omission:rate=-1",
		"omission:rate=NaN",
		"omission:rate=+Inf",
		"partition:from=1,to=4",
		"partition:from=1,to=4,cut=32",
		"delay:d=2",
		"delay:d=2,seed=9",
		"crash-schedule:events=1@2;3@4/0;5@6/-2",
		"random-crashes:count=5,horizon=20,seed=11",
		"cascade:count=4,keep=1,pool=8",
		"target-little:count=3,pool=6",
		"byzantine",
		"omission:rate",
		"omission:bogus=1",
		"delay:d=x",
		"crash-schedule:events=1@",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	shapes := []Spec{
		{Problem: Consensus, N: 8, T: 2},
		{Problem: Gossip, N: 1, T: 0},
		{Problem: ByzantineConsensus, N: 16, T: 3},
	}
	f.Fuzz(func(t *testing.T, s string) {
		fm, err := ParseFault(s)
		if err != nil {
			return
		}
		// Validation must hold up against arbitrary accepted inputs for
		// every scenario shape: errors are expected, panics are not.
		for _, sp := range shapes {
			sp.Fault = fm
			_ = fm.validate(sp)
		}
		cli := fm.CLI()
		fm2, err := ParseFault(cli)
		if err != nil {
			t.Fatalf("canonical spelling %q of accepted input %q does not re-parse: %v", cli, s, err)
		}
		if !reflect.DeepEqual(fm, fm2) {
			t.Fatalf("round-trip through %q changed the model:\n in  %+v\n out %+v", cli, fm, fm2)
		}
		// The canonical spelling must be a fixed point: rendering the
		// re-parsed model again yields the same string.
		if cli2 := fm2.CLI(); cli2 != cli {
			t.Fatalf("canonical spelling is not a fixed point: %q -> %q", cli, cli2)
		}
	})
}
