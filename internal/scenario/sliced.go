package scenario

import (
	"runtime"
	"sync"

	"lineartime/internal/consensus"
	"lineartime/internal/sim"
)

// This file is the batch entry into the bit-sliced engine: ExecuteBatch
// is the only caller of sim.Runtime.RunSliced in the repository, the
// batch analogue of Execute. A batch of Specs is partitioned into
// sliceable groups — same shape, so up to 64 of them ride one engine
// run as lanes — and a scalar remainder that runs through the ordinary
// Runner, so callers get one uniform call for "run all of these" and
// the engine choice stays invisible: every report and error is
// byte-for-byte what the scalar path would have produced for that Spec.

// sliceable reports whether a spec can run on the bit-sliced engine.
// The sliced path covers the flooding comparator (the one natively
// lane-parallel system, consensus.SlicedFlooding) under every
// declarative fault model; adaptive adversaries and the remaining
// protocol stacks keep the scalar engine. EXPERIMENTS.md ("Performance
// model") documents the rule.
func sliceable(sp Spec) bool {
	if sp.Problem != Consensus || sp.Algorithm != Flooding || sp.Port != MultiPort {
		return false
	}
	switch sp.Fault.Kind {
	case NoFailures, CrashSchedule, RandomCrashes, CascadeCrashes,
		TargetLittleCrashes, OmissionFaults, PartitionWindow, DelayedLinks:
		return true
	default:
		return false
	}
}

// slackOf resolves the effective round slack of a spec.
func slackOf(sp Spec) int {
	if sp.RoundSlack > 0 {
		return sp.RoundSlack
	}
	return defaultRoundSlack
}

// groupKey identifies specs that may share one sliced run: the lanes
// of a run share the system (n, t, inputs) and the round budget; the
// fault model and seed are per-lane.
type groupKey struct {
	n, t, slack int
	inputs      string
}

func keyOf(sp Spec) groupKey {
	in := make([]byte, len(sp.BoolInputs))
	for i, b := range sp.BoolInputs {
		if b {
			in[i] = 1
		}
	}
	return groupKey{n: sp.N, t: sp.T, slack: slackOf(sp), inputs: string(in)}
}

// RunSeeds runs one spec under many seeds — the multi-seed sweep and
// benchmark path. Seeds that share the spec's shape ride the sliced
// engine 64 to a machine word; the rest (non-sliceable specs, escaped
// lanes) fall back to the scalar runner. reports[i] and errs[i] belong
// to seeds[i]; exactly one of them is non-nil.
func RunSeeds(sp Spec, seeds []uint64) ([]*Report, []error) {
	specs := make([]Spec, len(seeds))
	for i, seed := range seeds {
		specs[i] = sp
		specs[i].Seed = seed
	}
	return ExecuteBatch(specs)
}

// ExecuteBatch runs a batch of specs, slicing where possible: sliceable
// specs of the same shape are grouped into 64-lane sliced engine runs,
// everything else runs through the scalar Runner. Results are returned
// in input order and are identical — reports and errors both — to
// running each spec individually through Run.
func ExecuteBatch(sps []Spec) ([]*Report, []error) {
	reports := make([]*Report, len(sps))
	errs := make([]error, len(sps))

	var scalar []int
	groups := make(map[groupKey][]int)
	var order []groupKey
	for i, sp := range sps {
		// Anything that would fail Run's preconditions goes scalar so
		// the caller sees the exact scalar error.
		if !sliceable(sp) || sp.N <= 0 || len(sp.BoolInputs) != sp.N ||
			sp.Fault.validate(sp) != nil {
			scalar = append(scalar, i)
			continue
		}
		k := keyOf(sp)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	if len(order) > 0 {
		rt := runtimes.Get().(*sim.Runtime)
		for _, k := range order {
			idx := groups[k]
			for base := 0; base < len(idx); base += sim.MaxLanes {
				end := base + sim.MaxLanes
				if end > len(idx) {
					end = len(idx)
				}
				runSlicedChunk(rt, sps, idx[base:end], reports, errs)
			}
		}
		runtimes.Put(rt)
	}

	runScalar(sps, scalar, reports, errs)
	return reports, errs
}

// runScalar runs the given spec indices through the scalar Runner,
// fanned across GOMAXPROCS workers (each worker lands on its own
// pooled Runtime via Execute). Runs are independent and deterministic,
// so scheduling cannot change any result.
func runScalar(sps []Spec, idx []int, reports []*Report, errs []error) {
	if len(idx) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 {
		for _, i := range idx {
			reports[i], errs[i] = Run(sps[i])
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i], errs[i] = Run(sps[i])
			}
		}()
	}
	for _, i := range idx {
		next <- i
	}
	close(next)
	wg.Wait()
}

// runSlicedChunk executes up to 64 same-shape specs as the lanes of one
// sliced engine run and materializes each lane into its spec's report.
// Any failure to slice — a fault without a declarative crash plan, an
// escaped lane — falls back to the scalar runner for the affected
// specs, preserving exact scalar results.
func runSlicedChunk(rt *sim.Runtime, sps []Spec, idx []int, reports []*Report, errs []error) {
	fallback := func(lanes ...int) {
		for _, lane := range lanes {
			i := idx[lane]
			reports[i], errs[i] = Run(sps[i])
		}
	}
	all := make([]int, len(idx))
	for lane := range idx {
		all[lane] = lane
	}

	shape := sps[idx[0]]
	faults := make([]sim.LinkFault, len(idx))
	for lane, i := range idx {
		sp := sps[i]
		// Flooding has no expander overlay, so little = 0 — exactly the
		// value Runner.Run passes for this stack.
		f, err := sp.Fault.LinkFault(sp.N, sp.T, 0, sp.Seed)
		if err != nil {
			fallback(all...)
			return
		}
		faults[lane] = f
	}

	sys := consensus.NewSlicedFlooding(shape.N, shape.T, len(idx), shape.BoolInputs)
	res, err := rt.RunSliced(sim.SlicedConfig{
		System:    sys,
		Lanes:     len(idx),
		MaxRounds: sys.ScheduleLength() + slackOf(shape),
		Faults:    faults,
	})
	if err != nil {
		// ErrNotSliceable and config errors: the scalar engine is the
		// authority on what the caller should see.
		fallback(all...)
		return
	}

	any0, any1 := false, false
	for _, in := range shape.BoolInputs {
		if in {
			any1 = true
		} else {
			any0 = true
		}
	}
	// Reports must be materialized before the Runtime's next sliced run:
	// the lane results alias arena memory.
	var escaped []int
	for lane, i := range idx {
		lr := &res.Lanes[lane]
		if lr.Escaped {
			escaped = append(escaped, lane)
			continue
		}
		if lr.Err != nil {
			errs[i] = lr.Err
			continue
		}
		reports[i] = laneReport(sps[i], sys, lane, lr, any0, any1)
	}
	fallback(escaped...)
}

// laneReport mirrors Runner.Run's consensus finish for one lane: same
// metrics mapping, same crash list, same agreement/validity rules over
// the lane's decisions.
func laneReport(sp Spec, sys *consensus.SlicedFlooding, lane int, lr *sim.LaneResult, any0, any1 bool) *Report {
	rep := &Report{
		Scenario:  sp.Name,
		Problem:   sp.Problem,
		Algorithm: sp.Algorithm,
		Port:      sp.Port,
		N:         sp.N,
		T:         sp.T,
		Metrics: Metrics{
			Rounds:   lr.Metrics.Rounds,
			Messages: lr.Metrics.Messages,
			Bits:     lr.Metrics.Bits,
		},
		Crashed: lr.Crashed.Elements(),
	}
	bit := uint64(1) << lane
	out := &ConsensusOutcome{
		Decisions: make([]int, sp.N),
		Agreement: true,
		Validity:  true,
	}
	first := -1
	for i := 0; i < sp.N; i++ {
		out.Decisions[i] = -1
		if lr.Crashed.Contains(i) {
			continue
		}
		decided, value := sys.DecisionLanes(i)
		if decided&bit == 0 {
			out.Agreement = false
			continue
		}
		d := 0
		if value&bit != 0 {
			d = 1
		}
		out.Decisions[i] = d
		if first < 0 {
			first = d
		} else if first != d {
			out.Agreement = false
		}
		if (d == 1 && !any1) || (d == 0 && !any0) {
			out.Validity = false
		}
	}
	rep.Consensus = out
	return rep
}
