package scenario

import (
	"runtime"
	"sync"
	"time"

	"lineartime/internal/consensus"
	"lineartime/internal/gossip"
	"lineartime/internal/obs"
	"lineartime/internal/sim"
)

// This file is the batch entry into the bit-sliced engine: ExecuteBatch
// is the only caller of sim.Runtime.RunSliced in the repository, the
// batch analogue of Execute. A batch of Specs is partitioned into
// sliceable groups — same shape, so up to 64 of them ride one engine
// run as lanes — and a scalar remainder that runs through the ordinary
// Runner, so callers get one uniform call for "run all of these" and
// the engine choice stays invisible: every report and error is
// byte-for-byte what the scalar path would have produced for that Spec.

// sliceable reports whether a spec can run on the bit-sliced engine.
// The sliced path covers the two natively lane-parallel systems — the
// flooding comparator (consensus.SlicedFlooding) and the paper's
// multi-port expander gossip (gossip.SlicedGossip) — under every
// declarative fault model (FaultModel.Declarative); adaptive
// adversaries and the remaining protocol stacks keep the scalar
// engine. EXPERIMENTS.md ("Performance model") documents the rule.
func sliceable(sp Spec) bool {
	if !sp.Fault.Declarative() {
		return false
	}
	switch {
	case sp.Problem == Consensus && sp.Algorithm == Flooding && sp.Port == MultiPort:
		return true
	case sp.Problem == Gossip && sp.Algorithm == GossipExpander && sp.Port == MultiPort:
		return true
	default:
		return false
	}
}

// batchInputsOK checks the per-problem input-length precondition the
// scalar materializers enforce; anything that fails runs scalar so the
// caller sees the exact scalar error.
func batchInputsOK(sp Spec) bool {
	switch sp.Problem {
	case Gossip:
		return len(sp.Rumors) == sp.N
	default:
		return len(sp.BoolInputs) == sp.N
	}
}

// slackOf resolves the effective round slack of a spec.
func slackOf(sp Spec) int {
	if sp.RoundSlack > 0 {
		return sp.RoundSlack
	}
	return defaultRoundSlack
}

// groupKey identifies specs that may share one sliced run: the lanes
// of a run share the system and the round budget; the fault model and
// seed are per-lane wherever the system does not depend on them.
// Flooding has no topology, so its seeds differ freely across lanes —
// that is what makes RunSeeds a single group. Gossip's overlays are
// derived from (seed, topology family, degree), so those fields join
// the key; its rumor values stay per-lane (first-write-wins updates
// make values behaviour-independent).
type groupKey struct {
	problem     Problem
	algorithm   Algorithm
	port        PortModel
	n, t, slack int
	inputs      string
	seed        uint64
	topology    TopologyKind
	implicit    bool
	degree      int
}

func keyOf(sp Spec) groupKey {
	k := groupKey{
		problem:   sp.Problem,
		algorithm: sp.Algorithm,
		port:      sp.Port,
		n:         sp.N,
		t:         sp.T,
		slack:     slackOf(sp),
	}
	if sp.Problem == Gossip {
		k.seed = sp.Seed
		k.topology = sp.Topology
		k.implicit = sp.Implicit
		k.degree = sp.Degree
		return k
	}
	in := make([]byte, len(sp.BoolInputs))
	for i, b := range sp.BoolInputs {
		if b {
			in[i] = 1
		}
	}
	k.inputs = string(in)
	return k
}

// RunSeeds runs one spec under many seeds — the multi-seed sweep and
// benchmark path. Seeds that share the spec's shape ride the sliced
// engine 64 to a machine word; the rest (non-sliceable specs, escaped
// lanes) fall back to the scalar runner. reports[i] and errs[i] belong
// to seeds[i]; exactly one of them is non-nil.
func RunSeeds(sp Spec, seeds []uint64) ([]*Report, []error) {
	specs := make([]Spec, len(seeds))
	for i, seed := range seeds {
		specs[i] = sp
		specs[i].Seed = seed
	}
	return ExecuteBatch(specs)
}

// ExecuteBatch runs a batch of specs, slicing where possible: sliceable
// specs of the same shape are grouped into 64-lane sliced engine runs,
// everything else runs through the scalar Runner. Results are returned
// in input order and are identical — reports and errors both — to
// running each spec individually through Run.
func ExecuteBatch(sps []Spec) ([]*Report, []error) {
	reports := make([]*Report, len(sps))
	errs := make([]error, len(sps))

	var scalar []int
	groups := make(map[groupKey][]int)
	var order []groupKey
	for i, sp := range sps {
		// Anything that would fail Run's preconditions goes scalar so
		// the caller sees the exact scalar error.
		if !sliceable(sp) || sp.N <= 0 || !batchInputsOK(sp) ||
			sp.Fault.validate(sp) != nil {
			scalar = append(scalar, i)
			continue
		}
		k := keyOf(sp)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	if len(order) > 0 {
		rt := runtimes.Get().(*sim.Runtime)
		for _, k := range order {
			idx := groups[k]
			if k.problem == Gossip && len(idx) < 2 {
				// A gossip group needs a shared topology; a lone lane
				// gains nothing from the word engine (its n² plane setup
				// and n-word merges serve one replica), so the scalar
				// path is both faster and trivially exact.
				scalar = append(scalar, idx...)
				continue
			}
			for base := 0; base < len(idx); base += sim.MaxLanes {
				end := base + sim.MaxLanes
				if end > len(idx) {
					end = len(idx)
				}
				runSlicedChunk(rt, sps, idx[base:end], reports, errs)
			}
		}
		runtimes.Put(rt)
	}

	runScalar(sps, scalar, reports, errs)
	return reports, errs
}

// runScalar runs the given spec indices through the scalar Runner,
// fanned across GOMAXPROCS workers (each worker lands on its own
// pooled Runtime via Execute). Runs are independent and deterministic,
// so scheduling cannot change any result.
func runScalar(sps []Spec, idx []int, reports []*Report, errs []error) {
	if len(idx) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 {
		for _, i := range idx {
			reports[i], errs[i] = Run(sps[i])
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i], errs[i] = Run(sps[i])
			}
		}()
	}
	for _, i := range idx {
		next <- i
	}
	close(next)
	wg.Wait()
}

// runSlicedChunk executes up to 64 same-shape specs as the lanes of one
// sliced engine run and materializes each lane into its spec's report.
// Any failure to slice — a fault without a declarative crash plan, an
// escaped lane, a topology that cannot be built — falls back to the
// scalar runner for the affected specs, preserving exact scalar
// results.
func runSlicedChunk(rt *sim.Runtime, sps []Spec, idx []int, reports []*Report, errs []error) {
	if sps[idx[0]].Problem == Gossip {
		runSlicedGossipChunk(rt, sps, idx, reports, errs)
		return
	}
	fallback := func(lanes ...int) {
		for _, lane := range lanes {
			i := idx[lane]
			reports[i], errs[i] = Run(sps[i])
		}
	}
	all := make([]int, len(idx))
	for lane := range idx {
		all[lane] = lane
	}

	shape := sps[idx[0]]
	// The chunk reports through the first spec's tracer: lanes of one
	// group share the run, so per-lane attribution is not meaningful.
	tr := shape.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	faults := make([]sim.LinkFault, len(idx))
	for lane, i := range idx {
		sp := sps[i]
		// Flooding has no expander overlay, so little = 0 — exactly the
		// value Runner.Run passes for this stack.
		f, err := sp.Fault.LinkFault(sp.N, sp.T, 0, sp.Seed)
		if err != nil {
			fallback(all...)
			return
		}
		faults[lane] = f
	}

	sys := consensus.NewSlicedFlooding(shape.N, shape.T, len(idx), shape.BoolInputs)
	if tr != nil {
		tr.StageDuration(obs.StageSetup, time.Since(t0))
	}
	res, err := rt.RunSliced(sim.SlicedConfig{
		System:    sys,
		Lanes:     len(idx),
		MaxRounds: sys.ScheduleLength() + slackOf(shape),
		Faults:    faults,
		Tracer:    tr,
	})
	if err != nil {
		// ErrNotSliceable and config errors: the scalar engine is the
		// authority on what the caller should see.
		fallback(all...)
		return
	}

	any0, any1 := false, false
	for _, in := range shape.BoolInputs {
		if in {
			any1 = true
		} else {
			any0 = true
		}
	}
	// Reports must be materialized before the Runtime's next sliced run:
	// the lane results alias arena memory.
	var t1 time.Time
	if tr != nil {
		t1 = time.Now()
	}
	var escaped []int
	for lane, i := range idx {
		lr := &res.Lanes[lane]
		if lr.Escaped {
			escaped = append(escaped, lane)
			continue
		}
		if lr.Err != nil {
			errs[i] = lr.Err
			continue
		}
		reports[i] = laneReport(sps[i], sys, lane, lr, any0, any1)
	}
	if tr != nil {
		tr.StageDuration(obs.StageMerge, time.Since(t1))
	}
	fallback(escaped...)
}

// runSlicedGossipChunk is runSlicedChunk's gossip arm: the lanes share
// one expander topology (identical by group key) and one
// gossip.SlicedGossip machine, with per-lane fault layers.
func runSlicedGossipChunk(rt *sim.Runtime, sps []Spec, idx []int, reports []*Report, errs []error) {
	fallback := func(lanes ...int) {
		for _, lane := range lanes {
			i := idx[lane]
			reports[i], errs[i] = Run(sps[i])
		}
	}
	all := make([]int, len(idx))
	for lane := range idx {
		all[lane] = lane
	}

	shape := sps[idx[0]]
	tr := shape.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	top, err := shape.newTopology(shape.N, shape.T)
	if err != nil {
		fallback(all...)
		return
	}
	faults := make([]sim.LinkFault, len(idx))
	maxDelay := 0
	for lane, i := range idx {
		sp := sps[i]
		f, err := sp.Fault.LinkFault(sp.N, sp.T, top.L, sp.Seed)
		if err != nil {
			fallback(all...)
			return
		}
		faults[lane] = f
		if lf, ok := f.(sim.LinkFilter); ok {
			if d := lf.MaxDelay(); d > maxDelay {
				maxDelay = d
			}
		}
	}

	sys, err := gossip.NewSlicedGossip(top, len(idx), maxDelay)
	if err != nil {
		fallback(all...)
		return
	}
	if tr != nil {
		tr.StageDuration(obs.StageSetup, time.Since(t0))
	}
	res, err := rt.RunSliced(sim.SlicedConfig{
		System:    sys,
		Lanes:     len(idx),
		MaxRounds: sys.ScheduleLength() + slackOf(shape),
		Faults:    faults,
		Tracer:    tr,
	})
	if err != nil {
		fallback(all...)
		return
	}

	var t1 time.Time
	if tr != nil {
		t1 = time.Now()
	}
	var escaped []int
	for lane, i := range idx {
		lr := &res.Lanes[lane]
		if lr.Escaped {
			escaped = append(escaped, lane)
			continue
		}
		if lr.Err != nil {
			errs[i] = lr.Err
			continue
		}
		reports[i] = gossipLaneReport(sps[i], sys, lane, lr)
	}
	if tr != nil {
		tr.StageDuration(obs.StageMerge, time.Since(t1))
	}
	fallback(escaped...)
}

// laneReport mirrors Runner.Run's consensus finish for one lane: same
// metrics mapping, same crash list, same agreement/validity rules over
// the lane's decisions.
func laneReport(sp Spec, sys *consensus.SlicedFlooding, lane int, lr *sim.LaneResult, any0, any1 bool) *Report {
	rep := &Report{
		Scenario:  sp.Name,
		Problem:   sp.Problem,
		Algorithm: sp.Algorithm,
		Port:      sp.Port,
		N:         sp.N,
		T:         sp.T,
		Metrics: Metrics{
			Rounds:   lr.Metrics.Rounds,
			Messages: lr.Metrics.Messages,
			Bits:     lr.Metrics.Bits,
		},
		Crashed: lr.Crashed.Elements(),
	}
	bit := uint64(1) << lane
	out := &ConsensusOutcome{
		Decisions: make([]int, sp.N),
		Agreement: true,
		Validity:  true,
	}
	first := -1
	for i := 0; i < sp.N; i++ {
		out.Decisions[i] = -1
		if lr.Crashed.Contains(i) {
			continue
		}
		decided, value := sys.DecisionLanes(i)
		if decided&bit == 0 {
			out.Agreement = false
			continue
		}
		d := 0
		if value&bit != 0 {
			d = 1
		}
		out.Decisions[i] = d
		if first < 0 {
			first = d
		} else if first != d {
			out.Agreement = false
		}
		if (d == 1 && !any1) || (d == 0 && !any0) {
			out.Validity = false
		}
	}
	rep.Consensus = out
	return rep
}

// gossipLaneReport mirrors Runner.Run's gossip finish for one lane:
// the same metrics (with the per-part attribution the scalar
// PartLabeler would have recorded, reconstructed from the per-round
// series), the same extant views (rumor values come from the lane's
// inputs — first-write-wins makes every copy of node j's pair equal to
// j's own rumor) and the same completeness rule.
func gossipLaneReport(sp Spec, sys *gossip.SlicedGossip, lane int, lr *sim.LaneResult) *Report {
	rep := &Report{
		Scenario:  sp.Name,
		Problem:   sp.Problem,
		Algorithm: sp.Algorithm,
		Port:      sp.Port,
		N:         sp.N,
		T:         sp.T,
		Metrics: Metrics{
			Rounds:   lr.Metrics.Rounds,
			Messages: lr.Metrics.Messages,
			Bits:     lr.Metrics.Bits,
		},
		Crashed: lr.Crashed.Elements(),
	}
	// The scalar engine labels a round's traffic with the schedule
	// part at the accounting point; rounds without traffic contribute
	// nothing, and a run with no labeled traffic leaves PerPart nil
	// (toMetrics copies only non-empty maps).
	var perPart map[string]int64
	for r, c := range lr.Metrics.PerRoundMessages {
		if c == 0 {
			continue
		}
		if label := sys.PartAt(r); label != "" {
			if perPart == nil {
				perPart = make(map[string]int64)
			}
			perPart[label] += c
		}
	}
	rep.Metrics.PerPart = perPart

	bit := uint64(1) << lane
	out := &GossipOutcome{
		Extant:   make([]map[int]uint64, sp.N),
		Complete: true,
	}
	for i := 0; i < sp.N; i++ {
		if lr.Crashed.Contains(i) {
			continue
		}
		// Pre-size the view to its exact cardinality: the views carry
		// n entries each at full propagation, and letting the map grow
		// incrementally costs more than the whole sliced run.
		count := 0
		for j := 0; j < sp.N; j++ {
			if sys.Known(i, j)&bit != 0 {
				count++
			}
		}
		view := make(map[int]uint64, count)
		for j := 0; j < sp.N; j++ {
			if sys.Known(i, j)&bit != 0 {
				view[j] = sp.Rumors[j]
			} else if out.Complete && !lr.Crashed.Contains(j) {
				out.Complete = false
			}
		}
		out.Extant[i] = view
	}
	rep.Gossip = out
	return rep
}
