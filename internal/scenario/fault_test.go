package scenario

import (
	"testing"

	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func TestFaultModelAdversaryKinds(t *testing.T) {
	cases := []struct {
		name    string
		fault   FaultModel
		wantNil bool
		wantTyp interface{}
	}{
		{"none", FaultModel{}, true, nil},
		{"byzantine", FaultModel{Kind: ByzantineFaults, Strategy: Silence}, true, nil},
		{"schedule", FaultModel{Kind: CrashSchedule, Schedule: []CrashEvent{{Node: 1, Round: 0, Keep: -1}}}, false, (*crash.Schedule)(nil)},
		{"random", FaultModel{Kind: RandomCrashes, Count: 3, Horizon: 10}, false, (*crash.Random)(nil)},
		{"cascade", FaultModel{Kind: CascadeCrashes, Count: 3, Keep: 1}, false, (*crash.Cascade)(nil)},
		{"target-little", FaultModel{Kind: TargetLittleCrashes, Count: 3}, false, (*crash.TargetLittle)(nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			adv, err := tc.fault.LinkFault(20, 4, 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantNil {
				if adv != nil {
					t.Fatalf("adversary = %T, want nil", adv)
				}
				return
			}
			if adv == nil {
				t.Fatal("adversary is nil")
			}
			switch tc.wantTyp.(type) {
			case *crash.Schedule:
				if _, ok := adv.(*crash.Schedule); !ok {
					t.Fatalf("adversary = %T", adv)
				}
			case *crash.Random:
				if _, ok := adv.(*crash.Random); !ok {
					t.Fatalf("adversary = %T", adv)
				}
			case *crash.Cascade:
				if _, ok := adv.(*crash.Cascade); !ok {
					t.Fatalf("adversary = %T", adv)
				}
			case *crash.TargetLittle:
				if _, ok := adv.(*crash.TargetLittle); !ok {
					t.Fatalf("adversary = %T", adv)
				}
			}
		})
	}
}

// TestFaultModelRandomSeedDerivation pins the historical adversary
// seed offset: a random fault model without an explicit seed must
// derive runSeed+101, the offset every committed experiment artifact
// was generated with.
func TestFaultModelRandomSeedDerivation(t *testing.T) {
	derived, err := FaultModel{Kind: RandomCrashes, Count: 4, Horizon: 16}.LinkFault(40, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := FaultModel{Kind: RandomCrashes, Count: 4, Horizon: 16, Seed: 102}.LinkFault(40, 4, 0, 9999)
	if err != nil {
		t.Fatal(err)
	}
	reference := crash.NewRandom(40, 4, 16, 102)
	if !sameCrashPattern(derived, reference, 40, 20) || !sameCrashPattern(explicit, reference, 40, 20) {
		t.Fatal("random adversary seed derivation diverged from crash.NewRandom(n, f, horizon, runSeed+101)")
	}
}

// sameCrashPattern compares which (round, node) pairs two adversaries
// crash over a window, using empty outboxes.
func sameCrashPattern(a, b sim.LinkFault, n, rounds int) bool {
	for r := 0; r < rounds; r++ {
		for id := 0; id < n; id++ {
			_, ca := a.FilterSend(r, id, nil)
			_, cb := b.FilterSend(r, id, nil)
			if ca != cb {
				return false
			}
		}
	}
	return true
}

func TestFaultModelRandomClampsToT(t *testing.T) {
	adv, err := FaultModel{Kind: RandomCrashes, Count: 100, Horizon: 1}.LinkFault(20, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for id := 0; id < 20; id++ {
		if _, crashed := adv.FilterSend(0, id, nil); crashed {
			crashes++
		}
	}
	if crashes > 3 {
		t.Fatalf("%d crashes exceed the fault bound t=3", crashes)
	}
}

func TestFaultModelValidation(t *testing.T) {
	byzSpec := MustLookup("byzantine/ab-consensus").Spec(20, 3, 1)
	tooMany := FaultModel{Kind: ByzantineFaults, Corrupted: []int{0, 1, 2, 3}}
	if err := tooMany.validate(byzSpec); err == nil {
		t.Fatal("corrupted > t accepted")
	}
	outOfRange := FaultModel{Kind: ByzantineFaults, Corrupted: []int{25}}
	if err := outOfRange.validate(byzSpec); err == nil {
		t.Fatal("out-of-range corrupted node accepted")
	}
	wrongProblem := MustLookup("consensus/few-crashes").Spec(20, 3, 1)
	if err := (FaultModel{Kind: ByzantineFaults}).validate(wrongProblem); err == nil {
		t.Fatal("byzantine fault model accepted on a crash problem")
	}
}
