// Package scenario is the declarative layer between the public API /
// commands and the simulator: a Scenario is one cell of the paper's
// evaluation matrix — problem × algorithm × fault model × port model ×
// topology × size — expressed as a typed Spec, and a single generic
// Runner materializes any Spec into a sim.Config, dispatches it through
// the one engine choke point (Execute), and returns a unified Report.
//
// The package also keeps a registry of named scenario definitions
// (registry.go) covering every protocol stack the paper evaluates, so
// the commands enumerate scenarios instead of hand-wiring each cell:
// cmd/linearsim resolves its flags to a registry name, and the
// experiment tables of cmd/sweep and cmd/table1 are built from the
// registry by the scenario/experiments subpackage. Adding a workload
// means adding a registry entry (plus, for a new experiment table, one
// experiments definition) — not editing three commands.
//
// Layering: scenario sits above internal/sim and the protocol packages
// (consensus, gossip, checkpoint, byzantine, singleport, crash) and
// below the root API and cmd/. Everything outside internal/sim that
// needs an engine run goes through Execute, which is the only caller of
// sim.Run and sim.RunParallel in the repository.
package scenario

import (
	"lineartime/internal/obs"
	"lineartime/internal/sim"
)

// Problem identifies which of the paper's problems a scenario solves.
// AlmostEverywhere and SpreadCommonValue are the §3/§4 subroutines,
// exposed as scenarios because the paper evaluates them standalone
// (experiments E2 and E3).
type Problem int

// The paper's problems.
const (
	Consensus Problem = iota + 1
	Gossip
	Checkpointing
	ByzantineConsensus
	AlmostEverywhere
	SpreadCommonValue
	MajorityVote
)

// String implements fmt.Stringer.
func (p Problem) String() string {
	switch p {
	case Consensus:
		return "consensus"
	case Gossip:
		return "gossip"
	case Checkpointing:
		return "checkpoint"
	case ByzantineConsensus:
		return "byzantine"
	case AlmostEverywhere:
		return "aea"
	case SpreadCommonValue:
		return "scv"
	case MajorityVote:
		return "majority"
	default:
		return "unknown"
	}
}

// Algorithm names the per-problem algorithm or baseline. The values
// match the CLI spellings of cmd/linearsim.
type Algorithm string

// The algorithms and baselines of the paper's evaluation matrix.
const (
	// Consensus (crash faults).
	FewCrashes          Algorithm = "few-crashes"          // §4.3
	ManyCrashes         Algorithm = "many-crashes"         // §4.4
	Flooding            Algorithm = "flooding"             // Θ(n²) comparator
	SinglePortLinear    Algorithm = "single-port"          // §8 Linear-Consensus
	EarlyStopping       Algorithm = "early-stopping"       // min(f+3,t+3) comparator
	RotatingCoordinator Algorithm = "rotating-coordinator" // t+1-round comparator
	// Gossip.
	GossipExpander Algorithm = "gossip"            // §5
	GossipAllToAll Algorithm = "gossip-all-to-all" // Θ(n²) comparator
	// Checkpointing.
	CheckpointExpander Algorithm = "checkpoint"        // §6
	CheckpointDirect   Algorithm = "checkpoint-direct" // O(tn) comparator
	// Authenticated-Byzantine consensus.
	ABConsensus    Algorithm = "ab-consensus"     // §7
	DolevStrongAll Algorithm = "dolev-strong-all" // all-nodes comparator
	// Subroutines (§3, §4).
	AEA Algorithm = "aea"
	SCV Algorithm = "scv"
	// Majority voting (§9 extension).
	Majority Algorithm = "majority"
)

// PortModel selects the communication model of §2.
type PortModel int

// The two port models.
const (
	// MultiPort: a node may send to and receive from any set of nodes
	// in one round.
	MultiPort PortModel = iota
	// SinglePort: at most one send and one poll per node per round.
	SinglePort
)

// String implements fmt.Stringer.
func (p PortModel) String() string {
	if p == SinglePort {
		return "single-port"
	}
	return "multi-port"
}

// ByzantineStrategy selects the behaviour of corrupted nodes.
type ByzantineStrategy int

// Available Byzantine behaviours.
const (
	// Silence: corrupted nodes send nothing.
	Silence ByzantineStrategy = iota + 1
	// Equivocate: corrupted sources send conflicting signed values.
	Equivocate
	// Spam: corrupted nodes flood fabricated sets and inquiries.
	Spam
)

// String implements fmt.Stringer.
func (s ByzantineStrategy) String() string {
	switch s {
	case Silence:
		return "silence"
	case Equivocate:
		return "equivocate"
	case Spam:
		return "spam"
	default:
		return "unknown"
	}
}

// Parallelism selects the engine: the zero value is the sequential
// engine; Enabled dispatches to the sharded worker pool (multi-port
// only), with Workers <= 0 meaning GOMAXPROCS.
type Parallelism struct {
	Enabled bool
	Workers int
}

// Serial is the sequential engine.
var Serial = Parallelism{}

// TopologyKind names the overlay construction family of a scenario.
type TopologyKind string

// The topology families.
const (
	// TopologyRandomRegular is the default pairing-model random
	// regular family, Ramanujan-verified and always materialized.
	TopologyRandomRegular TopologyKind = ""
	// TopologyShift is the seeded shift (circulant) family: locally
	// computable neighbor lists, so it is the family that can run
	// implicitly — O(d) generator state in place of O(n·d) adjacency.
	TopologyShift TopologyKind = "shift"
)

// Parallel selects the pooled engine with the given worker count
// (<= 0 means GOMAXPROCS).
func Parallel(workers int) Parallelism { return Parallelism{Enabled: true, Workers: workers} }

// Spec is one fully materializable scenario: a cell of the evaluation
// matrix at a concrete size, with concrete inputs and fault model.
// Definitions in the registry produce canonical Specs via
// Definition.Spec; callers adjust fields before handing the Spec to
// Run.
type Spec struct {
	// Name is the registry name that produced the spec (informational;
	// copied into the Report).
	Name      string
	Problem   Problem
	Algorithm Algorithm
	Port      PortModel

	// N is the number of nodes, T the fault bound.
	N, T int
	// Seed derives overlays, adversaries and keys.
	Seed uint64
	// Degree overrides the little-overlay degree (0 = default).
	Degree int
	// RoundSlack is added to the protocol schedule length to form
	// sim.Config.MaxRounds (0 = the default of 8).
	RoundSlack int

	// Topology selects the overlay construction family (zero value =
	// the default materialized random regular family).
	Topology TopologyKind
	// Implicit keeps every overlay of the run unmaterialized:
	// neighbor lists are recomputed on demand from the seeded
	// construction instead of stored, cutting resident topology state
	// from O(n·d) words to O(d). Setting Implicit implies
	// TopologyShift (the only locally computable family); results are
	// byte-identical to a materialized TopologyShift run.
	Implicit bool

	// Fault is the scenario's fault model (zero value = no failures).
	Fault FaultModel

	// BoolInputs are the per-node inputs of consensus, AEA (input
	// bit), SCV (has-value flag) and majority voting (the vote).
	// Length N when set.
	BoolInputs []bool
	// Rumors are the per-node gossip inputs. Length N when set.
	Rumors []uint64
	// Values are the per-node Byzantine-consensus inputs. Length N
	// when set.
	Values []uint64

	// Exec selects the engine.
	Exec Parallelism

	// Tracer optionally receives stage-level timings (setup, rounds,
	// decode, merge) and the run outcome; it works on every engine.
	// Runtime-only: excluded from Key, so traced and untraced runs of
	// the same scenario share a cache identity.
	Tracer obs.RunTracer
	// Observer optionally receives per-message engine events
	// (sequential engine only — see sim.Observer). Runtime-only:
	// excluded from Key like Tracer.
	Observer sim.Observer
}

// Metrics is the unified performance envelope of a run: the paper's
// two measures plus the Byzantine split and the per-part breakdown.
// The JSON form is the wire encoding of the serving layer and of
// linearsim -json.
type Metrics struct {
	Rounds      int              `json:"rounds"`
	Messages    int64            `json:"messages"`
	Bits        int64            `json:"bits"`
	ByzMessages int64            `json:"byz_messages,omitempty"`
	ByzBits     int64            `json:"byz_bits,omitempty"`
	PerPart     map[string]int64 `json:"per_part,omitempty"`
}

// Report is the unified outcome envelope of a run. Exactly one of the
// problem-specific sections is non-nil, matching Spec.Problem. The
// JSON form is the wire encoding of the serving layer and of
// linearsim -json.
type Report struct {
	Scenario  string    `json:"scenario"`
	Problem   Problem   `json:"problem"`
	Algorithm Algorithm `json:"algorithm"`
	Port      PortModel `json:"port"`
	N         int       `json:"n"`
	T         int       `json:"t"`
	Metrics   Metrics   `json:"metrics"`
	// Crashed lists the nodes the adversary crashed.
	Crashed []int `json:"crashed,omitempty"`

	Consensus  *ConsensusOutcome  `json:"consensus,omitempty"`
	Gossip     *GossipOutcome     `json:"gossip,omitempty"`
	Checkpoint *CheckpointOutcome `json:"checkpoint,omitempty"`
	Byzantine  *ByzantineOutcome  `json:"byzantine,omitempty"`
	Subroutine *SubroutineOutcome `json:"subroutine,omitempty"`
	Majority   *MajorityOutcome   `json:"majority,omitempty"`
}

// ConsensusOutcome summarizes a consensus run against the §2
// correctness conditions.
type ConsensusOutcome struct {
	// Decisions[i] is 0 or 1, or -1 for nodes that crashed or did not
	// decide.
	Decisions []int `json:"decisions"`
	Agreement bool  `json:"agreement"`
	Validity  bool  `json:"validity"`
}

// GossipOutcome summarizes a gossip run.
type GossipOutcome struct {
	// Extant[i] maps node names to rumors as decided by node i (nil
	// for crashed nodes).
	Extant []map[int]uint64 `json:"extant"`
	// Complete reports whether every surviving node's extant set
	// contains every surviving node's rumor.
	Complete bool `json:"complete"`
}

// CheckpointOutcome summarizes a checkpointing run.
type CheckpointOutcome struct {
	// ExtantSet is the agreed set of node names (nil when agreement
	// failed).
	ExtantSet []int `json:"extant_set"`
	Agreement bool  `json:"agreement"`
}

// ByzantineOutcome summarizes an authenticated-Byzantine consensus
// run.
type ByzantineOutcome struct {
	// L is the little-committee size of the §7 construction.
	L int `json:"l"`
	// Decisions[i] holds honest node i's decision; corrupted nodes
	// have Decided[i] = false.
	Decisions []uint64 `json:"decisions"`
	Decided   []bool   `json:"decided"`
	Agreement bool     `json:"agreement"`
}

// SubroutineOutcome summarizes an AEA or SCV run.
type SubroutineOutcome struct {
	// Deciders counts the non-crashed nodes that decided.
	Deciders int `json:"deciders"`
	// AllDecided reports whether every node (crashed or not) decided.
	AllDecided bool `json:"all_decided"`
}

// MajorityOutcome summarizes a §9 majority-vote run.
type MajorityOutcome struct {
	// YesWins is the agreed verdict; YesVotes/Ballots the agreed
	// tally.
	YesWins  bool `json:"yes_wins"`
	YesVotes int  `json:"yes_votes"`
	Ballots  int  `json:"ballots"`
	// Agreement reports whether all surviving nodes reached the same
	// verdict and tally.
	Agreement bool `json:"agreement"`
}
