package scenario

import (
	"strings"
	"testing"
)

// TestKeyStableAndDistinct checks the two properties the result cache
// rests on: the key is a pure function of the spec (same spec, same
// key — across calls and across processes, pinned by the registry
// golden), and every run-determining dimension separates keys.
func TestKeyStableAndDistinct(t *testing.T) {
	base := MustLookup("consensus/few-crashes").Spec(60, 10, 1)
	if got, again := base.Key(), base.Key(); got != again {
		t.Fatalf("Key not deterministic: %s vs %s", got, again)
	}
	if !strings.HasPrefix(base.Key(), "k1:") || len(base.Key()) != 3+64 {
		t.Fatalf("Key format drifted: %s", base.Key())
	}

	mutations := map[string]func(*Spec){
		"name":       func(sp *Spec) { sp.Name = "other" },
		"problem":    func(sp *Spec) { sp.Problem = Gossip },
		"algorithm":  func(sp *Spec) { sp.Algorithm = ManyCrashes },
		"port":       func(sp *Spec) { sp.Port = SinglePort },
		"n":          func(sp *Spec) { sp.N = 61 },
		"t":          func(sp *Spec) { sp.T = 11 },
		"seed":       func(sp *Spec) { sp.Seed = 2 },
		"degree":     func(sp *Spec) { sp.Degree = 4 },
		"roundslack": func(sp *Spec) { sp.RoundSlack = 12 },
		"fault-kind": func(sp *Spec) { sp.Fault.Kind = OmissionFaults },
		"fault-rate": func(sp *Spec) { sp.Fault.Rate = 0.01 },
		"fault-schedule": func(sp *Spec) {
			sp.Fault.Schedule = []CrashEvent{{Node: 1, Round: 2, Keep: -1}}
		},
		"fault-corrupted": func(sp *Spec) { sp.Fault.Corrupted = []int{3} },
		"fault-window":    func(sp *Spec) { sp.Fault.WindowStart = 1 },
		"fault-delay":     func(sp *Spec) { sp.Fault.Delay = 2 },
		"fault-seed":      func(sp *Spec) { sp.Fault.Seed = 9 },
		"bool-input":      func(sp *Spec) { sp.BoolInputs[5] = !sp.BoolInputs[5] },
		"rumors":          func(sp *Spec) { sp.Rumors = []uint64{1} },
		"values":          func(sp *Spec) { sp.Values = []uint64{1} },
	}
	for name, mutate := range mutations {
		sp := MustLookup("consensus/few-crashes").Spec(60, 10, 1)
		mutate(&sp)
		if sp.Key() == base.Key() {
			t.Errorf("mutation %q did not change the key", name)
		}
	}
}

// TestKeyIgnoresExec pins that the engine choice is not part of a
// run's identity: the cross-engine equivalence suite guarantees
// sequential and parallel runs agree, so a cache entry serves both.
func TestKeyIgnoresExec(t *testing.T) {
	serial := MustLookup("consensus/few-crashes").Spec(60, 10, 1)
	parallel := serial
	parallel.Exec = Parallel(4)
	if serial.Key() != parallel.Key() {
		t.Fatalf("Exec leaked into the key: %s vs %s", serial.Key(), parallel.Key())
	}
}

// TestKeyNoLengthAliasing checks that the length-prefixed encoding
// keeps adjacent variable-length fields apart: shifting a boundary
// between inputs of equal total content must change the key.
func TestKeyNoLengthAliasing(t *testing.T) {
	a := Spec{Name: "ab", Algorithm: "c"}
	b := Spec{Name: "a", Algorithm: "bc"}
	if a.Key() == b.Key() {
		t.Fatal("name/algorithm boundary aliased")
	}
	c := Spec{Rumors: []uint64{1, 2}}
	d := Spec{Rumors: []uint64{1}, Values: []uint64{2}}
	if c.Key() == d.Key() {
		t.Fatal("rumors/values boundary aliased")
	}
}
