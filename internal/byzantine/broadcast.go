package byzantine

import (
	"lineartime/internal/auth"
	"lineartime/internal/sim"
)

// DSBroadcast is the Dolev–Strong authenticated broadcast [24] as a
// standalone primitive: one designated source, all n nodes participate,
// t+2 rounds. Honest guarantees: (a) if the source is honest, every
// honest node outputs the source's value; (b) honest nodes output the
// same thing even under a Byzantine source — either one value or the
// null marker when the source provably equivocated.
//
// AB-Consensus embeds 5t of these among the little nodes; the
// standalone form is the unit under test for the signature-chain logic
// and a usable primitive in its own right (e.g. configuration
// distribution with one trusted-but-verify publisher).
type DSBroadcast struct {
	id     int
	n, t   int
	source int
	auth   *auth.Authority
	signer *auth.Signer

	value    uint64 // source's input
	accepted []uint64
	pending  []Relay

	output   uint64
	hasValue bool // exactly one accepted value
	done     bool
	halted   bool
}

// NewDSBroadcast creates the machine for node id among n nodes with
// fault bound t; source is the broadcasting node and value its input
// (ignored at non-sources).
func NewDSBroadcast(id, n, t, source int, authority *auth.Authority, signer *auth.Signer, value uint64) *DSBroadcast {
	d := &DSBroadcast{
		id: id, n: n, t: t, source: source,
		auth: authority, signer: signer, value: value,
	}
	if id == source {
		d.accepted = []uint64{value}
	}
	return d
}

// ScheduleLength returns the fixed round count, t + 2.
func (d *DSBroadcast) ScheduleLength() int { return d.t + 2 }

// Output returns the broadcast result: (value, true, done) when one
// value was accepted, (0, false, done) for the null outcome.
func (d *DSBroadcast) Output() (value uint64, ok, done bool) {
	return d.output, d.hasValue, d.done
}

func (d *DSBroadcast) everyone() []int {
	out := make([]int, 0, d.n-1)
	for i := 0; i < d.n; i++ {
		if i != d.id {
			out = append(out, i)
		}
	}
	return out
}

// Send implements sim.Protocol.
func (d *DSBroadcast) Send(round int) []sim.Envelope {
	var batch RelayBatch
	switch {
	case round == 0 && d.id == d.source:
		batch.Items = []Relay{{
			Source: d.source,
			Value:  d.value,
			Chain:  []auth.Signature{d.signer.Sign(auth.ValueMessage(d.source, d.value))},
		}}
	case round > 0 && round < d.ScheduleLength() && len(d.pending) > 0:
		batch.Items = d.pending
		d.pending = nil
	default:
		return nil
	}
	targets := d.everyone()
	out := make([]sim.Envelope, 0, len(targets))
	for _, to := range targets {
		out = append(out, sim.Envelope{From: d.id, To: to, Payload: batch})
	}
	return out
}

// Deliver implements sim.Protocol.
func (d *DSBroadcast) Deliver(round int, inbox []sim.Envelope) {
	for _, env := range inbox {
		batch, ok := env.Payload.(RelayBatch)
		if !ok {
			continue
		}
		for _, item := range batch.Items {
			if item.Source != d.source || len(item.Chain) < round+1 {
				continue
			}
			if len(item.Chain) == 0 || item.Chain[0].Signer != d.source {
				continue
			}
			if !d.validChain(item) {
				continue
			}
			if containsValue(d.accepted, item.Value) || len(d.accepted) >= 2 {
				continue
			}
			d.accepted = append(d.accepted, item.Value)
			if round+1 < d.ScheduleLength() && !chainHasSigner(item.Chain, d.id) {
				d.pending = append(d.pending, Relay{
					Source: d.source,
					Value:  item.Value,
					Chain: append(append([]auth.Signature(nil), item.Chain...),
						d.signer.Sign(auth.ValueMessage(d.source, item.Value))),
				})
			}
		}
	}
	if round == d.ScheduleLength()-1 {
		if len(d.accepted) == 1 {
			d.output = d.accepted[0]
			d.hasValue = true
		}
		d.done = true
		d.halted = true
	}
}

func (d *DSBroadcast) validChain(item Relay) bool {
	msg := auth.ValueMessage(item.Source, item.Value)
	seen := make(map[int]bool, len(item.Chain))
	for _, sig := range item.Chain {
		if sig.Signer < 0 || sig.Signer >= d.n || seen[sig.Signer] {
			return false
		}
		seen[sig.Signer] = true
		if !d.auth.Verify(msg, sig) {
			return false
		}
	}
	return true
}

// Halted implements sim.Protocol.
func (d *DSBroadcast) Halted() bool { return d.halted }

var _ sim.Protocol = (*DSBroadcast)(nil)
