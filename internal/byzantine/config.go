// Package byzantine implements the authenticated-Byzantine-fault
// algorithms of §7: the Dolev–Strong broadcast sub-routine
// (DS-algorithm, run in parallel by the little nodes) and algorithm
// AB-Consensus (Figure 7, Theorem 11: consensus for t < n/2 in O(t)
// rounds with O(t² + n) messages sent by non-faulty nodes), plus the
// all-nodes Dolev–Strong comparator and concrete Byzantine node
// behaviours (silent, equivocating, spamming).
package byzantine

import (
	"fmt"
	"math"

	"lineartime/internal/auth"
	"lineartime/internal/expander"
)

// Config is the shared, publicly-known configuration of one
// AB-Consensus system: identities, overlays and schedule.
type Config struct {
	N, T int
	// L is the number of little nodes: min(5t, n), at least 5.
	L int
	// Authority is the PKI simulation.
	Authority *auth.Authority
	// Broadcast is the expander H used by Part 3.
	Broadcast *expander.Overlay

	// Endorsements is the number of little-node signatures a common
	// set must carry to be "authenticated": L − t (the paper's 4t when
	// L = 5t), at least 1.
	Endorsements int

	// Schedule boundaries (rounds).
	dsRounds   int // Part 1a: parallel Dolev–Strong, t+2 rounds
	endorseEnd int // Part 1b: one endorsement round
	relatedEnd int // Part 2: one related-notification round
	part3End   int // Part 3: slow propagation over H
	part4End   int // Part 4: inquiry + response
}

// NewConfig builds the system configuration for n nodes, at most t
// authenticated-Byzantine faults, t < n/2.
func NewConfig(n, t int, seed uint64) (*Config, error) {
	return NewConfigMode(n, t, seed, expander.Mode{})
}

// NewConfigMode is NewConfig with an explicit overlay construction
// mode (family and implicit/materialized choice) for the broadcast
// expander H.
func NewConfigMode(n, t int, seed uint64, mode expander.Mode) (*Config, error) {
	if n < 2 {
		return nil, fmt.Errorf("byzantine: need n ≥ 2, got %d", n)
	}
	if t < 0 || 2*t >= n {
		return nil, fmt.Errorf("byzantine: need t < n/2, got t=%d n=%d", t, n)
	}
	l := 5 * t
	if l < 5 {
		l = 5
	}
	if l > n {
		l = n
	}
	endorse := l - t
	if endorse < 1 {
		endorse = 1
	}
	h, err := expander.NewBroadcastGraphMode(n, seed+21, mode)
	if err != nil {
		return nil, err
	}
	c := &Config{
		N:            n,
		T:            t,
		L:            l,
		Authority:    auth.NewAuthority(n, seed),
		Broadcast:    h,
		Endorsements: endorse,
	}
	c.dsRounds = t + 2
	c.endorseEnd = c.dsRounds + 1
	c.relatedEnd = c.endorseEnd + 1
	c.part3End = c.relatedEnd + c.part3Rounds()
	c.part4End = c.part3End + 2
	return c, nil
}

// part3Rounds mirrors Spread-Common-Value Part 1:
// ⌈log_{3/2}((2n/5)/max{t, n/t})⌉ rounds, floored at ⌈lg n⌉ so the
// scaled-degree H is always covered.
func (c *Config) part3Rounds() int {
	t := c.T
	if t < 1 {
		t = 1
	}
	denom := math.Max(float64(t), float64(c.N)/float64(t))
	k := int(math.Ceil(math.Log(2*float64(c.N)/5/denom) / math.Log(1.5)))
	if k < 0 {
		k = 0
	}
	rounds := 1 + k
	if min := expander.CeilLog2(c.N); rounds < min {
		rounds = min
	}
	return rounds
}

// ScheduleLength returns the fixed number of rounds of AB-Consensus.
func (c *Config) ScheduleLength() int { return c.part4End }

// IsLittle reports whether id is a little node.
func (c *Config) IsLittle(id int) bool { return id < c.L }

// RelatedOf returns the non-little nodes related to little node i
// (same remainder modulo L, §7 Part 2).
func (c *Config) RelatedOf(i int) []int {
	var out []int
	for j := c.L + i; j < c.N; j += c.L {
		out = append(out, j)
	}
	return out
}

// LittleOf returns the little node related to node j.
func (c *Config) LittleOf(j int) int { return j % c.L }
