package byzantine

import (
	"testing"

	"lineartime/internal/auth"
	"lineartime/internal/bitset"
	"lineartime/internal/sim"
)

// buildSystem wires n nodes with the given Byzantine behaviours (keyed
// by node id; honest everywhere else) and runs AB-Consensus.
func buildSystem(t *testing.T, n, tt int, inputs []uint64,
	corrupt map[int]func(id int, cfg *Config) sim.Protocol) ([]*ABConsensus, *sim.Result, *Config) {
	t.Helper()
	cfg, err := NewConfig(n, tt, 42)
	if err != nil {
		t.Fatal(err)
	}
	honest := make([]*ABConsensus, n)
	ps := make([]sim.Protocol, n)
	byz := bitset.New(n)
	for i := 0; i < n; i++ {
		if mk, ok := corrupt[i]; ok {
			ps[i] = mk(i, cfg)
			byz.Add(i)
			continue
		}
		honest[i] = NewABConsensus(i, cfg, cfg.Authority.Signer(i), inputs[i])
		ps[i] = honest[i]
	}
	res, err := sim.Run(sim.Config{
		Protocols: ps,
		Byzantine: byz,
		MaxRounds: cfg.ScheduleLength() + 5,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return honest, res, cfg
}

func seqInputs(n int) []uint64 {
	in := make([]uint64, n)
	for i := range in {
		in[i] = uint64(100 + i)
	}
	return in
}

// checkAgreementValidity asserts that every honest node decided, all
// decisions are equal, and the decision is some honest little node's
// input or a Byzantine little node's (signed) proposal — for the
// strategies used here, a value ≤ the max honest little input + the
// known Byzantine values.
func checkAgreementValidity(t *testing.T, label string, honest []*ABConsensus, allowed map[uint64]bool) {
	t.Helper()
	var agreed *uint64
	for i, h := range honest {
		if h == nil {
			continue
		}
		v, ok := h.Decision()
		if !ok {
			t.Fatalf("%s: honest node %d undecided", label, i)
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Fatalf("%s: disagreement %d vs %d", label, *agreed, v)
		}
	}
	if agreed == nil {
		t.Fatalf("%s: no honest nodes", label)
	}
	if !allowed[*agreed] {
		t.Fatalf("%s: decision %d is not an allowed value", label, *agreed)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewConfig(1, 0, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewConfig(10, 5, 1); err == nil {
		t.Fatal("t = n/2 accepted")
	}
	cfg, err := NewConfig(40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L != 20 {
		t.Fatalf("L = %d, want 20", cfg.L)
	}
	if cfg.Endorsements != 16 { // L − t = 4t
		t.Fatalf("Endorsements = %d, want 16", cfg.Endorsements)
	}
}

func TestABConsensusNoFaults(t *testing.T) {
	n, tt := 40, 4
	inputs := seqInputs(n)
	honest, res, cfg := buildSystem(t, n, tt, inputs, nil)
	// The decision is the max little input (only little values enter
	// the common set).
	allowed := map[uint64]bool{inputs[cfg.L-1]: true}
	checkAgreementValidity(t, "no-faults", honest, allowed)
	if res.Metrics.Rounds != cfg.ScheduleLength() {
		t.Fatalf("rounds = %d, want %d", res.Metrics.Rounds, cfg.ScheduleLength())
	}
}

func TestABConsensusSilentByzantine(t *testing.T) {
	n, tt := 40, 4
	inputs := seqInputs(n)
	corrupt := map[int]func(int, *Config) sim.Protocol{}
	for i := 0; i < tt; i++ { // silence t little nodes
		corrupt[i*3] = func(id int, cfg *Config) sim.Protocol { return NewSilent(cfg) }
	}
	honest, _, cfg := buildSystem(t, n, tt, inputs, corrupt)
	// Max honest little input decides (silent sources extract to null).
	allowed := map[uint64]bool{inputs[cfg.L-1]: true}
	checkAgreementValidity(t, "silent", honest, allowed)
}

func TestABConsensusEquivocators(t *testing.T) {
	n, tt := 40, 4
	inputs := seqInputs(n)
	corrupt := map[int]func(int, *Config) sim.Protocol{}
	for i := 0; i < tt; i++ {
		corrupt[i] = func(id int, cfg *Config) sim.Protocol {
			// Equivocated values exceed every honest input: if either
			// leaked into the decision, the test would fail.
			return NewEquivocator(id, cfg, cfg.Authority.Signer(id), 9000+uint64(id), 9500+uint64(id))
		}
	}
	honest, _, cfg := buildSystem(t, n, tt, inputs, corrupt)
	allowed := map[uint64]bool{inputs[cfg.L-1]: true}
	checkAgreementValidity(t, "equivocators", honest, allowed)
}

func TestABConsensusSpammers(t *testing.T) {
	n, tt := 40, 4
	inputs := seqInputs(n)
	corrupt := map[int]func(int, *Config) sim.Protocol{}
	for i := 0; i < tt; i++ {
		corrupt[2+i*5] = func(id int, cfg *Config) sim.Protocol {
			return NewSpammer(id, cfg, cfg.Authority.Signer(id))
		}
	}
	honest, res, cfg := buildSystem(t, n, tt, inputs, corrupt)
	// The spammers' fabricated max-value sets must all be dropped; the
	// honest decision is the max honest little input.
	allowed := map[uint64]bool{inputs[cfg.L-1]: true}
	checkAgreementValidity(t, "spammers", honest, allowed)
	if res.Metrics.ByzMessages == 0 {
		t.Fatal("spammers sent nothing; the stress test is vacuous")
	}
}

func TestABConsensusMessageShape(t *testing.T) {
	// Theorem 11: O(t² + n) messages from non-faulty nodes. The DS
	// part among 5t little nodes dominates with O(t²) per round over
	// t+2 rounds in the worst case; with honest sources each node
	// relays each source's single value once, so the observed count
	// stays near C·(t² + n).
	n, tt := 200, 7 // t ≈ √n·/2
	inputs := seqInputs(n)
	_, res, _ := buildSystem(t, n, tt, inputs, nil)
	limit := int64(40 * (tt*tt*10 + n))
	if res.Metrics.Messages > limit {
		t.Fatalf("messages = %d exceed O(t²+n) shape bound %d", res.Metrics.Messages, limit)
	}
}

func TestABConsensusTNearHalf(t *testing.T) {
	// t close to n/2: every node is little (5t > n).
	n, tt := 20, 9
	inputs := seqInputs(n)
	corrupt := map[int]func(int, *Config) sim.Protocol{}
	for i := 0; i < tt; i++ {
		corrupt[2*i] = func(id int, cfg *Config) sim.Protocol { return NewSilent(cfg) }
	}
	honest, _, cfg := buildSystem(t, n, tt, inputs, corrupt)
	if cfg.L != n {
		t.Fatalf("L = %d, want n", cfg.L)
	}
	// Max honest input: node 19 (odd) is honest.
	allowed := map[uint64]bool{inputs[n-1]: true}
	checkAgreementValidity(t, "t≈n/2", honest, allowed)
}

func TestDSAllBaseline(t *testing.T) {
	n, tt := 20, 4
	cfg, err := NewConfig(n, tt, 7)
	if err != nil {
		t.Fatal(err)
	}
	inputs := seqInputs(n)
	ps := make([]sim.Protocol, n)
	ms := make([]*DSAll, n)
	byz := bitset.New(n)
	for i := 0; i < n; i++ {
		if i < tt {
			ps[i] = NewSilent(cfg)
			byz.Add(i)
			continue
		}
		ms[i] = NewDSAll(i, cfg, cfg.Authority.Signer(i), inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Byzantine: byz, MaxRounds: cfg.T + 5})
	if err != nil {
		t.Fatal(err)
	}
	var agreed *uint64
	for i := tt; i < n; i++ {
		v, ok := ms[i].Decision()
		if !ok {
			t.Fatalf("baseline node %d undecided", i)
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Fatal("baseline disagreement")
		}
	}
	if *agreed != inputs[n-1] {
		t.Fatalf("baseline decided %d, want max honest input %d", *agreed, inputs[n-1])
	}
	// Baseline message profile: Θ(n²) in round 0 alone.
	if res.Metrics.Messages < int64((n-tt)*(n-1)) {
		t.Fatalf("baseline messages = %d, below n² profile", res.Metrics.Messages)
	}
}

func TestValidCommonSetRejectsForgeries(t *testing.T) {
	cfg, err := NewConfig(30, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, cfg.L)
	present := make([]bool, cfg.L)
	for i := range values {
		values[i] = uint64(i)
		present[i] = true
	}
	msg := auth.SetMessage(values, present)
	good := CommonSet{Values: values, Present: present}
	for i := 0; i < cfg.Endorsements; i++ {
		good.Endorsements = append(good.Endorsements, cfg.Authority.Signer(i).Sign(msg))
	}
	if !cfg.validCommonSet(good) {
		t.Fatal("valid set rejected")
	}

	short := good.Clone()
	short.Endorsements = short.Endorsements[:cfg.Endorsements-1]
	if cfg.validCommonSet(short) {
		t.Fatal("under-endorsed set accepted")
	}

	tampered := good.Clone()
	tampered.Values[0] = 999
	if cfg.validCommonSet(tampered) {
		t.Fatal("tampered set accepted")
	}

	nonLittle := good.Clone()
	nonLittle.Endorsements[0] = cfg.Authority.Signer(cfg.L).Sign(msg)
	if cfg.validCommonSet(nonLittle) {
		t.Fatal("non-little endorsement accepted")
	}

	dup := good.Clone()
	dup.Endorsements[1] = dup.Endorsements[0]
	if cfg.validCommonSet(dup) {
		t.Fatal("duplicate endorsers accepted")
	}
}
