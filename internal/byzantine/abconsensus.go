package byzantine

import (
	"lineartime/internal/auth"
	"lineartime/internal/sim"
)

// ABConsensus is the honest per-node state machine of algorithm
// AB-Consensus (Figure 7):
//
//	Part 1: the little nodes run 5t parallel Dolev–Strong broadcasts
//	  (t+2 rounds, combined messages) and then co-sign the resulting
//	  authenticated common set of values (one endorsement round);
//	Part 2: little nodes send the endorsed set to their related nodes;
//	Part 3: the set propagates over the expander H, receivers verifying
//	  the endorsement signatures before adopting;
//	Part 4: nodes still without a set send signed inquiries to every
//	  little node and adopt the verified response.
//
// Every node decides on the maximum value present in its set.
type ABConsensus struct {
	id     int
	cfg    *Config
	signer *auth.Signer
	input  uint64

	// Dolev–Strong state (little nodes only).
	accepted map[int][]uint64 // source → accepted values (at most 2)
	pending  []Relay          // accepted last round; relay this round

	// Common set state.
	set     CommonSet
	haveSet bool
	setMsg  []byte // canonical encoding of the own-built set (little)

	forward   bool // Part 3: send the set at the next opportunity
	inquirers []int

	decided  bool
	decision uint64
	halted   bool
}

// NewABConsensus creates the honest machine for node id with the given
// input value. The signer must be the node's own handle.
func NewABConsensus(id int, cfg *Config, signer *auth.Signer, input uint64) *ABConsensus {
	a := &ABConsensus{id: id, cfg: cfg, signer: signer, input: input}
	if cfg.IsLittle(id) {
		a.accepted = make(map[int][]uint64, cfg.L)
		a.accepted[id] = []uint64{input}
	}
	return a
}

// ScheduleLength returns the protocol's fixed round count.
func (a *ABConsensus) ScheduleLength() int { return a.cfg.ScheduleLength() }

// Decision returns the decided value, if any.
func (a *ABConsensus) Decision() (uint64, bool) { return a.decision, a.decided }

// CommonSetView returns the adopted authenticated common set (testing
// and example introspection).
func (a *ABConsensus) CommonSetView() (CommonSet, bool) { return a.set, a.haveSet }

// littleTargets returns all little nodes except self.
func (a *ABConsensus) littleTargets() []int {
	out := make([]int, 0, a.cfg.L)
	for i := 0; i < a.cfg.L; i++ {
		if i != a.id {
			out = append(out, i)
		}
	}
	return out
}

func (a *ABConsensus) toAll(targets []int, payload sim.Payload) []sim.Envelope {
	out := make([]sim.Envelope, 0, len(targets))
	for _, to := range targets {
		out = append(out, sim.Envelope{From: a.id, To: to, Payload: payload})
	}
	return out
}

// Send implements sim.Protocol.
func (a *ABConsensus) Send(round int) []sim.Envelope {
	c := a.cfg
	switch {
	case round < c.dsRounds: // Part 1a: parallel Dolev–Strong
		if !c.IsLittle(a.id) {
			return nil
		}
		if round == 0 {
			item := Relay{
				Source: a.id,
				Value:  a.input,
				Chain:  []auth.Signature{a.signer.Sign(auth.ValueMessage(a.id, a.input))},
			}
			return a.toAll(a.littleTargets(), RelayBatch{Items: []Relay{item}})
		}
		if len(a.pending) == 0 {
			return nil
		}
		batch := RelayBatch{Items: a.pending}
		a.pending = nil
		return a.toAll(a.littleTargets(), batch)

	case round < c.endorseEnd: // Part 1b: endorsement round
		if !c.IsLittle(a.id) {
			return nil
		}
		a.buildOwnSet()
		return a.toAll(a.littleTargets(), Endorsement{Sig: a.signer.Sign(a.setMsg)})

	case round < c.relatedEnd: // Part 2: notify related nodes
		if !c.IsLittle(a.id) || !a.haveSet {
			return nil
		}
		related := c.RelatedOf(a.id)
		if len(related) == 0 {
			return nil
		}
		return a.toAll(related, a.set)

	case round < c.part3End: // Part 3: slow propagation over H
		if !a.haveSet || !a.forward {
			return nil
		}
		a.forward = false
		return a.toAll(c.Broadcast.Neighbors(a.id), a.set)

	case round < c.part4End: // Part 4: inquiry then response
		if round == c.part3End { // inquiry round
			a.inquirers = a.inquirers[:0]
			if a.haveSet {
				return nil
			}
			payload := SignedInquiry{Sig: a.signer.Sign(auth.InquiryMessage(a.id))}
			return a.toAll(a.littleTargets(), payload)
		}
		if !a.haveSet || len(a.inquirers) == 0 {
			return nil
		}
		return a.toAll(a.inquirers, a.set)

	default:
		return nil
	}
}

// buildOwnSet extracts the common set from the Dolev–Strong state and
// self-endorses it (idempotent).
func (a *ABConsensus) buildOwnSet() {
	if a.setMsg != nil {
		return
	}
	c := a.cfg
	values := make([]uint64, c.L)
	present := make([]bool, c.L)
	for s := 0; s < c.L; s++ {
		if vs := a.accepted[s]; len(vs) == 1 {
			values[s] = vs[0]
			present[s] = true
		}
	}
	a.setMsg = auth.SetMessage(values, present)
	a.set = CommonSet{
		Values:       values,
		Present:      present,
		Endorsements: []auth.Signature{a.signer.Sign(a.setMsg)},
	}
}

// Deliver implements sim.Protocol.
func (a *ABConsensus) Deliver(round int, inbox []sim.Envelope) {
	c := a.cfg
	switch {
	case round < c.dsRounds:
		if c.IsLittle(a.id) {
			a.deliverDS(round, inbox)
		}
	case round < c.endorseEnd:
		if c.IsLittle(a.id) {
			a.deliverEndorsements(inbox)
		}
	case round < c.relatedEnd:
		a.tryAdopt(inbox, round)
	case round < c.part3End:
		a.tryAdopt(inbox, round)
	case round == c.part3End: // inquiry round
		if a.haveSet {
			for _, env := range inbox {
				inq, ok := env.Payload.(SignedInquiry)
				if !ok || inq.Sig.Signer != env.From {
					continue
				}
				if c.Authority.Verify(auth.InquiryMessage(env.From), inq.Sig) {
					a.inquirers = append(a.inquirers, env.From)
				}
			}
		}
	default: // response round
		a.tryAdopt(inbox, round)
	}
	if round == c.part4End-1 {
		a.decide()
		a.halted = true
	}
}

// deliverDS validates and accepts relayed values per the Dolev–Strong
// rule: at round r a chain of at least r+1 distinct little signatures
// beginning with the source authenticates the value; each node accepts
// at most two values per source (two suffice to expose a faulty
// source).
func (a *ABConsensus) deliverDS(round int, inbox []sim.Envelope) {
	c := a.cfg
	for _, env := range inbox {
		batch, ok := env.Payload.(RelayBatch)
		if !ok {
			continue
		}
		for _, item := range batch.Items {
			if item.Source < 0 || item.Source >= c.L || len(item.Chain) < round+1 {
				continue
			}
			if item.Chain[0].Signer != item.Source {
				continue
			}
			if !a.validLittleChain(item) {
				continue
			}
			vs := a.accepted[item.Source]
			if containsValue(vs, item.Value) || len(vs) >= 2 {
				continue
			}
			a.accepted[item.Source] = append(vs, item.Value)
			if round+1 < c.dsRounds && !chainHasSigner(item.Chain, a.id) {
				relay := Relay{
					Source: item.Source,
					Value:  item.Value,
					Chain: append(append([]auth.Signature(nil), item.Chain...),
						a.signer.Sign(auth.ValueMessage(item.Source, item.Value))),
				}
				a.pending = append(a.pending, relay)
			}
		}
	}
}

// validLittleChain verifies all chain signatures over the item's
// (source, value) message, requiring distinct little signers.
func (a *ABConsensus) validLittleChain(item Relay) bool {
	msg := auth.ValueMessage(item.Source, item.Value)
	seen := make(map[int]bool, len(item.Chain))
	for _, sig := range item.Chain {
		if sig.Signer >= a.cfg.L || seen[sig.Signer] {
			return false
		}
		seen[sig.Signer] = true
		if !a.cfg.Authority.Verify(msg, sig) {
			return false
		}
	}
	return true
}

func containsValue(vs []uint64, v uint64) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func chainHasSigner(chain []auth.Signature, id int) bool {
	for _, sig := range chain {
		if sig.Signer == id {
			return true
		}
	}
	return false
}

// deliverEndorsements collects valid signatures over the node's own
// set encoding; honest little nodes computed identical sets (Dolev–
// Strong agreement), so their endorsements accumulate to ≥ L − t.
func (a *ABConsensus) deliverEndorsements(inbox []sim.Envelope) {
	c := a.cfg
	seen := make(map[int]bool, len(a.set.Endorsements))
	for _, sig := range a.set.Endorsements {
		seen[sig.Signer] = true
	}
	for _, env := range inbox {
		e, ok := env.Payload.(Endorsement)
		if !ok || e.Sig.Signer != env.From || e.Sig.Signer >= c.L || seen[e.Sig.Signer] {
			continue
		}
		if c.Authority.Verify(a.setMsg, e.Sig) {
			seen[e.Sig.Signer] = true
			a.set.Endorsements = append(a.set.Endorsements, e.Sig)
		}
	}
	if len(a.set.Endorsements) >= c.Endorsements {
		a.haveSet = true
		a.forward = true // broadcast at the start of Part 3
	}
}

// tryAdopt adopts the first valid authenticated common set received.
func (a *ABConsensus) tryAdopt(inbox []sim.Envelope, round int) {
	if a.haveSet {
		return
	}
	for _, env := range inbox {
		set, ok := env.Payload.(CommonSet)
		if !ok || !a.cfg.validCommonSet(set) {
			continue
		}
		a.set = set.Clone()
		a.haveSet = true
		if round+1 < a.cfg.part3End {
			a.forward = true
		}
		return
	}
}

// decide picks the maximum present value (§7: "decide on the maximum
// value in the possessed authenticated common set").
func (a *ABConsensus) decide() {
	if !a.haveSet {
		return
	}
	best := uint64(0)
	found := false
	for i, p := range a.set.Present {
		if p && (!found || a.set.Values[i] > best) {
			best = a.set.Values[i]
			found = true
		}
	}
	if found {
		a.decided = true
		a.decision = best
	}
}

// Halted implements sim.Protocol.
func (a *ABConsensus) Halted() bool { return a.halted }

var _ sim.Protocol = (*ABConsensus)(nil)

// PartAt maps a round to its AB-Consensus part, for the engine's
// per-part message attribution.
func (a *ABConsensus) PartAt(round int) string {
	c := a.cfg
	switch {
	case round < c.dsRounds:
		return "dolev-strong"
	case round < c.endorseEnd:
		return "endorse"
	case round < c.relatedEnd:
		return "notify-related"
	case round < c.part3End:
		return "propagate"
	case round < c.part4End:
		return "inquire"
	default:
		return ""
	}
}
