package byzantine

import (
	"lineartime/internal/auth"
	"lineartime/internal/sim"
)

// DSAll is the comparator from Dolev–Strong [24] run by all n nodes
// directly: n parallel authenticated broadcasts among everyone, t+2
// rounds, then decide the maximum extracted value. Message complexity
// Θ(n²) per round in the worst case — the profile AB-Consensus
// improves to O(t² + n) (§7, Table 1 row "authenticated Byzantine").
type DSAll struct {
	id     int
	cfg    *Config
	signer *auth.Signer
	input  uint64

	accepted map[int][]uint64
	pending  []Relay

	decided  bool
	decision uint64
	halted   bool
}

// NewDSAll creates the baseline machine for node id.
func NewDSAll(id int, cfg *Config, signer *auth.Signer, input uint64) *DSAll {
	d := &DSAll{id: id, cfg: cfg, signer: signer, input: input,
		accepted: make(map[int][]uint64, cfg.N)}
	d.accepted[id] = []uint64{input}
	return d
}

// ScheduleLength returns the fixed round count, t + 2.
func (d *DSAll) ScheduleLength() int { return d.cfg.T + 2 }

// Decision returns the decided value, if any.
func (d *DSAll) Decision() (uint64, bool) { return d.decision, d.decided }

func (d *DSAll) everyone() []int {
	out := make([]int, 0, d.cfg.N-1)
	for i := 0; i < d.cfg.N; i++ {
		if i != d.id {
			out = append(out, i)
		}
	}
	return out
}

// Send implements sim.Protocol.
func (d *DSAll) Send(round int) []sim.Envelope {
	var batch RelayBatch
	switch {
	case round == 0:
		batch.Items = []Relay{{
			Source: d.id,
			Value:  d.input,
			Chain:  []auth.Signature{d.signer.Sign(auth.ValueMessage(d.id, d.input))},
		}}
	case round < d.ScheduleLength() && len(d.pending) > 0:
		batch.Items = d.pending
		d.pending = nil
	default:
		return nil
	}
	targets := d.everyone()
	out := make([]sim.Envelope, 0, len(targets))
	for _, to := range targets {
		out = append(out, sim.Envelope{From: d.id, To: to, Payload: batch})
	}
	return out
}

// Deliver implements sim.Protocol.
func (d *DSAll) Deliver(round int, inbox []sim.Envelope) {
	for _, env := range inbox {
		batch, ok := env.Payload.(RelayBatch)
		if !ok {
			continue
		}
		for _, item := range batch.Items {
			if item.Source < 0 || item.Source >= d.cfg.N || len(item.Chain) < round+1 {
				continue
			}
			if len(item.Chain) == 0 || item.Chain[0].Signer != item.Source {
				continue
			}
			if !d.validChain(item) {
				continue
			}
			vs := d.accepted[item.Source]
			if containsValue(vs, item.Value) || len(vs) >= 2 {
				continue
			}
			d.accepted[item.Source] = append(vs, item.Value)
			if round+1 < d.ScheduleLength() && !chainHasSigner(item.Chain, d.id) {
				d.pending = append(d.pending, Relay{
					Source: item.Source,
					Value:  item.Value,
					Chain: append(append([]auth.Signature(nil), item.Chain...),
						d.signer.Sign(auth.ValueMessage(item.Source, item.Value))),
				})
			}
		}
	}
	if round == d.ScheduleLength()-1 {
		best, found := uint64(0), false
		for s := 0; s < d.cfg.N; s++ {
			if vs := d.accepted[s]; len(vs) == 1 {
				if !found || vs[0] > best {
					best, found = vs[0], true
				}
			}
		}
		if found {
			d.decided, d.decision = true, best
		}
		d.halted = true
	}
}

// validChain verifies all signatures with distinct signers (any node
// may sign in the all-nodes variant).
func (d *DSAll) validChain(item Relay) bool {
	msg := auth.ValueMessage(item.Source, item.Value)
	seen := make(map[int]bool, len(item.Chain))
	for _, sig := range item.Chain {
		if sig.Signer < 0 || sig.Signer >= d.cfg.N || seen[sig.Signer] {
			return false
		}
		seen[sig.Signer] = true
		if !d.cfg.Authority.Verify(msg, sig) {
			return false
		}
	}
	return true
}

// Halted implements sim.Protocol.
func (d *DSAll) Halted() bool { return d.halted }

var _ sim.Protocol = (*DSAll)(nil)
