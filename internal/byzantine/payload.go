package byzantine

import (
	"lineartime/internal/auth"
	"lineartime/internal/sim"
)

// Relay is one Dolev–Strong item: a source's value with its signature
// chain. The first chain entry must be the source's own signature.
type Relay struct {
	Source int
	Value  uint64
	Chain  []auth.Signature
}

// RelayBatch combines the parallel DS executions' items that share a
// (sender, receiver, round) into one message (§7 Part 1: "messages
// could be combined").
type RelayBatch struct {
	Items []Relay
}

// SizeBits implements sim.Payload.
func (b RelayBatch) SizeBits() int {
	bits := 0
	for _, it := range b.Items {
		bits += 16 + 64 + auth.SignatureBits*len(it.Chain)
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// Endorsement carries one little node's signature over its final
// common set (the concretization of the paper's "each value
// authenticated by ≥ 4t little nodes' valid signatures": after
// Dolev–Strong agreement the little nodes co-sign the whole set once).
type Endorsement struct {
	Sig auth.Signature
}

// SizeBits implements sim.Payload.
func (Endorsement) SizeBits() int { return auth.SignatureBits }

// CommonSet is an authenticated common set of values: per-source
// values (Present[i] false encodes null) plus the little-node
// endorsement signatures that authenticate it.
type CommonSet struct {
	Values       []uint64
	Present      []bool
	Endorsements []auth.Signature
}

// SizeBits implements sim.Payload.
func (s CommonSet) SizeBits() int {
	return len(s.Values)*(64+1) + auth.SignatureBits*len(s.Endorsements)
}

// Clone returns a deep copy (receivers keep adopted sets immutable, so
// clones happen only on adoption).
func (s CommonSet) Clone() CommonSet {
	return CommonSet{
		Values:       append([]uint64(nil), s.Values...),
		Present:      append([]bool(nil), s.Present...),
		Endorsements: append([]auth.Signature(nil), s.Endorsements...),
	}
}

// SignedInquiry is a Part 4 inquiry authenticated by the inquirer.
type SignedInquiry struct {
	Sig auth.Signature
}

// SizeBits implements sim.Payload.
func (SignedInquiry) SizeBits() int { return auth.SignatureBits }

var (
	_ sim.Payload = RelayBatch{}
	_ sim.Payload = Endorsement{}
	_ sim.Payload = CommonSet{}
	_ sim.Payload = SignedInquiry{}
)

// validCommonSet checks a received set against the configuration: the
// shape matches L sources and it carries ≥ Endorsements valid,
// distinct little-node signatures over its canonical encoding.
func (c *Config) validCommonSet(s CommonSet) bool {
	if len(s.Values) != c.L || len(s.Present) != c.L {
		return false
	}
	msg := auth.SetMessage(s.Values, s.Present)
	seen := make(map[int]bool, len(s.Endorsements))
	valid := 0
	for _, sig := range s.Endorsements {
		if sig.Signer >= c.L || seen[sig.Signer] {
			return false
		}
		seen[sig.Signer] = true
		if !c.Authority.Verify(msg, sig) {
			return false
		}
		valid++
	}
	return valid >= c.Endorsements
}
