package byzantine

import (
	"lineartime/internal/auth"
	"lineartime/internal/sim"
)

// The types below are concrete Byzantine node behaviours. Each holds
// only its own Signer, so the no-forgery guarantee of the model is
// structural: nothing in these implementations can mint another
// node's signature. They halt at the honest schedule end (the paper
// measures time until non-faulty nodes halt; the engine additionally
// ignores Byzantine nodes for termination).

// Silent is the crash-like Byzantine node: it never sends anything.
type Silent struct {
	cfg    *Config
	halted bool
}

// NewSilent creates a silent Byzantine node.
func NewSilent(cfg *Config) *Silent { return &Silent{cfg: cfg} }

// Send implements sim.Protocol.
func (s *Silent) Send(int) []sim.Envelope { return nil }

// Deliver implements sim.Protocol.
func (s *Silent) Deliver(round int, _ []sim.Envelope) {
	if round >= s.cfg.ScheduleLength()-1 {
		s.halted = true
	}
}

// Halted implements sim.Protocol.
func (s *Silent) Halted() bool { return s.halted }

// Equivocator is a Byzantine little node that, as a Dolev–Strong
// source, sends value A to half of the little nodes and value B to the
// other half (both correctly self-signed), trying to split the honest
// view. Dolev–Strong forces its instance to the null value at every
// honest node instead.
type Equivocator struct {
	id     int
	cfg    *Config
	signer *auth.Signer
	a, b   uint64
	halted bool
}

// NewEquivocator creates an equivocating source. The signer must be
// the node's own handle.
func NewEquivocator(id int, cfg *Config, signer *auth.Signer, valueA, valueB uint64) *Equivocator {
	return &Equivocator{id: id, cfg: cfg, signer: signer, a: valueA, b: valueB}
}

// Send implements sim.Protocol.
func (e *Equivocator) Send(round int) []sim.Envelope {
	if round != 0 || !e.cfg.IsLittle(e.id) {
		return nil
	}
	itemA := Relay{Source: e.id, Value: e.a,
		Chain: []auth.Signature{e.signer.Sign(auth.ValueMessage(e.id, e.a))}}
	itemB := Relay{Source: e.id, Value: e.b,
		Chain: []auth.Signature{e.signer.Sign(auth.ValueMessage(e.id, e.b))}}
	var out []sim.Envelope
	for i := 0; i < e.cfg.L; i++ {
		if i == e.id {
			continue
		}
		item := itemA
		if i%2 == 1 {
			item = itemB
		}
		out = append(out, sim.Envelope{From: e.id, To: i, Payload: RelayBatch{Items: []Relay{item}}})
	}
	return out
}

// Deliver implements sim.Protocol.
func (e *Equivocator) Deliver(round int, _ []sim.Envelope) {
	if round >= e.cfg.ScheduleLength()-1 {
		e.halted = true
	}
}

// Halted implements sim.Protocol.
func (e *Equivocator) Halted() bool { return e.halted }

// Spammer floods the system every round: fabricated common sets with
// junk endorsements to everyone it can and (validly signed) inquiries
// to every little node, trying to waste honest verification and
// response budget. Honest nodes drop the invalid sets; little nodes
// answer at most one inquiry per round from it, the overhead the
// Theorem 11 accounting already charges (≤ t Byzantine inquiries per
// little node).
type Spammer struct {
	id     int
	cfg    *Config
	signer *auth.Signer
	halted bool
}

// NewSpammer creates a flooding Byzantine node.
func NewSpammer(id int, cfg *Config, signer *auth.Signer) *Spammer {
	return &Spammer{id: id, cfg: cfg, signer: signer}
}

// Send implements sim.Protocol.
func (s *Spammer) Send(round int) []sim.Envelope {
	c := s.cfg
	junk := CommonSet{
		Values:  make([]uint64, c.L),
		Present: make([]bool, c.L),
	}
	for i := range junk.Values {
		junk.Values[i] = ^uint64(0) // the max-value grab
		junk.Present[i] = true
	}
	// Self-endorsed only: validCommonSet requires L−t distinct little
	// signatures, which the spammer cannot produce.
	junk.Endorsements = []auth.Signature{s.signer.Sign(auth.SetMessage(junk.Values, junk.Present))}

	var out []sim.Envelope
	for i := 0; i < c.L; i++ {
		if i == s.id {
			continue
		}
		out = append(out, sim.Envelope{From: s.id, To: i, Payload: junk})
		out = append(out, sim.Envelope{From: s.id, To: i,
			Payload: SignedInquiry{Sig: s.signer.Sign(auth.InquiryMessage(s.id))}})
	}
	return out
}

// Deliver implements sim.Protocol.
func (s *Spammer) Deliver(round int, _ []sim.Envelope) {
	if round >= s.cfg.ScheduleLength()-1 {
		s.halted = true
	}
}

// Halted implements sim.Protocol.
func (s *Spammer) Halted() bool { return s.halted }

var (
	_ sim.Protocol = (*Silent)(nil)
	_ sim.Protocol = (*Equivocator)(nil)
	_ sim.Protocol = (*Spammer)(nil)
)
