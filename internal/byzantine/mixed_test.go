package byzantine

import (
	"testing"

	"lineartime/internal/sim"
)

// TestABConsensusMixedStrategies runs all three Byzantine behaviours
// simultaneously — silent little nodes, equivocating sources, and a
// spammer — at the full budget t, the integration stress for §7.
func TestABConsensusMixedStrategies(t *testing.T) {
	n, tt := 60, 6
	inputs := seqInputs(n)
	corrupt := map[int]func(int, *Config) sim.Protocol{
		0: func(id int, cfg *Config) sim.Protocol { return NewSilent(cfg) },
		4: func(id int, cfg *Config) sim.Protocol { return NewSilent(cfg) },
		8: func(id int, cfg *Config) sim.Protocol {
			return NewEquivocator(id, cfg, cfg.Authority.Signer(id), 8000, 8001)
		},
		12: func(id int, cfg *Config) sim.Protocol {
			return NewEquivocator(id, cfg, cfg.Authority.Signer(id), 8100, 8101)
		},
		16: func(id int, cfg *Config) sim.Protocol {
			return NewSpammer(id, cfg, cfg.Authority.Signer(id))
		},
		20: func(id int, cfg *Config) sim.Protocol {
			return NewSpammer(id, cfg, cfg.Authority.Signer(id))
		},
	}
	honest, res, cfg := buildSystem(t, n, tt, inputs, corrupt)
	// Max honest little input: little nodes are 0..L-1, the corrupted
	// ids above are all little (L = 30); the max honest little id is
	// L-1 = 29 (not corrupted).
	allowed := map[uint64]bool{inputs[cfg.L-1]: true}
	checkAgreementValidity(t, "mixed", honest, allowed)
	if res.Metrics.ByzMessages == 0 {
		t.Fatal("no Byzantine traffic recorded")
	}

	// Every honest node's common set must null the equivocators and
	// the silent sources, and carry true values for honest sources.
	for i, h := range honest {
		if h == nil {
			continue
		}
		set, ok := h.CommonSetView()
		if !ok {
			t.Fatalf("node %d without set", i)
		}
		for _, badSource := range []int{0, 4, 8, 12} {
			if set.Present[badSource] {
				t.Fatalf("node %d extracted a value for corrupted source %d", i, badSource)
			}
		}
		for s := 0; s < cfg.L; s++ {
			if _, bad := corrupt[s]; bad {
				continue
			}
			if !set.Present[s] || set.Values[s] != inputs[s] {
				t.Fatalf("node %d: honest source %d corrupted (present=%v val=%d)",
					i, s, set.Present[s], set.Values[s])
			}
		}
	}
}

// TestABConsensusHonestMinorityOfLittle pushes the corruption into the
// little nodes only, at the full budget: t of the 5t little nodes are
// Byzantine, the worst placement for the endorsement threshold L − t.
func TestABConsensusHonestMinorityOfLittle(t *testing.T) {
	n, tt := 50, 5
	inputs := seqInputs(n)
	corrupt := map[int]func(int, *Config) sim.Protocol{}
	for i := 0; i < tt; i++ {
		corrupt[i] = func(id int, cfg *Config) sim.Protocol {
			return NewEquivocator(id, cfg, cfg.Authority.Signer(id), 9000+uint64(id), 9900+uint64(id))
		}
	}
	honest, _, cfg := buildSystem(t, n, tt, inputs, corrupt)
	allowed := map[uint64]bool{inputs[cfg.L-1]: true}
	checkAgreementValidity(t, "little-minority", honest, allowed)
}

// TestSpammerCannotExhaustLittleNodes bounds the spam-response
// overhead: little nodes answer at most one inquiry per spammer per
// Part 4 round, so honest traffic stays near the fault-free level.
func TestSpammerCannotExhaustLittleNodes(t *testing.T) {
	n, tt := 60, 6
	inputs := seqInputs(n)
	clean, cleanRes, _ := buildSystem(t, n, tt, inputs, nil)
	_ = clean
	corrupt := map[int]func(int, *Config) sim.Protocol{}
	for i := 0; i < tt; i++ {
		corrupt[5*i] = func(id int, cfg *Config) sim.Protocol {
			return NewSpammer(id, cfg, cfg.Authority.Signer(id))
		}
	}
	_, spamRes, _ := buildSystem(t, n, tt, inputs, corrupt)
	// Honest message growth under spam is bounded: the extra replies
	// are ≤ t per little node (Theorem 11's accounting).
	limit := cleanRes.Metrics.Messages + int64(tt*5*tt*4)
	if spamRes.Metrics.Messages > limit {
		t.Fatalf("honest messages under spam = %d exceed bound %d (clean %d)",
			spamRes.Metrics.Messages, limit, cleanRes.Metrics.Messages)
	}
}
