package byzantine

import (
	"testing"

	"lineartime/internal/auth"
	"lineartime/internal/bitset"
	"lineartime/internal/sim"
)

// chainForger is a Byzantine little node that injects Dolev–Strong
// relays with structurally valid-looking but cryptographically bogus
// chains: fabricated MACs, chains missing the source signature, chains
// with non-little signers, and chains re-using its one legitimate
// signature for a different value. Honest nodes must drop all of it.
type chainForger struct {
	id     int
	cfg    *Config
	signer *auth.Signer
	halted bool
}

func (f *chainForger) Send(round int) []sim.Envelope {
	if round > 2 {
		return nil
	}
	c := f.cfg
	victim := (f.id + 1) % c.L // an honest source to impersonate

	// Forgery 1: claim victim broadcast 666 with a zero-MAC chain.
	forged1 := Relay{Source: victim, Value: 666,
		Chain: []auth.Signature{{Signer: victim}}}
	// Forgery 2: valid own signature but chain missing the source.
	msg2 := auth.ValueMessage(victim, 667)
	forged2 := Relay{Source: victim, Value: 667,
		Chain: []auth.Signature{f.signer.Sign(msg2)}}
	// Forgery 3: own signature presented under the victim's name.
	sig3 := f.signer.Sign(auth.ValueMessage(victim, 668))
	sig3.Signer = victim
	forged3 := Relay{Source: victim, Value: 668,
		Chain: []auth.Signature{sig3}}

	batch := RelayBatch{Items: []Relay{forged1, forged2, forged3}}
	var out []sim.Envelope
	for i := 0; i < c.L; i++ {
		if i != f.id {
			out = append(out, sim.Envelope{From: f.id, To: i, Payload: batch})
		}
	}
	return out
}

func (f *chainForger) Deliver(round int, _ []sim.Envelope) {
	if round >= f.cfg.ScheduleLength()-1 {
		f.halted = true
	}
}

func (f *chainForger) Halted() bool { return f.halted }

var _ sim.Protocol = (*chainForger)(nil)

func TestForgedChainsRejected(t *testing.T) {
	n, tt := 40, 4
	cfg, err := NewConfig(n, tt, 11)
	if err != nil {
		t.Fatal(err)
	}
	inputs := seqInputs(n)
	honest := make([]*ABConsensus, n)
	ps := make([]sim.Protocol, n)
	byz := bitset.New(n)
	forgerID := 5
	for i := 0; i < n; i++ {
		if i == forgerID {
			ps[i] = &chainForger{id: i, cfg: cfg, signer: cfg.Authority.Signer(i)}
			byz.Add(i)
			continue
		}
		honest[i] = NewABConsensus(i, cfg, cfg.Authority.Signer(i), inputs[i])
		ps[i] = honest[i]
	}
	if _, err := sim.Run(sim.Config{
		Protocols: ps,
		Byzantine: byz,
		MaxRounds: cfg.ScheduleLength() + 5,
	}); err != nil {
		t.Fatal(err)
	}

	victim := (forgerID + 1) % cfg.L
	for i, h := range honest {
		if h == nil {
			continue
		}
		v, ok := h.Decision()
		if !ok {
			t.Fatalf("honest node %d undecided", i)
		}
		if v >= 666 && v <= 668 {
			t.Fatalf("honest node %d decided forged value %d", i, v)
		}
		// The victim's instance must still carry its true value: the
		// forger's garbage may not poison the victim's slot.
		set, have := h.CommonSetView()
		if !have {
			t.Fatalf("honest node %d has no common set", i)
		}
		if !set.Present[victim] || set.Values[victim] != inputs[victim] {
			t.Fatalf("honest node %d: victim slot corrupted (present=%v value=%d)",
				i, set.Present[victim], set.Values[victim])
		}
	}
}

// TestEquivocatedSourceExtractsNull pins the Dolev–Strong core
// guarantee directly: an equivocating source's slot is null at every
// honest little node, and identical everywhere.
func TestEquivocatedSourceExtractsNull(t *testing.T) {
	n, tt := 40, 4
	cfg, err := NewConfig(n, tt, 13)
	if err != nil {
		t.Fatal(err)
	}
	inputs := seqInputs(n)
	honest := make([]*ABConsensus, n)
	ps := make([]sim.Protocol, n)
	byz := bitset.New(n)
	const eq = 2
	for i := 0; i < n; i++ {
		if i == eq {
			ps[i] = NewEquivocator(i, cfg, cfg.Authority.Signer(i), 9001, 9002)
			byz.Add(i)
			continue
		}
		honest[i] = NewABConsensus(i, cfg, cfg.Authority.Signer(i), inputs[i])
		ps[i] = honest[i]
	}
	if _, err := sim.Run(sim.Config{
		Protocols: ps,
		Byzantine: byz,
		MaxRounds: cfg.ScheduleLength() + 5,
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range honest {
		if h == nil {
			continue
		}
		set, have := h.CommonSetView()
		if !have {
			t.Fatalf("node %d has no set", i)
		}
		if set.Present[eq] {
			t.Fatalf("node %d extracted a value for the equivocating source", i)
		}
	}
}
