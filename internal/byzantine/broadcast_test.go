package byzantine

import (
	"testing"

	"lineartime/internal/auth"
	"lineartime/internal/bitset"
	"lineartime/internal/sim"
)

func runBroadcast(t *testing.T, n, tt, source int, value uint64,
	corrupt map[int]sim.Protocol) ([]*DSBroadcast, *sim.Result, *auth.Authority) {
	t.Helper()
	authority := auth.NewAuthority(n, 5)
	ms := make([]*DSBroadcast, n)
	ps := make([]sim.Protocol, n)
	byz := bitset.New(n)
	for i := 0; i < n; i++ {
		if p, ok := corrupt[i]; ok {
			ps[i] = p
			byz.Add(i)
			continue
		}
		ms[i] = NewDSBroadcast(i, n, tt, source, authority, authority.Signer(i), value)
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Byzantine: byz, MaxRounds: tt + 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res, authority
}

func TestDSBroadcastHonestSource(t *testing.T) {
	n, tt := 20, 4
	ms, _, _ := runBroadcast(t, n, tt, 3, 777, nil)
	for i, m := range ms {
		if m == nil {
			continue
		}
		v, ok, done := m.Output()
		if !done {
			t.Fatalf("node %d not done", i)
		}
		if !ok || v != 777 {
			t.Fatalf("node %d output (%d,%v), want (777,true)", i, v, ok)
		}
	}
}

// dsEquivocatingSource signs two values as the broadcast source,
// splitting its round-0 audience.
type dsEquivocatingSource struct {
	id, n, rounds int
	signer        *auth.Signer
	r             int
}

func (s *dsEquivocatingSource) Send(round int) []sim.Envelope {
	if round != 0 {
		return nil
	}
	var out []sim.Envelope
	for i := 0; i < s.n; i++ {
		if i == s.id {
			continue
		}
		v := uint64(1000)
		if i%2 == 1 {
			v = 2000
		}
		out = append(out, sim.Envelope{From: s.id, To: i, Payload: RelayBatch{Items: []Relay{{
			Source: s.id, Value: v,
			Chain: []auth.Signature{s.signer.Sign(auth.ValueMessage(s.id, v))},
		}}}})
	}
	return out
}

func (s *dsEquivocatingSource) Deliver(round int, _ []sim.Envelope) { s.r = round }
func (s *dsEquivocatingSource) Halted() bool                        { return s.r >= s.rounds }

func TestDSBroadcastEquivocatingSource(t *testing.T) {
	n, tt := 20, 4
	authority := auth.NewAuthority(n, 5)
	src := &dsEquivocatingSource{id: 3, n: n, rounds: tt + 1, signer: authority.Signer(3)}
	ms := make([]*DSBroadcast, n)
	ps := make([]sim.Protocol, n)
	byz := bitset.New(n)
	byz.Add(3)
	for i := 0; i < n; i++ {
		if i == 3 {
			ps[i] = src
			continue
		}
		ms[i] = NewDSBroadcast(i, n, tt, 3, authority, authority.Signer(i), 0)
		ps[i] = ms[i]
	}
	if _, err := sim.Run(sim.Config{Protocols: ps, Byzantine: byz, MaxRounds: tt + 5}); err != nil {
		t.Fatal(err)
	}
	// All honest nodes must agree; with the split audience the relay
	// rounds surface both values, so the agreed outcome is null.
	for i, m := range ms {
		if m == nil {
			continue
		}
		v, ok, done := m.Output()
		if !done {
			t.Fatalf("node %d not done", i)
		}
		if ok {
			t.Fatalf("node %d accepted value %d from an equivocating source, want null", i, v)
		}
	}
}

func TestDSBroadcastSilentSource(t *testing.T) {
	n, tt := 16, 3
	cfg, err := NewConfig(n, tt, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	corrupt := map[int]sim.Protocol{3: &dsMute{rounds: tt + 1}}
	ms, _, _ := runBroadcast(t, n, tt, 3, 0, corrupt)
	for i, m := range ms {
		if m == nil {
			continue
		}
		if v, ok, done := m.Output(); !done || ok {
			t.Fatalf("node %d: silent source yielded (%d,%v)", i, v, ok)
		}
	}
}

type dsMute struct {
	rounds int
	r      int
}

func (m *dsMute) Send(int) []sim.Envelope { return nil }
func (m *dsMute) Deliver(round int, _ []sim.Envelope) {
	m.r = round
}
func (m *dsMute) Halted() bool { return m.r >= m.rounds }

func TestDSBroadcastLastRoundReveal(t *testing.T) {
	// The classic stress: a Byzantine source colluding with Byzantine
	// relayers reveals a fully-signed chain only at the last possible
	// round. The chain then has t+1 ≥ honest signatures including one
	// honest signer who would have relayed earlier — impossible to
	// fabricate — so a late *forged* chain (missing honest signers)
	// must be rejected. We emulate the attempt with a chain of only
	// Byzantine signatures, which is too short for the final round.
	n, tt := 16, 3
	authority := auth.NewAuthority(n, 5)
	colluders := []int{3, 5, 6} // source 3 plus two helpers
	lastRound := tt + 1

	mkChain := func(value uint64) []auth.Signature {
		msg := auth.ValueMessage(3, value)
		chain := make([]auth.Signature, 0, len(colluders))
		for _, c := range colluders {
			chain = append(chain, authority.Signer(c).Sign(msg))
		}
		return chain
	}
	late := &lateRevealer{id: 5, n: n, rounds: tt + 1, fire: lastRound, payload: RelayBatch{
		Items: []Relay{{Source: 3, Value: 4242, Chain: mkChain(4242)}},
	}}

	ms := make([]*DSBroadcast, n)
	ps := make([]sim.Protocol, n)
	byz := bitset.New(n)
	for _, c := range colluders {
		byz.Add(c)
	}
	for i := 0; i < n; i++ {
		switch i {
		case 3, 6:
			ps[i] = &dsMute{rounds: tt + 1}
		case 5:
			ps[i] = late
		default:
			ms[i] = NewDSBroadcast(i, n, tt, 3, authority, authority.Signer(i), 0)
			ps[i] = ms[i]
		}
	}
	if _, err := sim.Run(sim.Config{Protocols: ps, Byzantine: byz, MaxRounds: tt + 5}); err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m == nil {
			continue
		}
		// The 3-signature chain arrives at round t+1 = 4, which demands
		// ≥ 5 signatures: rejected, so all honest output null — and
		// crucially they AGREE.
		if v, ok, _ := m.Output(); ok {
			t.Fatalf("node %d accepted late-revealed value %d", i, v)
		}
	}
}

type lateRevealer struct {
	id, n, rounds, fire int
	payload             RelayBatch
	r                   int
}

func (l *lateRevealer) Send(round int) []sim.Envelope {
	if round != l.fire {
		return nil
	}
	var out []sim.Envelope
	for i := 0; i < l.n; i++ {
		if i != l.id {
			out = append(out, sim.Envelope{From: l.id, To: i, Payload: l.payload})
		}
	}
	return out
}

func (l *lateRevealer) Deliver(round int, _ []sim.Envelope) { l.r = round }
func (l *lateRevealer) Halted() bool                        { return l.r >= l.rounds }
