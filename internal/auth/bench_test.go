package auth

import (
	"testing"
)

func BenchmarkSign(b *testing.B) {
	a := NewAuthority(64, 1)
	s := a.Signer(3)
	msg := ValueMessage(3, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	a := NewAuthority(64, 1)
	msg := ValueMessage(3, 42)
	sig := a.Signer(3).Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.Verify(msg, sig) {
			b.Fatal("verification failed")
		}
	}
}

func BenchmarkVerifyChain(b *testing.B) {
	a := NewAuthority(64, 1)
	msg := ValueMessage(0, 9)
	chain := make([]Signature, 0, 16)
	for i := 0; i < 16; i++ {
		chain = append(chain, a.Signer(i).Sign(msg))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.VerifyChain(msg, chain, 16) {
			b.Fatal("chain verification failed")
		}
	}
}
