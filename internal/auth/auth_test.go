package auth

import (
	"testing"
	"testing/quick"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	a := NewAuthority(10, 1)
	msg := ValueMessage(3, 42)
	sig := a.Signer(3).Sign(msg)
	if !a.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	a := NewAuthority(10, 1)
	sig := a.Signer(3).Sign(ValueMessage(3, 42))
	if a.Verify(ValueMessage(3, 43), sig) {
		t.Fatal("signature accepted for different message")
	}
}

func TestForgeryImpossible(t *testing.T) {
	a := NewAuthority(10, 1)
	msg := ValueMessage(5, 7)
	// A Byzantine node holding only its own signer tries to claim the
	// signature came from node 5.
	forged := a.Signer(2).Sign(msg)
	forged.Signer = 5
	if a.Verify(msg, forged) {
		t.Fatal("forged signature accepted")
	}
	// A fabricated MAC must not verify either.
	var fake Signature
	fake.Signer = 5
	if a.Verify(msg, fake) {
		t.Fatal("zero MAC accepted")
	}
}

func TestVerifyRejectsUnknownSigner(t *testing.T) {
	a := NewAuthority(4, 1)
	sig := a.Signer(0).Sign([]byte("x"))
	sig.Signer = 9
	if a.Verify([]byte("x"), sig) {
		t.Fatal("out-of-range signer accepted")
	}
}

func TestSignerIDAndPanic(t *testing.T) {
	a := NewAuthority(3, 1)
	if a.Signer(2).ID() != 2 {
		t.Fatal("wrong signer id")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Signer did not panic")
		}
	}()
	a.Signer(3)
}

func TestVerifyChain(t *testing.T) {
	a := NewAuthority(6, 2)
	msg := ValueMessage(0, 9)
	chain := []Signature{
		a.Signer(0).Sign(msg),
		a.Signer(1).Sign(msg),
		a.Signer(2).Sign(msg),
	}
	if !a.VerifyChain(msg, chain, 3) {
		t.Fatal("valid chain rejected")
	}
	if a.VerifyChain(msg, chain, 4) {
		t.Fatal("short chain accepted against higher requirement")
	}
	dup := append(chain[:2:2], chain[1])
	if a.VerifyChain(msg, dup, 3) {
		t.Fatal("duplicate signer accepted")
	}
	bad := append(chain[:2:2], Signature{Signer: 3})
	if a.VerifyChain(msg, bad, 3) {
		t.Fatal("invalid member accepted")
	}
	if !a.VerifyChain(msg, nil, 0) {
		t.Fatal("empty chain with zero requirement rejected")
	}
}

func TestAuthoritiesWithDifferentSeedsDiffer(t *testing.T) {
	a, b := NewAuthority(4, 1), NewAuthority(4, 2)
	msg := []byte("m")
	if b.Verify(msg, a.Signer(0).Sign(msg)) {
		t.Fatal("cross-authority signature accepted")
	}
}

func TestCanonicalEncodingsInjective(t *testing.T) {
	prop := func(s1, s2 uint16, v1, v2 uint64) bool {
		m1 := ValueMessage(int(s1), v1)
		m2 := ValueMessage(int(s2), v2)
		same := s1 == s2 && v1 == v2
		return same == (string(m1) == string(m2))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetMessageDistinguishesNullFromZero(t *testing.T) {
	a := SetMessage([]uint64{0, 5}, []bool{true, true})
	b := SetMessage([]uint64{0, 5}, []bool{false, true})
	if string(a) == string(b) {
		t.Fatal("null and zero encode identically")
	}
	// Absent entries ignore the carried value.
	c := SetMessage([]uint64{99, 5}, []bool{false, true})
	if string(b) != string(c) {
		t.Fatal("absent entry value leaked into encoding")
	}
}
