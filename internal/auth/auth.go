// Package auth simulates the authentication assumption of the
// authenticated Byzantine model (§7): every node can sign messages,
// everyone can verify every signature, and no node can forge another
// node's signature.
//
// Realization: an Authority holds one HMAC-SHA256 key per node
// (standing in for a PKI). Signing is only reachable through a node's
// own Signer handle, so a Byzantine protocol — which is handed just
// its own Signer — cannot mint signatures for other identities; the
// abstract no-forgery guarantee becomes a property of the object
// graph, while verification still checks real MAC bytes, so the
// Dolev–Strong signature chains are actually validated, not assumed.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"lineartime/internal/rng"
)

// SignatureBits is the wire size charged per signature: a 256-bit MAC
// plus a 16-bit signer name.
const SignatureBits = 256 + 16

// Signature is a node's signature over a message.
type Signature struct {
	Signer int
	MAC    [sha256.Size]byte
}

// Authority holds the key material for one simulated system. It plays
// the role of the PKI: all verification goes through it.
type Authority struct {
	keys [][]byte
}

// NewAuthority creates key material for n nodes, derived
// deterministically from seed.
func NewAuthority(n int, seed uint64) *Authority {
	r := rng.New(seed ^ 0x5175_e1f5_a11c_e5)
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 32)
		for j := 0; j < 32; j += 8 {
			binary.LittleEndian.PutUint64(k[j:], r.Uint64())
		}
		keys[i] = k
	}
	return &Authority{keys: keys}
}

// N returns the number of identities.
func (a *Authority) N() int { return len(a.keys) }

// Signer returns node id's signing handle. Protocols must receive only
// their own node's Signer.
func (a *Authority) Signer(id int) *Signer {
	if id < 0 || id >= len(a.keys) {
		panic("auth: signer id out of range")
	}
	return &Signer{authority: a, id: id}
}

// Verify reports whether sig is signer's valid signature over msg.
func (a *Authority) Verify(msg []byte, sig Signature) bool {
	if sig.Signer < 0 || sig.Signer >= len(a.keys) {
		return false
	}
	mac := a.mac(sig.Signer, msg)
	return hmac.Equal(mac[:], sig.MAC[:])
}

// VerifyChain reports whether every signature in the chain is valid
// over msg, all signers are distinct, and (if required ≥ 0) the chain
// has at least `required` signatures.
func (a *Authority) VerifyChain(msg []byte, chain []Signature, required int) bool {
	if required >= 0 && len(chain) < required {
		return false
	}
	seen := make(map[int]bool, len(chain))
	for _, sig := range chain {
		if seen[sig.Signer] || !a.Verify(msg, sig) {
			return false
		}
		seen[sig.Signer] = true
	}
	return true
}

func (a *Authority) mac(id int, msg []byte) [sha256.Size]byte {
	h := hmac.New(sha256.New, a.keys[id])
	h.Write(msg)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Signer signs messages as one fixed identity.
type Signer struct {
	authority *Authority
	id        int
}

// ID returns the identity this handle signs for.
func (s *Signer) ID() int { return s.id }

// Sign produces the identity's signature over msg.
func (s *Signer) Sign(msg []byte) Signature {
	return Signature{Signer: s.id, MAC: s.authority.mac(s.id, msg)}
}

// ValueMessage canonically encodes the (source, value) pair that
// Dolev–Strong signature chains cover.
func ValueMessage(source int, value uint64) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf, uint32(source))
	binary.LittleEndian.PutUint64(buf[4:], value)
	return buf
}

// SetMessage canonically encodes an authenticated common set of values
// for the endorsement signatures of AB-Consensus: the per-source
// values with presence flags (null values encoded as absent).
func SetMessage(values []uint64, present []bool) []byte {
	buf := make([]byte, 0, 9*len(values))
	for i, v := range values {
		if present[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
			v = 0
		}
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// InquiryMessage canonically encodes a Part 4 authenticated inquiry.
func InquiryMessage(from int) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, uint32(from))
	return buf
}
