// Package link provides the link-level fault models that plug into the
// simulator's fault-injection layer (sim.LinkFilter): message omission
// with a per-link loss rate, network partitions over a round window,
// and adversarially delayed delivery bounded by a parameter d.
//
// Unlike the node-level crash strategies of internal/crash, these
// faults never kill a node — they act on individual envelopes in
// flight. Every verdict is a pure function of (seed, round, from, to),
// computed by a stateless hash, so a fault value is safe to share
// between runs and produces identical transcripts on the sequential
// and parallel engines regardless of evaluation order.
package link

import (
	"math"

	"lineartime/internal/sim"
)

// mix hashes (seed, round, from, to) into a uniform uint64 with a
// splitmix64-style finalizer. Statelessness is the point: verdicts
// depend only on the link coordinates, never on how many envelopes
// were filtered before.
func mix(seed uint64, round int, from, to sim.NodeID) uint64 {
	x := seed
	x ^= uint64(round) * 0x9e3779b97f4a7c15
	x ^= uint64(from) * 0xbf58476d1ce4e5b9
	x ^= uint64(to) * 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Omission drops each envelope independently with a fixed per-link
// probability — the classic omission-fault model: senders keep paying
// for their traffic, receivers see a lossy network.
type Omission struct {
	// NoFailures provides the no-op node level: omission never
	// crashes anyone.
	sim.NoFailures
	threshold uint64
	seed      uint64
}

// NewOmission builds an omission fault losing each message with the
// given probability (clamped to [0, 1]).
func NewOmission(rate float64, seed uint64) *Omission {
	switch {
	case rate <= 0:
		return &Omission{threshold: 0, seed: seed}
	case rate >= 1:
		return &Omission{threshold: math.MaxUint64, seed: seed}
	}
	return &Omission{threshold: uint64(rate * (1 << 63) * 2), seed: seed}
}

// FilterLink implements sim.LinkFilter.
func (o *Omission) FilterLink(round int, env sim.Envelope) sim.Verdict {
	if mix(o.seed, round, env.From, env.To) < o.threshold {
		return sim.Drop
	}
	return sim.Deliver
}

// MaxDelay implements sim.LinkFilter; omission never delays.
func (*Omission) MaxDelay() int { return 0 }

var _ sim.LinkFilter = (*Omission)(nil)

// Partition splits the network into two sides for the round window
// [Start, End): nodes 0..Cut-1 on one side, the rest on the other.
// Messages crossing the cut during the window are lost; traffic within
// a side, and all traffic outside the window, flows normally — the
// network heals at round End.
type Partition struct {
	// NoFailures provides the no-op node level: a partition never
	// crashes anyone.
	sim.NoFailures
	start, end, cut int
}

// NewPartition builds a partition of the first cut node names away
// from the rest, lasting rounds [start, end).
func NewPartition(start, end, cut int) *Partition {
	return &Partition{start: start, end: end, cut: cut}
}

// FilterLink implements sim.LinkFilter.
func (p *Partition) FilterLink(round int, env sim.Envelope) sim.Verdict {
	if round >= p.start && round < p.end && (env.From < p.cut) != (env.To < p.cut) {
		return sim.Drop
	}
	return sim.Deliver
}

// MaxDelay implements sim.LinkFilter; a partition never delays.
func (*Partition) MaxDelay() int { return 0 }

var _ sim.LinkFilter = (*Partition)(nil)

// Delay delivers each envelope a seeded pseudo-random number of rounds
// late, uniform on [0, d] per link and round — the adversarial
// scheduler of a d-bounded asynchronous network embedded in the
// synchronous engine.
type Delay struct {
	// NoFailures provides the no-op node level: delay never crashes
	// anyone.
	sim.NoFailures
	d    int
	seed uint64
}

// NewDelay builds a delay fault with bound d >= 0.
func NewDelay(d int, seed uint64) *Delay {
	if d < 0 {
		d = 0
	}
	return &Delay{d: d, seed: seed}
}

// FilterLink implements sim.LinkFilter.
func (d *Delay) FilterLink(round int, env sim.Envelope) sim.Verdict {
	if d.d == 0 {
		return sim.Deliver
	}
	return sim.DelayBy(int(mix(d.seed, round, env.From, env.To) % uint64(d.d+1)))
}

// MaxDelay implements sim.LinkFilter.
func (d *Delay) MaxDelay() int { return d.d }

var _ sim.LinkFilter = (*Delay)(nil)
