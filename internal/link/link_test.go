package link

import (
	"testing"

	"lineartime/internal/sim"
)

type bit struct{}

func (bit) SizeBits() int { return 1 }

// chatter sends one envelope to every other node each round until its
// horizon, recording every delivery with its arrival round.
type chatter struct {
	id, n, horizon int
	rounds         int
	got            []sim.Envelope
	gotRound       []int
	out            []sim.Envelope
}

func (c *chatter) Send(round int) []sim.Envelope {
	c.out = c.out[:0]
	for to := 0; to < c.n; to++ {
		if to != c.id {
			c.out = append(c.out, sim.Envelope{From: c.id, To: to, Payload: bit{}})
		}
	}
	return c.out
}

func (c *chatter) Deliver(round int, inbox []sim.Envelope) {
	for _, env := range inbox {
		c.got = append(c.got, env)
		c.gotRound = append(c.gotRound, round)
	}
	c.rounds++
}

func (c *chatter) Halted() bool { return c.rounds >= c.horizon }

func runChatter(t *testing.T, n, horizon int, fault sim.LinkFault) ([]*chatter, *sim.Result) {
	t.Helper()
	cs := make([]*chatter, n)
	ps := make([]sim.Protocol, n)
	for i := range ps {
		cs[i] = &chatter{id: i, n: n, horizon: horizon}
		ps[i] = cs[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: fault, MaxRounds: horizon + 8})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return cs, res
}

func TestOmissionRateExtremes(t *testing.T) {
	const n, horizon = 8, 6
	sent := int64(n * (n - 1) * horizon)

	_, res := runChatter(t, n, horizon, NewOmission(0, 7))
	if res.Metrics.Messages != sent {
		t.Fatalf("rate 0: %d messages counted, want %d", res.Metrics.Messages, sent)
	}
	cs, res := runChatter(t, n, horizon, NewOmission(1, 7))
	// Senders still pay for lost traffic...
	if res.Metrics.Messages != sent {
		t.Fatalf("rate 1: %d messages counted, want %d", res.Metrics.Messages, sent)
	}
	// ...but nothing arrives.
	for _, c := range cs {
		if len(c.got) != 0 {
			t.Fatalf("rate 1: node %d received %d envelopes", c.id, len(c.got))
		}
	}
}

func TestOmissionIntermediateRateLosesSome(t *testing.T) {
	const n, horizon = 10, 8
	cs, _ := runChatter(t, n, horizon, NewOmission(0.3, 11))
	delivered := 0
	for _, c := range cs {
		delivered += len(c.got)
	}
	sent := n * (n - 1) * horizon
	if delivered == 0 || delivered == sent {
		t.Fatalf("rate 0.3 delivered %d of %d, want strictly between", delivered, sent)
	}
	frac := float64(delivered) / float64(sent)
	if frac < 0.5 || frac > 0.9 {
		t.Fatalf("rate 0.3 delivered fraction %.2f, want ≈0.7", frac)
	}
}

func TestOmissionDeterministicAcrossRuns(t *testing.T) {
	const n, horizon = 9, 7
	a, _ := runChatter(t, n, horizon, NewOmission(0.4, 3))
	b, _ := runChatter(t, n, horizon, NewOmission(0.4, 3))
	for i := range a {
		if len(a[i].got) != len(b[i].got) {
			t.Fatalf("node %d: %d vs %d deliveries across identical runs", i, len(a[i].got), len(b[i].got))
		}
	}
}

func TestPartitionWindowAndHealing(t *testing.T) {
	const n, horizon = 6, 8
	const start, end, cut = 2, 5, 3
	cs, _ := runChatter(t, n, horizon, NewPartition(start, end, cut))
	for _, c := range cs {
		for k, env := range c.got {
			r := c.gotRound[k]
			crossing := (env.From < cut) != (c.id < cut)
			if crossing && r >= start && r < end {
				t.Fatalf("node %d received cross-cut envelope from %d at round %d inside the window", c.id, env.From, r)
			}
		}
		// Outside the window every link works: count arrivals per round.
		perRound := make(map[int]int)
		for _, r := range c.gotRound {
			perRound[r]++
		}
		for r := 0; r < horizon; r++ {
			want := n - 1
			if r >= start && r < end {
				want = cut - 1
				if c.id >= cut {
					want = n - cut - 1
				}
			}
			if perRound[r] != want {
				t.Fatalf("node %d round %d: %d arrivals, want %d", c.id, r, perRound[r], want)
			}
		}
	}
}

func TestDelayBoundedAndLossless(t *testing.T) {
	const n, horizon, d = 6, 10, 3
	cs, _ := runChatter(t, n, horizon, NewDelay(d, 5))
	// Every node halts at its horizon; messages still in flight at the
	// end are lost, so only count arrivals from sends before the tail.
	total := 0
	for _, c := range cs {
		total += len(c.got)
	}
	// All messages sent in rounds [0, horizon-d) must have arrived.
	minArrived := n * (n - 1) * (horizon - d)
	if total < minArrived {
		t.Fatalf("%d deliveries, want at least %d", total, minArrived)
	}
	// A zero-bound delay is the identity.
	cs0, _ := runChatter(t, n, horizon, NewDelay(0, 5))
	for _, c := range cs0 {
		if len(c.got) != (n-1)*horizon {
			t.Fatalf("d=0: node %d received %d, want %d", c.id, len(c.got), (n-1)*horizon)
		}
	}
}

func TestDelayInboxStaysSenderSorted(t *testing.T) {
	const n, horizon, d = 8, 9, 2
	cs, _ := runChatter(t, n, horizon, NewDelay(d, 9))
	for _, c := range cs {
		last := -1
		lastRound := -1
		for k, env := range c.got {
			if c.gotRound[k] != lastRound {
				last, lastRound = -1, c.gotRound[k]
			}
			if env.From < last {
				t.Fatalf("node %d round %d: inbox out of sender order", c.id, lastRound)
			}
			last = env.From
		}
	}
}

func TestDelayParallelMatchesSequential(t *testing.T) {
	const n, horizon, d = 12, 8, 2
	mk := func() ([]sim.Protocol, []*chatter) {
		cs := make([]*chatter, n)
		ps := make([]sim.Protocol, n)
		for i := range ps {
			cs[i] = &chatter{id: i, n: n, horizon: horizon}
			ps[i] = cs[i]
		}
		return ps, cs
	}
	for _, fault := range []sim.LinkFault{NewDelay(d, 21), NewOmission(0.25, 21), NewPartition(1, 4, n/2)} {
		seqPs, seqCs := mk()
		seqRes, err := sim.Run(sim.Config{Protocols: seqPs, Fault: fault, MaxRounds: horizon + 8})
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		parPs, parCs := mk()
		parRes, err := sim.RunParallel(sim.Config{Protocols: parPs, Fault: fault, MaxRounds: horizon + 8}, 3)
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if seqRes.Metrics.Rounds != parRes.Metrics.Rounds ||
			seqRes.Metrics.Messages != parRes.Metrics.Messages ||
			seqRes.Metrics.Bits != parRes.Metrics.Bits {
			t.Fatalf("metrics diverged: %+v vs %+v", seqRes.Metrics, parRes.Metrics)
		}
		for i := range seqCs {
			if len(seqCs[i].got) != len(parCs[i].got) {
				t.Fatalf("node %d: %d vs %d deliveries", i, len(seqCs[i].got), len(parCs[i].got))
			}
			for k := range seqCs[i].got {
				if seqCs[i].got[k] != parCs[i].got[k] || seqCs[i].gotRound[k] != parCs[i].gotRound[k] {
					t.Fatalf("node %d delivery %d diverged", i, k)
				}
			}
		}
	}
}
