package sim

import "testing"

// Alloc-regression guard: a pooled Runtime's steady-state (post-warmup)
// run must be allocation-free on the fault-free and crash paths, and on
// the link-fault path with inline payloads — the delay ring, like every
// other arena buffer, grows to the run's peak once and then recycles.
// Only the escape side table may grow while escapes are parked across
// rounds (wire.go documents the bound), which these configs avoid by
// sending inline payloads only.

// The guard's protocol is the shared broadcaster benchmark harness
// (engine_bench_test.go): fixed fanout of inline one-bit payloads,
// persistent pre-sized outbox, resettable.

// allocDelayFilter delays a deterministic slice of the traffic and
// drops another, with MaxDelay 2, using no per-verdict state.
type allocDelayFilter struct{}

func (allocDelayFilter) FilterSend(_ int, _ NodeID, out []Envelope) ([]Envelope, bool) {
	return out, false
}

func (allocDelayFilter) FilterLink(round int, env Envelope) Verdict {
	switch (env.From + env.To + round) % 7 {
	case 0:
		return Drop
	case 1:
		return DelayBy(1)
	case 2:
		return DelayBy(2)
	default:
		return Deliver
	}
}

func (allocDelayFilter) MaxDelay() int { return 2 }

// resetWordFlood rewinds the lane-parallel flooding system to its
// initial state so the sliced alloc guard reuses one system across
// runs (a fresh system would charge its own construction to the run).
func resetWordFlood(w *wordFlood, inputs []bool) {
	for i := range w.candidate {
		w.candidate[i], w.pending[i] = 0, 0
		if i < len(inputs) && inputs[i] {
			w.candidate[i], w.pending[i] = w.all, w.all
		}
		w.flooded[i], w.decided[i], w.decision[i], w.halted[i] = 0, 0, 0, 0
	}
}

// TestRuntimeSlicedSteadyStateAllocs is the sliced engine's 0-alloc
// guard: a pooled sliced run at full width — with per-lane crash
// schedules and link filters in the mix — must be allocation-free once
// the arena has grown to the shape's peak.
func TestRuntimeSlicedSteadyStateAllocs(t *testing.T) {
	const n, tBound, lanes = 128, 8, 64
	inputs := make([]bool, n)
	for i := range inputs {
		inputs[i] = i%3 == 0
	}
	faults := make([]LinkFault, lanes)
	for lane := range faults {
		switch lane % 3 {
		case 1:
			faults[lane] = planCrash{events: laneCrashEvents(n, n/8, tBound+2, uint64(500+lane))}
		case 2:
			faults[lane] = hashLink{d: 2, seed: uint64(900 + lane)}
		}
	}
	w := newWordFlood(n, tBound, lanes, inputs)
	cfg := SlicedConfig{System: w, Lanes: lanes, MaxRounds: tBound + 2 + 4, Faults: faults}
	rt := NewRuntime()
	var runErr error
	oneRun := func() {
		resetWordFlood(w, inputs)
		if _, err := rt.RunSliced(cfg); err != nil {
			runErr = err
		}
	}
	oneRun()
	oneRun()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
		t.Fatalf("steady-state sliced run allocated %.1f times; want 0", allocs)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}

func TestRuntimeSteadyStateAllocs(t *testing.T) {
	const n, fanout, horizon = 256, 4, 12
	cases := []struct {
		name  string
		fault LinkFault
	}{
		{name: "fault-free", fault: nil},
		{name: "crash", fault: newMultiCrash(n, n/8, horizon, 99)},
		{name: "link-delay", fault: allocDelayFilter{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ps := make([]Protocol, n)
			bs := make([]*broadcaster, n)
			for i := 0; i < n; i++ {
				bs[i] = &broadcaster{id: i, n: n, fanout: fanout, horizon: horizon,
					out: make([]Envelope, 0, fanout)}
				ps[i] = bs[i]
			}
			cfg := Config{Protocols: ps, Fault: c.fault, MaxRounds: horizon + 4}
			rt := NewRuntime()
			var runErr error
			oneRun := func() {
				for _, b := range bs {
					b.reset()
				}
				if _, err := rt.Run(cfg); err != nil {
					runErr = err
				}
			}
			// Two warmup runs grow every arena buffer to its peak.
			oneRun()
			oneRun()
			if runErr != nil {
				t.Fatal(runErr)
			}
			if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
				t.Fatalf("steady-state pooled run allocated %.1f times; want 0", allocs)
			}
			if runErr != nil {
				t.Fatal(runErr)
			}
		})
	}
}
