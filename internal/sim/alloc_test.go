package sim

import (
	"testing"

	"lineartime/internal/graph"
)

// Alloc-regression guard: a pooled Runtime's steady-state (post-warmup)
// run must be allocation-free on the fault-free and crash paths, and on
// the link-fault path with inline payloads — the delay ring, like every
// other arena buffer, grows to the run's peak once and then recycles.
// Only the escape side table may grow while escapes are parked across
// rounds (wire.go documents the bound), which these configs avoid by
// sending inline payloads only.

// The guard's protocol is the shared broadcaster benchmark harness
// (engine_bench_test.go): fixed fanout of inline one-bit payloads,
// persistent pre-sized outbox, resettable.

// allocDelayFilter delays a deterministic slice of the traffic and
// drops another, with MaxDelay 2, using no per-verdict state.
type allocDelayFilter struct{}

func (allocDelayFilter) FilterSend(_ int, _ NodeID, out []Envelope) ([]Envelope, bool) {
	return out, false
}

func (allocDelayFilter) FilterLink(round int, env Envelope) Verdict {
	switch (env.From + env.To + round) % 7 {
	case 0:
		return Drop
	case 1:
		return DelayBy(1)
	case 2:
		return DelayBy(2)
	default:
		return Deliver
	}
}

func (allocDelayFilter) MaxDelay() int { return 2 }

// resetWordFlood rewinds the lane-parallel flooding system to its
// initial state so the sliced alloc guard reuses one system across
// runs (a fresh system would charge its own construction to the run).
func resetWordFlood(w *wordFlood, inputs []bool) {
	for i := range w.candidate {
		w.candidate[i], w.pending[i] = 0, 0
		if i < len(inputs) && inputs[i] {
			w.candidate[i], w.pending[i] = w.all, w.all
		}
		w.flooded[i], w.decided[i], w.decision[i], w.halted[i] = 0, 0, 0, 0
	}
}

// TestRuntimeSlicedSteadyStateAllocs is the sliced engine's 0-alloc
// guard: a pooled sliced run at full width — with per-lane crash
// schedules and link filters in the mix — must be allocation-free once
// the arena has grown to the shape's peak.
func TestRuntimeSlicedSteadyStateAllocs(t *testing.T) {
	const n, tBound, lanes = 128, 8, 64
	inputs := make([]bool, n)
	for i := range inputs {
		inputs[i] = i%3 == 0
	}
	faults := make([]LinkFault, lanes)
	for lane := range faults {
		switch lane % 3 {
		case 1:
			faults[lane] = planCrash{events: laneCrashEvents(n, n/8, tBound+2, uint64(500+lane))}
		case 2:
			faults[lane] = hashLink{d: 2, seed: uint64(900 + lane)}
		}
	}
	w := newWordFlood(n, tBound, lanes, inputs)
	cfg := SlicedConfig{System: w, Lanes: lanes, MaxRounds: tBound + 2 + 4, Faults: faults}
	rt := NewRuntime()
	var runErr error
	oneRun := func() {
		resetWordFlood(w, inputs)
		if _, err := rt.RunSliced(cfg); err != nil {
			runErr = err
		}
	}
	oneRun()
	oneRun()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
		t.Fatalf("steady-state sliced run allocated %.1f times; want 0", allocs)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}

func TestRuntimeSteadyStateAllocs(t *testing.T) {
	const n, fanout, horizon = 256, 4, 12
	cases := []struct {
		name  string
		fault LinkFault
	}{
		{name: "fault-free", fault: nil},
		{name: "crash", fault: newMultiCrash(n, n/8, horizon, 99)},
		{name: "link-delay", fault: allocDelayFilter{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ps := make([]Protocol, n)
			bs := make([]*broadcaster, n)
			for i := 0; i < n; i++ {
				bs[i] = &broadcaster{id: i, n: n, fanout: fanout, horizon: horizon,
					out: make([]Envelope, 0, fanout)}
				ps[i] = bs[i]
			}
			cfg := Config{Protocols: ps, Fault: c.fault, MaxRounds: horizon + 4}
			rt := NewRuntime()
			var runErr error
			oneRun := func() {
				for _, b := range bs {
					b.reset()
				}
				if _, err := rt.Run(cfg); err != nil {
					runErr = err
				}
			}
			// Two warmup runs grow every arena buffer to its peak.
			oneRun()
			oneRun()
			if runErr != nil {
				t.Fatal(runErr)
			}
			if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
				t.Fatalf("steady-state pooled run allocated %.1f times; want 0", allocs)
			}
			if runErr != nil {
				t.Fatal(runErr)
			}
		})
	}
}

// TestRuntimeCastSteadyStateAllocs is the neighborcast engine's 0-alloc
// guard: pooled implicit-topology cast runs — sequential and sharded,
// with clean crashes and a link filter in the mix — must be
// allocation-free once the arena has grown to the shape's peak. This is
// what makes the implicit mode's O(n)-bits residency claim honest:
// nothing per-round ever touches the allocator, so the planes ARE the
// footprint.
func TestRuntimeCastSteadyStateAllocs(t *testing.T) {
	const n, d, horizon = 256, 8, 12
	sh, err := graph.NewShift(n, d, 0x11)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := make([]int, n)
	for i := range crashAt {
		crashAt[i] = -1
		if i%31 == 2 {
			crashAt[i] = i % 5
		}
	}
	crash := func(u int) int { return crashAt[u] }
	cases := []struct {
		name string
		cfg  CastConfig
	}{
		{name: "fault-free", cfg: CastConfig{Topology: sh, MaxRounds: horizon}},
		{name: "crash", cfg: CastConfig{Topology: sh, MaxRounds: horizon, Crash: crash}},
		{name: "link-omission", cfg: CastConfig{Topology: sh, MaxRounds: horizon,
			Crash: crash, Filter: hashOmission{seed: 5}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := newFloodCast(n, 0)
			cfg := c.cfg
			cfg.System = sys
			for _, par := range []bool{false, true} {
				name := "sequential"
				if par {
					name = "parallel"
				}
				t.Run(name, func(t *testing.T) {
					rt := NewRuntime()
					defer rt.Close()
					var runErr error
					oneRun := func() {
						sys.reset(0)
						var err error
						if par {
							_, err = rt.RunCastParallel(cfg, 4)
						} else {
							_, err = rt.RunCast(cfg)
						}
						if err != nil {
							runErr = err
						}
					}
					oneRun()
					oneRun()
					if runErr != nil {
						t.Fatal(runErr)
					}
					if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
						t.Fatalf("steady-state cast run allocated %.1f times; want 0", allocs)
					}
					if runErr != nil {
						t.Fatal(runErr)
					}
				})
			}
		})
	}
}

// TestRuntimeCastSlicedSteadyStateAllocs is the sliced neighborcast
// engine's 0-alloc guard at full lane width.
func TestRuntimeCastSlicedSteadyStateAllocs(t *testing.T) {
	const n, d, horizon, lanes = 256, 8, 12, 64
	sh, err := graph.NewShift(n, d, 0x12)
	if err != nil {
		t.Fatal(err)
	}
	sys := &floodLanes{n: n, informed: make([]uint64, n)}
	seed := func() {
		for u := range sys.informed {
			sys.informed[u] = 0
		}
		for lane := 0; lane < lanes; lane++ {
			sys.informed[(lane*37)%n] |= 1 << lane
		}
	}
	cfg := CastSlicedConfig{System: sys, Topology: sh, MaxRounds: horizon, Lanes: lanes}
	rt := NewRuntime()
	var runErr error
	oneRun := func() {
		seed()
		if _, err := rt.RunCastSliced(cfg); err != nil {
			runErr = err
		}
	}
	oneRun()
	oneRun()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
		t.Fatalf("steady-state sliced cast run allocated %.1f times; want 0", allocs)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}
