package sim

import (
	"testing"
)

// The delayRing boundary suite: delivery at exactly MaxDelay, slot
// recycling across a horizon longer than the ring, messages still in
// flight when the run completes, and the zero-delay degenerate cases.

// stampPayload carries its send round so receivers can verify exactly
// when each message was due.
type stampPayload struct{ round int }

func (stampPayload) SizeBits() int { return 32 }

// stamper is a two-role protocol: node 0 sends one stamped message to
// node 1 every round; every node runs exactly live rounds. Node 1
// records, per delivery round, the send rounds of what arrived.
type stamper struct {
	id, n, live int
	rounds      int
	arrivals    map[int][]int
	out         [1]Envelope
}

func (s *stamper) Send(round int) []Envelope {
	if s.id != 0 {
		return nil
	}
	s.out[0] = Envelope{From: 0, To: 1, Payload: stampPayload{round: round}}
	return s.out[:]
}

func (s *stamper) Deliver(round int, msgs []Envelope) {
	s.rounds++
	for i := range msgs {
		if p, ok := msgs[i].Payload.(stampPayload); ok {
			s.arrivals[round] = append(s.arrivals[round], p.round)
		}
	}
}

func (s *stamper) Halted() bool { return s.rounds >= s.live }

// delayAll delays every envelope by a fixed amount within its bound.
type delayAll struct {
	NoFailures
	by    int
	bound int
}

func (f delayAll) FilterLink(int, Envelope) Verdict { return DelayBy(f.by) }
func (f delayAll) MaxDelay() int                    { return f.bound }

func stamperRun(t *testing.T, live int, fault LinkFault, parallel bool) map[int][]int {
	t.Helper()
	ps := make([]Protocol, 2)
	receiver := &stamper{id: 1, n: 2, live: live, arrivals: map[int][]int{}}
	ps[0] = &stamper{id: 0, n: 2, live: live, arrivals: map[int][]int{}}
	ps[1] = receiver
	cfg := Config{Protocols: ps, Fault: fault, MaxRounds: live + 4}
	var err error
	if parallel {
		_, err = RunParallel(cfg, 2)
	} else {
		_, err = Run(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return receiver.arrivals
}

// TestDelayExactlyMaxDelay pins the upper boundary of the delay
// contract: a verdict of exactly MaxDelay is legal (the ring has a
// slot for it — off-by-one here would alias the current round's slot)
// and the message arrives exactly MaxDelay rounds after its send.
func TestDelayExactlyMaxDelay(t *testing.T) {
	const d, live = 3, 10
	for _, parallel := range []bool{false, true} {
		arrivals := stamperRun(t, live, delayAll{by: d, bound: d}, parallel)
		if len(arrivals) == 0 {
			t.Fatal("nothing arrived")
		}
		for r, sends := range arrivals {
			if len(sends) != 1 || sends[0] != r-d {
				t.Fatalf("parallel=%v: round %d received sends %v, want [%d]", parallel, r, sends, r-d)
			}
		}
		if _, ok := arrivals[d]; !ok {
			t.Fatalf("parallel=%v: round-0 send did not arrive at round %d: %v", parallel, d, arrivals)
		}
		for r := 0; r < d; r++ {
			if sends, ok := arrivals[r]; ok {
				t.Fatalf("parallel=%v: round %d received %v before any message was due", parallel, r, sends)
			}
		}
	}
}

// TestDelayRingWrapAroundAndEndOfHorizon runs long enough that every
// ring slot is recycled several times, and checks the two boundary
// behaviors at once: every slot reuse delivers exactly the send it
// holds (no aliasing between send r and send r+d+1, which share a
// slot), and messages whose arrival lies past the final round are
// lost — in flight at completion, like messages to crashed nodes.
func TestDelayRingWrapAroundAndEndOfHorizon(t *testing.T) {
	const d, live = 2, 8 // ring of d+1=3 slots, recycled ~3 times
	arrivals := stamperRun(t, live, delayAll{by: d, bound: d}, false)
	total := 0
	for r, sends := range arrivals {
		total += len(sends)
		if len(sends) != 1 || sends[0] != r-d {
			t.Fatalf("round %d received sends %v, want [%d]", r, sends, r-d)
		}
	}
	// live sends happen (rounds 0..live-1); the last d of them arrive
	// after the final round and are lost.
	if want := live - d; total != want {
		t.Fatalf("received %d messages, want %d (%d sent, %d still in flight at completion)", total, want, live, d)
	}
}

// TestZeroDelayVerdicts pins the degenerate delay cases: DelayBy(0)
// and negative delays are the Deliver verdict, a filter with
// MaxDelay 0 that only delivers runs without a ring, and a filter
// with a positive bound that never delays still delivers every
// message in its send round.
func TestZeroDelayVerdicts(t *testing.T) {
	if DelayBy(0) != Deliver {
		t.Fatalf("DelayBy(0) = %d, want Deliver", DelayBy(0))
	}
	if DelayBy(-3) != Deliver {
		t.Fatalf("DelayBy(-3) = %d, want Deliver", DelayBy(-3))
	}
	const live = 6
	cases := []struct {
		name  string
		fault LinkFilter
	}{
		{"zero-bound-no-ring", delayAll{by: 0, bound: 0}},
		{"positive-bound-never-delays", delayAll{by: 0, bound: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arrivals := stamperRun(t, live, tc.fault, false)
			total := 0
			for r, sends := range arrivals {
				total += len(sends)
				if len(sends) != 1 || sends[0] != r {
					t.Fatalf("round %d received sends %v, want same-round [%d]", r, sends, r)
				}
			}
			if total != live {
				t.Fatalf("received %d messages, want all %d (no delay, no loss)", total, live)
			}
		})
	}
}

// TestDelayRingUnit exercises the ring directly: modulo indexing,
// slot recycling with capacity kept, and reset clearing in-flight
// messages left by a completed run.
func TestDelayRingUnit(t *testing.T) {
	ring := newDelayRing(2) // 3 slots
	if got := len(ring.slots); got != 3 {
		t.Fatalf("ring of MaxDelay 2 has %d slots, want 3", got)
	}
	a := wireMsg{From: 1}
	b := wireMsg{From: 2}
	ring.push(4, a) // slot 1
	ring.push(7, b) // slot 1 again, one lap later — coexists until round 4 is taken
	got := ring.take(4)
	if len(got) != 2 {
		t.Fatalf("take(4) = %d messages, want 2 (both slot-1 residents)", len(got))
	}
	if more := ring.take(7); len(more) != 0 {
		t.Fatalf("take(7) after recycling = %d messages, want 0", len(more))
	}
	// The recycled slot keeps its capacity for reuse.
	ring.push(10, a)
	if again := ring.take(10); len(again) != 1 || again[0].From != 1 {
		t.Fatalf("recycled slot take = %+v", again)
	}
	ring.push(2, b)
	ring.reset()
	for r := 0; r < 3; r++ {
		if left := ring.take(r); len(left) != 0 {
			t.Fatalf("reset left %d messages in slot %d", len(left), r)
		}
	}
}
