package sim

// scratch is the engines' reusable per-round workspace: a CSR-style
// (count-then-place) inbox builder that replaces the per-round
// make([][]Envelope, n) allocation and per-envelope appends of the
// original engine with two flat buffers that persist across rounds.
// The buffers carry packed wireMsgs (wire.go), so the staging pass and
// the scatter move 16-byte words instead of 32-byte Envelopes — at
// n=4096 the scatter's random writes touch half the cache lines.
//
// The send phase stages every deliverable message into flat in sender
// order while counting per-destination totals; place then prefix-sums
// the counts into offsets and scatters flat into inbox, so each
// destination's segment is contiguous. Because flat is filled in
// increasing sender order and the scatter is stable, every segment is
// already sorted by sender — the delivery-order guarantee of
// Protocol.Deliver holds with no per-node sort. (The parallel fast
// path computes the same offsets from shard-local counts and lets each
// worker scatter its own staged run; see pool.go.)
//
// Inbox segments alias scratch memory that is overwritten next round;
// the Protocol contract (see Deliver) forbids retaining them.
type scratch struct {
	n      int
	flat   []wireMsg // staged messages, in sender order
	counts []int32   // per-destination counts; reused as scatter cursors
	offs   []int32   // per-destination segment offsets, len n+1
	inbox  []wireMsg // placed messages, grouped by destination
}

// init sizes the workspace for n nodes, keeping whatever buffer
// capacity an earlier run on the same arena already grew.
func (s *scratch) init(n int) {
	s.n = n
	s.counts = growSlice(s.counts, n)
	s.offs = growSlice(s.offs, n+1)
}

// beginRound resets the workspace, keeping capacity.
func (s *scratch) beginRound() {
	s.flat = s.flat[:0]
	clear(s.counts)
}

// stage1 appends one packed message. count is false in the single-port
// model, where flat feeds port deposits instead of the counting sort.
func (s *scratch) stage1(wm wireMsg, count bool) {
	s.flat = append(s.flat, wm)
	if count {
		s.counts[wm.To]++
	}
}

// stage appends a batch of already-packed messages (delayed arrivals
// re-entering from the ring).
func (s *scratch) stage(ms []wireMsg, count bool) {
	s.flat = append(s.flat, ms...)
	if count {
		for i := range ms {
			s.counts[ms[i].To]++
		}
	}
}

// sizeInbox makes the placed buffer hold exactly total messages,
// reusing capacity.
func (s *scratch) sizeInbox(total int) {
	s.inbox = growSlice(s.inbox, total)
}

// place builds the per-destination inbox segments from the staged
// messages. Allocation-free once the buffers have grown to the run's
// peak message volume.
func (s *scratch) place() {
	off := int32(0)
	for i, c := range s.counts {
		s.offs[i] = off
		off += c
	}
	s.offs[s.n] = off
	s.sizeInbox(len(s.flat))
	// counts has served its purpose; reuse it as the scatter cursors.
	cur := s.counts
	copy(cur, s.offs[:s.n])
	for i := range s.flat {
		to := s.flat[i].To
		s.inbox[cur[to]] = s.flat[i]
		cur[to]++
	}
}

// inboxOf returns the destination's placed segment, nil when empty.
func (s *scratch) inboxOf(id NodeID) []wireMsg {
	lo, hi := s.offs[id], s.offs[id+1]
	if lo == hi {
		return nil
	}
	return s.inbox[lo:hi:hi]
}

// growSlice returns buf resized to n, reallocating only when the
// capacity is insufficient. Contents beyond a reused prefix are stale;
// callers clear what they need.
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
