package sim

// scratch is the engines' reusable per-round workspace: a CSR-style
// (count-then-place) inbox builder that replaces the per-round
// make([][]Envelope, n) allocation and per-envelope appends of the
// original engine with two flat buffers that persist across rounds.
//
// The send phase stages every deliverable envelope into flat in sender
// order while counting per-destination totals; place then prefix-sums
// the counts into offsets and scatters flat into inbox, so each
// destination's segment is contiguous. Because flat is filled in
// increasing sender order and the scatter is stable, every segment is
// already sorted by sender — the delivery-order guarantee of
// Protocol.Deliver holds with no per-node sort.
//
// Inbox segments alias scratch memory that is overwritten next round;
// the Protocol contract (see Deliver) forbids retaining them.
type scratch struct {
	n      int
	flat   []Envelope // staged envelopes, in sender order
	counts []int32    // per-destination counts; reused as scatter cursors
	offs   []int32    // per-destination segment offsets, len n+1
	inbox  []Envelope // placed envelopes, grouped by destination
}

func newScratch(n int) *scratch {
	return &scratch{
		n:      n,
		counts: make([]int32, n),
		offs:   make([]int32, n+1),
	}
}

// beginRound resets the workspace, keeping capacity.
func (s *scratch) beginRound() {
	s.flat = s.flat[:0]
	clear(s.counts)
}

// stage appends a sender's deliverable envelopes. count is false in the
// single-port model, where flat feeds port deposits instead of the
// counting sort.
func (s *scratch) stage(deliver []Envelope, count bool) {
	s.flat = append(s.flat, deliver...)
	if count {
		for i := range deliver {
			s.counts[deliver[i].To]++
		}
	}
}

// place builds the per-destination inbox segments from the staged
// envelopes. Allocation-free once the buffers have grown to the run's
// peak message volume.
func (s *scratch) place() {
	off := int32(0)
	for i, c := range s.counts {
		s.offs[i] = off
		off += c
	}
	s.offs[s.n] = off
	if cap(s.inbox) < len(s.flat) {
		s.inbox = make([]Envelope, len(s.flat))
	} else {
		s.inbox = s.inbox[:len(s.flat)]
	}
	// counts has served its purpose; reuse it as the scatter cursors.
	cur := s.counts
	copy(cur, s.offs[:s.n])
	for i := range s.flat {
		to := s.flat[i].To
		s.inbox[cur[to]] = s.flat[i]
		cur[to]++
	}
}

// inboxOf returns the destination's inbox segment, nil when empty. The
// capacity is clipped so a protocol appending to its inbox cannot
// clobber a neighbour's segment.
func (s *scratch) inboxOf(id NodeID) []Envelope {
	lo, hi := s.offs[id], s.offs[id+1]
	if lo == hi {
		return nil
	}
	return s.inbox[lo:hi:hi]
}
