package sim

import (
	"reflect"
	"runtime"
	"testing"

	"lineartime/internal/graph"
)

// floodCast is the canonical neighborcast system: sources know a rumor,
// every informed node casts 1 to its neighborhood each round, a node
// becomes informed when any casting neighbor's 1 gets through. It is
// the cast-engine twin of the flooding Protocol below, which the parity
// tests pin against the general engine.
type floodCast struct {
	n        int
	informed []bool
}

func newFloodCast(n int, sources ...int) *floodCast {
	f := &floodCast{n: n, informed: make([]bool, n)}
	for _, s := range sources {
		f.informed[s] = true
	}
	return f
}

func (f *floodCast) N() int                     { return f.n }
func (f *floodCast) Cast(u, _ int) (bool, bool) { return true, f.informed[u] }
func (f *floodCast) Done(_ int) bool            { return false }
func (f *floodCast) Absorb(u, _, ones, _ int) {
	if ones > 0 {
		f.informed[u] = true
	}
}

func (f *floodCast) reset(sources ...int) {
	for i := range f.informed {
		f.informed[i] = false
	}
	for _, s := range sources {
		f.informed[s] = true
	}
}

// floodProto is the same flood as a general-engine Protocol: informed
// nodes broadcast Bit(true) to their (materialized) neighbor list, all
// nodes halt together at the horizon so both engines execute the exact
// same number of rounds.
type floodProto struct {
	id       int
	nbrs     []int
	informed bool
	horizon  int
	rounds   int
	out      []Envelope
}

func (p *floodProto) Send(_ int) []Envelope {
	if !p.informed {
		return nil
	}
	p.out = p.out[:0]
	for _, w := range p.nbrs {
		p.out = append(p.out, Envelope{From: p.id, To: w, Payload: Bit(true)})
	}
	return p.out
}

func (p *floodProto) Deliver(round int, inbox []Envelope) {
	for _, env := range inbox {
		if bool(env.Payload.(Bit)) {
			p.informed = true
		}
	}
	p.rounds = round + 1
}

func (p *floodProto) Halted() bool { return p.rounds >= p.horizon }

// cleanCrashFault crashes node u cleanly (no partial multicast) at
// round at[u]; negative means never.
type cleanCrashFault struct{ at []int }

func (f cleanCrashFault) FilterSend(round int, from NodeID, outbox []Envelope) ([]Envelope, bool) {
	if r := f.at[from]; r >= 0 && round >= r {
		return nil, true
	}
	return outbox, false
}

// hashOmission drops a deterministic ~1/8 of the traffic as a pure
// function of (round, from, to) — stateless, so the sender-major order
// of the general engine and the receiver-major order of the cast
// engine see identical verdicts.
type hashOmission struct{ seed uint64 }

func (hashOmission) FilterSend(_ int, _ NodeID, out []Envelope) ([]Envelope, bool) {
	return out, false
}

func (f hashOmission) FilterLink(round int, env Envelope) Verdict {
	x := f.seed ^ uint64(round)*0x9e3779b97f4a7c15 ^ uint64(env.From)<<20 ^ uint64(env.To)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	if x&7 == 0 {
		return Drop
	}
	return Deliver
}

func (hashOmission) MaxDelay() int { return 0 }

// crashOmission layers clean crashes under the omission filter.
type crashOmission struct {
	crash cleanCrashFault
	om    hashOmission
}

func (f crashOmission) FilterSend(r int, from NodeID, out []Envelope) ([]Envelope, bool) {
	return f.crash.FilterSend(r, from, out)
}
func (f crashOmission) FilterLink(r int, env Envelope) Verdict { return f.om.FilterLink(r, env) }
func (crashOmission) MaxDelay() int                            { return 0 }

// TestCastFloodParityWithProtocolEngine pins the cast engine against
// the general engine: the same flood over the same shift topology —
// implicit on the cast side, materialized on the protocol side — must
// agree on rounds, message/bit counts, the crash set, and the informed
// set, under no faults, clean crashes, link omission, and both at once.
func TestCastFloodParityWithProtocolEngine(t *testing.T) {
	const n, d, horizon = 240, 8, 12
	sh, err := graph.NewShift(n, d, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Materialize(sh)

	crashAt := make([]int, n)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[3] = 0
	crashAt[10] = 2
	crashAt[0] = 4 // the source dies mid-flood
	crashAt[50] = 5
	crashAt[n-1] = horizon + 5 // past the horizon: never fires

	cases := []struct {
		name  string
		crash bool
		omit  bool
	}{
		{"fault-free", false, false},
		{"clean-crashes", true, false},
		{"omission", false, true},
		{"crash-omission", true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// General engine on the materialized graph.
			protos := make([]Protocol, n)
			fps := make([]*floodProto, n)
			for u := 0; u < n; u++ {
				fps[u] = &floodProto{id: u, nbrs: g.Neighbors(u), horizon: horizon, informed: u == 0}
				protos[u] = fps[u]
			}
			var fault LinkFault
			switch {
			case c.crash && c.omit:
				fault = crashOmission{crash: cleanCrashFault{at: crashAt}, om: hashOmission{seed: 42}}
			case c.crash:
				fault = cleanCrashFault{at: crashAt}
			case c.omit:
				fault = hashOmission{seed: 42}
			}
			want, err := Run(Config{Protocols: protos, Fault: fault, MaxRounds: horizon})
			if err != nil {
				t.Fatal(err)
			}

			// Cast engine on the implicit topology.
			sys := newFloodCast(n, 0)
			cfg := CastConfig{System: sys, Topology: sh, MaxRounds: horizon}
			if c.crash {
				cfg.Crash = func(u int) int { return crashAt[u] }
			}
			if c.omit {
				cfg.Filter = hashOmission{seed: 42}
			}
			got, err := RunCast(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if got.Rounds != want.Metrics.Rounds {
				t.Errorf("rounds: cast %d, protocol %d", got.Rounds, want.Metrics.Rounds)
			}
			if got.Messages != want.Metrics.Messages || got.Bits != want.Metrics.Bits {
				t.Errorf("traffic: cast %d msgs / %d bits, protocol %d msgs / %d bits",
					got.Messages, got.Bits, want.Metrics.Messages, want.Metrics.Bits)
			}
			if alive := n - want.Crashed.Count(); got.Alive != alive {
				t.Errorf("alive: cast %d, protocol %d", got.Alive, alive)
			}
			for u := 0; u < n; u++ {
				if sys.informed[u] != fps[u].informed {
					t.Fatalf("node %d: cast informed=%v, protocol informed=%v", u, sys.informed[u], fps[u].informed)
				}
			}

			// And the cast engine itself must not care whether the
			// topology is generated or materialized.
			sysM := newFloodCast(n, 0)
			cfgM := cfg
			cfgM.System, cfgM.Topology = sysM, g
			gotM, err := RunCast(cfgM)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotM, got) {
				t.Errorf("materialized cast run differs from implicit: %+v vs %+v", gotM, got)
			}
			if !reflect.DeepEqual(sysM.informed, sys.informed) {
				t.Error("materialized cast informed set differs from implicit")
			}
		})
	}
}

// TestRunCastParallelMatchesSequential pins the sharded cast engine
// result-identical to the sequential one, faults included, across
// worker counts (including workers that don't divide n and exceed the
// 64-bit word shards).
func TestRunCastParallelMatchesSequential(t *testing.T) {
	const n, d, horizon = 1000, 10, 15
	sh, err := graph.NewShift(n, d, 0xabcd)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := make([]int, n)
	for i := range crashAt {
		crashAt[i] = -1
		if i%97 == 5 {
			crashAt[i] = i % 7
		}
	}
	base := CastConfig{
		Topology:  sh,
		MaxRounds: horizon,
		Crash:     func(u int) int { return crashAt[u] },
		Filter:    hashOmission{seed: 7},
	}

	seqSys := newFloodCast(n, 0, 313)
	seqCfg := base
	seqCfg.System = seqSys
	want, err := RunCast(seqCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 7} {
		parSys := newFloodCast(n, 0, 313)
		parCfg := base
		parCfg.System = parSys
		rt := NewRuntime()
		got, err := rt.RunCastParallel(parCfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel result %+v differs from sequential %+v", workers, got, want)
		}
		if !reflect.DeepEqual(parSys.informed, seqSys.informed) {
			t.Errorf("workers=%d: parallel informed set differs from sequential", workers)
		}
		// Re-run on the same pooled runtime: the parked pool must
		// produce the same answer again.
		parSys.reset(0, 313)
		got2, err := rt.RunCastParallel(parCfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Errorf("workers=%d: pooled re-run differs from sequential", workers)
		}
		rt.Close()
	}
}

// floodLanes is the sliced twin of floodCast: lane l floods from its
// own source, all lanes share the topology and the word-packed state.
type floodLanes struct {
	n        int
	informed []uint64
}

func (f *floodLanes) N() int                               { return f.n }
func (f *floodLanes) CastLanes(u, _ int) (uint64, uint64)  { return f.informed[u], f.informed[u] }
func (f *floodLanes) AbsorbLanes(u, _ int, ones, _ uint64) { f.informed[u] |= ones }
func (f *floodLanes) Done(_ int) bool                      { return false }

// TestRunCastSlicedMatchesScalar pins every lane of a sliced cast run
// byte-identical to a scalar cast run of that lane's configuration.
func TestRunCastSlicedMatchesScalar(t *testing.T) {
	const n, d, horizon = 300, 8, 10
	sources := []int{0, 17, 33, 99, 250}
	sh, err := graph.NewShift(n, d, 0x5eed)
	if err != nil {
		t.Fatal(err)
	}

	sys := &floodLanes{n: n, informed: make([]uint64, n)}
	for lane, s := range sources {
		sys.informed[s] |= 1 << lane
	}
	res, err := RunCastSliced(CastSlicedConfig{System: sys, Topology: sh, MaxRounds: horizon, Lanes: len(sources)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != horizon || len(res.Messages) != len(sources) {
		t.Fatalf("sliced run shape: %+v", res)
	}

	for lane, s := range sources {
		scalar := newFloodCast(n, s)
		want, err := RunCast(CastConfig{System: scalar, Topology: sh, MaxRounds: horizon})
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages[lane] != want.Messages {
			t.Errorf("lane %d: sliced %d messages, scalar %d", lane, res.Messages[lane], want.Messages)
		}
		for u := 0; u < n; u++ {
			if got := sys.informed[u]&(1<<lane) != 0; got != scalar.informed[u] {
				t.Fatalf("lane %d node %d: sliced informed=%v, scalar=%v", lane, u, got, scalar.informed[u])
			}
		}
	}
}

// delayingFilter requests a delay, which the cast engine must reject
// up front.
type delayingFilter struct{ NoFailures }

func (delayingFilter) FilterLink(_ int, _ Envelope) Verdict { return DelayBy(1) }
func (delayingFilter) MaxDelay() int                        { return 1 }

func TestCastConfigValidation(t *testing.T) {
	sh, err := graph.NewShift(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := graph.NewShift(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok := CastConfig{System: newFloodCast(64, 0), Topology: sh, MaxRounds: 4}

	bad := ok
	bad.System = nil
	if _, err := RunCast(bad); err == nil {
		t.Error("nil system accepted")
	}
	bad = ok
	bad.Topology = small
	if _, err := RunCast(bad); err == nil {
		t.Error("topology size mismatch accepted")
	}
	bad = ok
	bad.MaxRounds = 0
	if _, err := RunCast(bad); err == nil {
		t.Error("MaxRounds 0 accepted")
	}
	bad = ok
	bad.Filter = delayingFilter{}
	if _, err := RunCast(bad); err == nil {
		t.Error("delaying filter accepted")
	}

	if _, err := RunCastSliced(CastSlicedConfig{System: &floodLanes{n: 64, informed: make([]uint64, 64)},
		Topology: sh, MaxRounds: 4, Lanes: 65}); err == nil {
		t.Error("Lanes 65 accepted")
	}
}

// TestCastGigascaleResident is the memory-wall smoke: a fault-free
// implicit cast run at n = 2^20 — where a materialized d=8 adjacency
// alone would be ≥ 64 MB — must keep the ENTIRE working set it
// allocates (topology, system, engine planes) under 8 MB of heap, and
// produce the exact flood traffic the topology dictates.
func TestCastGigascaleResident(t *testing.T) {
	const n, d = 1 << 20, 8
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	sh, err := graph.NewShift(n, d, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys := newFloodCast(n, 0)
	rt := NewRuntime()
	res, err := rt.RunCast(CastConfig{System: sys, Topology: sh, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(rt)
	runtime.KeepAlive(sys)
	runtime.KeepAlive(sh)

	if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > 8<<20 {
		t.Errorf("gigascale cast run holds %d bytes resident; budget is %d", delta, 8<<20)
	}
	// Round 0: the source casts to its d neighbors. Round 1: the
	// source and its d now-informed neighbors cast.
	if want := int64(d + (d+1)*d); res.Messages != want {
		t.Errorf("gigascale flood sent %d messages, want %d", res.Messages, want)
	}
	if res.Rounds != 2 || res.Alive != n {
		t.Errorf("gigascale run shape: %+v", res)
	}
}
