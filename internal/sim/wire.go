package sim

// The packed message plane. The engines' hot buffers — the CSR scratch
// workspace (scratch.go), the single-port rings (ports.go) and the
// link-fault delay ring (linkfault.go) — do not carry Envelopes but
// wireMsgs: 16 bytes instead of 32, with the payload packed into a
// single word. The crash-model algorithms send one-bit messages (§4
// intro), so the package's own payloads (Bit, Inquiry, Probe) inline
// into the word with no interface header and no dynamic dispatch;
// protocol-defined payloads escape into a side table and the word
// carries the index. Packing happens once at staging time (replacing
// the per-envelope sizeBits devirtualization of the counting loop) and
// unpacking once at delivery, so everything in between — staging,
// re-sorting, ring parking, the cache-missy counting-sort scatter —
// moves half the bytes and never touches an itab.
//
// Word layout (low to high):
//
//	bits 0..1   kind: 0 escape, 1 Bit, 2 Inquiry, 3 Probe
//	bit  2      inline value (Bit value, Probe rumor)
//	bits 16..47 escape index into the side table   (kind 0 only)
//	bits 48..63 escape table id: 0 is the engine's own table,
//	            1+w is parallel worker w's table    (kind 0 only)
//
// Side-table lifecycle: entries are allocated at pack time and the
// whole table is recycled (capacity kept) at the start of any round
// with no cross-round references outstanding — state.escLive counts
// escape words parked in the delay ring or the single-port rings.
// While escapes are in flight the wholesale reset cannot fire, so the
// sequential paths release entries individually instead — at the poll
// that consumes a port-buffered escape, at a dead-node deposit
// discard, when a node dies with undrained in-ports, and (when a
// delay ring is installed) in a post-deliver sweep of the placed
// inbox — and put recycles released slots through a free list. The
// table is therefore bounded by the actually in-flight escape
// population, and its recycled capacity makes packing allocation-free
// in steady state. Parallel workers' tables never park across rounds
// and are simply reset every pack phase.

// wireMsg is one staged point-to-point message in packed form.
type wireMsg struct {
	From, To int32
	word     uint64
}

const (
	wireKindMask    = 0b11
	wireKindEscape  = 0
	wireKindBit     = 1
	wireKindInquiry = 2
	wireKindProbe   = 3
	wireValueBit    = 1 << 2
	wireEscIdxShift = 16
	wireEscTabShift = 48
	// wireMaxTables caps the parallel worker count: table ids are 16
	// bits, id 0 is the engine's own table.
	wireMaxTables = 1<<16 - 1
)

func wireIsEscape(word uint64) bool { return word&wireKindMask == wireKindEscape }

// packEnvelope packs one validated envelope into wire form, appending
// protocol-defined payloads to the escape table, and returns the
// message's wire size in bits (the paper's accounting unit). table is
// the escape table id the packed word should reference.
func packEnvelope(env *Envelope, esc *escTable, table uint64) (wireMsg, int64) {
	wm := wireMsg{From: int32(env.From), To: int32(env.To)}
	switch p := env.Payload.(type) {
	case Bit:
		wm.word = wireKindBit
		if p {
			wm.word |= wireValueBit
		}
		return wm, 1
	case Inquiry:
		wm.word = wireKindInquiry
		return wm, 1
	case Probe:
		wm.word = wireKindProbe
		if p.Rumor {
			wm.word |= wireValueBit
		}
		return wm, 1
	default:
		idx := esc.put(env.Payload)
		wm.word = wireKindEscape | idx<<wireEscIdxShift | table<<wireEscTabShift
		return wm, int64(p.SizeBits())
	}
}

// unpackPayload rebuilds the payload of a packed word. Inline kinds
// materialize without allocation (one-byte values share the runtime's
// static boxes); escapes resolve through the side tables. Read-only on
// the tables, so parallel workers may unpack concurrently.
func (s *state) unpackPayload(word uint64) Payload {
	switch word & wireKindMask {
	case wireKindBit:
		return Bit(word&wireValueBit != 0)
	case wireKindInquiry:
		return Inquiry{}
	case wireKindProbe:
		return Probe{Rumor: word&wireValueBit != 0}
	default:
		idx := uint32(word >> wireEscIdxShift)
		if t := word >> wireEscTabShift; t > 0 {
			return s.pool.wesc[t-1].entries[idx]
		}
		return s.esc.entries[idx]
	}
}

// decodeWireInto materializes a placed segment into the reusable
// Envelope buffer, growing it as needed, and returns the decoded inbox
// (capacity-clipped, so a protocol appending to its inbox cannot
// clobber the buffer) plus the possibly-grown buffer.
func decodeWireInto(s *state, seg []wireMsg, buf []Envelope) ([]Envelope, []Envelope) {
	if len(seg) == 0 {
		return nil, buf
	}
	if cap(buf) < len(seg) {
		buf = make([]Envelope, len(seg))
	}
	out := buf[:len(seg):len(seg)]
	for i := range seg {
		out[i] = Envelope{
			From:    NodeID(seg[i].From),
			To:      NodeID(seg[i].To),
			Payload: s.unpackPayload(seg[i].word),
		}
	}
	return out, buf
}

// escTable is one side table for protocol-defined (non-inline)
// payloads. put allocates an index, preferring slots release has
// recycled; reset drops everything, keeping capacity.
type escTable struct {
	entries []Payload
	free    []uint32
}

func (t *escTable) put(p Payload) uint64 {
	if k := len(t.free); k > 0 {
		i := t.free[k-1]
		t.free = t.free[:k-1]
		t.entries[i] = p
		return uint64(i)
	}
	t.entries = append(t.entries, p)
	return uint64(len(t.entries) - 1)
}

// release recycles one consumed entry. Sequential-engine contexts
// only: the free list is not synchronized.
func (t *escTable) release(i uint32) {
	t.entries[i] = nil
	t.free = append(t.free, i)
}

func (t *escTable) reset() {
	clear(t.entries)
	t.entries = t.entries[:0]
	t.free = t.free[:0]
}

// wireEscIndex extracts an escape word's side-table index.
func wireEscIndex(word uint64) uint32 { return uint32(word >> wireEscIdxShift) }

// releaseDelivered recycles the engine-table escape entries of the
// round's placed (and therefore just-delivered) inbox. It runs only
// when a delay ring is installed: continuous delay traffic can hold
// escLive above zero indefinitely, blocking the wholesale beginRound
// reset, and without this sweep the table would grow with the run's
// total escape traffic instead of its in-flight window.
func (s *state) releaseDelivered() {
	inbox := s.scratch.inbox
	for i := range inbox {
		if w := inbox[i].word; wireIsEscape(w) && w>>wireEscTabShift == 0 {
			s.esc.release(wireEscIndex(w))
		}
	}
}

// releaseDeadPorts drains a dead node's in-port rings, unpinning and
// recycling any buffered escape entries: nothing will ever poll them
// out, and leaving them would hold escLive above zero (and the side
// table growing) for the rest of the run.
func (s *state) releaseDeadPorts(id NodeID) {
	rings := s.ports[id].rings
	for ri := range rings {
		for {
			wm, ok := rings[ri].pop()
			if !ok {
				break
			}
			if wireIsEscape(wm.word) {
				s.escLive--
				s.esc.release(wireEscIndex(wm.word))
			}
		}
	}
}
