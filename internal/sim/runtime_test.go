package sim

import (
	"testing"

	"lineartime/internal/rng"
)

// floodNode is a richer test protocol for the engine-equivalence test:
// nodes flood a bit over a ring with pseudo-random extra edges and halt
// after a fixed horizon, so the transcript exercises multi-message
// rounds, ordering, and crashes.
type floodNode struct {
	id, n   int
	value   bool
	links   []int
	horizon int
	rounds  int
	sendIt  bool
}

func newFloodNode(id, n, horizon int, seed uint64) *floodNode {
	r := rng.New(seed + uint64(id)*7919)
	links := []int{(id + 1) % n, (id + n - 1) % n}
	links = append(links, r.Intn(n))
	f := &floodNode{id: id, n: n, links: links, horizon: horizon}
	if id == 0 {
		f.value = true
		f.sendIt = true
	}
	return f
}

func (f *floodNode) Send(round int) []Envelope {
	if !f.sendIt {
		return nil
	}
	f.sendIt = false
	var out []Envelope
	for _, to := range f.links {
		if to != f.id {
			out = append(out, Envelope{From: f.id, To: to, Payload: Bit(true)})
		}
	}
	return out
}

func (f *floodNode) Deliver(round int, inbox []Envelope) {
	if len(inbox) > 0 && !f.value {
		f.value = true
		f.sendIt = true
	}
	f.rounds++
}

func (f *floodNode) Halted() bool { return f.rounds >= f.horizon }

func buildFlood(n, horizon int, seed uint64) ([]Protocol, []*floodNode) {
	ps := make([]Protocol, n)
	fs := make([]*floodNode, n)
	for i := 0; i < n; i++ {
		f := newFloodNode(i, n, horizon, seed)
		ps[i], fs[i] = f, f
	}
	return ps, fs
}

func TestConcurrentMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		n, horizon := 24, 12
		seqPs, seqNodes := buildFlood(n, horizon, seed)
		conPs, conNodes := buildFlood(n, horizon, seed)
		adv1 := crashAt{node: 3, round: 2, keep: 1}
		adv2 := crashAt{node: 3, round: 2, keep: 1}

		seqRes, err := Run(Config{Protocols: seqPs, Fault: adv1, MaxRounds: 100})
		if err != nil {
			t.Fatal(err)
		}
		conRes, err := RunConcurrent(Config{Protocols: conPs, Fault: adv2, MaxRounds: 100})
		if err != nil {
			t.Fatal(err)
		}

		if seqRes.Metrics.Rounds != conRes.Metrics.Rounds {
			t.Fatalf("seed %d: rounds %d vs %d", seed, seqRes.Metrics.Rounds, conRes.Metrics.Rounds)
		}
		if seqRes.Metrics.Messages != conRes.Metrics.Messages {
			t.Fatalf("seed %d: messages %d vs %d", seed, seqRes.Metrics.Messages, conRes.Metrics.Messages)
		}
		if seqRes.Metrics.Bits != conRes.Metrics.Bits {
			t.Fatalf("seed %d: bits %d vs %d", seed, seqRes.Metrics.Bits, conRes.Metrics.Bits)
		}
		if !seqRes.Crashed.Equal(conRes.Crashed) {
			t.Fatalf("seed %d: crash sets differ", seed)
		}
		for i := range seqNodes {
			if seqNodes[i].value != conNodes[i].value {
				t.Fatalf("seed %d: node %d final value differs", seed, i)
			}
			if seqRes.HaltedAt[i] != conRes.HaltedAt[i] {
				t.Fatalf("seed %d: node %d halted at %d vs %d",
					seed, i, seqRes.HaltedAt[i], conRes.HaltedAt[i])
			}
		}
	}
}

func TestConcurrentRejectsSinglePort(t *testing.T) {
	ps, _ := buildFlood(4, 2, 1)
	_ = ps
	cfg := Config{Protocols: ps, MaxRounds: 10, SinglePort: true}
	if _, err := RunConcurrent(cfg); err == nil {
		t.Fatal("concurrent runtime accepted single-port mode")
	}
}

func TestConcurrentErrors(t *testing.T) {
	if _, err := RunConcurrent(Config{MaxRounds: 5}); err == nil {
		t.Fatal("empty protocols accepted")
	}
	ps, _ := buildFlood(4, 2, 1)
	if _, err := RunConcurrent(Config{Protocols: ps}); err == nil {
		t.Fatal("zero MaxRounds accepted")
	}
}

func TestConcurrentNoTermination(t *testing.T) {
	ps := []Protocol{&neverHalt{}, &neverHalt{}}
	if _, err := RunConcurrent(Config{Protocols: ps, MaxRounds: 4}); err == nil {
		t.Fatal("non-terminating run accepted")
	}
}
