package sim

import (
	"fmt"
	mathbits "math/bits"
	"time"

	"lineartime/internal/bitset"
	"lineartime/internal/graph"
	"lineartime/internal/obs"
)

// The bit-sliced neighborcast engine runs up to 64 independent
// fault-free simulations per machine word over one shared (implicit or
// materialized) topology, combining the batch engine's lane packing
// with the cast engine's pulled delivery. Per node the resident state
// is two words — the cast bits and the casting mask across lanes — so
// a 64-lane batch at n = 2^20 stays at 16 MB regardless of degree.
// The gather is pure word-OR: a receiver learns, per lane, whether any
// casting neighbor sent a 1 and whether any neighbor cast at all,
// which is exactly the information the paper's flooding/probing
// phases consume.

// CastLanesSystem is the per-node state machine of a sliced
// neighborcast run: every method answers for all lanes at once.
type CastLanesSystem interface {
	// N returns the number of nodes.
	N() int
	// CastLanes returns node u's round: active marks the lanes in
	// which u casts, bits the cast value per lane. The engine enforces
	// bits ⊆ active.
	CastLanes(u, round int) (bits, active uint64)
	// AbsorbLanes delivers the gathered round to u: ones marks the
	// lanes in which at least one casting neighbor sent a 1, any the
	// lanes in which at least one neighbor cast at all.
	AbsorbLanes(u, round int, ones, any uint64)
	// Done reports whether all lanes have terminated after the given
	// number of completed rounds.
	Done(rounds int) bool
}

// CastSlicedConfig configures a sliced neighborcast run. The sliced
// path is fault-free: crash schedules and link filters are per-lane
// concepts the shared word layout cannot express cheaply — use RunCast
// per lane for faulty runs.
type CastSlicedConfig struct {
	System    CastLanesSystem
	Topology  graph.Neighborhood
	MaxRounds int
	// Lanes is the number of replicas, in [1, MaxLanes].
	Lanes int
	// Tracer optionally receives stage timings and the run outcome;
	// the steady state stays allocation-free with one installed.
	Tracer obs.RunTracer
}

// CastSlicedResult is the outcome of a sliced neighborcast run.
// Messages (== one-bit payloads, so also bits) is per lane and aliases
// arena memory: it is valid until the next sliced cast run on the same
// Runtime.
type CastSlicedResult struct {
	Rounds   int
	Messages []int64
}

// castSlicedState is the pooled arena of the sliced neighborcast
// engine: two words per node plus O(d) scratch and 64 counters.
type castSlicedState struct {
	sys       CastLanesSystem
	nb        graph.Neighborhood
	n         int
	lanes     int
	all       uint64 // mask of configured lanes
	maxRounds int

	castWord   []uint64 // cast bit per lane, meaningful where active
	activeWord []uint64 // casting mask per lane
	scratch    []int
	msgs       [MaxLanes]int64

	res CastSlicedResult
}

func (s *castSlicedState) reset(cfg CastSlicedConfig) error {
	if cfg.System == nil || cfg.Topology == nil {
		return fmt.Errorf("sim: sliced neighborcast needs a System and a Topology")
	}
	n := cfg.System.N()
	if tn := cfg.Topology.N(); tn != n {
		return fmt.Errorf("sim: sliced neighborcast system has %d nodes but topology has %d", n, tn)
	}
	if n <= 0 {
		return fmt.Errorf("sim: sliced neighborcast needs n > 0, got %d", n)
	}
	if cfg.MaxRounds <= 0 {
		return fmt.Errorf("sim: sliced neighborcast needs MaxRounds > 0, got %d", cfg.MaxRounds)
	}
	if cfg.Lanes <= 0 || cfg.Lanes > MaxLanes {
		return fmt.Errorf("sim: sliced neighborcast Lanes must be in [1, %d], got %d", MaxLanes, cfg.Lanes)
	}
	s.sys, s.nb = cfg.System, cfg.Topology
	s.n, s.lanes, s.maxRounds = n, cfg.Lanes, cfg.MaxRounds
	s.all = bitset.LaneMask(cfg.Lanes)
	if cap(s.castWord) < n {
		s.castWord = make([]uint64, n)
		s.activeWord = make([]uint64, n)
	}
	s.castWord = s.castWord[:n]
	s.activeWord = s.activeWord[:n]
	if d := cfg.Topology.MaxDegree(); cap(s.scratch) < d {
		s.scratch = make([]int, 0, d)
	}
	clear(s.msgs[:])
	s.res = CastSlicedResult{}
	return nil
}

func (s *castSlicedState) detach() {
	s.sys, s.nb = nil, nil
}

func (s *castSlicedState) run() *CastSlicedResult {
	rounds := 0
	for r := 0; r < s.maxRounds; r++ {
		// Publish: one CastLanes call per node fills the two planes,
		// and each casting lane is charged deg(u) one-bit messages.
		for u := 0; u < s.n; u++ {
			bits, active := s.sys.CastLanes(u, r)
			active &= s.all
			bits &= active
			s.castWord[u] = bits
			s.activeWord[u] = active
			if active != 0 {
				deg := int64(s.nb.Degree(u))
				for m := active; m != 0; m &= m - 1 {
					s.msgs[mathbits.TrailingZeros64(m)] += deg
				}
			}
		}
		// Gather: regenerate each node's neighbor list and OR the
		// planes across it.
		for u := 0; u < s.n; u++ {
			s.scratch = s.nb.AppendNeighbors(u, s.scratch[:0])
			var ones, any uint64
			for _, w := range s.scratch {
				ones |= s.castWord[w]
				any |= s.activeWord[w]
			}
			s.sys.AbsorbLanes(u, r, ones, any)
		}
		rounds = r + 1
		if s.sys.Done(rounds) {
			break
		}
	}
	s.res = CastSlicedResult{Rounds: rounds, Messages: s.msgs[:s.lanes]}
	return &s.res
}

// RunCastSliced executes a sliced neighborcast system, reusing the
// arena's buffers; steady-state runs of one shape are allocation-free.
// The returned result aliases arena memory and is valid until the next
// sliced cast run on this Runtime.
func (rt *Runtime) RunCastSliced(cfg CastSlicedConfig) (*CastSlicedResult, error) {
	tr := cfg.Tracer
	var t0, t1 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if rt.csl == nil {
		rt.csl = &castSlicedState{}
	}
	if err := rt.csl.reset(cfg); err != nil {
		rt.csl.detach()
		if tr != nil {
			tr.RunDone(obs.EngineCastSliced, obs.OutcomeError, 0, time.Since(t0))
		}
		return nil, err
	}
	if tr != nil {
		t1 = time.Now()
		tr.StageDuration(obs.StageSetup, t1.Sub(t0))
	}
	res := rt.csl.run()
	rt.csl.detach()
	if tr != nil {
		now := time.Now()
		tr.StageDuration(obs.StageRounds, now.Sub(t1))
		tr.RunDone(obs.EngineCastSliced, obs.OutcomeOK, res.Rounds, now.Sub(t0))
	}
	return res, nil
}

// RunCastSliced executes the configured sliced neighborcast system on
// a fresh arena.
func RunCastSliced(cfg CastSlicedConfig) (*CastSlicedResult, error) {
	return NewRuntime().RunCastSliced(cfg)
}
