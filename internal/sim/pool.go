package sim

import (
	"errors"
	"runtime"
	"sync"
)

// The parallel engine shards nodes across a fixed pool of workers
// (≈GOMAXPROCS, not one goroutine per node), barrier-synced per phase:
//
//	send phase     workers call Send + validate for their shard
//	serial stitch  fault layer, metrics, CSR staging, in node order
//	deliver phase  workers call Deliver + Halted for their shard
//
// Everything order-sensitive — the fault layer (node-level crashes and
// per-envelope link verdicts alike), the traffic counters, the
// inbox construction — runs serially in node order on the coordinator,
// so the transcript is identical to the sequential engine's; only the
// protocol callbacks, which touch disjoint per-node state, fan out.
// The per-round synchronization cost is 2·workers channel operations
// instead of the original design's 4·n, which is what lets runs scale
// to n in the tens of thousands.

// RunParallel executes the configured system on the sharded worker
// pool. workers <= 0 selects GOMAXPROCS. It produces results identical
// to Run (the sequential engine); the equivalence is a test. Multi-port
// only: the single-port model is inherently centralized. Configs with
// an Observer are rejected; observers need the sequential engine's
// event order.
func RunParallel(cfg Config, workers int) (*Result, error) {
	if cfg.SinglePort {
		return nil, errors.New("sim: the parallel engine supports the multi-port model only")
	}
	if cfg.Observer != nil {
		return nil, errors.New("sim: Observer requires the sequential engine")
	}
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	p := newPool(st, workers)
	defer p.shutdown()
	st.pool = p
	return st.run()
}

type poolJob struct {
	kind  int // jobSend or jobDeliver
	round int
}

const (
	jobSend = iota
	jobDeliver
)

// pool is the fixed worker pool. Workers persist for the whole run;
// each owns the contiguous node shard bounds[w]..bounds[w+1] and
// communicates with the coordinator through its job channel and the
// phase WaitGroup.
type pool struct {
	st      *state
	workers int
	bounds  []int
	jobs    []chan poolJob
	phase   sync.WaitGroup
	exited  sync.WaitGroup
	// Per-node scratch, written only by the owning worker during a
	// phase and read by the coordinator between phases.
	outbox [][]Envelope
	errs   []error
	halted []bool
}

func newPool(st *state, workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > st.n {
		workers = st.n
	}
	p := &pool{
		st:      st,
		workers: workers,
		bounds:  make([]int, workers+1),
		jobs:    make([]chan poolJob, workers),
		outbox:  make([][]Envelope, st.n),
		errs:    make([]error, st.n),
		halted:  make([]bool, st.n),
	}
	for w := 0; w <= workers; w++ {
		p.bounds[w] = w * st.n / workers
	}
	p.exited.Add(workers)
	for w := 0; w < workers; w++ {
		p.jobs[w] = make(chan poolJob, 1)
		go p.worker(w)
	}
	return p
}

func (p *pool) worker(w int) {
	defer p.exited.Done()
	st := p.st
	lo, hi := p.bounds[w], p.bounds[w+1]
	for job := range p.jobs[w] {
		switch job.kind {
		case jobSend:
			for id := lo; id < hi; id++ {
				if !st.alive(id) {
					continue
				}
				out := st.cfg.Protocols[id].Send(job.round)
				if err := st.validateOutbox(id, out); err != nil {
					p.errs[id] = err
					p.outbox[id] = nil
					continue
				}
				p.outbox[id] = out
			}
		case jobDeliver:
			for id := lo; id < hi; id++ {
				if !st.alive(id) {
					continue
				}
				st.cfg.Protocols[id].Deliver(job.round, st.scratch.inboxOf(id))
				p.halted[id] = st.cfg.Protocols[id].Halted()
			}
		}
		p.phase.Done()
	}
}

// runPhase dispatches one phase to every worker and waits for the
// barrier. The WaitGroup completion gives the coordinator a
// happens-before edge over all per-node scratch the workers wrote.
func (p *pool) runPhase(kind, round int) {
	p.phase.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs[w] <- poolJob{kind: kind, round: round}
	}
	p.phase.Wait()
}

func (p *pool) shutdown() {
	for _, ch := range p.jobs {
		close(ch)
	}
	p.exited.Wait()
}

// roundParallel is the pool-backed counterpart of state.round.
func (s *state) roundParallel(r int) error {
	p := s.pool
	p.runPhase(jobSend, r)

	// Serial stitch in node order: validation errors surface for the
	// lowest offending node, then the fault layer, counters and CSR
	// staging see the exact sequence the sequential engine produces —
	// including delayed arrivals ahead of fresh sends and the stable
	// sender re-sort when any arrived.
	sc := s.scratch
	sc.beginRound()
	s.label, s.labelSet = "", false
	arrivals := s.injectArrivals(r, true)
	crashedNow := s.crashedNow[:0]
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		if err := p.errs[id]; err != nil {
			return err
		}
		out := p.outbox[id]
		p.outbox[id] = nil
		deliver, crash := s.fault.FilterSend(r, id, out)
		if crash {
			crashedNow = append(crashedNow, id)
		}
		s.count(r, id, deliver)
		if s.filter == nil {
			sc.stage(deliver, true)
		} else if err := s.stageFiltered(r, deliver, true); err != nil {
			return err
		}
	}
	s.crashedNow = crashedNow
	for _, id := range crashedNow {
		s.crashed.Add(id)
	}
	if arrivals > 0 {
		sortStagedBySender(sc.flat)
	}
	sc.place()

	p.runPhase(jobDeliver, r)
	for id := 0; id < s.n; id++ {
		if s.alive(id) && p.halted[id] {
			s.haltedAt[id] = r
		}
	}
	s.executed++
	return nil
}
