package sim

import (
	"errors"
	"runtime"
	"sync"
)

// The parallel engine shards nodes across a fixed pool of workers
// (≈GOMAXPROCS, not one goroutine per node), barrier-synced per phase.
// On the fast path (no link filter installed) a round is four worker
// phases with thin serial seams between them:
//
//	send     workers call Send + validate for their shard
//	(seam)   node-level fault + crash bookkeeping, in node order
//	pack     workers pack their shard's outboxes into shard-local
//	         wire buffers, counting per-destination totals and
//	         shard-local traffic metrics
//	(seam)   prefix-sum the shard counts into global segment offsets
//	         and per-(worker, destination) cursors; merge metrics
//	scatter  workers place their own staged runs into the shared
//	         inbox — disjoint cursor ranges, no coordination
//	deliver  workers decode + call Deliver + Halted for their shard
//
// Because worker shards are contiguous ascending node ranges and each
// worker stages in node order, laying a destination's segment out as
// worker 0's messages, then worker 1's, … reproduces exactly the
// ascending-sender order the sequential engine guarantees. Everything
// order-sensitive that remains — the fault layer and the offsets — is
// serial, so the transcript is identical to the sequential engine's;
// the equivalence is a test. Per-message work (packing, the sizeBits
// accounting, the cache-missy scatter, decoding) all fans out, which
// is what the serial-stitch design this replaces left on the
// coordinator.
//
// Runs with a link filter installed (per-envelope drop/delay verdicts)
// fall back to the serial stitch for the fault, counting and staging
// seam — verdict order is observable by stateful filters — and still
// fan out send and the decode + deliver phase.
//
// The pool is reusable across runs (see Runtime): workers persist,
// blocked on their job channels, and prepare re-sizes the per-node and
// per-worker buffers for the next configuration.

// RunParallel executes the configured system on the sharded worker
// pool. workers <= 0 selects GOMAXPROCS. It produces results identical
// to Run (the sequential engine); the equivalence is a test. Multi-port
// only: the single-port model is inherently centralized. Configs with
// an Observer are rejected; observers need the sequential engine's
// event order.
func RunParallel(cfg Config, workers int) (*Result, error) {
	st, err := newParallelState(cfg)
	if err != nil {
		return nil, err
	}
	p := newPool(st, resolveWorkers(workers, st.n))
	defer p.shutdown()
	st.pool = p
	res, err := st.run()
	if err != nil {
		return nil, err
	}
	// As in Run: detach the envelope from the engine arena.
	r := *res
	return &r, nil
}

var (
	errSinglePortParallel = errors.New("sim: the parallel engine supports the multi-port model only")
	errObserverParallel   = errors.New("sim: Observer requires the sequential engine")
)

// validateParallelConfig centralizes the parallel engine's config
// constraints for both entry points (package RunParallel and
// Runtime.RunParallel).
func validateParallelConfig(cfg Config) error {
	if cfg.SinglePort {
		return errSinglePortParallel
	}
	if cfg.Observer != nil {
		return errObserverParallel
	}
	return nil
}

func newParallelState(cfg Config) (*state, error) {
	if err := validateParallelConfig(cfg); err != nil {
		return nil, err
	}
	return newState(cfg)
}

// resolveWorkers maps a requested worker count to the effective one:
// <= 0 selects GOMAXPROCS, and the count is clamped to the node count
// and the wire-format table-id space.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers > wireMaxTables {
		workers = wireMaxTables
	}
	return workers
}

type poolJob struct {
	kind  int
	round int
}

const (
	jobSend = iota
	jobPack
	jobScatter
	jobDeliver
)

// pool is the fixed worker pool. Workers persist for the pool's
// lifetime; each owns the contiguous node shard bounds[w]..bounds[w+1]
// and communicates with the coordinator through its job channel and
// the phase WaitGroup.
type pool struct {
	st      *state
	workers int
	bounds  []int
	jobs    []chan poolJob
	phase   sync.WaitGroup
	exited  sync.WaitGroup
	down    sync.Once
	// Per-node scratch, written only by the owning worker during a
	// phase and read by the coordinator between phases.
	outbox  [][]Envelope
	deliver [][]Envelope
	errs    []error
	halted  []bool
	// Per-worker pack state: shard-local wire buffers, escape tables
	// (table id w+1), per-destination counts, scatter cursors, decode
	// buffers, and traffic accumulators.
	wbuf     [][]wireMsg
	wesc     []escTable
	wcounts  [][]int32
	wstart   [][]int32
	dbuf     [][]Envelope
	wmsgs    []int64
	wbits    []int64
	wbyzMsgs []int64
	wbyzBits []int64
}

func newPool(st *state, workers int) *pool {
	p := &pool{
		workers:  workers,
		bounds:   make([]int, workers+1),
		jobs:     make([]chan poolJob, workers),
		wbuf:     make([][]wireMsg, workers),
		wesc:     make([]escTable, workers),
		wcounts:  make([][]int32, workers),
		wstart:   make([][]int32, workers),
		dbuf:     make([][]Envelope, workers),
		wmsgs:    make([]int64, workers),
		wbits:    make([]int64, workers),
		wbyzMsgs: make([]int64, workers),
		wbyzBits: make([]int64, workers),
	}
	p.prepare(st)
	p.exited.Add(workers)
	for w := 0; w < workers; w++ {
		p.jobs[w] = make(chan poolJob, 1)
		go p.worker(w)
	}
	return p
}

// prepare re-targets the pool at a (possibly re-reset) state, sizing
// the per-node arrays and shard bounds for its node count. Steady
// state — same n across runs — touches no allocator.
func (p *pool) prepare(st *state) {
	p.st = st
	n := st.n
	if len(p.outbox) != n {
		p.outbox = make([][]Envelope, n)
		p.deliver = make([][]Envelope, n)
		p.errs = make([]error, n)
		p.halted = make([]bool, n)
		for w := 0; w < p.workers; w++ {
			p.wcounts[w] = make([]int32, n)
			p.wstart[w] = make([]int32, n)
		}
	} else {
		clear(p.outbox)
		clear(p.deliver)
		clear(p.errs)
		clear(p.halted)
	}
	for w := 0; w <= p.workers; w++ {
		p.bounds[w] = w * n / p.workers
	}
}

func (p *pool) worker(w int) {
	defer p.exited.Done()
	for job := range p.jobs[w] {
		st := p.st
		lo, hi := p.bounds[w], p.bounds[w+1]
		switch job.kind {
		case jobSend:
			for id := lo; id < hi; id++ {
				if !st.alive(id) {
					continue
				}
				out := st.cfg.Protocols[id].Send(job.round)
				if err := st.validateOutbox(id, out); err != nil {
					p.errs[id] = err
					p.outbox[id] = nil
					continue
				}
				p.outbox[id] = out
			}
		case jobPack:
			p.packShard(st, w, lo, hi)
		case jobScatter:
			p.scatterShard(st, w)
		case jobDeliver:
			buf := p.dbuf[w]
			for id := lo; id < hi; id++ {
				if !st.alive(id) {
					continue
				}
				var inbox []Envelope
				inbox, buf = decodeWireInto(st, st.scratch.inboxOf(id), buf)
				st.cfg.Protocols[id].Deliver(job.round, inbox)
				p.halted[id] = st.cfg.Protocols[id].Halted()
			}
			p.dbuf[w] = buf
		}
		p.phase.Done()
	}
}

// packShard packs one worker's share of the round's fault-surviving
// outboxes into its shard-local wire buffer, counting per-destination
// totals and shard-local traffic. Escape payloads go to the worker's
// own table (id w+1), recycled every round — the parallel fast path
// has no cross-round message parking.
func (p *pool) packShard(st *state, w, lo, hi int) {
	esc := &p.wesc[w]
	esc.reset()
	buf := p.wbuf[w][:0]
	counts := p.wcounts[w]
	clear(counts)
	table := uint64(w + 1)
	var msgs, bits, byzMsgs, byzBits int64
	for id := lo; id < hi; id++ {
		deliver := p.deliver[id]
		p.deliver[id] = nil
		if len(deliver) == 0 {
			continue
		}
		var sb int64
		for i := range deliver {
			wm, b := packEnvelope(&deliver[i], esc, table)
			buf = append(buf, wm)
			counts[wm.To]++
			sb += b
		}
		if st.byz[id] {
			byzMsgs += int64(len(deliver))
			byzBits += sb
		} else {
			msgs += int64(len(deliver))
			bits += sb
		}
	}
	p.wbuf[w] = buf
	p.wmsgs[w], p.wbits[w] = msgs, bits
	p.wbyzMsgs[w], p.wbyzBits[w] = byzMsgs, byzBits
}

// scatterShard places one worker's staged messages into the shared
// inbox. The coordinator pre-computed disjoint per-(worker,
// destination) cursor ranges, so workers write without coordination
// and every destination segment comes out in ascending sender order.
func (p *pool) scatterShard(st *state, w int) {
	inbox := st.scratch.inbox
	start := p.wstart[w]
	buf := p.wbuf[w]
	for i := range buf {
		to := buf[i].To
		inbox[start[to]] = buf[i]
		start[to]++
	}
}

// runPhase dispatches one phase to every worker and waits for the
// barrier. The WaitGroup completion gives the coordinator a
// happens-before edge over all per-node scratch the workers wrote.
func (p *pool) runPhase(kind, round int) {
	p.phase.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs[w] <- poolJob{kind: kind, round: round}
	}
	p.phase.Wait()
}

func (p *pool) shutdown() {
	p.down.Do(func() {
		for _, ch := range p.jobs {
			close(ch)
		}
		p.exited.Wait()
	})
}

// roundParallel is the pool-backed counterpart of state.round.
func (s *state) roundParallel(r int) error {
	if s.filter == nil {
		return s.roundParallelFast(r)
	}
	return s.roundParallelStitched(r)
}

// roundParallelFast runs the filter-free round: per-message packing,
// counting, scattering and decoding all fan out; only the node-level
// fault layer and the offset prefix-sum stay serial.
func (s *state) roundParallelFast(r int) error {
	p := s.pool
	p.runPhase(jobSend, r)

	// Serial seam 1: validation errors surface for the lowest
	// offending node, then the node-level fault sees outboxes in node
	// order (it may be stateful) and the crash set updates exactly as
	// in the sequential engine — after the whole send sweep.
	sc := &s.scratch
	sc.beginRound()
	// No table-0 escape lifecycle here: the fast path has no delay
	// ring and workers pack exclusively into their own tables, reset
	// every pack phase.
	s.label, s.labelSet = "", false
	crashedNow := s.crashedNow[:0]
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		if err := p.errs[id]; err != nil {
			return err
		}
		deliver, crash := s.fault.FilterSend(r, id, p.outbox[id])
		p.outbox[id] = nil
		p.deliver[id] = deliver
		if crash {
			crashedNow = append(crashedNow, id)
		}
	}
	s.crashedNow = crashedNow
	for _, id := range crashedNow {
		s.crashed.Add(id)
	}

	p.runPhase(jobPack, r)

	// Serial seam 2: prefix-sum the shard-local destination counts
	// into global segment offsets and disjoint per-(worker,
	// destination) scatter cursors, and merge the shard-local traffic
	// accumulators into the metrics.
	off := int32(0)
	for d := 0; d < s.n; d++ {
		sc.offs[d] = off
		for w := 0; w < p.workers; w++ {
			p.wstart[w][d] = off
			off += p.wcounts[w][d]
		}
	}
	sc.offs[s.n] = off
	sc.sizeInbox(int(off))
	var msgs, bits, byzMsgs, byzBits int64
	for w := 0; w < p.workers; w++ {
		msgs += p.wmsgs[w]
		bits += p.wbits[w]
		byzMsgs += p.wbyzMsgs[w]
		byzBits += p.wbyzBits[w]
	}
	if msgs+byzMsgs > 0 {
		s.ensureLabel(r)
	}
	s.metrics.Messages += msgs
	s.metrics.Bits += bits
	s.metrics.ByzMessages += byzMsgs
	s.metrics.ByzBits += byzBits
	s.metrics.PerRoundMessages[r] += msgs
	if s.label != "" && msgs > 0 {
		s.metrics.PerPart[s.label] += msgs
	}

	p.runPhase(jobScatter, r)
	p.runPhase(jobDeliver, r)
	for id := 0; id < s.n; id++ {
		if s.alive(id) && p.halted[id] {
			s.haltedAt[id] = r
		}
	}
	s.executed++
	return nil
}

// roundParallelStitched serializes the fault, counting and staging
// seam — per-envelope link verdicts are order-observable — while the
// send and deliver phases still fan out.
func (s *state) roundParallelStitched(r int) error {
	p := s.pool
	p.runPhase(jobSend, r)

	sc := &s.scratch
	sc.beginRound()
	if s.escLive == 0 {
		s.esc.reset()
	}
	s.label, s.labelSet = "", false
	arrivals := s.injectArrivals(r, true)
	crashedNow := s.crashedNow[:0]
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		if err := p.errs[id]; err != nil {
			return err
		}
		deliver, crash := s.fault.FilterSend(r, id, p.outbox[id])
		p.outbox[id] = nil
		if crash {
			crashedNow = append(crashedNow, id)
		}
		s.countEnvelopes(r, id, deliver)
		if err := s.stageFiltered(r, deliver, true); err != nil {
			return err
		}
	}
	s.crashedNow = crashedNow
	for _, id := range crashedNow {
		s.crashed.Add(id)
	}
	if arrivals > 0 {
		sortStagedBySender(sc.flat)
	}
	sc.place()

	p.runPhase(jobDeliver, r)
	for id := 0; id < s.n; id++ {
		if s.alive(id) && p.halted[id] {
			s.haltedAt[id] = r
		}
	}
	if s.ring != nil {
		// Workers are parked again, so the coordinator may recycle the
		// round's consumed escape entries (all coordinator-packed on
		// this path, table 0).
		s.releaseDelivered()
	}
	s.executed++
	return nil
}
