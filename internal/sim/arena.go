package sim

import (
	"runtime"
	"time"

	"lineartime/internal/obs"
)

// Runtime is a reusable run arena: the full engine state — the CSR
// scratch workspace, the wire-plane escape table, the single-port
// rings and their n-sized idx tables, the delay ring, the metrics
// arrays, and (for parallel runs) the worker pool with its shard-local
// buffers — pooled across runs. The first run of a given shape grows
// every buffer to its peak; the second and subsequent runs are
// steady-state allocation-free, which is what makes repeated-run
// workloads (sweeps, replications, benchmarks) cheap. A zero-ish
// ~1.4MB-per-run rebuild cost at n=1000 drops to zero.
//
// A Runtime is not safe for concurrent use. Results it returns alias
// arena memory and are valid only until the next run on the same
// Runtime; use Result.Clone to keep one.
type Runtime struct {
	st *state
	// sl holds the bit-sliced engine's arena (sliced.go), created on
	// the first RunSliced and recycled across sliced runs.
	sl *slicedState
	// slot holds the persistent worker pool, created on the first
	// RunParallel and kept across runs (workers stay parked on their
	// job channels between runs). The indirection exists for the
	// finalizer: one cleanup per Runtime is registered against the
	// slot, so replacing the pool (worker-count change) does not
	// accumulate registrations that would pin dead pools.
	slot *poolSlot
	// cs holds the neighborcast engine's arena (cast.go), created on
	// the first RunCast/RunCastParallel and recycled across cast runs.
	cs *castState
	// csl holds the sliced neighborcast arena (castsliced.go).
	csl *castSlicedState
	// castSlot holds the neighborcast engine's persistent worker pool,
	// with the same one-cleanup-per-Runtime indirection as slot.
	castSlot *castPoolSlot
}

// poolSlot is the stable object the Runtime's cleanup watches.
type poolSlot struct {
	p *pool
}

// NewRuntime returns an empty arena. Close releases the worker pool
// when the Runtime is done; a finalizer covers arenas that are simply
// dropped.
func NewRuntime() *Runtime {
	return &Runtime{st: &state{}}
}

// Run executes the configured system on the sequential engine, reusing
// the arena's buffers. See Runtime for the result-aliasing contract.
func (rt *Runtime) Run(cfg Config) (*Result, error) {
	// Capture the tracer before reset/detach: detach clears the
	// captured cfg, and the nil fast path must stay branch-only.
	tr := cfg.Tracer
	var t0, t1 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if err := rt.st.reset(cfg); err != nil {
		// reset already captured cfg; drop it so a pooled arena does
		// not pin the caller's protocol system after a failed run.
		rt.st.detach()
		if tr != nil {
			tr.RunDone(obs.EngineSequential, obs.OutcomeError, 0, time.Since(t0))
		}
		return nil, err
	}
	if tr != nil {
		t1 = time.Now()
		tr.StageDuration(obs.StageSetup, t1.Sub(t0))
	}
	res, err := rt.st.run()
	rt.st.detach()
	if tr != nil {
		now := time.Now()
		tr.StageDuration(obs.StageRounds, now.Sub(t1))
		rounds := cfg.MaxRounds
		if res != nil {
			rounds = res.Metrics.Rounds
		}
		tr.RunDone(obs.EngineSequential, runOutcome(err), rounds, now.Sub(t0))
	}
	return res, err
}

// RunParallel executes the configured system on the sharded worker
// pool, reusing the arena's buffers and its persistent workers. The
// constraints of the package-level RunParallel apply. See Runtime for
// the result-aliasing contract.
func (rt *Runtime) RunParallel(cfg Config, workers int) (*Result, error) {
	tr := cfg.Tracer
	var t0, t1 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if err := validateParallelConfig(cfg); err != nil {
		if tr != nil {
			tr.RunDone(obs.EngineParallel, obs.OutcomeError, 0, time.Since(t0))
		}
		return nil, err
	}
	if err := rt.st.reset(cfg); err != nil {
		rt.st.detach()
		if tr != nil {
			tr.RunDone(obs.EngineParallel, obs.OutcomeError, 0, time.Since(t0))
		}
		return nil, err
	}
	w := resolveWorkers(workers, rt.st.n)
	if rt.slot == nil {
		rt.slot = &poolSlot{}
		// The pool's goroutines keep the pool, the slot and the state
		// alive but not the Runtime itself, so a dropped Runtime still
		// becomes unreachable and the cleanup reaps whatever pool the
		// slot holds at that point.
		runtime.AddCleanup(rt, func(s *poolSlot) {
			if s.p != nil {
				s.p.shutdown()
			}
		}, rt.slot)
	}
	switch pl := rt.slot.p; {
	case pl == nil:
		rt.slot.p = newPool(rt.st, w)
	case pl.workers != w:
		pl.shutdown()
		rt.slot.p = newPool(rt.st, w)
	default:
		pl.prepare(rt.st)
	}
	rt.st.pool = rt.slot.p
	if tr != nil {
		t1 = time.Now()
		tr.StageDuration(obs.StageSetup, t1.Sub(t0))
	}
	res, err := rt.st.run()
	rt.st.detach()
	if tr != nil {
		now := time.Now()
		tr.StageDuration(obs.StageRounds, now.Sub(t1))
		rounds := cfg.MaxRounds
		if res != nil {
			rounds = res.Metrics.Rounds
		}
		tr.RunDone(obs.EngineParallel, runOutcome(err), rounds, now.Sub(t0))
	}
	return res, err
}

// Close stops the arena's persistent worker pools, if any. The Runtime
// remains usable; a later parallel run starts a fresh pool.
func (rt *Runtime) Close() {
	if rt.slot != nil && rt.slot.p != nil {
		rt.slot.p.shutdown()
		rt.slot.p = nil
	}
	if rt.castSlot != nil && rt.castSlot.p != nil {
		rt.castSlot.p.shutdown()
		rt.castSlot.p = nil
	}
}
