package sim

// RunConcurrent executes the configured system on the parallel engine
// with the default worker count (GOMAXPROCS). It is the historical name
// of the concurrent entry point, kept for callers of the original
// goroutine-per-node runtime; RunParallel exposes the worker count.
//
// The original design synchronized one goroutine per node through four
// channels each, which cost 4·n channel operations per round and
// capped feasible n in the low thousands. The engine now shards nodes
// across a fixed worker pool (pool.go) with identical results — the
// sequential/concurrent equivalence tests are unchanged.
func RunConcurrent(cfg Config) (*Result, error) {
	return RunParallel(cfg, 0)
}
