package sim

import (
	"errors"
	"fmt"
	"sort"

	"lineartime/internal/bitset"
)

// RunConcurrent executes the configured system with one goroutine per
// node, synchronized into lock-step rounds by channels — the natural
// Go rendering of the paper's synchronous model. It produces results
// identical to Run (the sequential engine); the equivalence is a test.
//
// Protocol implementations are only ever called from their own node's
// goroutine, so they need no internal locking, exactly like Run.
func RunConcurrent(cfg Config) (*Result, error) {
	n := len(cfg.Protocols)
	if n == 0 {
		return nil, errors.New("sim: no protocols")
	}
	if cfg.MaxRounds <= 0 {
		return nil, errors.New("sim: MaxRounds must be positive")
	}
	if cfg.SinglePort {
		// The single-port engine's port buffers are inherently
		// centralized; the concurrent runtime targets the multi-port
		// model where per-node goroutines map cleanly onto nodes.
		return nil, errors.New("sim: RunConcurrent supports the multi-port model only")
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = NoFailures{}
	}
	isByz := func(id NodeID) bool { return cfg.Byzantine != nil && cfg.Byzantine.Contains(id) }

	type sendReq struct{ round int }
	type sendResp struct{ outbox []Envelope }
	type deliverReq struct {
		round int
		inbox []Envelope
	}
	type deliverResp struct{ halted bool }

	sendReqCh := make([]chan sendReq, n)
	sendRespCh := make([]chan sendResp, n)
	delivReqCh := make([]chan deliverReq, n)
	delivRespCh := make([]chan deliverResp, n)
	stop := make(chan struct{})
	done := make(chan struct{}, n)

	for i := 0; i < n; i++ {
		sendReqCh[i] = make(chan sendReq)
		sendRespCh[i] = make(chan sendResp)
		delivReqCh[i] = make(chan deliverReq)
		delivRespCh[i] = make(chan deliverResp)
		go func(id int, p Protocol) {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				case req := <-sendReqCh[id]:
					out := p.Send(req.round)
					select {
					case sendRespCh[id] <- sendResp{outbox: out}:
					case <-stop:
						return
					}
				case req := <-delivReqCh[id]:
					p.Deliver(req.round, req.inbox)
					select {
					case delivRespCh[id] <- deliverResp{halted: p.Halted()}:
					case <-stop:
						return
					}
				}
			}
		}(i, cfg.Protocols[i])
	}
	shutdown := func() {
		close(stop)
		for i := 0; i < n; i++ {
			<-done
		}
	}
	defer shutdown()

	crashed := bitset.New(n)
	haltedAt := make([]int, n)
	for i := range haltedAt {
		haltedAt[i] = -1
	}
	alive := func(id NodeID) bool { return !crashed.Contains(id) && haltedAt[id] < 0 }
	var metrics Metrics

	finished := func() bool {
		for id := 0; id < n; id++ {
			if alive(id) && !isByz(id) {
				return false
			}
		}
		return true
	}

	for r := 0; r < cfg.MaxRounds; r++ {
		if finished() {
			metrics.Rounds = r
			return &Result{Metrics: metrics, Crashed: crashed, HaltedAt: haltedAt}, nil
		}

		// Send phase: fan out requests to all alive nodes, then
		// collect outboxes in node order so that the adversary sees
		// the same deterministic sequence as the sequential engine.
		for id := 0; id < n; id++ {
			if alive(id) {
				sendReqCh[id] <- sendReq{round: r}
			}
		}
		inboxes := make([][]Envelope, n)
		metrics.PerRoundMessages = append(metrics.PerRoundMessages, 0)
		var roundLabel string
		var crashedNow []NodeID
		for id := 0; id < n; id++ {
			if !alive(id) {
				continue
			}
			resp := <-sendRespCh[id]
			out := resp.outbox
			for _, env := range out {
				if env.From != id || env.To < 0 || env.To >= n || env.To == id || env.Payload == nil {
					return nil, fmt.Errorf("sim: node %d produced invalid envelope %+v", id, env)
				}
			}
			deliver, crash := adv.FilterSend(r, id, out)
			if crash {
				crashedNow = append(crashedNow, id)
			}
			if cfg.PartLabeler != nil && roundLabel == "" && len(deliver) > 0 {
				roundLabel = cfg.PartLabeler(r)
				if metrics.PerPart == nil {
					metrics.PerPart = make(map[string]int64)
				}
			}
			for _, env := range deliver {
				bits := int64(env.Payload.SizeBits())
				if isByz(id) {
					metrics.ByzMessages++
					metrics.ByzBits += bits
				} else {
					metrics.Messages++
					metrics.Bits += bits
					metrics.PerRoundMessages[r]++
					if roundLabel != "" {
						metrics.PerPart[roundLabel]++
					}
				}
				inboxes[env.To] = append(inboxes[env.To], env)
			}
		}
		for _, id := range crashedNow {
			crashed.Add(id)
		}

		// Deliver phase: fan out inboxes to alive nodes, collect
		// halted flags.
		delivered := make([]bool, n)
		for id := 0; id < n; id++ {
			if !alive(id) {
				continue
			}
			inbox := inboxes[id]
			sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
			delivReqCh[id] <- deliverReq{round: r, inbox: inbox}
			delivered[id] = true
		}
		for id := 0; id < n; id++ {
			if delivered[id] {
				resp := <-delivRespCh[id]
				if resp.halted {
					haltedAt[id] = r
				}
			}
		}
	}
	if finished() {
		metrics.Rounds = cfg.MaxRounds
		return &Result{Metrics: metrics, Crashed: crashed, HaltedAt: haltedAt}, nil
	}
	return nil, fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, cfg.MaxRounds)
}
