package sim

import (
	"fmt"
	"testing"
)

// Engine micro-benchmarks: the cost of simulating one round at various
// message volumes, for both engines. These calibrate how large the
// experiment sweeps can go. The broadcaster protocol is deliberately
// allocation-free (persistent outbox, reset between iterations) so the
// numbers measure the engine, not the test harness; BENCH_sim.json
// tracks BenchmarkEngine across PRs.

type broadcaster struct {
	id, n, fanout, horizon int
	rounds                 int
	out                    []Envelope
}

func (b *broadcaster) Send(round int) []Envelope {
	if b.out == nil {
		b.out = make([]Envelope, 0, b.fanout)
	}
	out := b.out[:0]
	for k := 1; k <= b.fanout; k++ {
		out = append(out, Envelope{From: b.id, To: (b.id + k) % b.n, Payload: Bit(true)})
	}
	b.out = out
	return out
}

func (b *broadcaster) Deliver(round int, _ []Envelope) { b.rounds++ }
func (b *broadcaster) Halted() bool                    { return b.rounds >= b.horizon }
func (b *broadcaster) reset()                          { b.rounds = 0 }

func benchEngine(b *testing.B, n, fanout, horizon, workers int) {
	b.Helper()
	benchEngineRun(b, n, fanout, horizon, func(cfg Config) (*Result, error) {
		if workers != 0 {
			return RunParallel(cfg, workers)
		}
		return Run(cfg)
	})
}

func benchEngineRun(b *testing.B, n, fanout, horizon int, run func(Config) (*Result, error)) {
	b.Helper()
	ps := make([]Protocol, n)
	bs := make([]*broadcaster, n)
	for j := 0; j < n; j++ {
		// Pre-size the persistent outbox so the harness protocol is
		// allocation-free from the first round.
		bs[j] = &broadcaster{id: j, n: n, fanout: fanout, horizon: horizon,
			out: make([]Envelope, 0, fanout)}
		ps[j] = bs[j]
	}
	cfg := Config{Protocols: ps, MaxRounds: horizon + 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bc := range bs {
			bc.reset()
		}
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.Messages != int64(n)*int64(fanout)*int64(horizon) {
			b.Fatalf("messages = %d", res.Metrics.Messages)
		}
	}
}

// BenchmarkEngine is the headline engine benchmark tracked in
// BENCH_sim.json: the multi-port sequential engine at n=1000, fanout 8,
// 20 rounds. Per-iteration cost divided by the horizon gives ns/round.
func BenchmarkEngine(b *testing.B) {
	benchEngine(b, 1000, 8, 20, 0)
}

func BenchmarkEngineSequential(b *testing.B) {
	for _, c := range []struct{ n, fanout int }{{256, 8}, {1024, 8}, {256, 64}, {4096, 8}} {
		b.Run(fmt.Sprintf("n=%d/fanout=%d", c.n, c.fanout), func(b *testing.B) {
			benchEngine(b, c.n, c.fanout, 20, 0)
		})
	}
}

func BenchmarkEngineParallel(b *testing.B) {
	for _, c := range []struct{ n, fanout int }{{256, 8}, {1024, 8}, {4096, 8}} {
		b.Run(fmt.Sprintf("n=%d/fanout=%d", c.n, c.fanout), func(b *testing.B) {
			benchEngine(b, c.n, c.fanout, 20, -1)
		})
	}
}

// BenchmarkEngineReuse measures the arena: k consecutive runs on one
// Runtime, so the per-op numbers are the amortized steady-state cost
// of a repeated run — allocs/op is ~0 once the buffers have grown.
// This is the shape sweeps and replications pay per point.
func BenchmarkEngineReuse(b *testing.B) {
	for _, c := range []struct{ n, fanout int }{{1000, 8}, {4096, 8}} {
		b.Run(fmt.Sprintf("n=%d/fanout=%d", c.n, c.fanout), func(b *testing.B) {
			rt := NewRuntime()
			defer rt.Close()
			benchEngineRun(b, c.n, c.fanout, 20, rt.Run)
		})
	}
}

func BenchmarkEngineReuseParallel(b *testing.B) {
	for _, c := range []struct{ n, fanout int }{{1000, 8}, {4096, 8}} {
		b.Run(fmt.Sprintf("n=%d/fanout=%d", c.n, c.fanout), func(b *testing.B) {
			rt := NewRuntime()
			defer rt.Close()
			benchEngineRun(b, c.n, c.fanout, 20, func(cfg Config) (*Result, error) {
				return rt.RunParallel(cfg, 0)
			})
		})
	}
}

func BenchmarkSinglePortEngine(b *testing.B) {
	const n, horizon = 512, 64
	ps := make([]Protocol, n)
	rs := make([]*relayer, n)
	for j := 0; j < n; j++ {
		rs[j] = &relayer{id: j, n: n, lifetime: horizon}
		ps[j] = rs[j]
	}
	cfg := Config{Protocols: ps, MaxRounds: horizon + 4, SinglePort: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rs {
			*r = relayer{id: r.id, n: n, lifetime: horizon}
		}
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
