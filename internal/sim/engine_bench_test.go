package sim

import (
	"fmt"
	"testing"
)

// Engine micro-benchmarks: the cost of simulating one round at various
// message volumes, for both engines. These calibrate how large the
// experiment sweeps can go.

type broadcaster struct {
	id, n, fanout, horizon int
	rounds                 int
}

func (b *broadcaster) Send(round int) []Envelope {
	out := make([]Envelope, 0, b.fanout)
	for k := 1; k <= b.fanout; k++ {
		out = append(out, Envelope{From: b.id, To: (b.id + k) % b.n, Payload: Bit(true)})
	}
	return out
}

func (b *broadcaster) Deliver(round int, _ []Envelope) { b.rounds++ }
func (b *broadcaster) Halted() bool                    { return b.rounds >= b.horizon }

func benchEngine(b *testing.B, n, fanout, horizon int, concurrent bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ps := make([]Protocol, n)
		for j := 0; j < n; j++ {
			ps[j] = &broadcaster{id: j, n: n, fanout: fanout, horizon: horizon}
		}
		cfg := Config{Protocols: ps, MaxRounds: horizon + 2}
		var res *Result
		var err error
		if concurrent {
			res, err = RunConcurrent(cfg)
		} else {
			res, err = Run(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.Messages), "msgs")
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	for _, c := range []struct{ n, fanout int }{{256, 8}, {1024, 8}, {256, 64}} {
		b.Run(fmt.Sprintf("n=%d/fanout=%d", c.n, c.fanout), func(b *testing.B) {
			benchEngine(b, c.n, c.fanout, 20, false)
		})
	}
}

func BenchmarkEngineConcurrent(b *testing.B) {
	for _, c := range []struct{ n, fanout int }{{256, 8}, {1024, 8}} {
		b.Run(fmt.Sprintf("n=%d/fanout=%d", c.n, c.fanout), func(b *testing.B) {
			benchEngine(b, c.n, c.fanout, 20, true)
		})
	}
}

func BenchmarkSinglePortEngine(b *testing.B) {
	const n, horizon = 512, 64
	for i := 0; i < b.N; i++ {
		ps := make([]Protocol, n)
		for j := 0; j < n; j++ {
			ps[j] = &relayer{id: j, n: n, lifetime: horizon}
		}
		if _, err := Run(Config{Protocols: ps, MaxRounds: horizon + 4, SinglePort: true}); err != nil {
			b.Fatal(err)
		}
	}
}
