package sim

import (
	"testing"

	"lineartime/internal/graph"
	"lineartime/internal/obs"
)

// TestRuntimeTracedSteadyStateAllocs is the observability variant of
// the 0-alloc guards: every engine must stay allocation-free in steady
// state WITH a metrics-backed tracer installed. This is the hard
// constraint that makes the obs layer safe to leave on in production —
// the tracer path uses pre-registered handles (no map lookups, no
// label allocation per run), and the guard proves it.
func TestRuntimeTracedSteadyStateAllocs(t *testing.T) {
	tracer := obs.NewEngineTracer(obs.NewRegistry())

	guard := func(t *testing.T, oneRun func(), runErr *error) {
		t.Helper()
		oneRun()
		oneRun()
		if *runErr != nil {
			t.Fatal(*runErr)
		}
		if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
			t.Fatalf("traced steady-state run allocated %.1f times; want 0", allocs)
		}
		if *runErr != nil {
			t.Fatal(*runErr)
		}
	}

	t.Run("sequential", func(t *testing.T) {
		const n, fanout, horizon = 256, 4, 12
		ps := make([]Protocol, n)
		bs := make([]*broadcaster, n)
		for i := 0; i < n; i++ {
			bs[i] = &broadcaster{id: i, n: n, fanout: fanout, horizon: horizon,
				out: make([]Envelope, 0, fanout)}
			ps[i] = bs[i]
		}
		cfg := Config{Protocols: ps, Fault: allocDelayFilter{}, MaxRounds: horizon + 4,
			Tracer: tracer}
		rt := NewRuntime()
		var runErr error
		oneRun := func() {
			for _, b := range bs {
				b.reset()
			}
			if _, err := rt.Run(cfg); err != nil {
				runErr = err
			}
		}
		guard(t, oneRun, &runErr)
	})

	t.Run("parallel", func(t *testing.T) {
		const n, fanout, horizon = 256, 4, 12
		ps := make([]Protocol, n)
		bs := make([]*broadcaster, n)
		for i := 0; i < n; i++ {
			bs[i] = &broadcaster{id: i, n: n, fanout: fanout, horizon: horizon,
				out: make([]Envelope, 0, fanout)}
			ps[i] = bs[i]
		}
		cfg := Config{Protocols: ps, MaxRounds: horizon + 4, Tracer: tracer}
		rt := NewRuntime()
		defer rt.Close()
		var runErr error
		oneRun := func() {
			for _, b := range bs {
				b.reset()
			}
			if _, err := rt.RunParallel(cfg, 4); err != nil {
				runErr = err
			}
		}
		guard(t, oneRun, &runErr)
	})

	t.Run("sliced", func(t *testing.T) {
		const n, tBound, lanes = 128, 8, 64
		inputs := make([]bool, n)
		for i := range inputs {
			inputs[i] = i%3 == 0
		}
		w := newWordFlood(n, tBound, lanes, inputs)
		cfg := SlicedConfig{System: w, Lanes: lanes, MaxRounds: tBound + 6,
			Tracer: tracer}
		rt := NewRuntime()
		var runErr error
		oneRun := func() {
			resetWordFlood(w, inputs)
			if _, err := rt.RunSliced(cfg); err != nil {
				runErr = err
			}
		}
		guard(t, oneRun, &runErr)
	})

	t.Run("cast", func(t *testing.T) {
		const n, d, horizon = 256, 8, 12
		sh, err := graph.NewShift(n, d, 0x11)
		if err != nil {
			t.Fatal(err)
		}
		sys := newFloodCast(n, 0)
		cfg := CastConfig{System: sys, Topology: sh, MaxRounds: horizon, Tracer: tracer}
		for _, par := range []bool{false, true} {
			name := "sequential"
			if par {
				name = "parallel"
			}
			t.Run(name, func(t *testing.T) {
				rt := NewRuntime()
				defer rt.Close()
				var runErr error
				oneRun := func() {
					sys.reset(0)
					var err error
					if par {
						_, err = rt.RunCastParallel(cfg, 4)
					} else {
						_, err = rt.RunCast(cfg)
					}
					if err != nil {
						runErr = err
					}
				}
				guard(t, oneRun, &runErr)
			})
		}
	})

	t.Run("cast-sliced", func(t *testing.T) {
		const n, d, horizon, lanes = 256, 8, 12, 64
		sh, err := graph.NewShift(n, d, 0x12)
		if err != nil {
			t.Fatal(err)
		}
		sys := &floodLanes{n: n, informed: make([]uint64, n)}
		seed := func() {
			for u := range sys.informed {
				sys.informed[u] = 0
			}
			for lane := 0; lane < lanes; lane++ {
				sys.informed[(lane*37)%n] |= 1 << lane
			}
		}
		cfg := CastSlicedConfig{System: sys, Topology: sh, MaxRounds: horizon,
			Lanes: lanes, Tracer: tracer}
		rt := NewRuntime()
		var runErr error
		oneRun := func() {
			seed()
			if _, err := rt.RunCastSliced(cfg); err != nil {
				runErr = err
			}
		}
		guard(t, oneRun, &runErr)
	})
}
