// Package sim implements the synchronous message-passing system model
// of the paper (§2): n nodes, lock-step rounds, complete communication
// graph, crash or Byzantine failures, and two port models:
//
//   - multi-port: a node may send to and receive from any set of nodes
//     in one round;
//   - single-port: a node may send at most one message and poll at most
//     one in-port per round. Ports buffer messages and give no signal
//     (§2, §8), so polling an empty port wastes the round.
//
// Faults are injected through the pluggable link layer of linkfault.go:
// node-level crashes (including the §2 midway-multicast interruption)
// plus per-envelope omission, partition and bounded-delay models.
//
// The engine is deterministic: given the same protocols, fault layer
// and configuration it produces identical transcripts, which the tests
// use to cross-validate the sequential engine against the sharded
// parallel runtime in pool.go.
//
// The hot path is allocation-free in steady state: inboxes are built in
// a reusable CSR-style workspace (scratch.go), single-port buffers are
// index-addressed rings (ports.go), and the metrics arrays are sized up
// front. In between Send and Deliver every message travels in packed
// 16-byte wire form (wire.go) rather than as a 32-byte Envelope, and a
// Runtime (arena.go) pools the whole engine state across runs, so
// repeated runs — sweeps, replications, benchmarks — are steady-state
// allocation-free end to end. See EXPERIMENTS.md for the benchmark
// harness that tracks this.
package sim

import (
	"errors"
	"fmt"
	"maps"
	"slices"

	"lineartime/internal/bitset"
	"lineartime/internal/obs"
)

// NodeID names a node; nodes are 0..N-1. (The paper uses 1..n; we use
// 0-based names so that "little nodes" are 0..5t-1 and the related-node
// relation is j ≡ i mod 5t.)
type NodeID = int

// Payload is the content of a message. SizeBits is the wire size used
// for the paper's bit-complexity accounting (§2 "Communication
// performance").
type Payload interface {
	SizeBits() int
}

// Envelope is one point-to-point message.
type Envelope struct {
	From, To NodeID
	Payload  Payload
}

// Protocol is the deterministic per-node state machine. The engine
// calls Send then Deliver exactly once per round while the node is
// alive and not halted.
type Protocol interface {
	// Send returns the messages the node transmits at the given round.
	// The engine copies the envelopes before the node's next Send, so
	// implementations may reuse the returned slice across rounds.
	Send(round int) []Envelope
	// Deliver hands the node all messages it receives in this round,
	// sorted by sender for determinism. The slice aliases engine
	// scratch memory that is overwritten as soon as Deliver returns;
	// implementations must not retain it.
	Deliver(round int, inbox []Envelope)
	// Halted reports whether the node has voluntarily halted. Halting
	// is irrevocable; halted nodes neither send nor receive.
	Halted() bool
}

// Poller is implemented by protocols running in the single-port model:
// in every round the node additionally chooses at most one in-port to
// poll. Returning ok=false skips polling for the round.
type Poller interface {
	Protocol
	Poll(round int) (from NodeID, ok bool)
}

// Metrics aggregates the communication and time performance of a run,
// matching the paper's two metrics (§2). For Byzantine runs, Messages
// and Bits count only traffic sent by non-faulty nodes, with faulty
// traffic tallied separately (the paper's counting rule for §7).
type Metrics struct {
	Rounds      int
	Messages    int64
	Bits        int64
	ByzMessages int64
	ByzBits     int64
	// PerRoundMessages records non-faulty messages per round, for the
	// per-part breakdowns in EXPERIMENTS.md. Its length is the number
	// of rounds executed so far.
	PerRoundMessages []int64
	// PerPart buckets non-faulty messages by the label returned by
	// Config.PartLabeler, when one is installed. The paper's proofs
	// bound each algorithm part separately (Part 1 flood ≤ L·d, Part 2
	// probing ≤ L·d·γ, ...); this makes those bounds measurable.
	PerPart map[string]int64
}

// Config describes a run.
type Config struct {
	// Protocols holds one state machine per node; len(Protocols) = n.
	Protocols []Protocol
	// Fault is the fault-injection layer (linkfault.go): node-level
	// crashes via LinkFault, plus per-envelope omission / partition /
	// delay when the value also implements LinkFilter. Nil means
	// NoFailures.
	Fault LinkFault
	// Byzantine marks nodes whose traffic is excluded from the
	// non-faulty counters. Nil means none. (Byzantine behaviour itself
	// is expressed by giving those indices adversarial Protocols.)
	Byzantine *bitset.Set
	// MaxRounds caps the run; exceeding it returns ErrNoTermination.
	MaxRounds int
	// SinglePort selects the single-port model; every Protocol must
	// then implement Poller and send at most one message per round.
	SinglePort bool
	// PartLabeler optionally maps a round to the algorithm part it
	// belongs to (all nodes share the schedule, so one function
	// covers the system); when set, Metrics.PerPart is populated.
	PartLabeler func(round int) string
	// Observer optionally receives the run's events (messages as they
	// are sent, crashes, halts). Sequential engine only; observers see
	// events in deterministic order.
	Observer Observer
	// Tracer optionally receives stage-level timings (setup, rounds)
	// and the run outcome. Unlike Observer it works on every engine,
	// and the engines' steady state stays allocation-free with one
	// installed (obs.EngineTracer uses pre-registered handles). Nil
	// disables tracing at the cost of a branch.
	Tracer obs.RunTracer
}

// Observer receives engine events during a sequential run.
type Observer interface {
	// OnMessage fires at send time for every message the node-level
	// fault admits (a link-level drop or delay still fires here: the
	// sender paid for the message).
	OnMessage(round int, env Envelope)
	// OnCrash fires when the fault layer crashes a node.
	OnCrash(round int, node NodeID)
	// OnHalt fires when a node halts voluntarily.
	OnHalt(round int, node NodeID)
}

// Result is the outcome of a run. Results returned by Run and
// RunParallel own their memory; results returned by a Runtime alias
// arena state and are valid only until the Runtime's next run — Clone
// detaches a copy.
type Result struct {
	Metrics Metrics
	// Crashed is the set of nodes the fault layer crashed.
	Crashed *bitset.Set
	// HaltedAt[i] is the round at which node i halted voluntarily, or
	// -1 if it crashed or never halted within the round budget.
	HaltedAt []int
}

// Clone returns a deep copy of the result that shares no memory with
// the run that produced it.
func (r *Result) Clone() *Result {
	c := &Result{Metrics: r.Metrics, HaltedAt: slices.Clone(r.HaltedAt)}
	c.Metrics.PerRoundMessages = slices.Clone(r.Metrics.PerRoundMessages)
	if r.Metrics.PerPart != nil {
		c.Metrics.PerPart = maps.Clone(r.Metrics.PerPart)
	}
	if r.Crashed != nil {
		c.Crashed = r.Crashed.Clone()
	}
	return c
}

// ErrNoTermination reports that some non-faulty node did not halt
// within Config.MaxRounds.
var ErrNoTermination = errors.New("sim: protocol did not terminate within MaxRounds")

// Run executes the configured system to completion on the sequential
// engine and returns metrics and fault bookkeeping.
func Run(cfg Config) (*Result, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	res, err := st.run()
	if err != nil {
		return nil, err
	}
	// Copy the envelope out of the state so a retained Result pins
	// only the metrics slices, not the whole engine arena.
	r := *res
	return &r, nil
}

// Stepper drives a run one round at a time, for experiments that
// inspect protocol state between rounds (the lower-bound divergence
// measurements of §8 / Theorem 13).
type Stepper struct {
	st    *state
	round int
	done  bool
}

// NewStepper prepares a stepped run. Config.MaxRounds still caps the
// total number of Step calls.
func NewStepper(cfg Config) (*Stepper, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	return &Stepper{st: st}, nil
}

// Step executes one round. It returns done=true once every non-faulty
// node has halted (no round is executed in that case).
func (s *Stepper) Step() (done bool, err error) {
	if s.done || s.st.allDone() {
		s.done = true
		s.st.metrics.Rounds = s.round
		return true, nil
	}
	if s.round >= s.st.cfg.MaxRounds {
		return false, fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, s.st.cfg.MaxRounds)
	}
	if err := s.st.round(s.round); err != nil {
		return false, err
	}
	s.round++
	return false, nil
}

// Round returns the number of rounds executed so far.
func (s *Stepper) Round() int { return s.round }

// Result returns the run outcome; valid at any point, final once Step
// reported done. Each call returns a distinct Result, so snapshots
// taken between steps keep their scalar fields (the slices alias
// engine state, as they always have).
func (s *Stepper) Result() *Result {
	r := *s.st.result()
	return &r
}

func newState(cfg Config) (*state, error) {
	st := &state{}
	if err := st.reset(cfg); err != nil {
		return nil, err
	}
	return st, nil
}

type state struct {
	cfg Config
	n   int
	// fault is the node-level fault layer; filter, maxDelay and ring
	// are set only when the fault also acts on individual envelopes
	// (LinkFilter), so crash-only runs skip the link level entirely.
	fault    LinkFault
	filter   LinkFilter
	maxDelay int
	ring     *delayRing
	byz      []bool
	crashed  *bitset.Set
	haltedAt []int
	metrics  Metrics
	scratch  scratch
	// executed counts rounds run so far; PerRoundMessages is trimmed
	// to this length in result().
	executed int
	// label caches the PartLabeler result for the current round;
	// labelSet records whether it has been computed yet.
	label    string
	labelSet bool
	// perPart is the reusable backing map for Metrics.PerPart,
	// installed lazily by ensureLabel.
	perPart map[string]int64
	// crashedNow is the reusable per-round crash list.
	crashedNow []NodeID
	// Single-port state: per-node in-port rings, per-node poll slot,
	// and the pre-asserted Poller views of the protocols.
	ports   []portSet
	spSlot  []Envelope
	pollers []Poller
	// Wire plane (wire.go): the engine's escape table for
	// protocol-defined payloads, the count of escape entries pinned by
	// messages parked across rounds (delay ring, single-port rings),
	// and the reusable delivery decode buffer.
	esc        escTable
	escLive    int
	deliverBuf []Envelope
	// res is the reusable result envelope; on a pooled Runtime it (and
	// the state-owned slices it references) is overwritten by the next
	// run.
	res Result
	// pool, when non-nil, shards the round phases across its workers
	// (multi-port only; see pool.go).
	pool *pool
}

// reset (re)initializes the state for a run, recycling every buffer a
// previous run on the same arena grew: the CSR workspace, the inbox
// decode buffer, the escape table, the delay ring, the single-port
// rings and their n-sized idx tables, the metrics arrays. After the
// first run of a given shape, subsequent resets touch no allocator.
func (st *state) reset(cfg Config) error {
	n := len(cfg.Protocols)
	if n == 0 {
		return errors.New("sim: no protocols")
	}
	if cfg.MaxRounds <= 0 {
		return errors.New("sim: MaxRounds must be positive")
	}
	fault := cfg.Fault
	if fault == nil {
		fault = NoFailures{}
	}
	st.cfg = cfg
	st.n = n
	st.fault = fault
	st.filter = nil
	st.maxDelay = 0
	if lf, ok := fault.(LinkFilter); ok {
		st.filter = lf
		switch d := lf.MaxDelay(); {
		case d < 0:
			return fmt.Errorf("sim: link filter declares negative MaxDelay %d", d)
		case d > 0:
			st.maxDelay = d
		}
	}
	if st.maxDelay > 0 {
		if st.ring == nil || len(st.ring.slots) != st.maxDelay+1 {
			st.ring = newDelayRing(st.maxDelay)
		} else {
			st.ring.reset()
		}
	} else {
		st.ring = nil
	}
	st.byz = growSlice(st.byz, n)
	clear(st.byz)
	if cfg.Byzantine != nil {
		for id := 0; id < n; id++ {
			st.byz[id] = cfg.Byzantine.Contains(id)
		}
	}
	if st.crashed == nil || st.crashed.Len() != n {
		st.crashed = bitset.New(n)
	} else {
		st.crashed.Clear()
	}
	st.haltedAt = growSlice(st.haltedAt, n)
	for i := range st.haltedAt {
		st.haltedAt[i] = -1
	}
	st.scratch.init(n)
	// Pre-size the per-round series to the round budget so the hot
	// path indexes instead of growing (and the Stepper does not
	// re-allocate every round); result() trims to the executed prefix.
	st.metrics = Metrics{PerRoundMessages: growSlice(st.metrics.PerRoundMessages[:0], cfg.MaxRounds)}
	clear(st.metrics.PerRoundMessages)
	if st.perPart != nil {
		clear(st.perPart)
	}
	st.executed = 0
	st.label, st.labelSet = "", false
	st.crashedNow = st.crashedNow[:0]
	st.esc.reset()
	st.escLive = 0
	st.pool = nil
	if cfg.SinglePort {
		if len(st.ports) != n {
			st.ports = make([]portSet, n)
		} else {
			for i := range st.ports {
				st.ports[i].recycle()
			}
		}
		st.spSlot = growSlice(st.spSlot, n)
		st.pollers = growSlice(st.pollers, n)
		for i, p := range cfg.Protocols {
			poller, ok := p.(Poller)
			if !ok {
				return fmt.Errorf("sim: single-port run requires Poller protocols; node %d is %T", i, p)
			}
			st.pollers[i] = poller
		}
	}
	return nil
}

func (s *state) alive(id NodeID) bool {
	return !s.crashed.Contains(id) && s.haltedAt[id] < 0
}

func (s *state) run() (*Result, error) {
	for r := 0; r < s.cfg.MaxRounds; r++ {
		if s.allDone() {
			s.metrics.Rounds = r
			return s.result(), nil
		}
		if err := s.round(r); err != nil {
			return nil, err
		}
	}
	if s.allDone() {
		s.metrics.Rounds = s.cfg.MaxRounds
		return s.result(), nil
	}
	return nil, fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, s.cfg.MaxRounds)
}

// allDone reports run completion: every non-faulty node has halted or
// crashed. Byzantine nodes never gate completion — the paper measures
// time until the non-faulty nodes halt (§2), and a malicious node
// could otherwise hold the run open forever.
func (s *state) allDone() bool {
	for id := 0; id < s.n; id++ {
		if s.alive(id) && !s.byz[id] {
			return false
		}
	}
	return true
}

func (s *state) round(r int) error {
	if s.pool != nil {
		return s.roundParallel(r)
	}
	sc := &s.scratch
	sc.beginRound()
	if s.escLive == 0 {
		// No delayed or port-buffered message references an escape
		// entry, so the side table recycles for this round's packing.
		s.esc.reset()
	}
	s.label, s.labelSet = "", false
	single := s.cfg.SinglePort
	obs := s.cfg.Observer

	// Delayed arrivals scheduled for this round enter the staged
	// buffer ahead of the round's fresh sends; the stable sender sort
	// below restores the delivery-order guarantee.
	arrivals := s.injectArrivals(r, !single)

	// Send phase. Collect each alive node's outbox, apply the
	// node-level fault, then pack the surviving envelopes into wire
	// form — counting traffic in the same pass, or through the link
	// filter when one is installed — in sender order.
	crashedNow := s.crashedNow[:0]
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		out := s.cfg.Protocols[id].Send(r)
		if err := s.validateOutbox(id, out); err != nil {
			return err
		}
		deliver, crash := s.fault.FilterSend(r, id, out)
		if crash {
			crashedNow = append(crashedNow, id)
			if obs != nil {
				obs.OnCrash(r, id)
			}
		}
		if obs != nil {
			for _, env := range deliver {
				obs.OnMessage(r, env)
			}
		}
		if s.filter == nil {
			s.stagePack(r, id, deliver, !single)
		} else {
			s.countEnvelopes(r, id, deliver)
			if err := s.stageFiltered(r, deliver, !single); err != nil {
				return err
			}
		}
	}
	s.crashedNow = crashedNow
	for _, id := range crashedNow {
		s.crashed.Add(id)
		if single {
			s.releaseDeadPorts(id)
		}
	}

	if single {
		// Deposit into the port rings; messages addressed to nodes
		// that are already dead (including this round's crashes) are
		// discarded (their escape entries recycled — nothing will ever
		// poll them out). Escapes entering a ring pin the side table
		// until they are polled out.
		for i := range sc.flat {
			to := NodeID(sc.flat[i].To)
			if s.crashed.Contains(to) || s.haltedAt[to] >= 0 {
				if w := sc.flat[i].word; wireIsEscape(w) {
					s.esc.release(wireEscIndex(w))
				}
				continue
			}
			s.ports[to].push(s.n, sc.flat[i])
			if wireIsEscape(sc.flat[i].word) {
				s.escLive++
			}
		}
	} else {
		if arrivals > 0 {
			sortStagedBySender(sc.flat)
		}
		sc.place()
	}

	// Deliver phase, in node order; inboxes are grouped and sorted by
	// sender, decoded from wire form into the reusable delivery
	// buffer. In the single-port model each alive node first polls at
	// most one in-port (polls only touch the node's own state, so
	// fusing poll and deliver preserves the all-deposits-first
	// semantics).
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		var inbox []Envelope
		if single {
			if from, wants := s.pollers[id].Poll(r); wants {
				if wm, ok := s.ports[id].pop(from); ok {
					s.spSlot[id] = Envelope{
						From:    NodeID(wm.From),
						To:      NodeID(wm.To),
						Payload: s.unpackPayload(wm.word),
					}
					inbox = s.spSlot[id : id+1 : id+1]
					if wireIsEscape(wm.word) {
						// Consumed: unpin and recycle the entry
						// (single-port always packs to table 0).
						s.escLive--
						s.esc.release(wireEscIndex(wm.word))
					}
				}
			}
		} else {
			inbox, s.deliverBuf = decodeWireInto(s, sc.inboxOf(id), s.deliverBuf)
		}
		s.cfg.Protocols[id].Deliver(r, inbox)
		if s.cfg.Protocols[id].Halted() {
			s.haltedAt[id] = r
			if obs != nil {
				obs.OnHalt(r, id)
			}
			if single {
				s.releaseDeadPorts(id)
			}
		}
	}
	if !single && s.ring != nil {
		s.releaseDelivered()
	}
	s.executed++
	return nil
}

func (s *state) validateOutbox(id NodeID, out []Envelope) error {
	if s.cfg.SinglePort && len(out) > 1 {
		return fmt.Errorf("sim: node %d sent %d messages in single-port round", id, len(out))
	}
	for _, env := range out {
		if env.From != id {
			return fmt.Errorf("sim: node %d forged sender %d", id, env.From)
		}
		if env.To < 0 || env.To >= s.n {
			return fmt.Errorf("sim: node %d addressed invalid node %d", id, env.To)
		}
		if env.To == id {
			return fmt.Errorf("sim: node %d sent to itself", id)
		}
		if env.Payload == nil {
			return fmt.Errorf("sim: node %d sent nil payload", id)
		}
	}
	return nil
}

// ensureLabel computes the per-round part label once, on the round's
// first non-empty outbox, and installs the reusable PerPart map.
func (s *state) ensureLabel(r int) {
	if s.cfg.PartLabeler != nil && !s.labelSet {
		s.label = s.cfg.PartLabeler(r)
		s.labelSet = true
		if s.metrics.PerPart == nil {
			if s.perPart == nil {
				s.perPart = make(map[string]int64)
			}
			s.metrics.PerPart = s.perPart
		}
	}
}

// tally books one sender's deliverable traffic into the metrics; the
// Byzantine split is hoisted per sender.
func (s *state) tally(r int, from NodeID, msgs, bits int64) {
	if s.byz[from] {
		s.metrics.ByzMessages += msgs
		s.metrics.ByzBits += bits
		return
	}
	s.metrics.Messages += msgs
	s.metrics.Bits += bits
	s.metrics.PerRoundMessages[r] += msgs
	if s.label != "" {
		s.metrics.PerPart[s.label] += msgs
	}
}

// stagePack is the filter-free hot path: one pass over a sender's
// deliverable envelopes packs each into wire form, stages it, and
// accumulates the bit count — there is no separate sizeBits loop and
// no per-message interface dispatch downstream of here.
func (s *state) stagePack(r int, from NodeID, deliver []Envelope, count bool) {
	if len(deliver) == 0 {
		return
	}
	s.ensureLabel(r)
	var bits int64
	for i := range deliver {
		wm, b := packEnvelope(&deliver[i], &s.esc, 0)
		s.scratch.stage1(wm, count)
		bits += b
	}
	s.tally(r, from, int64(len(deliver)), bits)
}

// countEnvelopes books a sender's traffic without staging — the
// link-filter path counts everything at send time (a dropped or
// delayed message still cost its sender the bandwidth) and lets
// stageFiltered pack the survivors.
func (s *state) countEnvelopes(r int, from NodeID, deliver []Envelope) {
	if len(deliver) == 0 {
		return
	}
	s.ensureLabel(r)
	var bits int64
	for i := range deliver {
		bits += int64(sizeBits(deliver[i].Payload))
	}
	s.tally(r, from, int64(len(deliver)), bits)
}

// detach drops the state's references into caller-owned objects — the
// config with its n protocols, the poller views, the decoded payload
// copies — so an idle pooled arena does not pin a whole protocol
// system in memory. The result envelope and its slices are untouched
// (callers may still read them until the next run); the next reset
// repopulates everything cleared here.
func (s *state) detach() {
	s.cfg = Config{}
	s.fault = nil
	s.filter = nil
	clear(s.pollers)
	clear(s.spSlot)
	s.deliverBuf = s.deliverBuf[:cap(s.deliverBuf)]
	clear(s.deliverBuf)
	s.esc.reset()
	if p := s.pool; p != nil {
		// Workers are parked between runs, so the coordinator may
		// scrub their payload-holding scratch too. outbox/deliver are
		// consumed-and-nilled every completed round but hold protocol
		// slices after an aborted one.
		clear(p.outbox)
		clear(p.deliver)
		for w := 0; w < p.workers; w++ {
			p.wesc[w].reset()
			p.dbuf[w] = p.dbuf[w][:cap(p.dbuf[w])]
			clear(p.dbuf[w])
		}
	}
}

// result fills the state-owned result envelope. On a pooled Runtime
// the envelope and the state-owned slices it references are
// overwritten by the next run; Clone detaches a copy.
func (s *state) result() *Result {
	s.res = Result{
		Metrics:  s.metrics,
		Crashed:  s.crashed,
		HaltedAt: s.haltedAt,
	}
	s.res.Metrics.PerRoundMessages = s.metrics.PerRoundMessages[:s.executed]
	return &s.res
}
