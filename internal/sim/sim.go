// Package sim implements the synchronous message-passing system model
// of the paper (§2): n nodes, lock-step rounds, complete communication
// graph, crash or Byzantine failures, and two port models:
//
//   - multi-port: a node may send to and receive from any set of nodes
//     in one round;
//   - single-port: a node may send at most one message and poll at most
//     one in-port per round. Ports buffer messages and give no signal
//     (§2, §8), so polling an empty port wastes the round.
//
// The engine is deterministic: given the same protocols, adversary and
// configuration it produces identical transcripts, which the tests use
// to cross-validate the sequential engine against the concurrent
// goroutine-based runtime in runtime.go.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"lineartime/internal/bitset"
)

// NodeID names a node; nodes are 0..N-1. (The paper uses 1..n; we use
// 0-based names so that "little nodes" are 0..5t-1 and the related-node
// relation is j ≡ i mod 5t.)
type NodeID = int

// Payload is the content of a message. SizeBits is the wire size used
// for the paper's bit-complexity accounting (§2 "Communication
// performance").
type Payload interface {
	SizeBits() int
}

// Envelope is one point-to-point message.
type Envelope struct {
	From, To NodeID
	Payload  Payload
}

// Protocol is the deterministic per-node state machine. The engine
// calls Send then Deliver exactly once per round while the node is
// alive and not halted.
type Protocol interface {
	// Send returns the messages the node transmits at the given round.
	Send(round int) []Envelope
	// Deliver hands the node all messages it receives in this round,
	// sorted by sender for determinism.
	Deliver(round int, inbox []Envelope)
	// Halted reports whether the node has voluntarily halted. Halting
	// is irrevocable; halted nodes neither send nor receive.
	Halted() bool
}

// Poller is implemented by protocols running in the single-port model:
// in every round the node additionally chooses at most one in-port to
// poll. Returning ok=false skips polling for the round.
type Poller interface {
	Protocol
	Poll(round int) (from NodeID, ok bool)
}

// Adversary controls crash failures. FilterSend is invoked once per
// alive node per round with the node's outbox; returning crash=true
// crashes the node at this round, with only the returned subset of its
// outbox delivered (the strongest crash semantics of §2: a crash may
// interrupt a multicast midway). For surviving nodes implementations
// must return the outbox unchanged.
type Adversary interface {
	FilterSend(round int, from NodeID, outbox []Envelope) (deliver []Envelope, crash bool)
}

// NoFailures is the trivial adversary that never crashes anyone.
type NoFailures struct{}

// FilterSend implements Adversary.
func (NoFailures) FilterSend(_ int, _ NodeID, outbox []Envelope) ([]Envelope, bool) {
	return outbox, false
}

var _ Adversary = NoFailures{}

// Metrics aggregates the communication and time performance of a run,
// matching the paper's two metrics (§2). For Byzantine runs, Messages
// and Bits count only traffic sent by non-faulty nodes, with faulty
// traffic tallied separately (the paper's counting rule for §7).
type Metrics struct {
	Rounds      int
	Messages    int64
	Bits        int64
	ByzMessages int64
	ByzBits     int64
	// PerRoundMessages records non-faulty messages per round, for the
	// per-part breakdowns in EXPERIMENTS.md.
	PerRoundMessages []int64
	// PerPart buckets non-faulty messages by the label returned by
	// Config.PartLabeler, when one is installed. The paper's proofs
	// bound each algorithm part separately (Part 1 flood ≤ L·d, Part 2
	// probing ≤ L·d·γ, ...); this makes those bounds measurable.
	PerPart map[string]int64
}

// Config describes a run.
type Config struct {
	// Protocols holds one state machine per node; len(Protocols) = n.
	Protocols []Protocol
	// Adversary controls crashes. Nil means NoFailures.
	Adversary Adversary
	// Byzantine marks nodes whose traffic is excluded from the
	// non-faulty counters. Nil means none. (Byzantine behaviour itself
	// is expressed by giving those indices adversarial Protocols.)
	Byzantine *bitset.Set
	// MaxRounds caps the run; exceeding it returns ErrNoTermination.
	MaxRounds int
	// SinglePort selects the single-port model; every Protocol must
	// then implement Poller and send at most one message per round.
	SinglePort bool
	// PartLabeler optionally maps a round to the algorithm part it
	// belongs to (all nodes share the schedule, so one function
	// covers the system); when set, Metrics.PerPart is populated.
	PartLabeler func(round int) string
	// Observer optionally receives the run's events (messages as they
	// are sent, crashes, halts). Sequential engine only; observers see
	// events in deterministic order.
	Observer Observer
}

// Observer receives engine events during a sequential run.
type Observer interface {
	// OnMessage fires for every delivered message at send time.
	OnMessage(round int, env Envelope)
	// OnCrash fires when the adversary crashes a node.
	OnCrash(round int, node NodeID)
	// OnHalt fires when a node halts voluntarily.
	OnHalt(round int, node NodeID)
}

// Result is the outcome of a run.
type Result struct {
	Metrics Metrics
	// Crashed is the set of nodes the adversary crashed.
	Crashed *bitset.Set
	// HaltedAt[i] is the round at which node i halted voluntarily, or
	// -1 if it crashed or never halted within the round budget.
	HaltedAt []int
}

// ErrNoTermination reports that some non-faulty node did not halt
// within Config.MaxRounds.
var ErrNoTermination = errors.New("sim: protocol did not terminate within MaxRounds")

// Run executes the configured system to completion on the sequential
// engine and returns metrics and fault bookkeeping.
func Run(cfg Config) (*Result, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	return st.run()
}

// Stepper drives a run one round at a time, for experiments that
// inspect protocol state between rounds (the lower-bound divergence
// measurements of §8 / Theorem 13).
type Stepper struct {
	st    *state
	round int
	done  bool
}

// NewStepper prepares a stepped run. Config.MaxRounds still caps the
// total number of Step calls.
func NewStepper(cfg Config) (*Stepper, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	return &Stepper{st: st}, nil
}

// Step executes one round. It returns done=true once every non-faulty
// node has halted (no round is executed in that case).
func (s *Stepper) Step() (done bool, err error) {
	if s.done || s.st.allDone() {
		s.done = true
		s.st.metrics.Rounds = s.round
		return true, nil
	}
	if s.round >= s.st.cfg.MaxRounds {
		return false, fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, s.st.cfg.MaxRounds)
	}
	if err := s.st.round(s.round); err != nil {
		return false, err
	}
	s.round++
	return false, nil
}

// Round returns the number of rounds executed so far.
func (s *Stepper) Round() int { return s.round }

// Result returns the run outcome; valid at any point, final once Step
// reported done.
func (s *Stepper) Result() *Result { return s.st.result() }

func newState(cfg Config) (*state, error) {
	n := len(cfg.Protocols)
	if n == 0 {
		return nil, errors.New("sim: no protocols")
	}
	if cfg.MaxRounds <= 0 {
		return nil, errors.New("sim: MaxRounds must be positive")
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = NoFailures{}
	}
	isByz := func(id NodeID) bool { return cfg.Byzantine != nil && cfg.Byzantine.Contains(id) }

	st := &state{
		cfg:      cfg,
		n:        n,
		adv:      adv,
		isByz:    isByz,
		crashed:  bitset.New(n),
		haltedAt: make([]int, n),
	}
	for i := range st.haltedAt {
		st.haltedAt[i] = -1
	}
	if cfg.SinglePort {
		st.ports = make([]map[NodeID][]Envelope, n)
		for i := range st.ports {
			st.ports[i] = make(map[NodeID][]Envelope)
		}
		for i, p := range cfg.Protocols {
			if _, ok := p.(Poller); !ok {
				return nil, fmt.Errorf("sim: single-port run requires Poller protocols; node %d is %T", i, p)
			}
		}
	}
	return st, nil
}

type state struct {
	cfg      Config
	n        int
	adv      Adversary
	isByz    func(NodeID) bool
	crashed  *bitset.Set
	haltedAt []int
	metrics  Metrics
	// ports[to][from] is the single-port in-port buffer.
	ports []map[NodeID][]Envelope
}

func (s *state) alive(id NodeID) bool {
	return !s.crashed.Contains(id) && s.haltedAt[id] < 0
}

func (s *state) run() (*Result, error) {
	for r := 0; r < s.cfg.MaxRounds; r++ {
		if s.allDone() {
			s.metrics.Rounds = r
			return s.result(), nil
		}
		if err := s.round(r); err != nil {
			return nil, err
		}
	}
	if s.allDone() {
		s.metrics.Rounds = s.cfg.MaxRounds
		return s.result(), nil
	}
	return nil, fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, s.cfg.MaxRounds)
}

// allDone reports run completion: every non-faulty node has halted or
// crashed. Byzantine nodes never gate completion — the paper measures
// time until the non-faulty nodes halt (§2), and a malicious node
// could otherwise hold the run open forever.
func (s *state) allDone() bool {
	for id := 0; id < s.n; id++ {
		if s.alive(id) && !s.isByz(id) {
			return false
		}
	}
	return true
}

func (s *state) round(r int) error {
	// Send phase. Collect each alive node's outbox, apply the crash
	// adversary, and count traffic.
	inboxes := make([][]Envelope, s.n)
	crashedThisRound := make([]NodeID, 0, 2)
	var deposits [][]Envelope
	if s.cfg.SinglePort {
		deposits = make([][]Envelope, 0, s.n)
	}
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		out := s.cfg.Protocols[id].Send(r)
		if err := s.validateOutbox(id, out); err != nil {
			return err
		}
		deliver, crash := s.adv.FilterSend(r, id, out)
		if crash {
			crashedThisRound = append(crashedThisRound, id)
			if s.cfg.Observer != nil {
				s.cfg.Observer.OnCrash(r, id)
			}
		}
		s.count(r, id, deliver)
		if s.cfg.Observer != nil {
			for _, env := range deliver {
				s.cfg.Observer.OnMessage(r, env)
			}
		}
		if s.cfg.SinglePort {
			deposits = append(deposits, deliver)
		} else {
			for _, env := range deliver {
				inboxes[env.To] = append(inboxes[env.To], env)
			}
		}
	}
	for _, id := range crashedThisRound {
		s.crashed.Add(id)
	}

	if s.cfg.SinglePort {
		// Deposit into port buffers, then each alive node polls one port.
		for _, batch := range deposits {
			for _, env := range batch {
				if s.crashed.Contains(env.To) || s.haltedAt[env.To] >= 0 {
					continue
				}
				s.ports[env.To][env.From] = append(s.ports[env.To][env.From], env)
			}
		}
		for id := 0; id < s.n; id++ {
			if !s.alive(id) {
				continue
			}
			poller, ok := s.cfg.Protocols[id].(Poller)
			if !ok {
				return fmt.Errorf("sim: node %d lost Poller capability", id)
			}
			if from, wants := poller.Poll(r); wants {
				if buf := s.ports[id][from]; len(buf) > 0 {
					inboxes[id] = []Envelope{buf[0]}
					if len(buf) == 1 {
						delete(s.ports[id], from)
					} else {
						s.ports[id][from] = buf[1:]
					}
				}
			}
		}
	}

	// Deliver phase, in node order; inboxes sorted by sender.
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		inbox := inboxes[id]
		sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
		s.cfg.Protocols[id].Deliver(r, inbox)
		if s.cfg.Protocols[id].Halted() {
			s.haltedAt[id] = r
			if s.cfg.Observer != nil {
				s.cfg.Observer.OnHalt(r, id)
			}
		}
	}
	return nil
}

func (s *state) validateOutbox(id NodeID, out []Envelope) error {
	if s.cfg.SinglePort && len(out) > 1 {
		return fmt.Errorf("sim: node %d sent %d messages in single-port round", id, len(out))
	}
	for _, env := range out {
		if env.From != id {
			return fmt.Errorf("sim: node %d forged sender %d", id, env.From)
		}
		if env.To < 0 || env.To >= s.n {
			return fmt.Errorf("sim: node %d addressed invalid node %d", id, env.To)
		}
		if env.To == id {
			return fmt.Errorf("sim: node %d sent to itself", id)
		}
		if env.Payload == nil {
			return fmt.Errorf("sim: node %d sent nil payload", id)
		}
	}
	return nil
}

func (s *state) count(r int, from NodeID, deliver []Envelope) {
	for len(s.metrics.PerRoundMessages) <= r {
		s.metrics.PerRoundMessages = append(s.metrics.PerRoundMessages, 0)
	}
	var label string
	if s.cfg.PartLabeler != nil && len(deliver) > 0 {
		label = s.cfg.PartLabeler(r)
		if s.metrics.PerPart == nil {
			s.metrics.PerPart = make(map[string]int64)
		}
	}
	for _, env := range deliver {
		bits := int64(env.Payload.SizeBits())
		if s.isByz(from) {
			s.metrics.ByzMessages++
			s.metrics.ByzBits += bits
		} else {
			s.metrics.Messages++
			s.metrics.Bits += bits
			s.metrics.PerRoundMessages[r]++
			if label != "" {
				s.metrics.PerPart[label]++
			}
		}
	}
}

func (s *state) result() *Result {
	return &Result{
		Metrics:  s.metrics,
		Crashed:  s.crashed,
		HaltedAt: s.haltedAt,
	}
}
