// Package sim implements the synchronous message-passing system model
// of the paper (§2): n nodes, lock-step rounds, complete communication
// graph, crash or Byzantine failures, and two port models:
//
//   - multi-port: a node may send to and receive from any set of nodes
//     in one round;
//   - single-port: a node may send at most one message and poll at most
//     one in-port per round. Ports buffer messages and give no signal
//     (§2, §8), so polling an empty port wastes the round.
//
// Faults are injected through the pluggable link layer of linkfault.go:
// node-level crashes (including the §2 midway-multicast interruption)
// plus per-envelope omission, partition and bounded-delay models.
//
// The engine is deterministic: given the same protocols, fault layer
// and configuration it produces identical transcripts, which the tests
// use to cross-validate the sequential engine against the sharded
// parallel runtime in pool.go.
//
// The hot path is allocation-free in steady state: inboxes are built in
// a reusable CSR-style workspace (scratch.go), single-port buffers are
// index-addressed rings (ports.go), and the metrics arrays are sized up
// front. See EXPERIMENTS.md for the benchmark harness that tracks this.
package sim

import (
	"errors"
	"fmt"

	"lineartime/internal/bitset"
)

// NodeID names a node; nodes are 0..N-1. (The paper uses 1..n; we use
// 0-based names so that "little nodes" are 0..5t-1 and the related-node
// relation is j ≡ i mod 5t.)
type NodeID = int

// Payload is the content of a message. SizeBits is the wire size used
// for the paper's bit-complexity accounting (§2 "Communication
// performance").
type Payload interface {
	SizeBits() int
}

// Envelope is one point-to-point message.
type Envelope struct {
	From, To NodeID
	Payload  Payload
}

// Protocol is the deterministic per-node state machine. The engine
// calls Send then Deliver exactly once per round while the node is
// alive and not halted.
type Protocol interface {
	// Send returns the messages the node transmits at the given round.
	// The engine copies the envelopes before the node's next Send, so
	// implementations may reuse the returned slice across rounds.
	Send(round int) []Envelope
	// Deliver hands the node all messages it receives in this round,
	// sorted by sender for determinism. The slice aliases engine
	// scratch memory that is overwritten next round; implementations
	// must not retain it.
	Deliver(round int, inbox []Envelope)
	// Halted reports whether the node has voluntarily halted. Halting
	// is irrevocable; halted nodes neither send nor receive.
	Halted() bool
}

// Poller is implemented by protocols running in the single-port model:
// in every round the node additionally chooses at most one in-port to
// poll. Returning ok=false skips polling for the round.
type Poller interface {
	Protocol
	Poll(round int) (from NodeID, ok bool)
}

// Metrics aggregates the communication and time performance of a run,
// matching the paper's two metrics (§2). For Byzantine runs, Messages
// and Bits count only traffic sent by non-faulty nodes, with faulty
// traffic tallied separately (the paper's counting rule for §7).
type Metrics struct {
	Rounds      int
	Messages    int64
	Bits        int64
	ByzMessages int64
	ByzBits     int64
	// PerRoundMessages records non-faulty messages per round, for the
	// per-part breakdowns in EXPERIMENTS.md. Its length is the number
	// of rounds executed so far.
	PerRoundMessages []int64
	// PerPart buckets non-faulty messages by the label returned by
	// Config.PartLabeler, when one is installed. The paper's proofs
	// bound each algorithm part separately (Part 1 flood ≤ L·d, Part 2
	// probing ≤ L·d·γ, ...); this makes those bounds measurable.
	PerPart map[string]int64
}

// Config describes a run.
type Config struct {
	// Protocols holds one state machine per node; len(Protocols) = n.
	Protocols []Protocol
	// Fault is the fault-injection layer (linkfault.go): node-level
	// crashes via LinkFault, plus per-envelope omission / partition /
	// delay when the value also implements LinkFilter. Nil means
	// NoFailures.
	Fault LinkFault
	// Byzantine marks nodes whose traffic is excluded from the
	// non-faulty counters. Nil means none. (Byzantine behaviour itself
	// is expressed by giving those indices adversarial Protocols.)
	Byzantine *bitset.Set
	// MaxRounds caps the run; exceeding it returns ErrNoTermination.
	MaxRounds int
	// SinglePort selects the single-port model; every Protocol must
	// then implement Poller and send at most one message per round.
	SinglePort bool
	// PartLabeler optionally maps a round to the algorithm part it
	// belongs to (all nodes share the schedule, so one function
	// covers the system); when set, Metrics.PerPart is populated.
	PartLabeler func(round int) string
	// Observer optionally receives the run's events (messages as they
	// are sent, crashes, halts). Sequential engine only; observers see
	// events in deterministic order.
	Observer Observer
}

// Observer receives engine events during a sequential run.
type Observer interface {
	// OnMessage fires at send time for every message the node-level
	// fault admits (a link-level drop or delay still fires here: the
	// sender paid for the message).
	OnMessage(round int, env Envelope)
	// OnCrash fires when the fault layer crashes a node.
	OnCrash(round int, node NodeID)
	// OnHalt fires when a node halts voluntarily.
	OnHalt(round int, node NodeID)
}

// Result is the outcome of a run.
type Result struct {
	Metrics Metrics
	// Crashed is the set of nodes the fault layer crashed.
	Crashed *bitset.Set
	// HaltedAt[i] is the round at which node i halted voluntarily, or
	// -1 if it crashed or never halted within the round budget.
	HaltedAt []int
}

// ErrNoTermination reports that some non-faulty node did not halt
// within Config.MaxRounds.
var ErrNoTermination = errors.New("sim: protocol did not terminate within MaxRounds")

// Run executes the configured system to completion on the sequential
// engine and returns metrics and fault bookkeeping.
func Run(cfg Config) (*Result, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	return st.run()
}

// Stepper drives a run one round at a time, for experiments that
// inspect protocol state between rounds (the lower-bound divergence
// measurements of §8 / Theorem 13).
type Stepper struct {
	st    *state
	round int
	done  bool
}

// NewStepper prepares a stepped run. Config.MaxRounds still caps the
// total number of Step calls.
func NewStepper(cfg Config) (*Stepper, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	return &Stepper{st: st}, nil
}

// Step executes one round. It returns done=true once every non-faulty
// node has halted (no round is executed in that case).
func (s *Stepper) Step() (done bool, err error) {
	if s.done || s.st.allDone() {
		s.done = true
		s.st.metrics.Rounds = s.round
		return true, nil
	}
	if s.round >= s.st.cfg.MaxRounds {
		return false, fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, s.st.cfg.MaxRounds)
	}
	if err := s.st.round(s.round); err != nil {
		return false, err
	}
	s.round++
	return false, nil
}

// Round returns the number of rounds executed so far.
func (s *Stepper) Round() int { return s.round }

// Result returns the run outcome; valid at any point, final once Step
// reported done.
func (s *Stepper) Result() *Result { return s.st.result() }

func newState(cfg Config) (*state, error) {
	n := len(cfg.Protocols)
	if n == 0 {
		return nil, errors.New("sim: no protocols")
	}
	if cfg.MaxRounds <= 0 {
		return nil, errors.New("sim: MaxRounds must be positive")
	}
	fault := cfg.Fault
	if fault == nil {
		fault = NoFailures{}
	}

	st := &state{
		cfg:      cfg,
		n:        n,
		fault:    fault,
		byz:      make([]bool, n),
		crashed:  bitset.New(n),
		haltedAt: make([]int, n),
		scratch:  newScratch(n),
	}
	if lf, ok := fault.(LinkFilter); ok {
		st.filter = lf
		switch d := lf.MaxDelay(); {
		case d < 0:
			return nil, fmt.Errorf("sim: link filter declares negative MaxDelay %d", d)
		case d > 0:
			st.maxDelay = d
			st.ring = newDelayRing(d)
		}
	}
	if cfg.Byzantine != nil {
		for id := 0; id < n; id++ {
			st.byz[id] = cfg.Byzantine.Contains(id)
		}
	}
	for i := range st.haltedAt {
		st.haltedAt[i] = -1
	}
	// Pre-size the per-round series to the round budget so the hot
	// path indexes instead of growing (and the Stepper does not
	// re-allocate every round); result() trims to the executed prefix.
	st.metrics.PerRoundMessages = make([]int64, cfg.MaxRounds)
	if cfg.SinglePort {
		st.ports = make([]portSet, n)
		st.spSlot = make([]Envelope, n)
		st.pollers = make([]Poller, n)
		for i, p := range cfg.Protocols {
			poller, ok := p.(Poller)
			if !ok {
				return nil, fmt.Errorf("sim: single-port run requires Poller protocols; node %d is %T", i, p)
			}
			st.pollers[i] = poller
		}
	}
	return st, nil
}

type state struct {
	cfg Config
	n   int
	// fault is the node-level fault layer; filter, maxDelay and ring
	// are set only when the fault also acts on individual envelopes
	// (LinkFilter), so crash-only runs skip the link level entirely.
	fault    LinkFault
	filter   LinkFilter
	maxDelay int
	ring     *delayRing
	byz      []bool
	crashed  *bitset.Set
	haltedAt []int
	metrics  Metrics
	scratch  *scratch
	// executed counts rounds run so far; PerRoundMessages is trimmed
	// to this length in result().
	executed int
	// label caches the PartLabeler result for the current round;
	// labelSet records whether it has been computed yet.
	label    string
	labelSet bool
	// crashedNow is the reusable per-round crash list.
	crashedNow []NodeID
	// Single-port state: per-node in-port rings, per-node poll slot,
	// and the pre-asserted Poller views of the protocols.
	ports   []portSet
	spSlot  []Envelope
	pollers []Poller
	// pool, when non-nil, shards the send and deliver phases across
	// its workers (multi-port only; see pool.go).
	pool *pool
}

func (s *state) alive(id NodeID) bool {
	return !s.crashed.Contains(id) && s.haltedAt[id] < 0
}

func (s *state) run() (*Result, error) {
	for r := 0; r < s.cfg.MaxRounds; r++ {
		if s.allDone() {
			s.metrics.Rounds = r
			return s.result(), nil
		}
		if err := s.round(r); err != nil {
			return nil, err
		}
	}
	if s.allDone() {
		s.metrics.Rounds = s.cfg.MaxRounds
		return s.result(), nil
	}
	return nil, fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, s.cfg.MaxRounds)
}

// allDone reports run completion: every non-faulty node has halted or
// crashed. Byzantine nodes never gate completion — the paper measures
// time until the non-faulty nodes halt (§2), and a malicious node
// could otherwise hold the run open forever.
func (s *state) allDone() bool {
	for id := 0; id < s.n; id++ {
		if s.alive(id) && !s.byz[id] {
			return false
		}
	}
	return true
}

func (s *state) round(r int) error {
	if s.pool != nil {
		return s.roundParallel(r)
	}
	sc := s.scratch
	sc.beginRound()
	s.label, s.labelSet = "", false
	single := s.cfg.SinglePort
	obs := s.cfg.Observer

	// Delayed arrivals scheduled for this round enter the staged
	// buffer ahead of the round's fresh sends; the stable sender sort
	// below restores the delivery-order guarantee.
	arrivals := s.injectArrivals(r, !single)

	// Send phase. Collect each alive node's outbox, apply the
	// node-level fault, count traffic, and stage the surviving
	// envelopes — through the link filter when one is installed — in
	// sender order.
	crashedNow := s.crashedNow[:0]
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		out := s.cfg.Protocols[id].Send(r)
		if err := s.validateOutbox(id, out); err != nil {
			return err
		}
		deliver, crash := s.fault.FilterSend(r, id, out)
		if crash {
			crashedNow = append(crashedNow, id)
			if obs != nil {
				obs.OnCrash(r, id)
			}
		}
		s.count(r, id, deliver)
		if obs != nil {
			for _, env := range deliver {
				obs.OnMessage(r, env)
			}
		}
		if s.filter == nil {
			sc.stage(deliver, !single)
		} else if err := s.stageFiltered(r, deliver, !single); err != nil {
			return err
		}
	}
	s.crashedNow = crashedNow
	for _, id := range crashedNow {
		s.crashed.Add(id)
	}

	if single {
		// Deposit into the port rings; envelopes addressed to nodes
		// that are already dead (including this round's crashes) are
		// discarded.
		for i := range sc.flat {
			to := sc.flat[i].To
			if s.crashed.Contains(to) || s.haltedAt[to] >= 0 {
				continue
			}
			s.ports[to].push(s.n, sc.flat[i])
		}
	} else {
		if arrivals > 0 {
			sortStagedBySender(sc.flat)
		}
		sc.place()
	}

	// Deliver phase, in node order; inboxes are grouped and sorted by
	// sender. In the single-port model each alive node first polls at
	// most one in-port (polls only touch the node's own state, so
	// fusing poll and deliver preserves the all-deposits-first
	// semantics).
	for id := 0; id < s.n; id++ {
		if !s.alive(id) {
			continue
		}
		var inbox []Envelope
		if single {
			if from, wants := s.pollers[id].Poll(r); wants {
				if env, ok := s.ports[id].pop(from); ok {
					s.spSlot[id] = env
					inbox = s.spSlot[id : id+1 : id+1]
				}
			}
		} else {
			inbox = sc.inboxOf(id)
		}
		s.cfg.Protocols[id].Deliver(r, inbox)
		if s.cfg.Protocols[id].Halted() {
			s.haltedAt[id] = r
			if obs != nil {
				obs.OnHalt(r, id)
			}
		}
	}
	s.executed++
	return nil
}

func (s *state) validateOutbox(id NodeID, out []Envelope) error {
	if s.cfg.SinglePort && len(out) > 1 {
		return fmt.Errorf("sim: node %d sent %d messages in single-port round", id, len(out))
	}
	for _, env := range out {
		if env.From != id {
			return fmt.Errorf("sim: node %d forged sender %d", id, env.From)
		}
		if env.To < 0 || env.To >= s.n {
			return fmt.Errorf("sim: node %d addressed invalid node %d", id, env.To)
		}
		if env.To == id {
			return fmt.Errorf("sim: node %d sent to itself", id)
		}
		if env.Payload == nil {
			return fmt.Errorf("sim: node %d sent nil payload", id)
		}
	}
	return nil
}

// count tallies one sender's deliverable traffic. The per-envelope loop
// is branch-free: the Byzantine split is hoisted per sender and the
// part label is computed once per round.
func (s *state) count(r int, from NodeID, deliver []Envelope) {
	if len(deliver) == 0 {
		return
	}
	if s.cfg.PartLabeler != nil && !s.labelSet {
		s.label = s.cfg.PartLabeler(r)
		s.labelSet = true
		if s.metrics.PerPart == nil {
			s.metrics.PerPart = make(map[string]int64)
		}
	}
	var bits int64
	for i := range deliver {
		bits += int64(sizeBits(deliver[i].Payload))
	}
	msgs := int64(len(deliver))
	if s.byz[from] {
		s.metrics.ByzMessages += msgs
		s.metrics.ByzBits += bits
		return
	}
	s.metrics.Messages += msgs
	s.metrics.Bits += bits
	s.metrics.PerRoundMessages[r] += msgs
	if s.label != "" {
		s.metrics.PerPart[s.label] += msgs
	}
}

func (s *state) result() *Result {
	m := s.metrics
	m.PerRoundMessages = m.PerRoundMessages[:s.executed]
	return &Result{
		Metrics:  m,
		Crashed:  s.crashed,
		HaltedAt: s.haltedAt,
	}
}
