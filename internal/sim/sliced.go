package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"time"

	"lineartime/internal/bitset"
	"lineartime/internal/obs"
)

// The bit-sliced engine: 64 independent replicas ("lanes") of one
// system ride each uint64, one bit per lane. Protocol state becomes
// lane-parallel words, boolean protocol logic becomes word-wide
// AND/OR/XOR, and the send/scatter/deliver walk of a round touches each
// (from, to) pair once for all lanes together instead of once per seed —
// the traversal that dominates a scalar run amortizes 64×.
//
// The engine executes a SlicedSystem — a lane-parallel program — rather
// than 64 copies of a scalar Protocol, so only protocols with a sliced
// implementation run here (consensus.SlicedFlooding is the canonical
// one; scenario.RunBatch picks the engine). Everything a lane can do
// that word logic cannot express escapes: the system reports an escape
// mask, the engine retires those lanes, and the caller re-runs them on
// the scalar path and merges the results back by lane index. Per-lane
// fault divergence stays on the fast path: crash schedules are applied
// as per-lane keep-prefix truncation of the staged segment, and
// link-level verdicts (omission / partition / delay) split each staged
// word message into deliver-now, dropped and per-k delayed lane masks.
//
// Equivalence contract (pinned by engines_equiv_test.go and the
// scenario-level suite): for every lane, the sliced run produces
// exactly the Result the scalar engine produces for that lane's fault
// layer — Metrics, Crashed, HaltedAt and protocol decisions. Byzantine
// counters, PartLabeler and Observer are not supported here; runs that
// need them stay scalar.

// SlicedMsg is one point-to-point message across all lanes: Lanes marks
// the lanes in which the message exists, Bits carries the one-bit
// payload per existing lane (Bits ⊆ Lanes). Systems whose payloads are
// not single bits (sliced gossip) keep the payload content in their own
// lane planes and use Tag to name it: the engine never interprets Tag,
// only carries it — through the delay ring included — so a receiver can
// dispatch on it at delivery. Such systems size their traffic through
// SlicedSizer; everything the word-wide step cannot express escapes to
// the scalar path.
type SlicedMsg struct {
	From, To int32
	Lanes    uint64
	Bits     uint64
	Tag      uint32
}

// SlicedSystem is a lane-parallel program: one state machine whose
// per-node state is lane-vectorized words. The engine calls SlicedSend
// then SlicedDeliver once per (round, node) while any lane of the node
// is alive; `active` masks the lanes still running in which the node is
// neither crashed nor halted, and implementations must confine every
// state change and emitted lane bit to it.
type SlicedSystem interface {
	// N returns the number of nodes.
	N() int
	// SlicedSend appends node's round-r messages for the active lanes to
	// out and returns it, plus a mask of lanes that must escape to the
	// scalar engine (a lane whose behaviour word logic cannot express).
	// Per lane, the emission order of that lane's messages is the append
	// order filtered to the lane — the order crash keep-prefixes
	// truncate in.
	SlicedSend(round, node int, active uint64, out []SlicedMsg) (msgs []SlicedMsg, escape uint64)
	// SlicedDeliver hands node its round-r inbox. Inbox lane masks may
	// include lanes outside active (messages addressed to lanes that
	// crashed or settled since staging); implementations must AND with
	// active. Returns an escape mask like SlicedSend.
	SlicedDeliver(round, node int, active uint64, inbox []SlicedMsg) (escape uint64)
	// HaltedLanes returns the lanes in which node has voluntarily
	// halted. Halting is irrevocable, as in the scalar engine.
	HaltedLanes(node int) uint64
}

// SlicedSizer is optionally implemented by sliced systems whose
// payloads are not single bits. AddSlicedBits adds the payload size of
// m, per lane of `lanes` (the post-crash mask the engine counted the
// message in), into acc — the same accounting point at which the scalar
// engine calls Payload.SizeBits. Systems that don't implement it get
// bits == messages, the 1-bit default.
type SlicedSizer interface {
	AddSlicedBits(m SlicedMsg, lanes uint64, acc *[64]int64)
}

// CrashEvent is one node-level crash in declarative form: at Round, the
// node crashes with only the first Keep messages of its outbox
// delivered (Keep < 0 keeps the whole outbox — a crash after a
// completed multicast).
type CrashEvent struct {
	Node  NodeID
	Round int
	Keep  int
}

// CrashPlan is implemented by fault layers whose node-level behaviour
// is a fixed, data-independent crash schedule — which is what lets the
// sliced engine replay it as per-lane word masks instead of calling
// FilterSend per lane. CrashEvents must fully describe the fault's
// FilterSend crashes (at most one event per node, rounds and keeps
// matching the verdicts FilterSend would return); faults that cannot
// promise this (adaptive adversaries) simply don't implement CrashPlan
// and their lanes stay on the scalar engine.
type CrashPlan interface {
	CrashEvents() []CrashEvent
}

// CrashEvents implements CrashPlan: NoFailures crashes nobody. Link
// faults that embed NoFailures (pure omission/partition/delay models)
// inherit the declaration and stay sliceable.
func (NoFailures) CrashEvents() []CrashEvent { return nil }

var _ CrashPlan = NoFailures{}

// ErrNotSliceable reports a fault layer the sliced engine cannot
// replay; callers fall back to the scalar engine for that run.
var ErrNotSliceable = errors.New("sim: fault layer is not sliceable")

// MaxLanes is the lane capacity of a sliced run: one replica per bit
// of a machine word.
const MaxLanes = 64

// SlicedConfig describes a sliced run: one system, Lanes replicas, and
// an optional per-lane fault layer (Faults[lane] is lane's fault; nil
// entries and a nil slice mean no failures).
type SlicedConfig struct {
	System    SlicedSystem
	Lanes     int
	MaxRounds int
	Faults    []LinkFault
	// Tracer optionally receives stage timings and the run outcome
	// (one RunDone for the whole 64-lane word, not per lane). The
	// steady state stays allocation-free with one installed.
	Tracer obs.RunTracer
}

// LaneResult is one lane's outcome, mirroring the scalar Result.
// Exactly one of three states holds: Escaped (the lane left the sliced
// path; re-run it scalar), Err != nil (the lane did not terminate
// within MaxRounds — the scalar engine would have returned this
// error), or a valid Result triple.
type LaneResult struct {
	Metrics  Metrics
	Crashed  *bitset.Set
	HaltedAt []int
	Err      error
	Escaped  bool
}

// SlicedResult is the outcome of a sliced run. On a pooled Runtime the
// lane results alias arena memory and are valid only until the next
// run, like scalar Results.
type SlicedResult struct {
	// Lanes holds one result per configured lane.
	Lanes []LaneResult
	// Escaped is the mask of lanes that escaped to the scalar path.
	Escaped uint64
}

// RunSliced executes a sliced run on a fresh arena. For repeated runs
// use Runtime.RunSliced, which recycles the arena.
func RunSliced(cfg SlicedConfig) (*SlicedResult, error) {
	var s slicedState
	if err := s.reset(cfg); err != nil {
		return nil, err
	}
	return s.run()
}

// RunSliced executes a sliced run, reusing the arena's sliced buffers;
// after the first run of a given shape, steady-state runs are
// allocation-free. The result aliases arena memory and is valid only
// until the Runtime's next sliced run.
func (rt *Runtime) RunSliced(cfg SlicedConfig) (*SlicedResult, error) {
	tr := cfg.Tracer
	var t0, t1 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if rt.sl == nil {
		rt.sl = &slicedState{}
	}
	if err := rt.sl.reset(cfg); err != nil {
		rt.sl.detach()
		if tr != nil {
			tr.RunDone(obs.EngineSliced, obs.OutcomeError, 0, time.Since(t0))
		}
		return nil, err
	}
	if tr != nil {
		t1 = time.Now()
		tr.StageDuration(obs.StageSetup, t1.Sub(t0))
	}
	res, err := rt.sl.run()
	rt.sl.detach()
	if tr != nil {
		now := time.Now()
		tr.StageDuration(obs.StageRounds, now.Sub(t1))
		rounds := 0
		if res != nil {
			for i := range res.Lanes {
				if r := res.Lanes[i].Metrics.Rounds; r > rounds {
					rounds = r
				}
			}
		}
		tr.RunDone(obs.EngineSliced, runOutcome(err), rounds, now.Sub(t0))
	}
	return res, err
}

// slicedCrash is one lane's crash event in engine form, sorted by
// (round, node, lane) so the round loop consumes events with a cursor.
type slicedCrash struct {
	round int32
	node  int32
	keep  int32 // -1 keeps the whole outbox
	lane  uint8
}

// nodeLanes is a reusable (node, lane mask) pair for the per-round
// crashed-now list.
type nodeLanes struct {
	node  int32
	lanes uint64
}

// slicedRing is the delay ring of the sliced engine: delayRing with
// word messages. One reusable slot per future round, indexed modulo
// MaxDelay+1.
type slicedRing struct {
	slots [][]SlicedMsg
}

func (d *slicedRing) reset() {
	for i := range d.slots {
		d.slots[i] = d.slots[i][:0]
	}
}

func (d *slicedRing) push(arrival int, m SlicedMsg) {
	i := arrival % len(d.slots)
	d.slots[i] = append(d.slots[i], m)
}

func (d *slicedRing) take(round int) []SlicedMsg {
	i := round % len(d.slots)
	arrivals := d.slots[i]
	d.slots[i] = arrivals[:0]
	return arrivals
}

// slicedState is the sliced engine's arena: per-node lane words, the
// staged/scattered message buffers, the vertical traffic counter and
// the per-lane result arrays, all recycled across runs.
type slicedState struct {
	cfg   SlicedConfig
	sys   SlicedSystem
	sizer SlicedSizer // non-nil iff sys sizes its own payloads
	n     int
	lanes int
	all   uint64 // mask of configured lanes

	active  uint64 // lanes still running on the sliced path
	escaped uint64
	settled uint64

	// Per-lane link filters (nil entries for filter-free lanes) and the
	// per-lane delay bound each filter declared.
	filters      [64]LinkFilter
	laneMaxDelay [64]int
	filtered     uint64
	maxDelay     int
	ring         *slicedRing

	crashes  []slicedCrash
	crashCur int

	crashedL []uint64 // per node: lanes in which the node crashed
	haltedL  []uint64 // per node: lanes in which the node halted

	liveCount  [64]int32
	roundsDone [64]int

	staged     []SlicedMsg
	inbox      []SlicedMsg
	counts     []int32
	offs       []int32
	crashedNow []nodeLanes

	// Per-msg delay scratch: lane/bit masks per delay distance k.
	delayLanes []uint64
	delayBits  []uint64

	// Metrics: the vertical per-lane message counter, flushed once per
	// round into the per-lane series.
	ctr         bitset.LaneCounter
	roundCounts [64]int64
	msgs        [64]int64
	bitsAcc     [64]int64 // per-lane payload bits, used iff sizer != nil
	perRound    [][]int64
	haltedAt    [][]int
	crashedSets []*bitset.Set

	lanesRes []LaneResult
	res      SlicedResult
}

// reset (re)initializes the arena for a run, recycling every buffer a
// previous run grew — the same discipline as state.reset.
func (s *slicedState) reset(cfg SlicedConfig) error {
	sys := cfg.System
	if sys == nil {
		return errors.New("sim: sliced run requires a System")
	}
	n := sys.N()
	if n <= 0 {
		return errors.New("sim: sliced system has no nodes")
	}
	if cfg.Lanes <= 0 || cfg.Lanes > MaxLanes {
		return fmt.Errorf("sim: sliced Lanes must be in [1, 64], got %d", cfg.Lanes)
	}
	if cfg.MaxRounds <= 0 {
		return errors.New("sim: MaxRounds must be positive")
	}
	if len(cfg.Faults) != 0 && len(cfg.Faults) != cfg.Lanes {
		return fmt.Errorf("sim: got %d per-lane faults for %d lanes", len(cfg.Faults), cfg.Lanes)
	}
	s.cfg = cfg
	s.sys = sys
	s.sizer, _ = sys.(SlicedSizer)
	s.n = n
	s.lanes = cfg.Lanes
	s.all = bitset.LaneMask(cfg.Lanes)
	s.active = s.all
	s.escaped, s.settled = 0, 0

	s.filtered = 0
	s.maxDelay = 0
	s.crashes = s.crashes[:0]
	s.crashCur = 0
	for lane := 0; lane < 64; lane++ {
		s.filters[lane] = nil
		s.laneMaxDelay[lane] = 0
	}
	for lane := 0; lane < len(cfg.Faults); lane++ {
		f := cfg.Faults[lane]
		if f == nil {
			continue
		}
		cp, ok := f.(CrashPlan)
		if !ok {
			return fmt.Errorf("%w: lane %d fault %T does not declare CrashEvents", ErrNotSliceable, lane, f)
		}
		for _, e := range cp.CrashEvents() {
			if e.Node < 0 || e.Node >= n || e.Round < 0 {
				continue
			}
			keep := int32(e.Keep)
			if e.Keep < 0 {
				keep = -1
			}
			s.crashes = append(s.crashes, slicedCrash{round: int32(e.Round), node: int32(e.Node), keep: keep, lane: uint8(lane)})
		}
		if lf, ok := f.(LinkFilter); ok {
			d := lf.MaxDelay()
			if d < 0 {
				return fmt.Errorf("sim: link filter declares negative MaxDelay %d", d)
			}
			s.filters[lane] = lf
			s.filtered |= uint64(1) << lane
			s.laneMaxDelay[lane] = d
			if d > s.maxDelay {
				s.maxDelay = d
			}
		}
	}
	slices.SortFunc(s.crashes, func(a, b slicedCrash) int {
		if a.round != b.round {
			return int(a.round - b.round)
		}
		if a.node != b.node {
			return int(a.node - b.node)
		}
		return int(a.lane) - int(b.lane)
	})
	if s.maxDelay > 0 {
		if s.ring == nil || len(s.ring.slots) != s.maxDelay+1 {
			s.ring = &slicedRing{slots: make([][]SlicedMsg, s.maxDelay+1)}
		} else {
			s.ring.reset()
		}
	} else {
		s.ring = nil
	}
	s.delayLanes = growSlice(s.delayLanes, s.maxDelay+1)
	s.delayBits = growSlice(s.delayBits, s.maxDelay+1)
	clear(s.delayLanes)
	clear(s.delayBits)

	s.crashedL = growSlice(s.crashedL, n)
	s.haltedL = growSlice(s.haltedL, n)
	clear(s.crashedL)
	clear(s.haltedL)
	s.liveCount = [64]int32{}
	for lane := 0; lane < cfg.Lanes; lane++ {
		s.liveCount[lane] = int32(n)
	}
	s.roundsDone = [64]int{}

	s.ctr.Reset()
	s.roundCounts = [64]int64{}
	s.msgs = [64]int64{}
	s.bitsAcc = [64]int64{}
	if s.perRound == nil {
		s.perRound = make([][]int64, 64)
	}
	if s.haltedAt == nil {
		s.haltedAt = make([][]int, 64)
	}
	if s.crashedSets == nil {
		s.crashedSets = make([]*bitset.Set, 64)
	}
	for lane := 0; lane < cfg.Lanes; lane++ {
		s.perRound[lane] = growSlice(s.perRound[lane], cfg.MaxRounds)
		clear(s.perRound[lane])
		s.haltedAt[lane] = growSlice(s.haltedAt[lane], n)
		for i := range s.haltedAt[lane] {
			s.haltedAt[lane][i] = -1
		}
		if s.crashedSets[lane] == nil || s.crashedSets[lane].Len() != n {
			s.crashedSets[lane] = bitset.New(n)
		} else {
			s.crashedSets[lane].Clear()
		}
	}
	if s.lanesRes == nil {
		s.lanesRes = make([]LaneResult, 64)
	}

	s.staged = s.staged[:0]
	s.counts = growSlice(s.counts, n)
	s.offs = growSlice(s.offs, n+1)
	s.crashedNow = s.crashedNow[:0]
	return nil
}

// detach drops the arena's references into caller-owned objects (the
// system, the per-lane faults) so an idle pooled arena does not pin
// them; see state.detach.
func (s *slicedState) detach() {
	s.cfg = SlicedConfig{}
	s.sys = nil
	s.sizer = nil
	for i := range s.filters {
		s.filters[i] = nil
	}
}

func (s *slicedState) run() (*SlicedResult, error) {
	for r := 0; r < s.cfg.MaxRounds && s.active != 0; r++ {
		if err := s.round(r); err != nil {
			return nil, err
		}
	}
	return s.result(), nil
}

// settle retires a lane whose last live node crashed or halted during
// round r: the scalar engine would observe allDone at the top of round
// r+1, so the lane's round count is r+1.
func (s *slicedState) settle(lane, r int) {
	s.active &^= uint64(1) << lane
	s.settled |= uint64(1) << lane
	s.roundsDone[lane] = r + 1
}

// escape retires lanes to the scalar path: they leave active, their
// partial sliced state and metrics are discarded (the caller re-runs
// them scalar from scratch), and any of their bits still staged or in
// flight are inert because every delivery mask excludes inactive lanes.
func (s *slicedState) escape(m uint64) {
	s.escaped |= m
	s.active &^= m
}

// round executes one lock-step round across all active lanes, phase
// order exactly matching the scalar engine: delayed arrivals, sends
// with node-level crash truncation and link-level verdicts, crash
// application, sender-order restore, scatter, delivery, halt
// detection, metrics flush.
func (s *slicedState) round(r int) error {
	exec := s.active
	s.staged = s.staged[:0]
	arrivals := 0
	if s.ring != nil {
		arr := s.ring.take(r)
		s.staged = append(s.staged, arr...)
		arrivals = len(arr)
	}

	// The crash events entering this round, sorted by node: consumed by
	// a cursor inside the send loop below.
	evLo := s.crashCur
	for s.crashCur < len(s.crashes) && int(s.crashes[s.crashCur].round) == r {
		s.crashCur++
	}
	evs := s.crashes[evLo:s.crashCur]
	evCur := 0
	s.crashedNow = s.crashedNow[:0]

	// Send phase: one SlicedSend per node with any alive lane, then the
	// node's crash events truncate per-lane keep prefixes, traffic is
	// tallied post-crash pre-filter (the scalar accounting point), and
	// link verdicts split the staged words.
	for node := 0; node < s.n; node++ {
		am := s.active &^ s.crashedL[node] &^ s.haltedL[node]
		start := len(s.staged)
		if am != 0 {
			var esc uint64
			s.staged, esc = s.sys.SlicedSend(r, node, am, s.staged)
			if esc &= am; esc != 0 {
				s.escape(esc)
				am &^= esc
			}
			if err := s.sanitizeSegment(node, s.staged[start:], am); err != nil {
				return err
			}
		}
		var crashMask uint64
		for evCur < len(evs) && int(evs[evCur].node) < node {
			evCur++
		}
		for evCur < len(evs) && int(evs[evCur].node) == node {
			e := evs[evCur]
			evCur++
			b := uint64(1) << e.lane
			if am&b == 0 || crashMask&b != 0 {
				// The lane is already settled, escaped, crashed or
				// halted at this node — the scalar engine would never
				// have consulted the fault for it.
				continue
			}
			if e.keep >= 0 {
				truncateLanePrefix(s.staged[start:], b, int(e.keep))
			}
			crashMask |= b
		}
		if crashMask != 0 {
			s.crashedNow = append(s.crashedNow, nodeLanes{node: int32(node), lanes: crashMask})
		}
		seg := s.staged[start:]
		for i := range seg {
			if m := seg[i].Lanes & exec; m != 0 {
				s.ctr.Add(m)
				if s.sizer != nil {
					s.sizer.AddSlicedBits(seg[i], m, &s.bitsAcc)
				}
			}
		}
		if s.filtered != 0 && len(seg) > 0 {
			if err := s.filterSegment(r, seg); err != nil {
				return err
			}
		}
	}

	// Apply this round's crashes after the whole send phase, like the
	// scalar engine: a node crashing at round r still received nothing
	// and delivers nothing this round.
	for _, c := range s.crashedNow {
		s.crashedL[c.node] |= c.lanes
		m := c.lanes
		for m != 0 {
			lane := bits.TrailingZeros64(m)
			m &= m - 1
			s.crashedSets[lane].Add(int(c.node))
			if s.liveCount[lane]--; s.liveCount[lane] == 0 {
				s.settle(lane, r)
			}
		}
	}

	if arrivals > 0 {
		// Delayed arrivals were staged ahead of the round's fresh sends;
		// the stable sender sort restores per-lane delivery order (same
		// contract as sortStagedBySender).
		slices.SortStableFunc(s.staged, func(a, b SlicedMsg) int { return int(a.From) - int(b.From) })
	}
	s.place()

	// Deliver phase, in node order.
	for node := 0; node < s.n; node++ {
		am := s.active &^ s.crashedL[node] &^ s.haltedL[node]
		if am == 0 {
			continue
		}
		esc := s.sys.SlicedDeliver(r, node, am, s.inboxOf(node))
		if esc &= am; esc != 0 {
			s.escape(esc)
			am &^= esc
		}
		if newHalt := s.sys.HaltedLanes(node) & am; newHalt != 0 {
			s.haltedL[node] |= newHalt
			m := newHalt
			for m != 0 {
				lane := bits.TrailingZeros64(m)
				m &= m - 1
				s.haltedAt[lane][node] = r
				if s.liveCount[lane]--; s.liveCount[lane] == 0 {
					s.settle(lane, r)
				}
			}
		}
	}

	// Metrics flush: the vertical counter materializes this round's
	// per-lane message counts for the lanes that executed the round.
	s.ctr.Flush(&s.roundCounts)
	for m := exec; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		c := s.roundCounts[lane]
		s.roundCounts[lane] = 0
		s.msgs[lane] += c
		s.perRound[lane][r] = c
	}
	return nil
}

// sanitizeSegment validates a node's freshly staged segment (the
// scalar validateOutbox invariants) and confines every lane bit to the
// lanes the node was allowed to send in.
func (s *slicedState) sanitizeSegment(node int, seg []SlicedMsg, am uint64) error {
	for i := range seg {
		m := &seg[i]
		if int(m.From) != node {
			return fmt.Errorf("sim: sliced node %d forged sender %d", node, m.From)
		}
		if m.To < 0 || int(m.To) >= s.n {
			return fmt.Errorf("sim: sliced node %d addressed invalid node %d", node, m.To)
		}
		if int(m.To) == node {
			return fmt.Errorf("sim: sliced node %d sent to itself", node)
		}
		m.Lanes &= am
		m.Bits &= m.Lanes
	}
	return nil
}

// truncateLanePrefix clears lane b from every message of seg beyond
// that lane's first keep messages — the midway-multicast interruption,
// per lane.
func truncateLanePrefix(seg []SlicedMsg, b uint64, keep int) {
	cnt := 0
	for i := range seg {
		if seg[i].Lanes&b == 0 {
			continue
		}
		if cnt++; cnt > keep {
			seg[i].Lanes &^= b
			seg[i].Bits &^= b
		}
	}
}

// filterSegment routes a node's staged segment through the per-lane
// link filters: for each message, lanes without a filter deliver
// as-is; each filtered lane's verdict moves its bit into the
// deliver-now mask, drops it, or parks it in the ring at distance k.
func (s *slicedState) filterSegment(r int, seg []SlicedMsg) error {
	for i := range seg {
		m := &seg[i]
		fl := m.Lanes & s.filtered
		if fl == 0 {
			continue
		}
		now := m.Lanes &^ s.filtered
		env := Envelope{From: NodeID(m.From), To: NodeID(m.To)}
		var delayed uint64
		for w := fl; w != 0; w &= w - 1 {
			lane := bits.TrailingZeros64(w)
			b := uint64(1) << lane
			env.Payload = Bit(m.Bits&b != 0)
			v := s.filters[lane].FilterLink(r, env)
			switch {
			case v == Deliver:
				now |= b
			case v == Drop:
				// Lost in the network.
			case v < Drop:
				return fmt.Errorf("sim: link fault returned invalid verdict %d", int(v))
			default:
				k := int(v)
				if k > s.laneMaxDelay[lane] {
					return fmt.Errorf("sim: link fault delayed an envelope by %d rounds, beyond its MaxDelay of %d", k, s.laneMaxDelay[lane])
				}
				s.delayLanes[k] |= b
				s.delayBits[k] |= m.Bits & b
				delayed |= uint64(1) << k
			}
		}
		for w := delayed; w != 0; w &= w - 1 {
			k := bits.TrailingZeros64(w)
			s.ring.push(r+k, SlicedMsg{From: m.From, To: m.To, Lanes: s.delayLanes[k], Bits: s.delayBits[k], Tag: m.Tag})
			s.delayLanes[k], s.delayBits[k] = 0, 0
		}
		m.Lanes = now
		m.Bits &= now
	}
	return nil
}

// place scatters the staged buffer into per-destination inbox segments
// with a counting sort on To — the sliced mirror of scratch.place.
// Messages whose lane mask emptied (dropped, delayed, truncated) are
// skipped rather than compacted.
func (s *slicedState) place() {
	counts := s.counts[:s.n]
	clear(counts)
	for i := range s.staged {
		if s.staged[i].Lanes != 0 {
			counts[s.staged[i].To]++
		}
	}
	offs := s.offs[:s.n+1]
	offs[0] = 0
	for i := 0; i < s.n; i++ {
		offs[i+1] = offs[i] + counts[i]
	}
	s.inbox = growSlice(s.inbox, int(offs[s.n]))
	// Reuse counts as per-destination cursors; the scatter is stable,
	// preserving the sender-sorted order within each inbox.
	copy(counts, offs[:s.n])
	for i := range s.staged {
		m := &s.staged[i]
		if m.Lanes == 0 {
			continue
		}
		p := counts[m.To]
		counts[m.To] = p + 1
		s.inbox[p] = *m
	}
}

func (s *slicedState) inboxOf(id int) []SlicedMsg {
	return s.inbox[s.offs[id]:s.offs[id+1]]
}

// result fills the arena-owned result envelope; see SlicedResult for
// the aliasing contract.
func (s *slicedState) result() *SlicedResult {
	for lane := 0; lane < s.lanes; lane++ {
		lr := &s.lanesRes[lane]
		*lr = LaneResult{}
		b := uint64(1) << lane
		switch {
		case s.escaped&b != 0:
			lr.Escaped = true
		case s.settled&b == 0:
			lr.Err = fmt.Errorf("%w (MaxRounds=%d)", ErrNoTermination, s.cfg.MaxRounds)
		default:
			// Without a SlicedSizer, payloads are single bits and
			// bits == messages; a sizer accumulated its own totals.
			bits := s.msgs[lane]
			if s.sizer != nil {
				bits = s.bitsAcc[lane]
			}
			lr.Metrics = Metrics{
				Rounds:           s.roundsDone[lane],
				Messages:         s.msgs[lane],
				Bits:             bits,
				PerRoundMessages: s.perRound[lane][:s.roundsDone[lane]],
			}
			lr.Crashed = s.crashedSets[lane]
			lr.HaltedAt = s.haltedAt[lane]
		}
	}
	s.res = SlicedResult{Lanes: s.lanesRes[:s.lanes], Escaped: s.escaped}
	return &s.res
}
