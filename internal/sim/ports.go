package sim

// Single-port in-port buffers. The original engine kept one
// map[NodeID][]Envelope per node, paying a hash lookup plus an append
// allocation per deposit and re-slicing (or deleting) per poll. The
// replacement is index-addressed: each receiving node owns a portSet
// whose idx table maps a sender directly to a ring buffer, and the
// rings recycle their storage, so steady-state deposit and poll touch
// no allocator at all.

// portRing is one in-port FIFO: a power-of-two ring buffer.
type portRing struct {
	buf  []Envelope // len(buf) is always a power of two (or zero)
	head int
	size int
}

func (r *portRing) push(env Envelope) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = env
	r.size++
}

func (r *portRing) grow() {
	ncap := len(r.buf) * 2
	if ncap == 0 {
		ncap = 4
	}
	nbuf := make([]Envelope, ncap)
	for i := 0; i < r.size; i++ {
		nbuf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nbuf
	r.head = 0
}

func (r *portRing) pop() (Envelope, bool) {
	if r.size == 0 {
		return Envelope{}, false
	}
	env := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return env, true
}

// portSet is one node's set of in-ports, addressed by sender index.
// idx is allocated on the node's first deposit (idx[from] is the ring's
// position in rings, plus one; zero means the port was never used), so
// nodes that never receive cost two nil slices.
type portSet struct {
	idx   []int32
	rings []portRing
}

func (p *portSet) push(n int, env Envelope) {
	if p.idx == nil {
		p.idx = make([]int32, n)
	}
	k := p.idx[env.From]
	if k == 0 {
		p.rings = append(p.rings, portRing{})
		k = int32(len(p.rings))
		p.idx[env.From] = k
	}
	p.rings[k-1].push(env)
}

func (p *portSet) pop(from NodeID) (Envelope, bool) {
	if p.idx == nil {
		return Envelope{}, false
	}
	k := p.idx[from]
	if k == 0 {
		return Envelope{}, false
	}
	return p.rings[k-1].pop()
}
