package sim

// Single-port in-port buffers. The original engine kept one
// map[NodeID][]Envelope per node, paying a hash lookup plus an append
// allocation per deposit and re-slicing (or deleting) per poll. The
// replacement is index-addressed: each receiving node owns a portSet
// whose idx table maps a sender directly to a ring buffer, and the
// rings recycle their storage, so steady-state deposit and poll touch
// no allocator at all. The rings carry packed wireMsgs (wire.go);
// decoding back to an Envelope happens once, at the poll that delivers
// the message.
//
// The idx tables are n-sized and survive arena reuse (see
// state.reset): a fresh run on a pooled Runtime recycles the previous
// run's tables instead of lazily re-allocating up to n of them — the
// O(n²) worst-case table bytes dense-fanout scenarios used to pay per
// run.

// portRing is one in-port FIFO: a power-of-two ring buffer.
type portRing struct {
	buf  []wireMsg // len(buf) is always a power of two (or zero)
	head int
	size int
}

func (r *portRing) push(wm wireMsg) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = wm
	r.size++
}

func (r *portRing) grow() {
	ncap := len(r.buf) * 2
	if ncap == 0 {
		ncap = 4
	}
	nbuf := make([]wireMsg, ncap)
	for i := 0; i < r.size; i++ {
		nbuf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nbuf
	r.head = 0
}

func (r *portRing) pop() (wireMsg, bool) {
	if r.size == 0 {
		return wireMsg{}, false
	}
	wm := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return wm, true
}

// portSet is one node's set of in-ports, addressed by sender index.
// idx is allocated on the node's first deposit (idx[from] is the ring's
// position in rings, plus one; zero means the port was never used), so
// nodes that never receive cost two nil slices.
type portSet struct {
	idx   []int32
	rings []portRing
}

func (p *portSet) push(n int, wm wireMsg) {
	if p.idx == nil {
		p.idx = make([]int32, n)
	}
	k := p.idx[wm.From]
	if k == 0 {
		p.rings = append(p.rings, portRing{})
		k = int32(len(p.rings))
		p.idx[wm.From] = k
	}
	p.rings[k-1].push(wm)
}

func (p *portSet) pop(from NodeID) (wireMsg, bool) {
	if p.idx == nil {
		return wireMsg{}, false
	}
	k := p.idx[from]
	if k == 0 {
		return wireMsg{}, false
	}
	return p.rings[k-1].pop()
}

// recycle empties the rings for a fresh run on the same arena, keeping
// the idx table and the ring storage (the sender→ring assignments stay
// valid; re-running the same topology redeposits into warm buffers).
func (p *portSet) recycle() {
	for i := range p.rings {
		p.rings[i].head = 0
		p.rings[i].size = 0
	}
}
