package sim

import (
	"errors"

	"lineartime/internal/obs"
)

// runOutcome classifies a run error for the tracer's outcome label.
func runOutcome(err error) obs.Outcome {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, ErrNoTermination):
		return obs.OutcomeNoTermination
	default:
		return obs.OutcomeError
	}
}
