package sim

import (
	"strings"
	"testing"
)

// badFilter is a LinkFilter returning a fixed (possibly contract-
// violating) verdict, with a declared delay bound.
type badFilter struct {
	NoFailures
	verdict Verdict
	bound   int
}

func (f badFilter) FilterLink(int, Envelope) Verdict { return f.verdict }
func (f badFilter) MaxDelay() int                    { return f.bound }

type pingPayload struct{}

func (pingPayload) SizeBits() int { return 1 }

// pinger sends one message per round for a few rounds, then halts.
type pinger struct {
	id, n  int
	rounds int
	out    [1]Envelope
}

func (p *pinger) Send(round int) []Envelope {
	p.out[0] = Envelope{From: p.id, To: (p.id + 1) % p.n, Payload: pingPayload{}}
	return p.out[:]
}
func (p *pinger) Deliver(int, []Envelope) { p.rounds++ }
func (p *pinger) Halted() bool            { return p.rounds >= 4 }

func pingConfig(n int, fault LinkFault) Config {
	ps := make([]Protocol, n)
	for i := range ps {
		ps[i] = &pinger{id: i, n: n}
	}
	return Config{Protocols: ps, Fault: fault, MaxRounds: 16}
}

// TestLinkFilterContractViolations pins that a misbehaving LinkFilter
// fails the run with a descriptive error instead of panicking or
// silently mis-scheduling: verdicts below Drop are invalid, and delays
// beyond the declared MaxDelay are rejected whether or not a ring
// exists (MaxDelay 0 allocates none).
func TestLinkFilterContractViolations(t *testing.T) {
	cases := []struct {
		name    string
		fault   LinkFilter
		wantErr string
	}{
		{"invalid-negative-verdict", badFilter{verdict: Verdict(-7), bound: 0}, "invalid verdict"},
		{"invalid-negative-verdict-with-ring", badFilter{verdict: Verdict(-2), bound: 3}, "invalid verdict"},
		{"delay-beyond-declared-zero-bound", badFilter{verdict: Verdict(1), bound: 0}, "beyond its MaxDelay"},
		{"delay-beyond-declared-bound", badFilter{verdict: Verdict(5), bound: 2}, "beyond its MaxDelay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(pingConfig(4, tc.fault)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
			if _, err := RunParallel(pingConfig(4, tc.fault), 2); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parallel err = %v, want %q", err, tc.wantErr)
			}
		})
	}
	// A negative MaxDelay is rejected at configuration time.
	if _, err := Run(pingConfig(4, badFilter{verdict: Deliver, bound: -1})); err == nil || !strings.Contains(err.Error(), "negative MaxDelay") {
		t.Fatalf("negative MaxDelay: err = %v", err)
	}
}

// TestDelayRingRecycles pins the ring's slot recycling: a verdict of
// exactly MaxDelay lands in a slot distinct from the one drained this
// round, and the engine delivers everything a fixed filter delays.
func TestDelayRingRecycles(t *testing.T) {
	const n = 4
	res, err := Run(pingConfig(n, badFilter{verdict: Verdict(2), bound: 2}))
	if err != nil {
		t.Fatal(err)
	}
	// Every message is sent (and counted); rounds advance past the
	// halting point even though all deliveries arrive 2 rounds late.
	if res.Metrics.Messages != int64(n*4) {
		t.Fatalf("messages = %d, want %d", res.Metrics.Messages, n*4)
	}
}
