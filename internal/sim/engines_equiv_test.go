package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"lineartime/internal/bitset"
	"lineartime/internal/rng"
)

// Cross-engine equivalence: the CSR scratch-buffer sequential engine,
// the sharded worker pool, and a reference reimplementation of the
// original engine (per-round inbox allocation, sort.Slice ordering,
// map-based port buffers) must produce byte-identical Results — same
// metrics including the per-round and per-part series, same crash
// sets, same HaltedAt, same protocol end states — on randomized
// systems across multi-port, single-port, crash and Byzantine configs.

// fuzzPayload has a size derived from protocol state so the bit
// accounting is exercised beyond the 1-bit fast path.
type fuzzPayload struct{ bits int }

func (p fuzzPayload) SizeBits() int { return p.bits }

// fuzzNode is a randomized protocol: traffic pattern, poll choices and
// halting depend on a per-node PRNG and on everything received so far,
// so any divergence between engines cascades into the transcript. With
// mixed set, sends alternate between the engine's inline payload kinds
// (Bit, Inquiry, Probe) and the protocol-defined fuzzPayload, so the
// wire plane's inline packing and the escape side table are exercised
// together; Deliver folds each payload's concrete value into the
// accumulator, so a round-trip that loses a bit of payload content (not
// just its size) diverges the transcript.
type fuzzNode struct {
	id, n, horizon int
	single         bool
	mixed          bool
	r              *rng.SplitMix64
	acc            uint64
	rounds         int
	out            []Envelope
}

func newFuzzNode(id, n, horizon int, single, mixed bool, seed uint64) *fuzzNode {
	return &fuzzNode{
		id: id, n: n, horizon: horizon + id%5, single: single, mixed: mixed,
		r:   rng.New(seed ^ uint64(id)*0x9e3779b97f4a7c15),
		acc: uint64(id) + 1,
	}
}

func (f *fuzzNode) target() NodeID {
	to := f.r.Intn(f.n - 1)
	if to >= f.id {
		to++
	}
	return to
}

func (f *fuzzNode) payload() Payload {
	if f.mixed {
		switch f.r.Intn(5) {
		case 0:
			return Bit(f.acc&1 != 0)
		case 1:
			return Inquiry{}
		case 2:
			return Probe{Rumor: Bit(f.acc&2 != 0)}
		}
	}
	return fuzzPayload{bits: 1 + int((f.acc>>3)%7)}
}

func (f *fuzzNode) Send(round int) []Envelope {
	f.out = f.out[:0]
	fanout := f.r.Intn(4)
	if f.single && fanout > 1 {
		fanout = 1
	}
	for k := 0; k < fanout; k++ {
		f.out = append(f.out, Envelope{
			From:    f.id,
			To:      f.target(),
			Payload: f.payload(),
		})
	}
	return f.out
}

func (f *fuzzNode) Poll(round int) (NodeID, bool) {
	if f.r.Intn(4) == 0 {
		return 0, false
	}
	return f.target(), true
}

// payloadFingerprint hashes a payload's concrete type and value, so the
// equivalence accumulator distinguishes Bit(true) from Bit(false) and a
// Probe from an Inquiry, not just their sizes.
func payloadFingerprint(p Payload) uint64 {
	switch v := p.(type) {
	case Bit:
		return 0x11 + uint64(v.Value())
	case Inquiry:
		return 0x23
	case Probe:
		return 0x31 + uint64(v.Rumor.Value())
	case fuzzPayload:
		return 0x47 ^ uint64(v.bits)<<8
	default:
		return 0x59
	}
}

func (f *fuzzNode) Deliver(round int, inbox []Envelope) {
	for _, env := range inbox {
		f.acc = f.acc*0x100000001b3 ^ uint64(env.From)<<17 ^ uint64(env.Payload.SizeBits())
		f.acc ^= payloadFingerprint(env.Payload) << 7
	}
	f.rounds++
}

func (f *fuzzNode) Halted() bool { return f.rounds >= f.horizon }

// multiCrash is a stateless deterministic crash schedule.
type multiCrash struct {
	rounds map[NodeID]int
	keeps  map[NodeID]int
}

func newMultiCrash(n, f, horizon int, seed uint64) multiCrash {
	r := rng.New(seed)
	mc := multiCrash{rounds: map[NodeID]int{}, keeps: map[NodeID]int{}}
	for len(mc.rounds) < f {
		node := r.Intn(n)
		if _, dup := mc.rounds[node]; dup {
			continue
		}
		mc.rounds[node] = r.Intn(horizon)
		mc.keeps[node] = r.Intn(3) - 1 // -1 keeps all
	}
	return mc
}

func (m multiCrash) FilterSend(round int, from NodeID, out []Envelope) ([]Envelope, bool) {
	if r, ok := m.rounds[from]; ok && r == round {
		if k := m.keeps[from]; k >= 0 && k < len(out) {
			return out[:k], true
		}
		return out, true
	}
	return out, false
}

// fuzzLink is a randomized link fault layered over an optional crash
// schedule: every surviving envelope is independently dropped, delayed
// 1..d rounds, or delivered, decided by a stateless hash of the link
// coordinates (so verdicts are identical regardless of evaluation
// order or engine). It exercises the full LinkFault surface — crash,
// omission and delay at once.
type fuzzLink struct {
	crash    multiCrash
	useCrash bool
	d        int
	seed     uint64
}

func (f fuzzLink) FilterSend(round int, from NodeID, out []Envelope) ([]Envelope, bool) {
	if f.useCrash {
		return f.crash.FilterSend(round, from, out)
	}
	return out, false
}

func (f fuzzLink) FilterLink(round int, env Envelope) Verdict {
	x := f.seed
	x ^= uint64(round) * 0x9e3779b97f4a7c15
	x ^= uint64(env.From) * 0xbf58476d1ce4e5b9
	x ^= uint64(env.To) * 0x94d049bb133111eb
	x ^= uint64(env.Payload.SizeBits()) * 0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	switch p := x % 100; {
	case p < 12:
		return Drop
	case p < 35:
		return DelayBy(1 + int((x>>32)%uint64(f.d)))
	default:
		return Deliver
	}
}

func (f fuzzLink) MaxDelay() int { return f.d }

// referenceRun reimplements the pre-refactor engine verbatim: fresh
// [][]Envelope inboxes each round, per-node sort, map-based
// single-port buffers, per-sender label lookups — extended with a
// naive map-of-slices rendering of the link layer (pending arrivals
// keyed by round) as the oracle for omission/partition/delay
// semantics. Inboxes sort stably by sender, the tie-break the engines
// guarantee (chronological within a sender).
func referenceRun(cfg Config) (*Result, error) {
	n := len(cfg.Protocols)
	adv := cfg.Fault
	if adv == nil {
		adv = NoFailures{}
	}
	var filter LinkFilter
	if lf, ok := adv.(LinkFilter); ok {
		filter = lf
	}
	// pending holds delayed envelopes keyed by arrival round — the
	// naive rendering of the engines' delay ring.
	pending := make(map[int][]Envelope)
	isByz := func(id NodeID) bool { return cfg.Byzantine != nil && cfg.Byzantine.Contains(id) }
	crashed := bitset.New(n)
	haltedAt := make([]int, n)
	for i := range haltedAt {
		haltedAt[i] = -1
	}
	alive := func(id NodeID) bool { return !crashed.Contains(id) && haltedAt[id] < 0 }
	var metrics Metrics
	var ports []map[NodeID][]Envelope
	if cfg.SinglePort {
		ports = make([]map[NodeID][]Envelope, n)
		for i := range ports {
			ports[i] = make(map[NodeID][]Envelope)
		}
	}
	count := func(r int, from NodeID, deliver []Envelope) {
		for len(metrics.PerRoundMessages) <= r {
			metrics.PerRoundMessages = append(metrics.PerRoundMessages, 0)
		}
		var label string
		if cfg.PartLabeler != nil && len(deliver) > 0 {
			label = cfg.PartLabeler(r)
			if metrics.PerPart == nil {
				metrics.PerPart = make(map[string]int64)
			}
		}
		for _, env := range deliver {
			bits := int64(env.Payload.SizeBits())
			if isByz(from) {
				metrics.ByzMessages++
				metrics.ByzBits += bits
			} else {
				metrics.Messages++
				metrics.Bits += bits
				metrics.PerRoundMessages[r]++
				if label != "" {
					metrics.PerPart[label]++
				}
			}
		}
	}
	allDone := func() bool {
		for id := 0; id < n; id++ {
			if alive(id) && !isByz(id) {
				return false
			}
		}
		return true
	}
	finish := func(r int) *Result {
		metrics.Rounds = r
		return &Result{Metrics: metrics, Crashed: crashed, HaltedAt: haltedAt}
	}
	for r := 0; r < cfg.MaxRounds; r++ {
		if allDone() {
			return finish(r), nil
		}
		inboxes := make([][]Envelope, n)
		var crashedNow []NodeID
		var deposits [][]Envelope
		if arrivals := pending[r]; len(arrivals) > 0 {
			if cfg.SinglePort {
				deposits = append(deposits, arrivals)
			} else {
				for _, env := range arrivals {
					inboxes[env.To] = append(inboxes[env.To], env)
				}
			}
			delete(pending, r)
		}
		for id := 0; id < n; id++ {
			if !alive(id) {
				continue
			}
			out := cfg.Protocols[id].Send(r)
			deliver, crash := adv.FilterSend(r, id, out)
			if crash {
				crashedNow = append(crashedNow, id)
			}
			count(r, id, deliver)
			if filter != nil {
				kept := deliver[:0:0]
				for _, env := range deliver {
					switch v := filter.FilterLink(r, env); {
					case v == Deliver:
						kept = append(kept, env)
					case v == Drop:
					default:
						arrival := r + int(v)
						pending[arrival] = append(pending[arrival], env)
					}
				}
				deliver = kept
			}
			if cfg.SinglePort {
				deposits = append(deposits, append([]Envelope(nil), deliver...))
			} else {
				for _, env := range deliver {
					inboxes[env.To] = append(inboxes[env.To], env)
				}
			}
		}
		for _, id := range crashedNow {
			crashed.Add(id)
		}
		if cfg.SinglePort {
			for _, batch := range deposits {
				for _, env := range batch {
					if crashed.Contains(env.To) || haltedAt[env.To] >= 0 {
						continue
					}
					ports[env.To][env.From] = append(ports[env.To][env.From], env)
				}
			}
			for id := 0; id < n; id++ {
				if !alive(id) {
					continue
				}
				if from, wants := cfg.Protocols[id].(Poller).Poll(r); wants {
					if buf := ports[id][from]; len(buf) > 0 {
						inboxes[id] = []Envelope{buf[0]}
						if len(buf) == 1 {
							delete(ports[id], from)
						} else {
							ports[id][from] = buf[1:]
						}
					}
				}
			}
		}
		for id := 0; id < n; id++ {
			if !alive(id) {
				continue
			}
			inbox := inboxes[id]
			sort.SliceStable(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
			cfg.Protocols[id].Deliver(r, inbox)
			if cfg.Protocols[id].Halted() {
				haltedAt[id] = r
			}
		}
	}
	if allDone() {
		return finish(cfg.MaxRounds), nil
	}
	return nil, ErrNoTermination
}

// --- Bit-sliced engine equivalence -----------------------------------
//
// The sliced engine must reproduce, per lane, exactly the Result the
// scalar engine produces for that lane's fault layer. The protocol
// under test is a self-contained flooding machine (a mirror of
// consensus.Flooding, re-stated here because package sim cannot import
// internal/consensus): scalar consFlood per node, lane-parallel
// wordFlood for the sliced engine.

type consFlood struct {
	id, n, t  int
	candidate bool
	pending   bool
	flooded   bool
	decided   bool
	decision  bool
	halted    bool
	out       []Envelope
}

func (f *consFlood) Send(round int) []Envelope {
	if round >= f.t+2 || !f.pending || f.flooded {
		return nil
	}
	f.pending = false
	f.flooded = true
	f.out = f.out[:0]
	for to := 0; to < f.n; to++ {
		if to != f.id {
			f.out = append(f.out, Envelope{From: f.id, To: to, Payload: Bit(true)})
		}
	}
	return f.out
}

func (f *consFlood) Deliver(round int, inbox []Envelope) {
	if !f.candidate {
		for _, env := range inbox {
			if b, ok := env.Payload.(Bit); ok && bool(b) {
				f.candidate = true
				f.pending = true
				break
			}
		}
	}
	if round == f.t+1 {
		f.decided = true
		f.decision = f.candidate
		f.halted = true
	}
}

func (f *consFlood) Halted() bool { return f.halted }

// wordFlood is the lane-parallel mirror of consFlood.
type wordFlood struct {
	n, t int
	all  uint64

	candidate []uint64
	pending   []uint64
	flooded   []uint64
	decided   []uint64
	decision  []uint64
	halted    []uint64
}

func newWordFlood(n, t, lanes int, inputs []bool) *wordFlood {
	w := &wordFlood{
		n: n, t: t, all: bitset.LaneMask(lanes),
		candidate: make([]uint64, n),
		pending:   make([]uint64, n),
		flooded:   make([]uint64, n),
		decided:   make([]uint64, n),
		decision:  make([]uint64, n),
		halted:    make([]uint64, n),
	}
	for i, in := range inputs {
		if in {
			w.candidate[i] = w.all
			w.pending[i] = w.all
		}
	}
	return w
}

func (w *wordFlood) N() int { return w.n }

func (w *wordFlood) SlicedSend(round, node int, active uint64, out []SlicedMsg) ([]SlicedMsg, uint64) {
	if round >= w.t+2 {
		return out, 0
	}
	m := w.pending[node] &^ w.flooded[node] & active
	if m == 0 {
		return out, 0
	}
	w.pending[node] &^= m
	w.flooded[node] |= m
	for to := 0; to < w.n; to++ {
		if to != node {
			out = append(out, SlicedMsg{From: int32(node), To: int32(to), Lanes: m, Bits: m})
		}
	}
	return out, 0
}

func (w *wordFlood) SlicedDeliver(round, node int, active uint64, inbox []SlicedMsg) uint64 {
	var got uint64
	for i := range inbox {
		got |= inbox[i].Lanes & inbox[i].Bits
	}
	if x := got &^ w.candidate[node] & active; x != 0 {
		w.candidate[node] |= x
		w.pending[node] |= x
	}
	if round == w.t+1 {
		w.decided[node] |= active
		w.decision[node] = w.decision[node]&^active | w.candidate[node]&active
		w.halted[node] |= active
	}
	return 0
}

func (w *wordFlood) HaltedLanes(node int) uint64 { return w.halted[node] }

// planCrash is a declarative crash schedule implementing both sides of
// the sliced contract: FilterSend for the scalar engine, CrashEvents
// for the sliced one. At most one event per node.
type planCrash struct{ events []CrashEvent }

func (p planCrash) FilterSend(round int, from NodeID, out []Envelope) ([]Envelope, bool) {
	for _, e := range p.events {
		if e.Node == from && e.Round == round {
			if e.Keep < 0 || e.Keep >= len(out) {
				return out, true
			}
			return out[:e.Keep], true
		}
	}
	return out, false
}

func (p planCrash) CrashEvents() []CrashEvent { return p.events }

// hashLink is a stateless drop/delay filter (the fuzzLink hash) that
// embeds NoFailures, inheriting the empty CrashEvents declaration the
// way internal/link's models do.
type hashLink struct {
	NoFailures
	d    int
	seed uint64
}

func (h hashLink) FilterLink(round int, env Envelope) Verdict {
	x := h.seed
	x ^= uint64(round) * 0x9e3779b97f4a7c15
	x ^= uint64(env.From) * 0xbf58476d1ce4e5b9
	x ^= uint64(env.To) * 0x94d049bb133111eb
	x ^= uint64(env.Payload.SizeBits()) * 0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	switch p := x % 100; {
	case p < 12:
		return Drop
	case p < 35:
		return DelayBy(1 + int((x>>32)%uint64(h.d)))
	default:
		return Deliver
	}
}

func (h hashLink) MaxDelay() int { return h.d }

// planCrashLink combines the declarative crash schedule with the
// stateless link filter — the full sliceable fault surface at once.
type planCrashLink struct {
	planCrash
	link hashLink
}

func (p planCrashLink) FilterLink(round int, env Envelope) Verdict {
	return p.link.FilterLink(round, env)
}

func (p planCrashLink) MaxDelay() int { return p.link.d }

// laneCrashEvents builds a per-lane crash schedule: f distinct nodes,
// random rounds within the horizon, keeps in {-1, 0, 1, 2}.
func laneCrashEvents(n, f, horizon int, seed uint64) []CrashEvent {
	r := rng.New(seed)
	seen := make(map[NodeID]bool, f)
	events := make([]CrashEvent, 0, f)
	for len(events) < f {
		node := r.Intn(n)
		if seen[node] {
			continue
		}
		seen[node] = true
		events = append(events, CrashEvent{Node: node, Round: r.Intn(horizon), Keep: r.Intn(4) - 1})
	}
	return events
}

// compareLane pins one sliced lane against the scalar engine's Result
// for the same fault layer.
func compareLane(t *testing.T, tag string, want *Result, lane *LaneResult, nodes []*consFlood, w *wordFlood, laneBit uint64) {
	t.Helper()
	if lane.Escaped {
		t.Fatalf("%s: lane unexpectedly escaped", tag)
	}
	if lane.Err != nil {
		t.Fatalf("%s: lane error: %v", tag, lane.Err)
	}
	if !reflect.DeepEqual(want.Metrics, lane.Metrics) {
		t.Fatalf("%s: metrics diverged:\nscalar %+v\nsliced %+v", tag, want.Metrics, lane.Metrics)
	}
	if !want.Crashed.Equal(lane.Crashed) {
		t.Fatalf("%s: crash sets diverged: %v vs %v", tag, want.Crashed.Elements(), lane.Crashed.Elements())
	}
	if !reflect.DeepEqual(want.HaltedAt, lane.HaltedAt) {
		t.Fatalf("%s: HaltedAt diverged:\nscalar %v\nsliced %v", tag, want.HaltedAt, lane.HaltedAt)
	}
	for i, fn := range nodes {
		if fn.decided != (w.decided[i]&laneBit != 0) {
			t.Fatalf("%s: node %d decided diverged", tag, i)
		}
		if fn.decided && fn.decision != (w.decision[i]&laneBit != 0) {
			t.Fatalf("%s: node %d decision diverged", tag, i)
		}
	}
}

// TestSlicedEngineMatchesScalarPerLane pins the sliced engine against
// the scalar engine lane by lane at full width (64 lanes), across the
// sliceable fault surface: fault-free lanes, per-lane crash schedules
// (including an all-nodes-crash lane, so lanes settle in different
// rounds), per-lane stateless link filters, and both combined.
func TestSlicedEngineMatchesScalarPerLane(t *testing.T) {
	const n, tBound, lanes = 48, 8, 64
	horizon := tBound + 2
	maxRounds := horizon + 8
	inputs := make([]bool, n)
	for i := range inputs {
		inputs[i] = i%3 == 0
	}

	// laneFault builds lane's fault layer: a rotating mix of no fault,
	// crash schedule, link filter, and crash+link. Lane 7 crashes every
	// node at round 2 — the divergence lane that settles early.
	laneFault := func(lane int) LinkFault {
		seed := uint64(1000 + lane*37)
		if lane == 7 {
			events := make([]CrashEvent, n)
			for i := range events {
				events[i] = CrashEvent{Node: i, Round: 2, Keep: -1}
			}
			return planCrash{events: events}
		}
		switch lane % 4 {
		case 0:
			return nil
		case 1:
			return planCrash{events: laneCrashEvents(n, n/6, horizon, seed)}
		case 2:
			return hashLink{d: 3, seed: seed}
		default:
			return planCrashLink{
				planCrash: planCrash{events: laneCrashEvents(n, n/6, horizon, seed)},
				link:      hashLink{d: 2, seed: seed + 5},
			}
		}
	}

	faults := make([]LinkFault, lanes)
	for lane := range faults {
		faults[lane] = laneFault(lane)
	}
	w := newWordFlood(n, tBound, lanes, inputs)
	sliced, err := RunSliced(SlicedConfig{System: w, Lanes: lanes, MaxRounds: maxRounds, Faults: faults})
	if err != nil {
		t.Fatalf("sliced run: %v", err)
	}

	var settleRounds []int
	for lane := 0; lane < lanes; lane++ {
		nodes := make([]*consFlood, n)
		ps := make([]Protocol, n)
		for i := range ps {
			nodes[i] = &consFlood{id: i, n: n, t: tBound, candidate: inputs[i], pending: inputs[i]}
			ps[i] = nodes[i]
		}
		want, err := Run(Config{Protocols: ps, Fault: laneFault(lane), MaxRounds: maxRounds})
		if err != nil {
			t.Fatalf("lane %d: scalar run: %v", lane, err)
		}
		compareLane(t, fmt.Sprintf("lane %d", lane), want, &sliced.Lanes[lane], nodes, w, uint64(1)<<lane)
		settleRounds = append(settleRounds, sliced.Lanes[lane].Metrics.Rounds)
	}

	// The divergence lane must have settled strictly earlier than the
	// fault-free lanes (all nodes crashed at round 2 → 3 rounds).
	if settleRounds[7] != 3 {
		t.Fatalf("divergence lane settled at %d rounds, want 3", settleRounds[7])
	}
	if settleRounds[0] != horizon {
		t.Fatalf("fault-free lane settled at %d rounds, want %d", settleRounds[0], horizon)
	}
}

type equivCase struct {
	name       string
	singlePort bool
	crash      bool
	byzantine  bool
	labeler    bool
	// link layers the randomized drop/delay filter (fuzzLink) over the
	// fault — combined with crash it exercises the whole LinkFault
	// surface at once.
	link bool
	// mixed interleaves inline payload kinds with the protocol-defined
	// fuzzPayload, proving the escape side-table encoding round-trips
	// byte-identically against the oracle.
	mixed bool
}

func buildFuzz(n, horizon int, c equivCase, seed uint64) ([]Protocol, []*fuzzNode) {
	ps := make([]Protocol, n)
	fs := make([]*fuzzNode, n)
	for i := 0; i < n; i++ {
		fs[i] = newFuzzNode(i, n, horizon, c.singlePort, c.mixed, seed)
		ps[i] = fs[i]
	}
	return ps, fs
}

func equivConfig(c equivCase, ps []Protocol, n, horizon int, seed uint64) Config {
	cfg := Config{Protocols: ps, MaxRounds: horizon + 16, SinglePort: c.singlePort}
	if c.crash {
		cfg.Fault = newMultiCrash(n, n/6, horizon, seed+17)
	}
	if c.link {
		fl := fuzzLink{d: 3, seed: seed + 29}
		if c.crash {
			fl.crash = newMultiCrash(n, n/6, horizon, seed+17)
			fl.useCrash = true
		}
		cfg.Fault = fl
	}
	if c.byzantine {
		byz := bitset.New(n)
		r := rng.New(seed + 41)
		for i := 0; i < n/8; i++ {
			byz.Add(r.Intn(n))
		}
		cfg.Byzantine = byz
	}
	if c.labeler {
		cfg.PartLabeler = func(round int) string { return fmt.Sprintf("part%d", round/5) }
	}
	return cfg
}

func compareResults(t *testing.T, tag string, want, got *Result, wantNodes, gotNodes []*fuzzNode) {
	t.Helper()
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Fatalf("%s: metrics diverged:\nreference %+v\n      got %+v", tag, want.Metrics, got.Metrics)
	}
	if !want.Crashed.Equal(got.Crashed) {
		t.Fatalf("%s: crash sets diverged: %v vs %v", tag, want.Crashed.Elements(), got.Crashed.Elements())
	}
	if !reflect.DeepEqual(want.HaltedAt, got.HaltedAt) {
		t.Fatalf("%s: HaltedAt diverged:\nreference %v\n      got %v", tag, want.HaltedAt, got.HaltedAt)
	}
	for i := range wantNodes {
		if wantNodes[i].acc != gotNodes[i].acc || wantNodes[i].rounds != gotNodes[i].rounds {
			t.Fatalf("%s: node %d end state diverged", tag, i)
		}
	}
}

func TestEngineEquivalenceRandomized(t *testing.T) {
	cases := []equivCase{
		{name: "multi-port", labeler: true},
		{name: "multi-port/crash", crash: true},
		{name: "multi-port/byzantine", byzantine: true, labeler: true},
		{name: "single-port", singlePort: true, labeler: true},
		{name: "single-port/crash", singlePort: true, crash: true},
		{name: "single-port/byzantine", singlePort: true, byzantine: true},
		{name: "multi-port/link", link: true, labeler: true},
		{name: "multi-port/link+crash", link: true, crash: true},
		{name: "multi-port/link/byzantine", link: true, byzantine: true, labeler: true},
		{name: "single-port/link", singlePort: true, link: true},
		{name: "single-port/link+crash", singlePort: true, link: true, crash: true},
		{name: "multi-port/mixed-payloads", mixed: true, labeler: true},
		{name: "multi-port/mixed/link+crash", mixed: true, link: true, crash: true},
		{name: "multi-port/mixed/byzantine", mixed: true, byzantine: true},
		{name: "single-port/mixed", singlePort: true, mixed: true},
		{name: "single-port/mixed/link", singlePort: true, mixed: true, link: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 3, 5, 8} {
				const n, horizon = 48, 24
				refPs, refNodes := buildFuzz(n, horizon, c, seed)
				refRes, err := referenceRun(equivConfig(c, refPs, n, horizon, seed))
				if err != nil {
					t.Fatalf("seed %d: reference: %v", seed, err)
				}

				seqPs, seqNodes := buildFuzz(n, horizon, c, seed)
				seqRes, err := Run(equivConfig(c, seqPs, n, horizon, seed))
				if err != nil {
					t.Fatalf("seed %d: sequential: %v", seed, err)
				}
				compareResults(t, fmt.Sprintf("seed %d: sequential vs reference", seed),
					refRes, seqRes, refNodes, seqNodes)

				if c.singlePort {
					continue
				}
				for _, workers := range []int{1, 3, 7} {
					poolPs, poolNodes := buildFuzz(n, horizon, c, seed)
					poolRes, err := RunParallel(equivConfig(c, poolPs, n, horizon, seed), workers)
					if err != nil {
						t.Fatalf("seed %d: pool(%d): %v", seed, workers, err)
					}
					compareResults(t, fmt.Sprintf("seed %d: pool(%d) vs reference", seed, workers),
						refRes, poolRes, refNodes, poolNodes)
				}
			}
		})
	}
}

// TestRuntimeReuseMatchesReference re-runs the randomized equivalence
// matrix on ONE shared Runtime — interleaving multi-port, single-port,
// link-fault and parallel runs at varying sizes — and demands every
// pooled run match the fresh-state reference exactly. Any state the
// arena fails to reset between runs (a stale port ring, a leftover
// delay slot, a dirty metrics array, a mis-recycled escape table)
// diverges the transcript.
func TestRuntimeReuseMatchesReference(t *testing.T) {
	cases := []equivCase{
		{name: "multi-port", labeler: true},
		{name: "multi-port/mixed/link+crash", mixed: true, link: true, crash: true},
		{name: "single-port/mixed", singlePort: true, mixed: true},
		{name: "multi-port/crash", crash: true},
		{name: "single-port/link+crash", singlePort: true, link: true, crash: true},
		{name: "multi-port/mixed/byzantine", mixed: true, byzantine: true, labeler: true},
	}
	rt := NewRuntime()
	defer rt.Close()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range []uint64{3, 7, 11} {
				// Vary n per seed so arena reuse also crosses sizes.
				n := 32 + int(seed)*4
				const horizon = 20
				refPs, refNodes := buildFuzz(n, horizon, c, seed)
				refRes, err := referenceRun(equivConfig(c, refPs, n, horizon, seed))
				if err != nil {
					t.Fatalf("seed %d: reference: %v", seed, err)
				}

				rtPs, rtNodes := buildFuzz(n, horizon, c, seed)
				rtRes, err := rt.Run(equivConfig(c, rtPs, n, horizon, seed))
				if err != nil {
					t.Fatalf("seed %d: runtime: %v", seed, err)
				}
				compareResults(t, fmt.Sprintf("seed %d: pooled run vs reference", seed),
					refRes, rtRes, refNodes, rtNodes)

				if c.singlePort {
					continue
				}
				parPs, parNodes := buildFuzz(n, horizon, c, seed)
				parRes, err := rt.RunParallel(equivConfig(c, parPs, n, horizon, seed), 3)
				if err != nil {
					t.Fatalf("seed %d: runtime parallel: %v", seed, err)
				}
				compareResults(t, fmt.Sprintf("seed %d: pooled parallel run vs reference", seed),
					refRes, parRes, refNodes, parNodes)
			}
		})
	}
}
