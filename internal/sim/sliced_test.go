package sim

import (
	"errors"

	"reflect"
	"testing"
)

// escapingFlood wraps wordFlood and escapes chosen lanes at chosen
// phases, exercising the engine's escape-lane retirement.
type escapingFlood struct {
	*wordFlood
	sendEscape    uint64 // escape mask returned once at sendRound
	sendRound     int
	deliverEscape uint64
	deliverRound  int
}

func (e *escapingFlood) SlicedSend(round, node int, active uint64, out []SlicedMsg) ([]SlicedMsg, uint64) {
	out, _ = e.wordFlood.SlicedSend(round, node, active, out)
	if round == e.sendRound && node == 0 {
		return out, e.sendEscape
	}
	return out, 0
}

func (e *escapingFlood) SlicedDeliver(round, node int, active uint64, inbox []SlicedMsg) uint64 {
	e.wordFlood.SlicedDeliver(round, node, active, inbox)
	if round == e.deliverRound && node == 1 {
		return e.deliverEscape
	}
	return 0
}

// TestSlicedEscapeLanes: lanes flagged by the system leave the sliced
// path (Escaped set, no result), and the surviving lanes still match
// the scalar engine exactly.
func TestSlicedEscapeLanes(t *testing.T) {
	const n, tBound, lanes = 24, 5, 16
	maxRounds := tBound + 2 + 8
	inputs := make([]bool, n)
	for i := range inputs {
		inputs[i] = i%3 == 0
	}
	const sendEsc, deliverEsc = uint64(1) << 3, uint64(1) << 10
	sys := &escapingFlood{
		wordFlood:  newWordFlood(n, tBound, lanes, inputs),
		sendEscape: sendEsc, sendRound: 1,
		deliverEscape: deliverEsc, deliverRound: 2,
	}
	res, err := RunSliced(SlicedConfig{System: sys, Lanes: lanes, MaxRounds: maxRounds})
	if err != nil {
		t.Fatalf("sliced run: %v", err)
	}
	if res.Escaped != sendEsc|deliverEsc {
		t.Fatalf("Escaped = %#x, want %#x", res.Escaped, sendEsc|deliverEsc)
	}
	for lane := 0; lane < lanes; lane++ {
		lr := &res.Lanes[lane]
		if b := uint64(1) << lane; b&(sendEsc|deliverEsc) != 0 {
			if !lr.Escaped {
				t.Fatalf("lane %d: Escaped not set", lane)
			}
			continue
		}
		if lr.Escaped || lr.Err != nil {
			t.Fatalf("lane %d: unexpected escape/error: %v", lane, lr.Err)
		}
		nodes := make([]*consFlood, n)
		ps := make([]Protocol, n)
		for i := range ps {
			nodes[i] = &consFlood{id: i, n: n, t: tBound, candidate: inputs[i], pending: inputs[i]}
			ps[i] = nodes[i]
		}
		want, err := Run(Config{Protocols: ps, MaxRounds: maxRounds})
		if err != nil {
			t.Fatalf("lane %d: scalar: %v", lane, err)
		}
		if !reflect.DeepEqual(want.Metrics, lr.Metrics) {
			t.Fatalf("lane %d: metrics diverged:\nscalar %+v\nsliced %+v", lane, want.Metrics, lr.Metrics)
		}
	}
}

// stubbornSys halts every node at round 0 except in the stuck lanes,
// which never halt — those lanes must carry the scalar engine's
// ErrNoTermination.
type stubbornSys struct {
	n      int
	stuck  uint64
	halted []uint64
}

func (s *stubbornSys) N() int { return s.n }

func (s *stubbornSys) SlicedSend(round, node int, active uint64, out []SlicedMsg) ([]SlicedMsg, uint64) {
	return out, 0
}

func (s *stubbornSys) SlicedDeliver(round, node int, active uint64, inbox []SlicedMsg) uint64 {
	s.halted[node] |= active &^ s.stuck
	return 0
}

func (s *stubbornSys) HaltedLanes(node int) uint64 { return s.halted[node] }

func TestSlicedNoTermination(t *testing.T) {
	const n, lanes, maxRounds = 4, 8, 6
	stuck := uint64(1)<<2 | uint64(1)<<5
	sys := &stubbornSys{n: n, stuck: stuck, halted: make([]uint64, n)}
	res, err := RunSliced(SlicedConfig{System: sys, Lanes: lanes, MaxRounds: maxRounds})
	if err != nil {
		t.Fatalf("sliced run: %v", err)
	}
	for lane := 0; lane < lanes; lane++ {
		lr := &res.Lanes[lane]
		if stuck&(uint64(1)<<lane) != 0 {
			if !errors.Is(lr.Err, ErrNoTermination) {
				t.Fatalf("stuck lane %d: err = %v, want ErrNoTermination", lane, lr.Err)
			}
			continue
		}
		if lr.Err != nil {
			t.Fatalf("lane %d: err = %v", lane, lr.Err)
		}
		if lr.Metrics.Rounds != 1 {
			t.Fatalf("lane %d: rounds = %d, want 1", lane, lr.Metrics.Rounds)
		}
	}
}

// TestSlicedRejectsNonSliceableFault: a fault without CrashEvents (an
// adaptive adversary) must fail the whole run with ErrNotSliceable so
// the caller falls back to the scalar engine.
func TestSlicedRejectsNonSliceableFault(t *testing.T) {
	const n, tBound, lanes = 8, 2, 4
	sys := newWordFlood(n, tBound, lanes, make([]bool, n))
	faults := make([]LinkFault, lanes)
	faults[2] = newMultiCrash(n, 2, tBound+2, 9)
	_, err := RunSliced(SlicedConfig{System: sys, Lanes: lanes, MaxRounds: tBound + 4, Faults: faults})
	if !errors.Is(err, ErrNotSliceable) {
		t.Fatalf("err = %v, want ErrNotSliceable", err)
	}
}

func TestSlicedConfigValidation(t *testing.T) {
	sys := newWordFlood(4, 1, 2, make([]bool, 4))
	cases := []SlicedConfig{
		{System: nil, Lanes: 2, MaxRounds: 4},
		{System: sys, Lanes: 0, MaxRounds: 4},
		{System: sys, Lanes: 65, MaxRounds: 4},
		{System: sys, Lanes: 2, MaxRounds: 0},
		{System: sys, Lanes: 2, MaxRounds: 4, Faults: make([]LinkFault, 3)},
	}
	for i, cfg := range cases {
		if _, err := RunSliced(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// TestRuntimeSlicedReuse re-runs sliced configurations of different
// shapes on one Runtime and demands each match a fresh-arena run: any
// state the sliced arena fails to reset between runs diverges a lane.
func TestRuntimeSlicedReuse(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	shapes := []struct {
		n, tBound, lanes int
	}{
		{24, 5, 16},
		{48, 8, 64},
		{12, 3, 7},
		{48, 8, 64}, // same shape again: fully recycled arena
	}
	for si, sh := range shapes {
		inputs := make([]bool, sh.n)
		for i := range inputs {
			inputs[i] = i%3 == 0
		}
		faults := make([]LinkFault, sh.lanes)
		for lane := range faults {
			switch lane % 3 {
			case 1:
				faults[lane] = planCrash{events: laneCrashEvents(sh.n, sh.n/6, sh.tBound+2, uint64(si*100+lane))}
			case 2:
				faults[lane] = hashLink{d: 2, seed: uint64(si*100 + lane)}
			}
		}
		maxRounds := sh.tBound + 2 + 8
		cfg := SlicedConfig{System: newWordFlood(sh.n, sh.tBound, sh.lanes, inputs), Lanes: sh.lanes, MaxRounds: maxRounds, Faults: faults}
		got, err := rt.RunSliced(cfg)
		if err != nil {
			t.Fatalf("shape %d: pooled: %v", si, err)
		}
		cfg.System = newWordFlood(sh.n, sh.tBound, sh.lanes, inputs)
		want, err := RunSliced(cfg)
		if err != nil {
			t.Fatalf("shape %d: fresh: %v", si, err)
		}
		for lane := 0; lane < sh.lanes; lane++ {
			w, g := &want.Lanes[lane], &got.Lanes[lane]
			if !reflect.DeepEqual(w.Metrics, g.Metrics) {
				t.Fatalf("shape %d lane %d: metrics diverged:\nfresh  %+v\npooled %+v", si, lane, w.Metrics, g.Metrics)
			}
			if !w.Crashed.Equal(g.Crashed) {
				t.Fatalf("shape %d lane %d: crash sets diverged", si, lane)
			}
			if !reflect.DeepEqual(w.HaltedAt, g.HaltedAt) {
				t.Fatalf("shape %d lane %d: HaltedAt diverged", si, lane)
			}
		}
	}
}

// BenchmarkEngineSliced measures the sliced engine at full width
// against the flooding workload (the benchjson engine/sliced family
// measures the scenario-level path; this is the raw engine).
func BenchmarkEngineSliced(b *testing.B) {
	const n, tBound, lanes = 256, 8, 64
	inputs := make([]bool, n)
	for i := range inputs {
		inputs[i] = i%3 == 0
	}
	rt := NewRuntime()
	defer rt.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := newWordFlood(n, tBound, lanes, inputs)
		if _, err := rt.RunSliced(SlicedConfig{System: sys, Lanes: lanes, MaxRounds: tBound + 10}); err != nil {
			b.Fatal(err)
		}
	}
}
