package sim

// The paper's crash-model algorithms use messages whose role is
// determined by the round in which they are sent, so a single bit of
// content suffices (§4 intro). These payload types implement that
// accounting; set-valued and authenticated payloads live with the
// protocols that use them.

// Bit is a one-bit rumor or decision value.
type Bit bool

// SizeBits implements Payload: one bit on the wire.
func (Bit) SizeBits() int { return 1 }

// Value converts the bit to the 0/1 integers used in the paper's text.
func (b Bit) Value() int {
	if b {
		return 1
	}
	return 0
}

// Inquiry asks the recipient whether it has decided (Part 3 of
// Many-Crashes-Consensus, Part 2 of Spread-Common-Value). Its role is
// fixed by the round, so it also costs one bit.
type Inquiry struct{}

// SizeBits implements Payload.
func (Inquiry) SizeBits() int { return 1 }

// Probe is a local-probing keep-alive carrying the sender's current
// rumor (Part 2 of the agreement algorithms). One bit.
type Probe struct {
	Rumor Bit
}

// SizeBits implements Payload.
func (Probe) SizeBits() int { return 1 }

var (
	_ Payload = Bit(false)
	_ Payload = Inquiry{}
	_ Payload = Probe{}
)

// sizeBits is the accounting hook of the link-filter path, where
// traffic is counted before verdicts decide what gets packed: a
// devirtualized fast path for the package's own one-bit payloads,
// falling back to the interface call for protocol-defined payloads.
// The filter-free hot path does not use it — packEnvelope (wire.go)
// folds the size into the packing pass.
func sizeBits(p Payload) int {
	switch v := p.(type) {
	case Bit:
		return v.SizeBits()
	case Inquiry:
		return v.SizeBits()
	case Probe:
		return v.SizeBits()
	default:
		return p.SizeBits()
	}
}
