package sim

import (
	"runtime"
	"time"

	"lineartime/internal/obs"
)

// The parallel neighborcast engine shards the node range over a
// persistent worker pool. Each round has two barriers, matching the
// sequential engine's two halves: all workers cast (publish into the
// shared bit planes), then all workers absorb (gather from them). The
// cast half writes bitset words, so shard boundaries are rounded up to
// multiples of 64: two workers never touch the same machine word, and
// no atomics are needed. The absorb half only reads the planes, and
// per-node system state is disjoint by the CastSystem contract, so any
// partition is race-free there. The crash seam and the Done check run
// serially on the caller between barriers. Because Absorb(u) observes
// exactly the full round's casts either way, the parallel engine is
// result-identical to the sequential one.

// castJob is the phase a parked cast worker is told to execute.
type castJob uint8

const (
	castJobCast castJob = iota
	castJobAbsorb
	castJobStop
)

// castPool is the persistent worker pool of the parallel neighborcast
// engine. Workers stay parked on their job channels between runs.
type castPool struct {
	cs      *castState
	workers int
	jobs    []chan castJob
	done    chan struct{}
}

// castPoolSlot is the stable object the Runtime's cleanup watches,
// mirroring poolSlot.
type castPoolSlot struct {
	p *castPool
}

func newCastPool(cs *castState, workers int) *castPool {
	p := &castPool{
		cs:      cs,
		workers: workers,
		jobs:    make([]chan castJob, workers),
		done:    make(chan struct{}, workers),
	}
	for i := range p.jobs {
		p.jobs[i] = make(chan castJob, 1)
		go p.worker(i)
	}
	return p
}

func (p *castPool) worker(i int) {
	cs := p.cs
	for j := range p.jobs[i] {
		if j == castJobStop {
			return
		}
		lo, hi := cs.bounds[i], cs.bounds[i+1]
		switch j {
		case castJobCast:
			cs.wmsgs[i] = cs.castRange(cs.round, lo, hi)
		case castJobAbsorb:
			cs.wscratch[i] = cs.absorbRange(cs.round, lo, hi, cs.wscratch[i])
		}
		p.done <- struct{}{}
	}
}

// dispatch runs one phase on every worker and waits for the barrier.
// The job send publishes the round number and shard bounds written by
// the caller; the done receive publishes the workers' plane writes
// back.
func (p *castPool) dispatch(j castJob) {
	for _, ch := range p.jobs {
		ch <- j
	}
	for i := 0; i < p.workers; i++ {
		<-p.done
	}
}

func (p *castPool) shutdown() {
	for _, ch := range p.jobs {
		ch <- castJobStop
	}
}

// shard computes 64-aligned shard bounds for w workers and sizes the
// per-worker scratch and message accumulators, reusing prior capacity.
func (cs *castState) shard(w int) {
	if cap(cs.bounds) < w+1 {
		cs.bounds = make([]int, 0, w+1)
	}
	cs.bounds = append(cs.bounds[:0], 0)
	for i := 1; i < w; i++ {
		b := (i*cs.n/w + 63) &^ 63
		if b > cs.n {
			b = cs.n
		}
		cs.bounds = append(cs.bounds, b)
	}
	cs.bounds = append(cs.bounds, cs.n)
	if len(cs.wscratch) < w {
		ws := make([][]int, w)
		copy(ws, cs.wscratch)
		cs.wscratch = ws
	}
	for i := 0; i < w; i++ {
		if cap(cs.wscratch[i]) < cs.maxDeg {
			cs.wscratch[i] = make([]int, 0, cs.maxDeg)
		}
	}
	if cap(cs.wmsgs) < w {
		cs.wmsgs = make([]int64, w)
	}
	cs.wmsgs = cs.wmsgs[:w]
}

// runParallel executes the neighborcast loop over the pool.
func (cs *castState) runParallel(p *castPool) *CastResult {
	rounds := 0
	for r := 0; r < cs.maxRounds; r++ {
		cs.applyCrashes(r)
		cs.round = r
		p.dispatch(castJobCast)
		for i := range cs.wmsgs {
			cs.msgs += cs.wmsgs[i]
		}
		p.dispatch(castJobAbsorb)
		rounds = r + 1
		if cs.sys.Done(rounds) {
			break
		}
	}
	cs.res = CastResult{
		Rounds:   rounds,
		Messages: cs.msgs,
		Bits:     cs.msgs,
		Alive:    cs.alive.Count(),
	}
	return &cs.res
}

// RunCastParallel executes a neighborcast system on the sharded worker
// pool, reusing the arena's buffers and its persistent workers. It is
// result-identical to RunCast. The System's Cast/Absorb are called
// concurrently for distinct nodes (see CastSystem), and a non-nil
// Filter must be safe for concurrent FilterLink calls — the stateless
// link models (e.g. seeded per-edge omission) are. The returned result
// is owned by the arena and valid until the next cast run on this
// Runtime.
func (rt *Runtime) RunCastParallel(cfg CastConfig, workers int) (*CastResult, error) {
	tr := cfg.Tracer
	var t0, t1 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if rt.cs == nil {
		rt.cs = &castState{}
	}
	cs := rt.cs
	if err := cs.reset(cfg); err != nil {
		cs.detach()
		if tr != nil {
			tr.RunDone(obs.EngineCastParallel, obs.OutcomeError, 0, time.Since(t0))
		}
		return nil, err
	}
	w := resolveWorkers(workers, cs.n)
	cs.shard(w)
	if rt.castSlot == nil {
		rt.castSlot = &castPoolSlot{}
		// As with the main pool: the workers keep the pool and the
		// cast state alive but not the Runtime, so a dropped Runtime
		// still becomes unreachable and the cleanup reaps the pool.
		runtime.AddCleanup(rt, func(s *castPoolSlot) {
			if s.p != nil {
				s.p.shutdown()
			}
		}, rt.castSlot)
	}
	switch pl := rt.castSlot.p; {
	case pl == nil:
		rt.castSlot.p = newCastPool(cs, w)
	case pl.workers != w:
		pl.shutdown()
		rt.castSlot.p = newCastPool(cs, w)
	}
	if tr != nil {
		t1 = time.Now()
		tr.StageDuration(obs.StageSetup, t1.Sub(t0))
	}
	res := cs.runParallel(rt.castSlot.p)
	cs.detach()
	if tr != nil {
		now := time.Now()
		tr.StageDuration(obs.StageRounds, now.Sub(t1))
		tr.RunDone(obs.EngineCastParallel, obs.OutcomeOK, res.Rounds, now.Sub(t0))
	}
	return res, nil
}

// RunCastParallel executes the configured neighborcast system on a
// fresh arena with the given worker count.
func RunCastParallel(cfg CastConfig, workers int) (*CastResult, error) {
	return NewRuntime().RunCastParallel(cfg, workers)
}
