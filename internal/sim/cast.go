package sim

import (
	"fmt"
	"slices"
	"time"

	"lineartime/internal/bitset"
	"lineartime/internal/graph"
	"lineartime/internal/obs"
)

// This file is the neighborcast engine: the streamed execution mode
// for one-bit broadcast rounds over implicit topologies. The general
// engine (sim.go) materializes every round's traffic — outboxes, a
// packed wire plane, CSR inboxes — which is the right shape for
// arbitrary payloads and per-link schedules, but it keeps O(n·d)
// state resident, and past n ≈ 10^5 that memory is the wall, not
// compute. The neighborcast mode exploits the structure shared by the
// paper's flooding/probing phases: every node sends at most one bit
// per round, and it sends the same bit to every neighbor. Under that
// shape, delivery can be PULLED instead of routed: publish each
// node's (bit, casting) pair as two bitset planes — O(n) bits total —
// and let each receiver regenerate its neighbor list from the seeded
// construction (graph.Neighborhood) and gather counts on the fly with
// O(d) scratch. Nothing per-edge is ever stored, which is what breaks
// the memory wall and opens n ≥ 2^20.

// CastSystem is the per-node state machine of a neighborcast run. The
// engine calls Cast for every alive node, then Absorb for every alive
// node, once per round; both orders are ascending by node on the
// sequential engine, and Absorb(u) observes exactly the casts of
// round r regardless of engine, so the parallel engine is
// result-identical.
//
// The parallel engine calls Cast and Absorb for distinct nodes
// concurrently; implementations keep per-node state disjoint (the
// natural shape for a distributed protocol) or serialize internally.
type CastSystem interface {
	// N returns the number of nodes.
	N() int
	// Cast returns node u's one-bit broadcast for the round; send
	// false keeps u silent this round.
	Cast(u, round int) (bit, send bool)
	// Absorb delivers the gathered round to u: ones and zeros count
	// the casting in-neighbors of u whose bit was 1 resp. 0 (after
	// crashes and the link filter).
	Absorb(u, round, ones, zeros int)
	// Done reports whether the system has terminated after the given
	// number of completed rounds; the engine stops early when true.
	Done(rounds int) bool
}

// CastConfig configures a neighborcast run.
type CastConfig struct {
	// System is the protocol.
	System CastSystem
	// Topology generates the (sorted) neighbor lists. An implicit
	// generator (graph.Shift) keeps the run's resident topology state
	// at O(d); a materialized *graph.Graph works identically.
	Topology graph.Neighborhood
	// MaxRounds bounds the run.
	MaxRounds int
	// Crash gives node u's crash round (first round at which u is
	// silent and deaf), or a negative value if u never crashes; nil
	// means no crashes. Neighborcast crashes are clean — a crashed
	// node's round emits nothing, never a partial multicast (the
	// general engine's Keep-prefix crashes route per-link and need
	// the materialized path).
	Crash func(u int) int
	// Filter is an optional per-link fault model. It must never
	// delay (MaxDelay 0): pulled delivery has no in-flight plane to
	// park a delayed bit in. Drops apply per (round, from, to) edge,
	// exactly as on the general engine.
	Filter LinkFilter
	// Tracer optionally receives stage timings and the run outcome;
	// the steady state stays allocation-free with one installed.
	Tracer obs.RunTracer
}

// CastResult is the outcome envelope of a neighborcast run. Like
// Result, the paper's two measures: Messages counts one envelope per
// neighbor per cast (at send time, after crashes, before link drops)
// and every payload is one bit, so Bits equals Messages.
type CastResult struct {
	Rounds   int
	Messages int64
	Bits     int64
	// Alive is the number of non-crashed nodes at the end.
	Alive int
}

// crashEvent schedules one node's clean crash.
type crashEvent struct{ round, node int }

// castState is the pooled arena of the neighborcast engine: three
// bitset planes (alive, casting, bit values) of n bits each plus O(d)
// neighbor scratch — the entire resident footprint of a run. It is
// recycled across runs by Runtime; after the first run of a shape,
// steady-state runs are allocation-free.
type castState struct {
	sys    CastSystem
	nb     graph.Neighborhood
	filter LinkFilter

	n         int
	maxDeg    int
	maxRounds int
	round     int // current round, read by pool workers

	alive  *bitset.Set // not yet crashed
	active *bitset.Set // cast something this round
	bits   *bitset.Set // the cast bit, meaningful where active

	scratch   []int // neighbor regeneration buffer, cap ≥ MaxDegree
	crashes   []crashEvent
	nextCrash int
	msgs      int64

	// Per-worker state of the parallel engine: 64-aligned shard
	// bounds (so two workers never write the same bitset word),
	// per-worker neighbor scratch and message counters.
	bounds   []int
	wscratch [][]int
	wmsgs    []int64

	res CastResult
}

func (cs *castState) reset(cfg CastConfig) error {
	if cfg.System == nil || cfg.Topology == nil {
		return fmt.Errorf("sim: neighborcast needs a System and a Topology")
	}
	n := cfg.System.N()
	if tn := cfg.Topology.N(); tn != n {
		return fmt.Errorf("sim: neighborcast system has %d nodes but topology has %d", n, tn)
	}
	if n <= 0 {
		return fmt.Errorf("sim: neighborcast needs n > 0, got %d", n)
	}
	if cfg.MaxRounds <= 0 {
		return fmt.Errorf("sim: neighborcast needs MaxRounds > 0, got %d", cfg.MaxRounds)
	}
	if cfg.Filter != nil {
		if d := cfg.Filter.MaxDelay(); d != 0 {
			return fmt.Errorf("sim: neighborcast cannot delay (filter MaxDelay %d); delay faults need the materialized engine", d)
		}
	}
	cs.sys, cs.nb, cs.filter = cfg.System, cfg.Topology, cfg.Filter
	cs.maxRounds = cfg.MaxRounds
	if cs.n != n || cs.alive == nil {
		cs.n = n
		cs.alive = bitset.New(n)
		cs.active = bitset.New(n)
		cs.bits = bitset.New(n)
	} else {
		cs.active.Clear()
		cs.bits.Clear()
	}
	cs.alive.Fill()
	cs.maxDeg = cfg.Topology.MaxDegree()
	if cap(cs.scratch) < cs.maxDeg {
		cs.scratch = make([]int, 0, cs.maxDeg)
	}
	cs.crashes = cs.crashes[:0]
	cs.nextCrash = 0
	if cfg.Crash != nil {
		for u := 0; u < n; u++ {
			if r := cfg.Crash(u); r >= 0 {
				cs.crashes = append(cs.crashes, crashEvent{round: r, node: u})
			}
		}
		slices.SortFunc(cs.crashes, func(a, b crashEvent) int {
			if a.round != b.round {
				return a.round - b.round
			}
			return a.node - b.node
		})
	}
	cs.msgs = 0
	cs.res = CastResult{}
	return nil
}

// detach drops the references a finished run borrowed from its
// config, so a pooled arena never pins the caller's system.
func (cs *castState) detach() {
	cs.sys, cs.nb, cs.filter = nil, nil, nil
}

// applyCrashes executes the round's crash seam.
func (cs *castState) applyCrashes(r int) {
	for cs.nextCrash < len(cs.crashes) && cs.crashes[cs.nextCrash].round <= r {
		cs.alive.Remove(cs.crashes[cs.nextCrash].node)
		cs.nextCrash++
	}
}

// castRange runs the publish half of a round for nodes [lo, hi):
// every alive node's (bit, casting) pair lands in the bit planes, and
// each cast is charged deg(u) one-bit messages. Ranges handed to
// concurrent workers are 64-aligned, so all bitset word writes in
// [lo, hi) are exclusive to this call.
func (cs *castState) castRange(r, lo, hi int) int64 {
	var msgs int64
	for u := lo; u < hi; u++ {
		if !cs.alive.Contains(u) {
			cs.active.Remove(u)
			continue
		}
		bit, send := cs.sys.Cast(u, r)
		if !send {
			cs.active.Remove(u)
			continue
		}
		cs.active.Add(u)
		if bit {
			cs.bits.Add(u)
		} else {
			cs.bits.Remove(u)
		}
		msgs += int64(cs.nb.Degree(u))
	}
	return msgs
}

// absorbRange runs the gather half of a round for nodes [lo, hi):
// each alive node regenerates its neighbor list into scratch and
// counts the casting neighbors' bits, applying the link filter per
// pulled edge. It only reads the shared planes, so any partition of
// the node range is race-free.
func (cs *castState) absorbRange(r, lo, hi int, scratch []int) []int {
	for u := lo; u < hi; u++ {
		if !cs.alive.Contains(u) {
			continue
		}
		scratch = cs.nb.AppendNeighbors(u, scratch[:0])
		ones, zeros := 0, 0
		for _, w := range scratch {
			if !cs.active.Contains(w) {
				continue
			}
			bit := cs.bits.Contains(w)
			if cs.filter != nil &&
				cs.filter.FilterLink(r, Envelope{From: w, To: u, Payload: Bit(bit)}) != Deliver {
				continue
			}
			if bit {
				ones++
			} else {
				zeros++
			}
		}
		cs.sys.Absorb(u, r, ones, zeros)
	}
	return scratch
}

// run executes the sequential neighborcast loop.
func (cs *castState) run() *CastResult {
	rounds := 0
	for r := 0; r < cs.maxRounds; r++ {
		cs.applyCrashes(r)
		cs.msgs += cs.castRange(r, 0, cs.n)
		cs.scratch = cs.absorbRange(r, 0, cs.n, cs.scratch)
		rounds = r + 1
		if cs.sys.Done(rounds) {
			break
		}
	}
	cs.res = CastResult{
		Rounds:   rounds,
		Messages: cs.msgs,
		Bits:     cs.msgs, // every payload is one bit
		Alive:    cs.alive.Count(),
	}
	return &cs.res
}

// RunCast executes a neighborcast system on the sequential engine,
// reusing the arena's buffers; steady-state runs of one shape are
// allocation-free. The returned result is owned by the arena and
// valid until the next cast run on this Runtime.
func (rt *Runtime) RunCast(cfg CastConfig) (*CastResult, error) {
	tr := cfg.Tracer
	var t0, t1 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if rt.cs == nil {
		rt.cs = &castState{}
	}
	if err := rt.cs.reset(cfg); err != nil {
		rt.cs.detach()
		if tr != nil {
			tr.RunDone(obs.EngineCast, obs.OutcomeError, 0, time.Since(t0))
		}
		return nil, err
	}
	if tr != nil {
		t1 = time.Now()
		tr.StageDuration(obs.StageSetup, t1.Sub(t0))
	}
	res := rt.cs.run()
	rt.cs.detach()
	if tr != nil {
		now := time.Now()
		tr.StageDuration(obs.StageRounds, now.Sub(t1))
		tr.RunDone(obs.EngineCast, obs.OutcomeOK, res.Rounds, now.Sub(t0))
	}
	return res, nil
}

// RunCast executes the configured neighborcast system on a fresh
// arena.
func RunCast(cfg CastConfig) (*CastResult, error) {
	return NewRuntime().RunCast(cfg)
}
