package sim

import (
	"runtime"
	"testing"
	"time"
)

// badAt emits an invalid envelope (forged sender) at a chosen round,
// forcing the engines down their error paths mid-run.
type badAt struct {
	id, fireRound int
	rounds        int
}

func (b *badAt) Send(round int) []Envelope {
	if round == b.fireRound {
		return []Envelope{{From: b.id + 1, To: 0, Payload: Bit(true)}}
	}
	return nil
}
func (b *badAt) Deliver(int, []Envelope) { b.rounds++ }
func (b *badAt) Halted() bool            { return b.rounds > 10 }

func TestSequentialErrorMidRun(t *testing.T) {
	ps := []Protocol{&badAt{id: 0, fireRound: 3}, &badAt{id: 1, fireRound: 99}}
	if _, err := Run(Config{Protocols: ps, MaxRounds: 20}); err == nil {
		t.Fatal("invalid envelope accepted")
	}
}

func TestConcurrentErrorShutsDownWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 5; trial++ {
		ps := make([]Protocol, 16)
		for i := range ps {
			fire := 99
			if i == 7 {
				fire = 2
			}
			ps[i] = &badAt{id: i, fireRound: fire}
		}
		if _, err := RunConcurrent(Config{Protocols: ps, MaxRounds: 20}); err == nil {
			t.Fatal("invalid envelope accepted")
		}
	}
	// All worker goroutines must have exited; allow the runtime a
	// moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestSinglePortDropsBuffersOfDeadTargets(t *testing.T) {
	// A message deposited for a node that crashed before polling must
	// not resurrect: the dead node never receives, and the engine
	// terminates cleanly with the buffer discarded.
	src := &doubleSender{}
	dst := &pollProbe{pollRound: 6}
	ps := []Protocol{src, dst}
	adv := crashAt{node: 1, round: 3, keep: -1}
	res, err := Run(Config{Protocols: ps, MaxRounds: 20, SinglePort: true, Fault: adv})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed.Contains(1) {
		t.Fatal("target not crashed")
	}
	if dst.gotAt != 0 {
		t.Fatalf("crashed node received at round %d", dst.gotAt)
	}
}
