package sim

import (
	"testing"
)

// relayer is a single-port test protocol: node 0 sends one bit to node
// 1 in round 0; node 1 polls port 0 in round polled; whoever received
// forwards to node 2, etc. It exercises port buffering: the message
// waits in the port until polled.
type relayer struct {
	id, n     int
	pollRound int // round at which this node polls its predecessor
	got       bool
	sent      bool
	halted    bool
	lifetime  int
}

func (p *relayer) Send(round int) []Envelope {
	if p.id == 0 && round == 0 && !p.sent {
		p.sent = true
		return []Envelope{{From: 0, To: 1, Payload: Bit(true)}}
	}
	if p.got && !p.sent && p.id+1 < p.n {
		p.sent = true
		return []Envelope{{From: p.id, To: p.id + 1, Payload: Bit(true)}}
	}
	return nil
}

func (p *relayer) Poll(round int) (NodeID, bool) {
	if p.id > 0 && !p.got && round >= p.pollRound {
		return p.id - 1, true
	}
	return 0, false
}

func (p *relayer) Deliver(round int, inbox []Envelope) {
	if len(inbox) > 0 {
		p.got = true
	}
	if round >= p.lifetime {
		p.halted = true
	}
}

func (p *relayer) Halted() bool { return p.halted }

func TestSinglePortBufferedDelivery(t *testing.T) {
	// Node 1 polls only at round 5; the message sent in round 0 must
	// wait in the port buffer ("no signal from ports").
	const life = 10
	ps := []Protocol{
		&relayer{id: 0, n: 2, lifetime: life},
		&relayer{id: 1, n: 2, pollRound: 5, lifetime: life},
	}
	if _, err := Run(Config{Protocols: ps, MaxRounds: 20, SinglePort: true}); err != nil {
		t.Fatal(err)
	}
	if !ps[1].(*relayer).got {
		t.Fatal("buffered message never delivered on poll")
	}
	// Receiving earlier than the poll round would mean delivery
	// without polling; re-run checking the receipt round.
	probe := &pollProbe{pollRound: 5}
	ps = []Protocol{&relayer{id: 0, n: 2, lifetime: life}, probe}
	if _, err := Run(Config{Protocols: ps, MaxRounds: 20, SinglePort: true}); err != nil {
		t.Fatal(err)
	}
	if probe.gotAt != 5 {
		t.Fatalf("message received at round %d, want 5 (the poll round)", probe.gotAt)
	}
}

type pollProbe struct {
	pollRound int
	gotAt     int
	rounds    int
}

func (p *pollProbe) Send(int) []Envelope { return nil }
func (p *pollProbe) Poll(round int) (NodeID, bool) {
	return 0, round >= p.pollRound
}
func (p *pollProbe) Deliver(round int, inbox []Envelope) {
	if len(inbox) > 0 && p.gotAt == 0 {
		p.gotAt = round
	}
	p.rounds++
}
func (p *pollProbe) Halted() bool { return p.rounds > 8 }

func TestSinglePortChainRelay(t *testing.T) {
	const n = 5
	ps := make([]Protocol, n)
	for i := 0; i < n; i++ {
		ps[i] = &relayer{id: i, n: n, lifetime: 2 * n}
	}
	res, err := Run(Config{Protocols: ps, MaxRounds: 50, SinglePort: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ps[n-1].(*relayer).got {
		t.Fatal("relay chain did not complete")
	}
	if res.Metrics.Messages != n-1 {
		t.Fatalf("messages = %d, want %d", res.Metrics.Messages, n-1)
	}
}

func TestSinglePortRejectsMulticast(t *testing.T) {
	ps := []Protocol{&badMulticaster{}, &pollProbe{}, &pollProbe{}}
	if _, err := Run(Config{Protocols: ps, MaxRounds: 5, SinglePort: true}); err == nil {
		t.Fatal("multicast in single-port mode accepted")
	}
}

type badMulticaster struct{}

func (*badMulticaster) Send(int) []Envelope {
	return []Envelope{
		{From: 0, To: 1, Payload: Bit(true)},
		{From: 0, To: 2, Payload: Bit(true)},
	}
}
func (*badMulticaster) Poll(int) (NodeID, bool) { return 0, false }
func (*badMulticaster) Deliver(int, []Envelope) {}
func (*badMulticaster) Halted() bool            { return false }

func TestSinglePortOneMessagePerPoll(t *testing.T) {
	// Two messages buffered on the same port: two polls needed.
	src := &doubleSender{}
	dst := &greedyPoller{}
	ps := []Protocol{src, dst}
	if _, err := Run(Config{Protocols: ps, MaxRounds: 20, SinglePort: true}); err != nil {
		t.Fatal(err)
	}
	if dst.batches[0] != 1 || dst.batches[1] != 1 {
		t.Fatalf("poll batches = %v, want one message per poll", dst.batches[:2])
	}
}

type doubleSender struct{ sent int }

func (d *doubleSender) Send(round int) []Envelope {
	if d.sent < 2 {
		d.sent++
		return []Envelope{{From: 0, To: 1, Payload: Bit(true)}}
	}
	return nil
}
func (d *doubleSender) Poll(int) (NodeID, bool) { return 0, false }
func (d *doubleSender) Deliver(int, []Envelope) {}
func (d *doubleSender) Halted() bool            { return d.sent >= 2 }

type greedyPoller struct {
	batches []int
	rounds  int
}

func (g *greedyPoller) Send(int) []Envelope { return nil }
func (g *greedyPoller) Poll(round int) (NodeID, bool) {
	return 0, round >= 2 // poll after both messages are buffered
}
func (g *greedyPoller) Deliver(_ int, inbox []Envelope) {
	if len(inbox) > 0 {
		g.batches = append(g.batches, len(inbox))
	}
	g.rounds++
}
func (g *greedyPoller) Halted() bool { return g.rounds >= 6 }
