package sim

import (
	"fmt"
	"slices"
)

// The link/fault-injection layer. The engine's fault surface used to be
// a single crash-shaped hook (an Adversary whose FilterSend could only
// truncate a dying node's final multicast); it is now a two-level
// LinkFault abstraction that the §2 adversary taxonomy maps onto:
//
//   - the node level (LinkFault.FilterSend) sees a sender's whole
//     outbox once per round and may crash the node, delivering only a
//     chosen subset of its final messages — the paper's strongest
//     crash semantics, where a crash interrupts a multicast midway;
//   - the link level (LinkFilter.FilterLink, optional) classifies each
//     surviving envelope individually: deliver it this round, drop it
//     silently (omission and partition faults), or delay it a bounded
//     number of rounds (asynchrony within a synchronous round budget).
//
// Crash-only faults implement just LinkFault, and for them the engines
// run the exact pre-refactor code path: no per-envelope interface
// calls, no reordering, byte-identical transcripts. Link-level faults
// additionally implement LinkFilter; delayed envelopes park in a
// reusable ring (delayRing, one slot per future round, recycled like
// the single-port rings of ports.go), so the hot path stays
// allocation-free in steady state.
//
// Accounting: Metrics counts traffic at send time, after the node
// level but before the link level — a message a correct node sends
// costs its bandwidth whether or not the network then loses or delays
// it. Observer.OnMessage fires at the same point.

// LinkFault is the pluggable fault-injection layer of a run: the
// node-level hook every fault model implements. FilterSend is invoked
// once per alive node per round with the node's outbox; returning
// crash=true crashes the node at this round, with only the returned
// subset of its outbox delivered (a crash may interrupt a multicast
// midway). For surviving nodes implementations must return the outbox
// unchanged. Faults that also act on individual envelopes in flight
// implement LinkFilter.
type LinkFault interface {
	FilterSend(round int, from NodeID, outbox []Envelope) (deliver []Envelope, crash bool)
}

// Verdict is a LinkFilter's per-envelope decision: Deliver passes the
// envelope through this round, Drop loses it silently, and DelayBy(k)
// holds it in flight for k extra rounds.
type Verdict int

// The immediate verdicts. Positive values are delays (see DelayBy).
const (
	Deliver Verdict = 0
	Drop    Verdict = -1
)

// DelayBy returns the verdict that delivers an envelope k rounds late.
// k must be positive and at most the filter's MaxDelay; k <= 0 is
// Deliver.
func DelayBy(k int) Verdict {
	if k <= 0 {
		return Deliver
	}
	return Verdict(k)
}

// LinkFilter is implemented by link faults that act on individual
// envelopes in flight — omission, partition and delay models. The
// engine consults FilterLink for every envelope that survives the
// node-level FilterSend. MaxDelay bounds the delay any verdict may
// request (the paper's parameter d); it must be constant for the run,
// and 0 declares a filter that never delays. A verdict delaying beyond
// MaxDelay fails the run with an error.
type LinkFilter interface {
	LinkFault
	FilterLink(round int, env Envelope) Verdict
	MaxDelay() int
}

// NoFailures is the trivial fault layer that touches nothing.
type NoFailures struct{}

// FilterSend implements LinkFault.
func (NoFailures) FilterSend(_ int, _ NodeID, outbox []Envelope) ([]Envelope, bool) {
	return outbox, false
}

var _ LinkFault = NoFailures{}

// delayRing buffers in-flight delayed messages in packed wire form:
// one reusable slot per future round, indexed by arrival round modulo
// the window size (MaxDelay+1). Slots keep their capacity across
// rounds, so after the run's peak in-flight volume the ring never
// touches the allocator — the same recycling discipline as the
// single-port rings in ports.go.
type delayRing struct {
	slots [][]wireMsg
}

func newDelayRing(maxDelay int) *delayRing {
	return &delayRing{slots: make([][]wireMsg, maxDelay+1)}
}

// reset empties every slot for a fresh run on the same arena, keeping
// slot capacity (a previous run may have completed with messages still
// in flight).
func (d *delayRing) reset() {
	for i := range d.slots {
		d.slots[i] = d.slots[i][:0]
	}
}

// push parks a packed message for delivery at the given arrival round.
// The arrival must lie within (round, round+MaxDelay] of the current
// round; the engine validates the verdict before pushing.
func (d *delayRing) push(arrival int, wm wireMsg) {
	i := arrival % len(d.slots)
	d.slots[i] = append(d.slots[i], wm)
}

// take returns the messages arriving at the given round and recycles
// the slot. The returned slice is valid until the slot's round comes
// up again, which is at least MaxDelay rounds away.
func (d *delayRing) take(round int) []wireMsg {
	i := round % len(d.slots)
	arrivals := d.slots[i]
	d.slots[i] = arrivals[:0]
	return arrivals
}

// injectArrivals stages the delayed messages arriving at round r and
// returns how many there were. Both engines call it first thing after
// beginRound, so arrivals precede the round's fresh sends in the
// staged buffer; a positive count obliges the caller to re-sort the
// buffer by sender before placing inboxes. Messages still in flight
// when the run completes are lost, like messages to crashed nodes.
// Escape payloads leaving the ring stop pinning the side table (they
// are delivered, and their entries consumed, this round).
func (s *state) injectArrivals(r int, count bool) int {
	if s.ring == nil {
		return 0
	}
	arrivals := s.ring.take(r)
	for i := range arrivals {
		if wireIsEscape(arrivals[i].word) {
			s.escLive--
		}
	}
	s.scratch.stage(arrivals, count)
	return len(arrivals)
}

// stageFiltered routes one sender's fault-surviving envelopes through
// the link filter: verdicts stage, discard, or park each envelope,
// packing the kept ones into wire form. Traffic was already counted —
// a dropped or delayed message still cost its sender the bandwidth.
func (s *state) stageFiltered(r int, deliver []Envelope, count bool) error {
	for i := range deliver {
		v := s.filter.FilterLink(r, deliver[i])
		switch {
		case v == Deliver:
			wm, _ := packEnvelope(&deliver[i], &s.esc, 0)
			s.scratch.stage1(wm, count)
		case v == Drop:
			// Lost in the network; nothing is packed.
		case v < Drop:
			return fmt.Errorf("sim: link fault returned invalid verdict %d", int(v))
		default:
			// v > 0 is a delay of v rounds, so the ring (sized to
			// MaxDelay, nil when that is 0) exists whenever the bound
			// check passes.
			k := int(v)
			if k > s.maxDelay {
				return fmt.Errorf("sim: link fault delayed an envelope by %d rounds, beyond its MaxDelay of %d", k, s.maxDelay)
			}
			wm, _ := packEnvelope(&deliver[i], &s.esc, 0)
			if wireIsEscape(wm.word) {
				s.escLive++
			}
			s.ring.push(r+k, wm)
		}
	}
	return nil
}

// sortStagedBySender restores the staged buffer's sender order after
// delayed arrivals were injected ahead of the round's fresh sends. The
// sort is stable, so messages from the same sender stay in
// chronological (send-round) order — the tie-break the Deliver
// contract promises. In-place symmerge; no allocation.
func sortStagedBySender(flat []wireMsg) {
	slices.SortStableFunc(flat, func(a, b wireMsg) int { return int(a.From) - int(b.From) })
}
