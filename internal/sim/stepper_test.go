package sim

import (
	"errors"
	"testing"
)

func TestStepperMatchesRun(t *testing.T) {
	ps1, gs1 := newGatherers(10)
	ps2, gs2 := newGatherers(10)

	res1, err := Run(Config{Protocols: ps1, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStepper(Config{Protocols: ps2, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		steps++
	}
	res2 := st.Result()
	if res1.Metrics.Rounds != res2.Metrics.Rounds {
		t.Fatalf("rounds differ: %d vs %d", res1.Metrics.Rounds, res2.Metrics.Rounds)
	}
	if res1.Metrics.Messages != res2.Metrics.Messages {
		t.Fatalf("messages differ: %d vs %d", res1.Metrics.Messages, res2.Metrics.Messages)
	}
	if steps != res1.Metrics.Rounds {
		t.Fatalf("stepper executed %d rounds, Run reported %d", steps, res1.Metrics.Rounds)
	}
	if gs1[0].ones != gs2[0].ones {
		t.Fatal("protocol end states differ between Run and Stepper")
	}
}

func TestStepperExposesIntermediateState(t *testing.T) {
	ps, gs := newGatherers(6)
	st, err := NewStepper(Config{Protocols: ps, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].ones != 0 {
		t.Fatal("state mutated before stepping")
	}
	if _, err := st.Step(); err != nil {
		t.Fatal(err)
	}
	// After round 0 the gatherer has received all bits.
	if gs[0].ones != 3 {
		t.Fatalf("after one step node 0 counted %d ones, want 3", gs[0].ones)
	}
	if st.Round() != 1 {
		t.Fatalf("Round() = %d, want 1", st.Round())
	}
}

func TestStepperDoneIsSticky(t *testing.T) {
	ps, _ := newGatherers(4)
	st, err := NewStepper(Config{Protocols: ps, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		done, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			// Subsequent calls stay done without error.
			again, err := st.Step()
			if err != nil || !again {
				t.Fatalf("done not sticky: done=%v err=%v", again, err)
			}
			return
		}
	}
	t.Fatal("stepper never completed")
}

func TestStepperMaxRounds(t *testing.T) {
	st, err := NewStepper(Config{Protocols: []Protocol{&neverHalt{}}, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 5; i++ {
		if _, err := st.Step(); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrNoTermination) {
		t.Fatalf("err = %v, want ErrNoTermination", last)
	}
}

func TestStepperConfigValidation(t *testing.T) {
	if _, err := NewStepper(Config{MaxRounds: 1}); err == nil {
		t.Fatal("empty protocols accepted")
	}
}
