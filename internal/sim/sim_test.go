package sim

import (
	"errors"
	"testing"

	"lineartime/internal/bitset"
)

// gatherer is a test protocol: every node sends its bit to node 0 in
// round 0; node 0 counts ones; everyone halts at the end of round 1.
type gatherer struct {
	id, n  int
	bit    Bit
	ones   int
	halted bool
}

func (g *gatherer) Send(round int) []Envelope {
	if round == 0 && g.id != 0 {
		return []Envelope{{From: g.id, To: 0, Payload: g.bit}}
	}
	return nil
}

func (g *gatherer) Deliver(round int, inbox []Envelope) {
	for _, env := range inbox {
		if b, ok := env.Payload.(Bit); ok && bool(b) {
			g.ones++
		}
	}
	if round >= 1 {
		g.halted = true
	}
}

func (g *gatherer) Halted() bool { return g.halted }

func newGatherers(n int) ([]Protocol, []*gatherer) {
	ps := make([]Protocol, n)
	gs := make([]*gatherer, n)
	for i := 0; i < n; i++ {
		g := &gatherer{id: i, n: n, bit: Bit(i%2 == 1)}
		ps[i], gs[i] = g, g
	}
	return ps, gs
}

func TestRunBasic(t *testing.T) {
	ps, gs := newGatherers(10)
	res, err := Run(Config{Protocols: ps, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].ones != 5 {
		t.Fatalf("node 0 counted %d ones, want 5", gs[0].ones)
	}
	if res.Metrics.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Metrics.Rounds)
	}
	if res.Metrics.Messages != 9 {
		t.Fatalf("messages = %d, want 9", res.Metrics.Messages)
	}
	if res.Metrics.Bits != 9 {
		t.Fatalf("bits = %d, want 9", res.Metrics.Bits)
	}
	for i, h := range res.HaltedAt {
		if h != 1 {
			t.Fatalf("node %d halted at %d, want 1", i, h)
		}
	}
}

func TestRunNoTermination(t *testing.T) {
	ps, _ := newGatherers(4)
	// Break halting by wrapping one protocol that never halts.
	ps[3] = &neverHalt{}
	_, err := Run(Config{Protocols: ps, MaxRounds: 5})
	if !errors.Is(err, ErrNoTermination) {
		t.Fatalf("err = %v, want ErrNoTermination", err)
	}
}

type neverHalt struct{}

func (*neverHalt) Send(int) []Envelope     { return nil }
func (*neverHalt) Deliver(int, []Envelope) {}
func (*neverHalt) Halted() bool            { return false }

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		env  Envelope
	}{
		{"forged sender", Envelope{From: 5, To: 1, Payload: Bit(true)}},
		{"invalid target", Envelope{From: 0, To: 99, Payload: Bit(true)}},
		{"self send", Envelope{From: 0, To: 0, Payload: Bit(true)}},
		{"nil payload", Envelope{From: 0, To: 1, Payload: nil}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ps := []Protocol{&fixedSender{env: c.env}, &neverHalt{}}
			if _, err := Run(Config{Protocols: ps, MaxRounds: 3}); err == nil {
				t.Fatal("invalid envelope accepted")
			}
		})
	}
}

type fixedSender struct{ env Envelope }

func (f *fixedSender) Send(round int) []Envelope {
	if round == 0 {
		return []Envelope{f.env}
	}
	return nil
}
func (f *fixedSender) Deliver(int, []Envelope) {}
func (f *fixedSender) Halted() bool            { return false }

// crashAt crashes one node at a given round keeping k messages.
type crashAt struct {
	node, round, keep int
}

func (a crashAt) FilterSend(round int, from NodeID, out []Envelope) ([]Envelope, bool) {
	if round == a.round && from == a.node {
		if a.keep < 0 || a.keep > len(out) {
			return out, true
		}
		return out[:a.keep], true
	}
	return out, false
}

func TestCrashSuppressesTraffic(t *testing.T) {
	ps, gs := newGatherers(10)
	// Node 1 (bit=1) crashes at round 0 delivering nothing.
	res, err := Run(Config{Protocols: ps, Fault: crashAt{node: 1, round: 0, keep: 0}, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].ones != 4 {
		t.Fatalf("node 0 counted %d ones, want 4 (node 1 crashed)", gs[0].ones)
	}
	if !res.Crashed.Contains(1) {
		t.Fatal("crash not recorded")
	}
	if res.HaltedAt[1] != -1 {
		t.Fatalf("crashed node has HaltedAt = %d, want -1", res.HaltedAt[1])
	}
	if res.Metrics.Messages != 8 {
		t.Fatalf("messages = %d, want 8", res.Metrics.Messages)
	}
}

func TestPartialCrashDelivery(t *testing.T) {
	// A node multicasting to three targets crashes keeping 1 message.
	multi := &multicaster{n: 4}
	ps := []Protocol{multi, &sink{}, &sink{}, &sink{}}
	res, err := Run(Config{Protocols: ps, Fault: crashAt{node: 0, round: 0, keep: 1}, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != 1 {
		t.Fatalf("messages = %d, want 1 (partial delivery)", res.Metrics.Messages)
	}
	got := 0
	for _, p := range ps[1:] {
		got += p.(*sink).received
	}
	if got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
}

type multicaster struct {
	n      int
	halted bool
}

func (m *multicaster) Send(round int) []Envelope {
	if round > 0 {
		return nil
	}
	out := make([]Envelope, 0, m.n-1)
	for to := 1; to < m.n; to++ {
		out = append(out, Envelope{From: 0, To: to, Payload: Bit(true)})
	}
	return out
}
func (m *multicaster) Deliver(round int, _ []Envelope) { m.halted = true }
func (m *multicaster) Halted() bool                    { return m.halted }

type sink struct {
	received int
	rounds   int
}

func (s *sink) Send(int) []Envelope { return nil }
func (s *sink) Deliver(_ int, inbox []Envelope) {
	s.received += len(inbox)
	s.rounds++
}
func (s *sink) Halted() bool { return s.rounds >= 2 }

func TestByzantineCounting(t *testing.T) {
	ps, _ := newGatherers(6)
	byz := bitset.New(6)
	byz.Add(2)
	byz.Add(3)
	res, err := Run(Config{Protocols: ps, Byzantine: byz, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != 3 {
		t.Fatalf("non-faulty messages = %d, want 3", res.Metrics.Messages)
	}
	if res.Metrics.ByzMessages != 2 {
		t.Fatalf("byzantine messages = %d, want 2", res.Metrics.ByzMessages)
	}
}

func TestInboxSortedBySender(t *testing.T) {
	rec := &orderRecorder{}
	ps := []Protocol{rec}
	for i := 1; i < 6; i++ {
		ps = append(ps, &fixedHaltingSender{id: i})
	}
	if _, err := Run(Config{Protocols: ps, MaxRounds: 5}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rec.order); i++ {
		if rec.order[i] < rec.order[i-1] {
			t.Fatalf("inbox not sorted: %v", rec.order)
		}
	}
	if len(rec.order) != 5 {
		t.Fatalf("received %d messages, want 5", len(rec.order))
	}
}

type orderRecorder struct {
	order  []NodeID
	rounds int
}

func (o *orderRecorder) Send(int) []Envelope { return nil }
func (o *orderRecorder) Deliver(_ int, inbox []Envelope) {
	for _, env := range inbox {
		o.order = append(o.order, env.From)
	}
	o.rounds++
}
func (o *orderRecorder) Halted() bool { return o.rounds >= 1 }

type fixedHaltingSender struct {
	id     int
	halted bool
}

func (f *fixedHaltingSender) Send(round int) []Envelope {
	if round == 0 {
		return []Envelope{{From: f.id, To: 0, Payload: Bit(true)}}
	}
	return nil
}
func (f *fixedHaltingSender) Deliver(int, []Envelope) { f.halted = true }
func (f *fixedHaltingSender) Halted() bool            { return f.halted }

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{MaxRounds: 1}); err == nil {
		t.Fatal("empty protocol list accepted")
	}
	ps, _ := newGatherers(2)
	if _, err := Run(Config{Protocols: ps}); err == nil {
		t.Fatal("zero MaxRounds accepted")
	}
	if _, err := Run(Config{Protocols: ps, MaxRounds: 5, SinglePort: true}); err == nil {
		t.Fatal("single-port without Poller accepted")
	}
}
