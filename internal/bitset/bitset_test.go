package bitset

import (
	"testing"
	"testing/quick"

	"lineartime/internal/rng"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set does not contain %d after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("set contains 64 after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Set){
		func(s *Set) { s.Add(-1) },
		func(s *Set) { s.Add(10) },
		func(s *Set) { s.Contains(10) },
		func(s *Set) { s.Remove(10) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on out-of-range index", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a, b := New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}

	u := a.Clone()
	u.UnionWith(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Contains(i) != want {
			t.Fatalf("union membership of %d = %v, want %v", i, u.Contains(i), want)
		}
	}

	x := a.Clone()
	x.IntersectWith(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if x.Contains(i) != want {
			t.Fatalf("intersection membership of %d = %v, want %v", i, x.Contains(i), want)
		}
	}

	d := a.Clone()
	d.DifferenceWith(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Contains(i) != want {
			t.Fatalf("difference membership of %d = %v, want %v", i, d.Contains(i), want)
		}
	}
}

func TestFillComplementClear(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 200} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: Fill count = %d", n, got)
		}
		s.Complement()
		if got := s.Count(); got != 0 {
			t.Fatalf("n=%d: complement of full has count %d", n, got)
		}
		s.Add(0)
		s.Clear()
		if got := s.Count(); got != 0 {
			t.Fatalf("n=%d: Clear left count %d", n, got)
		}
	}
}

func TestElementsSorted(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 65, 128, 299}
	for _, i := range []int{299, 65, 3, 128, 64} {
		s.Add(i)
	}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEqualAndSubset(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(1)
	a.Add(69)
	b.Add(1)
	if a.Equal(b) {
		t.Fatal("unequal sets reported Equal")
	}
	if !b.SubsetOf(a) {
		t.Fatal("subset not detected")
	}
	if a.SubsetOf(b) {
		t.Fatal("superset reported as subset")
	}
	b.Add(69)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	if a.Equal(New(71)) {
		t.Fatal("sets of different capacity reported Equal")
	}
}

func TestSizeBits(t *testing.T) {
	if got := New(100).SizeBits(); got != 100 {
		t.Fatalf("SizeBits = %d, want 100", got)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(7)
	if got := s.String(); got != "{1, 7}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: union is commutative, associative and monotone in Count.
func TestUnionPropertiesQuick(t *testing.T) {
	mk := func(seed uint64, n int) *Set {
		s := New(n)
		r := rng.New(seed)
		for i := 0; i < n/2; i++ {
			s.Add(r.Intn(n))
		}
		return s
	}
	prop := func(seedA, seedB uint64) bool {
		const n = 97
		a, b := mk(seedA, n), mk(seedB, n)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			return false
		}
		if ab.Count() < a.Count() || ab.Count() < b.Count() {
			return false
		}
		return a.SubsetOf(ab) && b.SubsetOf(ab)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly Elements() in order.
func TestForEachMatchesElements(t *testing.T) {
	prop := func(seed uint64) bool {
		const n = 150
		s := New(n)
		r := rng.New(seed)
		for i := 0; i < 40; i++ {
			s.Add(r.Intn(n))
		}
		var visited []int
		s.ForEach(func(i int) { visited = append(visited, i) })
		want := s.Elements()
		if len(visited) != len(want) {
			return false
		}
		for i := range want {
			if visited[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
