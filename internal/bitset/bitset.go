// Package bitset implements a fixed-capacity bit set used for extant
// sets, completion sets and the vector consensus of the checkpointing
// algorithm (paper §5–§6). A Set of capacity n costs ceil(n/64) words
// and supports the set algebra the protocols need (union, count,
// membership) plus a compact wire-size accounting (n bits).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set. The zero value is unusable; create
// sets with New. Methods panic on out-of-range indices: indices are
// node names produced by the protocols themselves, so a violation is a
// programming error, not an input error.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity n (valid indices 0..n-1).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionWith adds every element of other to s. It panics if capacities
// differ; all sets inside one protocol run share the capacity n.
func (s *Set) UnionWith(other *Set) {
	if other.n != s.n {
		panic("bitset: capacity mismatch in UnionWith")
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in other.
func (s *Set) IntersectWith(other *Set) {
	if other.n != s.n {
		panic("bitset: capacity mismatch in IntersectWith")
	}
	for i, w := range other.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every element of other from s.
func (s *Set) DifferenceWith(other *Set) {
	if other.n != s.n {
		panic("bitset: capacity mismatch in DifferenceWith")
	}
	for i, w := range other.words {
		s.words[i] &^= w
	}
}

// Equal reports whether both sets contain exactly the same elements.
func (s *Set) Equal(other *Set) bool {
	if other == nil || other.n != s.n {
		return false
	}
	for i, w := range s.words {
		if other.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is also in other.
func (s *Set) SubsetOf(other *Set) bool {
	if other.n != s.n {
		return false
	}
	for i, w := range s.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every index in [0, n).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Complement flips membership of every index in [0, n).
func (s *Set) Complement() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// trim zeroes the bits above capacity in the last word.
func (s *Set) trim() {
	if s.n&63 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) & 63)) - 1
	}
}

// Elements returns the members in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every member in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// SizeBits returns the wire size of the set in bits: capacity bits.
// This is the accounting used by the simulator for set-valued payloads.
func (s *Set) SizeBits() int { return s.n }

// String renders the set as {a, b, c} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
	})
	b.WriteByte('}')
	return b.String()
}
