package bitset

import "math/bits"

// Word-level helpers for the bit-sliced engine (internal/sim/sliced.go):
// a uint64 is a vector of 64 lanes, one independent simulation replica
// per bit. These are the primitive ops the sliced hot path is written
// in, kept here so the engine, protocols and tests share one vocabulary
// (and one micro-benchmark).

// OnesCount returns the number of set lanes in w.
func OnesCount(w uint64) int { return bits.OnesCount64(w) }

// ForEachSet calls fn for every set lane of w, in ascending lane order.
func ForEachSet(w uint64, fn func(lane int)) {
	for w != 0 {
		fn(bits.TrailingZeros64(w))
		w &= w - 1
	}
}

// LaneMask returns a word with the low k lanes set. k must be in
// [0, 64]; LaneMask(64) is all ones.
func LaneMask(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << k) - 1
}

// Lane returns the single-lane mask 1 << i. i must be in [0, 64); out
// of range lanes return 0 so callers can mask unconditionally.
func Lane(i int) uint64 {
	if i < 0 || i >= 64 {
		return 0
	}
	return uint64(1) << i
}

// laneCounterPlanes bounds a LaneCounter at 2^32-1 adds between
// flushes — far beyond any per-round message count a simulation can
// stage in memory.
const laneCounterPlanes = 32

// LaneCounter is a vertical (bit-plane) per-lane event counter: Add
// increments the count of every set lane of the mask at a cost of
// O(carry chain) word ops, not 64 scalar increments. Plane p holds bit
// p of each lane's count, so the counter is a 64-wide carry-save adder;
// Flush materializes the per-lane totals into an accumulator and resets
// the planes. The zero value is ready to use.
type LaneCounter struct {
	planes [laneCounterPlanes]uint64
}

// Add increments the count of every lane set in mask by one.
func (c *LaneCounter) Add(mask uint64) {
	for p := 0; mask != 0 && p < laneCounterPlanes; p++ {
		carry := c.planes[p] & mask
		c.planes[p] ^= mask
		mask = carry
	}
}

// Flush adds the per-lane counts accumulated since the last Flush (or
// Reset) into out and resets the counter.
func (c *LaneCounter) Flush(out *[64]int64) {
	for p := 0; p < laneCounterPlanes; p++ {
		w := c.planes[p]
		if w == 0 {
			continue
		}
		c.planes[p] = 0
		inc := int64(1) << p
		for w != 0 {
			out[bits.TrailingZeros64(w)] += inc
			w &= w - 1
		}
	}
}

// Reset clears the counter without flushing.
func (c *LaneCounter) Reset() {
	for p := range c.planes {
		c.planes[p] = 0
	}
}

// Below returns the mask of lanes whose accumulated count is strictly
// less than k, without flushing or disturbing the planes. It is the
// word-parallel comparator of the vertical counter: a bit-sliced
// subtract count-k computed plane by plane, whose final borrow is
// exactly the lanes with count < k. Lanes that saw no Add at all have
// count 0 and are below any positive k. k ≥ 2^32 saturates (every lane
// is below); k ≤ 0 returns 0.
func (c *LaneCounter) Below(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 1<<laneCounterPlanes {
		return ^uint64(0)
	}
	var borrow uint64
	for p := 0; p < laneCounterPlanes; p++ {
		var kp uint64 // bit p of k, broadcast to all lanes
		if k&(1<<p) != 0 {
			kp = ^uint64(0)
		}
		a := c.planes[p]
		borrow = (^a & (kp | borrow)) | (kp & borrow)
	}
	return borrow
}
