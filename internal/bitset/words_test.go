package bitset

import (
	"math/rand"
	"testing"
)

func TestOnesCount(t *testing.T) {
	cases := []struct {
		w    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{^uint64(0), 64},
		{0xF0F0, 8},
		{1 << 63, 1},
	}
	for _, c := range cases {
		if got := OnesCount(c.w); got != c.want {
			t.Errorf("OnesCount(%#x) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestForEachSet(t *testing.T) {
	w := uint64(1)<<0 | 1<<5 | 1<<31 | 1<<63
	var lanes []int
	ForEachSet(w, func(lane int) { lanes = append(lanes, lane) })
	want := []int{0, 5, 31, 63}
	if len(lanes) != len(want) {
		t.Fatalf("lanes = %v, want %v", lanes, want)
	}
	for i := range want {
		if lanes[i] != want[i] {
			t.Fatalf("lanes = %v, want %v", lanes, want)
		}
	}
	ForEachSet(0, func(int) { t.Fatal("ForEachSet(0) called fn") })
}

func TestLaneMask(t *testing.T) {
	cases := []struct {
		k    int
		want uint64
	}{
		{-3, 0},
		{0, 0},
		{1, 1},
		{4, 0xF},
		{63, ^uint64(0) >> 1},
		{64, ^uint64(0)},
		{99, ^uint64(0)},
	}
	for _, c := range cases {
		if got := LaneMask(c.k); got != c.want {
			t.Errorf("LaneMask(%d) = %#x, want %#x", c.k, got, c.want)
		}
	}
}

func TestLane(t *testing.T) {
	for i := 0; i < 64; i++ {
		if got := Lane(i); got != uint64(1)<<i {
			t.Fatalf("Lane(%d) = %#x", i, got)
		}
	}
	if Lane(-1) != 0 || Lane(64) != 0 {
		t.Fatal("out-of-range Lane must be 0")
	}
}

// TestLaneCounterMatchesScalar drives the vertical counter with random
// masks and checks every lane's total against a scalar recount.
func TestLaneCounterMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ctr LaneCounter
	var got, want [64]int64
	for round := 0; round < 5; round++ {
		adds := 1000 + rng.Intn(3000)
		for i := 0; i < adds; i++ {
			mask := rng.Uint64() & rng.Uint64() // sparse-ish
			ctr.Add(mask)
			for lane := 0; lane < 64; lane++ {
				if mask&(1<<lane) != 0 {
					want[lane]++
				}
			}
		}
		ctr.Flush(&got)
		if got != want {
			t.Fatalf("round %d: counter diverged from scalar recount", round)
		}
	}
	// Flush after flush must be a no-op.
	prev := got
	ctr.Flush(&got)
	if got != prev {
		t.Fatal("second Flush changed totals")
	}
}

func TestLaneCounterReset(t *testing.T) {
	var ctr LaneCounter
	ctr.Add(^uint64(0))
	ctr.Add(1)
	ctr.Reset()
	var out [64]int64
	ctr.Flush(&out)
	for lane, v := range out {
		if v != 0 {
			t.Fatalf("lane %d = %d after Reset", lane, v)
		}
	}
}

// TestLaneCounterCarryChain exercises long carry ripples: repeated adds
// of a full mask count up through every plane boundary.
func TestLaneCounterCarryChain(t *testing.T) {
	var ctr LaneCounter
	const adds = 1 << 12
	for i := 0; i < adds; i++ {
		ctr.Add(^uint64(0))
	}
	var out [64]int64
	ctr.Flush(&out)
	for lane, v := range out {
		if v != adds {
			t.Fatalf("lane %d = %d, want %d", lane, v, adds)
		}
	}
}

func BenchmarkLaneCounterAdd(b *testing.B) {
	var ctr LaneCounter
	var out [64]int64
	mask := uint64(0x9E3779B97F4A7C15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctr.Add(mask)
		mask = mask<<1 | mask>>63
		if i&0xFFFF == 0xFFFF {
			ctr.Flush(&out)
		}
	}
}

func BenchmarkForEachSet(b *testing.B) {
	var sink int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEachSet(uint64(i)*0x9E3779B97F4A7C15, func(lane int) { sink += lane })
	}
	_ = sink
}
