package lowerbound

import (
	"testing"
)

func TestDivergenceRespectsInvariant(t *testing.T) {
	for _, n := range []int{27, 81, 243} {
		series, err := DivergenceSeries(n, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) == 0 {
			t.Fatal("empty series")
		}
		if v := CheckDivergenceInvariant(series); v >= 0 {
			t.Fatalf("n=%d: divergence %d at round %d exceeds 3^i bound", n, series[v], v)
		}
	}
}

func TestDivergenceNeedsLogRounds(t *testing.T) {
	// Full divergence of n nodes cannot happen before log_3(n) rounds;
	// our doubling protocol achieves it in ~log_2(n), inside the window.
	n := 256
	series, err := DivergenceSeries(n, 40)
	if err != nil {
		t.Fatal(err)
	}
	full := RoundsToFullDivergence(series, n)
	if full < 0 {
		t.Fatal("protocol never reached full divergence")
	}
	// log_3(256) ≈ 5.05, so at least 6 rounds (bound with indexing slack).
	if full < 5 {
		t.Fatalf("full divergence after %d rounds beats the 3^i bound", full)
	}
	// And the doubling protocol should not be far off the optimum.
	if full > 16 {
		t.Fatalf("full divergence after %d rounds; expected ≈ log2(n)+1", full)
	}
}

func TestDivergenceMonotone(t *testing.T) {
	series, err := DivergenceSeries(64, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatalf("divergence shrank at round %d: %v", i, series)
		}
	}
}

func TestCheckDivergenceInvariantDetectsViolation(t *testing.T) {
	if v := CheckDivergenceInvariant([]int{1, 2, 100}); v != 2 {
		t.Fatalf("violation index = %d, want 2", v)
	}
	if v := CheckDivergenceInvariant([]int{3, 9, 27}); v != -1 {
		t.Fatalf("clean series flagged at %d", v)
	}
}

func TestRoundsToFullDivergence(t *testing.T) {
	if got := RoundsToFullDivergence([]int{1, 3, 8}, 8); got != 3 {
		t.Fatalf("full divergence round = %d, want 3", got)
	}
	if got := RoundsToFullDivergence([]int{1, 3}, 8); got != -1 {
		t.Fatalf("unreached divergence = %d, want -1", got)
	}
}

func TestIsolationDelaysContact(t *testing.T) {
	// With crash budget t and at most two crashes spent per round, the
	// victim must stay isolated for at least t/2 rounds.
	for _, tt := range []int{8, 16, 32} {
		first, err := FirstContactRound(64, tt, 5, 200)
		if err != nil {
			t.Fatal(err)
		}
		if first >= 0 && first < tt/2 {
			t.Fatalf("t=%d: victim contacted at round %d < t/2", tt, first)
		}
	}
}

func TestIsolationEventuallyEnds(t *testing.T) {
	// Budget exhausted → contact happens (the protocol keeps trying).
	first, err := FirstContactRound(64, 4, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if first < 0 {
		t.Fatal("victim never contacted despite tiny budget")
	}
}

func TestFirstContactValidation(t *testing.T) {
	if _, err := FirstContactRound(10, 2, 99, 50); err == nil {
		t.Fatal("out-of-range victim accepted")
	}
}
