// Package lowerbound turns the two adversary constructions of the
// Theorem 13 proof (§8) into executable experiments:
//
//   - Divergence: in the single-port model, if two executions start
//     from initial configurations differing at one node, then after i
//     rounds at most 3^i nodes can be in different states (each
//     diverged node changes at most one other node per execution per
//     round). Consensus must diverge everywhere, so Ω(log n) rounds
//     are necessary. DivergenceSeries measures the divergence profile
//     of a maximally-spreading protocol and checks it against 3^i.
//
//   - Isolation: an adversary with crash budget t can cut one node off
//     from the system for Ω(t) single-port rounds by crashing every
//     node it exchanges a message with (at most two per round), so
//     gossiping — which must transport the victim's rumor — needs
//     Ω(t) rounds. FirstContactRound measures how long the victim
//     stays information-isolated.
package lowerbound

import (
	"fmt"

	"lineartime/internal/crash"
	"lineartime/internal/scenario"
	"lineartime/internal/sim"
)

// chatter is a single-port protocol that spreads one bit as fast as
// the model allows: at round r every node holding the bit sends it to
// the node offset(r) ahead on the ring and everyone polls the port
// offset(r) behind. The doubling offset schedule (2^r) doubles the
// informed set every round — the natural maximal-divergence workload
// for the 3^i invariant; the persistent schedule cycles through all
// offsets forever, which the isolation experiment needs (a protocol
// that stops talking can be isolated for free).
type chatter struct {
	id, n      int
	value      bool
	horizon    int
	rounds     int
	persistent bool
}

func newChatter(id, n, horizon int, input bool) *chatter {
	return &chatter{id: id, n: n, value: input, horizon: horizon}
}

func newPersistentChatter(id, n, horizon int) *chatter {
	return &chatter{id: id, n: n, value: true, horizon: horizon, persistent: true}
}

func (c *chatter) offset(round int) int {
	if c.persistent {
		return round%(c.n-1) + 1
	}
	off := 1
	for i := 0; i < round && off < c.n; i++ {
		off <<= 1
	}
	return off % c.n
}

func (c *chatter) Send(round int) []sim.Envelope {
	if round >= c.horizon || !c.value {
		return nil
	}
	to := (c.id + c.offset(round)) % c.n
	if to == c.id {
		return nil
	}
	return []sim.Envelope{{From: c.id, To: to, Payload: sim.Bit(true)}}
}

func (c *chatter) Poll(round int) (sim.NodeID, bool) {
	if round >= c.horizon {
		return 0, false
	}
	from := (c.id - c.offset(round) + c.n) % c.n
	if from == c.id {
		return 0, false
	}
	return from, true
}

func (c *chatter) Deliver(round int, inbox []sim.Envelope) {
	for _, env := range inbox {
		if b, ok := env.Payload.(sim.Bit); ok && bool(b) {
			c.value = true
		}
	}
	c.rounds++
}

func (c *chatter) Halted() bool { return c.rounds >= c.horizon }

var (
	_ sim.Protocol = (*chatter)(nil)
	_ sim.Poller   = (*chatter)(nil)
)

// DivergenceSeries runs the two-execution experiment of the Ω(log n)
// argument: E0 starts with all inputs 0, E1 differs only at node 0.
// It returns diverged[i] = number of nodes whose states differ at the
// end of round i (i = 1..rounds).
func DivergenceSeries(n, rounds int) ([]int, error) {
	mk := func(seedOne bool) ([]sim.Protocol, []*chatter) {
		ps := make([]sim.Protocol, n)
		cs := make([]*chatter, n)
		for i := 0; i < n; i++ {
			cs[i] = newChatter(i, n, rounds, seedOne && i == 0)
			ps[i] = cs[i]
		}
		return ps, cs
	}
	ps0, cs0 := mk(false)
	ps1, cs1 := mk(true)

	s0, err := sim.NewStepper(sim.Config{Protocols: ps0, MaxRounds: rounds + 1, SinglePort: true})
	if err != nil {
		return nil, err
	}
	s1, err := sim.NewStepper(sim.Config{Protocols: ps1, MaxRounds: rounds + 1, SinglePort: true})
	if err != nil {
		return nil, err
	}

	series := make([]int, 0, rounds)
	for i := 0; i < rounds; i++ {
		d0, err := s0.Step()
		if err != nil {
			return nil, err
		}
		d1, err := s1.Step()
		if err != nil {
			return nil, err
		}
		diff := 0
		for j := 0; j < n; j++ {
			if cs0[j].value != cs1[j].value {
				diff++
			}
		}
		series = append(series, diff)
		if d0 && d1 {
			break
		}
	}
	return series, nil
}

// CheckDivergenceInvariant verifies diverged[i] ≤ 3^{i+1} for every
// measured round (the proof's invariant with our round indexing),
// returning the first violating round or -1.
func CheckDivergenceInvariant(series []int) int {
	bound := 3
	for i, d := range series {
		if d > bound {
			return i
		}
		if bound <= 1<<30 {
			bound *= 3
		}
	}
	return -1
}

// RoundsToFullDivergence returns the first measured round at which all
// n nodes diverged, or -1 if never. Consensus-style problems require
// full divergence, so this is an empirical lower bound on their
// single-port running time.
func RoundsToFullDivergence(series []int, n int) int {
	for i, d := range series {
		if d >= n {
			return i + 1
		}
	}
	return -1
}

// firstContact wraps a protocol and records the first round in which
// any message was delivered to it.
type firstContact struct {
	inner sim.Poller
	first int
}

func newFirstContact(inner sim.Poller) *firstContact {
	return &firstContact{inner: inner, first: -1}
}

func (f *firstContact) Send(round int) []sim.Envelope { return f.inner.Send(round) }
func (f *firstContact) Poll(round int) (sim.NodeID, bool) {
	return f.inner.Poll(round)
}
func (f *firstContact) Deliver(round int, inbox []sim.Envelope) {
	if len(inbox) > 0 && f.first < 0 {
		f.first = round
	}
	f.inner.Deliver(round, inbox)
}
func (f *firstContact) Halted() bool { return f.inner.Halted() }

var _ sim.Poller = (*firstContact)(nil)

// FirstContactRound runs the isolation experiment: n chatter nodes all
// seeded with the bit (so everyone tries to talk), a crash adversary
// with budget t isolating the victim. It returns the first round at
// which the victim received any message, or -1 if it stayed isolated
// for the whole horizon. The Ω(t) bound predicts a result ≥ t/2
// (the adversary spends at most two crashes per round).
func FirstContactRound(n, t, victim, horizon int) (int, error) {
	if victim < 0 || victim >= n {
		return 0, fmt.Errorf("lowerbound: victim %d out of range", victim)
	}
	ps := make([]sim.Protocol, n)
	var watched *firstContact
	for i := 0; i < n; i++ {
		c := newPersistentChatter(i, n, horizon)
		if i == victim {
			watched = newFirstContact(c)
			ps[i] = watched
		} else {
			ps[i] = c
		}
	}
	adv := crash.NewIsolate(victim, t)
	_, err := scenario.Execute(sim.Config{
		Protocols:  ps,
		Fault:      adv,
		MaxRounds:  horizon + 1,
		SinglePort: true,
	}, scenario.Serial)
	if err != nil {
		return 0, err
	}
	return watched.first, nil
}
