// Package checkpoint implements the checkpointing algorithm of the
// paper (§6, Figure 6, Theorem 10) and the direct O(tn)-message
// comparator from the earlier literature it improves on.
//
// Checkpointing must make all non-faulty nodes decide on one common
// extant set of node names that contains every node that halts
// operational and excludes every node that crashed before sending any
// message. The algorithm gossips names (with a dummy rumor), then runs
// n concurrent instances of Few-Crashes-Consensus with combined
// messages — one instance per candidate name.
package checkpoint

import (
	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/gossip"
	"lineartime/internal/sim"
)

// Checkpointing is the per-node machine of Figure 6. Theorem 10: for
// t < n/5 it runs in O(t + log n·log t) rounds with O(n + t·log n·log t)
// messages.
type Checkpointing struct {
	id  int
	top *consensus.Topology

	gossip    *gossip.Gossip
	vector    *consensus.VectorFewCrashes
	labeler   *consensus.VectorFewCrashes // schedule-only twin for PartAt
	gossipEnd int
	length    int
	halted    bool
}

// New creates the checkpointing machine for node id.
func New(id int, top *consensus.Topology) *Checkpointing {
	g := gossip.New(id, top, gossip.Rumor(1)) // dummy rumor (§6 Part 1)
	labeler := consensus.NewVectorFewCrashes(id, top, bitset.New(top.N))
	return &Checkpointing{
		id:        id,
		top:       top,
		gossip:    g,
		labeler:   labeler,
		gossipEnd: g.ScheduleLength(),
		length:    g.ScheduleLength() + labeler.ScheduleLength(),
	}
}

// ScheduleLength returns the protocol's fixed round count.
func (c *Checkpointing) ScheduleLength() int { return c.length }

// Decision returns the decided extant set of node names, if any.
func (c *Checkpointing) Decision() (*bitset.Set, bool) {
	if c.vector == nil {
		return nil, false
	}
	return c.vector.Decision()
}

// handoff seeds the consensus instances with the gossiped membership:
// instance i gets input 1 exactly when node i is present at this node
// (Figure 6 Part 2).
func (c *Checkpointing) handoff() {
	if c.vector != nil {
		return
	}
	c.vector = consensus.NewVectorFewCrashes(c.id, c.top, c.gossip.Extant().Known())
}

// Send implements sim.Protocol.
func (c *Checkpointing) Send(round int) []sim.Envelope {
	if round < c.gossipEnd {
		return c.gossip.Send(round)
	}
	c.handoff()
	return c.vector.Send(round - c.gossipEnd)
}

// Deliver implements sim.Protocol.
func (c *Checkpointing) Deliver(round int, inbox []sim.Envelope) {
	if round < c.gossipEnd {
		c.gossip.Deliver(round, inbox)
		return
	}
	c.handoff()
	c.vector.Deliver(round-c.gossipEnd, inbox)
	if round == c.length-1 {
		c.halted = true
	}
}

// Halted implements sim.Protocol.
func (c *Checkpointing) Halted() bool { return c.halted }

var _ sim.Protocol = (*Checkpointing)(nil)

// PartAt maps a round to its checkpointing stage and sub-part, for the
// engine's per-part message attribution. It is pure (engines may call
// it from the coordinating goroutine): the schedule-only twin answers
// for the consensus stage.
func (c *Checkpointing) PartAt(round int) string {
	if round < c.gossipEnd {
		return "gossip/" + c.gossip.PartAt(round)
	}
	return "consensus/" + c.labeler.PartAt(round-c.gossipEnd)
}
