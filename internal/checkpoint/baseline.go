package checkpoint

import (
	"lineartime/internal/bitset"
	"lineartime/internal/sim"
)

// Direct is the O(tn)-message checkpointing comparator in the style of
// De Prisco–Mayer–Yung (§1 previous work): t+2 rounds of repeated
// all-to-all-by-coordinator exchange. Round r: node r (mod n) is the
// coordinator; every node reports its alive-view to the coordinator,
// which rebroadcasts the intersection-eligible union view. After t+2
// coordinators at least one was non-faulty for a full exchange, making
// all views equal.
//
// Implementation below uses the simpler classic scheme with the same
// asymptotics: every node broadcasts its membership view every round
// for t+2 rounds (Θ(t·n²) messages in the worst case, ≥ Θ(t·n) even
// with silent nodes), then decides the intersection-stable view.
type Direct struct {
	id, n, t int

	view    *bitset.Set // nodes believed operational
	decided bool
	halted  bool
}

// NewDirect creates the baseline machine for node id of n with crash
// bound t.
func NewDirect(id, n, t int) *Direct {
	v := bitset.New(n)
	v.Add(id)
	return &Direct{id: id, n: n, t: t, view: v}
}

// ScheduleLength returns the fixed round count, t + 2.
func (d *Direct) ScheduleLength() int { return d.t + 2 }

// Decision returns the decided extant set, if any.
func (d *Direct) Decision() (*bitset.Set, bool) {
	if !d.decided {
		return nil, false
	}
	return d.view, true
}

// Send implements sim.Protocol.
func (d *Direct) Send(round int) []sim.Envelope {
	if round >= d.ScheduleLength() {
		return nil
	}
	payload := viewPayload{set: d.view.Clone()}
	out := make([]sim.Envelope, 0, d.n-1)
	for to := 0; to < d.n; to++ {
		if to != d.id {
			out = append(out, sim.Envelope{From: d.id, To: to, Payload: payload})
		}
	}
	return out
}

// Deliver implements sim.Protocol.
func (d *Direct) Deliver(round int, inbox []sim.Envelope) {
	for _, env := range inbox {
		if p, ok := env.Payload.(viewPayload); ok {
			d.view.UnionWith(p.set)
		}
	}
	if round == d.ScheduleLength()-1 {
		d.decided = true
		d.halted = true
	}
}

// Halted implements sim.Protocol.
func (d *Direct) Halted() bool { return d.halted }

type viewPayload struct{ set *bitset.Set }

func (p viewPayload) SizeBits() int { return p.set.Len() }

var (
	_ sim.Protocol = (*Direct)(nil)
	_ sim.Payload  = viewPayload{}
)
