package checkpoint

import (
	"testing"

	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func runCheckpointing(t *testing.T, n, tt int, adv sim.LinkFault, seed uint64) ([]*Checkpointing, *sim.Result) {
	t.Helper()
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*Checkpointing, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = New(i, top)
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: ms[0].ScheduleLength() + 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

// checkCheckpointing asserts the §2 conditions: silent-crashed nodes
// excluded, operational nodes included, and all decided sets equal.
func checkCheckpointing(t *testing.T, label string, ms []*Checkpointing, res *sim.Result, silent []int) {
	t.Helper()
	silentSet := make(map[int]bool, len(silent))
	for _, v := range silent {
		silentSet[v] = true
	}
	var agreed *bitset.Set
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		set, ok := m.Decision()
		if !ok {
			t.Fatalf("%s: node %d did not decide", label, i)
		}
		for j := range ms {
			if silentSet[j] && set.Contains(j) {
				t.Fatalf("%s: decided set of %d contains silent-crashed %d", label, i, j)
			}
			if !res.Crashed.Contains(j) && !set.Contains(j) {
				t.Fatalf("%s: decided set of %d misses operational %d", label, i, j)
			}
		}
		if agreed == nil {
			agreed = set
		} else if !agreed.Equal(set) {
			t.Fatalf("%s: decided sets differ between nodes", label)
		}
	}
	if agreed == nil {
		t.Fatalf("%s: everyone crashed", label)
	}
}

func TestCheckpointingNoFaults(t *testing.T) {
	ms, res := runCheckpointing(t, 60, 12, nil, 1)
	checkCheckpointing(t, "no-faults", ms, res, nil)
}

func TestCheckpointingSilentCrashes(t *testing.T) {
	n, tt := 60, 12
	var events []crash.Event
	var silent []int
	for i := 0; i < tt; i++ {
		v := 2 + 5*i
		events = append(events, crash.Event{Node: v, Round: 0, Keep: 0})
		silent = append(silent, v)
	}
	ms, res := runCheckpointing(t, n, tt, crash.NewSchedule(events), 2)
	checkCheckpointing(t, "silent", ms, res, silent)
}

func TestCheckpointingRandomCrashes(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		n, tt := 50, 10
		adv := crash.NewRandom(n, tt, 40, seed)
		ms, res := runCheckpointing(t, n, tt, adv, seed+11)
		// Silent victims unknown; check inclusion of operational nodes
		// and agreement only.
		checkCheckpointing(t, "random", ms, res, nil)
	}
}

func TestCheckpointingPerformanceShape(t *testing.T) {
	// Theorem 10: O(t + log n log t) rounds, O(n + t log n log t) messages.
	n, tt := 120, 24
	ms, res := runCheckpointing(t, n, tt, nil, 3)
	if res.Metrics.Rounds != ms[0].ScheduleLength() {
		t.Fatalf("rounds = %d, want schedule %d", res.Metrics.Rounds, ms[0].ScheduleLength())
	}
	if res.Metrics.Rounds > 16*tt+500 {
		t.Fatalf("rounds = %d too large for O(t + log n log t)", res.Metrics.Rounds)
	}
}

func TestDirectBaseline(t *testing.T) {
	n, tt := 40, 8
	ms := make([]*Direct, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewDirect(i, n, tt)
		ps[i] = ms[i]
	}
	adv := crash.NewSchedule([]crash.Event{
		{Node: 5, Round: 0, Keep: 0},
		{Node: 7, Round: 3, Keep: 2},
	})
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: tt + 4})
	if err != nil {
		t.Fatal(err)
	}
	var agreed *bitset.Set
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		set, ok := m.Decision()
		if !ok {
			t.Fatalf("baseline node %d undecided", i)
		}
		if set.Contains(5) {
			t.Fatal("silent-crashed node 5 included")
		}
		if agreed == nil {
			agreed = set
		} else if !agreed.Equal(set) {
			t.Fatal("baseline decided sets differ")
		}
	}
}

func TestDirectBaselineMessageScale(t *testing.T) {
	// The baseline's Θ(t·n²) message profile is the crossover input
	// for the E7/E11 experiments.
	n, tt := 60, 12
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ps[i] = NewDirect(i, n, tt)
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: tt + 4})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n * (n - 1) * (tt + 2))
	if res.Metrics.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Metrics.Messages, want)
	}
}

func TestVectorConsensusDirect(t *testing.T) {
	// VectorFewCrashes standalone: all nodes share the same input
	// vector except one instance where inputs differ; per-instance
	// validity and cross-node agreement must hold.
	n, tt := 60, 12
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*consensus.VectorFewCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		in := bitset.New(n)
		in.Add(i)     // instance i seeded only at node i
		in.Add(n - 1) // instance n-1 seeded everywhere
		ms[i] = consensus.NewVectorFewCrashes(i, top, in)
		ps[i] = ms[i]
	}
	_, err = sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 5})
	if err != nil {
		t.Fatal(err)
	}
	var agreed *bitset.Set
	for i, m := range ms {
		set, ok := m.Decision()
		if !ok {
			t.Fatalf("node %d undecided", i)
		}
		if !set.Contains(n - 1) {
			t.Fatalf("node %d decision misses unanimously-seeded instance", i)
		}
		if agreed == nil {
			agreed = set
		} else if !agreed.Equal(set) {
			t.Fatal("vector decisions differ")
		}
	}
	// Validity per instance: instance j can only be decided 1 if some
	// node had input 1 for it — every instance was seeded, so decided
	// bits are unconstrained upward, but instances of little nodes
	// seeded at little nodes must be present (flooded through G).
	for j := 0; j < top.L; j++ {
		if !agreed.Contains(j) {
			t.Fatalf("instance %d seeded at little node %d missing from decision", j, j)
		}
	}
}
