package singleport

import (
	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/expander"
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// SPVectorConsensus is the single-port compilation of the n-instance
// vector Few-Crashes-Consensus (§6's combined-message consensus bank),
// following the same segment structure as LinearConsensus:
//
//	A: vector flooding on the little overlay, 2d slots per multi-port
//	   round (re-flooding whenever the candidate vector grows);
//	B: local probing with vector probes, 2d slots per round;
//	C: decided-vector spreading over H, 2∆ slots per round;
//	D: ring-pull sweep resolving stragglers with vector responses.
//
// Used by SPCheckpointing; rounds O(t + log n), message count within a
// constant of the multi-port vector run.
type SPVectorConsensus struct {
	id  int
	top *consensus.Topology

	candidate *bitset.Set
	pending   bool
	floodNow  bool

	probing   *probe.Probing
	probeNow  bool
	probeRecv int

	decided  bool
	decision *bitset.Set
	hSent    bool
	hNow     bool

	ringInquired bool
	ringAsked    int

	halted bool

	d, gamma, delta                    int
	mp1, hRounds, ringPhases           int
	segAEnd, segBEnd, segCEnd, segDEnd int
}

// NewSPVectorConsensus creates the machine for node id with the given
// initial membership vector (ownership is taken).
func NewSPVectorConsensus(id int, top *consensus.Topology, initial *bitset.Set) *SPVectorConsensus {
	v := &SPVectorConsensus{
		id:        id,
		top:       top,
		candidate: initial,
		pending:   true,
		ringAsked: -1,
	}
	v.d = top.Little.P.Degree
	v.gamma = top.Little.P.Gamma
	v.delta = top.Broadcast.P.Degree

	v.mp1 = 5*top.T - 1
	if v.mp1 < 1 {
		v.mp1 = 1
	}
	if v.mp1 < v.gamma {
		v.mp1 = v.gamma
	}
	v.hRounds = 2*expander.CeilLog2(top.N) + 4
	v.ringPhases = 6*top.T + expander.CeilLog2(top.N) + 16
	if v.ringPhases > top.N-1 {
		v.ringPhases = top.N - 1
	}

	v.segAEnd = v.mp1 * 2 * v.d
	v.segBEnd = v.segAEnd + v.gamma*2*v.d
	v.segCEnd = v.segBEnd + v.hRounds*2*v.delta
	v.segDEnd = v.segCEnd + 4*v.ringPhases

	if top.IsLittle(id) {
		v.probing = probe.New(top.Little.Neighbors(id), v.gamma, top.Little.P.Delta)
	}
	return v
}

// ScheduleLength returns the protocol's fixed round count.
func (v *SPVectorConsensus) ScheduleLength() int { return v.segDEnd }

// Decision returns the decided membership vector, if any.
func (v *SPVectorConsensus) Decision() (*bitset.Set, bool) { return v.decision, v.decided }

func (v *SPVectorConsensus) position(round int) (seg, off int) {
	switch {
	case round < v.segAEnd:
		return 1, round
	case round < v.segBEnd:
		return 2, round - v.segAEnd
	case round < v.segCEnd:
		return 3, round - v.segBEnd
	case round < v.segDEnd:
		return 4, round - v.segCEnd
	default:
		return 5, 0
	}
}

func (v *SPVectorConsensus) littleNeighbor(slot int) int {
	if v.probing == nil {
		return -1
	}
	nbrs := v.top.Little.Neighbors(v.id)
	if slot < 0 || slot >= len(nbrs) {
		return -1
	}
	return nbrs[slot]
}

func (v *SPVectorConsensus) hNeighbor(slot int) int {
	nbrs := v.top.Broadcast.Neighbors(v.id)
	if slot < 0 || slot >= len(nbrs) {
		return -1
	}
	return nbrs[slot]
}

func (v *SPVectorConsensus) ringPeers(k int) (pred, succ int) {
	n := v.top.N
	return (v.id - k + n*((k/n)+1)) % n, (v.id + k) % n
}

// absorb ORs a received vector into the candidate, reporting growth.
func (v *SPVectorConsensus) absorb(s *bitset.Set) bool {
	before := v.candidate.Count()
	v.candidate.UnionWith(s)
	return v.candidate.Count() > before
}

// Send implements sim.Protocol.
func (v *SPVectorConsensus) Send(round int) []sim.Envelope {
	seg, off := v.position(round)
	switch seg {
	case 1:
		if v.probing == nil {
			return nil
		}
		slot := off % (2 * v.d)
		if slot == 0 {
			v.floodNow = v.pending
			v.pending = false
		}
		if v.floodNow && slot < v.d {
			if to := v.littleNeighbor(slot); to >= 0 {
				return []sim.Envelope{{From: v.id, To: to,
					Payload: consensus.VectorPayload{Set: v.candidate.Clone()}}}
			}
		}
	case 2:
		if v.probing == nil {
			return nil
		}
		slot := off % (2 * v.d)
		if slot == 0 {
			v.probeNow = v.probing.Active()
			v.probeRecv = 0
		}
		if v.probeNow && slot < v.d {
			if to := v.littleNeighbor(slot); to >= 0 {
				return []sim.Envelope{{From: v.id, To: to,
					Payload: consensus.VectorProbe{Set: v.candidate.Clone()}}}
			}
		}
	case 3:
		slot := off % (2 * v.delta)
		if slot == 0 {
			v.hNow = v.decided && !v.hSent
			if v.hNow {
				v.hSent = true
			}
		}
		if v.hNow && slot < v.delta {
			if to := v.hNeighbor(slot); to >= 0 {
				return []sim.Envelope{{From: v.id, To: to,
					Payload: consensus.VectorPayload{Set: v.decision}}}
			}
		}
	case 4:
		k := off/4 + 1
		pred, _ := v.ringPeers(k)
		switch off % 4 {
		case 0:
			v.ringAsked = -1
			if !v.decided && pred != v.id {
				v.ringInquired = true
				return []sim.Envelope{{From: v.id, To: pred, Payload: sim.Inquiry{}}}
			}
			v.ringInquired = false
		case 2:
			if v.decided && v.ringAsked >= 0 {
				to := v.ringAsked
				v.ringAsked = -1
				return []sim.Envelope{{From: v.id, To: to,
					Payload: consensus.VectorPayload{Set: v.decision}}}
			}
		}
	}
	return nil
}

// Poll implements sim.Poller.
func (v *SPVectorConsensus) Poll(round int) (sim.NodeID, bool) {
	seg, off := v.position(round)
	switch seg {
	case 1, 2:
		if v.probing == nil {
			return 0, false
		}
		slot := off % (2 * v.d)
		if slot >= v.d {
			if from := v.littleNeighbor(slot - v.d); from >= 0 {
				return from, true
			}
		}
	case 3:
		slot := off % (2 * v.delta)
		if slot >= v.delta {
			if from := v.hNeighbor(slot - v.delta); from >= 0 {
				return from, true
			}
		}
	case 4:
		k := off/4 + 1
		pred, succ := v.ringPeers(k)
		switch off % 4 {
		case 1:
			if succ != v.id {
				return succ, true
			}
		case 3:
			if v.ringInquired && pred != v.id {
				return pred, true
			}
		}
	}
	return 0, false
}

// Deliver implements sim.Protocol.
func (v *SPVectorConsensus) Deliver(round int, inbox []sim.Envelope) {
	seg, off := v.position(round)
	switch seg {
	case 1:
		for _, env := range inbox {
			if p, ok := env.Payload.(consensus.VectorPayload); ok && v.absorb(p.Set) {
				v.pending = true
			}
		}
	case 2:
		for _, env := range inbox {
			if p, ok := env.Payload.(consensus.VectorProbe); ok {
				v.probeRecv++
				v.absorb(p.Set)
			}
		}
		if v.probing != nil && off%(2*v.d) == 2*v.d-1 {
			v.probing.Observe(v.probeRecv)
			if v.probing.Done() && v.probing.Survived() && !v.decided {
				v.decided = true
				v.decision = v.candidate.Clone()
			}
		}
	case 3:
		for _, env := range inbox {
			if p, ok := env.Payload.(consensus.VectorPayload); ok && !v.decided {
				v.decided = true
				v.decision = p.Set.Clone()
			}
		}
	case 4:
		switch off % 4 {
		case 1:
			for _, env := range inbox {
				if _, ok := env.Payload.(sim.Inquiry); ok {
					v.ringAsked = env.From
				}
			}
		case 3:
			for _, env := range inbox {
				if p, ok := env.Payload.(consensus.VectorPayload); ok && !v.decided {
					v.decided = true
					v.decision = p.Set.Clone()
				}
			}
		}
	}
	if round == v.segDEnd-1 {
		v.halted = true
	}
}

// Halted implements sim.Protocol.
func (v *SPVectorConsensus) Halted() bool { return v.halted }

var (
	_ sim.Protocol = (*SPVectorConsensus)(nil)
	_ sim.Poller   = (*SPVectorConsensus)(nil)
)

// SPCheckpointing is the single-port checkpointing stack: SPGossip
// followed by SPVectorConsensus, the §8 adaptation of Figure 6 that
// keeps the multi-port communication bounds (Table 1's single-port
// column for checkpointing).
type SPCheckpointing struct {
	id       int
	schedule *GossipSchedule

	gossip    *SPGossip
	vector    *SPVectorConsensus
	gossipEnd int
	length    int
	halted    bool
}

// NewSPCheckpointing creates the single-port checkpointing machine.
func NewSPCheckpointing(id int, schedule *GossipSchedule) *SPCheckpointing {
	g := NewSPGossip(id, schedule, 1) // dummy rumor
	vlen := NewSPVectorConsensus(id, schedule.Top, bitset.New(schedule.Top.N)).ScheduleLength()
	return &SPCheckpointing{
		id:        id,
		schedule:  schedule,
		gossip:    g,
		gossipEnd: g.ScheduleLength(),
		length:    g.ScheduleLength() + vlen,
	}
}

// ScheduleLength returns the protocol's fixed round count.
func (c *SPCheckpointing) ScheduleLength() int { return c.length }

// Decision returns the agreed extant set, if any.
func (c *SPCheckpointing) Decision() (*bitset.Set, bool) {
	if c.vector == nil {
		return nil, false
	}
	return c.vector.Decision()
}

func (c *SPCheckpointing) handoff() {
	if c.vector == nil {
		c.vector = NewSPVectorConsensus(c.id, c.schedule.Top, c.gossip.Extant().Known())
	}
}

// Send implements sim.Protocol.
func (c *SPCheckpointing) Send(round int) []sim.Envelope {
	if round < c.gossipEnd {
		return c.gossip.Send(round)
	}
	c.handoff()
	return c.vector.Send(round - c.gossipEnd)
}

// Poll implements sim.Poller.
func (c *SPCheckpointing) Poll(round int) (sim.NodeID, bool) {
	if round < c.gossipEnd {
		return c.gossip.Poll(round)
	}
	c.handoff()
	return c.vector.Poll(round - c.gossipEnd)
}

// Deliver implements sim.Protocol.
func (c *SPCheckpointing) Deliver(round int, inbox []sim.Envelope) {
	if round < c.gossipEnd {
		c.gossip.Deliver(round, inbox)
		return
	}
	c.handoff()
	c.vector.Deliver(round-c.gossipEnd, inbox)
	if round == c.length-1 {
		c.halted = true
	}
}

// Halted implements sim.Protocol.
func (c *SPCheckpointing) Halted() bool { return c.halted }

var (
	_ sim.Protocol = (*SPCheckpointing)(nil)
	_ sim.Poller   = (*SPCheckpointing)(nil)
)
