// Package singleport implements Linear-Consensus (§8, Theorem 12): the
// consensus stack compiled to the single-port model, in which a node
// sends at most one message and polls at most one in-port per round,
// and ports buffer silently.
//
// The compilation follows §8's recipe with one engineering
// concretization:
//
//   - AEA Parts 1–2 (constant-degree little overlay G): each original
//     multi-port round becomes 2d single-port rounds — d send slots
//     (one neighbor per slot) then d poll slots (one in-port per slot).
//   - Decision spreading (replacing AEA Part 3 + SCV Part 1): the
//     deciders broadcast over the constant-degree expander H, each
//     multi-port round compiled into 2∆ single-port rounds, for
//     Θ(log n) multi-port rounds.
//   - Straggler resolution (replacing SCV Part 2): a deterministic
//     ring-pull sweep. In sub-phase k (four single-port rounds) every
//     undecided node j inquires node j−k (mod n) and polls for the
//     response; every node polls for inquiries from node j+k and
//     responds if decided. A straggler whose nearest decided live ring
//     predecessor is at distance D decides by sub-phase D, and D is
//     bounded by the crashes plus remaining stragglers — O(t) after
//     the expander spreading — so the sweep runs O(t) sub-phases and
//     sends O(n) messages on the Theorem 12 schedule.
//
// The totals match Theorem 12: O(t + log n) rounds and O(n + t log n)
// one-bit messages.
package singleport

import (
	"lineartime/internal/consensus"
	"lineartime/internal/expander"
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// LinearConsensus is the per-node single-port machine.
type LinearConsensus struct {
	id  int
	top *consensus.Topology

	candidate bool
	flooded   bool // completed the Part-1 flood
	pending   bool // flood at the next Part-1 multi-port round
	floodNow  bool // latched: flooding during the current mp-round

	probing   *probe.Probing
	probeNow  bool
	probeRecv int

	decided  bool
	decision bool
	hSent    bool // H-broadcast performed
	hNow     bool

	ringInquired bool // inquiry outstanding this sub-phase
	ringAsked    int  // inquirer id to answer this sub-phase, -1 none

	halted bool

	// Schedule (in single-port rounds).
	d, gamma, delta                    int // little degree, probing rounds, H degree
	mp1                                int // AEA Part 1 multi-port rounds
	hRounds                            int // H spreading multi-port rounds
	ringPhases                         int
	segAEnd, segBEnd, segCEnd, segDEnd int
}

// New creates the Linear-Consensus machine for node id with the given
// binary input.
func New(id int, top *consensus.Topology, input bool) *LinearConsensus {
	l := &LinearConsensus{id: id, top: top, candidate: input, ringAsked: -1}
	l.d = top.Little.P.Degree
	l.gamma = top.Little.P.Gamma
	l.delta = top.Broadcast.P.Degree

	l.mp1 = 5*top.T - 1
	if l.mp1 < 1 {
		l.mp1 = 1
	}
	if l.mp1 < l.gamma {
		l.mp1 = l.gamma
	}
	l.hRounds = 2*expander.CeilLog2(top.N) + 4
	l.ringPhases = 6*top.T + expander.CeilLog2(top.N) + 16
	if l.ringPhases > top.N-1 {
		l.ringPhases = top.N - 1
	}

	l.segAEnd = l.mp1 * 2 * l.d
	l.segBEnd = l.segAEnd + l.gamma*2*l.d
	l.segCEnd = l.segBEnd + l.hRounds*2*l.delta
	l.segDEnd = l.segCEnd + 4*l.ringPhases

	if top.IsLittle(id) {
		l.probing = probe.New(top.Little.Neighbors(id), l.gamma, top.Little.P.Delta)
	}
	return l
}

// ScheduleLength returns the protocol's fixed single-port round count.
func (l *LinearConsensus) ScheduleLength() int { return l.segDEnd }

// Decision returns the consensus decision, if reached.
func (l *LinearConsensus) Decision() (value, ok bool) { return l.decision, l.decided }

// littleNeighbor returns the little overlay neighbor for a slot, or -1.
func (l *LinearConsensus) littleNeighbor(slot int) int {
	if l.probing == nil {
		return -1
	}
	nbrs := l.top.Little.Neighbors(l.id)
	if slot < 0 || slot >= len(nbrs) {
		return -1
	}
	return nbrs[slot]
}

func (l *LinearConsensus) hNeighbor(slot int) int {
	nbrs := l.top.Broadcast.Neighbors(l.id)
	if slot < 0 || slot >= len(nbrs) {
		return -1
	}
	return nbrs[slot]
}

// position returns the segment (1..4) and the offset within it.
func (l *LinearConsensus) position(round int) (seg, off int) {
	switch {
	case round < l.segAEnd:
		return 1, round
	case round < l.segBEnd:
		return 2, round - l.segAEnd
	case round < l.segCEnd:
		return 3, round - l.segBEnd
	case round < l.segDEnd:
		return 4, round - l.segCEnd
	default:
		return 5, 0
	}
}

// ringPeers returns (predecessor, successor-at-offset-k) for sub-phase
// k (1-based): the node this one inquires, and the node whose
// inquiries this one answers.
func (l *LinearConsensus) ringPeers(k int) (pred, succ int) {
	n := l.top.N
	return (l.id - k + n*((k/n)+1)) % n, (l.id + k) % n
}

// Send implements sim.Protocol (single message per round).
func (l *LinearConsensus) Send(round int) []sim.Envelope {
	seg, off := l.position(round)
	switch seg {
	case 1: // AEA Part 1 compiled
		if l.probing == nil {
			return nil
		}
		slot := off % (2 * l.d)
		if slot == 0 {
			first := off == 0
			if (first && l.candidate && !l.flooded) || l.pending {
				l.flooded = true
				l.pending = false
				l.floodNow = true
			} else {
				l.floodNow = false
			}
		}
		if l.floodNow && slot < l.d {
			if to := l.littleNeighbor(slot); to >= 0 {
				return []sim.Envelope{{From: l.id, To: to, Payload: sim.Bit(true)}}
			}
		}
		return nil
	case 2: // probing compiled
		if l.probing == nil {
			return nil
		}
		slot := off % (2 * l.d)
		if slot == 0 {
			l.probeNow = l.probing.Active()
			l.probeRecv = 0
		}
		if l.probeNow && slot < l.d {
			if to := l.littleNeighbor(slot); to >= 0 {
				return []sim.Envelope{{From: l.id, To: to, Payload: sim.Probe{Rumor: sim.Bit(l.candidate)}}}
			}
		}
		return nil
	case 3: // H spreading compiled
		slot := off % (2 * l.delta)
		if slot == 0 {
			l.hNow = l.decided && !l.hSent
			if l.hNow {
				l.hSent = true
			}
		}
		if l.hNow && slot < l.delta {
			if to := l.hNeighbor(slot); to >= 0 {
				return []sim.Envelope{{From: l.id, To: to, Payload: sim.Bit(l.decision)}}
			}
		}
		return nil
	case 4: // ring-pull sweep
		k := off/4 + 1
		pred, _ := l.ringPeers(k)
		switch off % 4 {
		case 0: // undecided inquire predecessor-at-k
			l.ringAsked = -1
			if !l.decided && pred != l.id {
				l.ringInquired = true
				return []sim.Envelope{{From: l.id, To: pred, Payload: sim.Inquiry{}}}
			}
			l.ringInquired = false
			return nil
		case 2: // respond to this sub-phase's inquirer
			if l.decided && l.ringAsked >= 0 {
				to := l.ringAsked
				l.ringAsked = -1
				return []sim.Envelope{{From: l.id, To: to, Payload: sim.Bit(l.decision)}}
			}
			return nil
		default:
			return nil
		}
	default:
		return nil
	}
}

// Poll implements sim.Poller.
func (l *LinearConsensus) Poll(round int) (sim.NodeID, bool) {
	seg, off := l.position(round)
	switch seg {
	case 1, 2:
		if l.probing == nil {
			return 0, false
		}
		slot := off % (2 * l.d)
		if slot >= l.d {
			if from := l.littleNeighbor(slot - l.d); from >= 0 {
				return from, true
			}
		}
		return 0, false
	case 3:
		slot := off % (2 * l.delta)
		if slot >= l.delta {
			if from := l.hNeighbor(slot - l.delta); from >= 0 {
				return from, true
			}
		}
		return 0, false
	case 4:
		k := off/4 + 1
		pred, succ := l.ringPeers(k)
		switch off % 4 {
		case 1: // listen for inquiries from the node k ahead
			if succ != l.id {
				return succ, true
			}
		case 3: // collect the response
			if l.ringInquired && pred != l.id {
				return pred, true
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

// Deliver implements sim.Protocol.
func (l *LinearConsensus) Deliver(round int, inbox []sim.Envelope) {
	seg, off := l.position(round)
	switch seg {
	case 1:
		for _, env := range inbox {
			if b, ok := env.Payload.(sim.Bit); ok && bool(b) && !l.candidate {
				l.candidate = true
				if !l.flooded {
					l.pending = true
				}
			}
		}
	case 2:
		for _, env := range inbox {
			if p, ok := env.Payload.(sim.Probe); ok {
				l.probeRecv++
				if bool(p.Rumor) && !l.candidate {
					l.candidate = true
				}
			}
		}
		if l.probing != nil && off%(2*l.d) == 2*l.d-1 {
			l.probing.Observe(l.probeRecv)
			if l.probing.Done() && l.probing.Survived() && !l.decided {
				l.decided = true
				l.decision = l.candidate
			}
		}
	case 3:
		for _, env := range inbox {
			if b, ok := env.Payload.(sim.Bit); ok && !l.decided {
				l.decided = true
				l.decision = bool(b)
			}
		}
	case 4:
		switch off % 4 {
		case 1:
			for _, env := range inbox {
				if _, ok := env.Payload.(sim.Inquiry); ok {
					l.ringAsked = env.From
				}
			}
		case 3:
			for _, env := range inbox {
				if b, ok := env.Payload.(sim.Bit); ok && !l.decided {
					l.decided = true
					l.decision = bool(b)
				}
			}
		}
	}
	if round == l.segDEnd-1 {
		l.halted = true
	}
}

// Halted implements sim.Protocol.
func (l *LinearConsensus) Halted() bool { return l.halted }

var (
	_ sim.Protocol = (*LinearConsensus)(nil)
	_ sim.Poller   = (*LinearConsensus)(nil)
)

// PartAt maps a single-port round to its compiled segment, for the
// engine's per-part message attribution.
func (l *LinearConsensus) PartAt(round int) string {
	switch seg, _ := l.position(round); seg {
	case 1:
		return "flood(2d)"
	case 2:
		return "probing(2d)"
	case 3:
		return "spread(2Δ)"
	case 4:
		return "ring-pull"
	default:
		return ""
	}
}
