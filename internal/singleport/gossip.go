package singleport

import (
	"fmt"
	"sort"

	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/expander"
	"lineartime/internal/gossip"
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// GossipSchedule compiles the Figure 5 gossip phases to the
// single-port model and is shared by every node of a run (the paper's
// "graphs known to every node"). Per phase i of each part the schedule
// reserves, with d_i the inquiry-overlay degree and d the little
// overlay degree:
//
//	Part 1: d_i inquiry-send slots, d_i inquiry-poll slots, d_i
//	  response-send slots, d_i response-poll slots, then γ·2d probing
//	  slots;
//	Part 2: d_i push-send slots, d_i push-poll slots, then γ·2d
//	  probing slots.
//
// Inquiry overlays are capped at degree Θ(t) (§8: scheduling O(t)
// links per node suffices), so the total is O(t + log n·log t·d)
// single-port rounds — the "similar asymptotic running time" of the
// multi-port Theorem 9 plus the port-multiplexing constants.
type GossipSchedule struct {
	Top    *consensus.Topology
	Family *expander.InquiryFamily

	phases int
	blocks []gossipBlock
	total  int
}

type blockKind int

const (
	blockInqSend blockKind = iota + 1
	blockInqPoll
	blockRespSend
	blockRespPoll
	blockPushSend
	blockPushPoll
	blockProbe
)

type gossipBlock struct {
	kind    blockKind
	part    int // 1 or 2
	phase   int // 0-based
	start   int
	length  int
	overlay *expander.Overlay // inquiry overlay for non-probe blocks
}

// NewGossipSchedule builds the shared schedule for n nodes and crash
// bound t (t < n/5), deterministically from the topology seed.
func NewGossipSchedule(top *consensus.Topology, seed uint64) (*GossipSchedule, error) {
	cap := 8 * top.T
	if cap < 64 {
		cap = 64
	}
	fam := expander.NewCappedInquiryFamily(top.N, 8, cap, seed+31)
	s := &GossipSchedule{Top: top, Family: fam}
	s.phases = expander.CeilLog2(top.N)
	if s.phases < 1 {
		s.phases = 1
	}
	d := top.Little.P.Degree
	gamma := top.Little.P.Gamma
	pos := 0
	add := func(kind blockKind, part, phase, length int, overlay *expander.Overlay) {
		s.blocks = append(s.blocks, gossipBlock{
			kind: kind, part: part, phase: phase, start: pos, length: length, overlay: overlay,
		})
		pos += length
	}
	for part := 1; part <= 2; part++ {
		for phase := 0; phase < s.phases; phase++ {
			overlay, err := fam.Phase(phase + 1)
			if err != nil {
				return nil, fmt.Errorf("single-port gossip schedule: %w", err)
			}
			di := overlay.P.Degree
			if part == 1 {
				add(blockInqSend, part, phase, di, overlay)
				add(blockInqPoll, part, phase, di, overlay)
				add(blockRespSend, part, phase, di, overlay)
				add(blockRespPoll, part, phase, di, overlay)
			} else {
				add(blockPushSend, part, phase, di, overlay)
				add(blockPushPoll, part, phase, di, overlay)
			}
			add(blockProbe, part, phase, gamma*2*d, nil)
		}
	}
	s.total = pos
	return s, nil
}

// Length returns the total single-port round count.
func (s *GossipSchedule) Length() int { return s.total }

// locate returns the block containing the round and the offset within.
func (s *GossipSchedule) locate(round int) (*gossipBlock, int) {
	i := sort.Search(len(s.blocks), func(i int) bool {
		return s.blocks[i].start+s.blocks[i].length > round
	})
	if i >= len(s.blocks) {
		return nil, 0
	}
	b := &s.blocks[i]
	return b, round - b.start
}

// SPGossip is the single-port per-node gossip machine.
type SPGossip struct {
	id       int
	schedule *GossipSchedule

	extant     *gossip.ExtantSet
	completion []bool

	probing      *probe.Probing
	survivedPrev bool
	probeRecv    int

	// inquired[k] marks that inquiry-overlay neighbor k inquired this
	// node in the current phase.
	inquired []bool
	// pushSnapshot is the extant snapshot shared by this phase's pushes.
	pushSnapshot      *gossip.ExtantSet
	pushSnapshotPhase int

	halted bool
}

// NewSPGossip creates the single-port gossip machine for node id.
func NewSPGossip(id int, schedule *GossipSchedule, rumor gossip.Rumor) *SPGossip {
	top := schedule.Top
	g := &SPGossip{
		id:                id,
		schedule:          schedule,
		extant:            gossip.NewExtantSet(top.N),
		survivedPrev:      true,
		pushSnapshotPhase: -1,
	}
	g.extant.Update(id, rumor)
	if top.IsLittle(id) {
		g.probing = probe.New(top.Little.Neighbors(id), top.Little.P.Gamma, top.Little.P.Delta)
		g.completion = make([]bool, top.N)
		g.completion[id] = true
	}
	return g
}

// ScheduleLength returns the protocol's fixed round count.
func (g *SPGossip) ScheduleLength() int { return g.schedule.Length() }

// Extant returns the node's extant set (the decided output).
func (g *SPGossip) Extant() *gossip.ExtantSet { return g.extant }

func (g *SPGossip) neighborAt(b *gossipBlock, slot int) int {
	nbrs := b.overlay.Neighbors(g.id)
	if slot < 0 || slot >= len(nbrs) {
		return -1
	}
	return nbrs[slot]
}

func (g *SPGossip) littleNeighborAt(slot int) int {
	nbrs := g.schedule.Top.Little.Neighbors(g.id)
	if slot < 0 || slot >= len(nbrs) {
		return -1
	}
	return nbrs[slot]
}

func (g *SPGossip) little() bool { return g.probing != nil }

// eligible reports whether the node may initiate in this phase (§5:
// survived the previous phase's probing, unconditional in phase 0).
func (g *SPGossip) eligible(phase int) bool {
	return g.little() && (phase == 0 || g.survivedPrev)
}

// Send implements sim.Protocol.
func (g *SPGossip) Send(round int) []sim.Envelope {
	b, off := g.schedule.locate(round)
	if b == nil {
		return nil
	}
	switch b.kind {
	case blockInqSend:
		if off == 0 {
			g.resetInquired(b)
		}
		if !g.eligible(b.phase) {
			return nil
		}
		to := g.neighborAt(b, off)
		if to >= 0 && !g.extant.Present(to) {
			return []sim.Envelope{{From: g.id, To: to, Payload: sim.Inquiry{}}}
		}
	case blockRespSend:
		to := g.neighborAt(b, off)
		if to >= 0 && off < len(g.inquired) && g.inquired[off] {
			return []sim.Envelope{{From: g.id, To: to,
				Payload: gossip.PairPayload{Node: g.id, Value: g.extant.Rumor(g.id)}}}
		}
	case blockPushSend:
		if !g.eligible(b.phase) {
			return nil
		}
		to := g.neighborAt(b, off)
		if to >= 0 && !g.completion[to] {
			g.completion[to] = true
			if g.pushSnapshotPhase != b.phase {
				g.pushSnapshot = g.extant.Clone()
				g.pushSnapshotPhase = b.phase
			}
			return []sim.Envelope{{From: g.id, To: to, Payload: gossip.ExtantPayload{Set: g.pushSnapshot}}}
		}
	case blockProbe:
		if !g.little() {
			return nil
		}
		d := g.schedule.Top.Little.P.Degree
		slot := off % (2 * d)
		if slot == 0 && off == 0 {
			g.probeRecv = 0
		}
		if slot < d && g.probing.Active() {
			if to := g.littleNeighborAt(slot); to >= 0 {
				var payload sim.Payload
				if b.part == 1 {
					payload = gossip.ExtantPayload{Set: g.extant.Clone()}
				} else {
					payload = gossip.CompletionPayload{Set: completionSet(g.completion)}
				}
				return []sim.Envelope{{From: g.id, To: to, Payload: payload}}
			}
		}
	}
	return nil
}

func (g *SPGossip) resetInquired(b *gossipBlock) {
	need := b.overlay.P.Degree
	if cap(g.inquired) < need {
		g.inquired = make([]bool, need)
		return
	}
	g.inquired = g.inquired[:need]
	for i := range g.inquired {
		g.inquired[i] = false
	}
}

// Poll implements sim.Poller.
func (g *SPGossip) Poll(round int) (sim.NodeID, bool) {
	b, off := g.schedule.locate(round)
	if b == nil {
		return 0, false
	}
	switch b.kind {
	case blockInqPoll, blockPushPoll:
		if from := g.neighborAt(b, off); from >= 0 {
			return from, true
		}
	case blockRespPoll:
		if g.little() {
			if from := g.neighborAt(b, off); from >= 0 {
				return from, true
			}
		}
	case blockProbe:
		if g.little() {
			d := g.schedule.Top.Little.P.Degree
			slot := off % (2 * d)
			if slot >= d {
				if from := g.littleNeighborAt(slot - d); from >= 0 {
					return from, true
				}
			}
		}
	}
	return 0, false
}

// Deliver implements sim.Protocol.
func (g *SPGossip) Deliver(round int, inbox []sim.Envelope) {
	b, off := g.schedule.locate(round)
	if b != nil {
		switch b.kind {
		case blockInqPoll:
			for _, env := range inbox {
				if _, ok := env.Payload.(sim.Inquiry); ok {
					if k := g.neighborIndex(b, env.From); k >= 0 && k < len(g.inquired) {
						g.inquired[k] = true
					}
				}
			}
		case blockRespPoll:
			for _, env := range inbox {
				if p, ok := env.Payload.(gossip.PairPayload); ok {
					g.extant.Update(p.Node, p.Value)
				}
			}
		case blockPushPoll:
			for _, env := range inbox {
				if p, ok := env.Payload.(gossip.ExtantPayload); ok {
					g.extant.MergeFrom(p.Set)
				}
			}
		case blockProbe:
			if g.little() {
				for _, env := range inbox {
					switch p := env.Payload.(type) {
					case gossip.ExtantPayload:
						g.probeRecv++
						g.extant.MergeFrom(p.Set)
					case gossip.CompletionPayload:
						g.probeRecv++
						p.Set.ForEach(func(v int) { g.completion[v] = true })
					}
				}
				d := g.schedule.Top.Little.P.Degree
				if off%(2*d) == 2*d-1 {
					g.probing.Observe(g.probeRecv)
					g.probeRecv = 0
					if g.probing.Done() {
						g.survivedPrev = g.probing.Survived()
						g.probing.Reset()
					}
				}
			}
		}
	}
	if round == g.schedule.Length()-1 {
		g.halted = true
	}
}

// neighborIndex returns the index of `from` in this node's adjacency
// of the block's overlay, or -1.
func (g *SPGossip) neighborIndex(b *gossipBlock, from int) int {
	nbrs := b.overlay.Neighbors(g.id)
	i := sort.SearchInts(nbrs, from)
	if i < len(nbrs) && nbrs[i] == from {
		return i
	}
	return -1
}

// Halted implements sim.Protocol.
func (g *SPGossip) Halted() bool { return g.halted }

// completionSet snapshots a completion vector as a bit set.
func completionSet(completion []bool) *bitset.Set {
	s := bitset.New(len(completion))
	for i, ok := range completion {
		if ok {
			s.Add(i)
		}
	}
	return s
}

var (
	_ sim.Protocol = (*SPGossip)(nil)
	_ sim.Poller   = (*SPGossip)(nil)
)
