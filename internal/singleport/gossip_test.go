package singleport

import (
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/gossip"
	"lineartime/internal/sim"
)

func runSPGossip(t *testing.T, n, tt int, adv sim.LinkFault, seed uint64) ([]*SPGossip, *sim.Result) {
	t.Helper()
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewGossipSchedule(top, seed)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*SPGossip, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewSPGossip(i, sched, gossip.Rumor(1000+i))
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{
		Protocols:  ps,
		Fault:      adv,
		MaxRounds:  sched.Length() + 5,
		SinglePort: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

func checkSPGossip(t *testing.T, ms []*SPGossip, res *sim.Result, silent []int) {
	t.Helper()
	silentSet := make(map[int]bool, len(silent))
	for _, v := range silent {
		silentSet[v] = true
	}
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		e := m.Extant()
		for j := range ms {
			switch {
			case silentSet[j]:
				if e.Present(j) {
					t.Fatalf("node %d includes silently-crashed %d", i, j)
				}
			case !res.Crashed.Contains(j):
				if !e.Present(j) {
					t.Fatalf("node %d misses operational %d", i, j)
				}
				if e.Rumor(j) != gossip.Rumor(1000+j) {
					t.Fatalf("node %d has wrong rumor for %d", i, j)
				}
			}
		}
	}
}

func TestSPGossipNoFaults(t *testing.T) {
	ms, res := runSPGossip(t, 60, 12, nil, 1)
	checkSPGossip(t, ms, res, nil)
}

func TestSPGossipSilentCrashes(t *testing.T) {
	n, tt := 60, 12
	var events []crash.Event
	var silent []int
	for i := 0; i < tt; i++ {
		v := 4 + 4*i
		events = append(events, crash.Event{Node: v, Round: 0, Keep: 0})
		silent = append(silent, v)
	}
	ms, res := runSPGossip(t, n, tt, crash.NewSchedule(events), 2)
	checkSPGossip(t, ms, res, silent)
}

func TestSPGossipRandomCrashes(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		ms, res := runSPGossip(t, 50, 10, crash.NewRandom(50, 10, 100, seed), seed+5)
		checkSPGossip(t, ms, res, nil)
	}
}

func TestSPGossipShape(t *testing.T) {
	// Theorem 9 adapted to single-port (§8): rounds O(t + log n·log t·d)
	// with the capped inquiry degrees; messages identical in shape to
	// the multi-port run.
	n, tt := 100, 20
	ms, res := runSPGossip(t, n, tt, nil, 9)
	sched := ms[0].schedule
	if res.Metrics.Rounds != sched.Length() {
		t.Fatalf("rounds = %d, want schedule %d", res.Metrics.Rounds, sched.Length())
	}
	// Schedule bound: 2 parts × ⌈lg n⌉ phases × (4·cap + γ·2d).
	top := sched.Top
	cap := 8 * tt
	if cap < 64 {
		cap = 64
	}
	limit := 2 * 7 * (4*cap + top.Little.P.Gamma*2*top.Little.P.Degree)
	if sched.Length() > limit {
		t.Fatalf("schedule %d exceeds structural bound %d", sched.Length(), limit)
	}
}

func TestSPGossipSinglePortDiscipline(t *testing.T) {
	// A clean run certifies ≤1 send per round (engine enforces).
	ms, res := runSPGossip(t, 40, 8, nil, 3)
	if res.Metrics.Rounds == 0 || len(ms) == 0 {
		t.Fatal("no run")
	}
}
