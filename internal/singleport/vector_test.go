package singleport

import (
	"testing"

	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func TestSPVectorConsensusAgreement(t *testing.T) {
	n, tt := 50, 10
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*SPVectorConsensus, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		in := bitset.New(n)
		in.Add(i)
		in.Add(n - 1)
		ms[i] = NewSPVectorConsensus(i, top, in)
		ps[i] = ms[i]
	}
	_, err = sim.Run(sim.Config{
		Protocols:  ps,
		MaxRounds:  ms[0].ScheduleLength() + 5,
		SinglePort: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var agreed *bitset.Set
	for i, m := range ms {
		set, ok := m.Decision()
		if !ok {
			t.Fatalf("node %d undecided", i)
		}
		if !set.Contains(n - 1) {
			t.Fatalf("node %d misses the unanimously-seeded instance", i)
		}
		if agreed == nil {
			agreed = set
		} else if !agreed.Equal(set) {
			t.Fatal("vector decisions differ")
		}
	}
	// Little-node seeds flood through the little overlay.
	for j := 0; j < top.L; j++ {
		if !agreed.Contains(j) {
			t.Fatalf("little instance %d missing", j)
		}
	}
}

func runSPCheckpointing(t *testing.T, n, tt int, adv sim.LinkFault, seed uint64) ([]*SPCheckpointing, *sim.Result) {
	t.Helper()
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewGossipSchedule(top, seed)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*SPCheckpointing, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewSPCheckpointing(i, sched)
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{
		Protocols:  ps,
		Fault:      adv,
		MaxRounds:  ms[0].ScheduleLength() + 5,
		SinglePort: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

func TestSPCheckpointingNoFaults(t *testing.T) {
	n, tt := 50, 10
	ms, res := runSPCheckpointing(t, n, tt, nil, 1)
	var agreed *bitset.Set
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		set, ok := m.Decision()
		if !ok {
			t.Fatalf("node %d undecided", i)
		}
		if set.Count() != n {
			t.Fatalf("node %d extant set has %d members, want %d", i, set.Count(), n)
		}
		if agreed == nil {
			agreed = set
		} else if !agreed.Equal(set) {
			t.Fatal("extant sets differ")
		}
	}
}

func TestSPCheckpointingSilentCrashes(t *testing.T) {
	n, tt := 50, 10
	var events []crash.Event
	silent := map[int]bool{}
	for i := 0; i < tt; i++ {
		v := 3 + 4*i
		events = append(events, crash.Event{Node: v, Round: 0, Keep: 0})
		silent[v] = true
	}
	ms, res := runSPCheckpointing(t, n, tt, crash.NewSchedule(events), 2)
	var agreed *bitset.Set
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		set, ok := m.Decision()
		if !ok {
			t.Fatalf("node %d undecided", i)
		}
		for j := 0; j < n; j++ {
			if silent[j] && set.Contains(j) {
				t.Fatalf("node %d includes silently-crashed %d", i, j)
			}
			if !res.Crashed.Contains(j) && !set.Contains(j) {
				t.Fatalf("node %d misses operational %d", i, j)
			}
		}
		if agreed == nil {
			agreed = set
		} else if !agreed.Equal(set) {
			t.Fatal("extant sets differ under crashes")
		}
	}
}

func TestSPCheckpointingRandomCrashes(t *testing.T) {
	for seed := uint64(0); seed < 2; seed++ {
		n, tt := 40, 8
		ms, res := runSPCheckpointing(t, n, tt, crash.NewRandom(n, tt, 200, seed), seed+9)
		var agreed *bitset.Set
		for i, m := range ms {
			if res.Crashed.Contains(i) {
				continue
			}
			set, ok := m.Decision()
			if !ok {
				t.Fatalf("seed %d: node %d undecided", seed, i)
			}
			for j := 0; j < n; j++ {
				if !res.Crashed.Contains(j) && !set.Contains(j) {
					t.Fatalf("seed %d: node %d misses operational %d", seed, i, j)
				}
			}
			if agreed == nil {
				agreed = set
			} else if !agreed.Equal(set) {
				t.Fatalf("seed %d: disagreement", seed)
			}
		}
	}
}
