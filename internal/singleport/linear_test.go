package singleport

import (
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/rng"
	"lineartime/internal/sim"
)

func runLinear(t *testing.T, n, tt int, inputs []bool, adv sim.LinkFault, seed uint64) ([]*LinearConsensus, *sim.Result) {
	t.Helper()
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*LinearConsensus, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = New(i, top, inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{
		Protocols:  ps,
		Fault:      adv,
		MaxRounds:  ms[0].ScheduleLength() + 5,
		SinglePort: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

func randomInputs(n int, seed uint64) []bool {
	r := rng.New(seed)
	in := make([]bool, n)
	for i := range in {
		in[i] = r.Intn(2) == 1
	}
	return in
}

func checkConsensus(t *testing.T, label string, inputs []bool, ms []*LinearConsensus, res *sim.Result) {
	t.Helper()
	any0, any1 := false, false
	for _, b := range inputs {
		if b {
			any1 = true
		} else {
			any0 = true
		}
	}
	var agreed *bool
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		v, ok := m.Decision()
		if !ok {
			t.Fatalf("%s: node %d undecided", label, i)
		}
		if v && !any1 || !v && !any0 {
			t.Fatalf("%s: node %d decided %v, not an input", label, i, v)
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Fatalf("%s: disagreement", label)
		}
	}
	if agreed == nil {
		t.Fatalf("%s: everyone crashed", label)
	}
}

func TestLinearConsensusNoFaults(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		n, tt := 50, 10
		inputs := randomInputs(n, seed)
		ms, res := runLinear(t, n, tt, inputs, nil, seed)
		checkConsensus(t, "no-faults", inputs, ms, res)
	}
}

func TestLinearConsensusAllSameInput(t *testing.T) {
	n, tt := 50, 10
	for _, val := range []bool{false, true} {
		inputs := make([]bool, n)
		for i := range inputs {
			inputs[i] = val
		}
		ms, res := runLinear(t, n, tt, inputs, nil, 3)
		for i, m := range ms {
			if res.Crashed.Contains(i) {
				continue
			}
			if v, ok := m.Decision(); !ok || v != val {
				t.Fatalf("node %d decided %v/%v, want %v", i, v, ok, val)
			}
		}
	}
}

func TestLinearConsensusWithCrashes(t *testing.T) {
	n, tt := 50, 10
	for seed := uint64(0); seed < 4; seed++ {
		inputs := randomInputs(n, seed+10)
		adv := crash.NewRandom(n, tt, 200, seed)
		ms, res := runLinear(t, n, tt, inputs, adv, seed+20)
		checkConsensus(t, "crashes", inputs, ms, res)
	}
}

func TestLinearConsensusLittleTargeted(t *testing.T) {
	n, tt := 60, 12
	inputs := randomInputs(n, 5)
	adv := crash.NewTargetLittle(5*tt, tt, 7)
	ms, res := runLinear(t, n, tt, inputs, adv, 6)
	checkConsensus(t, "little-targeted", inputs, ms, res)
}

func TestLinearConsensusSinglePortDiscipline(t *testing.T) {
	// The engine rejects any >1-message round in single-port mode, so
	// a clean completion certifies the discipline; this test exists to
	// pin that property explicitly.
	n, tt := 30, 6
	inputs := randomInputs(n, 9)
	_, res := runLinear(t, n, tt, inputs, nil, 11)
	if res.Metrics.Rounds == 0 {
		t.Fatal("no rounds executed")
	}
}

func TestLinearConsensusShape(t *testing.T) {
	// Theorem 12 shape: rounds O(t + log n), messages O(n + t log n).
	n, tt := 100, 20
	inputs := randomInputs(n, 13)
	ms, res := runLinear(t, n, tt, inputs, nil, 17)
	// Rounds: linear in t with the 2d/2∆ compilation constants.
	top := ms[0]
	if res.Metrics.Rounds != top.ScheduleLength() {
		t.Fatalf("rounds = %d, want schedule %d", res.Metrics.Rounds, top.ScheduleLength())
	}
	maxRounds := 2*16*(5*tt+20) + 2*64*(2*7+4) + 4*(6*tt+7+16) + 4096
	if res.Metrics.Rounds > maxRounds {
		t.Fatalf("rounds = %d above compiled O(t + log n) budget %d", res.Metrics.Rounds, maxRounds)
	}
	// Messages: flood ≤ L·d, probing ≤ L·d·γ, H ≤ n·∆, ring ≈ n.
	limit := int64(4 * (100*16*12 + n*64 + 2*n))
	if res.Metrics.Messages > limit {
		t.Fatalf("messages = %d above O(n + t log n) budget %d", res.Metrics.Messages, limit)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	top, err := consensus.NewTopology(40, 8, consensus.TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(0, top, true), New(7, top, false)
	if a.ScheduleLength() != b.ScheduleLength() {
		t.Fatal("nodes disagree on schedule length")
	}
}

func TestLinearConsensusCascadeAdversary(t *testing.T) {
	// The cascade worst case (one crash per round, single message
	// leaked) hits the compiled flood segment round after round.
	n, tt := 50, 10
	inputs := randomInputs(n, 21)
	adv := crash.NewCascade(n, tt, 1, 23)
	ms, res := runLinear(t, n, tt, inputs, adv, 25)
	checkConsensus(t, "cascade", inputs, ms, res)
}

func TestLinearConsensusAllCrashButLittleSurvivors(t *testing.T) {
	// The budget lands entirely on non-little nodes: the little
	// overlay stays intact, so the decision machinery is unharmed and
	// only the spreading segments are exercised by the losses.
	n, tt := 50, 10
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if top.L >= n {
		t.Skip("no non-little nodes at this (n, t)")
	}
	var events []crash.Event
	for i := 0; i < tt && top.L+i < n; i++ {
		events = append(events, crash.Event{Node: top.L + i, Round: 2 * i, Keep: 0})
	}
	inputs := randomInputs(n, 33)
	ms, res := runLinear(t, n, tt, inputs, crash.NewSchedule(events), 31)
	checkConsensus(t, "non-little-crashes", inputs, ms, res)
}

func TestLinearMatchesMultiPortDecision(t *testing.T) {
	// The single-port compilation must reach the same decision value
	// as the multi-port Few-Crashes stack on the same topology and
	// inputs: both decide the OR of the little inputs propagated over
	// the same little overlay.
	n, tt := 60, 12
	for seed := uint64(1); seed <= 3; seed++ {
		top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		inputs := randomInputs(n, seed*13)

		multi := make([]sim.Protocol, n)
		var multiRef *consensus.FewCrashes
		for i := 0; i < n; i++ {
			m := consensus.NewFewCrashes(i, top, inputs[i])
			multi[i] = m
			multiRef = m
		}
		if _, err := sim.Run(sim.Config{Protocols: multi, MaxRounds: multiRef.ScheduleLength() + 4}); err != nil {
			t.Fatal(err)
		}
		mv, ok := multiRef.Decision()
		if !ok {
			t.Fatal("multi-port undecided")
		}

		single := make([]sim.Protocol, n)
		var singleRef *LinearConsensus
		for i := 0; i < n; i++ {
			m := New(i, top, inputs[i])
			single[i] = m
			singleRef = m
		}
		if _, err := sim.Run(sim.Config{
			Protocols: single, MaxRounds: singleRef.ScheduleLength() + 4, SinglePort: true,
		}); err != nil {
			t.Fatal(err)
		}
		sv, ok := singleRef.Decision()
		if !ok {
			t.Fatal("single-port undecided")
		}
		if mv != sv {
			t.Fatalf("seed %d: multi-port decided %v, single-port %v", seed, mv, sv)
		}
	}
}
