package crash

import (
	"testing"

	"lineartime/internal/sim"
)

func TestAdaptiveTargetsBusiest(t *testing.T) {
	a := NewAdaptive(2, 1)
	// Round 0: node 7 sends a burst, others quiet. Node order matters:
	// the adversary sees sends in id order, so feed low ids first.
	for id := 0; id < 7; id++ {
		if _, crash := a.FilterSend(0, id, envs(id, 1)); crash && id != 0 {
			t.Fatalf("node %d crashed before the burst", id)
		}
	}
	out, crash := a.FilterSend(0, 7, envs(7, 10))
	if !crash {
		// Node 0 may have been the first victim (all counts equal at
		// its turn); then node 7 falls in a later round.
		if _, crash2 := a.FilterSend(1, 7, envs(7, 10)); !crash2 {
			t.Fatal("busiest node never crashed")
		}
		return
	}
	if len(out) != 1 {
		t.Fatalf("crash kept %d messages, want 1", len(out))
	}
}

func TestAdaptiveBudgetAndPeriod(t *testing.T) {
	a := NewAdaptive(3, 5)
	crashes := 0
	for round := 0; round < 40; round++ {
		for id := 0; id < 10; id++ {
			if _, crash := a.FilterSend(round, id, envs(id, 2)); crash {
				crashes++
			}
		}
	}
	if crashes != 3 {
		t.Fatalf("crashes = %d, want budget 3", crashes)
	}
}

func TestAdaptivePeriodSpacing(t *testing.T) {
	a := NewAdaptive(10, 4)
	var rounds []int
	for round := 0; round < 30; round++ {
		for id := 0; id < 6; id++ {
			if _, crash := a.FilterSend(round, id, envs(id, 2)); crash {
				rounds = append(rounds, round)
			}
		}
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i]-rounds[i-1] < 4 {
			t.Fatalf("crashes at rounds %v violate the period", rounds)
		}
	}
	if len(rounds) == 0 {
		t.Fatal("no crashes at all")
	}
}

func TestAdaptiveNeverDoubleCrashes(t *testing.T) {
	a := NewAdaptive(5, 1)
	victims := map[sim.NodeID]int{}
	for round := 0; round < 20; round++ {
		for id := 0; id < 4; id++ {
			if _, crash := a.FilterSend(round, id, envs(id, 1)); crash {
				victims[id]++
			}
		}
	}
	for id, c := range victims {
		if c > 1 {
			t.Fatalf("node %d crashed %d times", id, c)
		}
	}
}
