package crash

import (
	"testing"

	"lineartime/internal/sim"
)

func envs(from, k int) []sim.Envelope {
	out := make([]sim.Envelope, k)
	for i := range out {
		out[i] = sim.Envelope{From: from, To: (from + i + 1) % 100, Payload: sim.Bit(true)}
	}
	return out
}

func TestScheduleCrashAndKeep(t *testing.T) {
	s := NewSchedule([]Event{
		{Node: 3, Round: 2, Keep: 1},
		{Node: 4, Round: 2, Keep: -1},
	})
	if s.Total() != 2 {
		t.Fatalf("Total = %d, want 2", s.Total())
	}

	out, crash := s.FilterSend(2, 3, envs(3, 5))
	if !crash || len(out) != 1 {
		t.Fatalf("node 3: crash=%v len=%d, want true/1", crash, len(out))
	}
	out, crash = s.FilterSend(2, 4, envs(4, 5))
	if !crash || len(out) != 5 {
		t.Fatalf("node 4: crash=%v len=%d, want true/5 (keep all)", crash, len(out))
	}
	out, crash = s.FilterSend(1, 3, envs(3, 5))
	if crash || len(out) != 5 {
		t.Fatal("node 3 crashed in wrong round")
	}
	_, crash = s.FilterSend(2, 9, envs(9, 2))
	if crash {
		t.Fatal("unscheduled node crashed")
	}
}

func TestScheduleDeduplicates(t *testing.T) {
	s := NewSchedule([]Event{
		{Node: 1, Round: 0},
		{Node: 1, Round: 5},
	})
	if s.Total() != 1 {
		t.Fatalf("Total = %d, want 1 after dedup", s.Total())
	}
}

func TestRandomBudget(t *testing.T) {
	a := NewRandom(50, 10, 20, 1)
	crashes := 0
	for r := 0; r < 20; r++ {
		for id := 0; id < 50; id++ {
			if _, crash := a.FilterSend(r, id, envs(id, 3)); crash {
				crashes++
			}
		}
	}
	if crashes > 10 {
		t.Fatalf("random adversary crashed %d > 10 nodes", crashes)
	}
	if crashes == 0 {
		t.Fatal("random adversary crashed nobody")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := NewRandom(30, 8, 10, 7), NewRandom(30, 8, 10, 7)
	for r := 0; r < 10; r++ {
		for id := 0; id < 30; id++ {
			oa, ca := a.FilterSend(r, id, envs(id, 4))
			ob, cb := b.FilterSend(r, id, envs(id, 4))
			if ca != cb || len(oa) != len(ob) {
				t.Fatalf("random adversaries with equal seeds diverged at r=%d id=%d", r, id)
			}
		}
	}
}

func TestCascadeOnePerRound(t *testing.T) {
	a := NewCascade(20, 5, 1, 3)
	perRound := make(map[int]int)
	total := 0
	for r := 0; r < 10; r++ {
		for id := 0; id < 20; id++ {
			if out, crash := a.FilterSend(r, id, envs(id, 4)); crash {
				perRound[r]++
				total++
				if len(out) != 1 {
					t.Fatalf("cascade keep=1 delivered %d", len(out))
				}
			}
		}
	}
	if total != 5 {
		t.Fatalf("cascade crashed %d nodes, want 5", total)
	}
	for r, c := range perRound {
		if c != 1 {
			t.Fatalf("round %d had %d crashes, want 1", r, c)
		}
	}
}

func TestTargetLittleRoundZeroOnly(t *testing.T) {
	a := NewTargetLittle(10, 4, 5)
	crashes := 0
	for id := 0; id < 10; id++ {
		if out, crash := a.FilterSend(0, id, envs(id, 3)); crash {
			crashes++
			if len(out) != 0 {
				t.Fatal("target-little delivered messages from a crashed node")
			}
		}
	}
	if crashes != 4 {
		t.Fatalf("crashed %d little nodes, want 4", crashes)
	}
	for id := 0; id < 10; id++ {
		if _, crash := a.FilterSend(1, id, envs(id, 3)); crash {
			t.Fatal("target-little crashed after round 0")
		}
	}
}

func TestIsolateBlocksContact(t *testing.T) {
	const victim = 7
	a := NewIsolate(victim, 4)

	// Victim's own sends are suppressed while budget lasts.
	out, crash := a.FilterSend(0, victim, envs(victim, 2))
	if crash {
		t.Fatal("victim was crashed")
	}
	if len(out) != 0 {
		t.Fatalf("victim delivered %d messages, want 0", len(out))
	}

	// A node sending to the victim is crashed.
	in := []sim.Envelope{{From: 3, To: victim, Payload: sim.Bit(true)}}
	out, crash = a.FilterSend(1, 3, in)
	if !crash || len(out) != 0 {
		t.Fatalf("contacting node not crashed: crash=%v len=%d", crash, len(out))
	}

	// Budget exhausted (2 spent on victim sends, 1 on node 3): one more
	// allowed, then contact goes through.
	_, crash = a.FilterSend(2, 4, in)
	if !crash {
		t.Fatal("fourth budget unit not spent")
	}
	out, crash = a.FilterSend(3, 5, []sim.Envelope{{From: 5, To: victim, Payload: sim.Bit(true)}})
	if crash || len(out) != 1 {
		t.Fatal("exhausted adversary still intercepting")
	}
}
