package crash

import (
	"sort"

	"lineartime/internal/sim"
)

// Adaptive is the strongest adversary the model admits (§2: the
// adversary sees the algorithm and the execution): it watches the
// traffic and crashes, every `period` rounds, the alive node that has
// sent the most messages so far — decapitating whatever backbone the
// protocol is building — until the budget t is spent. Each crash keeps
// a one-message prefix, the information-leak minimum.
type Adaptive struct {
	budget int
	period int

	sent    map[sim.NodeID]int
	crashed map[sim.NodeID]bool
	last    int // round of the most recent crash, -1 initially
}

// NewAdaptive creates the adversary with crash budget t, striking at
// most once every period rounds (period ≥ 1).
func NewAdaptive(t, period int) *Adaptive {
	if period < 1 {
		period = 1
	}
	return &Adaptive{
		budget:  t,
		period:  period,
		sent:    make(map[sim.NodeID]int),
		crashed: make(map[sim.NodeID]bool),
		last:    -1,
	}
}

// FilterSend implements sim.LinkFault.
func (a *Adaptive) FilterSend(round int, from sim.NodeID, outbox []sim.Envelope) ([]sim.Envelope, bool) {
	a.sent[from] += len(outbox)
	if a.budget <= 0 || a.crashed[from] {
		return outbox, false
	}
	if a.last >= 0 && round-a.last < a.period {
		return outbox, false
	}
	if from != a.busiest() {
		return outbox, false
	}
	a.budget--
	a.crashed[from] = true
	a.last = round
	if len(outbox) > 1 {
		return outbox[:1], true
	}
	return outbox, true
}

// busiest returns the alive node with the highest send count
// (deterministic tie-break by id).
func (a *Adaptive) busiest() sim.NodeID {
	ids := make([]sim.NodeID, 0, len(a.sent))
	for id := range a.sent {
		if !a.crashed[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	best, bestCount := sim.NodeID(-1), -1
	for _, id := range ids {
		if a.sent[id] > bestCount {
			best, bestCount = id, a.sent[id]
		}
	}
	return best
}

var _ sim.LinkFault = (*Adaptive)(nil)
