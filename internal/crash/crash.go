// Package crash provides the adversary strategies used to exercise the
// fault-tolerance of the algorithms. The paper's adversary (§2) knows
// the algorithm, picks which ≤ t nodes crash and when, and may cut a
// crashing node's final multicast short so only a chosen subset of its
// last messages is delivered. Each strategy here is deterministic
// given its seed, so every experiment is reproducible.
package crash

import (
	"sort"

	"lineartime/internal/rng"
	"lineartime/internal/sim"
)

// Event schedules one crash: the node fails at Round and only the
// first Keep of its outgoing messages that round are delivered
// (Keep < 0 keeps all of them — "crash after send").
type Event struct {
	Node  sim.NodeID
	Round int
	Keep  int
}

// Schedule is a fixed crash schedule, the most direct rendering of the
// paper's existential adversary: tests construct the exact pattern a
// proof reasons about.
type Schedule struct {
	byRound map[int][]Event
	total   int
}

// NewSchedule builds a schedule from events. Multiple events may share
// a round; duplicate nodes are allowed and ignored after the first.
func NewSchedule(events []Event) *Schedule {
	s := &Schedule{byRound: make(map[int][]Event, len(events))}
	seen := make(map[sim.NodeID]bool, len(events))
	for _, e := range events {
		if seen[e.Node] {
			continue
		}
		seen[e.Node] = true
		s.byRound[e.Round] = append(s.byRound[e.Round], e)
		s.total++
	}
	for r := range s.byRound {
		evs := s.byRound[r]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Node < evs[j].Node })
	}
	return s
}

// Total returns the number of scheduled crashes.
func (s *Schedule) Total() int { return s.total }

// FilterSend implements sim.LinkFault.
func (s *Schedule) FilterSend(round int, from sim.NodeID, outbox []sim.Envelope) ([]sim.Envelope, bool) {
	for _, e := range s.byRound[round] {
		if e.Node != from {
			continue
		}
		if e.Keep < 0 || e.Keep >= len(outbox) {
			return outbox, true
		}
		return outbox[:e.Keep], true
	}
	return outbox, false
}

// CrashEvents implements sim.CrashPlan: the schedule is its own
// declarative form. Events are returned sorted by (round, node).
func (s *Schedule) CrashEvents() []sim.CrashEvent {
	rounds := make([]int, 0, len(s.byRound))
	for r := range s.byRound {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	events := make([]sim.CrashEvent, 0, s.total)
	for _, r := range rounds {
		for _, e := range s.byRound[r] {
			events = append(events, sim.CrashEvent{Node: e.Node, Round: e.Round, Keep: e.Keep})
		}
	}
	return events
}

var _ sim.LinkFault = (*Schedule)(nil)
var _ sim.CrashPlan = (*Schedule)(nil)

// Random crashes up to t distinct nodes at pseudo-random rounds within
// [0, horizon), each keeping a pseudo-random prefix of its final
// outbox. It is the workload for the randomized safety sweeps.
type Random struct {
	schedule *Schedule
}

// NewRandom constructs a random adversary for n nodes, at most t
// crashes, crash rounds below horizon.
func NewRandom(n, t, horizon int, seed uint64) *Random {
	r := rng.New(seed)
	if t > n {
		t = n
	}
	perm := r.Perm(n)
	events := make([]Event, 0, t)
	for i := 0; i < t; i++ {
		keep := -1
		if r.Intn(2) == 0 {
			keep = r.Intn(8)
		}
		events = append(events, Event{
			Node:  perm[i],
			Round: r.Intn(horizon),
			Keep:  keep,
		})
	}
	return &Random{schedule: NewSchedule(events)}
}

// FilterSend implements sim.LinkFault.
func (a *Random) FilterSend(round int, from sim.NodeID, outbox []sim.Envelope) ([]sim.Envelope, bool) {
	return a.schedule.FilterSend(round, from, outbox)
}

// CrashEvents implements sim.CrashPlan.
func (a *Random) CrashEvents() []sim.CrashEvent { return a.schedule.CrashEvents() }

var _ sim.LinkFault = (*Random)(nil)
var _ sim.CrashPlan = (*Random)(nil)

// Cascade crashes one chosen node per round starting at round 0, the
// classic worst case that forces early-stopping consensus to run for
// f+2 rounds: each crash is timed to invalidate the previous round's
// progress. Victims are chosen deterministically from the seed,
// restricted to the first `pool` node names (use pool = 5t to target
// the little nodes, pool = n for everyone).
type Cascade struct {
	victims []sim.NodeID
	keep    int
}

// NewCascade schedules t crashes, one per round, drawn from the first
// pool node names. keep is the number of final-outbox messages each
// crashing node still delivers (the proofs use small values like 1 to
// leak information to exactly one neighbor).
func NewCascade(pool, t, keep int, seed uint64) *Cascade {
	r := rng.New(seed)
	if t > pool {
		t = pool
	}
	perm := r.Perm(pool)
	return &Cascade{victims: perm[:t], keep: keep}
}

// FilterSend implements sim.LinkFault.
func (a *Cascade) FilterSend(round int, from sim.NodeID, outbox []sim.Envelope) ([]sim.Envelope, bool) {
	if round < len(a.victims) && a.victims[round] == from {
		if a.keep < 0 || a.keep >= len(outbox) {
			return outbox, true
		}
		return outbox[:a.keep], true
	}
	return outbox, false
}

// CrashEvents implements sim.CrashPlan: victim i crashes at round i
// with the cascade's keep prefix.
func (a *Cascade) CrashEvents() []sim.CrashEvent {
	events := make([]sim.CrashEvent, 0, len(a.victims))
	for round, v := range a.victims {
		events = append(events, sim.CrashEvent{Node: v, Round: round, Keep: a.keep})
	}
	return events
}

var _ sim.LinkFault = (*Cascade)(nil)
var _ sim.CrashPlan = (*Cascade)(nil)

// TargetLittle crashes t of the 5t little nodes at round 0 before they
// send anything, the direct attack on the survival-set machinery of
// Theorem 2: the adversary spends its whole budget shrinking the
// little-node overlay.
type TargetLittle struct {
	victims map[sim.NodeID]bool
}

// NewTargetLittle picks t victims among the first little node names.
func NewTargetLittle(little, t int, seed uint64) *TargetLittle {
	r := rng.New(seed)
	if t > little {
		t = little
	}
	perm := r.Perm(little)
	victims := make(map[sim.NodeID]bool, t)
	for _, v := range perm[:t] {
		victims[v] = true
	}
	return &TargetLittle{victims: victims}
}

// FilterSend implements sim.LinkFault.
func (a *TargetLittle) FilterSend(round int, from sim.NodeID, outbox []sim.Envelope) ([]sim.Envelope, bool) {
	if round == 0 && a.victims[from] {
		return nil, true
	}
	return outbox, false
}

// CrashEvents implements sim.CrashPlan: every victim crashes at round 0
// before sending anything (Keep 0).
func (a *TargetLittle) CrashEvents() []sim.CrashEvent {
	nodes := make([]sim.NodeID, 0, len(a.victims))
	for v := range a.victims {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	events := make([]sim.CrashEvent, 0, len(nodes))
	for _, v := range nodes {
		events = append(events, sim.CrashEvent{Node: v, Round: 0, Keep: 0})
	}
	return events
}

var _ sim.LinkFault = (*TargetLittle)(nil)
var _ sim.CrashPlan = (*TargetLittle)(nil)

// Isolate cuts one chosen node off from the world: starting at round 0
// it crashes, round by round, every node that the victim sends to or
// that sends to the victim, up to a budget of t crashes — the
// adversary of the Ω(t) single-port lower bound (Theorem 13). The
// victim itself is never crashed.
type Isolate struct {
	victim  sim.NodeID
	budget  int
	crashed map[sim.NodeID]bool
}

// NewIsolate builds the isolation adversary around victim with budget t.
func NewIsolate(victim sim.NodeID, t int) *Isolate {
	return &Isolate{victim: victim, budget: t, crashed: make(map[sim.NodeID]bool)}
}

// FilterSend implements sim.LinkFault. Any node exchanging a message
// with the victim is crashed before the message is delivered, while
// messages from the victim are suppressed by crashing their recipients
// on first contact.
func (a *Isolate) FilterSend(round int, from sim.NodeID, outbox []sim.Envelope) ([]sim.Envelope, bool) {
	if from == a.victim {
		// The victim's messages vanish: every recipient is crashed at
		// its own send step this round (handled below when that node
		// sends) — but delivery happens this round, so we must cut the
		// victim's outbox directly. Crashing the victim is forbidden;
		// instead we spend budget crashing recipients, modelled as
		// dropping the victim's outbox while budget remains.
		drop := 0
		for range outbox {
			if a.budget > 0 {
				a.budget--
				drop++
			}
		}
		return outbox[drop:], false
	}
	for _, env := range outbox {
		if env.To == a.victim && a.budget > 0 && !a.crashed[from] {
			a.budget--
			a.crashed[from] = true
			return nil, true
		}
	}
	return outbox, false
}

var _ sim.LinkFault = (*Isolate)(nil)
