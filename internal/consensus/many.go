package consensus

import (
	"fmt"

	"lineartime/internal/expander"
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// ManyTopology bundles the overlays of Many-Crashes-Consensus (§4.4),
// which works for any 0 < t < n: a flooding/probing overlay G on all n
// nodes whose degree grows with α = t/n (the paper's d(α) = (4/(1−α))^8,
// scaled here), and the inquiry family G_i of degrees d_i ∝ 2^i.
type ManyTopology struct {
	N, T    int
	Alpha   float64
	Overlay *expander.Overlay
	Inquiry *expander.InquiryFamily
}

// NewManyTopology constructs the shared overlays for any 0 ≤ t < n.
func NewManyTopology(n, t int, opts TopologyOptions) (*ManyTopology, error) {
	if n < 2 {
		return nil, fmt.Errorf("consensus: need n ≥ 2, got %d", n)
	}
	if t < 0 || t >= n {
		return nil, fmt.Errorf("consensus: need 0 ≤ t < n, got t=%d n=%d", t, n)
	}
	alpha := float64(t) / float64(n)
	d := opts.Degree
	if d == 0 {
		// Scaled rendering of d(α) = (4/(1−α))^8: the degree must grow
		// as α → 1 so survival sets persist; we grow linearly in
		// 1/(1−α) instead of polynomially, capped at n−1.
		d = expander.DefaultDegree + int(16*alpha/(1-alpha+1e-9))
		if d > n-1 {
			d = n - 1
		}
	}
	overlay, err := expander.New(n, expander.Options{Degree: d, Seed: opts.Seed + 11, Family: opts.Mode.Family, Implicit: opts.Mode.Implicit})
	if err != nil {
		return nil, fmt.Errorf("many-crashes overlay: %w", err)
	}
	return &ManyTopology{
		N:       n,
		T:       t,
		Alpha:   alpha,
		Overlay: overlay,
		Inquiry: expander.NewInquiryFamily(n, 8, opts.Seed+13).WithMode(opts.Mode),
	}, nil
}

// inquiryPhases returns 1 + ⌈lg((1+3α)n/4)⌉ (Figure 4 Part 3), but at
// least the number of phases after which the inquiry degree saturates
// at n−1, so the final phases always reach every potential responder.
func (mt *ManyTopology) inquiryPhases() int {
	m := int((1 + 3*mt.Alpha) * float64(mt.N) / 4)
	if m < 1 {
		m = 1
	}
	p := 1 + expander.CeilLog2(m)
	if sat := mt.Inquiry.MaxPhases(); p < sat {
		p = sat
	}
	return p
}

// ManyCrashes is algorithm Many-Crashes-Consensus (Figure 4):
//
//	Part 1 (n−1 rounds): flood rumor 1 over G,
//	Part 2 (2+lg n rounds): local probing; survivors decide,
//	Part 3 (2·(1+⌈lg((1+3α)n/4)⌉) rounds): undecided nodes inquire over
//	  the growing graphs G_i and adopt responders' decisions.
//
// Theorem 8: consensus for any t < n in ≤ n + 3(1 + lg n) rounds with
// O(n·lg n / (1−α)^8) one-bit messages; Corollary 1 instantiates
// t = n − 1.
//
// DecideFallback (default on) adds the terminal rule "if still
// undecided when the schedule ends, decide the own candidate", which
// covers the extreme fault patterns (for example t = n−1 with every
// other node crashed at round 0) where the paper's galactic constants
// leave no survivor to answer inquiries; within any connected alive
// component candidates agree after Part 1, which is exactly the
// regime where those patterns arise.
type ManyCrashes struct {
	id  int
	top *ManyTopology

	candidate bool
	flooded   bool
	pending   bool
	probing   *probe.Probing

	decided  bool
	decision bool
	halted   bool

	inquirers []int

	fallback            bool
	p1End, p2End, p3End int
}

// NewManyCrashes creates the machine for node id with the given input.
func NewManyCrashes(id int, top *ManyTopology, input bool) *ManyCrashes {
	m := &ManyCrashes{
		id:        id,
		top:       top,
		candidate: input,
		fallback:  true,
	}
	m.p1End = top.N - 1
	if m.p1End < 1 {
		m.p1End = 1
	}
	gamma := top.Overlay.P.Gamma // 2 + ⌈lg n⌉
	m.p2End = m.p1End + gamma
	m.p3End = m.p2End + 2*top.inquiryPhases()
	m.probing = probe.New(top.Overlay.Neighbors(id), gamma, top.Overlay.P.Delta)
	return m
}

// SetDecideFallback toggles the terminal own-candidate rule.
func (m *ManyCrashes) SetDecideFallback(on bool) { m.fallback = on }

// ScheduleLength returns the protocol's fixed round count.
func (m *ManyCrashes) ScheduleLength() int { return m.p3End }

// Decision returns the consensus decision, if reached.
func (m *ManyCrashes) Decision() (value, ok bool) { return m.decision, m.decided }

// Send implements sim.Protocol.
func (m *ManyCrashes) Send(round int) []sim.Envelope {
	switch {
	case round < m.p1End:
		first := round == 0
		if (first && m.candidate && !m.flooded) || m.pending {
			m.flooded = true
			m.pending = false
			nbrs := m.top.Overlay.Neighbors(m.id)
			out := make([]sim.Envelope, 0, len(nbrs))
			for _, to := range nbrs {
				out = append(out, sim.Envelope{From: m.id, To: to, Payload: sim.Bit(true)})
			}
			return out
		}
		return nil
	case round < m.p2End:
		targets := m.probing.SendTargets()
		out := make([]sim.Envelope, 0, len(targets))
		for _, to := range targets {
			out = append(out, sim.Envelope{From: m.id, To: to, Payload: sim.Probe{Rumor: sim.Bit(m.candidate)}})
		}
		return out
	case round < m.p3End:
		off := round - m.p2End
		if off%2 == 0 { // inquiry round
			m.inquirers = m.inquirers[:0]
			if m.decided {
				return nil
			}
			overlay, err := m.top.Inquiry.Phase(off/2 + 1)
			if err != nil {
				panic("consensus: inquiry overlay unavailable: " + err.Error())
			}
			nbrs := overlay.Neighbors(m.id)
			out := make([]sim.Envelope, 0, len(nbrs))
			for _, to := range nbrs {
				out = append(out, sim.Envelope{From: m.id, To: to, Payload: sim.Inquiry{}})
			}
			return out
		}
		if !m.decided || len(m.inquirers) == 0 {
			return nil
		}
		out := make([]sim.Envelope, 0, len(m.inquirers))
		for _, to := range m.inquirers {
			out = append(out, sim.Envelope{From: m.id, To: to, Payload: sim.Bit(m.decision)})
		}
		return out
	default:
		return nil
	}
}

// Deliver implements sim.Protocol.
func (m *ManyCrashes) Deliver(round int, inbox []sim.Envelope) {
	switch {
	case round < m.p1End:
		if !m.candidate {
			for _, env := range inbox {
				if b, ok := env.Payload.(sim.Bit); ok && bool(b) {
					m.candidate = true
					if !m.flooded && round+1 < m.p1End {
						m.pending = true
					}
					break
				}
			}
		}
	case round < m.p2End:
		count := 0
		for _, env := range inbox {
			p, ok := env.Payload.(sim.Probe)
			if !ok {
				continue
			}
			count++
			if bool(p.Rumor) && !m.candidate {
				m.candidate = true
			}
		}
		m.probing.Observe(count)
		if m.probing.Done() && m.probing.Survived() && !m.decided {
			m.decided = true
			m.decision = m.candidate
		}
	case round < m.p3End:
		off := round - m.p2End
		if off%2 == 0 {
			if m.decided {
				for _, env := range inbox {
					if _, ok := env.Payload.(sim.Inquiry); ok {
						m.inquirers = append(m.inquirers, env.From)
					}
				}
			}
		} else if !m.decided {
			for _, env := range inbox {
				if b, ok := env.Payload.(sim.Bit); ok {
					m.decided = true
					m.decision = bool(b)
					break
				}
			}
		}
	}
	if round == m.p3End-1 {
		if !m.decided && m.fallback {
			m.decided = true
			m.decision = m.candidate
		}
		m.halted = true
	}
}

// Halted implements sim.Protocol.
func (m *ManyCrashes) Halted() bool { return m.halted }

var _ sim.Protocol = (*ManyCrashes)(nil)
