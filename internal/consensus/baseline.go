package consensus

import (
	"lineartime/internal/sim"
)

// Flooding is the textbook full-information comparator for binary
// consensus with crashes: every node broadcasts its candidate value to
// all other nodes when the value first becomes 1 (or initially), for
// t + 2 rounds, then decides its candidate. Correctness is the classic
// chain argument: value 1 either dies with a chain of ≤ t interrupted
// multicasts or some holder completes a multicast, and one extra round
// lets the final flip settle.
//
// It matches the Ω(n) message lower bound's trivial upper neighborhood:
// Θ(n²) messages and t + O(1) rounds, the profile the paper's Table 1
// comparisons improve on (O(n + t log t) bits via Few-Crashes).
type Flooding struct {
	id, n, t int

	candidate bool
	pending   bool
	flooded   bool
	decided   bool
	decision  bool
	halted    bool
}

// NewFlooding creates the baseline machine for node id of n with crash
// bound t and the given input bit.
func NewFlooding(id, n, t int, input bool) *Flooding {
	return &Flooding{id: id, n: n, t: t, candidate: input, pending: input}
}

// ScheduleLength returns the protocol's fixed round count, t + 2.
func (f *Flooding) ScheduleLength() int { return f.t + 2 }

// Decision returns the decision, if reached.
func (f *Flooding) Decision() (value, ok bool) { return f.decision, f.decided }

// Send implements sim.Protocol.
func (f *Flooding) Send(round int) []sim.Envelope {
	if round >= f.ScheduleLength() || !f.pending || f.flooded {
		return nil
	}
	f.pending = false
	f.flooded = true
	out := make([]sim.Envelope, 0, f.n-1)
	for to := 0; to < f.n; to++ {
		if to != f.id {
			out = append(out, sim.Envelope{From: f.id, To: to, Payload: sim.Bit(true)})
		}
	}
	return out
}

// Deliver implements sim.Protocol.
func (f *Flooding) Deliver(round int, inbox []sim.Envelope) {
	if !f.candidate {
		for _, env := range inbox {
			if b, ok := env.Payload.(sim.Bit); ok && bool(b) {
				f.candidate = true
				f.pending = true
				break
			}
		}
	}
	if round == f.ScheduleLength()-1 {
		f.decided = true
		f.decision = f.candidate
		f.halted = true
	}
}

// Halted implements sim.Protocol.
func (f *Flooding) Halted() bool { return f.halted }

var _ sim.Protocol = (*Flooding)(nil)
