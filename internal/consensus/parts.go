package consensus

// PartAt methods map protocol rounds to the paper's algorithm parts so
// the engine can attribute messages per part (the granularity at which
// the proofs state their communication bounds).

// PartAt implements the part labeling for Almost-Everywhere-Agreement.
func (a *AEA) PartAt(round int) string {
	switch {
	case round < a.base:
		return ""
	case round < a.p1End:
		return "aea/flood"
	case round < a.p2End:
		return "aea/probing"
	case round < a.p3End:
		return "aea/notify"
	default:
		return ""
	}
}

// PartAt implements the part labeling for Spread-Common-Value.
func (s *SCV) PartAt(round int) string {
	switch {
	case round < s.base:
		return ""
	case round < s.p1End:
		return "scv/broadcast"
	case round < s.p2End:
		return "scv/inquiry"
	default:
		return ""
	}
}

// PartAt implements the part labeling for Few-Crashes-Consensus.
func (f *FewCrashes) PartAt(round int) string {
	if round < f.aea.End() {
		return f.aea.PartAt(round)
	}
	return f.scv.PartAt(round)
}

// PartAt implements the part labeling for Many-Crashes-Consensus.
func (m *ManyCrashes) PartAt(round int) string {
	switch {
	case round < m.p1End:
		return "flood"
	case round < m.p2End:
		return "probing"
	case round < m.p3End:
		return "inquiry"
	default:
		return ""
	}
}

// PartAt implements the part labeling for the vector consensus.
func (v *VectorFewCrashes) PartAt(round int) string {
	switch {
	case round < v.p1End:
		return "aea/flood"
	case round < v.p2End:
		return "aea/probing"
	case round < v.p3End:
		return "aea/notify"
	case round < v.scvP1End:
		return "scv/broadcast"
	case round < v.endRound:
		return "scv/inquiry"
	default:
		return ""
	}
}
