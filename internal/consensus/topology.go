// Package consensus implements the paper's crash-fault agreement
// algorithms: Almost-Everywhere-Agreement (§4.1), Spread-Common-Value
// (§4.2), Few-Crashes-Consensus (§4.3), Many-Crashes-Consensus (§4.4),
// plus the flooding baseline used for the §1 comparisons and a
// majority-vote extension (§9).
//
// All protocols are deterministic state machines for the sim engine.
// Nodes sharing a run must share a *Topology (or *ManyTopology), which
// fixes the overlay graphs; the paper's "graphs known to every node"
// assumption is realized by constructing them from (n, t, seed).
package consensus

import (
	"fmt"
	"math"

	"lineartime/internal/expander"
)

// Topology bundles the overlays for the t < n/5 algorithm family.
type Topology struct {
	// N is the number of nodes, T the crash bound.
	N, T int
	// L is the number of little nodes: min(5t, n), at least 5 when n
	// allows (so tiny instances still have a non-degenerate overlay).
	L int
	// Little is the overlay G on the little nodes (vertices are node
	// names 0..L-1), standing in for the G(5t, 5^8) Ramanujan graph.
	Little *expander.Overlay
	// Broadcast is the graph H of degree ≥ 64 on all nodes (§4.2).
	Broadcast *expander.Overlay
	// Inquiry is the graph family G_i on all nodes (Lemma 5).
	Inquiry *expander.InquiryFamily
}

// TopologyOptions tunes topology construction.
type TopologyOptions struct {
	// Seed derives every overlay deterministically. Two topologies
	// with equal (N, T, Seed, Degree, Mode) are identical.
	Seed uint64
	// Degree overrides the little-overlay degree (0 = default).
	Degree int
	// Mode selects the overlay construction family and whether the
	// overlays stay implicit (neighborhoods recomputed on demand
	// instead of materialized); it applies to every overlay of the
	// topology.
	Mode expander.Mode
}

// NewTopology constructs the shared overlays for n nodes and crash
// bound t with t < n/5 (the assumption of §4.1–§4.3, §5–§6).
func NewTopology(n, t int, opts TopologyOptions) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("consensus: need n ≥ 2, got %d", n)
	}
	if t < 0 || 5*t > n {
		return nil, fmt.Errorf("consensus: need 5t ≤ n (5t=%d, n=%d)", 5*t, n)
	}
	l := 5 * t
	if l < 5 {
		l = 5 // degenerate t ∈ {0}: keep a small functional overlay
	}
	if l > n {
		l = n
	}
	little, err := expander.New(l, expander.Options{Degree: opts.Degree, Seed: opts.Seed + 1, Family: opts.Mode.Family, Implicit: opts.Mode.Implicit})
	if err != nil {
		return nil, fmt.Errorf("little overlay: %w", err)
	}
	h, err := expander.NewBroadcastGraphMode(n, opts.Seed+2, opts.Mode)
	if err != nil {
		return nil, err
	}
	return &Topology{
		N:         n,
		T:         t,
		L:         l,
		Little:    little,
		Broadcast: h,
		Inquiry:   expander.NewInquiryFamily(n, 8, opts.Seed+3).WithMode(opts.Mode),
	}, nil
}

// IsLittle reports whether node id is a little node.
func (tp *Topology) IsLittle(id int) bool { return id < tp.L }

// RelatedOf returns the non-little nodes related to little node i:
// all j ≥ L with j ≡ i (mod L). (§4.1 Part 3.)
func (tp *Topology) RelatedOf(i int) []int {
	var out []int
	for j := tp.L + i; j < tp.N; j += tp.L {
		out = append(out, j)
	}
	return out
}

// LittleOf returns the little node related to a non-little node j.
func (tp *Topology) LittleOf(j int) int { return j % tp.L }

// scvPart1Rounds returns the Part 1 length of Spread-Common-Value:
// 1 + ⌈log_{3/2}( (2n/5) / max{t, n/t} )⌉ (§4.2, Figure 2), clamped
// to at least 1 and extended by the overlay diameter slack that
// scaled-degree graphs need (the paper's H has ∆ = 64; ours may be
// smaller on small n, so we never go below ⌈lg n⌉).
func (tp *Topology) scvPart1Rounds() int {
	t := tp.T
	if t < 1 {
		t = 1
	}
	denom := math.Max(float64(t), float64(tp.N)/float64(t))
	k := math.Ceil(math.Log(2*float64(tp.N)/5/denom) / math.Log(1.5))
	rounds := 1 + int(k)
	if min := expander.CeilLog2(tp.N); rounds < min {
		rounds = min
	}
	return rounds
}

// scvInquiryPhases returns the number of G_i inquiry phases of SCV
// Part 2 before the little-node fallback phase: 0 when t² ≤ n (the
// paper's direct branch), otherwise ⌈lg(t+1)⌉.
func (tp *Topology) scvInquiryPhases() int {
	if tp.T*tp.T <= tp.N {
		return 0
	}
	return expander.CeilLog2(tp.T + 1)
}
