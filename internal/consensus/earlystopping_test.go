package consensus

import (
	"testing"

	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func runEarlyStopping(t *testing.T, n, tt int, inputs []bool, adv sim.LinkFault) ([]*EarlyStopping, *sim.Result) {
	t.Helper()
	ms := make([]*EarlyStopping, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewEarlyStopping(i, n, tt, inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: tt + 6})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

func TestEarlyStoppingNoFaultsDecidesFast(t *testing.T) {
	n, tt := 30, 10
	inputs := inputsPattern(n, "half", 1)
	ms, res := runEarlyStopping(t, n, tt, inputs, nil)
	decisions := make([]*bool, n)
	for i, m := range ms {
		if v, ok := m.Decision(); ok {
			v := v
			decisions[i] = &v
		}
		// f = 0: the first comparable round (round 1) is clean.
		if m.DecidedAt() > 2 {
			t.Fatalf("node %d decided at round %d with zero crashes", i, m.DecidedAt())
		}
	}
	checkConsensus(t, "early-no-faults", inputs, decisions, res.Crashed.Contains)
	if res.Metrics.Rounds > 4 {
		t.Fatalf("run took %d rounds with zero crashes, want ≤ 4", res.Metrics.Rounds)
	}
}

func TestEarlyStoppingRoundsTrackActualCrashes(t *testing.T) {
	// The early-stopping property: rounds grow with f (actual
	// crashes), not t (the bound). Cascade one crash per round.
	n, tt := 30, 20
	inputs := inputsPattern(n, "single", 1)
	for _, f := range []int{0, 3, 6, 12} {
		adv := crash.NewCascade(n, f, 1, 7)
		ms, res := runEarlyStopping(t, n, tt, inputs, adv)
		decisions := make([]*bool, n)
		worst := 0
		for i, m := range ms {
			if res.Crashed.Contains(i) {
				continue
			}
			if v, ok := m.Decision(); ok {
				v := v
				decisions[i] = &v
			}
			if m.DecidedAt() > worst {
				worst = m.DecidedAt()
			}
		}
		checkConsensus(t, "early-cascade", inputs, decisions, res.Crashed.Contains)
		if worst > f+3 {
			t.Fatalf("f=%d: slowest decision at round %d, want ≤ f+3 (early stopping)", f, worst)
		}
	}
}

func TestEarlyStoppingAdversarialChain(t *testing.T) {
	// The classic worst case: the lone 1-holder crashes delivering to
	// exactly one node, round after round.
	n, tt := 20, 8
	inputs := make([]bool, n)
	inputs[0] = true
	events := make([]crash.Event, 0, tt)
	for i := 0; i < tt; i++ {
		events = append(events, crash.Event{Node: i, Round: i, Keep: 1})
	}
	ms, res := runEarlyStopping(t, n, tt, inputs, crash.NewSchedule(events))
	decisions := make([]*bool, n)
	for i, m := range ms {
		if v, ok := m.Decision(); ok {
			v := v
			decisions[i] = &v
		}
	}
	checkConsensus(t, "early-chain", inputs, decisions, res.Crashed.Contains)
}

func TestEarlyStoppingRandom(t *testing.T) {
	n, tt := 30, 10
	for seed := uint64(0); seed < 6; seed++ {
		inputs := inputsPattern(n, "random", seed)
		adv := crash.NewRandom(n, tt, tt, seed)
		ms, res := runEarlyStopping(t, n, tt, inputs, adv)
		decisions := make([]*bool, n)
		for i, m := range ms {
			if v, ok := m.Decision(); ok {
				v := v
				decisions[i] = &v
			}
		}
		checkConsensus(t, "early-random", inputs, decisions, res.Crashed.Contains)
	}
}

func TestEarlyStoppingMessageProfile(t *testing.T) {
	// The contrast with Few-Crashes: early stopping pays Θ(n²) per
	// round for its f-sensitivity.
	n, tt := 40, 10
	inputs := inputsPattern(n, "half", 2)
	_, res := runEarlyStopping(t, n, tt, inputs, nil)
	if res.Metrics.Messages < int64(n*(n-1)) {
		t.Fatalf("messages = %d, want ≥ n(n-1)", res.Metrics.Messages)
	}
}
