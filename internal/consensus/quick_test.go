package consensus

import (
	"testing"
	"testing/quick"

	"lineartime/internal/crash"
	"lineartime/internal/rng"
	"lineartime/internal/sim"
)

// Property-based safety: for every generated (inputs, crash schedule)
// pair, agreement and validity must hold for the baseline protocols.
// These protocols are cheap enough to check hundreds of adversaries.

type schedCase struct {
	inputs []bool
	events []crash.Event
}

func genCase(seed uint64, n, t, horizon int) schedCase {
	r := rng.New(seed)
	c := schedCase{inputs: make([]bool, n)}
	for i := range c.inputs {
		c.inputs[i] = r.Intn(2) == 1
	}
	f := r.Intn(t + 1)
	perm := r.Perm(n)
	for i := 0; i < f; i++ {
		c.events = append(c.events, crash.Event{
			Node:  perm[i],
			Round: r.Intn(horizon),
			Keep:  r.Intn(5) - 1, // -1..3: full through tiny prefixes
		})
	}
	return c
}

func checkSafety(t *testing.T, label string, c schedCase, ms []interface {
	Decision() (bool, bool)
}, res *sim.Result) bool {
	t.Helper()
	any0, any1 := false, false
	for _, in := range c.inputs {
		if in {
			any1 = true
		} else {
			any0 = true
		}
	}
	var agreed *bool
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		v, ok := m.Decision()
		if !ok {
			t.Logf("%s: node %d undecided", label, i)
			return false
		}
		if v && !any1 || !v && !any0 {
			t.Logf("%s: node %d decided %v, not an input", label, i, v)
			return false
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Logf("%s: disagreement", label)
			return false
		}
	}
	return true
}

func TestFloodingSafetyQuick(t *testing.T) {
	const n, tt = 24, 8
	prop := func(seed uint64) bool {
		c := genCase(seed, n, tt, tt+2)
		ms := make([]interface {
			Decision() (bool, bool)
		}, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			m := NewFlooding(i, n, tt, c.inputs[i])
			ms[i], ps[i] = m, m
		}
		res, err := sim.Run(sim.Config{
			Protocols: ps,
			Fault:     crash.NewSchedule(c.events),
			MaxRounds: tt + 4,
		})
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return checkSafety(t, "flooding", c, ms, res)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStoppingSafetyQuick(t *testing.T) {
	const n, tt = 24, 8
	prop := func(seed uint64) bool {
		c := genCase(seed, n, tt, tt+2)
		ms := make([]interface {
			Decision() (bool, bool)
		}, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			m := NewEarlyStopping(i, n, tt, c.inputs[i])
			ms[i], ps[i] = m, m
		}
		res, err := sim.Run(sim.Config{
			Protocols: ps,
			Fault:     crash.NewSchedule(c.events),
			MaxRounds: tt + 6,
		})
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return checkSafety(t, "early-stopping", c, ms, res)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorSafetyQuick(t *testing.T) {
	const n, tt = 24, 8
	prop := func(seed uint64) bool {
		c := genCase(seed, n, tt, tt+1)
		ms := make([]interface {
			Decision() (bool, bool)
		}, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			m := NewRotatingCoordinator(i, n, tt, c.inputs[i])
			ms[i], ps[i] = m, m
		}
		res, err := sim.Run(sim.Config{
			Protocols: ps,
			Fault:     crash.NewSchedule(c.events),
			MaxRounds: tt + 4,
		})
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return checkSafety(t, "coordinator", c, ms, res)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFewCrashesSafetyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier property sweep skipped in -short mode")
	}
	const n, tt = 50, 10
	top, err := NewTopology(n, tt, TopologyOptions{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64) bool {
		c := genCase(seed, n, tt, 60)
		ms := make([]interface {
			Decision() (bool, bool)
		}, n)
		ps := make([]sim.Protocol, n)
		var schedule int
		for i := 0; i < n; i++ {
			m := NewFewCrashes(i, top, c.inputs[i])
			ms[i], ps[i] = m, m
			schedule = m.ScheduleLength()
		}
		res, err := sim.Run(sim.Config{
			Protocols: ps,
			Fault:     crash.NewSchedule(c.events),
			MaxRounds: schedule + 4,
		})
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return checkSafety(t, "few-crashes", c, ms, res)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
