package consensus

import (
	"lineartime/internal/sim"
)

// SCV is the per-node state machine of algorithm Spread-Common-Value
// (Figure 2). An instance starts with ≥ 3n/5 nodes holding a common
// value (here: a bit) and all others holding null; it ends with every
// non-faulty node decided on the common value (Theorem 6: O(log t)
// rounds, O(t log t) messages, t < n/5).
//
// Part 1 broadcasts the value over the expander H for
// 1 + ⌈log_{3/2}((2n/5)/max{t, n/t})⌉ rounds. Part 2 has the
// stragglers inquire: if t² ≤ n they ask every little node directly;
// otherwise they run ⌈lg(t+1)⌉ two-round phases over the growing
// graphs G_i, followed by the same little-node fallback, which makes
// termination-with-decision unconditional whenever any non-faulty
// little node holds the value (the paper's branch structure, unified).
type SCV struct {
	id  int
	top *Topology

	decided bool
	value   bool
	adopted bool // adopted in the previous Part 1 round → forward next Send

	inquirers  []int // inquiry senders of the current phase's first round
	standalone bool
	halted     bool

	base, p1End, p2End int
	phases             int // G_i phases before the fallback phase
}

// NewSCV creates the SCV machine for node id starting at round base.
// hasValue/value carry the node's initialization (the paper's
// dedicated variable: common value or null).
func NewSCV(id int, top *Topology, hasValue, value bool, base int, standalone bool) *SCV {
	s := &SCV{
		id:         id,
		top:        top,
		decided:    hasValue,
		value:      value,
		adopted:    hasValue, // initialized holders broadcast at round base
		standalone: standalone,
		base:       base,
	}
	s.phases = top.scvInquiryPhases()
	s.p1End = base + top.scvPart1Rounds()
	s.p2End = s.p1End + 2*(s.phases+1) // +1: little-node fallback phase
	return s
}

// ScheduleLength returns the number of rounds SCV occupies.
func (s *SCV) ScheduleLength() int { return s.p2End - s.base }

// End returns the first round after SCV's schedule.
func (s *SCV) End() int { return s.p2End }

// Decided returns the adopted common value, if any.
func (s *SCV) Decided() (value, ok bool) { return s.value, s.decided }

// phaseAt maps a round in Part 2 to (phase index 0..phases, first/second round).
func (s *SCV) phaseAt(round int) (phase int, first bool) {
	off := round - s.p1End
	return off / 2, off%2 == 0
}

// inquiryTargets returns the nodes that an undecided node inquires in
// the given phase: G_{phase+1} neighbors for the growing-graph phases,
// every little node for the final fallback phase.
func (s *SCV) inquiryTargets(phase int) []int {
	if phase >= s.phases { // fallback
		targets := make([]int, 0, s.top.L)
		for i := 0; i < s.top.L; i++ {
			if i != s.id {
				targets = append(targets, i)
			}
		}
		return targets
	}
	overlay, err := s.top.Inquiry.Phase(phase + 1)
	if err != nil {
		// Families are memoized and constructed from verified seeds;
		// failure here means the topology itself is unusable.
		panic("consensus: inquiry overlay unavailable: " + err.Error())
	}
	return overlay.Neighbors(s.id)
}

// Send implements sim.Protocol.
func (s *SCV) Send(round int) []sim.Envelope {
	switch {
	case round < s.base:
		return nil
	case round < s.p1End:
		if !s.adopted {
			return nil
		}
		s.adopted = false
		nbrs := s.top.Broadcast.Neighbors(s.id)
		out := make([]sim.Envelope, 0, len(nbrs))
		for _, to := range nbrs {
			out = append(out, sim.Envelope{From: s.id, To: to, Payload: sim.Bit(s.value)})
		}
		return out
	case round < s.p2End:
		_, first := s.phaseAt(round)
		if first {
			s.inquirers = s.inquirers[:0]
			if s.decided {
				return nil
			}
			phase, _ := s.phaseAt(round)
			targets := s.inquiryTargets(phase)
			out := make([]sim.Envelope, 0, len(targets))
			for _, to := range targets {
				out = append(out, sim.Envelope{From: s.id, To: to, Payload: sim.Inquiry{}})
			}
			return out
		}
		if !s.decided || len(s.inquirers) == 0 {
			return nil
		}
		out := make([]sim.Envelope, 0, len(s.inquirers))
		for _, to := range s.inquirers {
			out = append(out, sim.Envelope{From: s.id, To: to, Payload: sim.Bit(s.value)})
		}
		return out
	default:
		return nil
	}
}

// Deliver implements sim.Protocol.
func (s *SCV) Deliver(round int, inbox []sim.Envelope) {
	switch {
	case round < s.base:
		return
	case round < s.p1End:
		if !s.decided {
			for _, env := range inbox {
				if b, ok := env.Payload.(sim.Bit); ok {
					s.decided = true
					s.value = bool(b)
					if round+1 < s.p1End {
						s.adopted = true
					}
					break
				}
			}
		}
	case round < s.p2End:
		_, first := s.phaseAt(round)
		if first {
			if s.decided {
				for _, env := range inbox {
					if _, ok := env.Payload.(sim.Inquiry); ok {
						s.inquirers = append(s.inquirers, env.From)
					}
				}
			}
		} else if !s.decided {
			for _, env := range inbox {
				if b, ok := env.Payload.(sim.Bit); ok {
					s.decided = true
					s.value = bool(b)
					break
				}
			}
		}
	}
	if s.standalone && round == s.p2End-1 {
		s.halted = true
	}
}

// Halted implements sim.Protocol.
func (s *SCV) Halted() bool { return s.halted }

var _ sim.Protocol = (*SCV)(nil)
