package consensus

import (
	"lineartime/internal/sim"
)

// RotatingCoordinator is the classic phase-based comparator sitting
// between flooding (Θ(n²) messages) and Few-Crashes (O(n + t log t)):
// in phase k (one round each), node k is the coordinator and
// broadcasts its candidate; every node adopts the received value.
// After t+1 phases some coordinator was non-faulty for a complete
// broadcast, making all candidates equal, and later coordinators
// re-broadcast that common value, so agreement holds. Θ(t·n) messages,
// t+1 rounds.
//
// Validity: candidates start as inputs and only ever move to another
// node's candidate, so every decision is some node's input.
type RotatingCoordinator struct {
	id, n, t int

	candidate bool
	decided   bool
	decision  bool
	halted    bool
}

// NewRotatingCoordinator creates the machine for node id of n with
// crash bound t and the given input.
func NewRotatingCoordinator(id, n, t int, input bool) *RotatingCoordinator {
	return &RotatingCoordinator{id: id, n: n, t: t, candidate: input}
}

// ScheduleLength returns the fixed round count, t + 1.
func (r *RotatingCoordinator) ScheduleLength() int {
	if r.t+1 > r.n {
		return r.n
	}
	return r.t + 1
}

// Decision returns the decision, if reached.
func (r *RotatingCoordinator) Decision() (value, ok bool) { return r.decision, r.decided }

// Send implements sim.Protocol.
func (r *RotatingCoordinator) Send(round int) []sim.Envelope {
	if round >= r.ScheduleLength() || round%r.n != r.id {
		return nil
	}
	out := make([]sim.Envelope, 0, r.n-1)
	for to := 0; to < r.n; to++ {
		if to != r.id {
			out = append(out, sim.Envelope{From: r.id, To: to, Payload: sim.Bit(r.candidate)})
		}
	}
	return out
}

// Deliver implements sim.Protocol.
func (r *RotatingCoordinator) Deliver(round int, inbox []sim.Envelope) {
	for _, env := range inbox {
		if b, ok := env.Payload.(sim.Bit); ok && env.From == round%r.n {
			r.candidate = bool(b)
		}
	}
	if round == r.ScheduleLength()-1 {
		r.decided = true
		r.decision = r.candidate
		r.halted = true
	}
}

// Halted implements sim.Protocol.
func (r *RotatingCoordinator) Halted() bool { return r.halted }

var _ sim.Protocol = (*RotatingCoordinator)(nil)
