package consensus

import (
	"testing"

	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

// Edge-case coverage for the protocol stacks.

func TestFewCrashesZeroT(t *testing.T) {
	// t = 0: the degenerate topology keeps a 5-node little overlay and
	// consensus must still work (and trivially, nothing crashes).
	n := 30
	top, err := NewTopology(n, 0, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsPattern(n, "half", 1)
	ms := make([]*FewCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewFewCrashes(i, top, inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 4})
	if err != nil {
		t.Fatal(err)
	}
	checkConsensus(t, "t=0", inputs, collectFew(ms), res.Crashed.Contains)
}

func TestFewCrashesMinimumN(t *testing.T) {
	// The smallest supported system: n = 5 (one little overlay = K_5).
	n := 5
	top, err := NewTopology(n, 1, TopologyOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []bool{true, false, true, false, true}
	ms := make([]*FewCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewFewCrashes(i, top, inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 4})
	if err != nil {
		t.Fatal(err)
	}
	checkConsensus(t, "n=5", inputs, collectFew(ms), res.Crashed.Contains)
}

func TestSCVNoHoldersStaysUndecided(t *testing.T) {
	// SCV's contract needs ≥ 3n/5 holders; with zero holders nobody
	// can decide, and the run must still terminate cleanly (no hangs,
	// no fabricated values).
	n, tt := 40, 8
	top, err := NewTopology(n, tt, TopologyOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*SCV, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewSCV(i, top, false, false, 0, true)
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if _, ok := m.Decided(); ok {
			t.Fatalf("node %d decided with zero holders", i)
		}
	}
	if res.Metrics.Rounds != ms[0].ScheduleLength() {
		t.Fatal("schedule not completed")
	}
}

func TestManyCrashesFallbackDisabled(t *testing.T) {
	// With the terminal rule off and every responder dead, stragglers
	// stay undecided — documenting exactly what the fallback buys.
	n := 24
	tt := n - 1
	mt, err := NewManyTopology(n, tt, TopologyOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*ManyCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewManyCrashes(i, mt, true)
		ms[i].SetDecideFallback(false)
		ps[i] = ms[i]
	}
	events := make([]crash.Event, 0, tt)
	for i := 1; i < n; i++ {
		events = append(events, crash.Event{Node: i, Round: 0, Keep: 0})
	}
	_, err = sim.Run(sim.Config{
		Protocols: ps,
		Fault:     crash.NewSchedule(events),
		MaxRounds: ms[0].ScheduleLength() + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ms[0].Decision(); ok {
		t.Fatal("lone survivor decided without fallback or responders")
	}
}

func TestAEAEmbeddedOffset(t *testing.T) {
	// AEA embedded at a non-zero base must behave identically to a
	// standalone run shifted by the offset.
	n, tt := 50, 10
	top, err := NewTopology(n, tt, TopologyOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const base = 17
	inputs := inputsPattern(n, "littleone", 0)
	ms := make([]*AEA, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewAEA(i, top, inputs[i], base, false)
		ps[i] = &haltAfter{inner: ms[i], at: base + ms[i].ScheduleLength()}
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: base + ms[0].ScheduleLength() + 4})
	if err != nil {
		t.Fatal(err)
	}
	deciders := 0
	for _, m := range ms {
		if v, ok := m.Decided(); ok {
			deciders++
			if !v {
				t.Fatal("wrong decision in embedded AEA")
			}
		}
	}
	if deciders < 3*n/5 {
		t.Fatalf("embedded AEA: %d deciders < 3n/5", deciders)
	}
	// No messages may be sent before the base round.
	for r := 0; r < base && r < len(res.Metrics.PerRoundMessages); r++ {
		if res.Metrics.PerRoundMessages[r] != 0 {
			t.Fatalf("embedded AEA sent %d messages at round %d < base",
				res.Metrics.PerRoundMessages[r], r)
		}
	}
}

// haltAfter wraps a non-standalone protocol with an external halting
// schedule, standing in for the embedding protocol.
type haltAfter struct {
	inner  sim.Protocol
	at     int
	halted bool
}

func (h *haltAfter) Send(round int) []sim.Envelope { return h.inner.Send(round) }
func (h *haltAfter) Deliver(round int, inbox []sim.Envelope) {
	h.inner.Deliver(round, inbox)
	if round >= h.at-1 {
		h.halted = true
	}
}
func (h *haltAfter) Halted() bool { return h.halted }
