package consensus

import (
	"lineartime/internal/bitset"
	"lineartime/internal/sim"
)

// EarlyStopping is the classic early-stopping consensus of the related
// work (Dolev–Reischuk–Strong style, §1 "related work"): every node
// broadcasts its candidate every round and watches the set of senders
// it hears from. A round in which no new failure is observed is
// "clean"; after a clean round all alive nodes hold equal candidates,
// so the observer decides and floods a decision message, which
// recipients adopt, relay once, and halt on. Termination takes
// min(f+3, t+3) rounds for f actual crashes — the early-stopping
// profile the paper contrasts with its fixed-schedule algorithms —
// at Θ(n²) messages per round.
type EarlyStopping struct {
	id, n, t int

	candidate bool
	heard     *bitset.Set // senders heard from in the previous round
	haveHeard bool

	decided   bool
	decision  bool
	relayed   bool // decision message sent
	halted    bool
	decidedAt int
}

// NewEarlyStopping creates the machine for node id of n with crash
// bound t and the given input.
func NewEarlyStopping(id, n, t int, input bool) *EarlyStopping {
	return &EarlyStopping{id: id, n: n, t: t, candidate: input, decidedAt: -1}
}

// MaxRounds returns the worst-case schedule bound, t + 3.
func (e *EarlyStopping) MaxRounds() int { return e.t + 3 }

// Decision returns the decision, if reached.
func (e *EarlyStopping) Decision() (value, ok bool) { return e.decision, e.decided }

// DecidedAt returns the round at which the node decided, or -1.
func (e *EarlyStopping) DecidedAt() int { return e.decidedAt }

// decisionPayload marks a decide-and-halt message; the bit carries the
// decided value and the role is distinguished by a wrapper type so a
// candidate broadcast cannot be mistaken for a decision.
type decisionPayload struct {
	Value sim.Bit
}

// SizeBits implements sim.Payload.
func (decisionPayload) SizeBits() int { return 1 }

var _ sim.Payload = decisionPayload{}

// Send implements sim.Protocol.
func (e *EarlyStopping) Send(round int) []sim.Envelope {
	if e.halted {
		return nil
	}
	var payload sim.Payload
	switch {
	case e.decided && !e.relayed:
		e.relayed = true
		payload = decisionPayload{Value: sim.Bit(e.decision)}
	case e.decided:
		return nil
	default:
		payload = sim.Bit(e.candidate)
	}
	out := make([]sim.Envelope, 0, e.n-1)
	for to := 0; to < e.n; to++ {
		if to != e.id {
			out = append(out, sim.Envelope{From: e.id, To: to, Payload: payload})
		}
	}
	return out
}

// Deliver implements sim.Protocol.
func (e *EarlyStopping) Deliver(round int, inbox []sim.Envelope) {
	if e.decided {
		// One relay round after deciding, then halt.
		if e.relayed {
			e.halted = true
		}
		return
	}
	heardNow := bitset.New(e.n)
	heardNow.Add(e.id)
	for _, env := range inbox {
		switch p := env.Payload.(type) {
		case decisionPayload:
			e.decide(round, bool(p.Value))
			return
		case sim.Bit:
			heardNow.Add(env.From)
			if bool(p) {
				e.candidate = true
			}
		}
	}
	clean := e.haveHeard && heardNow.Equal(e.heard)
	e.heard = heardNow
	e.haveHeard = true
	if clean || round >= e.t+1 {
		e.decide(round, e.candidate)
	}
}

func (e *EarlyStopping) decide(round int, value bool) {
	e.decided = true
	e.decision = value
	e.decidedAt = round
}

// Halted implements sim.Protocol.
func (e *EarlyStopping) Halted() bool { return e.halted }

var _ sim.Protocol = (*EarlyStopping)(nil)
