package consensus

import (
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// AEA is the per-node state machine of algorithm
// Almost-Everywhere-Agreement (Figure 1): three parts on the little
// overlay G —
//
//	Part 1 (5t−1 rounds): little nodes flood rumor 1,
//	Part 2 (2+lg(5t) rounds): local probing; survivors decide,
//	Part 3 (1 round): little deciders notify their related nodes.
//
// The protocol guarantees (Theorem 5, t < n/5): at least 3n/5 nodes
// decide, all decisions equal, every decision is some node's input,
// O(t) rounds and O(n) one-bit messages.
//
// AEA embeds into Few-Crashes-Consensus via the `base` round offset:
// rounds before base are ignored, and the machine never halts on its
// own when standalone is false (the embedding protocol halts).
type AEA struct {
	id  int
	top *Topology

	candidate bool
	flooded   bool // sent the rumor-1 flood already
	pending   bool // flood at the next Send
	probing   *probe.Probing

	decided    bool
	decision   bool
	standalone bool
	halted     bool

	base, p1End, p2End, p3End int
}

// NewAEA creates the AEA machine for node id with the given binary
// input, starting at protocol round `base`.
func NewAEA(id int, top *Topology, input bool, base int, standalone bool) *AEA {
	a := &AEA{
		id:         id,
		top:        top,
		candidate:  input,
		standalone: standalone,
		base:       base,
	}
	part1 := 5*top.T - 1
	if part1 < 1 {
		part1 = 1
	}
	// Scaled-degree overlays can have diameter above 5t−1 on tiny
	// instances; flooding must cover the little graph, so never go
	// below γ (≥ 2 + lg L ≥ diameter of a verified expander).
	if g := top.Little.P.Gamma; part1 < g {
		part1 = g
	}
	a.p1End = base + part1
	a.p2End = a.p1End + top.Little.P.Gamma
	a.p3End = a.p2End + 1
	if top.IsLittle(id) {
		a.probing = probe.New(top.Little.Neighbors(id), top.Little.P.Gamma, top.Little.P.Delta)
	}
	return a
}

// ScheduleLength returns the number of rounds AEA occupies.
func (a *AEA) ScheduleLength() int { return a.p3End - a.base }

// End returns the first round after AEA's schedule.
func (a *AEA) End() int { return a.p3End }

// Decided returns the decision, if one was reached.
func (a *AEA) Decided() (value, ok bool) { return a.decision, a.decided }

// Send implements sim.Protocol.
func (a *AEA) Send(round int) []sim.Envelope {
	switch {
	case round < a.base:
		return nil
	case round < a.p1End:
		return a.sendPart1(round)
	case round < a.p2End:
		return a.sendPart2()
	case round < a.p3End:
		return a.sendPart3()
	default:
		return nil
	}
}

func (a *AEA) sendPart1(round int) []sim.Envelope {
	if !a.top.IsLittle(a.id) {
		return nil // non-little nodes stay idle through Part 1
	}
	first := round == a.base
	if (first && a.candidate && !a.flooded) || a.pending {
		a.flooded = true
		a.pending = false
		nbrs := a.top.Little.Neighbors(a.id)
		out := make([]sim.Envelope, 0, len(nbrs))
		for _, to := range nbrs {
			out = append(out, sim.Envelope{From: a.id, To: to, Payload: sim.Bit(true)})
		}
		return out
	}
	return nil
}

func (a *AEA) sendPart2() []sim.Envelope {
	if a.probing == nil {
		return nil
	}
	targets := a.probing.SendTargets()
	out := make([]sim.Envelope, 0, len(targets))
	for _, to := range targets {
		out = append(out, sim.Envelope{From: a.id, To: to, Payload: sim.Probe{Rumor: sim.Bit(a.candidate)}})
	}
	return out
}

func (a *AEA) sendPart3() []sim.Envelope {
	if !a.top.IsLittle(a.id) || !a.decided {
		return nil
	}
	related := a.top.RelatedOf(a.id)
	out := make([]sim.Envelope, 0, len(related))
	for _, to := range related {
		out = append(out, sim.Envelope{From: a.id, To: to, Payload: sim.Bit(a.decision)})
	}
	return out
}

// Deliver implements sim.Protocol.
func (a *AEA) Deliver(round int, inbox []sim.Envelope) {
	switch {
	case round < a.base:
		return
	case round < a.p1End:
		a.deliverPart1(round, inbox)
	case round < a.p2End:
		a.deliverPart2(inbox)
	case round < a.p3End:
		a.deliverPart3(inbox)
	}
	if a.standalone && round == a.p3End-1 {
		a.halted = true
	}
}

func (a *AEA) deliverPart1(round int, inbox []sim.Envelope) {
	if !a.top.IsLittle(a.id) || a.candidate {
		return
	}
	for _, env := range inbox {
		if b, ok := env.Payload.(sim.Bit); ok && bool(b) {
			a.candidate = true
			if !a.flooded && round+1 < a.p1End {
				a.pending = true
			}
			return
		}
	}
}

func (a *AEA) deliverPart2(inbox []sim.Envelope) {
	if a.probing == nil {
		return
	}
	count := 0
	for _, env := range inbox {
		p, ok := env.Payload.(sim.Probe)
		if !ok {
			continue
		}
		count++
		if bool(p.Rumor) && !a.candidate {
			// Figure 1 Part 2(b); Lemma 4 shows survivors never
			// actually take this branch when t < n/5.
			a.candidate = true
		}
	}
	a.probing.Observe(count)
	if a.probing.Done() && a.probing.Survived() && !a.decided {
		a.decided = true
		a.decision = a.candidate
	}
}

func (a *AEA) deliverPart3(inbox []sim.Envelope) {
	if a.top.IsLittle(a.id) || a.decided {
		return
	}
	for _, env := range inbox {
		if env.From == a.top.LittleOf(a.id) {
			if b, ok := env.Payload.(sim.Bit); ok {
				a.decided = true
				a.decision = bool(b)
				return
			}
		}
	}
}

// Halted implements sim.Protocol.
func (a *AEA) Halted() bool { return a.halted }

var _ sim.Protocol = (*AEA)(nil)
