package consensus

import (
	"lineartime/internal/sim"
)

// FewCrashes is algorithm Few-Crashes-Consensus (Figure 3): execute
// Almost-Everywhere-Agreement, adopt its decision as a common value,
// then execute Spread-Common-Value and decide on the spread value.
// Theorem 7: for t < n/5 it solves consensus in O(t + log n) rounds
// with O(n + t log t) one-bit messages.
type FewCrashes struct {
	id  int
	top *Topology

	aea *AEA
	scv *SCV

	handoff bool // AEA decision transferred into SCV
	halted  bool
	end     int
}

// NewFewCrashes creates the machine for node id with the given input.
func NewFewCrashes(id int, top *Topology, input bool) *FewCrashes {
	aea := NewAEA(id, top, input, 0, false)
	scv := NewSCV(id, top, false, false, aea.End(), false)
	return &FewCrashes{id: id, top: top, aea: aea, scv: scv, end: scv.End()}
}

// ScheduleLength returns the total number of rounds of the protocol.
func (f *FewCrashes) ScheduleLength() int { return f.end }

// Decision returns the consensus decision, if reached.
func (f *FewCrashes) Decision() (value, ok bool) {
	if v, ok := f.scv.Decided(); ok {
		return v, true
	}
	return f.aea.Decided()
}

// Send implements sim.Protocol.
func (f *FewCrashes) Send(round int) []sim.Envelope {
	f.maybeHandoff(round)
	if round < f.aea.End() {
		return f.aea.Send(round)
	}
	return f.scv.Send(round)
}

// Deliver implements sim.Protocol.
func (f *FewCrashes) Deliver(round int, inbox []sim.Envelope) {
	if round < f.aea.End() {
		f.aea.Deliver(round, inbox)
	} else {
		f.scv.Deliver(round, inbox)
	}
	if round == f.end-1 {
		f.halted = true
	}
}

// maybeHandoff moves the AEA decision into SCV at the boundary round.
func (f *FewCrashes) maybeHandoff(round int) {
	if f.handoff || round < f.aea.End() {
		return
	}
	f.handoff = true
	if v, ok := f.aea.Decided(); ok {
		f.scv.decided = true
		f.scv.value = v
		f.scv.adopted = true
	}
}

// Halted implements sim.Protocol.
func (f *FewCrashes) Halted() bool { return f.halted }

var _ sim.Protocol = (*FewCrashes)(nil)
