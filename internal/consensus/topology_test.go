package consensus

import (
	"testing"

	"lineartime/internal/expander"
)

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(1, 0, TopologyOptions{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewTopology(10, 3, TopologyOptions{}); err == nil {
		t.Fatal("5t > n accepted")
	}
	if _, err := NewTopology(10, -1, TopologyOptions{}); err == nil {
		t.Fatal("negative t accepted")
	}
	tp, err := NewTopology(100, 20, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tp.L != 100 {
		t.Fatalf("L = %d, want 100 for t = n/5", tp.L)
	}
}

func TestTopologyLittleNodes(t *testing.T) {
	tp, err := NewTopology(100, 10, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tp.L != 50 {
		t.Fatalf("L = %d, want 50", tp.L)
	}
	if !tp.IsLittle(49) || tp.IsLittle(50) {
		t.Fatal("IsLittle boundary wrong")
	}
	rel := tp.RelatedOf(3)
	if len(rel) != 1 || rel[0] != 53 {
		t.Fatalf("RelatedOf(3) = %v, want [53]", rel)
	}
	if tp.LittleOf(53) != 3 {
		t.Fatalf("LittleOf(53) = %d, want 3", tp.LittleOf(53))
	}
}

func TestTopologyDegenerateT(t *testing.T) {
	tp, err := NewTopology(50, 0, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tp.L < 5 {
		t.Fatalf("L = %d, want ≥ 5 even for t=0", tp.L)
	}
}

func TestRelatedPartition(t *testing.T) {
	// Every non-little node is related to exactly one little node, and
	// the related sets partition the non-little nodes.
	tp, err := NewTopology(103, 10, TopologyOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < tp.L; i++ {
		for _, j := range tp.RelatedOf(i) {
			seen[j]++
			if tp.LittleOf(j) != i {
				t.Fatalf("LittleOf(%d) = %d, want %d", j, tp.LittleOf(j), i)
			}
		}
	}
	for j := tp.L; j < tp.N; j++ {
		if seen[j] != 1 {
			t.Fatalf("node %d covered %d times, want 1", j, seen[j])
		}
	}
}

func TestSCVScheduleBranches(t *testing.T) {
	// t² ≤ n → no G_i phases, only the fallback.
	small, err := NewTopology(100, 8, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := small.scvInquiryPhases(); got != 0 {
		t.Fatalf("t²≤n phases = %d, want 0", got)
	}
	// t² > n → ⌈lg(t+1)⌉ phases.
	big, err := NewTopology(600, 120, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := big.scvInquiryPhases(); got != 7 { // ceil(lg 121)
		t.Fatalf("t²>n phases = %d, want 7", got)
	}
	if big.scvPart1Rounds() < 1 {
		t.Fatal("SCV part 1 empty")
	}
}

func TestNewManyTopologyValidation(t *testing.T) {
	if _, err := NewManyTopology(1, 0, TopologyOptions{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewManyTopology(10, 10, TopologyOptions{}); err == nil {
		t.Fatal("t=n accepted")
	}
	mt, err := NewManyTopology(64, 63, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mt.Overlay.P.Degree < expander.DefaultDegree {
		t.Fatalf("degree %d too small for α≈1", mt.Overlay.P.Degree)
	}
	if mt.inquiryPhases() < 1 {
		t.Fatal("no inquiry phases")
	}
}
