package consensus

import (
	"lineartime/internal/bitset"
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// VectorPayload carries a whole vector of per-instance binary values,
// the paper's "messages combined into one big message" for the n
// concurrent consensus instances of checkpointing (§6). Wire size: one
// bit per instance.
type VectorPayload struct {
	Set *bitset.Set
}

// SizeBits implements sim.Payload.
func (p VectorPayload) SizeBits() int { return p.Set.Len() }

// VectorProbe is the local-probing message carrying the sender's
// candidate vector.
type VectorProbe struct {
	Set *bitset.Set
}

// SizeBits implements sim.Payload.
func (p VectorProbe) SizeBits() int { return p.Set.Len() }

var (
	_ sim.Payload = VectorPayload{}
	_ sim.Payload = VectorProbe{}
)

// VectorFewCrashes runs n concurrent instances of Few-Crashes-Consensus
// with combined messages (§6 Part 2): instance i decides the bit "is i
// in the final extant set". Structurally it is AEA + SCV with bit
// vectors in place of bits; flooding ORs vectors, probing survivors
// decide their vector, and SCV spreads the decided vector.
//
// Agreement per instance follows from the binary argument applied
// coordinatewise; all deciders hold the same vector, so adopting a
// responder's whole vector preserves agreement.
type VectorFewCrashes struct {
	id  int
	top *Topology

	candidate *bitset.Set
	pending   bool // candidate grew; flood next Send
	probing   *probe.Probing

	decided  bool
	decision *bitset.Set

	inquirers []int
	halted    bool

	p1End, p2End, p3End, scvP1End, endRound int
	phases                                  int
}

// NewVectorFewCrashes creates the machine for node id with the given
// initial membership vector (ownership is taken; pass a clone if the
// caller keeps using it).
func NewVectorFewCrashes(id int, top *Topology, initial *bitset.Set) *VectorFewCrashes {
	v := &VectorFewCrashes{
		id:        id,
		top:       top,
		candidate: initial,
		pending:   true,
	}
	part1 := 5*top.T - 1
	if part1 < 1 {
		part1 = 1
	}
	if g := top.Little.P.Gamma; part1 < g {
		part1 = g
	}
	v.p1End = part1
	v.p2End = v.p1End + top.Little.P.Gamma
	v.p3End = v.p2End + 1
	v.scvP1End = v.p3End + top.scvPart1Rounds()
	v.phases = top.scvInquiryPhases()
	v.endRound = v.scvP1End + 2*(v.phases+1)
	if top.IsLittle(id) {
		v.probing = probe.New(top.Little.Neighbors(id), top.Little.P.Gamma, top.Little.P.Delta)
	}
	return v
}

// ScheduleLength returns the protocol's fixed round count.
func (v *VectorFewCrashes) ScheduleLength() int { return v.endRound }

// Decision returns the decided membership vector, if any. The returned
// set is shared; callers must not modify it.
func (v *VectorFewCrashes) Decision() (*bitset.Set, bool) { return v.decision, v.decided }

func (v *VectorFewCrashes) snapshot() *bitset.Set { return v.candidate.Clone() }

// Send implements sim.Protocol.
func (v *VectorFewCrashes) Send(round int) []sim.Envelope {
	switch {
	case round < v.p1End: // AEA Part 1: vector flooding on G (little only)
		if !v.top.IsLittle(v.id) || !v.pending {
			return nil
		}
		v.pending = false
		nbrs := v.top.Little.Neighbors(v.id)
		payload := VectorPayload{Set: v.snapshot()}
		out := make([]sim.Envelope, 0, len(nbrs))
		for _, to := range nbrs {
			out = append(out, sim.Envelope{From: v.id, To: to, Payload: payload})
		}
		return out
	case round < v.p2End: // AEA Part 2: probing with vectors
		if v.probing == nil {
			return nil
		}
		targets := v.probing.SendTargets()
		if len(targets) == 0 {
			return nil
		}
		payload := VectorProbe{Set: v.snapshot()}
		out := make([]sim.Envelope, 0, len(targets))
		for _, to := range targets {
			out = append(out, sim.Envelope{From: v.id, To: to, Payload: payload})
		}
		return out
	case round < v.p3End: // AEA Part 3: notify related nodes
		if !v.top.IsLittle(v.id) || !v.decided {
			return nil
		}
		related := v.top.RelatedOf(v.id)
		payload := VectorPayload{Set: v.decision}
		out := make([]sim.Envelope, 0, len(related))
		for _, to := range related {
			out = append(out, sim.Envelope{From: v.id, To: to, Payload: payload})
		}
		return out
	case round < v.scvP1End: // SCV Part 1: broadcast over H
		if !v.pending || !v.decided {
			return nil
		}
		v.pending = false
		nbrs := v.top.Broadcast.Neighbors(v.id)
		payload := VectorPayload{Set: v.decision}
		out := make([]sim.Envelope, 0, len(nbrs))
		for _, to := range nbrs {
			out = append(out, sim.Envelope{From: v.id, To: to, Payload: payload})
		}
		return out
	case round < v.endRound: // SCV Part 2: inquiry phases + fallback
		off := round - v.scvP1End
		phase := off / 2
		if off%2 == 0 {
			v.inquirers = v.inquirers[:0]
			if v.decided {
				return nil
			}
			targets := v.inquiryTargets(phase)
			out := make([]sim.Envelope, 0, len(targets))
			for _, to := range targets {
				out = append(out, sim.Envelope{From: v.id, To: to, Payload: sim.Inquiry{}})
			}
			return out
		}
		if !v.decided || len(v.inquirers) == 0 {
			return nil
		}
		payload := VectorPayload{Set: v.decision}
		out := make([]sim.Envelope, 0, len(v.inquirers))
		for _, to := range v.inquirers {
			out = append(out, sim.Envelope{From: v.id, To: to, Payload: payload})
		}
		return out
	default:
		return nil
	}
}

func (v *VectorFewCrashes) inquiryTargets(phase int) []int {
	if phase >= v.phases {
		targets := make([]int, 0, v.top.L)
		for i := 0; i < v.top.L; i++ {
			if i != v.id {
				targets = append(targets, i)
			}
		}
		return targets
	}
	overlay, err := v.top.Inquiry.Phase(phase + 1)
	if err != nil {
		panic("consensus: inquiry overlay unavailable: " + err.Error())
	}
	return overlay.Neighbors(v.id)
}

// absorb ORs a received vector into the candidate, reporting growth.
func (v *VectorFewCrashes) absorb(s *bitset.Set) bool {
	before := v.candidate.Count()
	v.candidate.UnionWith(s)
	return v.candidate.Count() > before
}

// Deliver implements sim.Protocol.
func (v *VectorFewCrashes) Deliver(round int, inbox []sim.Envelope) {
	switch {
	case round < v.p1End:
		if v.top.IsLittle(v.id) {
			grew := false
			for _, env := range inbox {
				if p, ok := env.Payload.(VectorPayload); ok && v.absorb(p.Set) {
					grew = true
				}
			}
			if grew && round+1 < v.p1End {
				v.pending = true
			}
		}
	case round < v.p2End:
		if v.probing == nil {
			return
		}
		count := 0
		for _, env := range inbox {
			if p, ok := env.Payload.(VectorProbe); ok {
				count++
				v.absorb(p.Set)
			}
		}
		v.probing.Observe(count)
		if v.probing.Done() && v.probing.Survived() && !v.decided {
			v.decided = true
			v.decision = v.candidate.Clone()
			v.pending = true // broadcast in SCV Part 1
		}
	case round < v.p3End:
		if !v.top.IsLittle(v.id) && !v.decided {
			for _, env := range inbox {
				if env.From != v.top.LittleOf(v.id) {
					continue
				}
				if p, ok := env.Payload.(VectorPayload); ok {
					v.decided = true
					v.decision = p.Set.Clone()
					v.pending = true
					break
				}
			}
		}
	case round < v.scvP1End:
		if !v.decided {
			for _, env := range inbox {
				if p, ok := env.Payload.(VectorPayload); ok {
					v.decided = true
					v.decision = p.Set.Clone()
					if round+1 < v.scvP1End {
						v.pending = true
					}
					break
				}
			}
		}
	case round < v.endRound:
		off := round - v.scvP1End
		if off%2 == 0 {
			if v.decided {
				for _, env := range inbox {
					if _, ok := env.Payload.(sim.Inquiry); ok {
						v.inquirers = append(v.inquirers, env.From)
					}
				}
			}
		} else if !v.decided {
			for _, env := range inbox {
				if p, ok := env.Payload.(VectorPayload); ok {
					v.decided = true
					v.decision = p.Set.Clone()
					break
				}
			}
		}
	}
	if round == v.endRound-1 {
		v.halted = true
	}
}

// Halted implements sim.Protocol.
func (v *VectorFewCrashes) Halted() bool { return v.halted }

var _ sim.Protocol = (*VectorFewCrashes)(nil)
