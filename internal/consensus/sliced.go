package consensus

import (
	"lineartime/internal/bitset"
	"lineartime/internal/sim"
)

// SlicedFlooding is the lane-parallel form of Flooding: one machine
// executing up to 64 independent replicas of the n-node flooding
// system, each node's booleans (candidate, pending, flooded, decided,
// decision, halted) vectorized into one uint64 per node with one bit
// per lane. Every replica shares the same inputs and schedule — only
// the fault layer (applied by the sliced engine) differs per lane — so
// the whole protocol logic is word-wide AND/OR/XOR and never escapes.
//
// Per lane it is step-for-step the scalar Flooding machine: a node
// multicasts the first time its candidate becomes 1 within the t+2
// round schedule, adopts 1 on first receipt, and at round t+1 decides
// its candidate and halts.
type SlicedFlooding struct {
	n, t  int
	lanes int

	candidate []uint64
	pending   []uint64
	flooded   []uint64
	decided   []uint64
	decision  []uint64
	halted    []uint64
}

// NewSlicedFlooding creates the lane-parallel flooding system for n
// nodes with crash bound t, the given per-node input bits (shared by
// all lanes), and the given lane count (1..64).
func NewSlicedFlooding(n, t, lanes int, inputs []bool) *SlicedFlooding {
	all := bitset.LaneMask(lanes)
	f := &SlicedFlooding{
		n: n, t: t, lanes: lanes,
		candidate: make([]uint64, n),
		pending:   make([]uint64, n),
		flooded:   make([]uint64, n),
		decided:   make([]uint64, n),
		decision:  make([]uint64, n),
		halted:    make([]uint64, n),
	}
	for i := 0; i < n && i < len(inputs); i++ {
		if inputs[i] {
			f.candidate[i] = all
			f.pending[i] = all
		}
	}
	return f
}

// N implements sim.SlicedSystem.
func (f *SlicedFlooding) N() int { return f.n }

// ScheduleLength returns the protocol's fixed round count, t + 2.
func (f *SlicedFlooding) ScheduleLength() int { return f.t + 2 }

// SlicedSend implements sim.SlicedSystem: the lanes in which the node
// has a pending un-flooded 1 multicast it to everyone.
func (f *SlicedFlooding) SlicedSend(round, node int, active uint64, out []sim.SlicedMsg) ([]sim.SlicedMsg, uint64) {
	if round >= f.ScheduleLength() {
		return out, 0
	}
	m := f.pending[node] &^ f.flooded[node] & active
	if m == 0 {
		return out, 0
	}
	f.pending[node] &^= m
	f.flooded[node] |= m
	for to := 0; to < f.n; to++ {
		if to != node {
			out = append(out, sim.SlicedMsg{From: int32(node), To: int32(to), Lanes: m, Bits: m})
		}
	}
	return out, 0
}

// SlicedDeliver implements sim.SlicedSystem: lanes that receive their
// first 1 adopt it; at round t+1 every active lane decides its
// candidate and halts.
func (f *SlicedFlooding) SlicedDeliver(round, node int, active uint64, inbox []sim.SlicedMsg) uint64 {
	var got uint64
	for i := range inbox {
		got |= inbox[i].Lanes & inbox[i].Bits
	}
	if x := got &^ f.candidate[node] & active; x != 0 {
		f.candidate[node] |= x
		f.pending[node] |= x
	}
	if round == f.ScheduleLength()-1 {
		f.decided[node] |= active
		f.decision[node] = f.decision[node]&^active | f.candidate[node]&active
		f.halted[node] |= active
	}
	return 0
}

// HaltedLanes implements sim.SlicedSystem.
func (f *SlicedFlooding) HaltedLanes(node int) uint64 { return f.halted[node] }

// DecisionLanes returns, for one node, the lanes in which it decided
// and the decided value per lane (valid where decided).
func (f *SlicedFlooding) DecisionLanes(node int) (decided, value uint64) {
	return f.decided[node], f.decision[node]
}

var _ sim.SlicedSystem = (*SlicedFlooding)(nil)
