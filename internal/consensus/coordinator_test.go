package consensus

import (
	"testing"

	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func runCoordinator(t *testing.T, n, tt int, inputs []bool, adv sim.LinkFault) ([]*RotatingCoordinator, *sim.Result) {
	t.Helper()
	ms := make([]*RotatingCoordinator, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewRotatingCoordinator(i, n, tt, inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: tt + 4})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

func collectCoordinator(ms []*RotatingCoordinator) []*bool {
	out := make([]*bool, len(ms))
	for i, m := range ms {
		if v, ok := m.Decision(); ok {
			v := v
			out[i] = &v
		}
	}
	return out
}

func TestCoordinatorNoFaults(t *testing.T) {
	for _, pattern := range []string{"zero", "one", "half", "single"} {
		n, tt := 40, 10
		inputs := inputsPattern(n, pattern, 1)
		ms, res := runCoordinator(t, n, tt, inputs, nil)
		checkConsensus(t, "coordinator-"+pattern, inputs, collectCoordinator(ms), res.Crashed.Contains)
	}
}

func TestCoordinatorCrashingCoordinators(t *testing.T) {
	// Crash the first t coordinators mid-broadcast: each delivers to
	// exactly one node, the worst case for agreement.
	n, tt := 30, 8
	inputs := inputsPattern(n, "half", 3)
	events := make([]crash.Event, 0, tt)
	for i := 0; i < tt; i++ {
		events = append(events, crash.Event{Node: i, Round: i, Keep: 1})
	}
	ms, res := runCoordinator(t, n, tt, inputs, crash.NewSchedule(events))
	checkConsensus(t, "coordinator-chain", inputs, collectCoordinator(ms), res.Crashed.Contains)
}

func TestCoordinatorRandomAdversaries(t *testing.T) {
	n, tt := 30, 8
	for seed := uint64(0); seed < 6; seed++ {
		inputs := inputsPattern(n, "random", seed)
		ms, res := runCoordinator(t, n, tt, inputs, crash.NewRandom(n, tt, tt+1, seed))
		checkConsensus(t, "coordinator-random", inputs, collectCoordinator(ms), res.Crashed.Contains)
	}
}

func TestCoordinatorMessageProfile(t *testing.T) {
	// Θ(t·n): exactly (t+1)(n−1) in the fault-free run.
	n, tt := 40, 10
	inputs := inputsPattern(n, "half", 1)
	_, res := runCoordinator(t, n, tt, inputs, nil)
	want := int64((tt + 1) * (n - 1))
	if res.Metrics.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Metrics.Messages, want)
	}
	if res.Metrics.Rounds != tt+1 {
		t.Fatalf("rounds = %d, want t+1", res.Metrics.Rounds)
	}
}

func TestCoordinatorExtremeT(t *testing.T) {
	// t ≥ n: schedule caps at n coordinators.
	m := NewRotatingCoordinator(0, 10, 20, true)
	if m.ScheduleLength() != 10 {
		t.Fatalf("schedule = %d, want n", m.ScheduleLength())
	}
}
