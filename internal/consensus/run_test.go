package consensus

import (
	"testing"

	"lineartime/internal/crash"
	"lineartime/internal/rng"
	"lineartime/internal/sim"
)

// runFew executes Few-Crashes-Consensus on n nodes with crash bound t,
// the given inputs and adversary, and returns the machines and result.
func runFew(t *testing.T, n, tt int, inputs []bool, adv sim.LinkFault, seed uint64) ([]*FewCrashes, *sim.Result) {
	t.Helper()
	top, err := NewTopology(n, tt, TopologyOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*FewCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewFewCrashes(i, top, inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{
		Protocols: ps,
		Fault:     adv,
		MaxRounds: ms[0].ScheduleLength() + 5,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

// checkConsensus asserts validity + agreement + termination over the
// surviving nodes.
func checkConsensus(t *testing.T, label string, inputs []bool, decisions []*bool, crashed func(int) bool) {
	t.Helper()
	any0, any1 := false, false
	for _, in := range inputs {
		if in {
			any1 = true
		} else {
			any0 = true
		}
	}
	var agreed *bool
	for i, d := range decisions {
		if crashed(i) {
			continue
		}
		if d == nil {
			t.Fatalf("%s: node %d did not decide", label, i)
		}
		if *d && !any1 || !*d && !any0 {
			t.Fatalf("%s: node %d decided %v, not any node's input", label, i, *d)
		}
		if agreed == nil {
			agreed = d
		} else if *agreed != *d {
			t.Fatalf("%s: disagreement (%v vs %v)", label, *agreed, *d)
		}
	}
	if agreed == nil {
		t.Fatalf("%s: every node crashed", label)
	}
}

func collectFew(ms []*FewCrashes) []*bool {
	out := make([]*bool, len(ms))
	for i, m := range ms {
		if v, ok := m.Decision(); ok {
			v := v
			out[i] = &v
		}
	}
	return out
}

func inputsPattern(n int, pattern string, seed uint64) []bool {
	in := make([]bool, n)
	r := rng.New(seed)
	for i := range in {
		switch pattern {
		case "zero":
		case "one":
			in[i] = true
		case "half":
			in[i] = i%2 == 0
		case "single":
			in[i] = i == n-1
		case "littleone":
			in[i] = i == 0
		default: // random
			in[i] = r.Intn(2) == 1
		}
	}
	return in
}

func TestFewCrashesNoFaults(t *testing.T) {
	for _, pattern := range []string{"zero", "one", "half", "single", "littleone"} {
		t.Run(pattern, func(t *testing.T) {
			n, tt := 80, 16
			inputs := inputsPattern(n, pattern, 1)
			ms, res := runFew(t, n, tt, inputs, nil, 7)
			checkConsensus(t, pattern, inputs, collectFew(ms), res.Crashed.Contains)
		})
	}
}

func TestFewCrashesValidityAllZero(t *testing.T) {
	n, tt := 60, 12
	inputs := inputsPattern(n, "zero", 1)
	ms, res := runFew(t, n, tt, inputs, nil, 3)
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		v, ok := m.Decision()
		if !ok || v {
			t.Fatalf("node %d decided %v/%v, want 0", i, v, ok)
		}
	}
}

func TestFewCrashesRandomAdversaries(t *testing.T) {
	n, tt := 80, 16
	for seed := uint64(0); seed < 8; seed++ {
		inputs := inputsPattern(n, "random", seed+100)
		adv := crash.NewRandom(n, tt, 40, seed)
		ms, res := runFew(t, n, tt, inputs, adv, 7)
		checkConsensus(t, "random", inputs, collectFew(ms), res.Crashed.Contains)
	}
}

func TestFewCrashesTargetLittle(t *testing.T) {
	n, tt := 100, 20
	inputs := inputsPattern(n, "half", 5)
	adv := crash.NewTargetLittle(100, 20, 3)
	ms, res := runFew(t, n, tt, inputs, adv, 9)
	checkConsensus(t, "target-little", inputs, collectFew(ms), res.Crashed.Contains)
}

func TestFewCrashesCascade(t *testing.T) {
	n, tt := 80, 16
	inputs := inputsPattern(n, "single", 0)
	adv := crash.NewCascade(n, tt, 1, 11)
	ms, res := runFew(t, n, tt, inputs, adv, 13)
	checkConsensus(t, "cascade", inputs, collectFew(ms), res.Crashed.Contains)
}

func TestFewCrashesPerformanceShape(t *testing.T) {
	// Theorem 7 shape: rounds O(t + log n), messages O(n + t log t).
	n, tt := 200, 40
	inputs := inputsPattern(n, "half", 1)
	ms, res := runFew(t, n, tt, inputs, nil, 21)
	rounds := res.Metrics.Rounds
	if rounds > 8*tt+64 {
		t.Fatalf("rounds = %d, too large for O(t + log n) with t=%d", rounds, tt)
	}
	// Generous constant: messages ≤ C·(n + t·lg t·lg t).
	limit := int64(64*n + 64*tt*10*10)
	if res.Metrics.Messages > limit {
		t.Fatalf("messages = %d exceed shape bound %d", res.Metrics.Messages, limit)
	}
	_ = ms
}

func TestAEAStandalone(t *testing.T) {
	n, tt := 100, 20
	top, err := NewTopology(n, tt, TopologyOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsPattern(n, "littleone", 0)
	ms := make([]*AEA, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewAEA(i, top, inputs[i], 0, true)
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 2})
	if err != nil {
		t.Fatal(err)
	}
	decided, ones := 0, 0
	for _, m := range ms {
		if v, ok := m.Decided(); ok {
			decided++
			if v {
				ones++
			}
		}
	}
	// 3/5-AEA: at least 3n/5 nodes decide (no faults: everyone should).
	if decided < 3*n/5 {
		t.Fatalf("only %d/%d nodes decided, want ≥ 3n/5", decided, n)
	}
	if ones != decided {
		t.Fatalf("agreement violated: %d of %d deciders chose 1", ones, decided)
	}
	if res.Metrics.Rounds != ms[0].ScheduleLength() {
		t.Fatalf("rounds = %d, want schedule %d", res.Metrics.Rounds, ms[0].ScheduleLength())
	}
	// Theorem 5 accounting: Part 1 ≤ L·d, Part 2 ≤ L·d·γ (= O(t log t)
	// messages, which is O(n) exactly in the t = O(n/log n) range of
	// Table 1), Part 3 ≤ n.
	p := top.Little.P
	limit := int64(2 * (p.N*p.Degree*(p.Gamma+1) + n))
	if res.Metrics.Messages > limit {
		t.Fatalf("messages = %d exceed structural bound %d", res.Metrics.Messages, limit)
	}
}

func TestAEAUnderLittleCrashes(t *testing.T) {
	n, tt := 100, 20
	top, err := NewTopology(n, tt, TopologyOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsPattern(n, "half", 2)
	ms := make([]*AEA, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewAEA(i, top, inputs[i], 0, true)
		ps[i] = ms[i]
	}
	adv := crash.NewTargetLittle(top.L, tt, 17)
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: ms[0].ScheduleLength() + 2})
	if err != nil {
		t.Fatal(err)
	}
	decided := 0
	var first *bool
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		if v, ok := m.Decided(); ok {
			decided++
			if first == nil {
				first = &v
			} else if *first != v {
				t.Fatal("AEA deciders disagree under little-node crashes")
			}
		}
	}
	if decided < 3*n/5 {
		t.Fatalf("only %d deciders under crashes, want ≥ 3n/5 = %d", decided, 3*n/5)
	}
}

func TestSCVStandaloneSmallT(t *testing.T) {
	// t² ≤ n branch: direct little-node inquiry.
	n, tt := 120, 10
	testSCV(t, n, tt)
}

func TestSCVStandaloneLargeT(t *testing.T) {
	// t² > n branch: G_i phases then fallback.
	n, tt := 120, 24
	testSCV(t, n, tt)
}

func testSCV(t *testing.T, n, tt int) {
	t.Helper()
	top, err := NewTopology(n, tt, TopologyOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*SCV, n)
	ps := make([]sim.Protocol, n)
	littleHolders := 0
	for i := 0; i < n; i++ {
		// The first 3n/5 nodes hold the value, which always includes
		// some little nodes (the fallback phase's responders).
		has := i < 3*n/5
		if has && top.IsLittle(i) {
			littleHolders++
		}
		ms[i] = NewSCV(i, top, has, true, 0, true)
		ps[i] = ms[i]
	}
	if littleHolders == 0 {
		t.Fatal("test setup: no little holders")
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		v, ok := m.Decided()
		if !ok {
			t.Fatalf("node %d undecided after SCV", i)
		}
		if !v {
			t.Fatalf("node %d decided wrong value", i)
		}
	}
	// Theorem 6 shape: O(log t) rounds beyond Part 1, O(n + t log t) messages.
	if res.Metrics.Messages > int64(80*n) {
		t.Fatalf("messages = %d, want O(n) scale", res.Metrics.Messages)
	}
}

func TestSCVWithCrashesAmongHolders(t *testing.T) {
	n, tt := 100, 20
	top, err := NewTopology(n, tt, TopologyOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*SCV, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewSCV(i, top, i < 3*n/5, true, 0, true)
		ps[i] = ms[i]
	}
	adv := crash.NewRandom(n, tt, 10, 2)
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: ms[0].ScheduleLength() + 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		if v, ok := m.Decided(); !ok || !v {
			t.Fatalf("non-faulty node %d failed to adopt the common value", i)
		}
	}
}

func TestManyCrashesAllAlpha(t *testing.T) {
	n := 64
	for _, tt := range []int{1, 13, 32, 50, 63} {
		inputs := inputsPattern(n, "half", uint64(tt))
		mt, err := NewManyTopology(n, tt, TopologyOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ms := make([]*ManyCrashes, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			ms[i] = NewManyCrashes(i, mt, inputs[i])
			ps[i] = ms[i]
		}
		adv := crash.NewRandom(n, tt, n, uint64(tt)*3+1)
		res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: ms[0].ScheduleLength() + 5})
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		decisions := make([]*bool, n)
		for i, m := range ms {
			if v, ok := m.Decision(); ok {
				v := v
				decisions[i] = &v
			}
		}
		checkConsensus(t, "many", inputs, decisions, res.Crashed.Contains)

		// Theorem 8: rounds ≤ n + 3(1 + lg n) plus our scheduling slack.
		if res.Metrics.Rounds > n+8*(1+7) {
			t.Fatalf("t=%d: rounds = %d above Theorem 8 budget", tt, res.Metrics.Rounds)
		}
	}
}

func TestManyCrashesExtremeWipeout(t *testing.T) {
	// Corollary 1 regime: t = n−1, adversary kills everyone but one
	// node before any message. The fallback rule must let the lone
	// survivor decide its own input (validity).
	n := 32
	tt := n - 1
	mt, err := NewManyTopology(n, tt, TopologyOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsPattern(n, "one", 0)
	ms := make([]*ManyCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewManyCrashes(i, mt, inputs[i])
		ps[i] = ms[i]
	}
	events := make([]crash.Event, 0, tt)
	for i := 1; i < n; i++ {
		events = append(events, crash.Event{Node: i, Round: 0, Keep: 0})
	}
	res, err := sim.Run(sim.Config{
		Protocols: ps,
		Fault:     crash.NewSchedule(events),
		MaxRounds: ms[0].ScheduleLength() + 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed.Count() != tt {
		t.Fatalf("crashed %d, want %d", res.Crashed.Count(), tt)
	}
	v, ok := ms[0].Decision()
	if !ok || !v {
		t.Fatalf("lone survivor decided %v/%v, want its input 1", v, ok)
	}
}

func TestFloodingBaselineCorrect(t *testing.T) {
	n, tt := 40, 10
	for _, pattern := range []string{"zero", "one", "half", "single"} {
		inputs := inputsPattern(n, pattern, 1)
		ms := make([]*Flooding, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			ms[i] = NewFlooding(i, n, tt, inputs[i])
			ps[i] = ms[i]
		}
		adv := crash.NewRandom(n, tt, tt+2, 5)
		res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: tt + 4})
		if err != nil {
			t.Fatal(err)
		}
		decisions := make([]*bool, n)
		for i, m := range ms {
			if v, ok := m.Decision(); ok {
				v := v
				decisions[i] = &v
			}
		}
		checkConsensus(t, "flooding-"+pattern, inputs, decisions, res.Crashed.Contains)
	}
}

func TestFloodingBaselineCascadeChain(t *testing.T) {
	// The adversarial chain from the correctness argument: each round
	// the current 1-holder crashes delivering to exactly one node.
	n, tt := 20, 8
	inputs := make([]bool, n)
	inputs[0] = true
	ms := make([]*Flooding, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewFlooding(i, n, tt, inputs[i])
		ps[i] = ms[i]
	}
	// Node 0 crashes at round 0 keeping 1 message (to node 1, the
	// lowest-numbered target); node 1 crashes at round 1 keeping 1...
	events := make([]crash.Event, 0, tt)
	for i := 0; i < tt; i++ {
		events = append(events, crash.Event{Node: i, Round: i, Keep: 1})
	}
	res, err := sim.Run(sim.Config{
		Protocols: ps,
		Fault:     crash.NewSchedule(events),
		MaxRounds: tt + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	decisions := make([]*bool, n)
	for i, m := range ms {
		if v, ok := m.Decision(); ok {
			v := v
			decisions[i] = &v
		}
	}
	checkConsensus(t, "flooding-chain", inputs, decisions, res.Crashed.Contains)
}

func TestFloodingMessageScale(t *testing.T) {
	// The baseline must show its Θ(n²) message profile — that is the
	// crossover the paper's Table 1 comparisons rely on.
	n, tt := 100, 20
	inputs := inputsPattern(n, "one", 0)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ps[i] = NewFlooding(i, n, tt, inputs[i])
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: tt + 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages < int64(n*(n-1)) {
		t.Fatalf("flooding sent %d messages, want ≥ n(n-1) = %d", res.Metrics.Messages, n*(n-1))
	}
}
