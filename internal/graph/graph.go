// Package graph implements the simple undirected graphs used as
// overlay networks by every algorithm in the paper (§2 "Overlay
// graphs"). It provides the structural operations the proofs rely on:
// generalized neighborhoods N^i_G(W), induced subgraphs G|W, edge
// counts e(A,B) between vertex sets, induced edge volume vol(S), and
// connectivity, plus the graph constructions (complete, circulant,
// hypercube, permutation-model random regular) from which the expander
// layer builds verified overlays.
package graph

import (
	"fmt"
	"sort"

	"lineartime/internal/bitset"
)

// Graph is a simple undirected graph on vertices 0..n-1 stored as
// sorted adjacency lists. Graphs are immutable after construction;
// protocols share them freely across goroutines.
type Graph struct {
	n   int
	adj [][]int
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are ignored, which lets constructions over-add
// safely.
type Builder struct {
	n    int
	sets []map[int]struct{}
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	sets := make([]map[int]struct{}, n)
	for i := range sets {
		sets[i] = make(map[int]struct{})
	}
	return &Builder{n: n, sets: sets}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are dropped.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.sets[u][v] = struct{}{}
	b.sets[v][u] = struct{}{}
}

// HasEdge reports whether the edge {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.sets[u][v]
	return ok
}

// Degree returns the current degree of u in the builder.
func (b *Builder) Degree(u int) int { return len(b.sets[u]) }

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	adj := make([][]int, b.n)
	for u, set := range b.sets {
		lst := make([]int, 0, len(set))
		for v := range set {
			lst = append(lst, v)
		}
		sort.Ints(lst)
		adj[u] = lst
	}
	return &Graph{n: b.n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Neighbors returns the sorted adjacency list of v. The returned slice
// is owned by the graph; callers must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for _, a := range g.adj {
		if len(a) != d {
			return false
		}
	}
	return true
}

// Neighborhood returns N^radius_G(start): all vertices within the given
// distance of some vertex in start (including start itself, distance 0).
func (g *Graph) Neighborhood(start *bitset.Set, radius int) *bitset.Set {
	if start.Len() != g.n {
		panic("graph: neighborhood start set capacity mismatch")
	}
	reach := start.Clone()
	frontier := start.Elements()
	for step := 0; step < radius && len(frontier) > 0; step++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.adj[v] {
				if !reach.Contains(w) {
					reach.Add(w)
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return reach
}

// NeighborhoodOf returns N^radius_G({v}).
func (g *Graph) NeighborhoodOf(v, radius int) *bitset.Set {
	s := bitset.New(g.n)
	s.Add(v)
	return g.Neighborhood(s, radius)
}

// EdgesBetween returns e(A, B): the number of edges with one endpoint
// in A and the other in B, for disjoint A and B. If the sets overlap,
// edges inside the overlap are counted per the standard convention of
// ordered scanning from A (the paper only uses disjoint sets).
func (g *Graph) EdgesBetween(a, b *bitset.Set) int {
	count := 0
	a.ForEach(func(u int) {
		for _, v := range g.adj[u] {
			if b.Contains(v) {
				count++
			}
		}
	})
	return count
}

// Volume returns vol(S): the number of edges of G with both endpoints
// in S (the induced edge count used in Lemma 1).
func (g *Graph) Volume(s *bitset.Set) int {
	count := 0
	s.ForEach(func(u int) {
		for _, v := range g.adj[u] {
			if v > u && s.Contains(v) {
				count++
			}
		}
	})
	return count
}

// DegreeIn returns the number of neighbors of v inside the set S, i.e.
// v's degree in the induced subgraph G|S (v itself need not be in S).
func (g *Graph) DegreeIn(v int, s *bitset.Set) int {
	d := 0
	for _, w := range g.adj[v] {
		if s.Contains(w) {
			d++
		}
	}
	return d
}

// InducedSubgraph returns G|W re-labelled onto 0..|W|-1, together with
// the mapping from new labels back to original vertex names.
func (g *Graph) InducedSubgraph(w *bitset.Set) (*Graph, []int) {
	names := w.Elements()
	index := make(map[int]int, len(names))
	for i, v := range names {
		index[v] = i
	}
	b := NewBuilder(len(names))
	for i, v := range names {
		for _, u := range g.adj[v] {
			if j, ok := index[u]; ok && j > i {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), names
}

// ConnectedComponents returns the vertex sets of the connected
// components restricted to the vertices in the given set.
func (g *Graph) ConnectedComponents(within *bitset.Set) []*bitset.Set {
	seen := bitset.New(g.n)
	var comps []*bitset.Set
	within.ForEach(func(v int) {
		if seen.Contains(v) {
			return
		}
		comp := bitset.New(g.n)
		stack := []int{v}
		seen.Add(v)
		comp.Add(v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[u] {
				if within.Contains(w) && !seen.Contains(w) {
					seen.Add(w)
					comp.Add(w)
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	})
	return comps
}

// IsConnected reports whether the whole graph is connected. The empty
// graph and single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	all := bitset.New(g.n)
	all.Fill()
	return len(g.ConnectedComponents(all)) == 1
}

// Diameter returns the largest finite shortest-path distance, or -1 if
// the graph is disconnected. O(n * m); use on small graphs and tests.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	max := 0
	dist := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for src := 0; src < g.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		reached := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] > max {
						max = dist[v]
					}
					reached++
					queue = append(queue, v)
				}
			}
		}
		if reached != g.n {
			return -1
		}
	}
	return max
}
