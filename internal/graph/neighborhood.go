package graph

import "fmt"

// This file is the implicit-topology substrate: a Neighborhood is any
// generator of sorted adjacency lists, and a seeded shift (circulant)
// construction provides one whose lists are recomputed on the fly from
// (n, d, seed) in O(d) time with zero steady-state allocations —
// instead of being stored as O(n·d) words of materialized adjacency.
// The engines and overlays consume topologies through this interface,
// so a simulated network of a million nodes keeps O(n) bits of state
// plus O(d) scratch resident, not a CSR of the whole graph.

// Neighborhood generates sorted neighbor lists on demand. A *Graph is
// a Neighborhood (backed by its stored adjacency); implicit
// implementations recompute the list from a seeded construction.
//
// AppendNeighbors appends v's neighbors to buf in ascending order and
// returns the extended slice; with a caller-provided buffer of
// capacity MaxDegree it never allocates, which is what lets the
// engines regenerate neighborhoods every round allocation-free.
type Neighborhood interface {
	// N returns the number of vertices.
	N() int
	// Degree returns the degree of v.
	Degree(v int) int
	// MaxDegree returns the maximum vertex degree.
	MaxDegree() int
	// AppendNeighbors appends the sorted neighbor list of v to buf.
	AppendNeighbors(v int, buf []int) []int
}

// AppendNeighbors implements Neighborhood for the materialized graph.
func (g *Graph) AppendNeighbors(v int, buf []int) []int {
	return append(buf, g.adj[v]...)
}

var _ Neighborhood = (*Graph)(nil)

// Shift is the implicit seeded shift graph: the circulant on n
// vertices whose connection set is a seeded pseudorandom choice of
// generators, so vertex v's neighbors are {v ± g mod n : g ∈ gens}.
// The construction is fully determined by (n, d, seed) and locally
// computable — AppendNeighbors touches only O(d) scratch — which the
// pairing-model random regular family is not (its edge-swap repair is
// global). Shift graphs trade a provable spectral gap for that local
// computability: random circulants are connected and well-mixing in
// practice, but as Abelian Cayley graphs they cannot meet the
// Ramanujan bound at constant degree, so the expander layer verifies
// them by connectivity plus the exact circulant eigenvalue (closed
// form) instead of the near-Ramanujan gate.
type Shift struct {
	n int
	// gens holds the distinct generators in ascending order, each in
	// [1, n/2]. A generator g < n/2 contributes the two neighbors
	// v±g; the involution generator n/2 (even n only) contributes one.
	gens []int
	deg  int
}

// NewShift constructs the seeded shift graph on n vertices with
// degree d. The generators are drawn from a splitmix64 stream of the
// seed; two calls with equal (n, d, seed) yield identical graphs. An
// odd degree requires even n (the involution generator n/2 supplies
// the odd neighbor); NewShift returns an error otherwise, mirroring
// the n·d-even requirement of every regular construction.
func NewShift(n, d int, seed uint64) (*Shift, error) {
	if n < 2 {
		return nil, errShift("need n >= 2, got %d", n)
	}
	if d < 1 || d > n-1 {
		return nil, errShift("degree %d out of range [1, %d]", d, n-1)
	}
	if d%2 == 1 && n%2 == 1 {
		return nil, errShift("odd degree %d needs even n, got n=%d", d, n)
	}
	// full holds the number of two-neighbor generators available:
	// [1, (n-1)/2] for odd n, [1, n/2-1] for even n (n/2 is the
	// involution).
	full := (n - 1) / 2
	if n%2 == 0 {
		full = n/2 - 1
	}
	k := d / 2
	if k > full {
		return nil, errShift("degree %d exceeds the %d-generator budget of n=%d", d, full, n)
	}
	s := &Shift{n: n, deg: d, gens: make([]int, 0, k+1)}
	if k == full {
		for g := 1; g <= full; g++ {
			s.gens = append(s.gens, g)
		}
	} else if k > 0 {
		seen := make([]bool, full+1)
		x := seed
		for len(s.gens) < k {
			x = splitmix64(x)
			g := 1 + int(x%uint64(full))
			if seen[g] {
				continue
			}
			seen[g] = true
			s.gens = append(s.gens, g)
		}
		insertionSort(s.gens)
	}
	if d%2 == 1 {
		s.gens = append(s.gens, n/2)
	}
	return s, nil
}

func errShift(format string, args ...any) error {
	return fmt.Errorf("graph: shift "+format, args...)
}

// N implements Neighborhood.
func (s *Shift) N() int { return s.n }

// Degree implements Neighborhood; shift graphs are regular.
func (s *Shift) Degree(int) int { return s.deg }

// MaxDegree implements Neighborhood.
func (s *Shift) MaxDegree() int { return s.deg }

// Generators returns the connection set (ascending, each in [1, n/2]).
// The slice is owned by the Shift; callers must not modify it.
func (s *Shift) Generators() []int { return s.gens }

// AppendNeighbors implements Neighborhood: v's neighbors are
// {(v±g) mod n : g ∈ gens}, appended in ascending order. The
// generators are distinct values in [1, n/2], so the 2k(+1) neighbors
// are pairwise distinct and never equal v; only the order depends on
// where v+g wraps, which the insertion sort over the O(d) suffix
// restores.
func (s *Shift) AppendNeighbors(v int, buf []int) []int {
	start := len(buf)
	n := s.n
	for _, g := range s.gens {
		w := v + g
		if w >= n {
			w -= n
		}
		buf = append(buf, w)
		if 2*g != n {
			w = v - g
			if w < 0 {
				w += n
			}
			buf = append(buf, w)
		}
	}
	insertionSort(buf[start:])
	return buf
}

// Connected reports whether the shift graph is connected: a circulant
// is connected iff gcd(n, g_1, ..., g_k) = 1.
func (s *Shift) Connected() bool {
	g := s.n
	for _, v := range s.gens {
		g = gcd(g, v)
		if g == 1 {
			return true
		}
	}
	return g == 1
}

// Materialize stores an implicit Neighborhood as an ordinary Graph
// with the byte-identical adjacency lists — the bridge the
// equivalence suites use to pin implicit against materialized runs,
// and the fallback for analysis helpers that need random access to
// whole-graph structure.
func Materialize(nb Neighborhood) *Graph {
	n := nb.N()
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		adj[v] = nb.AppendNeighbors(v, make([]int, 0, nb.Degree(v)))
	}
	return &Graph{n: n, adj: adj}
}

// splitmix64 is the SplitMix64 finalizer, the repository's standard
// cheap seeded stream (see internal/link.mix).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// insertionSort sorts the O(d) neighbor scratch in place without the
// sort package's interface overhead or allocations.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
