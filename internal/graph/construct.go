package graph

import (
	"fmt"

	"lineartime/internal/rng"
)

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Cycle returns the n-cycle (n >= 3), or a path/edge for tiny n.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Circulant returns the circulant graph C_n(gens): vertex v is adjacent
// to v±g mod n for each generator g. Circulants are deterministic,
// vertex-transitive, and (for well-spread generators) decent expanders;
// they serve as a fully deterministic fallback overlay.
func Circulant(n int, gens []int) *Graph {
	b := NewBuilder(n)
	for _, g := range gens {
		g %= n
		if g == 0 {
			continue
		}
		for v := 0; v < n; v++ {
			b.AddEdge(v, (v+g)%n)
		}
	}
	return b.Build()
}

// QuadraticCirculant returns a circulant with generators 1, 2, 5, 10,
// 17, ... (k^2+1) up to degree roughly d. The quadratic spacing avoids
// the short even cycles of arithmetic-progression generators.
func QuadraticCirculant(n, d int) *Graph {
	var gens []int
	for k := 0; len(gens)*2 < d && k*k+1 < (n+1)/2; k++ {
		gens = append(gens, k*k+1)
	}
	if len(gens) == 0 {
		gens = []int{1}
	}
	return Circulant(n, gens)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for i := 0; i < dim; i++ {
			b.AddEdge(v, v^(1<<i))
		}
	}
	return b.Build()
}

// RandomRegular returns a d-regular simple graph on n vertices built
// with the configuration (pairing) model followed by edge-swap repair
// of self-loops and duplicate edges, driven by the deterministic
// generator seeded with seed. Random regular graphs of constant degree
// are near-Ramanujan with high probability (Friedman's theorem); the
// expander layer verifies the spectral bound after construction and
// re-seeds if the check fails.
//
// Requirements: 0 < d < n and n*d even.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("graph: RandomRegular needs n > 0, got %d", n)
	case d <= 0 || d >= n:
		return nil, fmt.Errorf("graph: RandomRegular needs 0 < d < n, got d=%d n=%d", d, n)
	case n*d%2 != 0:
		return nil, fmt.Errorf("graph: RandomRegular needs n*d even, got n=%d d=%d", n, d)
	}
	r := rng.New(seed)
	const maxAttempts = 32
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if g, ok := pairingModel(n, d, r); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d,d=%d,seed=%d) failed after %d attempts",
		n, d, seed, maxAttempts)
}

// pairingModel draws one configuration-model sample and repairs bad
// pairs (self-loops, duplicate edges) by swapping endpoints with
// randomly chosen other pairs. Returns ok=false if repair stalls.
func pairingModel(n, d int, r *rng.SplitMix64) (*Graph, bool) {
	m := n * d / 2
	points := make([]int, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			points[v*d+k] = v
		}
	}
	r.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })

	type pair struct{ u, v int }
	pairs := make([]pair, m)
	for i := 0; i < m; i++ {
		pairs[i] = pair{points[2*i], points[2*i+1]}
	}

	key := func(p pair) int64 {
		u, v := p.u, p.v
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	seen := make(map[int64]int, m) // canonical edge -> multiplicity
	for _, p := range pairs {
		seen[key(p)]++
	}
	bad := func(p pair) bool { return p.u == p.v || seen[key(p)] > 1 }

	// Repair with a worklist: for each bad pair, swap its second
	// endpoint with a random other pair's second endpoint when the
	// swap removes the badness without creating new conflicts.
	work := make([]int, 0, m/8)
	for j := range pairs {
		if bad(pairs[j]) {
			work = append(work, j)
		}
	}
	budget := 50*len(work) + 16*m
	for iter := 0; len(work) > 0; iter++ {
		if iter > budget {
			return nil, false
		}
		i := work[len(work)-1]
		if !bad(pairs[i]) {
			work = work[:len(work)-1]
			continue
		}
		j := r.Intn(m)
		if j == i {
			continue
		}
		pi, pj := pairs[i], pairs[j]
		np1 := pair{pi.u, pj.v}
		np2 := pair{pj.u, pi.v}
		if np1.u == np1.v || np2.u == np2.v {
			continue
		}
		// Tentatively apply the swap and check multiplicities.
		seen[key(pi)]--
		seen[key(pj)]--
		if seen[key(np1)] > 0 || seen[key(np2)] > 0 || key(np1) == key(np2) {
			seen[key(pi)]++
			seen[key(pj)]++
			continue
		}
		seen[key(np1)]++
		seen[key(np2)]++
		pairs[i], pairs[j] = np1, np2
		// The partner pair j was previously good (its key count was 1)
		// and stays good by the check above, so only i needs re-check,
		// which the loop head performs.
	}
	b := NewBuilder(n)
	for _, p := range pairs {
		b.AddEdge(p.u, p.v)
	}
	g := b.Build()
	return g, g.IsRegular(d)
}
