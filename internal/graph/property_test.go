package graph

import (
	"testing"
	"testing/quick"

	"lineartime/internal/bitset"
	"lineartime/internal/rng"
)

// Structural consistency properties across random graphs and subsets.

func randomSubset(n int, seed uint64, target int) *bitset.Set {
	s := bitset.New(n)
	r := rng.New(seed)
	for s.Count() < target {
		s.Add(r.Intn(n))
	}
	return s
}

// Property: components of a restriction partition the restriction.
func TestComponentsPartitionQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		g, err := RandomRegular(30, 4, seed)
		if err != nil {
			return true
		}
		within := randomSubset(30, seed^0xbeef, 18)
		comps := g.ConnectedComponents(within)
		seen := bitset.New(30)
		total := 0
		for _, c := range comps {
			if !c.SubsetOf(within) {
				return false
			}
			c.ForEach(func(v int) {
				if seen.Contains(v) {
					total = -1 << 20 // overlap
				}
				seen.Add(v)
			})
			total += c.Count()
		}
		return total == within.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: no edges cross between distinct components.
func TestComponentsNoCrossEdgesQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		g, err := RandomRegular(24, 4, seed)
		if err != nil {
			return true
		}
		within := randomSubset(24, seed^0xf00d, 12)
		comps := g.ConnectedComponents(within)
		for i := range comps {
			for j := i + 1; j < len(comps); j++ {
				if g.EdgesBetween(comps[i], comps[j]) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the induced subgraph's edge count equals vol(S), and its
// degrees match DegreeIn.
func TestInducedSubgraphConsistencyQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		g, err := RandomRegular(26, 6, seed)
		if err != nil {
			return true
		}
		s := randomSubset(26, seed^0xc0ffee, 14)
		sub, names := g.InducedSubgraph(s)
		if sub.NumEdges() != g.Volume(s) {
			return false
		}
		for i, orig := range names {
			if sub.Degree(i) != g.DegreeIn(orig, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: e(A,B) + e(B,A) symmetry and e(A, V∖A) equals the
// handshake-complement identity d·|A| − 2·vol(A) for regular graphs.
func TestBoundaryIdentityQuick(t *testing.T) {
	const n, d = 24, 4
	prop := func(seed uint64) bool {
		g, err := RandomRegular(n, d, seed)
		if err != nil {
			return true
		}
		a := randomSubset(n, seed^0xabcd, 10)
		comp := a.Clone()
		comp.Complement()
		boundary := g.EdgesBetween(a, comp)
		if boundary != g.EdgesBetween(comp, a) {
			return false
		}
		return boundary == d*a.Count()-2*g.Volume(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
