package graph

import (
	"testing"
	"testing/quick"

	"lineartime/internal/bitset"
)

func setOf(n int, members ...int) *bitset.Set {
	s := bitset.New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 2) // self-loop dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self-loop created degree: %d", g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(6)
	if !g.IsRegular(5) {
		t.Fatal("K_6 not 5-regular")
	}
	if g.NumEdges() != 15 {
		t.Fatalf("K_6 edges = %d, want 15", g.NumEdges())
	}
	if g.Diameter() != 1 {
		t.Fatalf("K_6 diameter = %d, want 1", g.Diameter())
	}
}

func TestCycleGraph(t *testing.T) {
	g := Cycle(8)
	if !g.IsRegular(2) {
		t.Fatal("C_8 not 2-regular")
	}
	if g.Diameter() != 4 {
		t.Fatalf("C_8 diameter = %d, want 4", g.Diameter())
	}
	if !g.IsConnected() {
		t.Fatal("C_8 not connected")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || !g.IsRegular(4) {
		t.Fatalf("Q_4 wrong shape: n=%d", g.N())
	}
	if g.Diameter() != 4 {
		t.Fatalf("Q_4 diameter = %d, want 4", g.Diameter())
	}
}

func TestCirculant(t *testing.T) {
	g := Circulant(10, []int{1, 3})
	if !g.IsRegular(4) {
		t.Fatal("C_10(1,3) not 4-regular")
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(0, 7) {
		t.Fatal("generator 3 edges missing")
	}
}

func TestQuadraticCirculantConnected(t *testing.T) {
	for _, n := range []int{10, 50, 101, 256} {
		g := QuadraticCirculant(n, 8)
		if !g.IsConnected() {
			t.Fatalf("QuadraticCirculant(%d, 8) disconnected", n)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	cases := []struct{ n, d int }{
		{10, 4}, {50, 6}, {64, 8}, {100, 3}, {31, 4},
	}
	for _, c := range cases {
		g, err := RandomRegular(c.n, c.d, 12345)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", c.n, c.d, err)
		}
		if !g.IsRegular(c.d) {
			t.Fatalf("RandomRegular(%d,%d) not regular", c.n, c.d)
		}
		if !g.IsConnected() {
			t.Fatalf("RandomRegular(%d,%d) disconnected", c.n, c.d)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a, err := RandomRegular(40, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(40, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 40; v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		if len(av) != len(bv) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Fatal("d >= n accepted")
	}
	if _, err := RandomRegular(0, 2, 1); err == nil {
		t.Fatal("n = 0 accepted")
	}
	if _, err := RandomRegular(10, 0, 1); err == nil {
		t.Fatal("d = 0 accepted")
	}
}

func TestNeighborhoodGrowth(t *testing.T) {
	g := Cycle(10)
	n1 := g.NeighborhoodOf(0, 1)
	if n1.Count() != 3 { // {9, 0, 1}
		t.Fatalf("N^1 count = %d, want 3", n1.Count())
	}
	n2 := g.NeighborhoodOf(0, 2)
	if n2.Count() != 5 {
		t.Fatalf("N^2 count = %d, want 5", n2.Count())
	}
	if !n1.SubsetOf(n2) {
		t.Fatal("N^1 not subset of N^2")
	}
}

// Property: neighborhoods are monotone in radius for random regular graphs.
func TestNeighborhoodMonotoneQuick(t *testing.T) {
	prop := func(seed uint64, vRaw uint8) bool {
		g, err := RandomRegular(30, 4, seed)
		if err != nil {
			return true // skip unbuildable seeds (shouldn't happen)
		}
		v := int(vRaw) % 30
		prev := g.NeighborhoodOf(v, 0)
		for r := 1; r <= 5; r++ {
			cur := g.NeighborhoodOf(v, r)
			if !prev.SubsetOf(cur) {
				return false
			}
			prev = cur
		}
		return prev.Count() <= 30
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesBetweenAndVolume(t *testing.T) {
	// Path 0-1-2-3 plus edge 0-2.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 2)
	g := b.Build()

	a := setOf(4, 0, 1)
	c := setOf(4, 2, 3)
	if got := g.EdgesBetween(a, c); got != 2 { // 1-2 and 0-2
		t.Fatalf("EdgesBetween = %d, want 2", got)
	}
	s := setOf(4, 0, 1, 2)
	if got := g.Volume(s); got != 3 { // 0-1, 1-2, 0-2
		t.Fatalf("Volume = %d, want 3", got)
	}
	if got := g.DegreeIn(0, s); got != 2 {
		t.Fatalf("DegreeIn = %d, want 2", got)
	}
}

// Property: handshake — sum over v of DegreeIn(v, S) for v in S equals 2*vol(S).
func TestHandshakeQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		g, err := RandomRegular(24, 4, seed)
		if err != nil {
			return true
		}
		s := bitset.New(24)
		r := seed
		for i := 0; i < 12; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			s.Add(int(r>>33) % 24)
		}
		sum := 0
		s.ForEach(func(v int) { sum += g.DegreeIn(v, s) })
		return sum == 2*g.Volume(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, names := g.InducedSubgraph(setOf(5, 1, 3, 4))
	if sub.N() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K_3 wrong: n=%d m=%d", sub.N(), sub.NumEdges())
	}
	want := []int{1, 3, 4}
	for i, v := range names {
		if v != want[i] {
			t.Fatalf("names[%d] = %d, want %d", i, v, want[i])
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	all := bitset.New(6)
	all.Fill()
	comps := g.ConnectedComponents(all)
	if len(comps) != 4 { // {0,1}, {2,3}, {4}, {5}
		t.Fatalf("components = %d, want 4", len(comps))
	}
	within := setOf(6, 0, 2, 3)
	comps = g.ConnectedComponents(within)
	if len(comps) != 2 {
		t.Fatalf("restricted components = %d, want 2", len(comps))
	}
}

func TestDiameterDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.Diameter() != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", g.Diameter())
	}
}

func TestMinMaxDegree(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	if g.MaxDegree() != 3 || g.MinDegree() != 1 {
		t.Fatalf("min/max degree = %d/%d, want 1/3", g.MinDegree(), g.MaxDegree())
	}
}
