package graph

import (
	"reflect"
	"sort"
	"testing"
)

// The shift construction must be exactly the circulant on its
// generator set: materializing the implicit Neighborhood has to
// reproduce Circulant's adjacency byte for byte, or the
// implicit/materialized parity guarantees upstream are vacuous.
func TestShiftMatchesCirculant(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		seed uint64
	}{
		{n: 16, d: 4, seed: 1},
		{n: 97, d: 8, seed: 7},
		{n: 128, d: 7, seed: 42},
		{n: 500, d: 16, seed: 3},
		{n: 501, d: 16, seed: 3},
		{n: 10, d: 9, seed: 9},
	} {
		s, err := NewShift(tc.n, tc.d, tc.seed)
		if err != nil {
			t.Fatalf("NewShift(%d, %d, %d): %v", tc.n, tc.d, tc.seed, err)
		}
		got := Materialize(s)
		want := Circulant(tc.n, s.Generators())
		if !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d d=%d seed=%d: materialized shift differs from Circulant(gens=%v)",
				tc.n, tc.d, tc.seed, s.Generators())
		}
	}
}

func TestShiftProperties(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		seed uint64
	}{
		{n: 64, d: 6, seed: 11},
		{n: 64, d: 7, seed: 11},
		{n: 101, d: 10, seed: 2},
		{n: 1 << 16, d: 16, seed: 5},
		{n: 9, d: 8, seed: 1}, // k == full: complete graph K_9
	} {
		s, err := NewShift(tc.n, tc.d, tc.seed)
		if err != nil {
			t.Fatalf("NewShift(%d, %d, %d): %v", tc.n, tc.d, tc.seed, err)
		}
		if s.N() != tc.n || s.MaxDegree() != tc.d {
			t.Fatalf("n=%d d=%d: got N=%d MaxDegree=%d", tc.n, tc.d, s.N(), s.MaxDegree())
		}
		gens := s.Generators()
		for i, g := range gens {
			if g < 1 || g > tc.n/2 {
				t.Errorf("n=%d d=%d: generator %d out of [1, n/2]", tc.n, tc.d, g)
			}
			if i > 0 && gens[i] <= gens[i-1] {
				t.Errorf("n=%d d=%d: generators not strictly ascending: %v", tc.n, tc.d, gens)
			}
		}
		buf := make([]int, 0, tc.d)
		probe := []int{0, 1, tc.n / 2, tc.n - 1}
		for _, v := range probe {
			nbrs := s.AppendNeighbors(v, buf[:0])
			if len(nbrs) != tc.d {
				t.Fatalf("n=%d d=%d v=%d: got %d neighbors", tc.n, tc.d, v, len(nbrs))
			}
			if !sort.IntsAreSorted(nbrs) {
				t.Errorf("n=%d d=%d v=%d: neighbors not sorted: %v", tc.n, tc.d, v, nbrs)
			}
			for i, w := range nbrs {
				if w == v {
					t.Errorf("n=%d d=%d v=%d: self-loop", tc.n, tc.d, v)
				}
				if i > 0 && nbrs[i] == nbrs[i-1] {
					t.Errorf("n=%d d=%d v=%d: duplicate neighbor %d", tc.n, tc.d, v, w)
				}
			}
		}
	}
}

func TestShiftDeterministic(t *testing.T) {
	a, err := NewShift(4096, 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShift(4096, 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Generators(), b.Generators()) {
		t.Fatalf("same (n, d, seed) produced different generators: %v vs %v",
			a.Generators(), b.Generators())
	}
	c, err := NewShift(4096, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Generators(), c.Generators()) {
		t.Fatalf("different seeds produced identical generators: %v", a.Generators())
	}
}

func TestShiftConnected(t *testing.T) {
	// Generator 1 present (complete connection set) — connected.
	s, err := NewShift(9, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Connected() {
		t.Fatal("K_9 shift reported disconnected")
	}
	// Hand-built disconnected case: n=12 with gens {3, 6} has
	// gcd 3 — Connected must see through to the gcd criterion.
	d := &Shift{n: 12, deg: 3, gens: []int{3, 6}}
	if d.Connected() {
		t.Fatal("gcd-3 circulant reported connected")
	}
	m := Materialize(d)
	if m.IsConnected() {
		t.Fatal("materialized gcd-3 circulant actually connected; gcd criterion wrong")
	}
}

func TestShiftErrors(t *testing.T) {
	if _, err := NewShift(1, 1, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewShift(9, 3, 0); err == nil {
		t.Error("odd degree with odd n accepted")
	}
	if _, err := NewShift(8, 8, 0); err == nil {
		t.Error("degree n accepted")
	}
}

// AppendNeighbors into a pre-sized buffer must not allocate — the
// engines call it once per node per round at gigascale n.
func TestShiftAppendNeighborsZeroAlloc(t *testing.T) {
	s, err := NewShift(1<<20, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, s.MaxDegree())
	allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendNeighbors(0, buf[:0])
		buf = s.AppendNeighbors(12345, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendNeighbors allocated %v allocs/op", allocs)
	}
}

// Graph itself satisfies Neighborhood with identical output.
func TestGraphAppendNeighbors(t *testing.T) {
	g := Circulant(10, []int{1, 3})
	var nb Neighborhood = g
	for v := 0; v < g.N(); v++ {
		got := nb.AppendNeighbors(v, nil)
		if !reflect.DeepEqual(got, g.Neighbors(v)) {
			t.Fatalf("v=%d: AppendNeighbors %v != Neighbors %v", v, got, g.Neighbors(v))
		}
	}
}
