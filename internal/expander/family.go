package expander

import (
	"fmt"
	"sync"
)

// BroadcastDegree is the degree of the broadcast graph H used by
// Spread-Common-Value Part 1 and AB-Consensus Part 3. The paper
// requires ∆ ≥ 64 so that h(H) ≥ ∆/3; we keep 64 but cap it at n−1.
const BroadcastDegree = 64

// NewBroadcastGraph builds the overlay H on n vertices (§4.2): a
// verified expander of degree min(BroadcastDegree, n−1).
func NewBroadcastGraph(n int, seed uint64) (*Overlay, error) {
	return NewBroadcastGraphMode(n, seed, Mode{})
}

// NewBroadcastGraphMode is NewBroadcastGraph with an explicit
// construction mode (family and implicit/materialized choice).
func NewBroadcastGraphMode(n int, seed uint64, mode Mode) (*Overlay, error) {
	d := BroadcastDegree
	if d >= n {
		d = n - 1
	}
	o, err := New(n, mode.apply(Options{Degree: d, Seed: seed}))
	if err != nil {
		return nil, fmt.Errorf("broadcast graph H: %w", err)
	}
	return o, nil
}

// InquiryFamily is the family of graphs G_1, G_2, ... with degrees
// growing geometrically (Lemma 5; Part 3 of Many-Crashes-Consensus;
// Part 2 of Spread-Common-Value; the per-phase graphs of Gossip).
// Phase i uses a graph of degree ≈ base·2^i, capped at the complete
// graph. Construction is lazy and memoized; all graphs are verified
// expanders built from the same base seed, so every node of a
// simulated system deterministically agrees on the family.
type InquiryFamily struct {
	n    int
	base int
	cap  int
	seed uint64
	mode Mode

	mu     sync.Mutex
	graphs []*Overlay // index 0 = phase 1
}

// WithMode sets the construction mode for every graph of the family.
// Call before the first Phase; it returns f for chaining at the
// construction site.
func (f *InquiryFamily) WithMode(mode Mode) *InquiryFamily {
	f.mode = mode
	return f
}

// NewInquiryFamily creates the family for n vertices. base is the
// degree multiplier (paper: constants like 10 or 64/(3(1−α)(1+3α));
// we default to 8 when base <= 0).
func NewInquiryFamily(n, base int, seed uint64) *InquiryFamily {
	if base <= 0 {
		base = 8
	}
	return &InquiryFamily{n: n, base: base, cap: n - 1, seed: seed}
}

// NewCappedInquiryFamily creates a family whose degrees saturate at
// `cap` instead of n−1. The single-port compilation uses this: §8
// observes that inquiring O(t) links per node suffices, so the
// schedule need not reserve port slots beyond a Θ(t) degree.
func NewCappedInquiryFamily(n, base, cap int, seed uint64) *InquiryFamily {
	if base <= 0 {
		base = 8
	}
	if cap > n-1 || cap <= 0 {
		cap = n - 1
	}
	if cap < base {
		cap = base
	}
	return &InquiryFamily{n: n, base: base, cap: cap, seed: seed}
}

// N returns the vertex count of the family's graphs.
func (f *InquiryFamily) N() int { return f.n }

// MaxPhases returns the number of phases after which the graph degree
// saturates at the cap; inquiring beyond that cannot help.
func (f *InquiryFamily) MaxPhases() int {
	p := 1
	for d := f.base * 2; d < f.cap; d *= 2 {
		p++
	}
	return p
}

// PhaseDegree returns the degree of the phase-i overlay without
// constructing it: base·2^{i−1} saturating at the cap.
func (f *InquiryFamily) PhaseDegree(i int) int {
	d := f.base
	for k := 1; k < i; k++ {
		d *= 2
		if d >= f.cap {
			return f.cap
		}
	}
	if d > f.cap {
		d = f.cap
	}
	return d
}

// Phase returns the overlay for phase i (1-based). Degrees grow as
// base·2^{i−1}, saturating at the cap (n−1 by default). Safe for
// concurrent use: the goroutine-per-node runtime hits the memoization
// from many nodes at once.
func (f *InquiryFamily) Phase(i int) (*Overlay, error) {
	if i < 1 {
		return nil, fmt.Errorf("expander: inquiry phase must be ≥ 1, got %d", i)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.graphs) < i {
		idx := len(f.graphs) + 1
		o, err := New(f.n, f.mode.apply(Options{Degree: f.PhaseDegree(idx), Seed: f.seed + uint64(idx)*0x1000193}))
		if err != nil {
			return nil, fmt.Errorf("inquiry graph G_%d: %w", idx, err)
		}
		f.graphs = append(f.graphs, o)
	}
	return f.graphs[i-1], nil
}
