package expander

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"lineartime/internal/bitset"
	"lineartime/internal/rng"
)

func mustOverlay(t *testing.T, n int, opts Options) *Overlay {
	t.Helper()
	o, err := New(n, opts)
	if err != nil {
		t.Fatalf("New(%d): %v", n, err)
	}
	return o
}

func TestNewVerifiedOverlay(t *testing.T) {
	for _, n := range []int{50, 128, 500} {
		o := mustOverlay(t, n, Options{Seed: 1})
		if !o.G.IsRegular(o.P.Degree) {
			t.Fatalf("n=%d: overlay not regular", n)
		}
		if !o.G.IsConnected() {
			t.Fatalf("n=%d: overlay disconnected", n)
		}
		// Spectral verification runs when the overlay is sparse
		// (4d < n); denser overlays skip it by design.
		if 4*o.P.Degree < n && (o.Lambda <= 0 || math.IsNaN(o.Lambda)) {
			t.Fatalf("n=%d: missing verified λ", n)
		}
	}
}

func TestTinyOverlayIsComplete(t *testing.T) {
	o := mustOverlay(t, 5, Options{Seed: 1})
	if o.P.Degree != 4 || o.G.NumEdges() != 10 {
		t.Fatalf("tiny overlay not K_5: d=%d m=%d", o.P.Degree, o.G.NumEdges())
	}
}

func TestNewRejectsBadN(t *testing.T) {
	if _, err := New(0, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestSkipVerify(t *testing.T) {
	o := mustOverlay(t, 100, Options{Seed: 1, SkipVerify: true})
	if !math.IsNaN(o.Lambda) {
		t.Fatalf("SkipVerify should leave Lambda NaN, got %v", o.Lambda)
	}
}

func TestParams(t *testing.T) {
	o := mustOverlay(t, 256, Options{Seed: 1})
	if o.P.Gamma != 2+8 {
		t.Fatalf("γ = %d, want 10 for n=256", o.P.Gamma)
	}
	if o.P.Delta != o.P.Degree/4 {
		t.Fatalf("δ = %d, want d/4 = %d", o.P.Delta, o.P.Degree/4)
	}
	if o.P.Ell <= 0 || o.P.Ell > 256 {
		t.Fatalf("ℓ = %d out of range", o.P.Ell)
	}
}

func TestPaperConstants(t *testing.T) {
	d := PaperDegree()
	if d != 390625 {
		t.Fatalf("PaperDegree = %d, want 5^8", d)
	}
	// δ(5^8) = (5^7 − 5^5)/2 = (78125 − 3125)/2 = 37500.
	if got := PaperDeltaFloat(d); math.Abs(got-37500) > 1 {
		t.Fatalf("PaperDeltaFloat(5^8) = %v, want 37500", got)
	}
	// ℓ(n, 5^8) = 4n·5^{−1} = 4n/5.
	if got := PaperEll(1000000, d); got != 800000 {
		t.Fatalf("PaperEll(1e6, 5^8) = %d, want 800000", got)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSurvivalSubsetInvariants(t *testing.T) {
	o := mustOverlay(t, 200, Options{Seed: 3})
	b := bitset.New(200)
	r := rng.New(7)
	for b.Count() < 160 {
		b.Add(r.Intn(200))
	}
	delta := o.P.Delta
	c := o.SurvivalSubset(b, delta)
	if !c.SubsetOf(b) {
		t.Fatal("survival subset not a subset of B")
	}
	c.ForEach(func(v int) {
		if d := o.G.DegreeIn(v, c); d < delta {
			t.Fatalf("vertex %d has only %d < δ=%d neighbors inside C", v, d, delta)
		}
	})
}

// Property: the survival subset is maximal — adding back any removed
// vertex must leave it with < δ neighbors in C ∪ {v}.
func TestSurvivalSubsetMaximalQuick(t *testing.T) {
	o := mustOverlay(t, 120, Options{Seed: 5})
	prop := func(seed uint64) bool {
		b := bitset.New(120)
		r := rng.New(seed)
		for b.Count() < 90 {
			b.Add(r.Intn(120))
		}
		delta := o.P.Delta
		c := o.SurvivalSubset(b, delta)
		ok := true
		b.ForEach(func(v int) {
			if c.Contains(v) {
				return
			}
			cv := c.Clone()
			cv.Add(v)
			if o.G.DegreeIn(v, cv) >= delta {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactnessOnLargeSets(t *testing.T) {
	// Theorem 2 shape: removing up to t = n/5 vertices still leaves a
	// δ-survival subset covering most of the remainder.
	o := mustOverlay(t, 300, Options{Seed: 11})
	b := bitset.New(300)
	b.Fill()
	r := rng.New(13)
	removed := 0
	for removed < 60 { // t = n/5
		v := r.Intn(300)
		if b.Contains(v) {
			b.Remove(v)
			removed++
		}
	}
	c, ok := o.VerifyCompactness(b, o.P.Ell, o.P.Delta)
	if !ok {
		t.Fatalf("compactness failed: survival set has %d < 3ℓ/4 = %d vertices",
			c.Count(), 3*o.P.Ell/4)
	}
}

func TestDenseNeighborhoodFullSet(t *testing.T) {
	o := mustOverlay(t, 128, Options{Seed: 2})
	all := bitset.New(128)
	all.Fill()
	// With no faults every vertex has a dense neighborhood (its whole
	// γ-ball, each inner vertex keeping full degree d ≥ δ).
	for _, v := range []int{0, 17, 127} {
		if !o.HasDenseNeighborhood(v, all, o.P.Gamma, o.P.Delta) {
			t.Fatalf("vertex %d lacks dense neighborhood in fault-free graph", v)
		}
	}
}

func TestDenseNeighborhoodIsolatedVertex(t *testing.T) {
	o := mustOverlay(t, 128, Options{Seed: 2})
	// A vertex whose entire neighborhood is removed cannot have a
	// dense neighborhood for δ ≥ 1.
	v := 5
	b := bitset.New(128)
	b.Fill()
	for _, w := range o.G.Neighbors(v) {
		b.Remove(w)
	}
	if o.HasDenseNeighborhood(v, b, o.P.Gamma, o.P.Delta) {
		t.Fatal("isolated vertex reported dense neighborhood")
	}
	if o.HasDenseNeighborhood(v, bitset.New(128), o.P.Gamma, o.P.Delta) {
		t.Fatal("vertex outside B reported dense neighborhood")
	}
}

func TestBroadcastGraph(t *testing.T) {
	o, err := NewBroadcastGraph(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.P.Degree < 64 {
		t.Fatalf("H degree = %d, want ≥ 64", o.P.Degree)
	}
	small, err := NewBroadcastGraph(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.P.Degree != 9 {
		t.Fatalf("small H degree = %d, want 9 (complete)", small.P.Degree)
	}
}

func TestInquiryFamilyDegreesDouble(t *testing.T) {
	f := NewInquiryFamily(512, 8, 1)
	prev := 0
	for i := 1; i <= f.MaxPhases(); i++ {
		o, err := f.Phase(i)
		if err != nil {
			t.Fatalf("phase %d: %v", i, err)
		}
		d := o.P.Degree
		if i > 1 && d < prev {
			t.Fatalf("phase %d degree %d decreased from %d", i, d, prev)
		}
		prev = d
	}
	if prev < 255 {
		t.Fatalf("final phase degree %d does not saturate toward n", prev)
	}
	if _, err := f.Phase(0); err == nil {
		t.Fatal("phase 0 accepted")
	}
}

func TestInquiryFamilyMemoized(t *testing.T) {
	f := NewInquiryFamily(64, 8, 9)
	a, err := f.Phase(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Phase(2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("family not memoized")
	}
}

func TestDescribe(t *testing.T) {
	o := mustOverlay(t, 64, Options{Seed: 1})
	if s := o.Describe(); !strings.Contains(s, "overlay n=64") {
		t.Fatalf("Describe output unexpected: %q", s)
	}
}
