// Package expander is the overlay-network layer of the library. It
// turns the graph and spectral substrates into the objects the paper's
// algorithms consume:
//
//   - verified expander overlays standing in for Ramanujan graphs
//     G(n,d) (§3), with the quantities ℓ(n,d) = 4n·d^{-1/8} and
//     δ(d) = (d^{7/8} − d^{5/8})/2,
//   - survival subsets and the fixed-point operator F_B from the
//     compactness proof (Theorem 2),
//   - the (γ,δ)-dense-neighborhood predicate (§2),
//   - the broadcast graph H of degree ≥ 64 used by Spread-Common-Value
//     (§4.2) and AB-Consensus (§7), and
//   - the inquiry-graph family G_i with degrees growing as 2^i
//     (Lemma 5 and the Many-Crashes Part 3 schedule).
//
// Substitution note (see DESIGN.md §3): the paper's constants are
// galactic (d = 5^8). We keep every formula but parameterize the
// degree; overlays are constructed from seeded random regular graphs
// and *verified* against the Ramanujan bound λ ≤ 2√(d−1)·(1+slack),
// deterministically re-seeding until the check passes.
package expander

import (
	"fmt"
	"math"

	"lineartime/internal/bitset"
	"lineartime/internal/graph"
	"lineartime/internal/spectral"
)

// DefaultDegree is the laptop-scale overlay degree used when the
// caller does not choose one. It is even (the constructor needs n*d
// even for every n) and large enough that local probing with
// δ = d/4 tolerates the crash fractions in the paper's assumptions.
const DefaultDegree = 16

// DefaultSlack is the multiplicative tolerance on the Ramanujan bound
// accepted by Verify. Random regular graphs are near-Ramanujan, not
// exactly Ramanujan, and the power iteration is an estimate.
const DefaultSlack = 0.25

// PaperDegree returns the paper's degree choice for the little-nodes
// overlay: d = 5^8 (§4.1). Only meaningful for astronomically large n;
// provided for documentation and the constants tests.
func PaperDegree() int { return 390625 } // 5^8

// PaperDeltaFloat returns δ(d) = (d^{7/8} − d^{5/8})/2 from §3.
func PaperDeltaFloat(d int) float64 {
	df := float64(d)
	return (math.Pow(df, 7.0/8.0) - math.Pow(df, 5.0/8.0)) / 2
}

// PaperEll returns ℓ(n,d) = 4n·d^{−1/8} from §3 (rounded down).
func PaperEll(n, d int) int {
	return int(4 * float64(n) * math.Pow(float64(d), -1.0/8.0))
}

// Params bundles the quantities an overlay exposes to local probing
// and the agreement algorithms.
type Params struct {
	// N is the number of vertices of the overlay.
	N int
	// Degree is the (regular) vertex degree d.
	Degree int
	// Delta is the survival threshold δ used by local probing: a node
	// pauses when it receives fewer than Delta messages in a probing
	// round. Scaled default: d/4. Paper formula: PaperDeltaFloat.
	Delta int
	// Gamma is the probing duration γ = 2 + ceil(lg N) (Theorem 3).
	Gamma int
	// Ell is ℓ: the set size at which compactness guarantees a
	// δ-survival subset of 3/4 of the vertices (Theorem 2). With
	// scaled constants we keep the paper's role: Ell = 4N·d^{−1/8}
	// capped at N.
	Ell int
}

// Family selects the graph construction an overlay is built from.
type Family int

const (
	// FamilyRandomRegular is the default pairing-model random regular
	// construction, verified against the Ramanujan bound. Its repair
	// step is global, so it always materializes.
	FamilyRandomRegular Family = iota
	// FamilyShift is the seeded shift (circulant) family
	// (graph.Shift): locally computable — any vertex's neighbor list
	// is recomputable in O(d) from (n, d, seed) — which is what makes
	// implicit overlays possible. As a constant-degree Abelian Cayley
	// graph it provably cannot meet the Ramanujan bound at large n, so
	// it is verified by the gcd connectivity criterion, with the exact
	// circulant eigenvalue recorded (small n only) instead of gated.
	FamilyShift
)

// Mode bundles the construction-family choice as it threads from a
// scenario spec down through every overlay a protocol builds (little
// overlay, broadcast graph, inquiry family). The zero value is the
// default materialized random regular family.
type Mode struct {
	Family   Family
	Implicit bool
}

// apply copies the mode into construction options.
func (m Mode) apply(opts Options) Options {
	opts.Family = m.Family
	opts.Implicit = m.Implicit
	return opts
}

// Overlay is a verified expander overlay network.
//
// A materialized overlay stores its adjacency in G (and NB aliases
// it); an implicit overlay (FamilyShift with Options.Implicit) leaves
// G nil and carries only the O(d)-state generator in NB. Protocol
// code reads topology through Neighbors/AppendNeighbors, which serve
// both representations.
type Overlay struct {
	G      *graph.Graph
	NB     graph.Neighborhood
	P      Params
	Lambda float64 // estimated second eigenvalue
	Seed   uint64  // seed that passed verification
}

// Options configures overlay construction.
type Options struct {
	Degree int     // 0 → DefaultDegree (or n-1 for tiny n)
	Delta  int     // 0 → Degree/4 (min 1)
	Slack  float64 // 0 → DefaultSlack
	Seed   uint64  // base seed; rotation appends attempt index
	// MaxSeedRotations bounds the deterministic re-seeding loop.
	MaxSeedRotations int
	// SkipVerify skips the spectral check (used for huge overlays in
	// benchmarks where the check dominates runtime; the construction
	// is still the same near-Ramanujan family).
	SkipVerify bool
	// Family selects the construction; zero value is the default
	// random regular family.
	Family Family
	// Implicit leaves the overlay unmaterialized: O(n·d) adjacency
	// words are never allocated and every neighbor list is recomputed
	// on demand. Requires FamilyShift (the only locally computable
	// family); tiny instances (n ≤ d+1) still degenerate to a
	// materialized complete graph — at that size the adjacency is
	// O(d²) words, below any memory wall.
	Implicit bool
}

// New constructs a verified expander overlay on n vertices.
//
// For n ≤ Degree+1 the overlay degenerates to the complete graph K_n,
// which is the best possible expander and keeps every protocol correct
// on tiny instances.
func New(n int, opts Options) (*Overlay, error) {
	if n <= 0 {
		return nil, fmt.Errorf("expander: overlay needs n > 0, got %d", n)
	}
	d := opts.Degree
	if d == 0 {
		d = DefaultDegree
	}
	slack := opts.Slack
	if slack == 0 {
		slack = DefaultSlack
	}
	rotations := opts.MaxSeedRotations
	if rotations == 0 {
		rotations = 16
	}

	if opts.Implicit && opts.Family != FamilyShift {
		return nil, fmt.Errorf("expander: implicit overlays need the shift family (family %d is not locally computable)", opts.Family)
	}

	if n <= d+1 {
		g := graph.Complete(n)
		d = n - 1
		return &Overlay{G: g, NB: g, P: paramsFor(n, d, opts.Delta), Lambda: 1, Seed: opts.Seed}, nil
	}
	if n*d%2 != 0 {
		d++ // keep n*d even; one extra degree only helps expansion
	}

	if opts.Family == FamilyShift {
		return newShift(n, d, opts)
	}

	var lastErr error
	for attempt := 0; attempt < rotations; attempt++ {
		seed := opts.Seed + uint64(attempt)*0x9e3779b97f4a7c15
		g, err := graph.RandomRegular(n, d, seed)
		if err != nil {
			lastErr = err
			continue
		}
		// Dense overlays (d ≥ n/4) are far above any expansion
		// threshold the protocols need; verifying them costs O(n·m)
		// per power iteration for no information. Skip, like
		// SkipVerify, but still require connectivity.
		if opts.SkipVerify || 4*d >= n {
			if g.IsConnected() {
				return &Overlay{G: g, NB: g, P: paramsFor(n, d, opts.Delta), Lambda: math.NaN(), Seed: seed}, nil
			}
			lastErr = fmt.Errorf("expander: seed %d gave a disconnected graph", seed)
			continue
		}
		ok, lambda := spectral.IsNearRamanujan(g, d, slack, spectral.Options{Seed: seed})
		if ok && g.IsConnected() {
			return &Overlay{G: g, NB: g, P: paramsFor(n, d, opts.Delta), Lambda: lambda, Seed: seed}, nil
		}
		lastErr = fmt.Errorf("expander: seed %d gave λ=%.3f > (1+%.2f)·%.3f or disconnected",
			seed, lambda, slack, spectral.RamanujanBound(d))
	}
	return nil, fmt.Errorf("expander: no verified overlay for n=%d d=%d after %d seeds: %w",
		n, d, rotations, lastErr)
}

// lambdaExactCap bounds the n at which shift overlays record their
// exact circulant eigenvalue: the closed form is O(n·d), cheap here
// but pointless at gigascale where the whole point of implicit mode
// is to touch nothing per-vertex at construction time.
const lambdaExactCap = 1 << 15

// newShift builds a FamilyShift overlay: seeded circulant generators,
// verified by the gcd connectivity criterion (shift graphs do not
// gate on the Ramanujan bound — see graph.Shift), with the exact
// spectral λ recorded for small n and NaN above lambdaExactCap. Both
// the implicit and materialized variants run this identical
// construction and record the identical Lambda, so switching Implicit
// changes representation only, never results.
func newShift(n, d int, opts Options) (*Overlay, error) {
	rotations := opts.MaxSeedRotations
	if rotations == 0 {
		rotations = 16
	}
	var lastErr error
	for attempt := 0; attempt < rotations; attempt++ {
		seed := opts.Seed + uint64(attempt)*0x9e3779b97f4a7c15
		sh, err := graph.NewShift(n, d, seed)
		if err != nil {
			return nil, fmt.Errorf("expander: shift overlay n=%d d=%d: %w", n, d, err)
		}
		if !sh.Connected() {
			lastErr = fmt.Errorf("expander: shift seed %d gave a disconnected circulant (gens %v)", seed, sh.Generators())
			continue
		}
		lambda := math.NaN()
		if !opts.SkipVerify && n <= lambdaExactCap {
			lambda = spectral.CirculantLambda(n, sh.Generators())
		}
		o := &Overlay{NB: sh, P: paramsFor(n, d, opts.Delta), Lambda: lambda, Seed: seed}
		if !opts.Implicit {
			g := graph.Materialize(sh)
			o.G, o.NB = g, g
		}
		return o, nil
	}
	return nil, fmt.Errorf("expander: no connected shift overlay for n=%d d=%d after %d seeds: %w",
		n, d, rotations, lastErr)
}

// Neighborhood returns the overlay's topology as a Neighborhood
// generator. Overlays assembled literally in tests may predate NB;
// fall back to the materialized graph.
func (o *Overlay) Neighborhood() graph.Neighborhood {
	if o.NB != nil {
		return o.NB
	}
	return o.G
}

// Neighbors returns the sorted neighbor list of v. On a materialized
// overlay this is the stored slice; on an implicit overlay it is
// freshly computed (callers owning a reusable buffer should prefer
// AppendNeighbors).
func (o *Overlay) Neighbors(v int) []int {
	if o.G != nil {
		return o.G.Neighbors(v)
	}
	return o.NB.AppendNeighbors(v, make([]int, 0, o.NB.Degree(v)))
}

// AppendNeighbors appends the sorted neighbor list of v to buf,
// allocation-free when cap(buf) ≥ MaxDegree.
func (o *Overlay) AppendNeighbors(v int, buf []int) []int {
	return o.Neighborhood().AppendNeighbors(v, buf)
}

// Implicit reports whether the overlay carries no materialized
// adjacency.
func (o *Overlay) Implicit() bool { return o.G == nil }

// adjacency returns a materialized view of the overlay for the
// analysis helpers (survival subsets, dense neighborhoods), which
// need whole-graph traversal. Implicit overlays materialize on
// demand; these helpers are test/analysis surface, never the
// simulation hot path.
func (o *Overlay) adjacency() *graph.Graph {
	if o.G != nil {
		return o.G
	}
	return graph.Materialize(o.NB)
}

func paramsFor(n, d, delta int) Params {
	if delta == 0 {
		delta = d / 4
		if delta < 1 {
			delta = 1
		}
	}
	gamma := 2 + ceilLog2(n)
	ell := PaperEll(n, d)
	if ell > n {
		ell = n
	}
	return Params{N: n, Degree: d, Delta: delta, Gamma: gamma, Ell: ell}
}

// ceilLog2 returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func ceilLog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// CeilLog2 exposes ceilLog2 for the protocol schedules (phase counts
// like ⌈lg n⌉ and ⌈lg(t+1)⌉ appear throughout §4–§6).
func CeilLog2(n int) int { return ceilLog2(n) }

// SurvivalSubset computes the maximal δ-survival subset of B: the
// result of iterating the operator
//
//	F_B(Y) = Y ∪ { v ∈ B\Y : v has fewer than δ neighbors in B\Y }
//
// to its fixed point B* and returning C = B \ B* (Theorem 2's proof).
// Every vertex of C has ≥ δ neighbors inside C, and C is the unique
// maximal such subset of B.
func (o *Overlay) SurvivalSubset(b *bitset.Set, delta int) *bitset.Set {
	g := o.adjacency()
	c := b.Clone()
	deg := make([]int, o.P.N)
	c.ForEach(func(v int) { deg[v] = g.DegreeIn(v, c) })

	// Peel vertices with degree < delta, cascading (Kruskal-style
	// core decomposition restricted to threshold delta).
	queue := make([]int, 0, c.Count())
	c.ForEach(func(v int) {
		if deg[v] < delta {
			queue = append(queue, v)
		}
	})
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !c.Contains(v) {
			continue
		}
		c.Remove(v)
		for _, w := range g.Neighbors(v) {
			if c.Contains(w) {
				deg[w]--
				if deg[w] < delta {
					queue = append(queue, w)
				}
			}
		}
	}
	return c
}

// HasDenseNeighborhood reports whether vertex v has a (γ,δ)-dense
// neighborhood inside the vertex set b (§2): a set S ⊆ N^γ(v) ∩ b such
// that every node of S ∩ N^{γ−1}(v) has ≥ δ neighbors in S. We compute
// the maximal candidate S as the δ-survival-style peeling of
// N^γ(v) ∩ b restricted to the inner ring, then check v's membership.
func (o *Overlay) HasDenseNeighborhood(v int, b *bitset.Set, gamma, delta int) bool {
	if !b.Contains(v) {
		return false
	}
	g := o.adjacency()
	ball := g.NeighborhoodOf(v, gamma)
	ball.IntersectWith(b)
	inner := g.NeighborhoodOf(v, gamma-1)
	inner.IntersectWith(b)

	// Peel: repeatedly drop inner vertices with < delta neighbors in
	// the current candidate set. Outer-ring vertices are support only.
	s := ball
	changed := true
	for changed {
		changed = false
		var drop []int
		s.ForEach(func(u int) {
			if inner.Contains(u) && g.DegreeIn(u, s) < delta {
				drop = append(drop, u)
			}
		})
		for _, u := range drop {
			s.Remove(u)
			changed = true
		}
	}
	return s.Contains(v)
}

// VerifyCompactness empirically checks the (ℓ, 3/4, δ)-compactness
// property (Theorem 2) on a specific vertex set b with |b| ≥ ell:
// it returns the survival subset and whether it reaches 3ℓ/4.
func (o *Overlay) VerifyCompactness(b *bitset.Set, ell, delta int) (*bitset.Set, bool) {
	c := o.SurvivalSubset(b, delta)
	return c, c.Count()*4 >= 3*ell
}

// Describe returns a human-readable summary of the overlay.
func (o *Overlay) Describe() string {
	return fmt.Sprintf("overlay n=%d d=%d δ=%d γ=%d ℓ=%d λ=%.3f (bound %.3f) seed=%d",
		o.P.N, o.P.Degree, o.P.Delta, o.P.Gamma, o.P.Ell,
		o.Lambda, spectral.RamanujanBound(o.P.Degree), o.Seed)
}
