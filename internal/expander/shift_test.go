package expander

import (
	"math"
	"reflect"
	"testing"

	"lineartime/internal/graph"
)

// Implicit and materialized shift overlays must be the same graph:
// same seed, same generators, identical neighbor lists everywhere.
func TestShiftImplicitMatchesMaterialized(t *testing.T) {
	for _, n := range []int{50, 97, 256, 1000} {
		mat, err := New(n, Options{Family: FamilyShift, Seed: 7})
		if err != nil {
			t.Fatalf("n=%d materialized: %v", n, err)
		}
		imp, err := New(n, Options{Family: FamilyShift, Implicit: true, Seed: 7})
		if err != nil {
			t.Fatalf("n=%d implicit: %v", n, err)
		}
		if mat.Implicit() {
			t.Fatalf("n=%d: materialized overlay reports implicit", n)
		}
		if !imp.Implicit() {
			t.Fatalf("n=%d: implicit overlay has a materialized graph", n)
		}
		if imp.Seed != mat.Seed || imp.P != mat.P {
			t.Fatalf("n=%d: params diverge: %+v vs %+v", n, imp.P, mat.P)
		}
		if !(math.IsNaN(imp.Lambda) && math.IsNaN(mat.Lambda)) && imp.Lambda != mat.Lambda {
			t.Fatalf("n=%d: lambda diverges: %v vs %v", n, imp.Lambda, mat.Lambda)
		}
		buf := make([]int, 0, imp.P.Degree)
		for v := 0; v < n; v++ {
			got := imp.AppendNeighbors(v, buf[:0])
			want := mat.Neighbors(v)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d v=%d: implicit %v vs materialized %v", n, v, got, want)
			}
			if nb := imp.Neighbors(v); !reflect.DeepEqual(nb, want) {
				t.Fatalf("n=%d v=%d: Neighbors %v vs materialized %v", n, v, nb, want)
			}
		}
		if g := graph.Materialize(imp.Neighborhood()); !g.IsConnected() {
			t.Fatalf("n=%d: shift overlay disconnected", n)
		}
	}
}

func TestShiftLambdaRecordedSmallN(t *testing.T) {
	o, err := New(500, Options{Family: FamilyShift, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(o.Lambda) || o.Lambda <= 0 || o.Lambda >= float64(o.P.Degree) {
		t.Fatalf("small-n shift overlay lambda = %v, want exact value in (0, d)", o.Lambda)
	}
	big, err := New(lambdaExactCap+1, Options{Family: FamilyShift, Implicit: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(big.Lambda) {
		t.Fatalf("large-n shift overlay lambda = %v, want NaN (not computed)", big.Lambda)
	}
}

func TestImplicitRequiresShiftFamily(t *testing.T) {
	if _, err := New(100, Options{Implicit: true, Seed: 1}); err == nil {
		t.Fatal("implicit random-regular overlay accepted")
	}
}

// Tiny instances degenerate to a materialized K_n in every mode.
func TestImplicitTinyFallsBackToComplete(t *testing.T) {
	o, err := New(5, Options{Family: FamilyShift, Implicit: true, Degree: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Implicit() || o.P.Degree != 4 {
		t.Fatalf("tiny implicit overlay: implicit=%v d=%d, want materialized K_5", o.Implicit(), o.P.Degree)
	}
}

// The inquiry family and broadcast graph must honor the mode.
func TestFamilyModeThreading(t *testing.T) {
	mode := Mode{Family: FamilyShift, Implicit: true}
	h, err := NewBroadcastGraphMode(300, 9, mode)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Implicit() {
		t.Fatal("broadcast graph ignored implicit mode")
	}
	fam := NewInquiryFamily(300, 8, 9).WithMode(mode)
	o, err := fam.Phase(2)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Implicit() {
		t.Fatal("inquiry family ignored implicit mode")
	}
	matFam := NewInquiryFamily(300, 8, 9).WithMode(Mode{Family: FamilyShift})
	mo, err := matFam.Phase(2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 300; v += 37 {
		if !reflect.DeepEqual(o.Neighbors(v), mo.Neighbors(v)) {
			t.Fatalf("phase-2 inquiry graph diverges at v=%d", v)
		}
	}
}
