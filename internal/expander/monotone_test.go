package expander

import (
	"testing"
	"testing/quick"

	"lineartime/internal/bitset"
	"lineartime/internal/rng"
)

// Lattice properties of the Theorem 2 fixed point.

// Property: the maximal δ-survival subset is monotone — B1 ⊆ B2
// implies C(B1) ⊆ C(B2). (C(B1) is δ-surviving inside B2 too, and the
// peeling fixed point contains every δ-surviving subset.)
func TestSurvivalSubsetMonotoneQuick(t *testing.T) {
	o := mustOverlay(t, 150, Options{Seed: 31})
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		b2 := bitset.New(150)
		for b2.Count() < 120 {
			b2.Add(r.Intn(150))
		}
		b1 := b2.Clone()
		members := b1.Elements()
		for i := 0; i < 15 && i < len(members); i++ {
			b1.Remove(members[r.Intn(len(members))])
		}
		c1 := o.SurvivalSubset(b1, o.P.Delta)
		c2 := o.SurvivalSubset(b2, o.P.Delta)
		return c1.SubsetOf(c2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: idempotence — C(C(B)) = C(B).
func TestSurvivalSubsetIdempotentQuick(t *testing.T) {
	o := mustOverlay(t, 150, Options{Seed: 33})
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		b := bitset.New(150)
		for b.Count() < 110 {
			b.Add(r.Intn(150))
		}
		c := o.SurvivalSubset(b, o.P.Delta)
		cc := o.SurvivalSubset(c, o.P.Delta)
		return cc.Equal(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: δ-monotonicity — raising the threshold shrinks the subset.
func TestSurvivalSubsetDeltaMonotoneQuick(t *testing.T) {
	o := mustOverlay(t, 150, Options{Seed: 35})
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		b := bitset.New(150)
		for b.Count() < 110 {
			b.Add(r.Intn(150))
		}
		prev := o.SurvivalSubset(b, 1)
		for delta := 2; delta <= o.P.Degree; delta++ {
			cur := o.SurvivalSubset(b, delta)
			if !cur.SubsetOf(prev) {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
