package expander

import (
	"fmt"
	"testing"

	"lineartime/internal/bitset"
	"lineartime/internal/rng"
)

func BenchmarkOverlayConstruction(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := New(n, Options{Seed: uint64(i) + 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSurvivalSubset(b *testing.B) {
	o, err := New(1024, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	set := bitset.New(1024)
	r := rng.New(7)
	for set.Count() < 800 {
		set.Add(r.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := o.SurvivalSubset(set, o.P.Delta)
		if c.Count() == 0 {
			b.Fatal("empty survival subset")
		}
	}
}

func BenchmarkDenseNeighborhood(b *testing.B) {
	o, err := New(512, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	all := bitset.New(512)
	all.Fill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !o.HasDenseNeighborhood(i%512, all, o.P.Gamma, o.P.Delta) {
			b.Fatal("fault-free dense neighborhood missing")
		}
	}
}
