package expander

import (
	"testing"

	"lineartime/internal/bitset"
	"lineartime/internal/rng"
)

// These tests verify the §3 theorems empirically on the overlays the
// algorithms actually use — the reproduction's substitute for the
// paper's Ramanujan-graph proofs.

// Theorem 1 shape: any two disjoint vertex sets of size ℓ(n,d) are
// connected by an edge.
func TestTheorem1Expanding(t *testing.T) {
	o := mustOverlay(t, 400, Options{Seed: 21})
	ell := o.P.Ell
	if ell > o.P.N/2 {
		ell = o.P.N / 2
	}
	r := rng.New(9)
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(o.P.N)
		a, b := bitset.New(o.P.N), bitset.New(o.P.N)
		for _, v := range perm[:ell] {
			a.Add(v)
		}
		for _, v := range perm[ell : 2*ell] {
			b.Add(v)
		}
		if o.G.EdgesBetween(a, b) == 0 {
			t.Fatalf("trial %d: disjoint ℓ-sets (ℓ=%d) with no connecting edge", trial, ell)
		}
	}
}

// Theorem 2 shape: for every sampled B with |B| ≥ n − t, the survival
// subset reaches 3ℓ/4.
func TestTheorem2CompactnessSeedSweep(t *testing.T) {
	o := mustOverlay(t, 300, Options{Seed: 22})
	tBound := 60 // n/5
	for seed := uint64(0); seed < 20; seed++ {
		r := rng.New(seed)
		b := bitset.New(300)
		b.Fill()
		removed := 0
		for removed < tBound {
			v := r.Intn(300)
			if b.Contains(v) {
				b.Remove(v)
				removed++
			}
		}
		c, ok := o.VerifyCompactness(b, o.P.Ell, o.P.Delta)
		if !ok {
			t.Fatalf("seed %d: survival subset %d < 3ℓ/4 = %d",
				seed, c.Count(), 3*o.P.Ell/4)
		}
	}
}

// Theorem 3 shape: dense neighborhoods grow like min(2^i, ℓ) — in
// particular a (γ,δ)-dense neighborhood of a surviving vertex spans at
// least ℓ vertices of the fault-free graph.
func TestTheorem3DenseNeighborhoodSize(t *testing.T) {
	o := mustOverlay(t, 256, Options{Seed: 23})
	all := bitset.New(256)
	all.Fill()
	for _, v := range []int{0, 100, 255} {
		ball := o.G.NeighborhoodOf(v, o.P.Gamma)
		if ball.Count() < o.P.Ell {
			t.Fatalf("vertex %d: γ-ball has %d < ℓ = %d vertices", v, ball.Count(), o.P.Ell)
		}
	}
}

// Theorem 4 shape: for |A| = εn and |B| > 4n/(dε), an A–B edge exists.
func TestTheorem4CrossSetEdges(t *testing.T) {
	const n = 400
	o := mustOverlay(t, n, Options{Seed: 24})
	d := o.P.Degree
	eps := 0.25
	sizeA := int(eps * n)
	sizeB := 4*n/(d*1) + 1 // 4n/(dε) with the ε folded into the slack below
	if fb := int(4*float64(n)/(float64(d)*eps)) + 1; fb > sizeB {
		sizeB = fb
	}
	if sizeA+sizeB > n {
		t.Skip("parameters exceed n; theorem vacuous at this scale")
	}
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(n)
		a, b := bitset.New(n), bitset.New(n)
		for _, v := range perm[:sizeA] {
			a.Add(v)
		}
		for _, v := range perm[sizeA : sizeA+sizeB] {
			b.Add(v)
		}
		if o.G.EdgesBetween(a, b) == 0 {
			t.Fatalf("trial %d: no edge between |A|=%d and |B|=%d", trial, sizeA, sizeB)
		}
	}
}

// Proposition 1 shape, fault-free corner: every vertex of a δ-survival
// subset has a (γ,δ)-dense neighborhood.
func TestProposition1SurvivalImpliesDense(t *testing.T) {
	o := mustOverlay(t, 200, Options{Seed: 25})
	r := rng.New(13)
	b := bitset.New(200)
	b.Fill()
	for removed := 0; removed < 40; removed++ {
		v := r.Intn(200)
		b.Remove(v)
	}
	c := o.SurvivalSubset(b, o.P.Delta)
	checked := 0
	c.ForEach(func(v int) {
		if checked >= 10 { // dense-neighborhood checks are costly
			return
		}
		checked++
		if !o.HasDenseNeighborhood(v, b, o.P.Gamma, o.P.Delta) {
			t.Errorf("survival-set vertex %d lacks a dense neighborhood", v)
		}
	})
	if checked == 0 {
		t.Fatal("empty survival subset")
	}
}
