// Package majority implements the majority-consensus extension
// suggested in the paper's discussion (§9: "problems like gossip,
// counting, and majority consensus"). Nodes hold binary votes; every
// non-faulty node must decide the same verdict, which reflects the
// true majority among the votes that were actually collected.
//
// Construction: gossip the votes (§5), then agree on *which* votes
// count with two parallel banks of vector consensus (§6 machinery) —
// one bank for "ballot present", one for "ballot is a yes" — packed
// into a single 2n-instance vector so messages stay combined. The
// verdict is yes iff the agreed yes-set is larger than half the agreed
// ballot set. Because the sets are agreed exactly, so is the verdict.
package majority

import (
	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/gossip"
	"lineartime/internal/sim"
)

// Verdict is the outcome of a majority vote.
type Verdict int

// Verdict values.
const (
	// No means yes-votes ≤ half of the counted ballots.
	No Verdict = iota + 1
	// Yes means yes-votes > half of the counted ballots.
	Yes
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v == Yes {
		return "yes"
	}
	return "no"
}

// Vote is the per-node state machine. Schedule: Gossip followed by a
// 2n-instance vector Few-Crashes-Consensus; O(t + log n log t) rounds
// and O(n + t log n log t) messages, like checkpointing (Theorem 10).
type Vote struct {
	id  int
	top *consensus.Topology

	gossip    *gossip.Gossip
	vector    *consensus.VectorFewCrashes
	gossipEnd int
	length    int
	halted    bool
}

// New creates the voting machine for node id with the given vote.
// Votes are gossiped as rumors: 1 for yes, 0 for no.
func New(id int, top *consensus.Topology, yes bool) *Vote {
	rumor := gossip.Rumor(0)
	if yes {
		rumor = 1
	}
	g := gossip.New(id, top, rumor)
	// The vector machinery indexes instances by the payload bitset, so
	// the doubled instance space needs no topology change; this
	// throwaway instance only supplies the schedule length.
	probeLen := consensus.NewVectorFewCrashes(id, top, bitset.New(2*top.N)).ScheduleLength()
	return &Vote{
		id:        id,
		top:       top,
		gossip:    g,
		gossipEnd: g.ScheduleLength(),
		length:    g.ScheduleLength() + probeLen,
	}
}

// ScheduleLength returns the protocol's fixed round count.
func (v *Vote) ScheduleLength() int { return v.length }

// Verdict returns the decided verdict with the agreed tallies.
func (v *Vote) Verdict() (verdict Verdict, yesVotes, ballots int, ok bool) {
	if v.vector == nil {
		return 0, 0, 0, false
	}
	set, ok := v.vector.Decision()
	if !ok {
		return 0, 0, 0, false
	}
	n := v.top.N
	for i := 0; i < n; i++ {
		if set.Contains(i) {
			ballots++
			if set.Contains(n + i) {
				yesVotes++
			}
		}
	}
	verdict = No
	if 2*yesVotes > ballots {
		verdict = Yes
	}
	return verdict, yesVotes, ballots, true
}

// handoff packs the gossiped ballots into the doubled vector: bit i =
// ballot of node i collected, bit n+i = that ballot is a yes.
func (v *Vote) handoff() {
	if v.vector != nil {
		return
	}
	n := v.top.N
	initial := bitset.New(2 * n)
	e := v.gossip.Extant()
	for i := 0; i < n; i++ {
		if e.Present(i) {
			initial.Add(i)
			if e.Rumor(i) == 1 {
				initial.Add(n + i)
			}
		}
	}
	v.vector = consensus.NewVectorFewCrashes(v.id, v.top, initial)
}

// Send implements sim.Protocol.
func (v *Vote) Send(round int) []sim.Envelope {
	if round < v.gossipEnd {
		return v.gossip.Send(round)
	}
	v.handoff()
	return v.vector.Send(round - v.gossipEnd)
}

// Deliver implements sim.Protocol.
func (v *Vote) Deliver(round int, inbox []sim.Envelope) {
	if round < v.gossipEnd {
		v.gossip.Deliver(round, inbox)
		return
	}
	v.handoff()
	v.vector.Deliver(round-v.gossipEnd, inbox)
	if round == v.length-1 {
		v.halted = true
	}
}

// Halted implements sim.Protocol.
func (v *Vote) Halted() bool { return v.halted }

var _ sim.Protocol = (*Vote)(nil)
