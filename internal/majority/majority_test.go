package majority

import (
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func runVote(t *testing.T, n, tt, yesCount int, adv sim.LinkFault) ([]*Vote, *sim.Result) {
	t.Helper()
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*Vote, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = New(i, top, i < yesCount)
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: ms[0].ScheduleLength() + 8})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

func TestMajorityYes(t *testing.T) {
	n, tt := 60, 12
	ms, res := runVote(t, n, tt, 40, nil)
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		verdict, yes, ballots, ok := m.Verdict()
		if !ok {
			t.Fatalf("node %d has no verdict", i)
		}
		if verdict != Yes {
			t.Fatalf("node %d verdict %v, want yes (40/60)", i, verdict)
		}
		if yes != 40 || ballots != 60 {
			t.Fatalf("node %d tallied %d/%d, want 40/60", i, yes, ballots)
		}
	}
}

func TestMajorityNo(t *testing.T) {
	n, tt := 60, 12
	ms, res := runVote(t, n, tt, 20, nil)
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		if verdict, _, _, ok := m.Verdict(); !ok || verdict != No {
			t.Fatalf("node %d verdict %v/%v, want no", i, verdict, ok)
		}
	}
}

func TestMajorityTieIsNo(t *testing.T) {
	n, tt := 60, 12
	ms, res := runVote(t, n, tt, 30, nil)
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		if verdict, yes, ballots, _ := m.Verdict(); verdict != No || 2*yes > ballots {
			t.Fatalf("node %d: tie must be no, got %v (%d/%d)", i, verdict, yes, ballots)
		}
	}
}

func TestMajorityAgreementUnderCrashes(t *testing.T) {
	n, tt := 60, 12
	for seed := uint64(0); seed < 4; seed++ {
		adv := crash.NewRandom(n, tt, 50, seed)
		ms, res := runVote(t, n, tt, 31, adv)
		var firstYes, firstBallots = -1, -1
		var firstVerdict Verdict
		for i, m := range ms {
			if res.Crashed.Contains(i) {
				continue
			}
			verdict, yes, ballots, ok := m.Verdict()
			if !ok {
				t.Fatalf("seed %d: node %d has no verdict", seed, i)
			}
			if firstBallots < 0 {
				firstVerdict, firstYes, firstBallots = verdict, yes, ballots
				continue
			}
			if verdict != firstVerdict || yes != firstYes || ballots != firstBallots {
				t.Fatalf("seed %d: tallies diverge: (%v %d/%d) vs (%v %d/%d)",
					seed, verdict, yes, ballots, firstVerdict, firstYes, firstBallots)
			}
		}
		// The agreed ballot set contains every survivor, so the tally
		// reflects at least the surviving electorate.
		if firstBallots < n-res.Crashed.Count() {
			t.Fatalf("seed %d: only %d ballots counted for %d survivors",
				seed, firstBallots, n-res.Crashed.Count())
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Yes.String() != "yes" || No.String() != "no" {
		t.Fatal("verdict strings wrong")
	}
}
