package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("got %d collisions across different seeds, want 0", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, samples = 10, 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Intn(n)]++
	}
	want := samples / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d samples, want within 20%% of %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(5)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: got %d want %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{^uint64(0), 2, 1, ^uint64(0) - 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
