// Package rng provides a small deterministic pseudo-random number
// generator used to build reproducible overlay graphs and adversary
// schedules. The whole repository must be deterministic given a seed,
// so no global math/rand state is used anywhere.
package rng

// SplitMix64 is a tiny, fast, well-distributed PRNG. It is the
// generator recommended for seeding xoshiro-family generators and has
// a period of 2^64. The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// New returns a generator seeded with the given value.
func New(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next 64-bit value in the sequence.
func (r *SplitMix64) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers control n so this is a programming error.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place using the swap callback.
func (r *SplitMix64) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32

	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}
