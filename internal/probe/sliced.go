package probe

import "lineartime/internal/bitset"

// Sliced is the lane-parallel probing automaton: 64 independent
// replicas of Probing per node ride one uint64, bit b holding lane b's
// pause/survive state. The caller owns the phase structure (which
// rounds are probing rounds, when a phase ends) exactly as scalar
// callers own the round mapping; Sliced tracks only the per-lane
// pause/survive words. Equivalence contract: for every lane, the word
// automaton transitions exactly as a scalar Probing instance observing
// that lane's message counts would.
type Sliced struct {
	delta    int
	paused   []uint64 // per node: lanes paused in the current instance
	survived []uint64 // per node: lanes that survived the previous instance
}

// NewSliced returns the automaton for `nodes` probing participants
// with survival threshold delta, all lanes unpaused and marked as
// survivors (the scalar machines start with survivedPrev = true).
func NewSliced(nodes, delta int) *Sliced {
	if delta < 0 {
		delta = 0
	}
	return &Sliced{
		delta:    delta,
		paused:   make([]uint64, nodes),
		survived: make([]uint64, nodes),
	}
}

// Reset rearms every node for a fresh run: no lane paused, every lane
// of `all` a survivor.
func (p *Sliced) Reset(all uint64) {
	for i := range p.paused {
		p.paused[i] = 0
		p.survived[i] = all
	}
}

// SendMask returns the lanes in which node sends probes this round:
// active and not paused (mid-instance the scalar automaton is Active
// iff it has not paused).
func (p *Sliced) SendMask(node int, active uint64) uint64 {
	return active &^ p.paused[node]
}

// Observe folds one probing round's arrivals into node's pause state:
// ctr must hold the per-lane message counts of the round (unflushed),
// and every active lane whose count is below δ pauses. Lanes that saw
// no message at all have count zero and pause like scalar Observe(0).
func (p *Sliced) Observe(node int, ctr *bitset.LaneCounter, active uint64) {
	p.paused[node] |= ctr.Below(p.delta) & active
}

// FinishPhase ends the instance after its last Observe: active lanes
// that never paused become the survivors. With rearm set the instance
// is reset for the next phase (scalar Probing.Reset); the final phase
// of a protocol leaves the automaton done, like its scalar twin.
func (p *Sliced) FinishPhase(node int, active uint64, rearm bool) {
	p.survived[node] = (p.survived[node] &^ active) | (active &^ p.paused[node])
	if rearm {
		p.paused[node] &^= active
	}
}

// SurvivedMask returns the lanes in which node survived the previous
// instance.
func (p *Sliced) SurvivedMask(node int) uint64 { return p.survived[node] }
