// Package probe implements local probing, the fault-detection
// broadcast primitive of the paper (§2, Proposition 1, originally from
// Chlebus–Kowalski–Strojnowski PODC'09).
//
// An instance runs for exactly γ rounds on an overlay graph. While
// active, a node sends a message to every overlay neighbor each round.
// If a node receives fewer than δ messages in a round it "pauses
// prematurely": it stops sending for the remaining rounds. A node that
// never pauses "survives". Proposition 1 ties survival to the
// existence of (γ,δ)-dense neighborhoods and δ-survival subsets, which
// is what lets survivors safely decide.
//
// The type here is a building block embedded by protocol state
// machines: the caller owns the payloads (plain probes, extant sets,
// completion sets) and the mapping from protocol rounds to probing
// rounds; Probing tracks only the pause/survive automaton.
package probe

// Probing is the per-node automaton for one instance of local probing.
type Probing struct {
	neighbors []int
	gamma     int
	delta     int
	round     int
	paused    bool
}

// New creates a probing instance lasting gamma rounds with survival
// threshold delta over the given overlay neighbors. The neighbor slice
// is not copied; overlay adjacency lists are immutable.
func New(neighbors []int, gamma, delta int) *Probing {
	if gamma < 1 {
		gamma = 1
	}
	if delta < 0 {
		delta = 0
	}
	return &Probing{neighbors: neighbors, gamma: gamma, delta: delta}
}

// Gamma returns the total number of probing rounds.
func (p *Probing) Gamma() int { return p.gamma }

// Round returns the index of the current probing round (0-based).
func (p *Probing) Round() int { return p.round }

// Done reports whether all γ rounds have been observed.
func (p *Probing) Done() bool { return p.round >= p.gamma }

// Active reports whether the node should send probes this round: it
// has not paused and rounds remain.
func (p *Probing) Active() bool { return !p.paused && !p.Done() }

// SendTargets returns the neighbors to message this round, or nil if
// the node is paused or the instance is over.
func (p *Probing) SendTargets() []int {
	if !p.Active() {
		return nil
	}
	return p.neighbors
}

// Observe records that `count` probing messages arrived this round and
// advances to the next round. A count below δ pauses the node
// permanently for this instance. Observations after Done are ignored.
func (p *Probing) Observe(count int) {
	if p.Done() {
		return
	}
	if count < p.delta && !p.paused {
		p.paused = true
	}
	p.round++
}

// Survived reports whether the node completed all γ rounds without
// pausing. Only meaningful once Done.
func (p *Probing) Survived() bool { return p.Done() && !p.paused }

// Paused reports whether the node paused prematurely.
func (p *Probing) Paused() bool { return p.paused }

// Reset rearms the automaton for a fresh instance over the same
// neighbors (gossip runs one instance per phase).
func (p *Probing) Reset() {
	p.round = 0
	p.paused = false
}
