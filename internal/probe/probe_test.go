package probe

import "testing"

func TestSurvivesWithEnoughMessages(t *testing.T) {
	p := New([]int{1, 2, 3, 4}, 3, 2)
	for i := 0; i < 3; i++ {
		if !p.Active() {
			t.Fatalf("round %d: inactive", i)
		}
		if got := len(p.SendTargets()); got != 4 {
			t.Fatalf("round %d: %d targets, want 4", i, got)
		}
		p.Observe(2)
	}
	if !p.Done() || !p.Survived() {
		t.Fatalf("done=%v survived=%v, want true/true", p.Done(), p.Survived())
	}
}

func TestPausesPermanently(t *testing.T) {
	p := New([]int{1, 2}, 4, 2)
	p.Observe(2)
	p.Observe(1) // below δ → pause
	if p.Active() {
		t.Fatal("active after pausing")
	}
	if p.SendTargets() != nil {
		t.Fatal("paused node still has send targets")
	}
	p.Observe(100) // recovery is not allowed
	p.Observe(100)
	if !p.Done() {
		t.Fatal("not done after γ observations")
	}
	if p.Survived() {
		t.Fatal("paused node reported survival")
	}
	if !p.Paused() {
		t.Fatal("Paused() false after pause")
	}
}

func TestSurvivedOnlyWhenDone(t *testing.T) {
	p := New([]int{1}, 2, 0)
	if p.Survived() {
		t.Fatal("survival reported before completion")
	}
	p.Observe(0)
	p.Observe(0)
	if !p.Survived() {
		t.Fatal("δ=0 instance should always survive")
	}
}

func TestObserveAfterDoneIgnored(t *testing.T) {
	p := New([]int{1}, 1, 1)
	p.Observe(5)
	p.Observe(0) // ignored
	if !p.Survived() {
		t.Fatal("post-completion observation changed the outcome")
	}
	if p.Round() != 1 {
		t.Fatalf("round advanced past γ: %d", p.Round())
	}
}

func TestReset(t *testing.T) {
	p := New([]int{1, 2}, 2, 2)
	p.Observe(0)
	p.Observe(0)
	if p.Survived() {
		t.Fatal("should have paused")
	}
	p.Reset()
	if p.Done() || p.Paused() || !p.Active() {
		t.Fatal("reset did not rearm the automaton")
	}
	p.Observe(2)
	p.Observe(2)
	if !p.Survived() {
		t.Fatal("fresh instance after Reset did not survive")
	}
}

func TestDegenerateParams(t *testing.T) {
	p := New(nil, 0, -3) // clamped to γ=1, δ=0
	if p.Gamma() != 1 {
		t.Fatalf("gamma = %d, want clamped 1", p.Gamma())
	}
	p.Observe(0)
	if !p.Survived() {
		t.Fatal("δ clamped to 0 should survive")
	}
}
