// Package spectral estimates the spectral quantities of overlay graphs
// that the paper's theorems depend on: for a d-regular graph G with
// adjacency eigenvalues λ1 ≥ ... ≥ λn, the paper requires
// λ = max(|λ2|, |λn|) ≤ 2√(d−1) (the Ramanujan property, §3), from
// which Theorems 1–4 follow via the Expander Mixing Lemma.
//
// We compute λ by power iteration on the adjacency operator deflated
// against the known top eigenvector (the all-ones vector for regular
// graphs), applied to both A (captures λ2) and −A (captures |λn|).
package spectral

import (
	"fmt"
	"math"

	"lineartime/internal/bitset"
	"lineartime/internal/graph"
	"lineartime/internal/rng"
)

// Options configures the eigenvalue estimation.
type Options struct {
	// Iterations of power iteration; 0 means a default chosen from n.
	Iterations int
	// Seed for the deterministic starting vector.
	Seed uint64
}

// SecondEigenvalue estimates λ = max(|λ2|, |λn|) of the adjacency
// matrix of a regular graph g. For non-regular graphs the deflation
// against the all-ones vector is only approximate; callers in this
// repository only pass regular graphs.
func SecondEigenvalue(g *graph.Graph, opts Options) float64 {
	n := g.N()
	if n <= 1 {
		return 0
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = 30 + 3*int(math.Log2(float64(n)+1))
	}
	// Estimate λ2 via power iteration on A, and |λn| via power
	// iteration on (cI - A) for c = d (shifting makes the most
	// negative eigenvalue the largest of the shifted operator after
	// deflating the top). A simpler robust approach: iterate on A and
	// on -A is wrong since -A isn't PSD either; instead we use the
	// squared operator A^2, whose top eigenvalue on the deflated space
	// is max(λ2^2, λn^2) — exactly λ^2.
	v := randomUnitDeflated(n, opts.Seed)
	tmp := make([]float64, n)
	var lambdaSq float64
	for i := 0; i < iters; i++ {
		multiply(g, v, tmp) // tmp = A v
		deflate(tmp)        // stay orthogonal to all-ones
		multiply(g, tmp, v) // v = A tmp = A^2 v_prev
		deflate(v)
		lambdaSq = norm(v)
		if lambdaSq == 0 {
			return 0
		}
		scale(v, 1/lambdaSq)
	}
	return math.Sqrt(lambdaSq)
}

// RamanujanBound returns 2√(d−1), the Ramanujan threshold for degree d.
func RamanujanBound(d int) float64 {
	if d <= 1 {
		return 0
	}
	return 2 * math.Sqrt(float64(d-1))
}

// IsNearRamanujan reports whether the estimated λ of the d-regular
// graph g is at most (1+slack) * 2√(d−1). A small positive slack
// (e.g. 0.1) accounts for estimation error and for random regular
// graphs being only near-Ramanujan.
func IsNearRamanujan(g *graph.Graph, d int, slack float64, opts Options) (bool, float64) {
	lambda := SecondEigenvalue(g, opts)
	return lambda <= (1+slack)*RamanujanBound(d), lambda
}

// EdgeExpansion returns a lower-bound estimate of the edge expansion
// ratio h(G) = min |∂W|/|W| over |W| ≤ n/2, via the spectral bound
// h(G) ≥ (d − λ)/2 for d-regular graphs (the "easy side" of Cheeger).
func EdgeExpansion(g *graph.Graph, d int, opts Options) float64 {
	lambda := SecondEigenvalue(g, opts)
	h := (float64(d) - lambda) / 2
	if h < 0 {
		return 0
	}
	return h
}

// MixingDeviation returns the largest observed deviation
// |e(A,B) − d|A||B|/n| / sqrt(|A||B|) across sampled disjoint vertex
// pairs of sets, which by the Expander Mixing Lemma must be ≤ λ. It is
// used in tests to cross-validate the eigenvalue estimate against the
// combinatorial statement the proofs actually use.
func MixingDeviation(g *graph.Graph, d, samples, setSize int, seed uint64) float64 {
	n := g.N()
	if 2*setSize > n {
		setSize = n / 2
	}
	if setSize == 0 {
		return 0
	}
	r := rng.New(seed)
	worst := 0.0
	a, b := bitset.New(n), bitset.New(n)
	for s := 0; s < samples; s++ {
		perm := r.Perm(n)
		a.Clear()
		b.Clear()
		for _, v := range perm[:setSize] {
			a.Add(v)
		}
		for _, v := range perm[setSize : 2*setSize] {
			b.Add(v)
		}
		e := g.EdgesBetween(a, b)
		expect := float64(d) * float64(setSize) * float64(setSize) / float64(n)
		dev := math.Abs(float64(e)-expect) / float64(setSize)
		if dev > worst {
			worst = dev
		}
	}
	return worst
}

// multiply computes out = A * v for the adjacency matrix A of g.
func multiply(g *graph.Graph, v, out []float64) {
	n := g.N()
	for u := 0; u < n; u++ {
		sum := 0.0
		for _, w := range g.Neighbors(u) {
			sum += v[w]
		}
		out[u] = sum
	}
}

// deflate removes the component along the all-ones vector.
func deflate(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func scale(v []float64, f float64) {
	for i := range v {
		v[i] *= f
	}
}

func randomUnitDeflated(n int, seed uint64) []float64 {
	r := rng.New(seed ^ 0xabcdef12345)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64() - 0.5
	}
	deflate(v)
	l := norm(v)
	if l == 0 {
		v[0] = 1
		deflate(v)
		l = norm(v)
	}
	scale(v, 1/l)
	return v
}

// Describe returns a one-line summary of the spectral profile of a
// d-regular graph, for logs and CLI output.
func Describe(g *graph.Graph, d int, opts Options) string {
	lambda := SecondEigenvalue(g, opts)
	return fmt.Sprintf("n=%d d=%d λ=%.3f ramanujan-bound=%.3f h(G)≥%.3f",
		g.N(), d, lambda, RamanujanBound(d), (float64(d)-lambda)/2)
}
