package spectral

import (
	"math"
	"math/bits"

	"lineartime/internal/bitset"
	"lineartime/internal/graph"
)

// ExactEdgeExpansion computes h(G) = min_{0<|W|≤n/2} |∂W|/|W| exactly
// by enumerating all 2^n vertex subsets. Exponential — usable for
// n ≤ ~22 — and exists to validate the spectral lower bound
// h(G) ≥ (d−λ)/2 and the trivial upper bound h(G) ≤ d on small
// instances, grounding the verified overlays' expansion claims in
// ground truth rather than estimates.
func ExactEdgeExpansion(g *graph.Graph) float64 {
	n := g.N()
	if n < 2 || n > 25 {
		return 0
	}
	best := math.Inf(1)
	w := bitset.New(n)
	for mask := uint64(1); mask < 1<<n; mask++ {
		size := bits.OnesCount64(mask)
		if size == 0 || 2*size > n {
			continue
		}
		w.Clear()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w.Add(i)
			}
		}
		boundary := 0
		w.ForEach(func(u int) {
			for _, v := range g.Neighbors(u) {
				if !w.Contains(v) {
					boundary++
				}
			}
		})
		if ratio := float64(boundary) / float64(size); ratio < best {
			best = ratio
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}
