package spectral

import (
	"math"
	"testing"

	"lineartime/internal/graph"
)

func TestCompleteGraphLambda(t *testing.T) {
	// K_n has eigenvalues n-1 (once) and -1 (n-1 times), so λ = 1.
	g := graph.Complete(20)
	lambda := SecondEigenvalue(g, Options{Seed: 1})
	if math.Abs(lambda-1) > 0.05 {
		t.Fatalf("K_20 λ = %v, want ≈ 1", lambda)
	}
}

func TestCycleLambda(t *testing.T) {
	// C_n has eigenvalues 2cos(2πk/n); λ = 2cos(2π/n).
	n := 40
	g := graph.Cycle(n)
	want := 2 * math.Cos(2*math.Pi/float64(n))
	lambda := SecondEigenvalue(g, Options{Seed: 1, Iterations: 4000})
	if math.Abs(lambda-want) > 0.05 {
		t.Fatalf("C_%d λ = %v, want ≈ %v", n, lambda, want)
	}
}

func TestHypercubeLambda(t *testing.T) {
	// Q_d has eigenvalues d-2k; λ = d-2 for the second largest, and
	// |λ_min| = d. So max(|λ2|, |λn|) = d: hypercubes are bipartite.
	g := graph.Hypercube(4)
	lambda := SecondEigenvalue(g, Options{Seed: 1, Iterations: 2000})
	if math.Abs(lambda-4) > 0.1 {
		t.Fatalf("Q_4 λ = %v, want ≈ 4 (bipartite)", lambda)
	}
}

func TestRandomRegularNearRamanujan(t *testing.T) {
	for _, c := range []struct{ n, d int }{{100, 6}, {200, 8}, {400, 10}} {
		g, err := graph.RandomRegular(c.n, c.d, 99)
		if err != nil {
			t.Fatal(err)
		}
		ok, lambda := IsNearRamanujan(g, c.d, 0.25, Options{Seed: 5})
		if !ok {
			t.Errorf("RandomRegular(%d,%d): λ = %.3f exceeds 1.25 * %.3f",
				c.n, c.d, lambda, RamanujanBound(c.d))
		}
	}
}

func TestRamanujanBound(t *testing.T) {
	if RamanujanBound(1) != 0 {
		t.Fatal("bound for d=1 should be 0")
	}
	if got, want := RamanujanBound(5), 4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("RamanujanBound(5) = %v, want 4", got)
	}
}

func TestEdgeExpansionPositiveForExpanders(t *testing.T) {
	g, err := graph.RandomRegular(128, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	h := EdgeExpansion(g, 8, Options{Seed: 2})
	if h <= 0 {
		t.Fatalf("expander edge expansion bound = %v, want > 0", h)
	}
}

func TestEdgeExpansionZeroFloor(t *testing.T) {
	// Bipartite hypercube: λ = d, so spectral bound is 0 (floored).
	g := graph.Hypercube(3)
	if h := EdgeExpansion(g, 3, Options{Seed: 2, Iterations: 2000}); h != 0 {
		t.Fatalf("bipartite expansion bound = %v, want 0 floor", h)
	}
}

func TestMixingDeviationBelowLambda(t *testing.T) {
	const n, d = 200, 8
	g, err := graph.RandomRegular(n, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	lambda := SecondEigenvalue(g, Options{Seed: 4})
	dev := MixingDeviation(g, d, 50, 30, 11)
	if dev > lambda+0.5 {
		t.Fatalf("observed mixing deviation %.3f exceeds λ %.3f: Expander Mixing Lemma violated", dev, lambda)
	}
}

func TestTinyGraphs(t *testing.T) {
	if l := SecondEigenvalue(graph.Complete(1), Options{}); l != 0 {
		t.Fatalf("single vertex λ = %v", l)
	}
	if l := SecondEigenvalue(graph.Complete(0), Options{}); l != 0 {
		t.Fatalf("empty graph λ = %v", l)
	}
}

func TestDescribe(t *testing.T) {
	g := graph.Complete(10)
	s := Describe(g, 9, Options{Seed: 1})
	if s == "" {
		t.Fatal("empty description")
	}
}
