package spectral

import (
	"math"
	"testing"

	"lineartime/internal/graph"
)

func TestExactEdgeExpansionKnownGraphs(t *testing.T) {
	// K_4: every W with |W| ≤ 2 has |∂W|/|W| = (|W|·(4−|W|))/|W| =
	// 4−|W|; minimum at |W| = 2 → 2.
	if got := ExactEdgeExpansion(graph.Complete(4)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("h(K_4) = %v, want 2", got)
	}
	// C_8: the minimizing W is a contiguous arc of 4 vertices with
	// boundary 2 → h = 0.5.
	if got := ExactEdgeExpansion(graph.Cycle(8)); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("h(C_8) = %v, want 0.5", got)
	}
	// Disconnected graph: a component is a zero-boundary cut → 0.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if got := ExactEdgeExpansion(b.Build()); got != 0 {
		t.Fatalf("h(disconnected) = %v, want 0", got)
	}
}

func TestExactEdgeExpansionBounds(t *testing.T) {
	// Ground truth vs spectral bounds on a small random regular graph:
	// (d−λ)/2 ≤ h(G) ≤ d.
	const n, d = 18, 6
	g, err := graph.RandomRegular(n, d, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := ExactEdgeExpansion(g)
	lambda := SecondEigenvalue(g, Options{Seed: 3, Iterations: 2000})
	lower := (float64(d) - lambda) / 2
	if h+1e-9 < lower {
		t.Fatalf("exact h = %.4f below spectral lower bound %.4f (λ=%.4f)", h, lower, lambda)
	}
	if h > float64(d) {
		t.Fatalf("exact h = %.4f above degree bound %d", h, d)
	}
	if h <= 0 {
		t.Fatal("connected regular graph with zero expansion")
	}
}

func TestExactEdgeExpansionDegenerate(t *testing.T) {
	if got := ExactEdgeExpansion(graph.Complete(1)); got != 0 {
		t.Fatalf("single vertex h = %v", got)
	}
	if got := ExactEdgeExpansion(graph.Complete(0)); got != 0 {
		t.Fatalf("empty graph h = %v", got)
	}
	// Oversized graphs are refused (return 0) rather than hanging.
	big, err := graph.RandomRegular(40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExactEdgeExpansion(big); got != 0 {
		t.Fatalf("oversize guard returned %v", got)
	}
}
