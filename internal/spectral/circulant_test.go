package spectral

import (
	"math"
	"testing"

	"lineartime/internal/graph"
)

// The closed form must agree with the power-iteration estimate on the
// same materialized circulant — they compute the same spectrum by
// independent routes.
func TestCirculantLambdaMatchesPowerIteration(t *testing.T) {
	for _, tc := range []struct {
		n    int
		gens []int
	}{
		{n: 64, gens: []int{1, 5, 9}},
		{n: 101, gens: []int{2, 11, 30, 45}},
		{n: 128, gens: []int{3, 17, 64}}, // includes the involution n/2
	} {
		exact := CirculantLambda(tc.n, tc.gens)
		g := graph.Circulant(tc.n, tc.gens)
		est := SecondEigenvalue(g, Options{Iterations: 400, Seed: 1})
		if math.Abs(exact-est) > 0.05*exact+0.05 {
			t.Errorf("n=%d gens=%v: closed form λ=%.4f vs power iteration %.4f",
				tc.n, tc.gens, exact, est)
		}
	}
}

func TestCirculantLambdaCompleteGraph(t *testing.T) {
	// K_5 is the circulant on gens {1, 2}: all nontrivial adjacency
	// eigenvalues are −1, so λ = 1 exactly.
	got := CirculantLambda(5, []int{1, 2})
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("K_5 λ = %v, want 1", got)
	}
	// An even cycle is bipartite: λn = −2, so λ = 2 exactly.
	if got := CirculantLambda(360, []int{1}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("C_360 λ = %v, want 2", got)
	}
	// An odd cycle's extreme nontrivial eigenvalue is 2cos(π/n)·(−1)
	// at j = (n−1)/2, so λ = 2cos(π/n).
	n := 361
	want := 2 * math.Cos(math.Pi/float64(n))
	if got := CirculantLambda(n, []int{1}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("C_%d λ = %v, want %v", n, got, want)
	}
}
