package spectral

import "math"

// CirculantLambda returns the exact λ = max(|λ2|, ..., |λn|) of the
// circulant graph on n vertices with connection set gens (each
// generator g in [1, n/2]; g = n/2 contributes a single ±n/2 edge).
// Circulants are Cayley graphs of Z_n, so their adjacency eigenvalues
// have the closed form
//
//	λ_j = Σ_g 2·cos(2πjg/n)   (with the n/2 term contributing cos(πj))
//
// for j = 0..n−1, with j = 0 the trivial top eigenvalue d. This is
// what the expander layer records for the implicit shift family in
// place of the power-iteration estimate: exact, deterministic, and
// O(n·|gens|) — but still linear in n, so callers cap the n at which
// they bother (implicit mode exists precisely so nothing per-vertex
// needs storing at gigascale, and the verdict on shift graphs comes
// from the gcd connectivity criterion, not a spectral gate; see
// graph.Shift for why constant-degree circulants cannot be
// near-Ramanujan).
func CirculantLambda(n int, gens []int) float64 {
	if n <= 1 {
		return 0
	}
	// λ_j = λ_{n−j}, so scanning j = 1..n/2 covers every nontrivial
	// eigenvalue once.
	worst := 0.0
	base := 2 * math.Pi / float64(n)
	for j := 1; 2*j <= n; j++ {
		sum := 0.0
		for _, g := range gens {
			if 2*g == n {
				// cos(πj): +1 for even j, −1 for odd j.
				if j%2 == 0 {
					sum++
				} else {
					sum--
				}
				continue
			}
			sum += 2 * math.Cos(base*float64(j)*float64(g))
		}
		if a := math.Abs(sum); a > worst {
			worst = a
		}
	}
	return worst
}
