package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the cumulative bucket semantics:
// a value equal to a bound lands in that bound's bucket (le is
// inclusive), and values above the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0001, 2, 4, 4.0001, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 2} // (<=1)=2, (1,2]=2, (2,4]=1, +Inf=2
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if sum := h.Sum(); sum < 112.5001 || sum > 112.501 {
		t.Errorf("sum = %g, want ~112.5002", sum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestHistogramQuantile checks the interpolated estimates against a
// uniform fill.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	// 100 observations at exactly 0.01s: every quantile must resolve
	// inside the (0.005, 0.01] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got <= 0.005 || got > 0.01 {
			t.Errorf("Quantile(%g) = %g, want in (0.005, 0.01]", q, got)
		}
	}
	// Out-of-range q clamps rather than panics.
	if got := h.Quantile(2); got <= 0 {
		t.Errorf("Quantile(2) = %g, want > 0", got)
	}
	// Overflow bucket reports the last finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %g, want 2", got)
	}
}

// TestCounterConcurrent hammers one counter and one gauge from many
// goroutines; run under -race this doubles as the data-race guard.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("lineartime_test_total", "test counter")
	g := reg.Gauge("lineartime_test_gauge", "test gauge")
	h := reg.Histogram("lineartime_test_seconds", "test histogram", LatencyBuckets())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

// TestWriteTextGolden pins the exposition format end to end: HELP and
// TYPE lines, family ordering by name, child ordering by label
// signature, histogram expansion, and label escaping.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("lineartime_zeta_total", "Last family by name.")
	c.Add(3)
	reg.Gauge("lineartime_alpha_gauge", "First family by name.").Set(2.5)
	b := reg.Counter("lineartime_beta_total", "Labeled counter.", L{"path", "/v1/run"}, L{"code", "2xx"})
	b.Inc()
	reg.Counter("lineartime_beta_total", "Labeled counter.", L{"path", "/v1/run"}, L{"code", "5xx"})
	h := reg.Histogram("lineartime_gamma_seconds", "Histogram family.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)
	reg.GaugeFunc("lineartime_delta_gauge", `Escaped "label" value.`, func() float64 { return 1 },
		L{"name", `quo"te\slash`})

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lineartime_alpha_gauge First family by name.
# TYPE lineartime_alpha_gauge gauge
lineartime_alpha_gauge 2.5
# HELP lineartime_beta_total Labeled counter.
# TYPE lineartime_beta_total counter
lineartime_beta_total{code="2xx",path="/v1/run"} 1
lineartime_beta_total{code="5xx",path="/v1/run"} 0
# HELP lineartime_delta_gauge Escaped "label" value.
# TYPE lineartime_delta_gauge gauge
lineartime_delta_gauge{name="quo\"te\\slash"} 1
# HELP lineartime_gamma_seconds Histogram family.
# TYPE lineartime_gamma_seconds histogram
lineartime_gamma_seconds_bucket{le="0.5"} 1
lineartime_gamma_seconds_bucket{le="1"} 2
lineartime_gamma_seconds_bucket{le="+Inf"} 3
lineartime_gamma_seconds_sum 10
lineartime_gamma_seconds_count 3
# HELP lineartime_zeta_total Last family by name.
# TYPE lineartime_zeta_total counter
lineartime_zeta_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("lineartime_ok_total", "ok")
	mustPanic("bad name", func() { reg.Counter("1bad-name", "x") })
	mustPanic("bad label", func() { reg.Counter("lineartime_l_total", "x", L{"__internal", "v"}) })
	mustPanic("duplicate", func() { reg.Counter("lineartime_ok_total", "ok") })
	mustPanic("kind clash", func() { reg.Gauge("lineartime_ok_total", "ok") })
}

func TestRegistryValue(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lineartime_v_total", "v", L{"k", "a"}).Add(7)
	reg.GaugeFunc("lineartime_v_gauge", "v", func() float64 { return 1.5 })
	h := reg.Histogram("lineartime_v_seconds", "v", []float64{1})
	h.Observe(0.5)
	h.Observe(0.5)

	if v, ok := reg.Value("lineartime_v_total", L{"k", "a"}); !ok || v != 7 {
		t.Errorf("counter value = %g, %v", v, ok)
	}
	if v, ok := reg.Value("lineartime_v_gauge"); !ok || v != 1.5 {
		t.Errorf("gauge value = %g, %v", v, ok)
	}
	if v, ok := reg.Value("lineartime_v_seconds"); !ok || v != 2 {
		t.Errorf("histogram value = %g, %v", v, ok)
	}
	if _, ok := reg.Value("lineartime_missing"); ok {
		t.Error("missing metric resolved")
	}
	if _, ok := reg.Value("lineartime_v_total", L{"k", "b"}); ok {
		t.Error("missing label child resolved")
	}
}

// TestEngineTracer drives the metrics-backed tracer and checks the
// registered families observe what was reported.
func TestEngineTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewEngineTracer(reg)
	tr.StageDuration(StageSetup, 2*time.Millisecond)
	tr.StageDuration(StageRounds, 10*time.Millisecond)
	tr.RunDone(EngineSliced, OutcomeOK, 12, 15*time.Millisecond)
	tr.RunDone(EngineSequential, OutcomeNoTermination, 64, time.Millisecond)

	if v, ok := reg.Value("lineartime_runs_total",
		L{"engine", "sliced"}, L{"outcome", "ok"}); !ok || v != 1 {
		t.Errorf("sliced ok runs = %g, %v", v, ok)
	}
	if v, ok := reg.Value("lineartime_runs_total",
		L{"engine", "sequential"}, L{"outcome", "no_termination"}); !ok || v != 1 {
		t.Errorf("sequential no_termination runs = %g, %v", v, ok)
	}
	if v, ok := reg.Value("lineartime_run_rounds"); !ok || v != 2 {
		t.Errorf("rounds observations = %g, %v", v, ok)
	}
	if v, ok := reg.Value("lineartime_run_stage_duration_seconds",
		L{"stage", "setup"}); !ok || v != 1 {
		t.Errorf("setup stage observations = %g, %v", v, ok)
	}
}

// TestSpanTracer checks the CLI trace collector.
func TestSpanTracer(t *testing.T) {
	tr := NewSpanTracer()
	tr.StageDuration(StageSetup, time.Millisecond)
	tr.StageDuration(StageRounds, 2*time.Millisecond)
	tr.RunDone(EngineSequential, OutcomeOK, 9, 3*time.Millisecond)
	tc := tr.Trace()
	if tc.Engine != "sequential" || tc.Outcome != "ok" || tc.Rounds != 9 {
		t.Errorf("trace header = %+v", tc)
	}
	if len(tc.Spans) != 2 || tc.Spans[0].Name != "setup" || tc.Spans[1].Name != "rounds" {
		t.Errorf("spans = %+v", tc.Spans)
	}
	if tc.DurationMS != 3 {
		t.Errorf("duration = %g ms, want 3", tc.DurationMS)
	}
}

// TestEnumStrings keeps the label vocabulary stable — these strings
// are metric label values and part of the scrape contract.
func TestEnumStrings(t *testing.T) {
	if StageDecode.String() != "decode" || StageMerge.String() != "merge" {
		t.Error("stage labels changed")
	}
	if EngineCastSliced.String() != "cast_sliced" || EngineParallel.String() != "parallel" {
		t.Error("engine labels changed")
	}
	if OutcomeError.String() != "error" {
		t.Error("outcome labels changed")
	}
	if Stage(200).String() != "unknown" || Engine(200).String() != "unknown" || Outcome(200).String() != "unknown" {
		t.Error("out-of-range enums must stringify as unknown")
	}
}
