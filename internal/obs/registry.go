package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// L is one label pair attached to a metric child.
type L struct {
	Key   string
	Value string
}

// kindT distinguishes exposition TYPE lines.
type kindT int

const (
	kindCounter kindT = iota
	kindGauge
	kindHistogram
)

// child is one (labels, instrument) row inside a family.
type child struct {
	labels []L
	sig    string // canonical sorted label signature for dedup/order

	ctr     *Counter
	gauge   *Gauge
	hist    *Histogram
	ctrFn   func() int64
	gaugeFn func() float64
}

func (c *child) value() float64 {
	switch {
	case c.ctr != nil:
		return float64(c.ctr.Value())
	case c.gauge != nil:
		return c.gauge.Value()
	case c.ctrFn != nil:
		return float64(c.ctrFn())
	case c.gaugeFn != nil:
		return c.gaugeFn()
	}
	return 0
}

// family is all children sharing a metric name.
type family struct {
	name     string
	help     string
	kind     kindT
	children []*child
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is expected at construction time
// (panics on misuse, like expvar); reads and observations are
// concurrency-safe.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func labelSig(labels []L) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]L, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// register inserts a child, creating or checking the family.
func (r *Registry) register(name, help string, kind kindT, c *child) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range c.labels {
		if !validName(l.Key) || strings.HasPrefix(l.Key, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Key, name))
		}
	}
	c.sig = labelSig(c.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different type", name))
	}
	for _, prev := range f.children {
		if prev.sig == c.sig {
			panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", name, c.sig))
		}
	}
	f.children = append(f.children, c)
}

// Counter registers and returns a counter child.
func (r *Registry) Counter(name, help string, labels ...L) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &child{labels: labels, ctr: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — used to surface counters that already live as
// atomics inside other components without rewriting them.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...L) {
	r.register(name, help, kindCounter, &child{labels: labels, ctrFn: fn})
}

// Gauge registers and returns a gauge child.
func (r *Registry) Gauge(name, help string, labels ...L) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &child{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...L) {
	r.register(name, help, kindGauge, &child{labels: labels, gaugeFn: fn})
}

// Histogram registers and returns a histogram child over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...L) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, kindHistogram, &child{labels: labels, hist: h})
	return h
}

// Names returns every registered family name, sorted. Used by the
// naming-convention guard.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Value returns the current scalar value of the child of name with
// exactly the given labels. Histograms report their observation count.
// The second result is false when no such child exists.
func (r *Registry) Value(name string, labels ...L) (float64, bool) {
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return 0, false
	}
	for _, c := range f.children {
		if c.sig == sig {
			if c.hist != nil {
				return float64(c.hist.Count()), true
			}
			return c.value(), true
		}
	}
	return 0, false
}

// escapeLabel escapes a label value for exposition.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatLabels renders {k="v",...} from sorted labels; extra appends
// trailing pairs (used for the histogram le label).
func formatLabels(labels []L, extra ...L) string {
	all := make([]L, 0, len(labels)+len(extra))
	all = append(all, labels...)
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, children by label
// signature, histograms expanded to cumulative _bucket/_sum/_count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typ)
		children := make([]*child, len(f.children))
		copy(children, f.children)
		sort.Slice(children, func(i, j int) bool { return children[i].sig < children[j].sig })
		for _, c := range children {
			if c.hist != nil {
				cum := int64(0)
				for i, bound := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, formatLabels(c.labels, L{"le", formatFloat(bound)}), cum)
				}
				cum += c.hist.counts[len(c.hist.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, formatLabels(c.labels, L{"le", "+Inf"}), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n",
					f.name, formatLabels(c.labels), formatFloat(c.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n",
					f.name, formatLabels(c.labels), c.hist.Count())
				continue
			}
			if c.ctr != nil || c.ctrFn != nil {
				// Counters are integral; render without exponent.
				fmt.Fprintf(&b, "%s%s %d\n", f.name, formatLabels(c.labels), int64(c.value()))
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, formatLabels(c.labels), formatFloat(c.value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
