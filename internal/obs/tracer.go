package obs

import (
	"sync"
	"time"
)

// Stage identifies one phase of a scenario run. The engines report
// StageSetup and StageRounds; the scenario layer adds StageDecode
// (result materialisation) and StageMerge (sliced lane fan-in).
type Stage uint8

const (
	StageSetup Stage = iota
	StageRounds
	StageDecode
	StageMerge
	numStages
)

// String returns the stage label used in metric labels and trace spans.
func (s Stage) String() string {
	switch s {
	case StageSetup:
		return "setup"
	case StageRounds:
		return "rounds"
	case StageDecode:
		return "decode"
	case StageMerge:
		return "merge"
	}
	return "unknown"
}

// Engine identifies which simulator entry point executed a run.
type Engine uint8

const (
	EngineSequential Engine = iota
	EngineParallel
	EngineSliced
	EngineCast
	EngineCastParallel
	EngineCastSliced
	numEngines
)

// String returns the engine label.
func (e Engine) String() string {
	switch e {
	case EngineSequential:
		return "sequential"
	case EngineParallel:
		return "parallel"
	case EngineSliced:
		return "sliced"
	case EngineCast:
		return "cast"
	case EngineCastParallel:
		return "cast_parallel"
	case EngineCastSliced:
		return "cast_sliced"
	}
	return "unknown"
}

// Outcome classifies how a run ended.
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeNoTermination
	OutcomeError
	numOutcomes
)

// String returns the outcome label.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeNoTermination:
		return "no_termination"
	case OutcomeError:
		return "error"
	}
	return "unknown"
}

// RunTracer is the stage-level hook the engines and the scenario layer
// call around every run. Implementations must be allocation-free and
// concurrency-safe: the engines call these from the hot path with a
// tracer installed, and the 0-alloc steady-state guards run with one.
//
// A nil tracer is the fast path — every call site is guarded by an
// `if tr != nil` branch, so disabled tracing costs only predictable
// branches.
type RunTracer interface {
	// StageDuration records time spent in one stage of a run.
	StageDuration(s Stage, d time.Duration)
	// RunDone records a completed run: which engine, how it ended,
	// how many rounds it took, and its wall-clock duration.
	RunDone(e Engine, o Outcome, rounds int, d time.Duration)
}

// EngineTracer is the metrics-backed RunTracer: pre-registered handles
// indexed by the Stage/Engine/Outcome enums, so the per-run path does
// no map lookups and allocates nothing.
type EngineTracer struct {
	stage    [numStages]*Histogram
	runs     [numEngines][numOutcomes]*Counter
	rounds   *Histogram
	duration *Histogram
}

// NewEngineTracer registers the engine-run metric families on reg and
// returns the tracer holding their handles.
func NewEngineTracer(reg *Registry) *EngineTracer {
	t := &EngineTracer{}
	for s := Stage(0); s < numStages; s++ {
		t.stage[s] = reg.Histogram(
			"lineartime_run_stage_duration_seconds",
			"Wall-clock seconds spent per run stage.",
			LatencyBuckets(), L{"stage", s.String()})
	}
	for e := Engine(0); e < numEngines; e++ {
		for o := Outcome(0); o < numOutcomes; o++ {
			t.runs[e][o] = reg.Counter(
				"lineartime_runs_total",
				"Completed simulation runs by engine and outcome.",
				L{"engine", e.String()}, L{"outcome", o.String()})
		}
	}
	t.rounds = reg.Histogram(
		"lineartime_run_rounds",
		"Rounds executed per simulation run.",
		RoundBuckets())
	t.duration = reg.Histogram(
		"lineartime_run_duration_seconds",
		"End-to-end wall-clock seconds per simulation run.",
		LatencyBuckets())
	return t
}

// StageDuration implements RunTracer.
func (t *EngineTracer) StageDuration(s Stage, d time.Duration) {
	if s < numStages {
		t.stage[s].Observe(d.Seconds())
	}
}

// RunDone implements RunTracer.
func (t *EngineTracer) RunDone(e Engine, o Outcome, rounds int, d time.Duration) {
	if e < numEngines && o < numOutcomes {
		t.runs[e][o].Inc()
	}
	t.rounds.Observe(float64(rounds))
	t.duration.Observe(d.Seconds())
}

// Span is one recorded stage timing inside a Trace.
type Span struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// Trace is the JSON-facing transcript of one run's stage timings,
// emitted by cmd/linearsim under the envelope's "trace" key.
type Trace struct {
	Engine     string  `json:"engine"`
	Outcome    string  `json:"outcome"`
	Rounds     int     `json:"rounds"`
	DurationMS float64 `json:"duration_ms"`
	Spans      []Span  `json:"spans"`
}

// SpanTracer is a RunTracer that collects stage timings into a Trace
// for human or JSON output. It is mutex-guarded, not allocation-free:
// use it for CLI tracing, not inside alloc guards.
type SpanTracer struct {
	mu    sync.Mutex
	trace Trace
}

// NewSpanTracer returns an empty span collector.
func NewSpanTracer() *SpanTracer { return &SpanTracer{} }

// StageDuration implements RunTracer.
func (t *SpanTracer) StageDuration(s Stage, d time.Duration) {
	t.mu.Lock()
	t.trace.Spans = append(t.trace.Spans, Span{
		Name:       s.String(),
		DurationMS: float64(d.Nanoseconds()) / 1e6,
	})
	t.mu.Unlock()
}

// RunDone implements RunTracer.
func (t *SpanTracer) RunDone(e Engine, o Outcome, rounds int, d time.Duration) {
	t.mu.Lock()
	t.trace.Engine = e.String()
	t.trace.Outcome = o.String()
	t.trace.Rounds = rounds
	t.trace.DurationMS = float64(d.Nanoseconds()) / 1e6
	t.mu.Unlock()
}

// Trace returns a copy of the collected trace.
func (t *SpanTracer) Trace() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := t.trace
	cp.Spans = append([]Span(nil), t.trace.Spans...)
	return &cp
}
