// Package obs is the repo's dependency-free observability core: atomic
// counters, gauges, and fixed-bucket histograms that expose themselves
// in Prometheus text format through a Registry, plus the RunTracer hook
// the sim engines use to report per-stage timings.
//
// The package is deliberately a leaf: it imports only the standard
// library so the hot-path packages (internal/sim) can depend on it
// without cycles. Every instrument is safe for concurrent use, and the
// observation paths (Counter.Inc, Gauge.Set, Histogram.Observe) are
// allocation-free so they can sit inside the engines' 0-alloc steady
// state.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use, but counters meant for exposition should be created through
// Registry.Counter so they carry HELP text and appear in /metrics.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored — counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with cumulative exposition in
// the Prometheus style: counts[i] holds observations <= bounds[i], and
// the final slot holds the +Inf overflow. Observe is allocation-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given strictly
// increasing upper bounds. Standalone histograms (e.g. loadgen's
// latency recorder) share bucket code with registered ones.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No allocation, no locks.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the owning bucket. Returns 0 with no
// observations. The estimate for the overflow bucket is its lower
// bound (the largest finite boundary).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: best estimate is the last bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets returns the shared request/run latency boundaries in
// seconds, from 100µs to 10s. loadgen and the serve tier use the same
// set so bench and scrape numbers land in comparable buckets.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// RoundBuckets returns boundaries for per-run round counts.
func RoundBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}
